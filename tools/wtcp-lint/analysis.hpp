// wtcp-lint per-file checks (Tier 1.5 — see docs/static-analysis.md).
//
// Every check walks the token stream from lexer.hpp with a per-function
// scope model (brace depth plus virtual scopes for brace-less control
// statements), so diagnostics are scope-aware without a real AST:
//
//   use-after-move     a local consumed by std::move(x) and read again
//                      before reassignment in the same scope
//   deferred-capture   lambdas handed to schedule/at/after-shaped sinks
//                      with default [&] capture or named by-ref captures
//   audit-pure         side effects inside WTCP_AUDIT_CHECK conditions,
//                      or WTCP_AUDIT_ONLY statements mutating non-audit
//                      state — both vanish in release builds
//   determinism        the seven lint_determinism.py rules at token
//                      level, plus range-for over unordered-container
//                      members and clock/rand access laundered through
//                      in-file aliases
//
// Cross-file material (probe-name bind/read sites, the set of string
// literals) is collected here and judged in driver.cpp.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "tools/wtcp-lint/lexer.hpp"

namespace wtcp::lint {

struct Diagnostic {
  std::string file;  // repo-relative
  int line = 0;
  std::string check;    // "use-after-move", "deferred-capture", ...
  std::string message;  // human-readable, no trailing period style
};

struct ProbeSite {
  std::string name;
  int line = 0;
};

struct FileScan {
  std::vector<Diagnostic> diags;
  std::vector<ProbeSite> probe_binds;   // counter("x") / gauge / histogram
  std::vector<ProbeSite> probe_reads;   // counter_value("x") / gauge_value
  std::set<std::string> string_literals;
};

struct CheckOptions {
  bool use_after_move = true;
  bool deferred_capture = true;
  bool audit_pure = true;
  bool determinism = true;
};

/// Run every enabled per-file check over one lexed file.  `file` is the
/// repo-relative path stamped into diagnostics.
FileScan scan_file(const std::string& file, const std::vector<Token>& toks,
                   const CheckOptions& opt);

}  // namespace wtcp::lint
