#include "tools/wtcp-lint/analysis.hpp"

#include <algorithm>
#include <map>

namespace wtcp::lint {
namespace {

bool any_of(const std::string& s, std::initializer_list<const char*> names) {
  for (const char* n : names) {
    if (s == n) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Scope-aware walks operate on the non-preprocessor token view: a macro
// body with unbalanced braces (`#define BEGIN {`) must not corrupt brace
// tracking, and directive lines are not statements.
// ---------------------------------------------------------------------------
std::vector<const Token*> code_view(const std::vector<Token>& toks) {
  std::vector<const Token*> v;
  v.reserve(toks.size());
  for (const Token& t : toks) {
    if (!t.pp && t.kind != Tok::kEnd) v.push_back(&t);
  }
  return v;
}

const Token kEndTok{};

struct View {
  const std::vector<const Token*>& v;
  const Token& at(std::size_t i) const { return i < v.size() ? *v[i] : kEndTok; }
  const Token& prev(std::size_t i) const {
    return i == 0 ? kEndTok : at(i - 1);
  }
  std::size_t size() const { return v.size(); }

  /// Index just past the `)` matching the `(` at `open` (or size()).
  std::size_t skip_parens(std::size_t open) const {
    int depth = 0;
    for (std::size_t i = open; i < v.size(); ++i) {
      if (at(i).punct("(")) ++depth;
      if (at(i).punct(")") && --depth == 0) return i + 1;
    }
    return v.size();
  }
};

// ---------------------------------------------------------------------------
// use-after-move
// ---------------------------------------------------------------------------
void check_use_after_move(const std::string& file, const View& t,
                          std::vector<Diagnostic>& out) {
  struct Mark {
    int depth;
    int line;
  };
  std::map<std::string, Mark> moved;

  int depth = 0;
  int pdepth = 0;  // paren depth: `;` inside for(;;) is not a statement end
  // Paren depth at each enclosing `{`: inside a lambda body that is itself
  // a call argument (`sink.after(d, [&]{ a; b; })`), pdepth is nonzero yet
  // the `;` tokens are real statement ends.  A `;` ends a statement iff
  // pdepth equals the enclosing brace's paren depth.
  std::vector<int> brace_pdepth;
  // Brace-less control statements (`if (c) f(std::move(x));`) get a
  // virtual scope so the conditional move does not poison the fall-
  // through path; each entry records the brace depth it was opened at.
  std::vector<int> virt;
  bool stmt_start = true;
  bool suppress = false;  // statement began with return/throw/break/...

  // Constructor init lists (`Foo(T name) : name_(std::move(name)) {`) sit
  // at the *enclosing* brace depth; their moves belong to the ctor body,
  // so they are marked one deeper and die with it instead of leaking
  // marks across every following function in the file.
  bool ctor_init = false;
  // Ternary arms: only one of `c ? f(std::move(p)) : g(std::move(p))`
  // evaluates, so marks made between `?` and its `:` are dropped at the
  // `:` rather than reading the second arm as a double consume.
  struct Ternary {
    int pdepth;
    std::vector<std::string> names;
  };
  std::vector<Ternary> ternaries;
  // Lambda init-captures (`[pkt = std::move(pkt)]`) consume the outer
  // local but *redeclare* the name for the lambda body: the body uses
  // the capture, not the moved-from outer variable.
  std::vector<std::string> pending_shadow;
  struct ShadowFrame {
    int body_depth;
    std::map<std::string, Mark> saved;
  };
  std::vector<ShadowFrame> shadows;

  const auto effective = [&] {
    return depth + static_cast<int>(virt.size()) + (ctor_init ? 1 : 0);
  };
  const auto clear_deeper = [&] {
    for (auto it = moved.begin(); it != moved.end();) {
      if (it->second.depth > effective()) {
        it = moved.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t.at(i);
    if (tok.punct("{")) {
      ctor_init = false;
      brace_pdepth.push_back(pdepth);
      ++depth;
      if (!pending_shadow.empty()) {
        ShadowFrame frame;
        frame.body_depth = depth;
        for (const std::string& n : pending_shadow) {
          const auto it = moved.find(n);
          if (it != moved.end()) {
            frame.saved.emplace(n, it->second);
            moved.erase(it);
          }
        }
        pending_shadow.clear();
        shadows.push_back(std::move(frame));
      }
      stmt_start = true;
      continue;
    }
    if (tok.punct("}")) {
      if (depth > 0) --depth;
      if (!brace_pdepth.empty()) brace_pdepth.pop_back();
      while (!virt.empty() && virt.back() > depth) virt.pop_back();
      ternaries.clear();
      clear_deeper();
      while (!shadows.empty() && shadows.back().body_depth > depth) {
        for (auto& [n, m] : shadows.back().saved) moved[n] = m;
        shadows.pop_back();
      }
      stmt_start = true;
      suppress = false;
      continue;
    }
    if (tok.punct("(")) ++pdepth;
    if (tok.punct(")")) {
      if (pdepth > 0) --pdepth;
      if (t.at(i + 1).punct(":")) ctor_init = true;  // `Foo(T x) : x_(...)`
    }
    if (tok.punct(";")) {
      // for(;;) / if-init semicolons live deeper in parens than the
      // enclosing brace; those are not statement ends.
      if (pdepth > (brace_pdepth.empty() ? 0 : brace_pdepth.back())) continue;
      while (!virt.empty() && virt.back() == depth) virt.pop_back();
      ctor_init = false;
      ternaries.clear();
      pending_shadow.clear();
      clear_deeper();
      stmt_start = true;
      suppress = false;
      continue;
    }
    if (tok.punct("?")) {
      ternaries.push_back({pdepth, {}});
      continue;
    }
    if (tok.punct(":")) {
      if (!ternaries.empty() && ternaries.back().pdepth == pdepth) {
        // End of the true arm: its moves are conditional, not consumed
        // on the path that evaluates the false arm.
        for (const std::string& n : ternaries.back().names) moved.erase(n);
        ternaries.pop_back();
      } else {
        stmt_start = true;  // labels / case bodies start statements
      }
      continue;
    }

    if (tok.kind == Tok::kIdent) {
      if (stmt_start &&
          any_of(tok.text,
                 {"return", "throw", "break", "continue", "goto",
                  "co_return"})) {
        suppress = true;
        stmt_start = false;
        continue;
      }
      if (any_of(tok.text, {"if", "for", "while", "switch"})) {
        stmt_start = false;
        // Find the condition parens, skip them, and open a virtual scope
        // if the controlled statement is brace-less.
        std::size_t j = i + 1;
        if (tok.text == "do") j = i;  // unreachable; kept for symmetry
        if (t.at(j).punct("(")) {
          const std::size_t after = t.skip_parens(j);
          if (!t.at(after).punct("{") && !t.at(after).ident("if")) {
            virt.push_back(depth);
          }
          // Walk the condition tokens normally (moves inside a condition
          // are real); do not jump `i` forward.
        }
        continue;
      }
      if (tok.text == "else") {
        stmt_start = false;
        if (!t.at(i + 1).punct("{") && !t.at(i + 1).ident("if")) {
          virt.push_back(depth);
        }
        continue;
      }
    }
    stmt_start = false;

    // std::move(x) — consume a plain local.
    if (tok.ident("std") && t.at(i + 1).punct("::") &&
        t.at(i + 2).ident("move") && t.at(i + 3).punct("(") &&
        t.at(i + 4).kind == Tok::kIdent && t.at(i + 5).punct(")")) {
      const std::string& name = t.at(i + 4).text;
      const auto it = moved.find(name);
      if (it != moved.end()) {
        out.push_back({file, t.at(i + 4).line, "use-after-move",
                       "'" + name + "' moved again after std::move on line " +
                           std::to_string(it->second.line) +
                           " (double consume)"});
        moved.erase(it);
      }
      if (!suppress) {
        moved[name] = Mark{effective(), tok.line};
        if (!ternaries.empty()) ternaries.back().names.push_back(name);
        // `[name = std::move(name)]`: the capture redeclares the name for
        // the lambda body — shadow it there, restore after.
        if (i >= 3 && t.prev(i).punct("=") && t.at(i - 2).ident(name.c_str()) &&
            (t.at(i - 3).punct("[") || t.at(i - 3).punct(","))) {
          pending_shadow.push_back(name);
        }
      }
      i += 5;  // past the closing paren
      continue;
    }

    if (tok.kind != Tok::kIdent) continue;
    const auto it = moved.find(tok.text);
    if (it == moved.end()) continue;
    // Not a use of the local: member names, qualified names.
    if (t.prev(i).punct(".") || t.prev(i).punct("->") ||
        t.prev(i).punct("::") || t.at(i + 1).punct("::")) {
      continue;
    }
    const Token& nxt = t.at(i + 1);
    if (nxt.punct("=")) {
      // `x = std::move(x)` (incl. init-captures) reads x before writing
      // it — leave the mark for the move pattern to judge.
      const bool self_move =
          t.at(i + 2).ident("std") && t.at(i + 3).punct("::") &&
          t.at(i + 4).ident("move") && t.at(i + 5).punct("(") &&
          t.at(i + 6).ident(tok.text.c_str()) && t.at(i + 7).punct(")");
      if (!self_move) moved.erase(it);  // reassignment re-initializes
      continue;
    }
    if ((nxt.punct(".")) && t.at(i + 2).kind == Tok::kIdent &&
        any_of(t.at(i + 2).text, {"reset", "clear", "assign"}) &&
        t.at(i + 3).punct("(")) {
      moved.erase(it);  // recognized re-initialization member call
      continue;
    }
    out.push_back({file, tok.line, "use-after-move",
                   "'" + tok.text + "' used after std::move on line " +
                       std::to_string(it->second.line)});
    moved.erase(it);
  }
}

// ---------------------------------------------------------------------------
// deferred-capture
// ---------------------------------------------------------------------------
void check_deferred_capture(const std::string& file, const View& t,
                            std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t.at(i);
    if (tok.kind != Tok::kIdent || !t.at(i + 1).punct("(")) continue;
    const bool method = t.prev(i).punct(".") || t.prev(i).punct("->");
    bool sink = false;
    if (any_of(tok.text,
               {"schedule", "schedule_at", "schedule_after", "call_at",
                "defer", "post"})) {
      sink = true;
    } else if (method && any_of(tok.text, {"at", "after"})) {
      // The Simulator's short names; requiring the method-call shape
      // keeps container ::at() lookups out (those never take lambdas
      // with capture defaults anyway).
      sink = true;
    }
    if (!sink) continue;

    // Walk the sink's argument list; lambda introducers are only
    // considered at the top argument level, outside nested braces.
    int pdepth = 0;
    int bdepth = 0;
    bool after_sep = false;  // previous token was '(' or ',' at top level
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      const Token& a = t.at(j);
      if (a.punct("(")) {
        ++pdepth;
        after_sep = pdepth == 1 && bdepth == 0;
        continue;
      }
      if (a.punct(")")) {
        if (--pdepth == 0) break;
        after_sep = false;
        continue;
      }
      if (a.punct("{")) ++bdepth;
      if (a.punct("}") && bdepth > 0) --bdepth;
      if (a.punct(",")) {
        after_sep = pdepth == 1 && bdepth == 0;
        continue;
      }
      if (a.punct("[") && after_sep) {
        // Capture list of a lambda passed directly to the sink.
        int cdepth = 1;
        for (std::size_t k = j + 1; k < t.size() && cdepth > 0; ++k) {
          const Token& c = t.at(k);
          if (c.punct("[")) ++cdepth;
          if (c.punct("]")) {
            --cdepth;
            if (cdepth == 0) j = k;
            continue;
          }
          if (cdepth != 1) continue;
          const bool at_entry = t.prev(k).punct("[") || t.prev(k).punct(",");
          if (c.punct("&") && at_entry) {
            if (t.at(k + 1).punct(",") || t.at(k + 1).punct("]")) {
              out.push_back(
                  {file, c.line, "deferred-capture",
                   "lambda passed to deferred sink '" + tok.text +
                       "' uses default [&] capture; the callback can "
                       "outlive the enclosing frame — capture by value "
                       "(or [this]) instead"});
            } else if (t.at(k + 1).kind == Tok::kIdent) {
              out.push_back(
                  {file, c.line, "deferred-capture",
                   "lambda passed to deferred sink '" + tok.text +
                       "' captures '" + t.at(k + 1).text +
                       "' by reference; a function-local dangles once "
                       "the callback outlives the frame — capture by "
                       "value instead"});
            }
          }
        }
      }
      after_sep = false;
    }
  }
}

// ---------------------------------------------------------------------------
// audit-pure
// ---------------------------------------------------------------------------
const char* kAssignOps[] = {"=",  "+=", "-=", "*=",  "/=", "%=",
                            "&=", "|=", "^=", "<<=", ">>="};

bool is_assign_op(const Token& t) {
  if (t.kind != Tok::kPunct) return false;
  for (const char* op : kAssignOps) {
    if (t.text == op) return true;
  }
  return false;
}

// Walk back from index `j` (exclusive) over a member chain like
// `a.b[i].c` and return the base identifier's text ("" if none).
std::string base_ident_before(const View& t, std::size_t j) {
  if (j == 0) return "";
  std::size_t k = j - 1;
  // Skip one balanced [] group (array element targets).
  if (t.at(k).punct("]")) {
    int d = 0;
    while (k > 0) {
      if (t.at(k).punct("]")) ++d;
      if (t.at(k).punct("[") && --d == 0) {
        --k;
        break;
      }
      --k;
    }
  }
  if (t.at(k).kind != Tok::kIdent) return "";
  while (k >= 2 && (t.at(k - 1).punct(".") || t.at(k - 1).punct("->")) &&
         t.at(k - 2).kind == Tok::kIdent) {
    k -= 2;
  }
  return t.at(k).kind == Tok::kIdent ? t.at(k).text : "";
}

void check_audit_pure(const std::string& file, const View& t,
                      std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t.at(i);
    const bool is_check = tok.ident("WTCP_AUDIT_CHECK");
    const bool is_only = tok.ident("WTCP_AUDIT_ONLY");
    if ((!is_check && !is_only) || !t.at(i + 1).punct("(")) continue;
    const std::size_t end = t.skip_parens(i + 1);  // one past ')'
    const std::size_t lo = i + 2;
    const std::size_t hi = end > 0 ? end - 1 : lo;

    // WTCP_AUDIT_ONLY may declare audit-local state and mutate it (the
    // recount loops); mutating anything *not* declared inside the macro
    // is the hazard.  Collect locals declared in the region first.
    std::set<std::string> local;
    if (is_only) {
      for (std::size_t j = lo; j < hi; ++j) {
        if (t.at(j).kind != Tok::kIdent) continue;
        const Token& nx = t.at(j + 1);
        if (!nx.punct("=") && !nx.punct("{")) continue;
        const Token& pv = t.prev(j);
        const bool type_tail = pv.kind == Tok::kIdent || pv.punct(">") ||
                               pv.punct("&") || pv.punct("*");
        if (type_tail && !pv.ident("return")) local.insert(t.at(j).text);
      }
    }

    for (std::size_t j = lo; j < hi; ++j) {
      const Token& a = t.at(j);
      const int line = a.line;
      if (a.punct("++") || a.punct("--")) {
        std::string target;
        if (t.at(j + 1).kind == Tok::kIdent) {
          target = base_ident_before(t, j + 2);
        } else {
          target = base_ident_before(t, j);
        }
        if (is_check || local.count(target) == 0) {
          out.push_back({file, line, "audit-pure",
                         std::string(is_check ? "WTCP_AUDIT_CHECK condition"
                                              : "WTCP_AUDIT_ONLY statement") +
                             " applies '" + a.text + "' to '" + target +
                             "' — the side effect vanishes when the audit "
                             "layer is off"});
        }
        continue;
      }
      if (is_assign_op(a)) {
        if (a.punct("=") && (t.prev(j).punct("[") || t.at(j + 1).punct("]"))) {
          continue;  // lambda default copy capture [=]
        }
        const std::string target = base_ident_before(t, j);
        bool declaration = false;
        if (is_only && t.prev(j).kind == Tok::kIdent &&
            t.prev(j).text == target && local.count(target) != 0) {
          // `T name = expr` — the declaration that put name into local.
          declaration = true;
        }
        if (is_check || (!declaration && local.count(target) == 0)) {
          out.push_back({file, line, "audit-pure",
                         std::string(is_check ? "WTCP_AUDIT_CHECK condition"
                                              : "WTCP_AUDIT_ONLY statement") +
                             " assigns to '" + target +
                             "' — the side effect vanishes when the audit "
                             "layer is off"});
        }
        continue;
      }
      if (a.kind == Tok::kIdent &&
          (a.text == "reset" || a.text == "release") &&
          (t.prev(j).punct(".") || t.prev(j).punct("->")) &&
          t.at(j + 1).punct("(")) {
        const std::string target = base_ident_before(t, j - 1);
        if (is_check || local.count(target) == 0) {
          out.push_back({file, line, "audit-pure",
                         "'" + target + "." + a.text + "()' inside " +
                             (is_check ? "WTCP_AUDIT_CHECK" : "WTCP_AUDIT_ONLY") +
                             " — the release/reset vanishes when the audit "
                             "layer is off"});
        }
      }
    }
    i = hi;
  }
}

// ---------------------------------------------------------------------------
// determinism — token-level port of lint_determinism.py plus the
// alias-laundering and unordered-iteration checks regex cannot do.
// ---------------------------------------------------------------------------
struct DetState {
  std::set<std::string> unordered_vars;     // members/locals of unordered type
  std::set<std::string> unordered_aliases;  // using X = std::unordered_map<..>
  std::set<std::string> chrono_ns_aliases;  // namespace c = std::chrono
  std::set<std::string> banned_type_aliases;  // using C = ...steady_clock
  std::set<std::string> banned_bare;  // using std::chrono::steady_clock
  std::set<std::size_t> alias_decl_idx;  // token indices of the decls
  bool chrono_namespace_open = false;    // using namespace std::chrono
};

bool match(const View& t, std::size_t i,
           std::initializer_list<const char*> seq) {
  std::size_t j = i;
  for (const char* s : seq) {
    if (!t.at(j).is(s)) return false;
    ++j;
  }
  return true;
}

bool is_banned_clock(const std::string& s) {
  return s == "steady_clock" || s == "system_clock" ||
         s == "high_resolution_clock";
}

/// Skip a balanced template argument list starting at the `<` at `i`;
/// returns the index one past the matching `>`.  `>>` closes two.
std::size_t skip_angles(const View& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    const Token& a = t.at(j);
    if (a.punct("<")) ++depth;
    if (a.punct(";") || a.punct("{")) return j;  // not a template after all
    if (a.punct(">") && --depth == 0) return j + 1;
    if (a.punct(">>")) {
      depth -= 2;
      if (depth <= 0) return j + 1;
    }
  }
  return t.size();
}

void det_collect(const View& t, DetState& st) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (match(t, i, {"using", "namespace", "std", "::", "chrono", ";"})) {
      st.chrono_namespace_open = true;
      continue;
    }
    // namespace N = std::chrono;
    if (t.at(i).ident("namespace") && t.at(i + 1).kind == Tok::kIdent &&
        match(t, i + 2, {"=", "std", "::", "chrono", ";"})) {
      st.chrono_ns_aliases.insert(t.at(i + 1).text);
      continue;
    }
    // using std::chrono::steady_clock;
    if (match(t, i, {"using", "std", "::", "chrono", "::"}) &&
        is_banned_clock(t.at(i + 5).text) && t.at(i + 6).punct(";")) {
      st.banned_bare.insert(t.at(i + 5).text);
      continue;
    }
    // using C = std::chrono::steady_clock;  (and typedef spelling)
    if (t.at(i).ident("using") && t.at(i + 1).kind == Tok::kIdent &&
        t.at(i + 2).punct("=")) {
      if (match(t, i + 3, {"std", "::", "chrono", "::"}) &&
          is_banned_clock(t.at(i + 7).text)) {
        st.banned_type_aliases.insert(t.at(i + 1).text);
        st.alias_decl_idx.insert(i + 1);
      }
      if (match(t, i + 3, {"std", "::", "random_device"})) {
        st.banned_type_aliases.insert(t.at(i + 1).text);
        st.alias_decl_idx.insert(i + 1);
      }
      if (match(t, i + 3, {"std", "::"}) &&
          t.at(i + 5).text.rfind("unordered_", 0) == 0) {
        st.unordered_aliases.insert(t.at(i + 1).text);
      }
    }
    if (t.at(i).ident("typedef")) {
      if (match(t, i + 1, {"std", "::", "chrono", "::"}) &&
          is_banned_clock(t.at(i + 5).text) &&
          t.at(i + 6).kind == Tok::kIdent) {
        st.banned_type_aliases.insert(t.at(i + 6).text);
        st.alias_decl_idx.insert(i + 6);
      }
    }
    // std::unordered_map<...> name   — remember `name`.
    if (match(t, i, {"std", "::"}) &&
        t.at(i + 2).text.rfind("unordered_", 0) == 0 &&
        t.at(i + 3).punct("<")) {
      const std::size_t after = skip_angles(t, i + 3);
      if (t.at(after).kind == Tok::kIdent) {
        st.unordered_vars.insert(t.at(after).text);
      }
    }
    // AliasT name;  where AliasT aliases an unordered container.
    if (t.at(i).kind == Tok::kIdent && st.unordered_aliases.count(t.at(i).text) &&
        t.at(i + 1).kind == Tok::kIdent &&
        (t.at(i + 2).punct(";") || t.at(i + 2).punct("=") ||
         t.at(i + 2).punct("{"))) {
      st.unordered_vars.insert(t.at(i + 1).text);
    }
  }
}

void check_determinism(const std::string& file, const View& t,
                       std::vector<Diagnostic>& out) {
  DetState st;
  det_collect(t, st);

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t.at(i);
    const Token& pv = t.prev(i);
    const int line = tok.line;

    if (match(t, i, {"std", "::", "random_device"})) {
      out.push_back({file, line, "random-device",
                     "std::random_device draws hardware entropy; fork a "
                     "sim::Rng stream off the run seed instead"});
      i += 2;
      continue;
    }
    if (match(t, i, {"std", "::", "chrono", "::"})) {
      const std::string& c = t.at(i + 4).text;
      if (c == "system_clock" || c == "high_resolution_clock") {
        out.push_back({file, line, "system-clock",
                       "std::chrono::" + c +
                           " is wall-clock time; simulation logic must use "
                           "sim::Time"});
        i += 4;
        continue;
      }
      if (c == "steady_clock") {
        out.push_back({file, line, "steady-clock",
                       "std::chrono::steady_clock is host-dependent; only "
                       "wall-time profiling may use it (allowlist with a "
                       "justification if so)"});
        i += 4;
        continue;
      }
    }
    if (match(t, i, {"std", "::"}) &&
        t.at(i + 2).text.rfind("unordered_", 0) == 0 &&
        (t.at(i + 2).text == "unordered_map" ||
         t.at(i + 2).text == "unordered_set" ||
         t.at(i + 2).text == "unordered_multimap" ||
         t.at(i + 2).text == "unordered_multiset")) {
      out.push_back({file, line, "unordered-container",
                     "std::" + t.at(i + 2).text +
                         " iterates in hash/address order; any use must be "
                         "justified as never iterated on an output-affecting "
                         "path (allowlist) or replaced with an ordered/slab "
                         "container"});
      i += 2;
      continue;
    }
    // std::map<K*, ...> / std::set<const T*...>
    if (match(t, i, {"std", "::"}) &&
        (t.at(i + 2).ident("map") || t.at(i + 2).ident("set")) &&
        t.at(i + 3).punct("<")) {
      int depth = 0;
      const Token* last = nullptr;
      for (std::size_t j = i + 3; j < t.size(); ++j) {
        const Token& a = t.at(j);
        if (a.punct("<")) ++depth;
        if (a.punct(">") || a.punct(">>")) {
          depth -= a.punct(">>") ? 2 : 1;
          if (depth <= 0) break;
        }
        if (a.punct(",") && depth == 1) break;
        if (a.punct(";") || a.punct("{")) break;  // comparison, not template
        if (depth >= 1 && !a.punct("<")) last = &a;
      }
      if (last != nullptr && last->punct("*")) {
        out.push_back({file, line, "pointer-keyed-order",
                       "std::" + t.at(i + 2).text +
                           " keyed by a pointer orders by address, i.e. by "
                           "allocator behaviour"});
      }
    }
    if (tok.kind == Tok::kIdent && !pv.punct(".") && !pv.punct("->") &&
        !pv.punct("::") && pv.kind != Tok::kIdent) {
      if (any_of(tok.text, {"rand", "srand", "drand48", "lrand48", "random"}) &&
          t.at(i + 1).punct("(") && t.at(i + 2).punct(")")) {
        out.push_back({file, line, "libc-rand",
                       "'" + tok.text +
                           "()' is global-state RNG; fork a sim::Rng stream "
                           "off the run seed instead"});
        continue;
      }
      if (tok.text == "time" && t.at(i + 1).punct("(") &&
          (t.at(i + 2).punct(")") ||
           ((t.at(i + 2).ident("NULL") || t.at(i + 2).ident("nullptr") ||
             t.at(i + 2).text == "0") &&
            t.at(i + 3).punct(")")))) {
        out.push_back({file, line, "wall-clock",
                       "time() is wall-clock time; simulation logic must use "
                       "sim::Time"});
        continue;
      }
    }
    // Laundered clocks: bare names after using-declarations / an open
    // `using namespace std::chrono`, namespace aliases, type aliases.
    if (tok.kind == Tok::kIdent && !pv.punct("::") &&
        is_banned_clock(tok.text) &&
        (st.chrono_namespace_open || st.banned_bare.count(tok.text))) {
      out.push_back({file, line, "determinism-alias",
                     "'" + tok.text +
                         "' reaches a banned clock through a using-"
                         "declaration; the alias does not launder the "
                         "wall-clock dependency"});
      continue;
    }
    if (tok.kind == Tok::kIdent && st.chrono_ns_aliases.count(tok.text) &&
        t.at(i + 1).punct("::") && is_banned_clock(t.at(i + 2).text)) {
      out.push_back({file, line, "determinism-alias",
                     "'" + tok.text + "::" + t.at(i + 2).text +
                         "' reaches a banned clock through a namespace "
                         "alias"});
      i += 2;
      continue;
    }
    if (tok.kind == Tok::kIdent && st.banned_type_aliases.count(tok.text) &&
        !st.alias_decl_idx.count(i) && !pv.punct(".") && !pv.punct("->")) {
      out.push_back({file, line, "determinism-alias",
                     "'" + tok.text +
                         "' aliases a banned clock/entropy type declared in "
                         "this file; the alias does not launder it"});
      continue;
    }
    // Range-for over an unordered-container member/local.
    if (tok.ident("for") && t.at(i + 1).punct("(")) {
      const std::size_t close = t.skip_parens(i + 1) - 1;
      // Find the top-level ':' (range-for separator).
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t.at(j).punct("(")) ++depth;
        if (t.at(j).punct(")")) --depth;
        if (depth == 1 && t.at(j).punct(":") && !t.at(j + 1).punct(":") &&
            !t.prev(j).punct(":")) {
          colon = j;
          break;
        }
      }
      if (colon != 0) {
        // Range expression: `x`, `obj.x`, `this->x` — take the last ident.
        const Token& lastt = t.at(close - 1);
        if (lastt.kind == Tok::kIdent &&
            st.unordered_vars.count(lastt.text) &&
            (close - 1 == colon + 1 || t.prev(close - 1).punct(".") ||
             t.prev(close - 1).punct("->"))) {
          out.push_back(
              {file, lastt.line, "unordered-iteration",
               "range-for over unordered container '" + lastt.text +
                   "' iterates in hash/address order; iterate an ordered "
                   "mirror or justify in the allowlist"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// probe-site collection (cross-file judgment happens in the driver)
// ---------------------------------------------------------------------------
void collect_probes(const View& t, FileScan& fs) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t.at(i);
    if (tok.kind == Tok::kString) {
      fs.string_literals.insert(tok.text);
      continue;
    }
    if (tok.kind != Tok::kIdent) continue;
    const bool method = t.prev(i).punct(".") || t.prev(i).punct("->");
    if (!method || !t.at(i + 1).punct("(") ||
        t.at(i + 2).kind != Tok::kString) {
      continue;
    }
    if (any_of(tok.text, {"counter", "gauge", "histogram"})) {
      fs.probe_binds.push_back({t.at(i + 2).text, t.at(i + 2).line});
    } else if (any_of(tok.text, {"counter_value", "gauge_value"})) {
      fs.probe_reads.push_back({t.at(i + 2).text, t.at(i + 2).line});
    }
  }
}

}  // namespace

FileScan scan_file(const std::string& file, const std::vector<Token>& toks,
                   const CheckOptions& opt) {
  FileScan fs;
  const std::vector<const Token*> code = code_view(toks);
  const View cv{code};

  std::vector<const Token*> all;
  all.reserve(toks.size());
  for (const Token& t : toks) {
    if (t.kind != Tok::kEnd) all.push_back(&t);
  }
  const View av{all};

  if (opt.use_after_move) check_use_after_move(file, cv, fs.diags);
  if (opt.deferred_capture) check_deferred_capture(file, cv, fs.diags);
  if (opt.audit_pure) check_audit_pure(file, cv, fs.diags);
  if (opt.determinism) check_determinism(file, av, fs.diags);
  collect_probes(av, fs);

  std::stable_sort(fs.diags.begin(), fs.diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return fs;
}

}  // namespace wtcp::lint
