// wtcp-lint tokenizer (Tier 1.5 — see docs/static-analysis.md).
//
// A comment/string-correct C++ lexer with a preprocessor-aware line
// model, self-contained on purpose: this environment ships no clang
// headers, and the checks in analysis.cpp only need token streams, not
// semantics.  What it gets right that the old regex lint could not:
//
//   * comments (// and /* */) produce no tokens, so a banned construct
//     mentioned in prose never fires;
//   * string and character literals are single tokens whose *content*
//     is never scanned by code checks — `R"(std::move(x))"` is data;
//   * raw strings with custom delimiters, encoding prefixes (u8/u/U/L),
//     and multi-line bodies are lexed to their real end;
//   * backslash-newline splices are resolved before lexing (physical
//     line numbers are preserved per token), so a macro spanning five
//     lines is one logical line, and a spliced // comment swallows its
//     continuation exactly like the real preprocessor;
//   * preprocessor directives are tokenized (flagged `pp`, carrying the
//     directive name) so checks can reason about macro bodies without
//     letting an unbalanced `#define BEGIN {` corrupt brace tracking;
//     `#include` payloads produce no tokens at all.
//
// Multi-character operators are max-munched (`==`, `->`, `++`, `<<=`,
// `::`, ...), which is what lets the audit-purity check tell `=` from
// `==` without regex heroics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wtcp::lint {

enum class Tok {
  kIdent,
  kNumber,
  kString,   // text holds the *content* (quotes/prefix/delims stripped)
  kCharLit,  // text holds the content between the quotes
  kPunct,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int line = 0;       // physical line of the token's first character
  bool pp = false;    // inside a preprocessor directive's logical line
  std::string pp_directive;  // "define", "if", ... for pp tokens

  bool is(const char* s) const { return text == s; }
  bool ident(const char* s) const { return kind == Tok::kIdent && text == s; }
  bool punct(const char* s) const { return kind == Tok::kPunct && text == s; }
};

/// Lex `source` (the bytes of one translation unit).  Never fails: on a
/// malformed construct (unterminated string/comment) the remainder is
/// consumed as best-effort tokens — a linter must not die on the code it
/// is judging.  The returned stream ends with one kEnd token.
std::vector<Token> lex(const std::string& source);

}  // namespace wtcp::lint
