// wtcp-lint structured allowlist (replaces determinism_allowlist.txt).
//
// One file, one entry per line:
//
//     <check-id> <repo-relative-path> <one-line justification>
//
// `#` starts a comment.  An entry suppresses every diagnostic with that
// check id in that file; the justification must argue why the flagged
// construct cannot perturb simulation output or outlive its frame.  An
// entry that suppressed nothing in a run is STALE and fails the lint —
// stale allowlists hide regressions (policy inherited from the old
// determinism allowlist, see docs/static-analysis.md).
#pragma once

#include <string>
#include <vector>

#include "tools/wtcp-lint/analysis.hpp"

namespace wtcp::lint {

struct AllowEntry {
  std::string check;
  std::string path;
  std::string justification;
  int file_line = 0;   // line in the allowlist file, for stale reports
  bool used = false;
};

struct Allowlist {
  std::vector<AllowEntry> entries;
  std::vector<std::string> parse_errors;

  /// True (and marks the entry used) if some entry covers `d`.
  bool covers(const Diagnostic& d);

  /// Stale entries after filtering a whole run.
  std::vector<const AllowEntry*> stale() const;
};

/// Load `path`.  A missing file is an empty allowlist only when
/// `must_exist` is false; malformed lines are reported via parse_errors.
Allowlist load_allowlist(const std::string& path, bool must_exist,
                         bool* io_error);

}  // namespace wtcp::lint
