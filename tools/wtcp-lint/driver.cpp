#include "tools/wtcp-lint/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "tools/wtcp-lint/allowlist.hpp"
#include "tools/wtcp-lint/analysis.hpp"
#include "tools/wtcp-lint/lexer.hpp"

namespace fs = std::filesystem;

namespace wtcp::lint {
namespace {

bool has_cpp_suffix(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool is_excluded(const std::string& rel) {
  // Deliberately-violating inputs for the fixture harness; only ever
  // scanned one-by-one in fixture mode.
  return rel.find("lint_fixtures") != std::string::npos;
}

std::string read_file(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

bool under(const std::string& rel, const char* dir) {
  return rel.rfind(std::string(dir) + "/", 0) == 0;
}

struct ScannedFile {
  std::string rel;
  FileScan scan;
};

}  // namespace

int run_driver(const DriverOptions& opt) {
  const fs::path root =
      opt.root.empty() ? fs::current_path() : fs::path(opt.root);

  // ---- collect files -----------------------------------------------------
  std::vector<std::string> files;  // repo-relative
  for (const std::string& input : opt.inputs) {
    const fs::path p = root / input;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file(ec) || !has_cpp_suffix(it->path())) continue;
        const std::string rel =
            fs::relative(it->path(), root, ec).generic_string();
        if (!opt.fixture_mode && is_excluded(rel)) continue;
        files.push_back(rel);
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(fs::relative(p, root, ec).generic_string());
    } else {
      std::fprintf(stderr, "wtcp-lint: no such input: %s\n", input.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // ---- scan --------------------------------------------------------------
  std::vector<ScannedFile> scans;
  scans.reserve(files.size());
  for (const std::string& rel : files) {
    bool ok = false;
    const std::string text = read_file(root / rel, &ok);
    if (!ok) {
      std::fprintf(stderr, "wtcp-lint: cannot read %s\n", rel.c_str());
      return 1;
    }
    CheckOptions co;
    if (!opt.fixture_mode) {
      co.determinism = under(rel, "src");
      co.deferred_capture = under(rel, "src");
    }
    scans.push_back({rel, scan_file(rel, lex(text), co)});
  }

  // ---- cross-file probe-drift -------------------------------------------
  std::string doc_text;
  for (const std::string& doc : opt.probe_docs) {
    bool ok = false;
    doc_text += read_file(root / doc, &ok);
    if (!ok) {
      std::fprintf(stderr, "wtcp-lint: cannot read probe doc %s\n",
                   doc.c_str());
      return 1;
    }
    doc_text += '\n';
  }

  std::set<std::string> bound_names;
  std::set<std::string> read_names;
  for (const ScannedFile& sf : scans) {
    for (const ProbeSite& b : sf.scan.probe_binds) bound_names.insert(b.name);
    for (const ProbeSite& r : sf.scan.probe_reads) read_names.insert(r.name);
  }
  const auto in_other_file = [&](const std::string& name,
                                 const std::string& self) {
    for (const ScannedFile& sf : scans) {
      if (sf.rel != self && sf.scan.string_literals.count(name)) return true;
    }
    return false;
  };

  std::vector<Diagnostic> diags;
  for (const ScannedFile& sf : scans) {
    for (const Diagnostic& d : sf.scan.diags) diags.push_back(d);
    for (const ProbeSite& r : sf.scan.probe_reads) {
      if (bound_names.count(r.name) || in_other_file(r.name, sf.rel)) continue;
      diags.push_back(
          {sf.rel, r.line, "probe-drift",
           "probe '" + r.name +
               "' is read here but bound nowhere in the tree; missing "
               "probes silently read as zero"});
    }
    const bool judge_binds = opt.fixture_mode || under(sf.rel, "src");
    if (!judge_binds) continue;
    for (const ProbeSite& b : sf.scan.probe_binds) {
      if (read_names.count(b.name) || in_other_file(b.name, sf.rel) ||
          doc_text.find(b.name) != std::string::npos) {
        continue;
      }
      diags.push_back(
          {sf.rel, b.line, "probe-drift",
           "probe '" + b.name +
               "' is bound here but never read by any test/exporter and "
               "not documented in the probe catalog "
               "(docs/observability.md)"});
    }
  }

  // ---- --only filter -----------------------------------------------------
  if (!opt.only.empty()) {
    const std::set<std::string> keep(opt.only.begin(), opt.only.end());
    diags.erase(std::remove_if(diags.begin(), diags.end(),
                               [&](const Diagnostic& d) {
                                 return keep.count(d.check) == 0;
                               }),
                diags.end());
  }

  // ---- allowlist ---------------------------------------------------------
  bool allow_io_error = false;
  Allowlist allow =
      load_allowlist(opt.allowlist_path.empty()
                         ? ""
                         : (root / opt.allowlist_path).string(),
                     /*must_exist=*/true, &allow_io_error);
  if (allow_io_error) {
    std::fprintf(stderr, "wtcp-lint: cannot read allowlist %s\n",
                 opt.allowlist_path.c_str());
    return 1;
  }
  int status = 0;
  for (const std::string& err : allow.parse_errors) {
    std::fprintf(stderr, "wtcp-lint: %s\n", err.c_str());
    status = 1;
  }

  std::vector<Diagnostic> kept;
  for (Diagnostic& d : diags) {
    if (!allow.covers(d)) kept.push_back(std::move(d));
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.check < b.check;
                   });
  for (const Diagnostic& d : kept) {
    std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.check.c_str(),
                d.message.c_str());
    status = 1;
  }

  // In --only runs, entries for filtered-out checks are not stale — the
  // run never judged them.
  std::set<std::string> judged;
  if (opt.only.empty()) {
    // every check ran
  } else {
    judged.insert(opt.only.begin(), opt.only.end());
  }
  for (const AllowEntry* e : allow.stale()) {
    if (!judged.empty() && judged.count(e->check) == 0) continue;
    std::printf("%s:%d: [stale-allowlist] entry [%s] %s matched nothing — "
                "remove it\n",
                opt.allowlist_path.c_str(), e->file_line, e->check.c_str(),
                e->path.c_str());
    status = 1;
  }

  if (status == 0) {
    std::fprintf(stderr,
                 "wtcp-lint: %zu files clean (%zu justified allowlist "
                 "entries)\n",
                 scans.size(), allow.entries.size());
  }
  return status;
}

}  // namespace wtcp::lint
