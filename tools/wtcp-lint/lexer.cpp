#include "tools/wtcp-lint/lexer.hpp"

#include <cctype>

namespace wtcp::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Splice-resolved character stream: logical characters plus the physical
// line each came from.  Raw-string bodies are re-read from this stream
// too; a backslash-newline inside a raw string is a (vanishingly rare)
// fidelity loss the checks never depend on.
struct Stream {
  std::string chars;
  std::vector<int> lines;
};

Stream splice(const std::string& src) {
  Stream s;
  s.chars.reserve(src.size());
  s.lines.reserve(src.size());
  int line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '\\') {
      // Backslash followed by (optional \r then) \n is a splice.
      std::size_t j = i + 1;
      if (j < src.size() && src[j] == '\r') ++j;
      if (j < src.size() && src[j] == '\n') {
        i = j;
        ++line;
        continue;
      }
    }
    s.chars.push_back(c);
    s.lines.push_back(line);
    if (c == '\n') ++line;
  }
  return s;
}

struct Lexer {
  const Stream& st;
  std::size_t i = 0;
  std::vector<Token> out;

  // Preprocessor line model: set when the first non-whitespace character
  // of a logical line is '#', cleared at the newline ending it.
  bool in_pp = false;
  std::string pp_directive;
  bool at_line_start = true;

  explicit Lexer(const Stream& s) : st(s) {}

  char cur() const { return i < st.chars.size() ? st.chars[i] : '\0'; }
  char at(std::size_t k) const {
    return i + k < st.chars.size() ? st.chars[i + k] : '\0';
  }
  int line() const {
    return i < st.lines.size() ? st.lines[i]
                               : (st.lines.empty() ? 1 : st.lines.back());
  }
  bool done() const { return i >= st.chars.size(); }

  void push(Tok kind, std::string text, int ln) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = ln;
    t.pp = in_pp;
    if (in_pp) t.pp_directive = pp_directive;
    out.push_back(std::move(t));
  }

  void newline() {
    in_pp = false;
    pp_directive.clear();
    at_line_start = true;
    ++i;
  }

  void run() {
    while (!done()) {
      const char c = cur();
      if (c == '\n') {
        newline();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++i;
        continue;
      }
      if (c == '/' && at(1) == '/') {
        while (!done() && cur() != '\n') ++i;
        continue;  // the \n itself is handled above (ends a pp line)
      }
      if (c == '/' && at(1) == '*') {
        i += 2;
        while (!done() && !(cur() == '*' && at(1) == '/')) ++i;
        if (!done()) i += 2;
        continue;  // block comments do not end a pp line (splice model)
      }
      if (c == '#' && at_line_start) {
        in_pp = true;
        ++i;
        // Directive name follows optional whitespace.
        while (cur() == ' ' || cur() == '\t') ++i;
        std::string name;
        while (ident_cont(cur())) name.push_back(st.chars[i++]);
        pp_directive = name;
        const int ln = line();
        push(Tok::kPunct, "#", ln);
        if (!name.empty()) push(Tok::kIdent, name, ln);
        if (name == "include") {
          // The payload (<...> or "...") is not C++ tokens; drop the line.
          while (!done() && cur() != '\n') ++i;
        }
        at_line_start = false;
        continue;
      }
      at_line_start = false;
      if (lex_string_or_char()) continue;
      if (ident_start(c)) {
        const int ln = line();
        std::string id;
        while (ident_cont(cur())) id.push_back(st.chars[i++]);
        push(Tok::kIdent, std::move(id), ln);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(at(1))))) {
        lex_number();
        continue;
      }
      lex_punct();
    }
    push(Tok::kEnd, "", st.lines.empty() ? 1 : st.lines.back());
  }

  // Returns true if an (optionally prefixed, optionally raw) string or
  // char literal starts at the cursor and was consumed.
  bool lex_string_or_char() {
    std::size_t p = i;  // after the encoding prefix, if any
    if (cur() == 'u' && at(1) == '8') {
      p = i + 2;
    } else if (cur() == 'u' || cur() == 'U' || cur() == 'L') {
      p = i + 1;
    }
    const auto pc = [&](std::size_t k) {
      return k < st.chars.size() ? st.chars[k] : '\0';
    };
    if (pc(p) == 'R' && pc(p + 1) == '"') {
      lex_raw_string(p + 2);
      return true;
    }
    if (pc(p) == '"') {
      lex_quoted(p, '"', Tok::kString);
      return true;
    }
    // Char literal: prefix must be immediately followed by '.  A bare
    // identifier like u8 alone falls through to identifier lexing; only
    // treat the prefix as such when the quote is really there.
    if (pc(p) == '\'' && (p == i || p == i + 1 || p == i + 2)) {
      if (p != i || cur() == '\'') {
        // Guard against digit separators: 1'000 reaches here only via
        // lex_number, never this function (cursor sits on a quote only
        // when the previous token ended).
        lex_quoted(p, '\'', Tok::kCharLit);
        return true;
      }
    }
    return false;
  }

  void lex_quoted(std::size_t open, char q, Tok kind) {
    const int ln = i < st.lines.size() ? st.lines[i] : 1;
    std::size_t k = open + 1;
    std::string content;
    while (k < st.chars.size() && st.chars[k] != q) {
      if (st.chars[k] == '\\' && k + 1 < st.chars.size()) {
        content.push_back(st.chars[k]);
        content.push_back(st.chars[k + 1]);
        k += 2;
        continue;
      }
      if (st.chars[k] == '\n') break;  // unterminated; stop at line end
      content.push_back(st.chars[k]);
      ++k;
    }
    if (k < st.chars.size() && st.chars[k] == q) ++k;
    i = k;
    push(kind, std::move(content), ln);
  }

  void lex_raw_string(std::size_t after_quote) {
    const int ln = i < st.lines.size() ? st.lines[i] : 1;
    // R"delim( ... )delim"
    std::size_t k = after_quote;
    std::string delim;
    while (k < st.chars.size() && st.chars[k] != '(' &&
           st.chars[k] != '\n' && delim.size() < 16) {
      delim.push_back(st.chars[k++]);
    }
    std::string content;
    if (k < st.chars.size() && st.chars[k] == '(') {
      ++k;
      const std::string closer = ")" + delim + "\"";
      while (k < st.chars.size()) {
        if (st.chars[k] == ')' &&
            st.chars.compare(k, closer.size(), closer) == 0) {
          k += closer.size();
          break;
        }
        content.push_back(st.chars[k++]);
      }
    }
    i = k;
    push(Tok::kString, std::move(content), ln);
  }

  void lex_number() {
    const int ln = line();
    std::string num;
    while (!done()) {
      const char c = cur();
      if (ident_cont(c) || c == '.' || c == '\'') {
        // Digit separator: 1'000'000.  Only between digits — a quote not
        // followed by an alnum ends the number (it starts a char lit).
        if (c == '\'' && !std::isalnum(static_cast<unsigned char>(at(1)))) {
          break;
        }
        num.push_back(st.chars[i++]);
        continue;
      }
      if ((c == '+' || c == '-') && !num.empty()) {
        const char prev = num.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          num.push_back(st.chars[i++]);
          continue;
        }
      }
      break;
    }
    push(Tok::kNumber, std::move(num), ln);
  }

  void lex_punct() {
    static const char* kOps[] = {
        // Longest first: maximal munch.
        "<<=", ">>=", "<=>", "...", "->*", "::", "->", "++", "--", "<<",
        ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
        "%=", "&=", "|=", "^=", ".*",
    };
    const int ln = line();
    for (const char* op : kOps) {
      const std::size_t n = std::char_traits<char>::length(op);
      if (st.chars.compare(i, n, op) == 0) {
        i += n;
        push(Tok::kPunct, op, ln);
        return;
      }
    }
    push(Tok::kPunct, std::string(1, st.chars[i]), ln);
    ++i;
  }
};

}  // namespace

std::vector<Token> lex(const std::string& source) {
  const Stream st = splice(source);
  Lexer lx(st);
  lx.run();
  return lx.out;
}

}  // namespace wtcp::lint
