// wtcp-lint driver: file collection, path-scoped check selection, the
// cross-file probe-drift check, allowlist filtering, and output.
//
// Scope policy (why this is a *scope-aware* analyzer and not a grep):
//
//   * determinism checks apply to src/ only — tests, benches and tools
//     may time walls and hash freely; simulation logic may not;
//   * deferred-capture applies to src/ only — a test that schedules a
//     [&] lambda and pumps the loop inside the same frame is safe, a
//     component whose callback outlives its frame is not;
//   * use-after-move and audit-pure apply everywhere;
//   * probe-drift: bind sites are judged for src/ (a probe the tree
//     publishes must be read or documented somewhere), read sites are
//     judged everywhere (reading a never-bound name silently yields 0).
#pragma once

#include <string>
#include <vector>

namespace wtcp::lint {

struct DriverOptions {
  std::string root;                     // repo root; paths printed relative
  std::vector<std::string> inputs;      // dirs or files, relative to root
  std::string allowlist_path;           // "" = no allowlist
  std::vector<std::string> probe_docs;  // files whose text "documents" probes
  std::vector<std::string> only;        // restrict to these check ids
  bool fixture_mode = false;  // all checks on every input, no path scoping
};

/// Run the analyzer; diagnostics go to stdout, errors to stderr.
/// Returns the process exit code (0 clean, 1 findings/stale/IO error,
/// 2 usage error).
int run_driver(const DriverOptions& opt);

}  // namespace wtcp::lint
