// wtcp-lint — in-tree, scope-aware static analyzer (Tier 1.5).
//
//   wtcp-lint [options] [input dir/file ...]
//
// Defaults mirror the repo layout: scan src/ bench/ tests/ examples/
// under --root (default: cwd), suppress via --allowlist, and treat
// docs/observability.md as the probe catalog for probe-drift.
//
// Exit status: 0 clean, 1 diagnostics / stale allowlist / IO error,
// 2 usage error.  Output format: `file:line: [check-id] message`.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/wtcp-lint/driver.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: wtcp-lint [options] [input ...]\n"
      "\n"
      "  --root DIR         repo root (default: cwd); inputs and reported\n"
      "                     paths are relative to it\n"
      "  --allowlist FILE   structured allowlist (default:\n"
      "                     scripts/lint_allowlist.txt when it exists;\n"
      "                     pass '' to disable)\n"
      "  --probe-doc FILE   text counted as probe documentation for the\n"
      "                     probe-drift check (repeatable; default:\n"
      "                     docs/observability.md when it exists)\n"
      "  --only IDS         comma-separated check ids to report\n"
      "  --fixture          fixture mode: every check on every input, no\n"
      "                     path scoping (used by the ctest harness)\n"
      "\n"
      "checks: use-after-move deferred-capture audit-pure probe-drift\n"
      "        libc-rand random-device wall-clock system-clock\n"
      "        steady-clock unordered-container pointer-keyed-order\n"
      "        unordered-iteration determinism-alias\n");
}

}  // namespace

int main(int argc, char** argv) {
  wtcp::lint::DriverOptions opt;
  bool allowlist_set = false;
  bool probe_doc_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "wtcp-lint: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--root") {
      const char* v = value();
      if (!v) return 2;
      opt.root = v;
    } else if (arg == "--allowlist") {
      const char* v = value();
      if (!v) return 2;
      opt.allowlist_path = v;
      allowlist_set = true;
    } else if (arg == "--probe-doc") {
      const char* v = value();
      if (!v) return 2;
      opt.probe_docs.push_back(v);
      probe_doc_set = true;
    } else if (arg == "--only") {
      const char* v = value();
      if (!v) return 2;
      std::string cur;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!cur.empty()) opt.only.push_back(cur);
          cur.clear();
          if (*p == '\0') break;
        } else {
          cur.push_back(*p);
        }
      }
    } else if (arg == "--fixture") {
      opt.fixture_mode = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "wtcp-lint: unknown option %s\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      opt.inputs.push_back(arg);
    }
  }

  if (opt.inputs.empty()) {
    for (const char* d : {"src", "bench", "tests", "examples"}) {
      opt.inputs.push_back(d);
    }
  }
  const std::string root = opt.root.empty() ? "." : opt.root;
  const auto exists = [&](const std::string& rel) {
    std::FILE* f = std::fopen((root + "/" + rel).c_str(), "rb");
    if (f) std::fclose(f);
    return f != nullptr;
  };
  if (!allowlist_set && !opt.fixture_mode &&
      exists("scripts/lint_allowlist.txt")) {
    opt.allowlist_path = "scripts/lint_allowlist.txt";
  }
  if (!probe_doc_set && !opt.fixture_mode && exists("docs/observability.md")) {
    opt.probe_docs.push_back("docs/observability.md");
  }
  return wtcp::lint::run_driver(opt);
}
