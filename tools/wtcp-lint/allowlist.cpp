#include "tools/wtcp-lint/allowlist.hpp"

#include <fstream>
#include <sstream>

namespace wtcp::lint {

bool Allowlist::covers(const Diagnostic& d) {
  bool hit = false;
  for (AllowEntry& e : entries) {
    if (e.check == d.check && e.path == d.file) {
      e.used = true;
      hit = true;
    }
  }
  return hit;
}

std::vector<const AllowEntry*> Allowlist::stale() const {
  std::vector<const AllowEntry*> out;
  for (const AllowEntry& e : entries) {
    if (!e.used) out.push_back(&e);
  }
  return out;
}

Allowlist load_allowlist(const std::string& path, bool must_exist,
                         bool* io_error) {
  Allowlist a;
  *io_error = false;
  if (path.empty()) return a;
  std::ifstream in(path);
  if (!in) {
    if (must_exist) *io_error = true;
    return a;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim.
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    const std::string body = line.substr(b, e - b + 1);
    if (body[0] == '#') continue;
    std::istringstream ss(body);
    AllowEntry entry;
    entry.file_line = lineno;
    ss >> entry.check >> entry.path;
    std::getline(ss, entry.justification);
    const auto jb = entry.justification.find_first_not_of(" \t");
    entry.justification =
        jb == std::string::npos ? "" : entry.justification.substr(jb);
    if (entry.check.empty() || entry.path.empty() ||
        entry.justification.empty()) {
      a.parse_errors.push_back(
          "allowlist:" + std::to_string(lineno) +
          ": malformed entry (need '<check-id> <path> <justification>'): " +
          body);
      continue;
    }
    a.entries.push_back(std::move(entry));
  }
  return a;
}

}  // namespace wtcp::lint
