#include "src/net/medium.hpp"

#include <cassert>

namespace wtcp::net {

void Medium::acquire(std::size_t waiter_id) {
  assert(!busy_ && "medium acquired while busy");
  busy_ = true;
  ++grants_;
  if (waiter_id != kNoWaiter) next_ = waiter_id + 1;
}

void Medium::release() {
  assert(busy_);
  busy_ = false;
  if (releasing_ || waiters_.empty()) return;
  releasing_ = true;
  // Offer the channel round-robin; stop at the first taker (it acquired
  // the medium inside its waiter callback) or after one full sweep.
  const std::size_t n = waiters_.size();
  const std::size_t start = next_ % n;
  for (std::size_t i = 0; i < n && !busy_; ++i) {
    const std::size_t idx = (start + i) % n;
    if (waiters_[idx]()) break;  // taker updated next_ via acquire()
  }
  releasing_ = false;
}

std::size_t Medium::add_waiter(Waiter waiter) {
  waiters_.push_back(std::move(waiter));
  return waiters_.size() - 1;
}

}  // namespace wtcp::net
