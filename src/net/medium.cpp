#include "src/net/medium.hpp"

#include <bit>
#include <cassert>

namespace wtcp::net {

void Medium::acquire(std::size_t waiter_id) {
  assert(!busy_ && "medium acquired while busy");
  busy_ = true;
  ++grants_;
  if (waiter_id != kNoWaiter) next_ = waiter_id + 1;
}

namespace {

/// First set bit at position >= from in `bits` (bit count `n`), or n.
std::size_t find_set_from(const std::vector<std::uint64_t>& bits,
                          std::size_t from, std::size_t n) {
  if (from >= n) return n;
  std::size_t w = from >> 6;
  std::uint64_t word = bits[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (word != 0) {
      const std::size_t id = (w << 6) +
                             static_cast<std::size_t>(std::countr_zero(word));
      return id < n ? id : n;
    }
    if (++w >= bits.size()) return n;
    word = bits[w];
  }
}

}  // namespace

void Medium::release() {
  assert(busy_);
  busy_ = false;
  if (releasing_ || ready_count_ == 0) return;
  releasing_ = true;
  // Offer the channel to ready waiters in ascending-id order, cyclic from
  // next_; stop at the first taker (it acquired the medium inside its
  // waiter callback) or after one full lap.  A ready waiter normally
  // accepts — its queue is nonempty and the channel is free — but a
  // decliner is skipped for this lap (it keeps or clears its own ready
  // bit from inside the callback).  The word-level bitmap scan touches
  // only occupied words, so an idle 10k-direction cell costs nothing here.
  const std::size_t n = waiters_.size();
  const std::size_t start = next_ % n;
  std::size_t idx = find_set_from(ready_bits_, start, n);
  if (idx == n) idx = find_set_from(ready_bits_, 0, n);
  // At most n offers (one lap's worth): each offer either takes the
  // channel or moves the scan past one ready waiter.  Ready bits can flip
  // inside the callback, so the count — not the position — bounds the lap.
  for (std::size_t offers = 0; idx < n && !busy_ && offers < n; ++offers) {
    if (waiters_[idx]()) break;  // taker updated next_ via acquire()
    if (ready_count_ == 0) break;
    std::size_t next_idx = find_set_from(ready_bits_, idx + 1, n);
    if (next_idx == n) next_idx = find_set_from(ready_bits_, 0, n);
    if (next_idx == idx) break;  // lone decliner: give up this lap
    idx = next_idx;
  }
  releasing_ = false;
}

std::size_t Medium::add_waiter(Waiter waiter) {
  waiters_.push_back(std::move(waiter));
  if (ready_bits_.size() * 64 < waiters_.size()) ready_bits_.push_back(0);
  return waiters_.size() - 1;
}

void Medium::set_ready(std::size_t id, bool want) {
  assert(id < waiters_.size());
  std::uint64_t& word = ready_bits_[id >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (id & 63);
  if (want) {
    if (!(word & bit)) {
      word |= bit;
      ++ready_count_;
    }
  } else if (word & bit) {
    word &= ~bit;
    --ready_count_;
  }
}

}  // namespace wtcp::net
