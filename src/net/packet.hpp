// Packet model.
//
// wtcp packets are simulation-level records (like ns-1's): a type tag, an
// on-wire size, and a small set of optional typed headers.  No byte-level
// serialization is performed — the paper's results depend only on sizes,
// timing and loss, not on wire encoding.
//
// Packet storage lives in a per-run net::PacketPool (a freelist arena, see
// packet_pool.hpp) and is handed around as a move-only PacketRef: an
// 8-byte handle with an intrusive refcount.  The datapath forwards refs by
// move, so steady-state forwarding performs no heap allocation — fragments
// of one datagram share the encapsulated original by bumping its refcount
// (PacketRef::share()), never by copying.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "src/sim/time.hpp"

namespace wtcp::net {

/// Node identifiers used for coarse addressing in the 3-node topology.
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

enum class PacketType : std::uint8_t {
  kTcpData,       ///< TCP segment carrying payload (FH -> MH)
  kTcpAck,        ///< TCP cumulative acknowledgment (MH -> FH)
  kLinkFragment,  ///< link-layer fragment of a wired datagram (BS -> MH)
  kLinkAck,       ///< link-layer ARQ acknowledgment (MH -> BS)
  kEbsn,          ///< Explicit Bad State Notification (BS -> FH), ICMP-like
  kSourceQuench,  ///< ICMP Source Quench (BS -> FH)
  kBackground,    ///< cross-traffic (wired congestion experiments)
};

/// Human-readable name for traces.
const char* to_string(PacketType t);

/// A SACK block: segments [begin, end) received above the cumulative ACK
/// (RFC 2018, with segment-granularity numbering).
struct SackBlock {
  std::int64_t begin = 0;
  std::int64_t end = 0;  ///< exclusive
  bool empty() const { return end <= begin; }
};

/// TCP header carried by kTcpData / kTcpAck packets.
///
/// Sequence numbers are in *segments*, as in ns-1's TCP: each data packet
/// carries exactly one segment, `seq` is its index, and an ACK's `ack`
/// field is the next expected segment (cumulative).
struct TcpHeader {
  std::int64_t seq = 0;        ///< data: segment index; ack: unused (0)
  std::int64_t ack = -1;       ///< ack: next expected segment index
  std::int32_t payload = 0;    ///< payload bytes carried by a data segment
  bool retransmit = false;     ///< true if this is a source retransmission
  bool syn = false;            ///< connection-establishment segment
  bool fin = false;            ///< connection-teardown segment
  std::uint64_t conn = 0;      ///< connection id (single connection here)

  /// Up to 3 SACK blocks (RFC 2018 option space); unused blocks are empty.
  /// The 40-byte header size accounting ignores option bytes, as ns did.
  std::array<SackBlock, 3> sack{};
  bool has_sack() const { return !sack[0].empty(); }
};

/// Link-layer fragmentation header (kLinkFragment / kLinkAck).
struct FragmentHeader {
  std::uint64_t datagram_id = 0;  ///< id of the wired datagram being carried
  std::int32_t index = 0;         ///< fragment index within the datagram
  std::int32_t count = 1;         ///< total fragments of the datagram
  std::int64_t link_seq = -1;     ///< link ARQ sequence number (-1 if no ARQ)
};

struct Packet;
struct PacketSlot;
class PacketPool;

/// Move-only owning handle to a pooled Packet.  8 bytes; destruction drops
/// the slot's refcount and recycles the slot into its pool at zero.
/// share() hands out an additional owner (refcount bump) — used for the
/// encapsulated original under fragment fan-out, for ARQ retransmission
/// attempts, and for the snoop cache.  Packets are treated as immutable
/// once they have entered the network, so shared slots are safe.
class PacketRef {
 public:
  PacketRef() = default;
  PacketRef(PacketRef&& o) noexcept : slot_(o.slot_) { o.slot_ = nullptr; }
  PacketRef& operator=(PacketRef&& o) noexcept {
    if (this != &o) {
      reset();
      slot_ = o.slot_;
      o.slot_ = nullptr;
    }
    return *this;
  }
  PacketRef(const PacketRef&) = delete;
  PacketRef& operator=(const PacketRef&) = delete;
  ~PacketRef() { reset(); }

  Packet* get() const;
  Packet& operator*() const { return *get(); }
  Packet* operator->() const { return get(); }
  explicit operator bool() const { return slot_ != nullptr; }

  /// Drop this reference (recycling the slot if it was the last owner).
  void reset();

  /// An additional owning reference to the same slot.
  PacketRef share() const;

 private:
  friend class PacketPool;
  explicit PacketRef(PacketSlot* s) : slot_(s) {}
  PacketSlot* slot_ = nullptr;
};

/// A packet in flight.  Move-only: storage belongs to the pool, and the
/// datapath forwards PacketRefs; an explicit PacketPool::clone() exists
/// for the rare place that genuinely needs an independent copy.
struct Packet {
  PacketType type = PacketType::kTcpData;
  std::int64_t size_bytes = 0;  ///< on-wire size including protocol headers

  NodeId src = kNoNode;
  NodeId dst = kNoNode;

  std::optional<TcpHeader> tcp;
  std::optional<FragmentHeader> frag;

  /// For kLinkFragment: the wired datagram this fragment carries a piece
  /// of.  All fragments of one datagram share the same original slot.
  PacketRef encapsulated;

  /// Creation time (set by the originating agent); used for delay stats.
  sim::Time created_at;

  /// Monotone id assigned by the creating agent, for tracing/debugging.
  std::uint64_t uid = 0;

  Packet() = default;
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  /// Render a one-line description into `buf` (never allocates); returns
  /// the number of characters written (excluding the NUL).  A 160-byte
  /// buffer always suffices.
  std::size_t describe_to(char* buf, std::size_t size) const;

  /// One-line rendering for logs and traces.  Allocates the returned
  /// string — call only behind a logging/trace-enabled guard.
  std::string describe() const;
};

/// Factory helpers — keep call sites terse and sizes consistent.  Storage
/// is drawn from `pool` (recycled slots in steady state).
/// `header_bytes` is the combined TCP/IP header size (paper: 40 bytes).
PacketRef make_tcp_data(PacketPool& pool, std::int64_t seq, std::int32_t payload,
                        std::int32_t header_bytes, NodeId src, NodeId dst,
                        sim::Time now);
PacketRef make_tcp_ack(PacketPool& pool, std::int64_t ack, std::int32_t header_bytes,
                       NodeId src, NodeId dst, sim::Time now);
PacketRef make_control(PacketPool& pool, PacketType type, std::int64_t size_bytes,
                       NodeId src, NodeId dst, sim::Time now);

}  // namespace wtcp::net

// Completes PacketSlot / PacketPool and PacketRef's inline member
// definitions (they need the slot layout, which needs Packet).
#include "src/net/packet_pool.hpp"  // IWYU pragma: export
