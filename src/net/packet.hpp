// Packet model.
//
// wtcp packets are simulation-level records (like ns-1's): a type tag, an
// on-wire size, and a small set of optional typed headers.  No byte-level
// serialization is performed — the paper's results depend only on sizes,
// timing and loss, not on wire encoding.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/sim/time.hpp"

namespace wtcp::net {

/// Node identifiers used for coarse addressing in the 3-node topology.
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

enum class PacketType : std::uint8_t {
  kTcpData,       ///< TCP segment carrying payload (FH -> MH)
  kTcpAck,        ///< TCP cumulative acknowledgment (MH -> FH)
  kLinkFragment,  ///< link-layer fragment of a wired datagram (BS -> MH)
  kLinkAck,       ///< link-layer ARQ acknowledgment (MH -> BS)
  kEbsn,          ///< Explicit Bad State Notification (BS -> FH), ICMP-like
  kSourceQuench,  ///< ICMP Source Quench (BS -> FH)
  kBackground,    ///< cross-traffic (wired congestion experiments)
};

/// Human-readable name for traces.
const char* to_string(PacketType t);

/// A SACK block: segments [begin, end) received above the cumulative ACK
/// (RFC 2018, with segment-granularity numbering).
struct SackBlock {
  std::int64_t begin = 0;
  std::int64_t end = 0;  ///< exclusive
  bool empty() const { return end <= begin; }
};

/// TCP header carried by kTcpData / kTcpAck packets.
///
/// Sequence numbers are in *segments*, as in ns-1's TCP: each data packet
/// carries exactly one segment, `seq` is its index, and an ACK's `ack`
/// field is the next expected segment (cumulative).
struct TcpHeader {
  std::int64_t seq = 0;        ///< data: segment index; ack: unused (0)
  std::int64_t ack = -1;       ///< ack: next expected segment index
  std::int32_t payload = 0;    ///< payload bytes carried by a data segment
  bool retransmit = false;     ///< true if this is a source retransmission
  bool syn = false;            ///< connection-establishment segment
  bool fin = false;            ///< connection-teardown segment
  std::uint64_t conn = 0;      ///< connection id (single connection here)

  /// Up to 3 SACK blocks (RFC 2018 option space); unused blocks are empty.
  /// The 40-byte header size accounting ignores option bytes, as ns did.
  std::array<SackBlock, 3> sack{};
  bool has_sack() const { return !sack[0].empty(); }
};

/// Link-layer fragmentation header (kLinkFragment / kLinkAck).
struct FragmentHeader {
  std::uint64_t datagram_id = 0;  ///< id of the wired datagram being carried
  std::int32_t index = 0;         ///< fragment index within the datagram
  std::int32_t count = 1;         ///< total fragments of the datagram
  std::int64_t link_seq = -1;     ///< link ARQ sequence number (-1 if no ARQ)
};

/// A packet in flight.  Value type; copies are cheap (fragments share the
/// encapsulated original via shared_ptr).
struct Packet {
  PacketType type = PacketType::kTcpData;
  std::int64_t size_bytes = 0;  ///< on-wire size including protocol headers

  NodeId src = kNoNode;
  NodeId dst = kNoNode;

  std::optional<TcpHeader> tcp;
  std::optional<FragmentHeader> frag;

  /// For kLinkFragment: the wired datagram this fragment carries a piece
  /// of.  All fragments of one datagram point at the same original.
  std::shared_ptr<const Packet> encapsulated;

  /// Creation time (set by the originating agent); used for delay stats.
  sim::Time created_at;

  /// Monotone id assigned by the creating agent, for tracing/debugging.
  std::uint64_t uid = 0;

  /// One-line rendering for logs and traces.
  std::string describe() const;
};

/// Factory helpers — keep call sites terse and sizes consistent.
/// `header_bytes` is the combined TCP/IP header size (paper: 40 bytes).
Packet make_tcp_data(std::int64_t seq, std::int32_t payload, std::int32_t header_bytes,
                     NodeId src, NodeId dst, sim::Time now);
Packet make_tcp_ack(std::int64_t ack, std::int32_t header_bytes, NodeId src, NodeId dst,
                    sim::Time now);
Packet make_control(PacketType type, std::int64_t size_bytes, NodeId src, NodeId dst,
                    sim::Time now);

}  // namespace wtcp::net
