// Per-run packet arena: a freelist slot pool (the scheduler's slot-pool
// discipline applied to packets) backing every Packet on the datapath.
//
// Slots are allocated in chunks, recycled through an intrusive freelist,
// and reference-counted through PacketRef.  After warm-up a run's working
// set fits the already-grown arena, so steady-state forwarding performs
// zero heap allocations per frame — `pool.allocs` (slots created) stops
// growing while `pool.recycled` keeps counting.
//
// Under WTCP_SANITIZE=address the payload region of a freed slot is
// poisoned until it is re-acquired, so a dangling Packet* into a recycled
// slot trips ASan instead of silently reading the next packet's fields.
//
// Single-threaded like everything else in a run; the parallel runner gives
// every seed its own Simulator and therefore its own pool.
#pragma once

#include "src/net/packet.hpp"  // IWYU pragma: keep

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/audit.hpp"
#include "src/obs/probe.hpp"

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/asan_interface.h>
#define WTCP_POOL_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define WTCP_POOL_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION(addr, size)
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#include <sanitizer/asan_interface.h>
#define WTCP_POOL_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define WTCP_POOL_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION(addr, size)
#endif
#endif
#ifndef WTCP_POOL_POISON
#define WTCP_POOL_POISON(addr, size) ((void)(addr), (void)(size))
#define WTCP_POOL_UNPOISON(addr, size) ((void)(addr), (void)(size))
#endif

namespace wtcp::net {

/// One pooled storage cell.  The freelist link and bookkeeping live
/// outside `pkt`, so the payload region can be poisoned while free.
struct PacketSlot {
  Packet pkt;
  std::uint32_t refcount = 0;
  bool used_before = false;  ///< has been acquired at least once
  PacketSlot* next_free = nullptr;
  PacketPool* pool = nullptr;
};

class PacketPool {
 public:
  explicit PacketPool(std::size_t chunk_slots = 256) : chunk_slots_(chunk_slots) {
    assert(chunk_slots_ > 0);
  }
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool() {
    // Every ref must be gone by now — a live ref would dangle into freed
    // chunk memory.  Owners (Simulator first-declared member; test
    // fixtures declaring the pool before components) guarantee this.
    WTCP_AUDIT_ONLY(audit_teardown_check();)
    assert(live_ == 0);
    for (auto& chunk : chunks_)
      WTCP_POOL_UNPOISON(chunk.get(), chunk_slots_ * sizeof(PacketSlot));
  }

#if defined(WTCP_AUDIT) && WTCP_AUDIT
  /// Teardown accounting audit, run by the destructor and callable early
  /// (tests corrupt a pool and invoke it under a capturing handler): no
  /// packet may still be live, and the free list plus live slots must
  /// account for every slot ever allocated — anything else is a leaked or
  /// double-released PacketRef.
  bool audit_teardown_check() const {
    std::uint64_t free_count = 0;
    for (const PacketSlot* s = free_head_; s != nullptr; s = s->next_free) {
      ++free_count;
    }
    const bool ok = audit::pool_teardown_clean(live_, free_count, allocs_);
    WTCP_AUDIT_CHECK(ok, "pool", "teardown_accounting",
                     "live refs remain or freelist does not cover the arena");
    return ok;
  }
#endif

  /// A fresh default-initialized Packet (refcount 1).  Never fails:
  /// the arena grows by a chunk when the freelist is empty.
  PacketRef acquire() {
    if (free_head_ == nullptr) grow();
    PacketSlot* s = free_head_;
    free_head_ = s->next_free;
    WTCP_POOL_UNPOISON(&s->pkt, sizeof(Packet));
    s->refcount = 1;
    // Trace identity: release() resets pkt, so the uid is (re)assigned
    // here, at the single point every datapath packet is born.  It never
    // feeds back into protocol logic, so goldens are unaffected.
    s->pkt.uid = ++next_uid_;
    if (s->used_before) {
      ++recycled_;
      obs::add(probe_recycled_);
    } else {
      s->used_before = true;
    }
    if (++live_ > high_water_) {
      high_water_ = live_;
      obs::set(probe_high_water_, static_cast<double>(high_water_));
    }
    return PacketRef(s);
  }

  /// An independent copy of `p` (sharing, not copying, any encapsulated
  /// original).  The explicit spelling of what used to be a Packet copy.
  PacketRef clone(const Packet& p) {
    PacketRef r = acquire();
    Packet& q = *r;
    q.type = p.type;
    q.size_bytes = p.size_bytes;
    q.src = p.src;
    q.dst = p.dst;
    q.tcp = p.tcp;
    q.frag = p.frag;
    q.encapsulated = p.encapsulated.share();
    q.created_at = p.created_at;
    q.uid = p.uid;
    return r;
  }

  /// Slots ever heap-allocated (chunk growth).  Plateaus after warm-up.
  std::uint64_t allocs() const { return allocs_; }
  /// Acquisitions served by reusing a previously released slot.
  std::uint64_t recycled() const { return recycled_; }
  /// Currently live (acquired, not yet fully released) packets.
  std::uint64_t live() const { return live_; }
  /// Maximum simultaneous live packets seen.
  std::uint64_t high_water() const { return high_water_; }

  /// Publish pool.allocs / pool.recycled / pool.high_water; any pointer
  /// may be null.  Catches up counters published before binding (the pool
  /// exists before the scenario attaches its registry).
  void bind_probes(obs::Counter* allocs, obs::Counter* recycled,
                   obs::Gauge* high_water) {
    probe_allocs_ = allocs;
    probe_recycled_ = recycled;
    probe_high_water_ = high_water;
    if (probe_allocs_) probe_allocs_->value = allocs_;
    if (probe_recycled_) probe_recycled_->value = recycled_;
    obs::set(probe_high_water_, static_cast<double>(high_water_));
  }

 private:
  friend class PacketRef;

  void release(PacketSlot* s) {
    WTCP_AUDIT_CHECK(audit::pool_refcount_at_release(s->refcount), "pool",
                     "release_with_refs",
                     "slot returned to the freelist while references remain");
    WTCP_AUDIT_CHECK(live_ > 0, "pool", "live_underflow",
                     "pool live count would underflow on release");
    // Reset drops the encapsulated ref promptly (a buffered fragment must
    // not pin its datagram past the fragment's own death) and leaves the
    // slot clean for reuse.
    s->pkt = Packet{};
    WTCP_POOL_POISON(&s->pkt, sizeof(Packet));
    s->next_free = free_head_;
    free_head_ = s;
    --live_;
  }

  void grow() {
    auto chunk = std::make_unique<PacketSlot[]>(chunk_slots_);
    for (std::size_t i = 0; i < chunk_slots_; ++i) {
      chunk[i].pool = this;
      chunk[i].next_free = free_head_;
      free_head_ = &chunk[i];
      WTCP_POOL_POISON(&chunk[i].pkt, sizeof(Packet));
    }
    chunks_.push_back(std::move(chunk));
    allocs_ += chunk_slots_;
    obs::add(probe_allocs_, chunk_slots_);
  }

  std::size_t chunk_slots_;
  std::vector<std::unique_ptr<PacketSlot[]>> chunks_;
  PacketSlot* free_head_ = nullptr;
  std::uint64_t allocs_ = 0;
  std::uint64_t next_uid_ = 0;
  std::uint64_t recycled_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t high_water_ = 0;
  obs::Counter* probe_allocs_ = nullptr;
  obs::Counter* probe_recycled_ = nullptr;
  obs::Gauge* probe_high_water_ = nullptr;
};

inline Packet* PacketRef::get() const {
  assert(slot_ == nullptr || slot_->refcount > 0);
  return slot_ ? &slot_->pkt : nullptr;
}

inline void PacketRef::reset() {
  if (slot_ == nullptr) return;
  PacketSlot* s = slot_;
  slot_ = nullptr;
  assert(s->refcount > 0);
  if (--s->refcount == 0) s->pool->release(s);
}

inline PacketRef PacketRef::share() const {
  if (slot_) ++slot_->refcount;
  return PacketRef(slot_);
}

}  // namespace wtcp::net
