// Shared radio medium.
//
// Several DuplexLink directions (e.g. the downlinks and uplinks of K
// mobile hosts served by one base-station radio) can be bound to one
// Medium: at most one frame is on the air at a time across all of them.
// When a transmission ends, waiting directions are served round-robin so
// none starves.
//
// Service is driven by a ready set: a direction marks itself ready
// (`set_ready`) while it has frames queued, and release() offers the
// channel only to ready waiters, round-robin by waiter id.  With K mobile
// hosts bound to one base-station radio the hand-off after each frame
// costs O(backlogged directions), not O(K) — the difference between a
// 4-user LAN and a 10k-flow cell.  The offer order is identical to the
// historical full sweep (ids ascending, cyclic from just past the last
// served direction), because a non-ready direction would have declined
// the offer anyway.
//
// This models the single-channel wireless LAN of Bhagwat et al. [9] (the
// CSDP scheduling study the paper cites), where a head-of-line packet to
// a faded user blocks airtime that other users could have used.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace wtcp::net {

class Medium {
 public:
  /// A waiter is "offered" the medium when it becomes free; it returns
  /// true if it started a transmission (acquiring the medium).
  using Waiter = std::function<bool()>;

  static constexpr std::size_t kNoWaiter = static_cast<std::size_t>(-1);

  bool busy() const { return busy_; }

  /// Claim the medium (precondition: not busy).  `waiter_id` identifies
  /// the claiming direction's waiter slot so that release() resumes
  /// round-robin service right AFTER it (the direction that just
  /// transmitted goes to the back of the service order).
  void acquire(std::size_t waiter_id = kNoWaiter);

  /// Release and offer the medium to ready waiters, round-robin from
  /// after the last served one.
  void release();

  /// Register a direction that may want to transmit.  Returns the waiter
  /// slot id; the direction passes it to acquire()/set_ready().  A new
  /// waiter starts NOT ready — it is only offered the channel after
  /// set_ready(id, true).
  std::size_t add_waiter(Waiter waiter);

  /// Declare whether waiter `id` currently wants the channel (i.e. has a
  /// frame queued).  Idempotent and O(1); directions call this after
  /// every queue mutation.
  void set_ready(std::size_t id, bool ready);

  bool ready(std::size_t id) const {
    return (ready_bits_[id >> 6] >> (id & 63)) & 1u;
  }
  std::size_t ready_count() const { return ready_count_; }

  std::uint64_t grants() const { return grants_; }

 private:
  bool busy_ = false;
  bool releasing_ = false;
  std::vector<Waiter> waiters_;
  std::vector<std::uint64_t> ready_bits_;  ///< one bit per waiter slot
  std::size_t ready_count_ = 0;
  std::size_t next_ = 0;  ///< round-robin cursor
  std::uint64_t grants_ = 0;
};

}  // namespace wtcp::net
