#include "src/net/queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace wtcp::net {

DropTailQueue::DropTailQueue(std::size_t capacity_packets, std::int64_t capacity_bytes)
    : capacity_packets_(capacity_packets), capacity_bytes_(capacity_bytes) {
  assert(capacity_packets_ > 0);
}

bool DropTailQueue::enqueue(PacketRef&& pkt) {
  if (items_.size() >= capacity_packets_ ||
      bytes_ + pkt->size_bytes > capacity_bytes_) {
    ++stats_.dropped;
    obs::add(probe_drops_);
    return false;
  }
  bytes_ += pkt->size_bytes;
  items_.push_back(std::move(pkt));
  ++stats_.enqueued;
  stats_.max_depth_packets = std::max(stats_.max_depth_packets, items_.size());
  stats_.max_depth_bytes = std::max(stats_.max_depth_bytes, bytes_);
  update_depth_gauge();
  return true;
}

bool DropTailQueue::enqueue_front(PacketRef&& pkt) {
  if (items_.size() >= capacity_packets_ ||
      bytes_ + pkt->size_bytes > capacity_bytes_) {
    ++stats_.dropped;
    obs::add(probe_drops_);
    return false;
  }
  bytes_ += pkt->size_bytes;
  items_.push_front(std::move(pkt));
  ++stats_.enqueued;
  stats_.max_depth_packets = std::max(stats_.max_depth_packets, items_.size());
  stats_.max_depth_bytes = std::max(stats_.max_depth_bytes, bytes_);
  update_depth_gauge();
  return true;
}

PacketRef DropTailQueue::dequeue() {
  if (items_.empty()) return {};
  PacketRef pkt = std::move(items_.front());
  items_.pop_front();
  bytes_ -= pkt->size_bytes;
  ++stats_.dequeued;
  update_depth_gauge();
  return pkt;
}

const Packet* DropTailQueue::peek() const {
  return items_.empty() ? nullptr : items_.front().get();
}

void DropTailQueue::clear() {
  items_.clear();
  bytes_ = 0;
  update_depth_gauge();
}

void DropTailQueue::bind_probes(obs::Counter* drops, obs::Gauge* depth) {
  probe_drops_ = drops;
  probe_depth_ = depth;
  update_depth_gauge();
}

}  // namespace wtcp::net
