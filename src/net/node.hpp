// Node identities and the packet-delivery interface that ties agents to
// links.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/net/packet.hpp"

namespace wtcp::net {

/// Anything that can receive packets from a link endpoint: TCP agents, the
/// base-station forwarder, the mobile host's reassembler, ...
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void handle_packet(PacketRef pkt) = 0;
};

/// A named node.  Nodes are pure identities in wtcp — behaviour lives in
/// the agents attached to link endpoints — but keeping a registry gives
/// stable ids for addressing and readable traces.
class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

/// Adapter turning any callable into a PacketSink; used to wire forwarding
/// logic (base station, mobile host) without dedicated classes.
class CallbackSink final : public PacketSink {
 public:
  explicit CallbackSink(std::function<void(PacketRef)> fn) : fn_(std::move(fn)) {}
  void handle_packet(PacketRef pkt) override { fn_(std::move(pkt)); }

 private:
  std::function<void(PacketRef)> fn_;
};

/// Registry assigning dense NodeIds.  Owned by a scenario.
class NodeRegistry {
 public:
  NodeId add(std::string name);
  const Node& at(NodeId id) const;
  std::size_t size() const { return nodes_.size(); }

 private:
  std::vector<Node> nodes_;
};

}  // namespace wtcp::net
