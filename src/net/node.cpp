#include "src/net/node.hpp"

#include <cassert>

namespace wtcp::net {

NodeId NodeRegistry::add(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back(id, std::move(name));
  return id;
}

const Node& NodeRegistry::at(NodeId id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)];
}

}  // namespace wtcp::net
