#include "src/net/packet.hpp"

#include <cassert>
#include <cstdio>

namespace wtcp::net {

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kTcpData: return "DATA";
    case PacketType::kTcpAck: return "ACK";
    case PacketType::kLinkFragment: return "FRAG";
    case PacketType::kLinkAck: return "LACK";
    case PacketType::kEbsn: return "EBSN";
    case PacketType::kSourceQuench: return "QUENCH";
    case PacketType::kBackground: return "BG";
  }
  return "?";
}

std::string Packet::describe() const {
  char buf[160];
  if (tcp) {
    std::snprintf(buf, sizeof(buf), "%s seq=%lld ack=%lld size=%lld%s",
                  to_string(type), static_cast<long long>(tcp->seq),
                  static_cast<long long>(tcp->ack), static_cast<long long>(size_bytes),
                  tcp->retransmit ? " rtx" : "");
  } else if (frag) {
    std::snprintf(buf, sizeof(buf), "%s dgram=%llu %d/%d lseq=%lld size=%lld",
                  to_string(type), static_cast<unsigned long long>(frag->datagram_id),
                  frag->index, frag->count, static_cast<long long>(frag->link_seq),
                  static_cast<long long>(size_bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%s size=%lld", to_string(type),
                  static_cast<long long>(size_bytes));
  }
  return buf;
}

Packet make_tcp_data(std::int64_t seq, std::int32_t payload, std::int32_t header_bytes,
                     NodeId src, NodeId dst, sim::Time now) {
  assert(payload > 0);
  Packet p;
  p.type = PacketType::kTcpData;
  p.size_bytes = payload + header_bytes;
  p.src = src;
  p.dst = dst;
  p.tcp = TcpHeader{.seq = seq, .ack = -1, .payload = payload};
  p.created_at = now;
  return p;
}

Packet make_tcp_ack(std::int64_t ack, std::int32_t header_bytes, NodeId src, NodeId dst,
                    sim::Time now) {
  Packet p;
  p.type = PacketType::kTcpAck;
  p.size_bytes = header_bytes;
  p.src = src;
  p.dst = dst;
  p.tcp = TcpHeader{.seq = 0, .ack = ack, .payload = 0};
  p.created_at = now;
  return p;
}

Packet make_control(PacketType type, std::int64_t size_bytes, NodeId src, NodeId dst,
                    sim::Time now) {
  Packet p;
  p.type = type;
  p.size_bytes = size_bytes;
  p.src = src;
  p.dst = dst;
  p.created_at = now;
  return p;
}

}  // namespace wtcp::net
