#include "src/net/packet.hpp"

#include <cassert>
#include <cstdio>

namespace wtcp::net {

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kTcpData: return "DATA";
    case PacketType::kTcpAck: return "ACK";
    case PacketType::kLinkFragment: return "FRAG";
    case PacketType::kLinkAck: return "LACK";
    case PacketType::kEbsn: return "EBSN";
    case PacketType::kSourceQuench: return "QUENCH";
    case PacketType::kBackground: return "BG";
  }
  return "?";
}

std::size_t Packet::describe_to(char* buf, std::size_t size) const {
  int n;
  if (tcp) {
    n = std::snprintf(buf, size, "%s seq=%lld ack=%lld size=%lld%s",
                      to_string(type), static_cast<long long>(tcp->seq),
                      static_cast<long long>(tcp->ack),
                      static_cast<long long>(size_bytes),
                      tcp->retransmit ? " rtx" : "");
  } else if (frag) {
    n = std::snprintf(buf, size, "%s dgram=%llu %d/%d lseq=%lld size=%lld",
                      to_string(type),
                      static_cast<unsigned long long>(frag->datagram_id),
                      frag->index, frag->count,
                      static_cast<long long>(frag->link_seq),
                      static_cast<long long>(size_bytes));
  } else {
    n = std::snprintf(buf, size, "%s size=%lld", to_string(type),
                      static_cast<long long>(size_bytes));
  }
  if (n < 0) return 0;
  const std::size_t written = static_cast<std::size_t>(n);
  return written < size ? written : (size ? size - 1 : 0);
}

std::string Packet::describe() const {
  char buf[160];
  describe_to(buf, sizeof(buf));
  return buf;
}

PacketRef make_tcp_data(PacketPool& pool, std::int64_t seq, std::int32_t payload,
                        std::int32_t header_bytes, NodeId src, NodeId dst,
                        sim::Time now) {
  assert(payload > 0);
  PacketRef r = pool.acquire();
  Packet& p = *r;
  p.type = PacketType::kTcpData;
  p.size_bytes = payload + header_bytes;
  p.src = src;
  p.dst = dst;
  p.tcp = TcpHeader{.seq = seq, .ack = -1, .payload = payload};
  p.created_at = now;
  return r;
}

PacketRef make_tcp_ack(PacketPool& pool, std::int64_t ack, std::int32_t header_bytes,
                       NodeId src, NodeId dst, sim::Time now) {
  PacketRef r = pool.acquire();
  Packet& p = *r;
  p.type = PacketType::kTcpAck;
  p.size_bytes = header_bytes;
  p.src = src;
  p.dst = dst;
  p.tcp = TcpHeader{.seq = 0, .ack = ack, .payload = 0};
  p.created_at = now;
  return r;
}

PacketRef make_control(PacketPool& pool, PacketType type, std::int64_t size_bytes,
                       NodeId src, NodeId dst, sim::Time now) {
  PacketRef r = pool.acquire();
  Packet& p = *r;
  p.type = type;
  p.size_bytes = size_bytes;
  p.src = src;
  p.dst = dst;
  p.created_at = now;
  return r;
}

}  // namespace wtcp::net
