#include "src/net/link.hpp"

#include <cassert>
#include <string>
#include <utility>

#include "src/obs/probe.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/logging.hpp"

namespace wtcp::net {

DuplexLink::DuplexLink(sim::Simulator& sim, LinkConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      dirs_{Direction(cfg_.queue_packets), Direction(cfg_.queue_packets)} {
  assert(cfg_.bandwidth_bps > 0);
  assert(cfg_.overhead_num >= cfg_.overhead_den && cfg_.overhead_den > 0);
  if (obs::Registry* bus = sim_.probes()) {
    for (int from : {0, 1}) {
      const std::string stem =
          "queue." + cfg_.name + "." + std::to_string(from);
      dirs_[from].queue.bind_probes(bus->counter(stem + ".drops"),
                                    bus->gauge(stem + ".depth"));
      delay_hist_[from] = bus->histogram("link." + cfg_.name + "." +
                                         std::to_string(from) + ".delay_s");
    }
  }
  if ((tsink_ = sim_.trace()) != nullptr) {
    for (int from : {0, 1}) {
      trace_labels_[from] =
          tsink_->intern(cfg_.name + "." + std::to_string(from));
    }
  }
  if (cfg_.medium) {
    for (int from : {0, 1}) {
      waiter_ids_[from] = cfg_.medium->add_waiter([this, from] {
        const bool was_busy = dir(from).busy;
        kick(from);
        return !was_busy && dir(from).busy;  // started a transmission
      });
    }
  }
}

DuplexLink::Direction& DuplexLink::dir(int from) {
  assert(from == 0 || from == 1);
  return dirs_[from];
}

const DuplexLink::Direction& DuplexLink::dir(int from) const {
  assert(from == 0 || from == 1);
  return dirs_[from];
}

void DuplexLink::set_sink(int endpoint, PacketSink* sink) {
  assert(endpoint == 0 || endpoint == 1);
  sinks_[endpoint] = sink;
}

void DuplexLink::set_error_model(std::shared_ptr<phy::ErrorModel> model) {
  error_model_ = std::move(model);
}

std::int64_t DuplexLink::airtime_bytes(std::int64_t size_bytes) const {
  return (size_bytes * cfg_.overhead_num + cfg_.overhead_den - 1) / cfg_.overhead_den;
}

sim::Time DuplexLink::frame_airtime(std::int64_t size_bytes) const {
  return sim::transmission_time(airtime_bytes(size_bytes), cfg_.bandwidth_bps);
}

void DuplexLink::trace(char event, int from, const Packet& pkt) const {
  for (const TraceHook& hook : trace_hooks_) hook(event, from, pkt);
}

bool DuplexLink::send(int from, PacketRef pkt, bool priority) {
  Direction& d = dir(from);
  // The slot address is stable across the enqueue, so the packet stays
  // observable for both the accept ('+') and the tail-drop ('d') trace —
  // on rejection the queue leaves `pkt` intact.
  const Packet* raw = pkt.get();
  const bool ok = priority ? d.queue.enqueue_front(std::move(pkt))
                           : d.queue.enqueue(std::move(pkt));
  if (!trace_hooks_.empty()) trace(ok ? '+' : 'd', from, *raw);
  // a = 1 marks the wireless hop (only wireless links carry an error
  // model) — the trace CLI uses wired queue drops as congestion evidence.
  WTCP_TRACE_EMIT(tsink_, sim_.now(), raw->uid,
                  ok ? obs::TraceSite::kQueueEnqueue
                     : obs::TraceSite::kQueueDrop,
                  error_model_ ? 1 : 0, trace_labels_[from],
                  static_cast<std::int32_t>(d.queue.size()));
  if (ok) kick(from);
  return ok;
}

void DuplexLink::kick(int from) {
  Direction& d = dir(from);
  const bool blocked = d.busy || (cfg_.half_duplex && dir(1 - from).busy) ||
                       (cfg_.medium && cfg_.medium->busy());
  if (!blocked && !d.queue.empty()) {
    start_transmission(from, d.queue.dequeue());
  }
  // Keep the medium's ready set in sync with the queue: a direction is
  // offered the channel iff it still has frames waiting.  kick() runs
  // after every enqueue and every transmission end, so this is the single
  // maintenance point.
  if (cfg_.medium) {
    cfg_.medium->set_ready(waiter_ids_[from], !d.queue.empty());
  }
}

void DuplexLink::start_transmission(int from, PacketRef pkt) {
  Direction& d = dir(from);
  d.busy = true;
  if (cfg_.medium) cfg_.medium->acquire(waiter_ids_[from]);

  const sim::Time airtime = frame_airtime(pkt->size_bytes);
  const std::int64_t on_air_bits = airtime_bytes(pkt->size_bytes) * 8;
  const sim::Time start = sim_.now();
  const sim::Time end = start + airtime;

  ++d.stats.frames_sent;
  d.stats.bytes_sent += pkt->size_bytes;
  d.stats.busy_time += airtime;
  if (!trace_hooks_.empty()) trace('-', from, *pkt);

  const bool corrupted =
      error_model_ && error_model_->corrupts(start, end, on_air_bits);

  WTCP_LOG(kTrace, start, cfg_.name.c_str(), "tx from=%d %s airtime=%.6fs%s", from,
           pkt->describe().c_str(), airtime.to_seconds(), corrupted ? " CORRUPT" : "");

  WTCP_TRACE_EMIT(tsink_, start, pkt->uid, obs::TraceSite::kLinkTxStart,
                  error_model_ ? 1 : 0, trace_labels_[from],
                  static_cast<std::int32_t>(airtime_bytes(pkt->size_bytes)));

  const int to = 1 - from;
  // Both completion lambdas capture an 8-byte ref plus the tx-start time,
  // so they stay inside SmallCallback's inline buffer: no heap allocation
  // per frame.
  sim_.after(
      airtime,
      [this, from, to, corrupted, start, pkt = std::move(pkt)]() mutable {
        Direction& d2 = dir(from);
        d2.busy = false;
        for (const FrameObserver& obs : observers_) obs(from, *pkt, !corrupted);
        WTCP_TRACE_EMIT(tsink_, sim_.now(), pkt->uid,
                        corrupted ? obs::TraceSite::kLinkCorrupt
                                  : obs::TraceSite::kLinkTxEnd,
                        error_model_ ? 1 : 0, trace_labels_[from]);
        if (corrupted) {
          ++d2.stats.frames_corrupted;
          if (!trace_hooks_.empty()) trace('c', from, *pkt);
        } else {
          ++d2.stats.frames_delivered;
          d2.stats.bytes_delivered += pkt->size_bytes;
          if (sinks_[to]) {
            sim_.after(
                cfg_.prop_delay,
                [this, from, to, start, pkt = std::move(pkt)]() mutable {
                  if (!trace_hooks_.empty()) trace('r', from, *pkt);
                  // Hop latency = airtime + propagation, measured from tx
                  // start; the trace CLI recomputes exactly this from
                  // kLinkTxStart/kLinkDeliver pairs.
                  obs::record(delay_hist_[from],
                              (sim_.now() - start).to_seconds());
                  WTCP_TRACE_EMIT(tsink_, sim_.now(), pkt->uid,
                                  obs::TraceSite::kLinkDeliver,
                                  error_model_ ? 1 : 0, trace_labels_[from]);
                  if (sinks_[to]) sinks_[to]->handle_packet(std::move(pkt));
                },
                "link.deliver");
          }
        }
        if (cfg_.medium) {
          // The medium offers the channel round-robin across every bound
          // direction (including ours).
          cfg_.medium->release();
        } else if (cfg_.half_duplex) {
          // Alternate service so neither direction starves the shared
          // channel.
          kick(1 - from);
          kick(from);
        } else {
          kick(from);
        }
      },
      "link.tx_done");
}

}  // namespace wtcp::net
