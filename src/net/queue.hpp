// Drop-tail FIFO packet queue with occupancy statistics.  Stores pooled
// PacketRefs — enqueue/dequeue move 8-byte handles, never packet bodies.
#pragma once

#include <cstdint>
#include <deque>

#include "src/net/packet.hpp"
#include "src/obs/probe.hpp"

namespace wtcp::net {

/// Statistics exported by a queue; all counters are cumulative.
struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;        ///< tail drops due to a full queue
  std::size_t max_depth_packets = 0;
  std::int64_t max_depth_bytes = 0;
};

/// Bounded FIFO.  Capacity is expressed in packets (the paper's BS buffers
/// are packet buffers); an optional byte bound can also be set.
class DropTailQueue {
 public:
  explicit DropTailQueue(std::size_t capacity_packets,
                         std::int64_t capacity_bytes = INT64_MAX);

  /// Returns true if accepted, false if tail-dropped.  On rejection `pkt`
  /// is left intact, so the caller can still trace the drop.
  bool enqueue(PacketRef&& pkt);

  /// Insert at the head (priority traffic such as link-level ACKs).
  /// Subject to the same capacity bounds; `pkt` survives a rejection.
  bool enqueue_front(PacketRef&& pkt);

  /// Pop the head, or a null ref when empty.
  PacketRef dequeue();

  /// Inspect the head without removing it.
  const Packet* peek() const;

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::int64_t bytes() const { return bytes_; }
  std::size_t capacity_packets() const { return capacity_packets_; }

  const QueueStats& stats() const { return stats_; }

  /// Drop everything (used when tearing down a run).
  void clear();

  /// Publish drops (counter) and live depth in packets (gauge) to the
  /// probe bus; either pointer may be null.
  void bind_probes(obs::Counter* drops, obs::Gauge* depth);

 private:
  void update_depth_gauge() {
    if (probe_depth_) probe_depth_->value = static_cast<double>(items_.size());
  }

  std::size_t capacity_packets_;
  std::int64_t capacity_bytes_;
  std::int64_t bytes_ = 0;
  std::deque<PacketRef> items_;
  QueueStats stats_;
  obs::Counter* probe_drops_ = nullptr;
  obs::Gauge* probe_depth_ = nullptr;
};

}  // namespace wtcp::net
