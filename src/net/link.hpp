// Full-duplex point-to-point link with per-direction FIFO queue, a
// serialization + propagation delay pipeline, an optional channel error
// model shared by both directions (wireless fading affects data and ACKs
// together), and an optional per-byte framing overhead (the paper's 1.5x
// FEC/framing expansion that turns 19.2 kbps raw into 12.8 kbps effective).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/net/medium.hpp"
#include "src/net/node.hpp"
#include "src/net/packet.hpp"
#include "src/net/queue.hpp"
#include "src/phy/error_model.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::obs {
class TraceSink;
struct Histogram;
}

namespace wtcp::net {

struct LinkConfig {
  std::string name = "link";
  std::int64_t bandwidth_bps = 56'000;
  sim::Time prop_delay = sim::Time::milliseconds(1);
  std::size_t queue_packets = 1000;
  /// On-air bytes = size_bytes * overhead_num / overhead_den (rounded up).
  /// Wired links use 1/1; the paper's wireless link uses 3/2.
  std::int32_t overhead_num = 1;
  std::int32_t overhead_den = 1;
  /// Half-duplex: both directions share one radio channel, so a frame in
  /// either direction occupies the medium exclusively (ACK traffic steals
  /// airtime from data).  The paper says "Bandwidth: symmetrical", which
  /// we read as full duplex (the default); the half-duplex variant is
  /// studied by bench/abl_duplex.
  bool half_duplex = false;
  /// Optional shared radio medium across MULTIPLE links (one base-station
  /// radio serving several mobile hosts): at most one frame on the air
  /// across every bound direction.  Implies half-duplex behaviour within
  /// this link as well.
  std::shared_ptr<Medium> medium;
};

struct LinkDirectionStats {
  std::uint64_t frames_sent = 0;       ///< transmissions begun
  std::uint64_t frames_delivered = 0;  ///< arrived uncorrupted at the far end
  std::uint64_t frames_corrupted = 0;  ///< lost to channel errors
  std::int64_t bytes_sent = 0;         ///< packet bytes (pre-overhead)
  std::int64_t bytes_delivered = 0;
  sim::Time busy_time;                 ///< cumulative airtime
};

/// A duplex link between endpoint 0 and endpoint 1.  `send(from, pkt)`
/// queues `pkt` for the far end; delivery happens after serialization at
/// the configured bandwidth (on the overhead-expanded size) plus
/// propagation delay, unless the error model corrupts the frame.
class DuplexLink {
 public:
  DuplexLink(sim::Simulator& sim, LinkConfig cfg);

  /// Attach the receiver at `endpoint` (0 or 1).  Must be set before any
  /// traffic can be delivered to that side.
  void set_sink(int endpoint, PacketSink* sink);

  /// Install a channel error model shared by both directions.  Nullptr
  /// means lossless.
  void set_error_model(std::shared_ptr<phy::ErrorModel> model);

  /// Queue `pkt` at endpoint `from` for transmission to the other side.
  /// Returns false if the queue tail-dropped it.  `priority` pushes the
  /// packet at the head of the queue (used for link-level ACK frames).
  bool send(int from, PacketRef pkt, bool priority = false);

  /// Observers fired when a frame finishes its airtime: (from-endpoint,
  /// packet, delivered?).  Used by the ARQ (to time ACK waits from actual
  /// transmission completion), traces and tests.
  using FrameObserver = std::function<void(int from, const Packet&, bool delivered)>;
  void add_frame_observer(FrameObserver obs) { observers_.push_back(std::move(obs)); }

  /// Low-level event hook in the spirit of ns's trace files.  Events:
  ///   '+' packet accepted into the queue      '-' transmission began
  ///   'd' tail-dropped by the queue           'r' delivered to the far sink
  ///   'c' corrupted by the channel
  using TraceHook = std::function<void(char event, int from, const Packet&)>;
  void add_trace_hook(TraceHook hook) { trace_hooks_.push_back(std::move(hook)); }

  bool transmitting(int from) const { return dir(from).busy; }
  std::size_t queue_depth(int from) const { return dir(from).queue.size(); }

  const LinkDirectionStats& stats(int from) const { return dir(from).stats; }
  const QueueStats& queue_stats(int from) const { return dir(from).queue.stats(); }
  const LinkConfig& config() const { return cfg_; }

  /// On-air size of a packet after framing overhead.
  std::int64_t airtime_bytes(std::int64_t size_bytes) const;
  /// Serialization delay of a packet (after overhead) at link bandwidth.
  sim::Time frame_airtime(std::int64_t size_bytes) const;

 private:
  struct Direction {
    explicit Direction(std::size_t cap) : queue(cap) {}
    DropTailQueue queue;
    bool busy = false;
    LinkDirectionStats stats;
  };

  Direction& dir(int from);
  const Direction& dir(int from) const;
  void kick(int from);
  void start_transmission(int from, PacketRef pkt);
  void trace(char event, int from, const Packet& pkt) const;

  sim::Simulator& sim_;
  LinkConfig cfg_;
  Direction dirs_[2];
  /// Packet-lifecycle trace plumbing, cached at construction like the
  /// queue probes: per-direction interned "<link>.<endpoint>" labels and
  /// a per-direction hop-delay histogram (tx start -> far-sink delivery).
  obs::TraceSink* tsink_ = nullptr;
  std::uint16_t trace_labels_[2] = {0, 0};
  obs::Histogram* delay_hist_[2] = {nullptr, nullptr};
  PacketSink* sinks_[2] = {nullptr, nullptr};
  std::shared_ptr<phy::ErrorModel> error_model_;
  std::vector<FrameObserver> observers_;
  std::vector<TraceHook> trace_hooks_;
  std::size_t waiter_ids_[2] = {Medium::kNoWaiter, Medium::kNoWaiter};
};

}  // namespace wtcp::net
