// Streaming summary statistics (Welford) for multi-seed experiment runs.
// The paper reports means and notes "the standard deviation for all
// results presented is less than 4%"; the benches assert the same bound.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace wtcp::stats {

class Summary {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const { return std::sqrt(variance()); }

  /// Coefficient of variation: stddev / |mean| (0 when mean is 0).
  double cv() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace wtcp::stats
