// Per-connection event traces.
//
// Reproduces ns's graphical output used in the paper's Figures 3-5: every
// packet the TCP source emits is one (time, sequence-number mod 90) mark;
// retransmissions show as repeated marks at the same vertical coordinate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/probe.hpp"
#include "src/sim/time.hpp"

namespace wtcp::stats {

enum class TraceEvent : std::uint8_t {
  kSend,       ///< source transmitted a new segment
  kRetransmit, ///< source retransmitted a segment
  kAck,        ///< source received a (new) cumulative ACK
  kDupAck,     ///< source received a duplicate ACK
  kTimeout,    ///< source retransmission timer expired
  kFastRtx,    ///< fast retransmit triggered
  kEbsn,       ///< source received an EBSN
  kQuench,     ///< source received a source quench
  kCwnd,       ///< congestion window sample (value stored in `seq`x1000)
  kDeliver,    ///< sink delivered an in-order segment to the application
};

const char* to_string(TraceEvent e);

struct TraceRecord {
  sim::Time at;
  TraceEvent event;
  std::int64_t seq;  ///< segment number (or scaled cwnd for kCwnd)
};

/// Append-only event log.  Cheap enough to keep on for every run; the
/// experiment layer only attaches it when a figure needs it.
class ConnectionTrace {
 public:
  void record(sim::Time at, TraceEvent event, std::int64_t seq);

  /// Mirror every record onto the probe bus as a "tcp" event (null
  /// unbinds).  The record() API and in-memory log are unchanged.
  void bind(obs::Registry* bus) { bus_ = bus; }

  const std::vector<TraceRecord>& records() const { return records_; }

  /// Count of records with the given event type.
  std::size_t count(TraceEvent event) const;

  /// Paper-style plot series: (time seconds, seq mod `modulus`) for every
  /// source transmission (kSend and kRetransmit).
  struct PlotPoint {
    double time_s;
    std::int64_t seq_mod;
    bool retransmit;
  };
  std::vector<PlotPoint> send_plot(std::int64_t modulus = 90) const;

  /// Write the send plot as whitespace-separated columns:
  /// time  seq_mod  rtx_flag
  void write_send_plot(std::ostream& os, std::int64_t modulus = 90) const;

  /// Write all records as TSV: time  event  seq
  void write_tsv(std::ostream& os) const;

  void clear() { records_.clear(); }
  bool empty() const { return records_.empty(); }

 private:
  std::vector<TraceRecord> records_;
  obs::Registry* bus_ = nullptr;
};

}  // namespace wtcp::stats
