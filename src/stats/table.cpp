#include "src/stats/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace wtcp::stats {

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt_double(v, precision));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_tsv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "\t" : "") << headers_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "\t" : "") << row[c];
    }
    os << '\n';
  }
}

}  // namespace wtcp::stats
