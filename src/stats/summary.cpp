#include "src/stats/summary.hpp"

#include <algorithm>

namespace wtcp::stats {

void Summary::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::cv() const {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / std::abs(mean_);
}

}  // namespace wtcp::stats
