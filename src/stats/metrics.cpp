#include "src/stats/metrics.hpp"

#include <ostream>

namespace wtcp::stats {

std::ostream& operator<<(std::ostream& os, const RunMetrics& m) {
  os << (m.completed ? "completed" : "INCOMPLETE") << " in "
     << m.duration.to_seconds() << "s, throughput=" << m.throughput_kbps()
     << " kbps, goodput=" << m.goodput << ", timeouts=" << m.timeouts
     << ", fast_rtx=" << m.fast_retransmits
     << ", rtx_bytes=" << m.retransmitted_bytes << ", ebsn=" << m.ebsn_received;
  return os;
}

}  // namespace wtcp::stats
