#include "src/stats/trace.hpp"

#include <algorithm>
#include <ostream>

namespace wtcp::stats {

const char* to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::kSend: return "send";
    case TraceEvent::kRetransmit: return "rtx";
    case TraceEvent::kAck: return "ack";
    case TraceEvent::kDupAck: return "dupack";
    case TraceEvent::kTimeout: return "timeout";
    case TraceEvent::kFastRtx: return "fastrtx";
    case TraceEvent::kEbsn: return "ebsn";
    case TraceEvent::kQuench: return "quench";
    case TraceEvent::kCwnd: return "cwnd";
    case TraceEvent::kDeliver: return "deliver";
  }
  return "?";
}

void ConnectionTrace::record(sim::Time at, TraceEvent event, std::int64_t seq) {
  records_.push_back(TraceRecord{at, event, seq});
  if (bus_) bus_->publish(at, "tcp", to_string(event), static_cast<double>(seq));
}

std::size_t ConnectionTrace::count(TraceEvent event) const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [event](const TraceRecord& r) { return r.event == event; }));
}

std::vector<ConnectionTrace::PlotPoint> ConnectionTrace::send_plot(
    std::int64_t modulus) const {
  std::vector<PlotPoint> points;
  for (const TraceRecord& r : records_) {
    if (r.event != TraceEvent::kSend && r.event != TraceEvent::kRetransmit) continue;
    points.push_back(PlotPoint{r.at.to_seconds(), r.seq % modulus,
                               r.event == TraceEvent::kRetransmit});
  }
  return points;
}

void ConnectionTrace::write_send_plot(std::ostream& os, std::int64_t modulus) const {
  os << "# time_s\tseq_mod" << modulus << "\trtx\n";
  for (const PlotPoint& p : send_plot(modulus)) {
    os << p.time_s << '\t' << p.seq_mod << '\t' << (p.retransmit ? 1 : 0) << '\n';
  }
}

void ConnectionTrace::write_tsv(std::ostream& os) const {
  os << "# time_s\tevent\tseq\n";
  for (const TraceRecord& r : records_) {
    os << r.at.to_seconds() << '\t' << to_string(r.event) << '\t' << r.seq << '\n';
  }
}

}  // namespace wtcp::stats
