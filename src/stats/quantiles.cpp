#include "src/stats/quantiles.hpp"

#include <algorithm>
#include <cassert>

namespace wtcp::stats {

double Quantiles::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto n = samples_.size();
  // Nearest-rank: ceil(q * n), clamped to [1, n], as a 0-based index.
  std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(n) + 0.999999);
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

double Quantiles::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

}  // namespace wtcp::stats
