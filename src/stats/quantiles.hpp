// Exact quantile accumulator for per-packet delay distributions.
//
// Runs in this library are small (10^3..10^5 samples), so we keep the
// samples and sort lazily — exact quantiles, no sketch error, trivial to
// reason about in tests.
#pragma once

#include <cstdint>
#include <vector>

namespace wtcp::stats {

class Quantiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Quantile q in [0, 1] (nearest-rank).  0 with no samples.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }
  double p95() const { return quantile(0.95); }
  double max() const { return quantile(1.0); }
  double min() const { return quantile(0.0); }
  double mean() const;

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace wtcp::stats
