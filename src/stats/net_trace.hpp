// Network-wide event traces, in the spirit of ns's trace files.
//
// Attach a NetTrace to any set of links and every queue/transmit/deliver/
// drop/corrupt event is recorded with its packet metadata.  The analyzer
// answers the questions one normally greps an ns trace for: per-link
// loss and drop counts, byte volumes per packet type, and link
// utilization over an interval.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/net/link.hpp"
#include "src/net/packet.hpp"
#include "src/obs/probe.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/time.hpp"

namespace wtcp::stats {

struct NetTraceRecord {
  sim::Time at;
  char event;  ///< '+', '-', 'd', 'r', 'c' (see DuplexLink::TraceHook)
  std::uint16_t link;  ///< index into link_names()
  std::int8_t from;    ///< transmitting endpoint
  net::PacketType type;
  std::int64_t size_bytes;
  std::int64_t seq;    ///< TCP seq/ack or link_seq, -1 if n/a
  std::uint64_t conn;  ///< TCP connection id, 0 if n/a
};

class NetTrace {
 public:
  NetTrace(sim::Simulator& sim) : sim_(sim) {}

  NetTrace(const NetTrace&) = delete;
  NetTrace& operator=(const NetTrace&) = delete;

  /// Start recording `link`'s events under the given display name.
  void attach(net::DuplexLink& link, std::string name);

  /// Mirror onto the probe bus: per-event counters (net.enqueues,
  /// net.transmits, net.drops, net.delivers, net.corrupts) for every
  /// record, plus published events for drops and corruptions only — the
  /// bulk '+'/'-'/'r' traffic stays out of the event log.
  void bind(obs::Registry* bus);

  const std::vector<NetTraceRecord>& records() const { return records_; }
  const std::vector<std::string>& link_names() const { return names_; }

  /// Number of records matching an event (and optionally a link name).
  std::size_t count(char event, std::string_view link_name = {}) const;

  /// Bytes that finished transmission ('-' events) per packet type on one
  /// link, endpoint `from` (-1 = both).
  std::int64_t bytes_sent(std::string_view link_name, net::PacketType type,
                          int from = -1) const;

  /// Fraction of [begin, end) the link spent transmitting (any direction),
  /// reconstructed from '-' events and link bandwidth/overhead.
  double utilization(std::string_view link_name, const net::DuplexLink& link,
                     sim::Time begin, sim::Time end) const;

  /// ns-style text dump: event time link from type size seq conn
  void write_tsv(std::ostream& os) const;

  void clear() { records_.clear(); }

 private:
  int link_index(std::string_view name) const;

  sim::Simulator& sim_;
  std::vector<std::string> names_;
  std::vector<NetTraceRecord> records_;
  obs::Registry* bus_ = nullptr;
  obs::Counter* probe_by_event_[5] = {};  ///< +, -, d, r, c
};

}  // namespace wtcp::stats
