#include "src/stats/net_trace.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace wtcp::stats {
namespace {

/// Index of a DuplexLink trace event char in probe_by_event_ (or -1).
int event_slot(char event) {
  switch (event) {
    case '+': return 0;
    case '-': return 1;
    case 'd': return 2;
    case 'r': return 3;
    case 'c': return 4;
  }
  return -1;
}

const char* event_name(char event) {
  switch (event) {
    case '+': return "enqueue";
    case '-': return "transmit";
    case 'd': return "drop";
    case 'r': return "deliver";
    case 'c': return "corrupt";
  }
  return "?";
}

}  // namespace

void NetTrace::bind(obs::Registry* bus) {
  bus_ = bus;
  if (!bus_) {
    for (auto*& c : probe_by_event_) c = nullptr;
    return;
  }
  probe_by_event_[0] = bus_->counter("net.enqueues");
  probe_by_event_[1] = bus_->counter("net.transmits");
  probe_by_event_[2] = bus_->counter("net.drops");
  probe_by_event_[3] = bus_->counter("net.delivers");
  probe_by_event_[4] = bus_->counter("net.corrupts");
}

void NetTrace::attach(net::DuplexLink& link, std::string name) {
  const auto idx = static_cast<std::uint16_t>(names_.size());
  names_.push_back(std::move(name));
  link.add_trace_hook([this, idx](char event, int from, const net::Packet& pkt) {
    NetTraceRecord r;
    r.at = sim_.now();
    r.event = event;
    r.link = idx;
    r.from = static_cast<std::int8_t>(from);
    r.type = pkt.type;
    r.size_bytes = pkt.size_bytes;
    r.conn = pkt.tcp ? pkt.tcp->conn : 0;
    if (pkt.tcp) {
      r.seq = pkt.type == net::PacketType::kTcpAck ? pkt.tcp->ack : pkt.tcp->seq;
    } else if (pkt.frag) {
      r.seq = pkt.frag->link_seq;
    } else {
      r.seq = -1;
    }
    records_.push_back(r);
    if (bus_) {
      const int slot = event_slot(event);
      if (slot >= 0) obs::add(probe_by_event_[slot]);
      if (event == 'd' || event == 'c') {
        bus_->publish(r.at, "net", event_name(event),
                      static_cast<double>(r.seq));
      }
    }
  });
}

int NetTrace::link_index(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::size_t NetTrace::count(char event, std::string_view link_name) const {
  const int idx = link_name.empty() ? -1 : link_index(link_name);
  std::size_t n = 0;
  for (const NetTraceRecord& r : records_) {
    if (r.event != event) continue;
    if (idx >= 0 && r.link != idx) continue;
    ++n;
  }
  return n;
}

std::int64_t NetTrace::bytes_sent(std::string_view link_name, net::PacketType type,
                                  int from) const {
  const int idx = link_index(link_name);
  assert(idx >= 0 && "unknown link name");
  std::int64_t bytes = 0;
  for (const NetTraceRecord& r : records_) {
    if (r.event != '-' || r.link != idx || r.type != type) continue;
    if (from >= 0 && r.from != from) continue;
    bytes += r.size_bytes;
  }
  return bytes;
}

double NetTrace::utilization(std::string_view link_name,
                             const net::DuplexLink& link, sim::Time begin,
                             sim::Time end) const {
  assert(end > begin);
  const int idx = link_index(link_name);
  assert(idx >= 0 && "unknown link name");
  sim::Time busy;
  for (const NetTraceRecord& r : records_) {
    if (r.event != '-' || r.link != idx) continue;
    const sim::Time tx_end = r.at + link.frame_airtime(r.size_bytes);
    const sim::Time ov_begin = std::max(r.at, begin);
    const sim::Time ov_end = std::min(tx_end, end);
    if (ov_end > ov_begin) busy += ov_end - ov_begin;
  }
  return busy / (end - begin);
}

void NetTrace::write_tsv(std::ostream& os) const {
  os << "# event\ttime_s\tlink\tfrom\ttype\tsize\tseq\tconn\n";
  for (const NetTraceRecord& r : records_) {
    os << r.event << '\t' << r.at.to_seconds() << '\t' << names_[r.link] << '\t'
       << static_cast<int>(r.from) << '\t' << net::to_string(r.type) << '\t'
       << r.size_bytes << '\t' << r.seq << '\t' << r.conn << '\n';
  }
}

}  // namespace wtcp::stats
