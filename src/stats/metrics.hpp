// Run-level metrics: the quantities the paper's evaluation reports.
//
//   goodput    = useful data received at the destination
//                / total data transmitted by the source        (Section 1)
//   throughput = data received by the end user (payload + 40 B header per
//                delivered segment) / connection time           (Section 5)
#pragma once

#include <cstdint>
#include <iosfwd>

#include "src/sim/time.hpp"

namespace wtcp::stats {

struct RunMetrics {
  bool completed = false;       ///< transfer finished before the horizon
  sim::Time duration;           ///< start of transfer -> last in-order byte at sink
  double throughput_bps = 0.0;  ///< paper's throughput metric
  double goodput = 0.0;         ///< paper's goodput metric, in [0, 1]

  // Source-side detail.
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_retransmitted = 0;
  std::int64_t retransmitted_bytes = 0;  ///< payload bytes resent by source (Fig. 9/11)
  std::uint64_t ebsn_received = 0;
  std::uint64_t quench_received = 0;

  // Sink-side detail.
  std::int64_t unique_payload_bytes = 0;
  std::uint64_t duplicate_segments = 0;

  // Wireless link / local recovery detail.
  std::uint64_t wireless_frames_corrupted = 0;
  std::uint64_t arq_attempts = 0;
  std::uint64_t arq_retransmissions = 0;
  std::uint64_t arq_discards = 0;
  std::uint64_t ebsn_sent = 0;
  std::uint64_t quench_sent = 0;
  std::uint64_t snoop_local_retransmits = 0;
  std::uint64_t handoffs = 0;

  // End-to-end segment delay (source tx -> sink arrival), seconds.
  double delay_p50_s = 0.0;
  double delay_p95_s = 0.0;
  double delay_max_s = 0.0;

  double throughput_kbps() const { return throughput_bps / 1000.0; }
  double retransmitted_kbytes() const {
    return static_cast<double>(retransmitted_bytes) / 1024.0;
  }
};

/// One-line human-readable rendering (for examples and debugging).
std::ostream& operator<<(std::ostream& os, const RunMetrics& m);

}  // namespace wtcp::stats
