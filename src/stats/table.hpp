// Plain-text table rendering for the bench harness: each bench prints the
// rows/series of one paper figure, aligned for reading and TSV-friendly
// for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wtcp::stats {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Add a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows.
  void add_numeric_row(const std::vector<double>& values, int precision = 2);

  std::size_t rows() const { return rows_.size(); }

  /// Aligned, human-readable rendering.
  void print(std::ostream& os) const;

  /// Tab-separated rendering (for piping into plotting tools).
  void print_tsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used across the benches.
std::string fmt_double(double v, int precision = 2);

}  // namespace wtcp::stats
