#include "src/topo/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/sim/logging.hpp"

namespace wtcp::topo {

#if defined(WTCP_AUDIT) && WTCP_AUDIT
namespace {

// Flight-recorder hook for audit violations.  Audit state is per-thread
// (one Simulator per worker thread), so one hook slot per thread suffices:
// the Scenario whose run is live on this thread owns it.
struct FlightHook {
  obs::TraceSink* sink = nullptr;
  const topo::TraceConfig* cfg = nullptr;
  audit::Handler previous = nullptr;
};
thread_local FlightHook t_flight_hook;

void flight_hook_handler(const char* component, const char* check,
                         const char* detail) {
  const FlightHook hook = t_flight_hook;
  if (hook.sink && hook.cfg && !hook.cfg->flight_path.empty()) {
    const std::string reason =
        std::string("audit:") + component + "." + check;
    obs::dump_flight_record(hook.cfg->flight_path, *hook.sink,
                            hook.cfg->flight_events, reason.c_str());
  }
  // Chain to whatever was installed before (the default log+abort, or a
  // test's capturing handler).  set_handler never returns null.
  hook.previous(component, check, detail);
}

}  // namespace
#endif  // WTCP_AUDIT

const char* to_string(FeedbackMode m) {
  switch (m) {
    case FeedbackMode::kNone: return "none";
    case FeedbackMode::kEbsn: return "ebsn";
    case FeedbackMode::kSourceQuench: return "source-quench";
  }
  return "?";
}

const char* to_string(TransferDirection d) {
  return d == TransferDirection::kDownlink ? "downlink" : "uplink";
}

void ScenarioConfig::set_packet_size(std::int32_t total_bytes) {
  assert(total_bytes > tcp.header_bytes);
  tcp.mss = total_bytes - tcp.header_bytes;
}

ScenarioConfig wan_scenario() {
  ScenarioConfig cfg;
  cfg.wired = net::LinkConfig{
      .name = "wired-wan",
      .bandwidth_bps = 56'000,
      .prop_delay = sim::Time::milliseconds(50),
      .queue_packets = 1000,
  };
  cfg.wireless = link::wan_wireless_link_config();
  cfg.channel = phy::GilbertElliottConfig{
      .ber_good = 1e-6, .ber_bad = 1e-2, .mean_good_s = 10, .mean_bad_s = 1};
  cfg.tcp.mss = 536;  // 576 B packet with a 40 B header
  cfg.tcp.header_bytes = 40;
  cfg.tcp.window_bytes = 4 * 1024;
  cfg.tcp.file_bytes = 100 * 1024;
  cfg.tcp.rto.granularity = sim::Time::milliseconds(100);
  cfg.wireless_mtu_bytes = 128;
  return cfg;
}

ScenarioConfig lan_scenario() {
  ScenarioConfig cfg;
  cfg.wired = net::LinkConfig{
      .name = "wired-lan",
      .bandwidth_bps = 10'000'000,
      .prop_delay = sim::Time::milliseconds(1),
      .queue_packets = 1000,
  };
  cfg.wireless = link::lan_wireless_link_config();
  cfg.channel = phy::GilbertElliottConfig{
      .ber_good = 1e-6, .ber_bad = 1e-2, .mean_good_s = 4, .mean_bad_s = 0.8};
  cfg.tcp.mss = 1536 - 40;
  cfg.tcp.header_bytes = 40;
  cfg.tcp.window_bytes = 64 * 1024;
  cfg.tcp.file_bytes = 4 * 1024 * 1024;
  cfg.tcp.rto.granularity = sim::Time::milliseconds(100);
  cfg.wireless_mtu_bytes = 1 << 20;  // "no fragmentation over the wireless link"
  return cfg;
}

Scenario::Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg)), sim_(cfg_.seed) {
  assert((cfg_.feedback == FeedbackMode::kNone || cfg_.local_recovery) &&
         "EBSN/source-quench feedback is triggered by local-recovery "
         "attempts; enable local_recovery");

  // Attach the probe bus BEFORE any component is built: probe sites cache
  // their Counter*/Gauge* pointers at construction time.
  if (cfg_.obs.enabled) {
    probes_ = std::make_unique<obs::Registry>();
    sim_.set_probes(probes_.get());
    if (cfg_.obs.profile_scheduler) sim_.scheduler().enable_profiling();
    sim_.packet_pool().bind_probes(probes_->counter("pool.allocs"),
                                   probes_->counter("pool.recycled"),
                                   probes_->gauge("pool.high_water"));
  }
  // Same discipline for the trace sink: hook sites cache the TraceSink*
  // and intern their labels at construction time.
  if (cfg_.trace.enabled) {
    tsink_ = std::make_unique<obs::TraceSink>(cfg_.trace.capacity);
    tsink_->set_seed(cfg_.seed);
    sim_.set_trace(tsink_.get());
#if defined(WTCP_AUDIT) && WTCP_AUDIT
    if (!cfg_.trace.flight_path.empty()) {
      t_flight_hook.sink = tsink_.get();
      t_flight_hook.cfg = &cfg_.trace;
      t_flight_hook.previous = audit::set_handler(&flight_hook_handler);
      flight_hook_installed_ = true;
    }
#endif
  }

  fh_ = nodes_.add("FH");
  bs_ = nodes_.add("BS");
  mh_ = nodes_.add("MH");

  // Wired path: one link (the paper's setup) or a chain of identical hops
  // through store-and-forward routers.
  const int hops = std::max<std::int32_t>(1, cfg_.wired_hops);
  for (int h = 0; h < hops; ++h) {
    net::LinkConfig hop_cfg = cfg_.wired;
    if (hops > 1) hop_cfg.name = cfg_.wired.name + "-hop" + std::to_string(h);
    wired_links_.push_back(std::make_unique<net::DuplexLink>(sim_, hop_cfg));
  }
  for (int h = 1; h < hops; ++h) {
    // Router between hop h-1 and hop h: forward in both directions.
    net::DuplexLink* left = wired_links_[static_cast<std::size_t>(h - 1)].get();
    net::DuplexLink* right = wired_links_[static_cast<std::size_t>(h)].get();
    router_sinks_.push_back(std::make_unique<net::CallbackSink>(
        [right](net::PacketRef p) { right->send(0, std::move(p)); }));
    left->set_sink(1, router_sinks_.back().get());
    router_sinks_.push_back(std::make_unique<net::CallbackSink>(
        [left](net::PacketRef p) { left->send(1, std::move(p)); }));
    right->set_sink(0, router_sinks_.back().get());
  }
  wireless_ = std::make_unique<net::DuplexLink>(sim_, cfg_.wireless);

  if (cfg_.channel_errors) {
    if (!cfg_.fade_trace_file.empty()) {
      channel_ = std::make_shared<phy::TraceDrivenErrorModel>(
          phy::TraceDrivenErrorModel::from_file(cfg_.fade_trace_file,
                                                sim_.fork_rng("channel"),
                                                cfg_.channel.ber_good));
    } else if (cfg_.deterministic_channel) {
      auto det = std::make_shared<phy::DeterministicGilbertElliott>(cfg_.channel);
      det_channel_ = det.get();
      channel_ = std::move(det);
    } else {
      auto ge = std::make_shared<phy::GilbertElliottModel>(
          cfg_.channel, sim_.fork_rng("channel"));
      ge_channel_ = ge.get();
      channel_ = std::move(ge);
    }
  }
  if (cfg_.handoff.enabled) {
    handoff_ = std::make_unique<mobility::HandoffManager>(sim_, cfg_.handoff);
    if (channel_) {
      channel_ = std::make_shared<phy::CompositeErrorModel>(
          std::vector<std::shared_ptr<phy::ErrorModel>>{
              channel_, handoff_->blackout_model()});
    } else {
      channel_ = handoff_->blackout_model();
    }
    if (cfg_.handoff.fast_retransmit_on_resume) {
      handoff_->on_handoff_complete = [this] {
        sink_->force_duplicate_acks(cfg_.tcp.dupack_threshold);
      };
    }
  }
  if (channel_) {
    wireless_->set_error_model(channel_);
    if (probes_) {
      channel_->bind_probes(probes_->counter("phy.frames"),
                            probes_->counter("phy.corrupted"));
    }
  }

  // --- TCP endpoints -------------------------------------------------------
  const bool downlink = cfg_.direction == TransferDirection::kDownlink;
  assert((downlink || !cfg_.snoop) &&
         "the snoop agent caches BS->MH data; it has no uplink role");

  if (downlink) {
    // The paper's setting: source at the fixed host, sink at the mobile.
    sender_ = std::make_unique<tcp::TcpSender>(sim_, cfg_.tcp, fh_, mh_, "src");
    sender_->set_downstream(
        [this](net::PacketRef pkt) { wired_links_.front()->send(0, std::move(pkt)); });
    wired_links_.front()->set_sink(0, sender_.get());  // ACKs/EBSN/quench

    sink_ = std::make_unique<tcp::TcpSink>(sim_, cfg_.tcp, mh_, fh_, "snk");
    sink_->set_downstream(
        [this](net::PacketRef ack) { mh_wifi_->send_datagram(std::move(ack)); });
  } else {
    // Uplink: source at the mobile host, sink at the fixed host.
    sender_ = std::make_unique<tcp::TcpSender>(sim_, cfg_.tcp, mh_, fh_, "src");
    sender_->set_downstream(
        [this](net::PacketRef pkt) { mh_wifi_->send_datagram(std::move(pkt)); });

    sink_ = std::make_unique<tcp::TcpSink>(sim_, cfg_.tcp, fh_, mh_, "snk");
    sink_->set_downstream(
        [this](net::PacketRef ack) { wired_links_.front()->send(0, std::move(ack)); });
    wired_links_.front()->set_sink(0, sink_.get());  // data arrives at FH
  }
  sink_->on_complete = [this] { sim_.stop(); };

  // --- Wireless interfaces -------------------------------------------------
  link::WirelessIfaceConfig wcfg;
  wcfg.local_recovery = cfg_.local_recovery;
  wcfg.arq = cfg_.arq;
  wcfg.frag.mtu_bytes = cfg_.wireless_mtu_bytes;

  mh_upper_sink_ = std::make_unique<net::CallbackSink>(
      [this](net::PacketRef pkt) { on_datagram_at_mh(std::move(pkt)); });
  mh_wifi_ = std::make_unique<link::WirelessInterface>(
      sim_, *wireless_, 1, wcfg, "mh-wifi", mh_upper_sink_.get());

  bs_upper_sink_ = std::make_unique<net::CallbackSink>(
      [this](net::PacketRef pkt) { on_datagram_from_mh(std::move(pkt)); });
  bs_wifi_ = std::make_unique<link::WirelessInterface>(
      sim_, *wireless_, 0, wcfg, "bs-wifi", bs_upper_sink_.get());

  // --- Base station wired side ---------------------------------------------
  bs_wired_sink_ = std::make_unique<net::CallbackSink>(
      [this](net::PacketRef pkt) { on_data_at_bs(std::move(pkt)); });
  wired_links_.back()->set_sink(1, bs_wired_sink_.get());

  // --- Feedback agents -------------------------------------------------------
  if (cfg_.cross_traffic) {
    cross_ = std::make_unique<traffic::OnOffSource>(
        sim_, cfg_.cross, fh_, bs_,
        [this](net::PacketRef p) { wired_links_.front()->send(0, std::move(p)); });
    cross_->start();
  }
  if (cfg_.snoop) {
    snoop_agent_ = std::make_unique<feedback::SnoopAgent>(sim_, cfg_.snoop_cfg, "snoop");
    snoop_agent_->set_wireless_tx(
        [this](net::PacketRef pkt) { bs_wifi_->send_datagram(std::move(pkt)); });
  }
  // Feedback travels from wherever local recovery runs for the DATA
  // direction: the BS (downlink, over the wired path) or the mobile host
  // itself (uplink — the notification is local, no network crossing).
  link::WirelessInterface* data_arq_side = downlink ? bs_wifi_.get() : mh_wifi_.get();
  const net::NodeId notifier = downlink ? bs_ : mh_;
  tcp::PacketForwarder to_source =
      downlink
          ? tcp::PacketForwarder([this](net::PacketRef pkt) {
              wired_links_.back()->send(1, std::move(pkt));
            })
          : tcp::PacketForwarder([this](net::PacketRef pkt) {
              sender_->handle_packet(std::move(pkt));
            });
  if (cfg_.feedback == FeedbackMode::kEbsn) {
    ebsn_agent_ = std::make_unique<core::EbsnAgent>(sim_, cfg_.ebsn, notifier,
                                                    downlink ? fh_ : mh_,
                                                    std::move(to_source));
    ebsn_agent_->attach(data_arq_side->arq_sender());
  } else if (cfg_.feedback == FeedbackMode::kSourceQuench) {
    quench_agent_ = std::make_unique<feedback::SourceQuenchAgent>(
        sim_, cfg_.quench, notifier, downlink ? fh_ : mh_, std::move(to_source));
    quench_agent_->attach(data_arq_side->arq_sender());
  }

  if (probes_) build_sampler();
}

Scenario::~Scenario() {
#if defined(WTCP_AUDIT) && WTCP_AUDIT
  if (flight_hook_installed_) {
    audit::set_handler(t_flight_hook.previous);
    t_flight_hook = {};
  }
#endif
}

void Scenario::dump_flight(const char* reason) {
  if (!tsink_ || cfg_.trace.flight_path.empty()) return;
  obs::dump_flight_record(cfg_.trace.flight_path, *tsink_,
                          cfg_.trace.flight_events, reason);
}

void Scenario::build_sampler() {
  sampler_ = std::make_unique<obs::Sampler>(sim_, cfg_.obs.sample_interval);
  sampler_->add_series("cwnd", [this] { return sender_->cwnd(); });
  sampler_->add_series("ssthresh", [this] { return sender_->ssthresh(); });
  sampler_->add_series("rto_s", [this] {
    return sender_->rto_estimator().rto().to_seconds();
  });
  sampler_->add_series("inflight_bytes", [this] {
    return static_cast<double>((sender_->snd_nxt() - sender_->snd_una()) *
                               cfg_.tcp.mss);
  });
  sampler_->add_series("wired_queue", [this] {
    return static_cast<double>(wired_links_.front()->queue_depth(0));
  });
  sampler_->add_series("wireless_queue", [this] {
    return static_cast<double>(wireless_->queue_depth(0));
  });
  sampler_->add_series("arq_backlog", [this] {
    std::size_t backlog = 0;
    for (const link::WirelessInterface* w : {bs_wifi_.get(), mh_wifi_.get()}) {
      if (const link::ArqSender* a = w->arq_sender_or_null()) {
        backlog += a->backlog();
      }
    }
    return static_cast<double>(backlog);
  });
  // Channel state: 1 while the Gilbert-Elliott channel is in BAD.  The
  // stochastic model is peeked (const, clamped to the sampled horizon) so
  // the sampler never draws from the channel RNG — obs on/off runs see the
  // identical random sequence.
  sampler_->add_series("channel_bad", [this] {
    if (ge_channel_) {
      return ge_channel_->peek_state(sim_.now()) == phy::ChannelState::kBad
                 ? 1.0
                 : 0.0;
    }
    if (det_channel_) {
      return det_channel_->state_at(sim_.now()) == phy::ChannelState::kBad
                 ? 1.0
                 : 0.0;
    }
    return 0.0;
  });
}

void Scenario::on_data_at_bs(net::PacketRef pkt) {
  if (pkt->type == net::PacketType::kBackground) {
    // Cross-traffic exits toward the rest of the internet here.
    ++background_delivered_;
    return;
  }
  const bool downlink = cfg_.direction == TransferDirection::kDownlink;
  if (downlink && pkt->type == net::PacketType::kTcpData) {
    if (snoop_agent_) snoop_agent_->on_data_from_wired(pkt);
    bs_wifi_->send_datagram(std::move(pkt));
    return;
  }
  if (!downlink && pkt->type == net::PacketType::kTcpAck) {
    bs_wifi_->send_datagram(std::move(pkt));  // ACKs from the FH sink to the MH
    return;
  }
  WTCP_LOG(kWarn, sim_.now(), "bs", "unexpected wired packet: %s",
           pkt->describe().c_str());
}

void Scenario::on_datagram_from_mh(net::PacketRef pkt) {
  const bool downlink = cfg_.direction == TransferDirection::kDownlink;
  if (downlink && pkt->type == net::PacketType::kTcpAck) {
    if (snoop_agent_ && !snoop_agent_->on_ack_from_wireless(*pkt)) {
      return;  // snoop suppressed a duplicate ACK
    }
    wired_links_.back()->send(1, std::move(pkt));
    return;
  }
  if (!downlink && pkt->type == net::PacketType::kTcpData) {
    wired_links_.back()->send(1, std::move(pkt));  // data onward to the FH
    return;
  }
  WTCP_LOG(kWarn, sim_.now(), "bs", "unexpected datagram from MH: %s",
           pkt->describe().c_str());
}

void Scenario::on_datagram_at_mh(net::PacketRef pkt) {
  const bool downlink = cfg_.direction == TransferDirection::kDownlink;
  if (downlink && pkt->type == net::PacketType::kTcpData) {
    sink_->handle_packet(std::move(pkt));
    return;
  }
  if (!downlink && pkt->type == net::PacketType::kTcpAck) {
    sender_->handle_packet(std::move(pkt));
    return;
  }
  WTCP_LOG(kWarn, sim_.now(), "mh", "unexpected datagram at MH: %s",
           pkt->describe().c_str());
}

void Scenario::set_sender_trace(stats::ConnectionTrace* trace) {
  if (trace && probes_) trace->bind(probes_.get());
  sender_->set_trace(trace);
}

void Scenario::set_sink_trace(stats::ConnectionTrace* trace) {
  if (trace && probes_) trace->bind(probes_.get());
  sink_->set_trace(trace);
}

stats::RunMetrics Scenario::run() {
  assert(!ran_ && "Scenario::run() may only be called once");
  ran_ = true;
  if (sampler_) sampler_->start();
  sender_->start_at(sim::Time::zero());
  sim_.set_budget(cfg_.budget);
  try {
    sim_.run(cfg_.horizon);
  } catch (...) {
    // Crash flight recorder: the ring holds the events leading up to the
    // throw; dump them before the exception unwinds the component graph.
    dump_flight("exception");
    throw;
  }
  if (!sim_.outcome().ok()) {
    dump_flight(sim::to_string(sim_.outcome().status));
  }
  if (sampler_) sampler_->stop();
  if (tsink_ && !cfg_.trace.out_path.empty()) {
    obs::write_trace_file(cfg_.trace.out_path + ".seed" +
                              std::to_string(cfg_.seed) + ".trace",
                          *tsink_);
  }
  return metrics();
}

stats::RunMetrics Scenario::metrics() const {
  stats::RunMetrics m;
  const auto& snd = sender_->stats();
  const auto& snk = sink_->stats();

  m.completed = snk.completed;
  m.duration = snk.completed ? snk.completion_time - snd.start_time
                             : sim_.now() - snd.start_time;
  if (m.duration > sim::Time::zero()) {
    m.throughput_bps =
        static_cast<double>(snk.delivered_wire_bytes) * 8.0 / m.duration.to_seconds();
  }
  if (snd.payload_bytes_sent > 0) {
    m.goodput = static_cast<double>(snk.unique_payload_bytes) /
                static_cast<double>(snd.payload_bytes_sent);
  }

  m.timeouts = snd.timeouts;
  m.fast_retransmits = snd.fast_retransmits;
  m.segments_sent = snd.segments_sent;
  m.segments_retransmitted = snd.segments_retransmitted;
  m.retransmitted_bytes = snd.payload_bytes_retransmitted;
  m.ebsn_received = snd.ebsn_received;
  m.quench_received = snd.quench_received;

  m.unique_payload_bytes = snk.unique_payload_bytes;
  m.duplicate_segments = snk.duplicate_segments;

  m.wireless_frames_corrupted = wireless_->stats(0).frames_corrupted +
                                wireless_->stats(1).frames_corrupted;
  for (const link::WirelessInterface* w : {bs_wifi_.get(), mh_wifi_.get()}) {
    if (const link::ArqSender* a = w->arq_sender_or_null()) {
      m.arq_attempts += a->stats().attempts;
      m.arq_retransmissions += a->stats().retransmissions;
      m.arq_discards += a->stats().discarded;
    }
  }
  if (ebsn_agent_) m.ebsn_sent = ebsn_agent_->stats().notifications_sent;
  if (quench_agent_) m.quench_sent = quench_agent_->stats().quenches_sent;
  if (snoop_agent_) m.snoop_local_retransmits = snoop_agent_->stats().local_retransmits;
  if (handoff_) m.handoffs = handoff_->stats().handoffs;
  m.delay_p50_s = sink_->delay().median();
  m.delay_p95_s = sink_->delay().p95();
  m.delay_max_s = sink_->delay().max();
  return m;
}

stats::RunMetrics run_scenario(const ScenarioConfig& cfg,
                               stats::ConnectionTrace* sender_trace) {
  Scenario s(cfg);
  if (sender_trace) s.set_sender_trace(sender_trace);
  return s.run();
}

}  // namespace wtcp::topo
