#include "src/topo/multi_scenario.hpp"

#include <cassert>
#include <cstdio>
#include <utility>

#include "src/obs/probe.hpp"
#include "src/sim/logging.hpp"

namespace wtcp::topo {

MultiUserConfig multi_user_lan_scenario() {
  MultiUserConfig cfg;
  cfg.users = 4;
  cfg.wired = net::LinkConfig{
      .name = "wired-lan",
      .bandwidth_bps = 10'000'000,
      .prop_delay = sim::Time::milliseconds(1),
      .queue_packets = 4096,
  };
  cfg.wireless = link::lan_wireless_link_config();
  cfg.channel = phy::GilbertElliottConfig{
      .ber_good = 1e-6, .ber_bad = 1e-2, .mean_good_s = 4, .mean_bad_s = 0.8};
  cfg.tcp.mss = 1536 - 40;
  cfg.tcp.header_bytes = 40;
  cfg.tcp.window_bytes = 64 * 1024;
  cfg.tcp.file_bytes = 1024 * 1024;  // 1 MB per connection
  cfg.tcp.rto.granularity = sim::Time::milliseconds(100);
  return cfg;
}

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

namespace {

/// Per-flow component label: prefix + "u<k>".  Stack buffer + snprintf
/// keeps construction allocation-light (the short results then fit
/// std::string's SSO), and the bytes are EXACTLY the historical
/// `prefix + "u" + std::to_string(k)` — RNG streams are forked by label
/// hash, so a one-byte drift would silently change every channel draw.
std::string flow_label(const char* prefix, std::size_t k) {
  char buf[48];
  const int n = std::snprintf(buf, sizeof buf, "%su%zu", prefix, k);
  assert(n > 0 && static_cast<std::size_t>(n) < sizeof buf);
  return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace

MultiUserLanScenario::MultiUserLanScenario(MultiUserConfig cfg)
    : cfg_(std::move(cfg)), sim_(cfg_.seed), medium_(std::make_shared<net::Medium>()) {
  assert(cfg_.users >= 1);
  assert((cfg_.feedback == FeedbackMode::kNone || cfg_.local_recovery) &&
         "feedback requires local recovery");
  assert(cfg_.feedback != FeedbackMode::kSourceQuench &&
         "multi-user scenario supports kNone/kEbsn");

  const net::NodeId fh = 0;
  const net::NodeId bs = 1;

  // --- wired segment ---------------------------------------------------
  wired_ = std::make_unique<net::DuplexLink>(sim_, cfg_.wired);
  fh_sink_ = std::make_unique<net::CallbackSink>(
      [this](net::PacketRef p) { on_wired_at_fh(std::move(p)); });
  bs_sink_ = std::make_unique<net::CallbackSink>(
      [this](net::PacketRef p) { on_wired_at_bs(std::move(p)); });
  wired_->set_sink(0, fh_sink_.get());
  wired_->set_sink(1, bs_sink_.get());

  // --- scheduler ---------------------------------------------------------
  sched_ = std::make_unique<link::BsScheduler>(sim_, cfg_.sched, cfg_.users);
  sched_->set_release(
      [this](std::size_t user, net::PacketRef d) { release_to_user(user, std::move(d)); });
  sched_->set_channel_probe([this](std::size_t user) {
    if (!cfg_.channel_errors) return true;
    return channels_[user].state_at(sim_.now()) == phy::ChannelState::kGood;
  });

  // --- per-user subsystem arenas ----------------------------------------
  // One reservation per subsystem covers all K flows; construction below
  // fills the slabs in flow order and nothing per-flow is heap-allocated
  // afterwards.
  link::WirelessIfaceConfig wcfg;
  wcfg.local_recovery = cfg_.local_recovery;
  wcfg.arq = cfg_.arq;
  wcfg.frag.mtu_bytes = cfg_.wireless_mtu_bytes;

  radio_links_.reserve(cfg_.users);
  if (cfg_.channel_errors) channels_.reserve(cfg_.users);
  bs_wifis_.reserve(cfg_.users);
  mh_wifis_.reserve(cfg_.users);
  bs_uppers_.reserve(cfg_.users);
  mh_uppers_.reserve(cfg_.users);
  senders_.reserve(cfg_.users);
  sinks_.reserve(cfg_.users);
  if (cfg_.feedback == FeedbackMode::kEbsn) ebsn_agents_.reserve(cfg_.users);
  pending_.reserve(static_cast<std::size_t>(cfg_.sched.max_outstanding));

  for (std::size_t k = 0; k < cfg_.users; ++k) {
    const net::NodeId mh = static_cast<net::NodeId>(2 + k);

    net::LinkConfig radio = cfg_.wireless;
    radio.name = flow_label("radio-", k);
    radio.medium = medium_;  // one base-station radio for everyone
    net::DuplexLink& radio_link = radio_links_.emplace_back(sim_, radio);
    if (cfg_.channel_errors) {
      phy::GilbertElliottModel& ge = channels_.emplace_back(
          cfg_.channel, sim_.fork_rng(flow_label("channel-", k)));
      // Non-owning aliasing handle: the model lives in the slab for the
      // scenario's whole lifetime, so the link does not need shared
      // ownership (and per-flow control blocks would defeat the arena).
      radio_link.set_error_model(
          std::shared_ptr<phy::ErrorModel>(std::shared_ptr<void>(), &ge));
    }

    // TCP endpoints.
    tcp::TcpConfig tcfg = cfg_.tcp;
    tcfg.conn = k;
    tcp::TcpSender& snd =
        senders_.emplace_back(sim_, tcfg, fh, mh, flow_label("src-", k));
    snd.set_downstream(
        [this](net::PacketRef p) { wired_->send(0, std::move(p)); });
    tcp::TcpSink& snk =
        sinks_.emplace_back(sim_, tcfg, mh, fh, flow_label("snk-", k));
    snk.set_downstream(
        [this, k](net::PacketRef ack) { mh_wifis_[k].send_datagram(std::move(ack)); });
    snk.on_complete = [this] {
      if (++completed_ == cfg_.users) sim_.stop();
    };

    // Wireless interfaces.
    net::CallbackSink& mh_upper =
        mh_uppers_.emplace_back([this, k](net::PacketRef p) {
          if (p->type == net::PacketType::kTcpData) sinks_[k].handle_packet(std::move(p));
        });
    mh_wifis_.emplace_back(sim_, radio_link, 1, wcfg, flow_label("mh-wifi-", k),
                           &mh_upper);

    net::CallbackSink& bs_upper =
        bs_uppers_.emplace_back([this](net::PacketRef p) {
          if (p->type == net::PacketType::kTcpAck) wired_->send(1, std::move(p));
        });
    link::WirelessInterface& bs_wifi = bs_wifis_.emplace_back(
        sim_, radio_link, 0, wcfg, flow_label("bs-wifi-", k), &bs_upper);

    // Datagram resolution -> scheduler slot release.  With LAN framing a
    // datagram is one fragment; the generic counter handles fragmentation
    // anyway.
    if (cfg_.local_recovery) {
      auto& arq = bs_wifi.arq_sender();
      auto resolve = [this, k](const net::Packet& frame) {
        resolve_fragment(k, frame.frag->datagram_id);
      };
      arq.on_delivered = resolve;
      arq.on_discard = resolve;
    } else {
      radio_link.add_frame_observer(
          [this, k](int from, const net::Packet& frame, bool) {
            if (from != 0 || frame.type != net::PacketType::kLinkFragment) return;
            resolve_fragment(k, frame.frag->datagram_id);
          });
    }

    if (cfg_.feedback == FeedbackMode::kEbsn) {
      core::EbsnAgent& agent = ebsn_agents_.emplace_back(
          sim_, cfg_.ebsn, bs, fh,
          [this](net::PacketRef p) { wired_->send(1, std::move(p)); });
      agent.attach(bs_wifi.arq_sender());
    }
  }
}

void MultiUserLanScenario::on_wired_at_bs(net::PacketRef pkt) {
  if (pkt->type != net::PacketType::kTcpData || !pkt->tcp) {
    WTCP_LOG(kWarn, sim_.now(), "bs", "unexpected wired packet: %s",
             pkt->describe().c_str());
    return;
  }
  const auto user = static_cast<std::size_t>(pkt->tcp->conn);
  assert(user < cfg_.users);
  sched_->enqueue(user, std::move(pkt));
}

void MultiUserLanScenario::on_wired_at_fh(net::PacketRef pkt) {
  if (!pkt->tcp) {
    WTCP_LOG(kWarn, sim_.now(), "fh", "undemuxable packet: %s",
             pkt->describe().c_str());
    return;
  }
  const auto user = static_cast<std::size_t>(pkt->tcp->conn);
  assert(user < cfg_.users);
  senders_[user].handle_packet(std::move(pkt));
}

void MultiUserLanScenario::release_to_user(std::size_t user, net::PacketRef datagram) {
  const link::WirelessInterface::SendInfo info =
      bs_wifis_[user].send_datagram(std::move(datagram));
  // Resolution (ARQ delivered/discarded, or airtime ended without ARQ) is
  // reported per fragment; the scheduler slot frees when all fragments of
  // this datagram are resolved.
  assert(info.fragments >= 1);
  pending_.push_back(PendingDatagram{static_cast<std::uint32_t>(user),
                                     info.fragments, info.datagram_id});
}

void MultiUserLanScenario::resolve_fragment(std::size_t user,
                                            std::uint64_t datagram_id) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingDatagram& p = pending_[i];
    if (p.user != user || p.datagram_id != datagram_id) continue;
    if (--p.remaining == 0) {
      p = pending_.back();  // order-free table: swap-remove
      pending_.pop_back();
      sched_->on_resolved(user);
    }
    return;
  }
  // Not found: a frame the scheduler never released (e.g. an uplink ACK's
  // link-layer traffic) — nothing to account.
}

MultiUserMetrics MultiUserLanScenario::run() {
  assert(!ran_);
  ran_ = true;
  for (std::size_t k = 0; k < senders_.size(); ++k) {
    senders_[k].start_at(sim::Time::zero());
  }
  sim_.run(cfg_.horizon);
  MultiUserMetrics out = collect();
  publish(out);
  return out;
}

MultiUserMetrics MultiUserLanScenario::collect() const {
  MultiUserMetrics out;
  out.per_user.reserve(cfg_.users);
  sim::Time last_completion = sim::Time::zero();
  std::int64_t total_delivered_wire = 0;
  std::vector<double> rates;
  rates.reserve(cfg_.users);

  for (std::size_t k = 0; k < cfg_.users; ++k) {
    const auto& snd = senders_[k].stats();
    const auto& snk = sinks_[k].stats();
    stats::RunMetrics m;
    m.completed = snk.completed;
    m.duration = snk.completed ? snk.completion_time - snd.start_time
                               : sim_.now() - snd.start_time;
    if (m.duration > sim::Time::zero()) {
      m.throughput_bps = static_cast<double>(snk.delivered_wire_bytes) * 8.0 /
                         m.duration.to_seconds();
    }
    if (snd.payload_bytes_sent > 0) {
      m.goodput = static_cast<double>(snk.unique_payload_bytes) /
                  static_cast<double>(snd.payload_bytes_sent);
    }
    m.timeouts = snd.timeouts;
    m.fast_retransmits = snd.fast_retransmits;
    m.segments_retransmitted = snd.segments_retransmitted;
    m.retransmitted_bytes = snd.payload_bytes_retransmitted;
    m.ebsn_received = snd.ebsn_received;
    m.unique_payload_bytes = snk.unique_payload_bytes;
    if (m.completed) ++out.completed_users;
    last_completion = std::max(last_completion, m.duration);
    total_delivered_wire += snk.delivered_wire_bytes;
    rates.push_back(m.throughput_bps);
    out.per_user.push_back(m);
  }

  out.duration = last_completion;
  if (out.duration > sim::Time::zero()) {
    out.aggregate_throughput_bps =
        static_cast<double>(total_delivered_wire) * 8.0 / out.duration.to_seconds();
  }
  out.fairness = jain_fairness(rates);
  out.csd_deferrals = sched_->stats().csd_deferrals;
  out.csd_skips = sched_->stats().csd_skips;
  return out;
}

void MultiUserLanScenario::publish(const MultiUserMetrics& m) {
  if (!probes_) return;
  // Fixed-slot aggregates only: K flows publish K histogram samples, not
  // K probe names — probe-bus memory stays O(1) in the user count.
  obs::set(probes_->gauge("multi.aggregate_throughput_bps"),
           m.aggregate_throughput_bps);
  obs::set(probes_->gauge("multi.fairness_jain"), m.fairness);
  obs::set(probes_->gauge("multi.completed_users"),
           static_cast<double>(m.completed_users));
  obs::set(probes_->gauge("multi.duration_s"), m.duration.to_seconds());
  obs::add(probes_->counter("multi.csd_skips"), m.csd_skips);
  obs::add(probes_->counter("multi.csd_deferrals"), m.csd_deferrals);
  obs::Histogram* rate_hist = probes_->histogram("multi.user_throughput_bps");
  obs::Histogram* goodput_hist = probes_->histogram("multi.user_goodput");
  for (const stats::RunMetrics& u : m.per_user) {
    obs::record(rate_hist, u.throughput_bps);
    obs::record(goodput_hist, u.goodput);
  }
}

}  // namespace wtcp::topo
