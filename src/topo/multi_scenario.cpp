#include "src/topo/multi_scenario.hpp"

#include <cassert>
#include <unordered_map>
#include <utility>

#include "src/sim/logging.hpp"

namespace wtcp::topo {

MultiUserConfig multi_user_lan_scenario() {
  MultiUserConfig cfg;
  cfg.users = 4;
  cfg.wired = net::LinkConfig{
      .name = "wired-lan",
      .bandwidth_bps = 10'000'000,
      .prop_delay = sim::Time::milliseconds(1),
      .queue_packets = 4096,
  };
  cfg.wireless = link::lan_wireless_link_config();
  cfg.channel = phy::GilbertElliottConfig{
      .ber_good = 1e-6, .ber_bad = 1e-2, .mean_good_s = 4, .mean_bad_s = 0.8};
  cfg.tcp.mss = 1536 - 40;
  cfg.tcp.header_bytes = 40;
  cfg.tcp.window_bytes = 64 * 1024;
  cfg.tcp.file_bytes = 1024 * 1024;  // 1 MB per connection
  cfg.tcp.rto.granularity = sim::Time::milliseconds(100);
  return cfg;
}

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

MultiUserLanScenario::MultiUserLanScenario(MultiUserConfig cfg)
    : cfg_(std::move(cfg)), sim_(cfg_.seed), medium_(std::make_shared<net::Medium>()) {
  assert(cfg_.users >= 1);
  assert((cfg_.feedback == FeedbackMode::kNone || cfg_.local_recovery) &&
         "feedback requires local recovery");
  assert(cfg_.feedback != FeedbackMode::kSourceQuench &&
         "multi-user scenario supports kNone/kEbsn");

  const net::NodeId fh = 0;
  const net::NodeId bs = 1;

  // --- wired segment ---------------------------------------------------
  wired_ = std::make_unique<net::DuplexLink>(sim_, cfg_.wired);
  fh_sink_ = std::make_unique<net::CallbackSink>(
      [this](net::PacketRef p) { on_wired_at_fh(std::move(p)); });
  bs_sink_ = std::make_unique<net::CallbackSink>(
      [this](net::PacketRef p) { on_wired_at_bs(std::move(p)); });
  wired_->set_sink(0, fh_sink_.get());
  wired_->set_sink(1, bs_sink_.get());

  // --- scheduler ---------------------------------------------------------
  sched_ = std::make_unique<link::BsScheduler>(sim_, cfg_.sched, cfg_.users);
  sched_->set_release(
      [this](std::size_t user, net::PacketRef d) { release_to_user(user, std::move(d)); });
  sched_->set_channel_probe([this](std::size_t user) {
    if (!cfg_.channel_errors) return true;
    return channels_[user]->state_at(sim_.now()) == phy::ChannelState::kGood;
  });

  // --- per-user radio links, interfaces, TCP endpoints -------------------
  link::WirelessIfaceConfig wcfg;
  wcfg.local_recovery = cfg_.local_recovery;
  wcfg.arq = cfg_.arq;
  wcfg.frag.mtu_bytes = cfg_.wireless_mtu_bytes;

  radio_links_.resize(cfg_.users);
  pending_frags_.resize(cfg_.users);
  channels_.resize(cfg_.users);
  bs_wifis_.resize(cfg_.users);
  mh_wifis_.resize(cfg_.users);
  bs_uppers_.resize(cfg_.users);
  mh_uppers_.resize(cfg_.users);
  senders_.resize(cfg_.users);
  sinks_.resize(cfg_.users);
  ebsn_agents_.resize(cfg_.users);

  for (std::size_t k = 0; k < cfg_.users; ++k) {
    const net::NodeId mh = static_cast<net::NodeId>(2 + k);
    const std::string tag = "u" + std::to_string(k);

    net::LinkConfig radio = cfg_.wireless;
    radio.name = "radio-" + tag;
    radio.medium = medium_;  // one base-station radio for everyone
    radio_links_[k] = std::make_unique<net::DuplexLink>(sim_, radio);
    if (cfg_.channel_errors) {
      channels_[k] = std::make_shared<phy::GilbertElliottModel>(
          cfg_.channel, sim_.fork_rng("channel-" + tag));
      radio_links_[k]->set_error_model(channels_[k]);
    }

    // TCP endpoints.
    tcp::TcpConfig tcfg = cfg_.tcp;
    tcfg.conn = k;
    senders_[k] = std::make_unique<tcp::TcpSender>(sim_, tcfg, fh, mh, "src-" + tag);
    senders_[k]->set_downstream(
        [this](net::PacketRef p) { wired_->send(0, std::move(p)); });
    sinks_[k] = std::make_unique<tcp::TcpSink>(sim_, tcfg, mh, fh, "snk-" + tag);
    sinks_[k]->set_downstream(
        [this, k](net::PacketRef ack) { mh_wifis_[k]->send_datagram(std::move(ack)); });
    sinks_[k]->on_complete = [this] {
      if (++completed_ == cfg_.users) sim_.stop();
    };

    // Wireless interfaces.
    mh_uppers_[k] = std::make_unique<net::CallbackSink>([this, k](net::PacketRef p) {
      if (p->type == net::PacketType::kTcpData) sinks_[k]->handle_packet(std::move(p));
    });
    mh_wifis_[k] = std::make_unique<link::WirelessInterface>(
        sim_, *radio_links_[k], 1, wcfg, "mh-wifi-" + tag, mh_uppers_[k].get());

    bs_uppers_[k] = std::make_unique<net::CallbackSink>([this](net::PacketRef p) {
      if (p->type == net::PacketType::kTcpAck) wired_->send(1, std::move(p));
    });
    bs_wifis_[k] = std::make_unique<link::WirelessInterface>(
        sim_, *radio_links_[k], 0, wcfg, "bs-wifi-" + tag, bs_uppers_[k].get());

    // Datagram resolution -> scheduler slot release.  With LAN framing a
    // datagram is one fragment; the generic counter handles fragmentation
    // anyway.
    if (cfg_.local_recovery) {
      auto& arq = bs_wifis_[k]->arq_sender();
      auto resolve = [this, k](const net::Packet& frame) {
        auto& remaining = pending_frags_[k];
        auto it = remaining.find(frame.frag->datagram_id);
        if (it == remaining.end()) return;  // e.g. not scheduler-released
        if (--it->second == 0) {
          remaining.erase(it);
          sched_->on_resolved(k);
        }
      };
      arq.on_delivered = resolve;
      arq.on_discard = resolve;
    } else {
      radio_links_[k]->add_frame_observer(
          [this, k](int from, const net::Packet& frame, bool) {
            if (from != 0 || frame.type != net::PacketType::kLinkFragment) return;
            auto& remaining = pending_frags_[k];
            auto it = remaining.find(frame.frag->datagram_id);
            if (it == remaining.end()) return;
            if (--it->second == 0) {
              remaining.erase(it);
              sched_->on_resolved(k);
            }
          });
    }

    if (cfg_.feedback == FeedbackMode::kEbsn) {
      ebsn_agents_[k] = std::make_unique<core::EbsnAgent>(
          sim_, cfg_.ebsn, bs, fh,
          [this](net::PacketRef p) { wired_->send(1, std::move(p)); });
      ebsn_agents_[k]->attach(bs_wifis_[k]->arq_sender());
    }
  }
}

void MultiUserLanScenario::on_wired_at_bs(net::PacketRef pkt) {
  if (pkt->type != net::PacketType::kTcpData || !pkt->tcp) {
    WTCP_LOG(kWarn, sim_.now(), "bs", "unexpected wired packet: %s",
             pkt->describe().c_str());
    return;
  }
  const auto user = static_cast<std::size_t>(pkt->tcp->conn);
  assert(user < cfg_.users);
  sched_->enqueue(user, std::move(pkt));
}

void MultiUserLanScenario::on_wired_at_fh(net::PacketRef pkt) {
  if (!pkt->tcp) {
    WTCP_LOG(kWarn, sim_.now(), "fh", "undemuxable packet: %s",
             pkt->describe().c_str());
    return;
  }
  const auto user = static_cast<std::size_t>(pkt->tcp->conn);
  assert(user < cfg_.users);
  senders_[user]->handle_packet(std::move(pkt));
}

void MultiUserLanScenario::release_to_user(std::size_t user, net::PacketRef datagram) {
  const link::WirelessInterface::SendInfo info =
      bs_wifis_[user]->send_datagram(std::move(datagram));
  // Resolution (ARQ delivered/discarded, or airtime ended without ARQ) is
  // reported per fragment; the scheduler slot frees when all fragments of
  // this datagram are resolved.
  pending_frags_[user][info.datagram_id] = info.fragments;
}

MultiUserMetrics MultiUserLanScenario::run() {
  assert(!ran_);
  ran_ = true;
  for (auto& s : senders_) s->start_at(sim::Time::zero());
  sim_.run(cfg_.horizon);
  return collect();
}

MultiUserMetrics MultiUserLanScenario::collect() const {
  MultiUserMetrics out;
  out.per_user.reserve(cfg_.users);
  sim::Time last_completion = sim::Time::zero();
  std::int64_t total_delivered_wire = 0;
  std::vector<double> rates;

  for (std::size_t k = 0; k < cfg_.users; ++k) {
    const auto& snd = senders_[k]->stats();
    const auto& snk = sinks_[k]->stats();
    stats::RunMetrics m;
    m.completed = snk.completed;
    m.duration = snk.completed ? snk.completion_time - snd.start_time
                               : sim_.now() - snd.start_time;
    if (m.duration > sim::Time::zero()) {
      m.throughput_bps = static_cast<double>(snk.delivered_wire_bytes) * 8.0 /
                         m.duration.to_seconds();
    }
    if (snd.payload_bytes_sent > 0) {
      m.goodput = static_cast<double>(snk.unique_payload_bytes) /
                  static_cast<double>(snd.payload_bytes_sent);
    }
    m.timeouts = snd.timeouts;
    m.fast_retransmits = snd.fast_retransmits;
    m.segments_retransmitted = snd.segments_retransmitted;
    m.retransmitted_bytes = snd.payload_bytes_retransmitted;
    m.ebsn_received = snd.ebsn_received;
    m.unique_payload_bytes = snk.unique_payload_bytes;
    if (m.completed) ++out.completed_users;
    last_completion = std::max(last_completion, m.duration);
    total_delivered_wire += snk.delivered_wire_bytes;
    rates.push_back(m.throughput_bps);
    out.per_user.push_back(m);
  }

  out.duration = last_completion;
  if (out.duration > sim::Time::zero()) {
    out.aggregate_throughput_bps =
        static_cast<double>(total_delivered_wire) * 8.0 / out.duration.to_seconds();
  }
  out.fairness = jain_fairness(rates);
  out.csd_deferrals = sched_->stats().csd_deferrals;
  out.csd_skips = sched_->stats().csd_skips;
  return out;
}

}  // namespace wtcp::topo
