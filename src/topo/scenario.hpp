// The paper's simulation setup (Figure 2): a fixed host (FH) with the TCP
// source, a base station (BS), and a mobile host (MH) with the TCP sink.
//
//    FH ---- wired link ---- BS ---- wireless link ---- MH
//   (SRC)                 (gateway)                   (SNK)
//
// ScenarioConfig captures every knob the paper varies; Scenario builds the
// node graph, runs the bulk transfer, and reports the paper's metrics.
// `wan_scenario()` / `lan_scenario()` return the Section 3 / Section 4.2.4
// parameter sets.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "src/core/ebsn.hpp"
#include "src/feedback/snoop_agent.hpp"
#include "src/feedback/source_quench.hpp"
#include "src/link/wireless_link.hpp"
#include "src/mobility/handoff.hpp"
#include "src/net/link.hpp"
#include "src/obs/probe.hpp"
#include "src/obs/sampler.hpp"
#include "src/obs/trace.hpp"
#include "src/traffic/background.hpp"
#include "src/net/node.hpp"
#include "src/phy/gilbert_elliott.hpp"
#include "src/phy/trace_driven.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/metrics.hpp"
#include "src/stats/trace.hpp"
#include "src/tcp/tahoe_sender.hpp"
#include "src/tcp/tcp_sink.hpp"

namespace wtcp::topo {

/// Which base-station feedback mechanism is active (requires local
/// recovery, which supplies the failed-attempt trigger).
enum class FeedbackMode : std::uint8_t { kNone, kEbsn, kSourceQuench };

const char* to_string(FeedbackMode m);

/// Direction of the bulk transfer.
enum class TransferDirection : std::uint8_t {
  kDownlink,  ///< FH -> MH, the paper's setting
  kUplink,    ///< MH -> FH (extension): the data source sits BEHIND the
              ///< wireless hop, so "bad state" is a LOCAL signal — the
              ///< mobile host's own ARQ notifies its own TCP directly,
              ///< no wired round trip and no BS involvement.
};

const char* to_string(TransferDirection d);

/// Observability for one run: when enabled the Scenario owns a probe
/// registry (attached to the Simulator before any component is built, so
/// every probe site binds its counters) and a periodic sampler recording
/// the run's key time series.
struct ObsConfig {
  bool enabled = false;
  sim::Time sample_interval = sim::Time::milliseconds(100);
  /// Count executed events per scheduler tag (cheap; one map bump per
  /// event).
  bool profile_scheduler = true;
};

/// Packet-lifecycle tracing for one run (docs/observability.md).  When
/// enabled the Scenario owns a TraceSink attached to the Simulator before
/// any component is built, so every hook site caches the sink and interns
/// its labels at construction.  Emission requires a WTCP_TRACE build; in a
/// non-trace build an enabled sink simply stays empty.
struct TraceConfig {
  bool enabled = false;
  /// Ring capacity in records (24 B each); oldest records are overwritten
  /// once full, with the overwrite count reported as dropped().
  std::size_t capacity = obs::TraceSink::kDefaultCapacity;
  /// Binary dump path stem; ".seed<seed>.trace" is appended.  Empty = the
  /// ring is only observable in-process (tests, flight recorder).
  std::string out_path;
  /// Flight-recorder JSONL written when the run ends abnormally — a
  /// watchdog (RunBudget) verdict, a thrown exception, or (in audit
  /// builds) a WTCP_AUDIT invariant violation.  Empty = off.
  std::string flight_path;
  /// How many trailing events the flight recorder dumps.
  std::size_t flight_events = 256;
};

struct ScenarioConfig {
  net::LinkConfig wired;
  /// Number of wired hops between FH and BS (default 1 = the paper's
  /// direct link).  With N > 1, N identical `wired` links are chained
  /// through store-and-forward routers, inflating the wired RTT and
  /// adding queueing points.
  std::int32_t wired_hops = 1;
  net::LinkConfig wireless;

  phy::GilbertElliottConfig channel;
  /// Use the fixed-cycle channel of the Figure 3-5 example instead of the
  /// stochastic one.
  bool deterministic_channel = false;
  /// Disable channel errors entirely (tput_max calibration runs).
  bool channel_errors = true;
  /// Replay a recorded fade trace instead of the analytic channel (see
  /// phy::TraceDrivenErrorModel for the file format).  Overrides
  /// `channel` / `deterministic_channel` when non-empty.
  std::string fade_trace_file;

  tcp::TcpConfig tcp;
  TransferDirection direction = TransferDirection::kDownlink;

  /// Base-station link-level retransmissions (Section 4.2.1).
  bool local_recovery = false;
  link::ArqConfig arq;

  /// Wireless MTU; datagrams larger than this fragment (Section 3.1).
  std::int64_t wireless_mtu_bytes = 128;

  FeedbackMode feedback = FeedbackMode::kNone;
  core::EbsnConfig ebsn;
  feedback::SourceQuenchConfig quench;

  /// TCP-aware snoop agent at the BS (extra baseline, Section 2 / [11]).
  bool snoop = false;
  feedback::SnoopConfig snoop_cfg;

  /// Handoffs (the paper's companion study [17]): periodic wireless
  /// blackouts while the MH re-registers, with optional [4]-style fast
  /// retransmit on resumption.
  mobility::HandoffConfig handoff;

  /// Wired cross-traffic (the paper's follow-up study [18]): background
  /// packets compete with the connection under test on the FH->BS link.
  /// They terminate at the base station (heading "elsewhere").  Shrink
  /// wired.queue_packets to make congestion bite.
  bool cross_traffic = false;
  traffic::OnOffConfig cross;

  std::uint64_t seed = 1;
  sim::Time horizon = sim::Time::seconds(36'000);  ///< hard stop

  /// Per-run watchdog limits (docs/robustness.md).  Unarmed by default:
  /// the run loop is the exact budget-free code path and output stays
  /// byte-identical to the goldens.
  sim::RunBudget budget;

  ObsConfig obs;
  TraceConfig trace;

  /// Set the paper's "packet size" (total wired packet, header included).
  void set_packet_size(std::int32_t total_bytes);
  std::int32_t packet_size() const { return tcp.mss + tcp.header_bytes; }
};

/// Paper Section 3: 56 kbps wired link, 19.2 kbps (12.8 effective) wireless
/// link, 128 B wireless MTU, 576 B packets, 4 KB window, 100 KB transfer,
/// 100 ms TCP clock, good/bad = 10 s / 1 s.
ScenarioConfig wan_scenario();

/// Paper Section 4.2.4: 10 Mbps wired, 2 Mbps wireless, no fragmentation,
/// 1536 B packets, 64 KB window, 4 MB transfer, good/bad = 4 s / 0.8 s.
ScenarioConfig lan_scenario();

/// A fully wired (and configured) instance of the Figure 2 topology.
/// Build, optionally attach traces, call run() once, then read metrics or
/// poke at components (tests do).
class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Attach an event trace to the source (Figures 3-5) / sink.
  void set_sender_trace(stats::ConnectionTrace* trace);
  void set_sink_trace(stats::ConnectionTrace* trace);

  /// Run the bulk transfer to completion (or the horizon).  Call once.
  stats::RunMetrics run();

  /// Metrics of the run so far (also usable mid-run from tests).
  stats::RunMetrics metrics() const;

  // Component access (tests, benches, examples).
  sim::Simulator& simulator() { return sim_; }
  tcp::TahoeSender& sender() { return *sender_; }
  tcp::TcpSink& sink() { return *sink_; }
  /// First wired hop (the FH's access link).
  net::DuplexLink& wired_link() { return *wired_links_.front(); }
  /// Any wired hop, 0-based from the FH side.
  net::DuplexLink& wired_link(std::size_t hop) { return *wired_links_[hop]; }
  std::size_t wired_hop_count() const { return wired_links_.size(); }
  net::DuplexLink& wireless_link() { return *wireless_; }
  link::WirelessInterface& bs_wireless() { return *bs_wifi_; }
  link::WirelessInterface& mh_wireless() { return *mh_wifi_; }
  core::EbsnAgent* ebsn_agent() { return ebsn_agent_.get(); }
  feedback::SourceQuenchAgent* quench_agent() { return quench_agent_.get(); }
  feedback::SnoopAgent* snoop_agent() { return snoop_agent_.get(); }
  mobility::HandoffManager* handoff_manager() { return handoff_.get(); }
  traffic::OnOffSource* cross_traffic_source() { return cross_.get(); }
  std::uint64_t background_delivered() const { return background_delivered_; }
  const ScenarioConfig& config() const { return cfg_; }

  net::NodeId fh() const { return fh_; }
  net::NodeId bs() const { return bs_; }
  net::NodeId mh() const { return mh_; }

  /// Probe registry for this run, or nullptr when obs is off.
  obs::Registry* probes() { return probes_.get(); }
  const obs::Registry* probes() const { return probes_.get(); }
  /// Time-series sampler, or nullptr when obs is off.
  const obs::Sampler* sampler() const { return sampler_.get(); }
  /// Packet-lifecycle trace sink, or nullptr when tracing is off.
  obs::TraceSink* trace_sink() { return tsink_.get(); }
  const obs::TraceSink* trace_sink() const { return tsink_.get(); }

 private:
  void build_sampler();
  void dump_flight(const char* reason);
  void on_data_at_bs(net::PacketRef pkt);
  void on_datagram_from_mh(net::PacketRef pkt);
  void on_datagram_at_mh(net::PacketRef pkt);

  ScenarioConfig cfg_;
  sim::Simulator sim_;
  /// Owned probe bus; declared right after sim_ so it outlives every
  /// component holding cached Counter*/Gauge* pointers.
  std::unique_ptr<obs::Registry> probes_;
  std::unique_ptr<obs::Sampler> sampler_;
  /// Owned trace sink; like the probe bus it must outlive every component
  /// holding a cached TraceSink*.
  std::unique_ptr<obs::TraceSink> tsink_;
  bool flight_hook_installed_ = false;
  net::NodeRegistry nodes_;
  net::NodeId fh_;
  net::NodeId bs_;
  net::NodeId mh_;

  std::vector<std::unique_ptr<net::DuplexLink>> wired_links_;
  std::vector<std::unique_ptr<net::CallbackSink>> router_sinks_;
  std::unique_ptr<net::DuplexLink> wireless_;
  std::shared_ptr<phy::ErrorModel> channel_;
  /// Concrete channel for the sampler's state series (null for
  /// trace-driven/absent channels).  Never used to EXTEND the trajectory.
  phy::GilbertElliottModel* ge_channel_ = nullptr;
  phy::DeterministicGilbertElliott* det_channel_ = nullptr;

  std::unique_ptr<tcp::TahoeSender> sender_;
  std::unique_ptr<tcp::TcpSink> sink_;

  std::unique_ptr<net::CallbackSink> bs_wired_sink_;   ///< wired arrivals at BS
  std::unique_ptr<net::CallbackSink> bs_upper_sink_;   ///< reassembled ACKs at BS
  std::unique_ptr<net::CallbackSink> mh_upper_sink_;   ///< reassembled data at MH

  std::unique_ptr<link::WirelessInterface> bs_wifi_;
  std::unique_ptr<link::WirelessInterface> mh_wifi_;

  std::unique_ptr<core::EbsnAgent> ebsn_agent_;
  std::unique_ptr<feedback::SourceQuenchAgent> quench_agent_;
  std::unique_ptr<feedback::SnoopAgent> snoop_agent_;
  std::unique_ptr<mobility::HandoffManager> handoff_;
  std::unique_ptr<traffic::OnOffSource> cross_;
  std::uint64_t background_delivered_ = 0;

  bool ran_ = false;
};

/// Run one configuration end to end (convenience used by benches/tests).
stats::RunMetrics run_scenario(const ScenarioConfig& cfg,
                               stats::ConnectionTrace* sender_trace = nullptr);

}  // namespace wtcp::topo
