// Multi-user wireless LAN scenario (the setting of Bhagwat et al. [9],
// discussed in the paper's Section 2): one fixed host runs K bulk TCP
// connections, one per mobile host; the base station serves all K mobile
// hosts over a single shared radio.  Each user's channel fades
// independently (its own Gilbert-Elliott process), so the base station's
// scheduling policy decides whether a faded user's head-of-line traffic
// blocks everyone (FIFO) or not (round-robin / CSD / DWRR).
//
//          FH ==== wired ==== BS  ~~~radio~~~  MH_0 ... MH_{K-1}
//        K senders          scheduler + per-user ARQ     K sinks
//
// Sized for 10k+ concurrent flows: every per-user subsystem lives in a
// reserve-once FlowSlab arena (one allocation per subsystem, contiguous
// per-flow state, no unique_ptr forest), flows are identified by their
// numeric index everywhere past construction, and the steady-state
// datapath allocates nothing per datagram.  The flat per-flow layout is
// also what a future sharded (PDES) build would partition.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/ebsn.hpp"
#include "src/core/flow_slab.hpp"
#include "src/link/bs_scheduler.hpp"
#include "src/link/wireless_link.hpp"
#include "src/net/link.hpp"
#include "src/net/medium.hpp"
#include "src/phy/gilbert_elliott.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/metrics.hpp"
#include "src/tcp/tahoe_sender.hpp"
#include "src/tcp/tcp_sink.hpp"
#include "src/topo/scenario.hpp"  // FeedbackMode

namespace wtcp::obs {
class Registry;
}

namespace wtcp::topo {

struct MultiUserConfig {
  std::size_t users = 4;

  net::LinkConfig wired;     ///< FH <-> BS
  net::LinkConfig wireless;  ///< template for each BS <-> MH_k link (the
                             ///< shared Medium is installed by the scenario)
  phy::GilbertElliottConfig channel;  ///< per-user independent processes
  bool channel_errors = true;

  tcp::TcpConfig tcp;  ///< per-connection (conn id assigned per user)

  bool local_recovery = true;
  link::ArqConfig arq;
  std::int64_t wireless_mtu_bytes = 1 << 20;  ///< LAN: no fragmentation

  link::BsSchedulerConfig sched;
  FeedbackMode feedback = FeedbackMode::kNone;
  core::EbsnConfig ebsn;

  std::uint64_t seed = 1;
  sim::Time horizon = sim::Time::seconds(36'000);
};

/// Paper-[9]-style defaults: 10 Mbps wired, 2 Mbps shared radio, 4 users,
/// 1 MB per connection, 64 KB windows, good 4 s / bad 0.8 s channels.
MultiUserConfig multi_user_lan_scenario();

struct MultiUserMetrics {
  std::vector<stats::RunMetrics> per_user;
  sim::Time duration;                 ///< start -> last sink completion
  double aggregate_throughput_bps = 0;  ///< sum of delivered wire bytes / duration
  double fairness = 0;                ///< Jain index over per-user goodput bytes
  std::uint64_t completed_users = 0;
  std::uint64_t csd_deferrals = 0;
  std::uint64_t csd_skips = 0;
};

class MultiUserLanScenario {
 public:
  explicit MultiUserLanScenario(MultiUserConfig cfg);

  MultiUserLanScenario(const MultiUserLanScenario&) = delete;
  MultiUserLanScenario& operator=(const MultiUserLanScenario&) = delete;

  /// Publish run aggregates to `reg` when run() finishes (fixed-slot
  /// probes only: scalars plus one histogram over per-flow rates, so a
  /// 10k-flow cell allocates no per-flow probe names).  Optional; null
  /// detaches.  Distinct from Simulator::set_probes, which instruments
  /// the event core.
  void set_probe_registry(obs::Registry* reg) { probes_ = reg; }

  MultiUserMetrics run();

  sim::Simulator& simulator() { return sim_; }
  tcp::TcpSender& sender(std::size_t user) { return senders_[user]; }
  tcp::TcpSink& sink(std::size_t user) { return sinks_[user]; }
  link::BsScheduler& scheduler() { return *sched_; }
  const MultiUserConfig& config() const { return cfg_; }

 private:
  /// One scheduler-released datagram whose fragments are still
  /// unresolved.  Flat table scanned linearly: the global outstanding
  /// limit bounds its size to max_outstanding entries, independent of K.
  struct PendingDatagram {
    std::uint32_t user;
    std::int32_t remaining;
    std::uint64_t datagram_id;
  };

  void on_wired_at_bs(net::PacketRef pkt);
  void on_wired_at_fh(net::PacketRef pkt);
  void release_to_user(std::size_t user, net::PacketRef datagram);
  void resolve_fragment(std::size_t user, std::uint64_t datagram_id);
  MultiUserMetrics collect() const;
  void publish(const MultiUserMetrics& m);

  MultiUserConfig cfg_;
  sim::Simulator sim_;
  std::shared_ptr<net::Medium> medium_;

  std::unique_ptr<net::DuplexLink> wired_;
  std::unique_ptr<net::CallbackSink> fh_sink_;  ///< demux acks/EBSN by conn
  std::unique_ptr<net::CallbackSink> bs_sink_;  ///< data -> scheduler

  std::unique_ptr<link::BsScheduler> sched_;

  // Per-user subsystems, one contiguous reserve-once arena each (indexed
  // by flow id; addresses pinned, so components capture `this` freely).
  core::FlowSlab<net::DuplexLink> radio_links_;
  core::FlowSlab<phy::GilbertElliottModel> channels_;
  core::FlowSlab<link::WirelessInterface> bs_wifis_;
  core::FlowSlab<link::WirelessInterface> mh_wifis_;
  core::FlowSlab<net::CallbackSink> bs_uppers_;
  core::FlowSlab<net::CallbackSink> mh_uppers_;
  core::FlowSlab<tcp::TcpSender> senders_;
  core::FlowSlab<tcp::TcpSink> sinks_;
  core::FlowSlab<core::EbsnAgent> ebsn_agents_;  ///< kEbsn mode only

  std::vector<PendingDatagram> pending_;  ///< <= sched.max_outstanding live

  obs::Registry* probes_ = nullptr;
  std::size_t completed_ = 0;
  bool ran_ = false;
};

/// Jain's fairness index over non-negative allocations.
double jain_fairness(const std::vector<double>& xs);

}  // namespace wtcp::topo
