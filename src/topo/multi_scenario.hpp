// Multi-user wireless LAN scenario (the setting of Bhagwat et al. [9],
// discussed in the paper's Section 2): one fixed host runs K bulk TCP
// connections, one per mobile host; the base station serves all K mobile
// hosts over a single shared radio.  Each user's channel fades
// independently (its own Gilbert-Elliott process), so the base station's
// scheduling policy decides whether a faded user's head-of-line traffic
// blocks everyone (FIFO) or not (round-robin / channel-state-dependent).
//
//          FH ==== wired ==== BS  ~~~radio~~~  MH_0 ... MH_{K-1}
//        K senders          scheduler + per-user ARQ     K sinks
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/ebsn.hpp"
#include "src/link/bs_scheduler.hpp"
#include "src/link/wireless_link.hpp"
#include "src/net/link.hpp"
#include "src/net/medium.hpp"
#include "src/phy/gilbert_elliott.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/metrics.hpp"
#include "src/tcp/tahoe_sender.hpp"
#include "src/tcp/tcp_sink.hpp"
#include "src/topo/scenario.hpp"  // FeedbackMode

namespace wtcp::topo {

struct MultiUserConfig {
  std::size_t users = 4;

  net::LinkConfig wired;     ///< FH <-> BS
  net::LinkConfig wireless;  ///< template for each BS <-> MH_k link (the
                             ///< shared Medium is installed by the scenario)
  phy::GilbertElliottConfig channel;  ///< per-user independent processes
  bool channel_errors = true;

  tcp::TcpConfig tcp;  ///< per-connection (conn id assigned per user)

  bool local_recovery = true;
  link::ArqConfig arq;
  std::int64_t wireless_mtu_bytes = 1 << 20;  ///< LAN: no fragmentation

  link::BsSchedulerConfig sched;
  FeedbackMode feedback = FeedbackMode::kNone;
  core::EbsnConfig ebsn;

  std::uint64_t seed = 1;
  sim::Time horizon = sim::Time::seconds(36'000);
};

/// Paper-[9]-style defaults: 10 Mbps wired, 2 Mbps shared radio, 4 users,
/// 1 MB per connection, 64 KB windows, good 4 s / bad 0.8 s channels.
MultiUserConfig multi_user_lan_scenario();

struct MultiUserMetrics {
  std::vector<stats::RunMetrics> per_user;
  sim::Time duration;                 ///< start -> last sink completion
  double aggregate_throughput_bps = 0;  ///< sum of delivered wire bytes / duration
  double fairness = 0;                ///< Jain index over per-user goodput bytes
  std::uint64_t completed_users = 0;
  std::uint64_t csd_deferrals = 0;
  std::uint64_t csd_skips = 0;
};

class MultiUserLanScenario {
 public:
  explicit MultiUserLanScenario(MultiUserConfig cfg);

  MultiUserLanScenario(const MultiUserLanScenario&) = delete;
  MultiUserLanScenario& operator=(const MultiUserLanScenario&) = delete;

  MultiUserMetrics run();

  sim::Simulator& simulator() { return sim_; }
  tcp::TcpSender& sender(std::size_t user) { return *senders_[user]; }
  tcp::TcpSink& sink(std::size_t user) { return *sinks_[user]; }
  link::BsScheduler& scheduler() { return *sched_; }
  const MultiUserConfig& config() const { return cfg_; }

 private:
  void on_wired_at_bs(net::PacketRef pkt);
  void on_wired_at_fh(net::PacketRef pkt);
  void release_to_user(std::size_t user, net::PacketRef datagram);
  MultiUserMetrics collect() const;

  MultiUserConfig cfg_;
  sim::Simulator sim_;
  std::shared_ptr<net::Medium> medium_;

  std::unique_ptr<net::DuplexLink> wired_;
  std::unique_ptr<net::CallbackSink> fh_sink_;  ///< demux acks/EBSN by conn
  std::unique_ptr<net::CallbackSink> bs_sink_;  ///< data -> scheduler

  std::unique_ptr<link::BsScheduler> sched_;

  // Per-user plumbing.
  std::vector<std::unique_ptr<net::DuplexLink>> radio_links_;
  std::vector<std::shared_ptr<phy::GilbertElliottModel>> channels_;
  std::vector<std::unique_ptr<link::WirelessInterface>> bs_wifis_;
  std::vector<std::unique_ptr<link::WirelessInterface>> mh_wifis_;
  std::vector<std::unique_ptr<net::CallbackSink>> bs_uppers_;
  std::vector<std::unique_ptr<net::CallbackSink>> mh_uppers_;
  std::vector<std::unique_ptr<tcp::TcpSender>> senders_;
  std::vector<std::unique_ptr<tcp::TcpSink>> sinks_;
  std::vector<std::unique_ptr<core::EbsnAgent>> ebsn_agents_;
  /// Per user: datagram id -> fragments still unresolved (scheduler slots).
  std::vector<std::unordered_map<std::uint64_t, std::int32_t>> pending_frags_;

  std::size_t completed_ = 0;
  bool ran_ = false;
};

/// Jain's fairness index over non-negative allocations.
double jain_fairness(const std::vector<double>& xs);

}  // namespace wtcp::topo
