// Minimal streaming JSON writer for the machine-readable exporters.
//
// Emits objects/arrays to an ostream with correct commas, string escaping
// and locale-independent number formatting.  Nothing is buffered; the
// caller is responsible for well-formed nesting (asserts catch misuse in
// debug builds).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace wtcp::obs {

/// JSON-escape `s` (quotes, backslashes, control characters).  Returned
/// string excludes the surrounding quotes.
std::string json_escape(std::string_view s);

/// Inverse of json_escape over the content between the quotes: resolves
/// \" \\ \/ \n \r \t \b \f and \u00XX escapes.  Unicode escapes above
/// 0xFF are not produced by json_escape and are rejected.  Returns false
/// (leaving `out` unspecified) on a malformed escape.
bool json_unescape(std::string_view s, std::string& out);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value or
  /// begin_object/begin_array.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void comma();

  std::ostream& os_;
  /// Per nesting level: has this container already emitted an element?
  std::vector<bool> has_elem_{false};
  bool after_key_ = false;
};

}  // namespace wtcp::obs
