// Exporters: registry event log -> JSONL, counters/gauges -> JSON object.
//
// The per-run manifest itself is assembled by core/experiment (it needs
// scenario metadata the obs layer must not depend on); these helpers
// render the obs-owned pieces.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "src/obs/probe.hpp"

namespace wtcp::obs {

class JsonWriter;

/// One JSON line per event:
///   {"t":12.345678,"component":"tcp","event":"timeout","value":3,"seed":1}
/// The seed field is omitted when `seed` is negative (single-run streams).
void write_events_jsonl(std::ostream& os, const Registry& registry,
                        std::int64_t seed = -1);

/// Emit {"counters":{...},"gauges":{...}} members into an already-open
/// JSON object (the manifest's per-seed report).
void write_probe_snapshot(JsonWriter& w, const Registry& registry);

}  // namespace wtcp::obs
