#include "src/obs/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace wtcp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool json_unescape(std::string_view s, std::string& out) {
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 >= s.size()) return false;
        unsigned v = 0;
        for (int k = 1; k <= 4; ++k) {
          const char h = s[i + static_cast<std::size_t>(k)];
          v <<= 4;
          if (h >= '0' && h <= '9') {
            v |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            v |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            v |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        if (v > 0xFF) return false;  // json_escape never emits these
        out += static_cast<char>(v);
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return true;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value completes a "key":  pair, no comma
  }
  if (has_elem_.back()) os_ << ',';
  has_elem_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << '{';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(has_elem_.size() > 1 && !after_key_);
  has_elem_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  os_ << '[';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(has_elem_.size() > 1 && !after_key_);
  has_elem_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!after_key_);
  comma();
  os_ << '"' << json_escape(k) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  // %.17g round-trips doubles but litters output; %.10g is plenty for
  // simulation quantities and stays locale-independent via snprintf("C").
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
  return *this;
}

}  // namespace wtcp::obs
