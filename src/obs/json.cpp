#include "src/obs/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace wtcp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value completes a "key":  pair, no comma
  }
  if (has_elem_.back()) os_ << ',';
  has_elem_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << '{';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(has_elem_.size() > 1 && !after_key_);
  has_elem_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  os_ << '[';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(has_elem_.size() > 1 && !after_key_);
  has_elem_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!after_key_);
  comma();
  os_ << '"' << json_escape(k) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  // %.17g round-trips doubles but litters output; %.10g is plenty for
  // simulation quantities and stays locale-independent via snprintf("C").
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
  return *this;
}

}  // namespace wtcp::obs
