#include "src/obs/probe.hpp"

namespace wtcp::obs {

Counter* Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return &it->second;
}

Gauge* Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return &it->second;
}

Histogram* Registry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return &it->second;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value;
}

double Registry::gauge_value(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value;
}

void Registry::publish(sim::Time at, const char* component, const char* name,
                       double value) {
  events_.push_back(Event{at, component, name, value});
}

}  // namespace wtcp::obs
