#include "src/obs/sampler.hpp"

#include <cassert>
#include <cstdio>

namespace wtcp::obs {

void TimeSeries::write_csv(std::ostream& os, std::int64_t seed_column,
                           bool header) const {
  if (header) {
    if (seed_column >= 0) os << "seed,";
    os << "time_s";
    for (const std::string& c : columns) os << ',' << c;
    os << '\n';
  }
  char buf[32];
  for (const Row& r : rows) {
    if (seed_column >= 0) os << seed_column << ',';
    std::snprintf(buf, sizeof buf, "%.6f", r.at.to_seconds());
    os << buf;
    for (const double v : r.values) {
      std::snprintf(buf, sizeof buf, "%.10g", v);
      os << ',' << buf;
    }
    os << '\n';
  }
}

Sampler::Sampler(sim::Simulator& sim, sim::Time interval)
    : sim_(sim), interval_(interval) {
  assert(interval_ > sim::Time::zero());
  // A non-positive interval would self-reschedule at the same instant
  // forever (the tick never advances time); clamp rather than hang in
  // release builds.
  if (interval_ <= sim::Time::zero()) interval_ = sim::Time::milliseconds(1);
}

void Sampler::add_series(std::string name, std::function<double()> probe) {
  assert(!running_ && "register all columns before start()");
  assert(probe);
  series_.columns.push_back(std::move(name));
  probes_.push_back(std::move(probe));
}

void Sampler::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void Sampler::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(tick_event_);
  // Flush the final partial interval: a run that ends between ticks would
  // otherwise silently drop everything since the last row (a transfer
  // completing at 1.05 s with a 100 ms interval lost its last 50 ms).
  if (!series_.rows.empty() && sim_.now() > series_.rows.back().at) {
    TimeSeries::Row row;
    row.at = sim_.now();
    row.values.reserve(probes_.size());
    for (const auto& probe : probes_) row.values.push_back(probe());
    series_.rows.push_back(std::move(row));
  }
}

void Sampler::tick() {
  TimeSeries::Row row;
  row.at = sim_.now();
  row.values.reserve(probes_.size());
  for (const auto& probe : probes_) row.values.push_back(probe());
  series_.rows.push_back(std::move(row));
  tick_event_ = sim_.after(interval_, [this] { tick(); }, "obs.sampler");
}

}  // namespace wtcp::obs
