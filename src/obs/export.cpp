#include "src/obs/export.hpp"

#include <cstdio>
#include <ostream>

#include "src/obs/json.hpp"

namespace wtcp::obs {

void write_events_jsonl(std::ostream& os, const Registry& registry,
                        std::int64_t seed) {
  char tbuf[32];
  for (const Event& e : registry.events()) {
    std::snprintf(tbuf, sizeof tbuf, "%.6f", e.at.to_seconds());
    os << "{\"t\":" << tbuf << ",\"component\":\"" << json_escape(e.component)
       << "\",\"event\":\"" << json_escape(e.name) << '"';
    if (e.value != 0.0) {
      char vbuf[32];
      std::snprintf(vbuf, sizeof vbuf, "%.10g", e.value);
      os << ",\"value\":" << vbuf;
    }
    if (seed >= 0) os << ",\"seed\":" << seed;
    os << "}\n";
  }
}

void write_probe_snapshot(JsonWriter& w, const Registry& registry) {
  w.key("counters").begin_object();
  for (const auto& [name, c] : registry.counters()) {
    w.field(name, c.value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : registry.gauges()) {
    w.field(name, g.value);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : registry.histograms()) {
    w.key(name).begin_object();
    w.field("count", static_cast<std::int64_t>(h.count));
    w.field("mean", h.mean());
    w.field("min", h.min);
    w.field("max", h.max);
    w.field("p50", h.quantile(0.50));
    w.field("p95", h.quantile(0.95));
    w.field("p99", h.quantile(0.99));
    w.end_object();
  }
  w.end_object();
}

}  // namespace wtcp::obs
