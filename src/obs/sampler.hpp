// Periodic time-series sampler driven by the simulator's scheduler.
//
// Callers register named probe functions ("cwnd" -> [] { return
// sender.cwnd(); }); the sampler ticks at a fixed interval, evaluates
// every probe, and appends one row to an in-memory TimeSeries.  The first
// row is taken at start() time, so a horizon H with interval dt yields
// floor(H/dt) + 1 rows — plus one final partial-interval row at stop()
// when the run ends between ticks.
//
// The sampler keeps itself alive by rescheduling, so it must only run in
// simulations that stop via Simulator::stop() or a run(horizon) bound —
// exactly how Scenario runs work.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/sim/time.hpp"

namespace wtcp::obs {

/// Column-named table of (time, values...) rows.
struct TimeSeries {
  struct Row {
    sim::Time at;
    std::vector<double> values;
  };

  std::vector<std::string> columns;  ///< excludes the leading time column
  std::vector<Row> rows;

  bool empty() const { return rows.empty(); }
  std::size_t size() const { return rows.size(); }

  /// CSV export.  When `seed_column` is non-negative a leading "seed"
  /// column is emitted (multi-seed aggregation into one file); `header`
  /// controls whether the column row is printed (off when appending).
  void write_csv(std::ostream& os, std::int64_t seed_column = -1,
                 bool header = true) const;
};

class Sampler {
 public:
  Sampler(sim::Simulator& sim, sim::Time interval);

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Register one column.  All columns must be added before start().
  void add_series(std::string name, std::function<double()> probe);

  /// Take the first sample now and begin ticking every interval.
  void start();

  /// Stop ticking (the recorded series stays).  If the run ended part-way
  /// through an interval, one final row is taken at stop() time so the
  /// tail of the run is never silently dropped.
  void stop();

  sim::Time interval() const { return interval_; }
  const TimeSeries& series() const { return series_; }
  std::size_t sample_count() const { return series_.rows.size(); }

 private:
  void tick();

  sim::Simulator& sim_;
  sim::Time interval_;
  std::vector<std::function<double()>> probes_;
  TimeSeries series_;
  sim::EventId tick_event_;
  bool running_ = false;
};

}  // namespace wtcp::obs
