#include "src/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/core/provenance.hpp"
#include "src/obs/json.hpp"

namespace wtcp::obs {

namespace {

/// Site names, indexed by TraceSite value.  Part of the trace format:
/// exporters embed the producing build's table so readers never depend on
/// their own enum ordering.
constexpr const char* kSiteNames[] = {
    "tcp.send",        "tcp.retransmit", "tcp.timeout",    "tcp.fast_rtx",
    "tcp.cwnd",        "tcp.ack_rx",     "tcp.dupack",     "tcp.ebsn_rx",
    "tcp.quench_rx",   "tcp.timer_rearm",
    "ebsn.sent",       "quench.sent",
    "frag.fragment",   "frag.reassembled",
    "queue.enqueue",   "queue.drop",
    "link.tx_start",   "link.tx_end",    "link.corrupt",   "link.deliver",
    "arq.submit",      "arq.attempt",    "arq.backoff",    "arq.discard",
    "arq.delivered",
    "snoop.cache_hit", "snoop.local_rtx",
    "sink.deliver",
};
static_assert(sizeof(kSiteNames) / sizeof(kSiteNames[0]) ==
                  static_cast<std::size_t>(TraceSite::kSiteCount),
              "site name table must cover every TraceSite");

constexpr char kMagic[8] = {'W', 'T', 'C', 'P', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kBinaryVersion = 1;
/// Upper bound on any length field in the binary format; real tables are
/// tiny, so anything larger means a corrupt or foreign file.
constexpr std::uint32_t kMaxStringLen = 1u << 20;

/// git sha with a "-dirty" suffix when the working tree had local edits.
std::string provenance_sha() {
  const core::Provenance& p = core::build_provenance();
  return p.git_dirty ? p.git_sha + "-dirty" : p.git_sha;
}

std::string provenance_flags() {
  const core::Provenance& p = core::build_provenance();
  return p.build_type + " " + p.flags;
}

template <typename T>
void put(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool get(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}

void put_string(std::ostream& os, std::string_view s) {
  put(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool get_string(std::istream& is, std::string* out) {
  std::uint32_t len = 0;
  if (!get(is, &len) || len > kMaxStringLen) return false;
  out->resize(len);
  is.read(out->data(), static_cast<std::streamsize>(len));
  return static_cast<bool>(is);
}

void fail(std::string* error, const char* what) {
  if (error) *error = what;
}

/// Position just past `"key":` in `line`, or npos.
std::size_t after_key(std::string_view line, std::string_view key) {
  std::string pat;
  pat.reserve(key.size() + 3);
  pat += '"';
  pat += key;
  pat += "\":";
  const std::size_t p = line.find(pat);
  return p == std::string_view::npos ? std::string_view::npos
                                     : p + pat.size();
}

bool parse_u64_field(std::string_view line, std::string_view key,
                     std::uint64_t* out) {
  const std::size_t p = after_key(line, key);
  if (p == std::string_view::npos) return false;
  *out = std::strtoull(line.data() + p, nullptr, 10);
  return true;
}

/// Parse a JSON string starting at the opening quote `pos`; sets `end` to
/// the position just past the closing quote.
bool parse_string_at(std::string_view line, std::size_t pos, std::string* out,
                     std::size_t* end) {
  if (pos >= line.size() || line[pos] != '"') return false;
  std::size_t i = pos + 1;
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\') ++i;  // skip the escaped character
    ++i;
  }
  if (i >= line.size()) return false;
  if (!json_unescape(line.substr(pos + 1, i - pos - 1), *out)) return false;
  *end = i + 1;
  return true;
}

/// Parse `["a","b",...]` starting at the '[' found after `key`.
bool parse_string_array(std::string_view line, std::string_view key,
                        std::vector<std::string>* out) {
  std::size_t p = after_key(line, key);
  if (p == std::string_view::npos || p >= line.size() || line[p] != '[')
    return false;
  ++p;
  out->clear();
  if (p < line.size() && line[p] == ']') return true;
  while (p < line.size()) {
    std::string s;
    if (!parse_string_at(line, p, &s, &p)) return false;
    out->push_back(std::move(s));
    if (p >= line.size()) return false;
    if (line[p] == ']') return true;
    if (line[p] != ',') return false;
    ++p;
  }
  return false;
}

bool parse_string_field(std::string_view line, std::string_view key,
                        std::string* out) {
  const std::size_t p = after_key(line, key);
  if (p == std::string_view::npos) return false;
  std::size_t end = 0;
  return parse_string_at(line, p, out, &end);
}

void write_record_line(std::ostream& os, const TraceRecord& r,
                       const TraceFile& f) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"t_ns\":%lld,\"id\":%llu,\"site\":%u,\"a\":%u,"
                "\"label\":%u,\"arg\":%d,\"name\":\"%s\"}\n",
                static_cast<long long>(r.t_ns),
                static_cast<unsigned long long>(r.id),
                static_cast<unsigned>(r.site), static_cast<unsigned>(r.a),
                static_cast<unsigned>(r.label), static_cast<int>(r.arg),
                f.site_name(r.site).c_str());
  os << buf;
}

bool parse_record_line(const std::string& line, TraceRecord* r) {
  long long t = 0;
  unsigned long long id = 0;
  unsigned site = 0, a = 0, label = 0;
  int arg = 0;
  if (std::sscanf(line.c_str(),
                  "{\"t_ns\":%lld,\"id\":%llu,\"site\":%u,\"a\":%u,"
                  "\"label\":%u,\"arg\":%d",
                  &t, &id, &site, &a, &label, &arg) != 6) {
    return false;
  }
  if (site > 0xFF || a > 0xFF || label > 0xFFFF) return false;
  r->t_ns = t;
  r->id = id;
  r->site = static_cast<std::uint8_t>(site);
  r->a = static_cast<std::uint8_t>(a);
  r->label = static_cast<std::uint16_t>(label);
  r->arg = arg;
  return true;
}

void write_header_line(std::ostream& os, const TraceFile& f) {
  JsonWriter w(os);
  w.begin_object();
  w.field("wtcptrace", std::uint64_t{1});
  w.field("seed", f.seed);
  w.field("dropped", f.dropped);
  w.field("records", static_cast<std::uint64_t>(f.records.size()));
  w.key("labels").begin_array();
  for (const std::string& l : f.labels) w.value(l);
  w.end_array();
  w.key("sites").begin_array();
  for (const std::string& s : f.site_names) w.value(s);
  w.end_array();
  w.key("provenance").begin_object();
  w.field("git_sha", f.git_sha);
  w.field("compiler", f.compiler);
  w.field("flags", f.flags);
  w.end_object();
  w.end_object();
  os << "\n";
}

}  // namespace

const char* to_string(TraceSite s) {
  const auto i = static_cast<std::size_t>(s);
  return i < static_cast<std::size_t>(TraceSite::kSiteCount) ? kSiteNames[i]
                                                             : "invalid";
}

TraceSink::TraceSink(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {
  labels_.emplace_back();  // id 0 = "no label"
}

std::uint16_t TraceSink::intern(std::string_view label) {
  if (auto it = label_ids_.find(label); it != label_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint16_t>(labels_.size());
  labels_.emplace_back(label);
  label_ids_.emplace(std::string(label), id);
  return id;
}

std::vector<TraceRecord> TraceSink::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(count_);
  // Oldest record sits at head_ once the ring has wrapped, at 0 before.
  const std::size_t start = count_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceRecord> TraceSink::last(std::size_t n) const {
  std::vector<TraceRecord> all = snapshot();
  if (n < all.size()) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
  return all;
}

void TraceSink::clear() {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

const std::string& TraceFile::label_of(std::uint16_t id) const {
  static const std::string kEmpty;
  return id < labels.size() ? labels[id] : kEmpty;
}

std::string TraceFile::site_name(std::uint8_t site) const {
  if (site < site_names.size()) return site_names[site];
  return "site" + std::to_string(static_cast<unsigned>(site));
}

bool write_trace_file(const std::string& path, const TraceSink& sink,
                      std::string* error) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    fail(error, "cannot open output file");
    return false;
  }
  const std::vector<TraceRecord> records = sink.snapshot();
  os.write(kMagic, sizeof(kMagic));
  put(os, kBinaryVersion);
  put(os, static_cast<std::uint32_t>(sizeof(TraceRecord)));
  put(os, sink.seed());
  put(os, sink.dropped());
  put(os, static_cast<std::uint64_t>(records.size()));
  put(os, static_cast<std::uint16_t>(sink.labels().size()));
  for (const std::string& l : sink.labels()) put_string(os, l);
  put(os, static_cast<std::uint16_t>(TraceSite::kSiteCount));
  for (const char* name : kSiteNames) put_string(os, name);
  put_string(os, provenance_sha());
  put_string(os, core::build_provenance().compiler);
  put_string(os, provenance_flags());
  os.write(reinterpret_cast<const char*>(records.data()),
           static_cast<std::streamsize>(records.size() * sizeof(TraceRecord)));
  if (!os) {
    fail(error, "write failed");
    return false;
  }
  return true;
}

bool read_trace_file(const std::string& path, TraceFile* out,
                     std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    fail(error, "cannot open trace file");
    return false;
  }
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail(error, "bad magic (not a wtcp binary trace)");
    return false;
  }
  std::uint32_t version = 0, rec_size = 0;
  if (!get(is, &version) || version != kBinaryVersion) {
    fail(error, "unsupported trace version");
    return false;
  }
  if (!get(is, &rec_size) || rec_size != sizeof(TraceRecord)) {
    fail(error, "record size mismatch");
    return false;
  }
  std::uint64_t nrecords = 0;
  if (!get(is, &out->seed) || !get(is, &out->dropped) || !get(is, &nrecords)) {
    fail(error, "truncated header");
    return false;
  }
  std::uint16_t nlabels = 0;
  if (!get(is, &nlabels)) {
    fail(error, "truncated label table");
    return false;
  }
  out->labels.resize(nlabels);
  for (std::string& l : out->labels) {
    if (!get_string(is, &l)) {
      fail(error, "truncated label table");
      return false;
    }
  }
  std::uint16_t nsites = 0;
  if (!get(is, &nsites)) {
    fail(error, "truncated site table");
    return false;
  }
  out->site_names.resize(nsites);
  for (std::string& s : out->site_names) {
    if (!get_string(is, &s)) {
      fail(error, "truncated site table");
      return false;
    }
  }
  if (!get_string(is, &out->git_sha) || !get_string(is, &out->compiler) ||
      !get_string(is, &out->flags)) {
    fail(error, "truncated provenance");
    return false;
  }
  if (nrecords > (std::uint64_t{1} << 32)) {
    fail(error, "implausible record count");
    return false;
  }
  out->records.resize(nrecords);
  is.read(reinterpret_cast<char*>(out->records.data()),
          static_cast<std::streamsize>(nrecords * sizeof(TraceRecord)));
  if (!is) {
    fail(error, "truncated records");
    return false;
  }
  return true;
}

void write_trace_jsonl(std::ostream& os, const TraceFile& f) {
  write_header_line(os, f);
  for (const TraceRecord& r : f.records) write_record_line(os, r, f);
}

bool read_trace_jsonl(std::istream& is, TraceFile* out, std::string* error) {
  std::string line;
  if (!std::getline(is, line)) {
    fail(error, "empty input");
    return false;
  }
  std::uint64_t format = 0;
  if (!parse_u64_field(line, "wtcptrace", &format) || format != 1) {
    fail(error, "missing or unsupported wtcptrace header");
    return false;
  }
  if (!parse_u64_field(line, "seed", &out->seed) ||
      !parse_u64_field(line, "dropped", &out->dropped)) {
    fail(error, "header missing seed/dropped");
    return false;
  }
  if (!parse_string_array(line, "labels", &out->labels) ||
      !parse_string_array(line, "sites", &out->site_names)) {
    fail(error, "header missing labels/sites");
    return false;
  }
  // Provenance is optional on read (hand-built fixtures may omit it).
  parse_string_field(line, "git_sha", &out->git_sha);
  parse_string_field(line, "compiler", &out->compiler);
  parse_string_field(line, "flags", &out->flags);
  out->records.clear();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    TraceRecord r{};
    if (!parse_record_line(line, &r)) {
      fail(error, "malformed record line");
      return false;
    }
    out->records.push_back(r);
  }
  return true;
}

void write_chrome_trace(std::ostream& os, const TraceFile& f) {
  // One process per run; one track (tid) per packet uid.  Link occupancy
  // becomes "X" complete events, ARQ recovery and EBSN propagation become
  // async "b"/"e" spans, everything else an instant.  ts/dur are in
  // microseconds (Chrome's unit); %.3f keeps nanosecond precision.
  os << "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  auto emit = [&](const char* s) {
    if (!first) os << ",";
    first = false;
    os << "\n" << s;
  };
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
                "\"args\":{\"name\":\"wtcp seed %llu\"}}",
                static_cast<unsigned long long>(f.seed));
  emit(buf);

  // Pending tx-start per (id, label) for complete events; pending ARQ
  // submit and EBSN send per id for spans.
  std::map<std::pair<std::uint64_t, std::uint16_t>, std::int64_t> tx_start;
  const auto us = [](std::int64_t ns) {
    return static_cast<double>(ns) / 1000.0;
  };
  for (const TraceRecord& r : f.records) {
    const auto site = static_cast<TraceSite>(r.site);
    const std::string name = f.site_name(r.site);
    switch (site) {
      case TraceSite::kLinkTxStart:
        tx_start[{r.id, r.label}] = r.t_ns;
        break;
      case TraceSite::kLinkTxEnd:
      case TraceSite::kLinkCorrupt: {
        const auto it = tx_start.find({r.id, r.label});
        if (it != tx_start.end()) {
          std::snprintf(
              buf, sizeof(buf),
              "{\"ph\":\"X\",\"pid\":1,\"tid\":%llu,\"ts\":%.3f,"
              "\"dur\":%.3f,\"name\":\"tx %s\",\"cat\":\"link\","
              "\"args\":{\"corrupt\":%s}}",
              static_cast<unsigned long long>(r.id), us(it->second),
              us(r.t_ns - it->second), f.label_of(r.label).c_str(),
              site == TraceSite::kLinkCorrupt ? "true" : "false");
          emit(buf);
          tx_start.erase(it);
        }
        break;
      }
      case TraceSite::kArqSubmit:
      case TraceSite::kEbsnSent: {
        const char* cat = site == TraceSite::kArqSubmit ? "arq" : "ebsn";
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"b\",\"pid\":1,\"tid\":%llu,\"ts\":%.3f,"
                      "\"id\":%llu,\"name\":\"%s\",\"cat\":\"%s\"}",
                      static_cast<unsigned long long>(r.id), us(r.t_ns),
                      static_cast<unsigned long long>(r.id), cat, cat);
        emit(buf);
        break;
      }
      case TraceSite::kArqDelivered:
      case TraceSite::kArqDiscard:
      case TraceSite::kTcpEbsnRx: {
        const char* cat = site == TraceSite::kTcpEbsnRx ? "ebsn" : "arq";
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"e\",\"pid\":1,\"tid\":%llu,\"ts\":%.3f,"
                      "\"id\":%llu,\"name\":\"%s\",\"cat\":\"%s\"}",
                      static_cast<unsigned long long>(r.id), us(r.t_ns),
                      static_cast<unsigned long long>(r.id), cat, cat);
        emit(buf);
        break;
      }
      default: {
        const std::string& label = f.label_of(r.label);
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"i\",\"pid\":1,\"tid\":%llu,\"ts\":%.3f,"
                      "\"s\":\"t\",\"name\":\"%s%s%s\","
                      "\"args\":{\"arg\":%d,\"a\":%u}}",
                      static_cast<unsigned long long>(r.id), us(r.t_ns),
                      name.c_str(), label.empty() ? "" : " ",
                      label.c_str(), static_cast<int>(r.arg),
                      static_cast<unsigned>(r.a));
        emit(buf);
        break;
      }
    }
  }
  os << "\n]}\n";
}

bool dump_flight_record(const std::string& path, const TraceSink& sink,
                        std::size_t last_n, std::string_view reason) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  TraceFile f;
  f.seed = sink.seed();
  f.dropped = sink.dropped();
  f.labels = sink.labels();
  f.site_names.assign(std::begin(kSiteNames), std::end(kSiteNames));
  f.git_sha = provenance_sha();
  f.compiler = core::build_provenance().compiler;
  f.flags = provenance_flags();
  f.records = sink.last(last_n);
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("flight_record", std::uint64_t{1});
    w.field("reason", reason);
    w.field("seed", f.seed);
    w.field("held", static_cast<std::uint64_t>(sink.size()));
    w.field("dumped", static_cast<std::uint64_t>(f.records.size()));
    w.end_object();
    os << "\n";
  }
  write_trace_jsonl(os, f);
  return static_cast<bool>(os);
}

}  // namespace wtcp::obs
