// Probe bus: the one place every subsystem publishes its internals to.
//
// Three primitives, all owned by a per-run obs::Registry:
//
//   * Counter — monotonically increasing uint64 ("tcp.timeouts").
//   * Gauge   — last-written double ("channel.bad_time_s").
//   * Event   — a timestamped (component, name, value) record appended to
//               the registry's event log; exported as JSONL.
//
// Zero overhead when off: components look the registry up once (at
// construction, via Simulator::probes()) and cache raw Counter*/Gauge*
// pointers; when no registry is attached the pointers are null and every
// probe call is a single predictable branch.  Probe names use dotted
// lowercase paths, "<subsystem>.<instance?>.<quantity>" — see
// docs/observability.md for the naming scheme.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.hpp"

namespace wtcp::obs {

struct Counter {
  std::uint64_t value = 0;
};

struct Gauge {
  double value = 0.0;
};

/// One discrete occurrence published on the bus.  `component` and `name`
/// are string literals (or otherwise outlive the registry) so the log
/// stays 32 bytes per event.
struct Event {
  sim::Time at;
  const char* component;
  const char* name;
  double value;
};

/// Null-tolerant probe helpers — the idiom at every publish site.
inline void add(Counter* c, std::uint64_t n = 1) {
  if (c) c->value += n;
}
inline void set(Gauge* g, double v) {
  if (g) g->value = v;
}

/// Per-run registry of named probes plus the event log.  Single-threaded,
/// like everything else in a run.  Lives at least as long as the
/// Simulator it is attached to.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create.  Returned pointers are stable for the registry's
  /// lifetime (node-based storage).
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);

  /// Value lookups for consumers (exporters, tests).  Missing names read
  /// as zero so reports never have to special-case unwired probes.
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

  /// Append one event to the log.  `component`/`name` must outlive the
  /// registry (string literals in practice).
  void publish(sim::Time at, const char* component, const char* name,
               double value = 0.0);

  const std::vector<Event>& events() const { return events_; }
  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }

  void clear_events() { events_.clear(); }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::vector<Event> events_;
};

}  // namespace wtcp::obs
