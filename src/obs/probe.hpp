// Probe bus: the one place every subsystem publishes its internals to.
//
// Three primitives, all owned by a per-run obs::Registry:
//
//   * Counter   — monotonically increasing uint64 ("tcp.timeouts").
//   * Gauge     — last-written double ("channel.bad_time_s").
//   * Event     — a timestamped (component, name, value) record appended
//                 to the registry's event log; exported as JSONL.
//   * Histogram — log-bucketed value distribution ("tcp.e2e_delay_s"):
//                 p50/p95/p99 of per-packet latencies, ARQ recovery time,
//                 EBSN re-arm lead time.  Fixed bucket layout, so
//                 histograms from different seeds merge by adding counts.
//
// Zero overhead when off: components look the registry up once (at
// construction, via Simulator::probes()) and cache raw Counter*/Gauge*
// pointers; when no registry is attached the pointers are null and every
// probe call is a single predictable branch.  Probe names use dotted
// lowercase paths, "<subsystem>.<instance?>.<quantity>" — see
// docs/observability.md for the naming scheme.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.hpp"

namespace wtcp::obs {

struct Counter {
  std::uint64_t value = 0;
};

struct Gauge {
  double value = 0.0;
};

/// Log-bucketed histogram: 256 fixed buckets, four per octave
/// (quarter-log2 resolution, ~19% relative width), covering
/// [2^-31.75, 2^32) with bucket 0 catching zero/negative/underflow.
/// The layout is position-independent, so histograms recorded by
/// different seeds merge by adding counts — the aggregate p50/p95/p99
/// in a manifest is exact over the union of samples (to bucket
/// resolution).  A plain copyable struct (~2 KB) so reports can hold it
/// by value and checkpoints can round-trip it.
struct Histogram {
  static constexpr int kBuckets = 256;
  /// Bucket index of values in [1, 2^0.25).
  static constexpr int kOffset = 128;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< smallest recorded value (0 until first record)
  double max = 0.0;  ///< largest recorded value
  std::uint64_t buckets[kBuckets] = {};

  /// Hot path: frexp plus three mantissa compares — no log() call.
  void record(double v) {
    if (count == 0) {
      min = max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    ++count;
    sum += v;
    ++buckets[bucket_of(v)];
  }

  /// Bucket index for `v`; clamped, so every double lands somewhere.
  static int bucket_of(double v) {
    if (!(v > 0.0)) return 0;  // zero, negative, NaN
    int e = 0;
    const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
    // floor(4 * (log2(m) + 1)) via compares against 2^-0.75, 2^-0.5,
    // 2^-0.25 — the quarter-octave boundaries.
    int sub = 3;
    if (m < 0.594603557501360533) {
      sub = 0;
    } else if (m < 0.707106781186547524) {
      sub = 1;
    } else if (m < 0.840896415253714543) {
      sub = 2;
    }
    const int b = kOffset + 4 * (e - 1) + sub;
    if (b < 1) return 0;
    if (b >= kBuckets) return kBuckets - 1;
    return b;
  }

  /// Lower edge of bucket `b` (0 for the underflow bucket).
  static double bucket_floor(int b) {
    if (b <= 0) return 0.0;
    return std::exp2(0.25 * static_cast<double>(b - kOffset));
  }

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Approximate quantile (geometric midpoint of the bucket holding the
  /// rank, clamped to the observed [min, max]).
  double quantile(double q) const {
    if (count == 0) return 0.0;
    if (q <= 0.0) return min;
    if (q >= 1.0) return max;
    const double rank = q * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cum += buckets[b];
      if (static_cast<double>(cum) >= rank) {
        if (b == 0) return min;
        // Geometric midpoint: floor * 2^(1/8).
        const double v = bucket_floor(b) * 1.0905077326652577;
        if (v < min) return min;
        if (v > max) return max;
        return v;
      }
    }
    return max;
  }

  /// Fold another histogram in (same fixed layout — add everything).
  void merge(const Histogram& o) {
    if (o.count == 0) return;
    if (count == 0) {
      min = o.min;
      max = o.max;
    } else {
      if (o.min < min) min = o.min;
      if (o.max > max) max = o.max;
    }
    count += o.count;
    sum += o.sum;
    for (int b = 0; b < kBuckets; ++b) buckets[b] += o.buckets[b];
  }
};

/// One discrete occurrence published on the bus.  `component` and `name`
/// are string literals (or otherwise outlive the registry) so the log
/// stays 32 bytes per event.
struct Event {
  sim::Time at;
  const char* component;
  const char* name;
  double value;
};

/// Null-tolerant probe helpers — the idiom at every publish site.
inline void add(Counter* c, std::uint64_t n = 1) {
  if (c) c->value += n;
}
inline void set(Gauge* g, double v) {
  if (g) g->value = v;
}
inline void record(Histogram* h, double v) {
  if (h) h->record(v);
}

/// Per-run registry of named probes plus the event log.  Single-threaded,
/// like everything else in a run.  Lives at least as long as the
/// Simulator it is attached to.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create.  Returned pointers are stable for the registry's
  /// lifetime (node-based storage).
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Value lookups for consumers (exporters, tests).  Missing names read
  /// as zero so reports never have to special-case unwired probes.
  std::uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

  /// Append one event to the log.  `component`/`name` must outlive the
  /// registry (string literals in practice).
  void publish(sim::Time at, const char* component, const char* name,
               double value = 0.0);

  const std::vector<Event>& events() const { return events_; }
  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  void clear_events() { events_.clear(); }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::vector<Event> events_;
};

}  // namespace wtcp::obs
