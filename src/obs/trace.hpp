// Packet-lifecycle tracing: a causal event journal for the datapath.
//
// Every PacketRef carries a monotone uid assigned at pool allocation;
// instrumented sites along the datapath (TCP send, fragmenter fan-out,
// queue enqueue/drop, link tx start/complete, ARQ attempt/backoff/discard,
// EBSN emission and source timer re-arm, snoop cache hits, delivery) emit
// one compact fixed-width record each into a per-run ring buffer.  The
// journal answers the paper's causal questions per packet — which source
// timeouts fired during link-level recovery, which losses were wireless
// vs. congestion — where counters and 100 ms samples only show aggregates.
//
// Cost model, mirroring the probe bus and WTCP_AUDIT:
//
//   * Compiled OFF (-DWTCP_TRACE=OFF): every WTCP_TRACE_EMIT site is
//     ((void)0); the TraceSink type itself stays compiled so exporters
//     and the wtcptrace CLI still build.
//   * Compiled ON, no sink attached (the default): each site is a single
//     null-pointer branch.  Trace records never feed back into protocol
//     logic, so goldens are byte-identical either way.
//   * Sink attached: one 24-byte store into pre-reserved ring storage.
//     No heap allocation on the hot path; label interning allocates only
//     at component construction.
//
// The ring overwrites oldest records and counts what it dropped, which is
// exactly the flight-recorder shape: when a watchdog kills a run, a seed
// throws, or a WTCP_AUDIT invariant fires, the last N records are dumped
// for post-mortem (topo::Scenario owns the triggers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.hpp"

namespace wtcp::obs {

/// Where in the datapath a record was emitted.  Order is part of the
/// binary trace format; append new sites before kSiteCount only.
enum class TraceSite : std::uint8_t {
  // TCP source (src/tcp/tahoe_sender.cpp).
  kTcpSend = 0,    ///< first transmission; id=pkt, arg=seq
  kTcpRetransmit,  ///< retransmission (timeout/fast/SACK); id=pkt, arg=seq
  kTcpTimeout,     ///< rtx timer fired; arg=snd_una
  kTcpFastRtx,     ///< dupack threshold crossed; arg=seq
  kTcpCwnd,        ///< cwnd changed; arg=round(cwnd*1000)
  kTcpAckRx,       ///< new ACK processed; id=ack pkt, arg=ack
  kTcpDupAck,      ///< duplicate ACK; id=ack pkt, arg=ack
  kTcpEbsnRx,      ///< EBSN arrived at source; id=pkt, arg=snd_una
  kTcpQuenchRx,    ///< source quench arrived; id=pkt, arg=snd_una
  kTcpTimerRearm,  ///< rtx timer re-armed by EBSN; arg=new deadline delta, us
  // Feedback agents at the base station.
  kEbsnSent,    ///< EBSN emitted toward source; id=ebsn pkt, arg=tcp seq
  kQuenchSent,  ///< source quench emitted; id=quench pkt, arg=tcp seq
  // Fragmentation boundary (src/link).
  kFragment,     ///< fragment created; id=frag, a=index, arg=datagram uid
  kReassembled,  ///< datagram reassembled; id=datagram
  // Queues and links (src/net/link.cpp); label = "<link>.<endpoint>",
  // a = 1 on the wireless hop (link has an error model).
  kQueueEnqueue,  ///< accepted into the tx queue; arg=depth after
  kQueueDrop,     ///< tail drop; arg=depth at drop
  kLinkTxStart,   ///< serialization onto the wire began; arg=wire bytes
  kLinkTxEnd,     ///< serialization finished, frame intact
  kLinkCorrupt,   ///< frame lost to the error model at tx end
  kLinkDeliver,   ///< frame handed to the far endpoint after propagation
  // Link-level ARQ (src/link/link_arq.cpp).
  kArqSubmit,     ///< frame entered the ARQ sender; arg=link_seq
  kArqAttempt,    ///< (re)transmission attempt; a=attempt #, arg=link_seq
  kArqBackoff,    ///< ACK timeout, backoff armed; a=attempts, arg=link_seq
  kArqDiscard,    ///< RTmax exhausted, frame dropped; a=attempts
  kArqDelivered,  ///< link ACK received; arg=link_seq
  // Snoop agent (src/feedback/snoop_agent.cpp).
  kSnoopCacheHit,  ///< data segment cached at BS; arg=seq
  kSnoopLocalRtx,  ///< local retransmission from the cache; arg=seq
  // Delivery (src/tcp/tcp_sink.cpp).
  kSinkDeliver,  ///< in-order payload delivered to the application; arg=seq

  kSiteCount,  ///< sentinel, not a site
};

const char* to_string(TraceSite s);

/// One journal entry: 24 bytes, fixed width, host byte order.
///   t_ns   simulation time (sim::Time::ns())
///   id     packet uid (0 when no packet is involved, e.g. kTcpTimeout)
///   site   TraceSite
///   a      small per-site argument (attempt #, fragment index,
///          wireless flag on link/queue sites)
///   label  interned label id (link direction), 0 = none
///   arg    per-site argument (seq, queue depth, parent datagram uid)
struct TraceRecord {
  std::int64_t t_ns;
  std::uint64_t id;
  std::uint8_t site;
  std::uint8_t a;
  std::uint16_t label;
  std::int32_t arg;
};
static_assert(sizeof(TraceRecord) == 24, "trace records are 24-byte spans");

/// Per-run ring buffer of trace records.  Single-threaded, like the run
/// that feeds it; owned by topo::Scenario and attached to the Simulator
/// next to the probe Registry.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Hot path: one store into pre-reserved storage, overwrite-oldest.
  void emit(sim::Time t, std::uint64_t id, TraceSite site, std::uint8_t a = 0,
            std::uint16_t label = 0, std::int32_t arg = 0) {
    TraceRecord& r = ring_[head_];
    r.t_ns = t.ns();
    r.id = id;
    r.site = static_cast<std::uint8_t>(site);
    r.a = a;
    r.label = label;
    r.arg = arg;
    if (++head_ == ring_.size()) head_ = 0;
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++dropped_;
    }
  }

  /// Find-or-create a label id for `label` ("<link>.<endpoint>").  Called
  /// at component construction only — this is the one place the sink
  /// allocates.  Id 0 is reserved for "no label".
  std::uint16_t intern(std::string_view label);

  /// Label table, index = label id (labels()[0] == "").
  const std::vector<std::string>& labels() const { return labels_; }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return count_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total() const { return dropped_ + count_; }

  void set_seed(std::uint64_t seed) { seed_ = seed; }
  std::uint64_t seed() const { return seed_; }

  /// Held records in chronological (emission) order.
  std::vector<TraceRecord> snapshot() const;
  /// The newest min(n, size()) records, chronological.
  std::vector<TraceRecord> last(std::size_t n) const;

  /// Drop all held records (label table and seed survive).
  void clear();

 private:
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;   ///< next write position
  std::size_t count_ = 0;  ///< records currently held (<= capacity)
  std::uint64_t dropped_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::string> labels_;
  std::map<std::string, std::uint16_t, std::less<>> label_ids_;
};

// Emission macros, following the WTCP_AUDIT pattern: sites compile to
// ((void)0) when tracing is off, and to a single null-pointer branch when
// on with no sink attached.
#if defined(WTCP_TRACE) && WTCP_TRACE
#define WTCP_TRACE_EMIT(sink, ...) \
  do {                             \
    if (sink) (sink)->emit(__VA_ARGS__); \
  } while (0)
#define WTCP_TRACE_ONLY(...) __VA_ARGS__
#else
#define WTCP_TRACE_EMIT(sink, ...) ((void)0)
#define WTCP_TRACE_ONLY(...)
#endif  // WTCP_TRACE

/// A trace loaded from disk (binary or JSONL): everything needed to
/// interpret the records without the producing binary.
struct TraceFile {
  std::uint64_t seed = 0;
  std::uint64_t dropped = 0;
  std::vector<std::string> labels;      ///< index = label id
  std::vector<std::string> site_names;  ///< index = site enum value
  std::string git_sha;
  std::string compiler;
  std::string flags;
  std::vector<TraceRecord> records;

  const std::string& label_of(std::uint16_t id) const;
  std::string site_name(std::uint8_t site) const;
};

/// Binary trace format: "WTCPTRC1" magic, record size, seed, dropped
/// count, label and site-name tables, provenance strings, then raw
/// records.  Same-machine format (host byte order), lossless.
bool write_trace_file(const std::string& path, const TraceSink& sink,
                      std::string* error = nullptr);
bool read_trace_file(const std::string& path, TraceFile* out,
                     std::string* error);

/// Lossless JSONL: one header object, then one object per record with a
/// fixed key order.  read_trace_jsonl(write_trace_jsonl(f)) == f.
void write_trace_jsonl(std::ostream& os, const TraceFile& f);
bool read_trace_jsonl(std::istream& is, TraceFile* out, std::string* error);

/// Chrome tracing / Perfetto JSON: per-packet tracks (tid = packet uid),
/// complete events for link occupancy, async spans for ARQ recovery
/// episodes, instants for everything else.
void write_chrome_trace(std::ostream& os, const TraceFile& f);

/// Flight-recorder dump: the newest `last_n` records as JSONL, prefixed
/// by a header line carrying `reason`.  Returns false on I/O failure.
bool dump_flight_record(const std::string& path, const TraceSink& sink,
                        std::size_t last_n, std::string_view reason);

}  // namespace wtcp::obs
