// Handoff modelling.
//
// The paper explicitly excludes handoffs ("In a separate study [17] we
// have proposed schemes to improve the performance of TCP in the presence
// of handoffs"); this module implements that companion setting so the
// library covers it: while the mobile host re-registers with a new base
// station, the wireless link is a total blackout for `latency`, and
// everything on the air is lost.
//
// Mitigations implemented:
//   * Caceres & Iftode [4]: on handoff completion the mobile host forces
//     duplicate ACKs so the source fast-retransmits immediately instead
//     of waiting out a (backed-off) retransmission timeout.
//   * EBSN: the base station's local-recovery failures during the
//     blackout keep notifying the source, so its timer never fires — the
//     [17]-style behaviour, for free.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/obs/probe.hpp"
#include "src/phy/error_model.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::mobility {

struct HandoffConfig {
  bool enabled = false;
  /// Mean time between handoffs (start to start).
  sim::Time mean_interval = sim::Time::seconds(20);
  /// Blackout duration per handoff (registration with the new BS).
  sim::Time latency = sim::Time::milliseconds(500);
  /// Deterministic: handoffs exactly every mean_interval.  Stochastic:
  /// exponential inter-handoff times.
  bool deterministic = false;
  /// Mobile host forces dupack_threshold duplicate ACKs when the handoff
  /// completes (Caceres & Iftode fast-retransmit scheme [4]).
  bool fast_retransmit_on_resume = false;
  /// First handoff no earlier than this (lets slow start establish).
  sim::Time first_after = sim::Time::seconds(5);
};

struct HandoffStats {
  std::uint64_t handoffs = 0;
  /// Total wireless blackout actually experienced so far.  Accrued when a
  /// handoff COMPLETES — and pro-rated for an in-progress handoff when
  /// queried mid-blackout — so a run that ends inside a handoff counts
  /// only the elapsed part, not the full configured latency.
  sim::Time blackout_time;
};

/// Drives the handoff schedule on the simulator and exposes the blackout
/// as an ErrorModel to stack (via CompositeErrorModel) on the channel.
class HandoffManager {
 public:
  HandoffManager(sim::Simulator& sim, HandoffConfig cfg);

  /// The blackout channel impairment (share between both link directions).
  std::shared_ptr<phy::ErrorModel> blackout_model() const { return model_; }

  /// Fired when a handoff begins / completes.
  std::function<void()> on_handoff_start;
  std::function<void()> on_handoff_complete;

  bool in_handoff() const { return in_handoff_; }
  /// Snapshot at the simulator's current time (pro-rates an in-progress
  /// blackout, see HandoffStats::blackout_time).
  HandoffStats stats() const;
  const HandoffConfig& config() const { return cfg_; }

 private:
  // Blackout windows are appended as the schedule unfolds; the model
  // checks overlap against them.
  class BlackoutModel final : public phy::ErrorModel {
   public:
    void add_window(sim::Time begin, sim::Time end) {
      windows_.push_back({begin, end});
    }

   protected:
    bool corrupts_impl(sim::Time start, sim::Time end, std::int64_t) override {
      // Handoffs are rare (one per tens of seconds); a linear scan is fine.
      for (const Window& w : windows_) {
        if (start < w.end && end > w.begin) return true;
        if (start == end && start >= w.begin && start < w.end) return true;
      }
      return false;
    }

   private:
    struct Window {
      sim::Time begin;
      sim::Time end;
    };
    std::vector<Window> windows_;
  };

  void schedule_next(sim::Time from);
  void begin_handoff();
  void end_handoff();

  sim::Simulator& sim_;
  HandoffConfig cfg_;
  sim::Rng rng_;
  std::shared_ptr<BlackoutModel> model_;
  bool in_handoff_ = false;
  sim::Time handoff_began_;  ///< start of the in-progress handoff
  HandoffStats stats_;

  // Probe bus (null when observability is off).
  obs::Registry* bus_ = nullptr;
  obs::Counter* begun_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Gauge* blackout_s_ = nullptr;
};

}  // namespace wtcp::mobility
