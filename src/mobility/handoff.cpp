#include "src/mobility/handoff.hpp"

#include <cassert>

#include "src/sim/logging.hpp"

namespace wtcp::mobility {

HandoffManager::HandoffManager(sim::Simulator& sim, HandoffConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      rng_(sim.fork_rng("handoff")),
      model_(std::make_shared<BlackoutModel>()) {
  assert(cfg_.mean_interval > sim::Time::zero());
  assert(cfg_.latency > sim::Time::zero());
  if (cfg_.enabled) {
    schedule_next(std::max(cfg_.first_after, sim_.now()));
  }
}

void HandoffManager::schedule_next(sim::Time from) {
  const sim::Time gap =
      cfg_.deterministic
          ? cfg_.mean_interval
          : sim::Time::from_seconds(rng_.exponential(cfg_.mean_interval.to_seconds()));
  sim_.at(from + gap, [this] { begin_handoff(); }, "handoff");
}

void HandoffManager::begin_handoff() {
  assert(!in_handoff_);
  in_handoff_ = true;
  ++stats_.handoffs;
  stats_.blackout_time += cfg_.latency;
  model_->add_window(sim_.now(), sim_.now() + cfg_.latency);
  WTCP_LOG(kInfo, sim_.now(), "handoff", "begin (blackout %.3fs)",
           cfg_.latency.to_seconds());
  if (on_handoff_start) on_handoff_start();
  sim_.after(cfg_.latency, [this] { end_handoff(); }, "handoff");
}

void HandoffManager::end_handoff() {
  in_handoff_ = false;
  WTCP_LOG(kInfo, sim_.now(), "handoff", "complete");
  if (on_handoff_complete) on_handoff_complete();
  schedule_next(sim_.now());
}

}  // namespace wtcp::mobility
