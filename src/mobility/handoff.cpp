#include "src/mobility/handoff.hpp"

#include <cassert>

#include "src/sim/logging.hpp"

namespace wtcp::mobility {

HandoffManager::HandoffManager(sim::Simulator& sim, HandoffConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      rng_(sim.fork_rng("handoff")),
      model_(std::make_shared<BlackoutModel>()) {
  assert(cfg_.mean_interval > sim::Time::zero());
  assert(cfg_.latency > sim::Time::zero());
  if ((bus_ = sim_.probes())) {
    begun_ = bus_->counter("handoff.begun");
    completed_ = bus_->counter("handoff.completed");
    blackout_s_ = bus_->gauge("handoff.blackout_s");
  }
  if (cfg_.enabled) {
    schedule_next(std::max(cfg_.first_after, sim_.now()));
  }
}

HandoffStats HandoffManager::stats() const {
  HandoffStats s = stats_;
  if (in_handoff_) {
    // The run is being observed mid-blackout: count only the part of the
    // window that has actually elapsed.  (The old code charged the full
    // cfg latency up front in begin_handoff(), overcounting blackout for
    // any run that ended inside a handoff.)
    s.blackout_time += sim_.now() - handoff_began_;
  }
  return s;
}

void HandoffManager::schedule_next(sim::Time from) {
  const sim::Time gap =
      cfg_.deterministic
          ? cfg_.mean_interval
          : sim::Time::from_seconds(rng_.exponential(cfg_.mean_interval.to_seconds()));
  sim_.at(from + gap, [this] { begin_handoff(); }, "handoff");
}

void HandoffManager::begin_handoff() {
  assert(!in_handoff_);
  in_handoff_ = true;
  handoff_began_ = sim_.now();
  ++stats_.handoffs;
  model_->add_window(sim_.now(), sim_.now() + cfg_.latency);
  WTCP_LOG(kInfo, sim_.now(), "handoff", "begin (blackout %.3fs)",
           cfg_.latency.to_seconds());
  obs::add(begun_);
  if (bus_) bus_->publish(sim_.now(), "handoff", "begin");
  if (on_handoff_start) on_handoff_start();
  sim_.after(cfg_.latency, [this] { end_handoff(); }, "handoff");
}

void HandoffManager::end_handoff() {
  in_handoff_ = false;
  // Blackout accrues on completion (stats() pro-rates mid-handoff reads),
  // so a run ending inside a handoff never overcounts.
  stats_.blackout_time += sim_.now() - handoff_began_;
  WTCP_LOG(kInfo, sim_.now(), "handoff", "complete");
  obs::add(completed_);
  obs::set(blackout_s_, stats_.blackout_time.to_seconds());
  if (bus_) bus_->publish(sim_.now(), "handoff", "complete");
  if (on_handoff_complete) on_handoff_complete();
  schedule_next(sim_.now());
}

}  // namespace wtcp::mobility
