#include "src/feedback/source_quench.hpp"

#include <cassert>
#include <utility>

#include "src/obs/trace.hpp"

namespace wtcp::feedback {

SourceQuenchAgent::SourceQuenchAgent(sim::Simulator& sim, SourceQuenchConfig cfg,
                                     net::NodeId bs, net::NodeId source,
                                     tcp::PacketForwarder to_source)
    : sim_(sim), cfg_(cfg), bs_(bs), source_(source), to_source_(std::move(to_source)) {
  assert(to_source_);
  if ((bus_ = sim_.probes())) {
    probe_sent_ = bus_->counter("quench.sent");
    probe_suppressed_ = bus_->counter("quench.suppressed");
  }
  tsink_ = sim_.trace();
}

void SourceQuenchAgent::attach(link::ArqSender& arq) {
  arq.on_attempt_failed = [this](const net::Packet& frame, std::int32_t) {
    notify(frame);
  };
}

void SourceQuenchAgent::notify(const net::Packet& failed_frame) {
  if (cfg_.data_only) {
    const bool is_data =
        failed_frame.encapsulated
            ? failed_frame.encapsulated->type == net::PacketType::kTcpData
            : failed_frame.type == net::PacketType::kTcpData;
    if (!is_data) {
      ++stats_.suppressed;
      obs::add(probe_suppressed_);
      return;
    }
  }
  if (!cfg_.min_interval.is_zero() && last_sent_ >= sim::Time::zero() &&
      sim_.now() - last_sent_ < cfg_.min_interval) {
    ++stats_.suppressed;
    obs::add(probe_suppressed_);
    return;
  }
  last_sent_ = sim_.now();
  ++stats_.quenches_sent;
  obs::add(probe_sent_);
  if (bus_) bus_->publish(sim_.now(), "quench", "sent");
  net::PacketRef quench =
      net::make_control(sim_.packet_pool(), net::PacketType::kSourceQuench,
                        cfg_.message_bytes, bs_, source_, sim_.now());
  if (failed_frame.encapsulated && failed_frame.encapsulated->tcp) {
    quench->tcp = net::TcpHeader{.conn = failed_frame.encapsulated->tcp->conn};
  }
  WTCP_TRACE_EMIT(tsink_, sim_.now(), quench->uid,
                  obs::TraceSite::kQuenchSent, 0, 0,
                  failed_frame.encapsulated && failed_frame.encapsulated->tcp
                      ? static_cast<std::int32_t>(
                            failed_frame.encapsulated->tcp->seq)
                      : -1);
  to_source_(std::move(quench));
}

}  // namespace wtcp::feedback
