// ICMP Source Quench feedback (paper Section 4.2.2, "Can ECN work for
// us?").  The base station, acting as a gateway, sends a source quench
// when the wireless link misbehaves (we trigger, like EBSN, on failed
// local-recovery attempts — the "anticipatory" variant the paper
// describes).  The TCP source collapses cwnd to one segment.
//
// The paper's negative result — reproduced by bench/abl_source_quench —
// is that quenching stems NEW packets but cannot prevent timeouts of
// packets already in flight, so performance barely improves.
#pragma once

#include <cstdint>

#include "src/link/link_arq.hpp"
#include "src/net/packet.hpp"
#include "src/obs/probe.hpp"
#include "src/sim/simulator.hpp"
#include "src/tcp/tahoe_sender.hpp"  // PacketForwarder

namespace wtcp::feedback {

struct SourceQuenchConfig {
  std::int64_t message_bytes = 40;
  /// Minimum spacing between quenches; classic gateways rate-limit ICMP.
  sim::Time min_interval = sim::Time::milliseconds(500);
  bool data_only = true;
};

struct SourceQuenchStats {
  std::uint64_t quenches_sent = 0;
  std::uint64_t suppressed = 0;
};

class SourceQuenchAgent {
 public:
  SourceQuenchAgent(sim::Simulator& sim, SourceQuenchConfig cfg, net::NodeId bs,
                    net::NodeId source, tcp::PacketForwarder to_source);

  /// Hook into the local-recovery ARQ sender (same slot EBSN would use).
  void attach(link::ArqSender& arq);

  void notify(const net::Packet& failed_frame);

  const SourceQuenchStats& stats() const { return stats_; }

 private:
  sim::Simulator& sim_;
  SourceQuenchConfig cfg_;
  net::NodeId bs_;
  net::NodeId source_;
  tcp::PacketForwarder to_source_;
  sim::Time last_sent_ = sim::Time::nanoseconds(-1);
  SourceQuenchStats stats_;
  obs::Registry* bus_ = nullptr;
  obs::Counter* probe_sent_ = nullptr;
  obs::Counter* probe_suppressed_ = nullptr;
  obs::TraceSink* tsink_ = nullptr;
};

}  // namespace wtcp::feedback
