// Snoop agent (Balakrishnan et al. [11]) — a TCP-aware caching agent at
// the base station, implemented as an extra baseline for the ablation
// benches.  It caches data packets heading to the mobile host, performs
// local retransmissions triggered by duplicate ACKs or a local timer, and
// suppresses the duplicate ACKs so the fixed host never sees them.
//
// As the paper notes, snoop keeps per-connection state at the base station
// and the source can still time out while snoop is retransmitting —
// exactly what EBSN avoids.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/net/packet.hpp"
#include "src/obs/probe.hpp"
#include "src/sim/simulator.hpp"
#include "src/tcp/tahoe_sender.hpp"  // PacketForwarder

namespace wtcp::feedback {

struct SnoopConfig {
  std::size_t cache_packets = 512;  ///< per-connection cache bound
  /// Local retransmission fires on this many duplicate ACKs (snoop uses 1:
  /// the first dupack signals a wireless loss).
  std::int32_t dupack_threshold = 1;
  sim::Time min_local_rto = sim::Time::milliseconds(50);
  sim::Time max_local_rto = sim::Time::seconds(2);
  std::int32_t max_local_retransmits = 10;
};

struct SnoopStats {
  std::uint64_t data_cached = 0;
  std::uint64_t local_retransmits = 0;
  std::uint64_t dupacks_suppressed = 0;
  std::uint64_t acks_forwarded = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t local_timeouts = 0;
};

class SnoopAgent {
 public:
  SnoopAgent(sim::Simulator& sim, SnoopConfig cfg, std::string name);

  /// Transmit path toward the mobile host (the BS wireless interface).
  void set_wireless_tx(tcp::PacketForwarder tx) { wireless_tx_ = std::move(tx); }

  /// A data packet from the fixed host is passing through: cache a share
  /// of it.  The caller still forwards the packet to the wireless
  /// interface (packets are immutable in flight, so cache and forward
  /// reference the same slot).
  void on_data_from_wired(const net::PacketRef& pkt);

  /// An ACK from the mobile host is passing through.  Returns true if the
  /// ACK should be forwarded to the fixed host, false if snoop suppressed
  /// it (duplicate ACK for a packet snoop is locally retransmitting).
  bool on_ack_from_wireless(const net::Packet& ack);

  const SnoopStats& stats() const { return stats_; }
  std::size_t cache_size() const { return cache_.size(); }

 private:
  void local_retransmit(std::int64_t seq);
  void arm_timer();
  void on_local_timeout();
  sim::Time local_rto() const;

  sim::Simulator& sim_;
  SnoopConfig cfg_;
  std::string name_;
  tcp::PacketForwarder wireless_tx_;

  struct CacheEntry {
    net::PacketRef pkt;
    sim::Time cached_at;
    std::int32_t local_rtx = 0;
  };
  std::map<std::int64_t, CacheEntry> cache_;  ///< seq -> entry (ordered)
  std::int64_t last_ack_ = -1;
  std::int32_t dupacks_ = 0;
  // Smoothed wireless RTT estimate for the local timer.
  double srtt_s_ = 0.0;
  bool have_rtt_ = false;
  sim::EventId timer_;
  SnoopStats stats_;
  obs::Registry* bus_ = nullptr;
  obs::Counter* probe_local_rtx_ = nullptr;
  obs::Counter* probe_dupacks_suppressed_ = nullptr;
  obs::Counter* probe_local_timeouts_ = nullptr;
  obs::TraceSink* tsink_ = nullptr;
};

}  // namespace wtcp::feedback
