#include "src/feedback/snoop_agent.hpp"

#include <algorithm>
#include <cassert>

#include "src/obs/trace.hpp"
#include "src/sim/logging.hpp"

namespace wtcp::feedback {

SnoopAgent::SnoopAgent(sim::Simulator& sim, SnoopConfig cfg, std::string name)
    : sim_(sim), cfg_(cfg), name_(std::move(name)) {
  if ((bus_ = sim_.probes())) {
    probe_local_rtx_ = bus_->counter("snoop.local_retransmits");
    probe_dupacks_suppressed_ = bus_->counter("snoop.dupacks_suppressed");
    probe_local_timeouts_ = bus_->counter("snoop.local_timeouts");
  }
  tsink_ = sim_.trace();
}

void SnoopAgent::on_data_from_wired(const net::PacketRef& pkt) {
  assert(pkt->type == net::PacketType::kTcpData && pkt->tcp.has_value());
  const std::int64_t seq = pkt->tcp->seq;
  if (seq < last_ack_) return;  // already acknowledged end-to-end

  if (cache_.size() >= cfg_.cache_packets && !cache_.contains(seq)) {
    // Evict the highest sequence (keep the oldest outstanding data, which
    // is what local recovery needs most).
    auto last = std::prev(cache_.end());
    if (last->first > seq) {
      cache_.erase(last);
      ++stats_.cache_evictions;
    } else {
      ++stats_.cache_evictions;
      return;  // no room for this one
    }
  }
  cache_[seq] = CacheEntry{pkt.share(), sim_.now(), 0};
  ++stats_.data_cached;
  WTCP_TRACE_EMIT(tsink_, sim_.now(), pkt->uid, obs::TraceSite::kSnoopCacheHit,
                  0, 0, static_cast<std::int32_t>(seq));
  arm_timer();
}

bool SnoopAgent::on_ack_from_wireless(const net::Packet& ack) {
  assert(ack.type == net::PacketType::kTcpAck && ack.tcp.has_value());
  const std::int64_t a = ack.tcp->ack;

  if (a > last_ack_) {
    // New ACK: crude RTT sample from the oldest covered cache entry.
    auto it = cache_.begin();
    if (it != cache_.end() && it->first < a && it->second.local_rtx == 0) {
      const double sample = (sim_.now() - it->second.cached_at).to_seconds();
      srtt_s_ = have_rtt_ ? 0.875 * srtt_s_ + 0.125 * sample : sample;
      have_rtt_ = true;
    }
    // Free everything below the cumulative ACK.
    cache_.erase(cache_.begin(), cache_.lower_bound(a));
    last_ack_ = a;
    dupacks_ = 0;
    arm_timer();
    ++stats_.acks_forwarded;
    return true;
  }

  // Duplicate ACK.  If we hold the missing packet, recover locally and
  // hide the dupack from the fixed host.
  ++dupacks_;
  auto it = cache_.find(a);
  if (it != cache_.end()) {
    if (dupacks_ == cfg_.dupack_threshold) {
      local_retransmit(a);
    }
    ++stats_.dupacks_suppressed;
    obs::add(probe_dupacks_suppressed_);
    return false;
  }
  ++stats_.acks_forwarded;
  return true;  // nothing cached: let TCP handle it end-to-end
}

void SnoopAgent::local_retransmit(std::int64_t seq) {
  auto it = cache_.find(seq);
  if (it == cache_.end() || !wireless_tx_) return;
  CacheEntry& e = it->second;
  if (e.local_rtx >= cfg_.max_local_retransmits) return;
  ++e.local_rtx;
  ++stats_.local_retransmits;
  obs::add(probe_local_rtx_);
  if (bus_) {
    bus_->publish(sim_.now(), "snoop", "local_rtx", static_cast<double>(seq));
  }
  WTCP_LOG(kDebug, sim_.now(), name_.c_str(), "local rtx seq=%lld (n=%d)",
           static_cast<long long>(seq), e.local_rtx);
  WTCP_TRACE_EMIT(tsink_, sim_.now(), e.pkt->uid,
                  obs::TraceSite::kSnoopLocalRtx,
                  static_cast<std::uint8_t>(std::min(e.local_rtx, 255)), 0,
                  static_cast<std::int32_t>(seq));
  wireless_tx_(e.pkt.share());
  arm_timer();
}

sim::Time SnoopAgent::local_rto() const {
  if (!have_rtt_) return cfg_.max_local_rto;
  const sim::Time est = sim::Time::from_seconds(srtt_s_ * 2.0);
  return std::clamp(est, cfg_.min_local_rto, cfg_.max_local_rto);
}

void SnoopAgent::arm_timer() {
  sim_.cancel(timer_);
  if (cache_.empty()) return;
  timer_ = sim_.after(local_rto(), [this] { on_local_timeout(); }, "snoop.timer");
}

void SnoopAgent::on_local_timeout() {
  if (cache_.empty()) return;
  ++stats_.local_timeouts;
  obs::add(probe_local_timeouts_);
  local_retransmit(cache_.begin()->first);
}

}  // namespace wtcp::feedback
