// Runtime for the WTCP_AUDIT invariant layer.  Compiles to nothing when
// the audit build is off (the header's macros never reference it).
#include "src/core/audit.hpp"

#if defined(WTCP_AUDIT) && WTCP_AUDIT

#include <cstdio>
#include <cstdlib>

namespace wtcp::audit {

namespace {

void default_handler(const char* component, const char* check_name,
                     const char* detail) {
  std::fprintf(stderr, "wtcp audit violation: %s.%s — %s\n", component,
               check_name, detail);
  std::fflush(stderr);
  std::abort();
}

// All audit state is per-thread: the parallel runner's worker threads each
// run independent seeds and must not contend (or trip TSan) on tallies.
thread_local Handler g_handler = &default_handler;
thread_local obs::Registry* g_registry = nullptr;
thread_local obs::Counter* g_probe_checks = nullptr;
thread_local obs::Counter* g_probe_violations = nullptr;
thread_local std::uint64_t g_checks = 0;
thread_local std::uint64_t g_violations = 0;

}  // namespace

Handler set_handler(Handler h) {
  Handler prev = g_handler;
  g_handler = h != nullptr ? h : &default_handler;
  return prev;
}

void bind_probes(obs::Registry* registry) {
  g_registry = registry;
  g_probe_checks = registry ? registry->counter("audit.checks") : nullptr;
  g_probe_violations =
      registry ? registry->counter("audit.violations") : nullptr;
  // Catch up checks performed before the registry was attached, so the
  // exported counters reflect the whole run.
  if (g_probe_checks) g_probe_checks->value = g_checks;
  if (g_probe_violations) g_probe_violations->value = g_violations;
}

std::uint64_t checks() { return g_checks; }
std::uint64_t violations() { return g_violations; }

void reset_counts() {
  g_checks = 0;
  g_violations = 0;
  if (g_probe_checks) g_probe_checks->value = 0;
  if (g_probe_violations) g_probe_violations->value = 0;
}

void check(bool ok, const char* component, const char* check_name,
           const char* detail) {
  ++g_checks;
  obs::add(g_probe_checks);
  if (ok) return;
  ++g_violations;
  obs::add(g_probe_violations);
  g_handler(component, check_name, detail);
}

}  // namespace wtcp::audit

#endif  // WTCP_AUDIT
