#include "src/core/provenance.hpp"

#include "wtcp_provenance_gen.hpp"

namespace wtcp::core {

const Provenance& build_provenance() {
  static const Provenance p = [] {
    Provenance v;
    v.git_sha = WTCP_PROV_GIT_SHA;
    v.git_dirty = WTCP_PROV_GIT_DIRTY != 0;
    v.compiler = WTCP_PROV_COMPILER;
    v.build_type = WTCP_PROV_BUILD_TYPE;
    v.flags = WTCP_PROV_FLAGS;
    return v;
  }();
  return p;
}

}  // namespace wtcp::core
