// Explicit Bad State Notification (EBSN) — the paper's contribution
// (Section 4.2.3).
//
// While the wireless link is in a bad state, the base station's local
// recovery keeps failing; after EVERY unsuccessful transmission attempt
// the base station sends an EBSN (a new ICMP-like message) to the TCP
// source.  The source reacts by re-arming its retransmission timer with
// the current timeout value — see TahoeSender::on_ebsn().  This prevents
// source timeouts (and the congestion-control collapse they trigger)
// during local recovery, without maintaining any per-connection state at
// the base station.
#pragma once

#include <cstdint>

#include "src/link/link_arq.hpp"
#include "src/net/packet.hpp"
#include "src/obs/probe.hpp"
#include "src/sim/simulator.hpp"
#include "src/tcp/tahoe_sender.hpp"  // PacketForwarder

namespace wtcp::core {

struct EbsnConfig {
  std::int64_t message_bytes = 40;  ///< EBSN is an ICMP-sized control packet
  /// Optional rate limit between EBSNs (0 = the paper's behaviour: one per
  /// failed attempt).  Exposed for the ablation bench.
  sim::Time min_interval = sim::Time::zero();
  /// Only notify for data-bearing fragments (TCP data headed to the mobile
  /// host), not for link ACK/reverse traffic.
  bool data_only = true;
};

struct EbsnAgentStats {
  std::uint64_t notifications_sent = 0;
  std::uint64_t suppressed = 0;  ///< dropped by the rate limiter / filter
};

/// Base-station side of EBSN.  Subscribes to the local-recovery ARQ
/// sender's failure hook and emits EBSN messages toward the TCP source
/// over the wired path.  Stateless per connection, as the paper stresses.
class EbsnAgent {
 public:
  EbsnAgent(sim::Simulator& sim, EbsnConfig cfg, net::NodeId bs, net::NodeId source,
            tcp::PacketForwarder to_source);

  /// Hook into the ARQ sender that performs local recovery toward the
  /// mobile host.  Overwrites the sender's on_attempt_failed slot.
  void attach(link::ArqSender& arq);

  /// Manual trigger (used by tests and by custom wiring).
  void notify(const net::Packet& failed_frame);

  const EbsnAgentStats& stats() const { return stats_; }
  const EbsnConfig& config() const { return cfg_; }

 private:
  sim::Simulator& sim_;
  EbsnConfig cfg_;
  net::NodeId bs_;
  net::NodeId source_;
  tcp::PacketForwarder to_source_;
  sim::Time last_sent_ = sim::Time::nanoseconds(-1);
  EbsnAgentStats stats_;
  obs::Registry* bus_ = nullptr;
  obs::Counter* probe_sent_ = nullptr;
  obs::Counter* probe_suppressed_ = nullptr;
  obs::TraceSink* tsink_ = nullptr;
};

}  // namespace wtcp::core
