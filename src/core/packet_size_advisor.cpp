#include "src/core/packet_size_advisor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/core/experiment.hpp"

namespace wtcp::core {

PacketSizeAdvisor PacketSizeAdvisor::build(const topo::ScenarioConfig& base,
                                           const std::vector<std::int32_t>& sizes,
                                           const std::vector<double>& bad_periods_s,
                                           int seeds) {
  assert(!sizes.empty() && !bad_periods_s.empty() && seeds > 0);
  std::vector<PacketSizeEntry> table;
  table.reserve(bad_periods_s.size());
  for (double bad : bad_periods_s) {
    PacketSizeEntry entry;
    entry.mean_bad_s = bad;
    entry.worst_throughput_bps = -1.0;
    for (std::int32_t size : sizes) {
      topo::ScenarioConfig cfg = base;
      cfg.channel.mean_bad_s = bad;
      cfg.set_packet_size(size);
      const MetricsSummary s = run_seeds(cfg, seeds);
      const double tput = s.throughput_bps.mean();
      if (tput > entry.throughput_bps) {
        entry.throughput_bps = tput;
        entry.packet_size = size;
      }
      if (entry.worst_throughput_bps < 0 || tput < entry.worst_throughput_bps) {
        entry.worst_throughput_bps = tput;
      }
    }
    table.push_back(entry);
  }
  return PacketSizeAdvisor(std::move(table));
}

PacketSizeAdvisor::PacketSizeAdvisor(std::vector<PacketSizeEntry> table)
    : table_(std::move(table)) {
  assert(!table_.empty());
  std::sort(table_.begin(), table_.end(),
            [](const PacketSizeEntry& a, const PacketSizeEntry& b) {
              return a.mean_bad_s < b.mean_bad_s;
            });
}

const PacketSizeEntry& PacketSizeAdvisor::entry_for(double mean_bad_s) const {
  const PacketSizeEntry* best = &table_.front();
  double best_dist = std::abs(best->mean_bad_s - mean_bad_s);
  for (const PacketSizeEntry& e : table_) {
    const double d = std::abs(e.mean_bad_s - mean_bad_s);
    if (d < best_dist) {
      best = &e;
      best_dist = d;
    }
  }
  return *best;
}

std::int32_t PacketSizeAdvisor::recommend(double mean_bad_s) const {
  return entry_for(mean_bad_s).packet_size;
}

}  // namespace wtcp::core
