#include "src/core/ebsn.hpp"

#include <cassert>
#include <utility>

#include "src/core/audit.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/logging.hpp"

namespace wtcp::core {

EbsnAgent::EbsnAgent(sim::Simulator& sim, EbsnConfig cfg, net::NodeId bs,
                     net::NodeId source, tcp::PacketForwarder to_source)
    : sim_(sim), cfg_(cfg), bs_(bs), source_(source), to_source_(std::move(to_source)) {
  assert(to_source_);
  if ((bus_ = sim_.probes())) {
    probe_sent_ = bus_->counter("ebsn.sent");
    probe_suppressed_ = bus_->counter("ebsn.suppressed");
  }
  tsink_ = sim_.trace();
}

void EbsnAgent::attach(link::ArqSender& arq) {
  arq.on_attempt_failed = [this](const net::Packet& frame, std::int32_t) {
    notify(frame);
  };
}

void EbsnAgent::notify(const net::Packet& failed_frame) {
  if (cfg_.data_only) {
    const bool is_data =
        failed_frame.encapsulated
            ? failed_frame.encapsulated->type == net::PacketType::kTcpData
            : failed_frame.type == net::PacketType::kTcpData;
    if (!is_data) {
      ++stats_.suppressed;
      obs::add(probe_suppressed_);
      return;
    }
  }
  if (!cfg_.min_interval.is_zero() && last_sent_ >= sim::Time::zero() &&
      sim_.now() - last_sent_ < cfg_.min_interval) {
    ++stats_.suppressed;
    obs::add(probe_suppressed_);
    return;
  }
  // Rate-limiter correctness: consecutive notifications must honor the
  // configured spacing (zero = the paper's one-per-failed-attempt mode).
  WTCP_AUDIT_CHECK(cfg_.min_interval.is_zero() ||
                       last_sent_ < sim::Time::zero() ||
                       sim_.now() - last_sent_ >= cfg_.min_interval,
                   "ebsn", "rate_limit",
                   "EBSN emitted inside the configured min_interval");
  last_sent_ = sim_.now();
  ++stats_.notifications_sent;
  obs::add(probe_sent_);
  if (bus_) bus_->publish(sim_.now(), "ebsn", "sent");
  WTCP_LOG(kDebug, sim_.now(), "ebsn", "notify source (failed frame: %s)",
           failed_frame.describe().c_str());
  net::PacketRef ebsn =
      net::make_control(sim_.packet_pool(), net::PacketType::kEbsn,
                        cfg_.message_bytes, bs_, source_, sim_.now());
  // Like real ICMP, the notification identifies the triggering packet's
  // connection so a multi-connection fixed host can demux it.
  if (failed_frame.encapsulated && failed_frame.encapsulated->tcp) {
    ebsn->tcp = net::TcpHeader{.conn = failed_frame.encapsulated->tcp->conn};
  }
  WTCP_TRACE_EMIT(tsink_, sim_.now(), ebsn->uid, obs::TraceSite::kEbsnSent, 0,
                  0,
                  failed_frame.encapsulated && failed_frame.encapsulated->tcp
                      ? static_cast<std::int32_t>(
                            failed_frame.encapsulated->tcp->seq)
                      : -1);
  to_source_(std::move(ebsn));
}

}  // namespace wtcp::core
