#include "src/core/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace wtcp::core {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  if (const char* env = std::getenv("WTCP_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ParallelRunner::ParallelRunner(int jobs) : jobs_(resolve_jobs(jobs)) {}

namespace {

std::string describe_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

void ParallelRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  const auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();  // the caller's thread is worker 0
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

std::vector<IndexOutcome> ParallelRunner::for_each_index_contained(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  std::vector<IndexOutcome> outcomes(n);
  if (n == 0) return outcomes;

  // Workers write only their own index's outcome slot, so no locking is
  // needed and results are independent of scheduling order.
  const auto run_one = [&](std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      outcomes[i].ok = false;
      outcomes[i].error = describe_exception();
    }
  };

  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
    return outcomes;
  }

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      run_one(i);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();  // the caller's thread is worker 0
  for (std::thread& t : threads) t.join();
  return outcomes;
}

}  // namespace wtcp::core
