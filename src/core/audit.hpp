// Compiled-in invariant audit layer (Tier 3 of the correctness tooling —
// see docs/static-analysis.md).
//
// Protocol and datapath invariants — "ARQ discards after exactly RTmax
// attempts", "EBSN never touches srtt/rttvar", "the scheduler slot pool
// and heap agree" — are asserted WHERE THEY LIVE via the WTCP_AUDIT_*
// macros below.  The layer has two modes:
//
//   * WTCP_AUDIT off (the default, and every release/golden build): every
//     macro expands to `((void)0)`.  The condition expression is never
//     evaluated, no code is generated, and the fig03-11 / run_seeds
//     goldens are bitwise-identical to a tree without the macros.
//
//   * WTCP_AUDIT on (cmake -DWTCP_AUDIT=ON; check.sh builds this as its
//     fourth verified tree): each check evaluates its condition, counts
//     into thread-local checks/violations tallies, publishes
//     `audit.checks` / `audit.violations` counters on the probe bus bound
//     to the current thread (Simulator::set_probes binds it), and on
//     violation invokes the installed handler — by default logging the
//     failed invariant and aborting.  Tests install a capturing handler to
//     prove each invariant fires on a corrupted fixture.
//
// Thread model: the parallel runner gives every seed its own thread and
// its own Simulator; all audit state is thread_local, so concurrent seeds
// never contend and the layer is TSan-clean by construction.
//
// Conditions must be side-effect free — they disappear in OFF builds.
// The determinism lint (scripts/lint_determinism.py) and clang-tidy run
// over the audited tree, so audit expressions are linted like any code.
#pragma once

#include <cstdint>

#if defined(WTCP_AUDIT) && WTCP_AUDIT

#include "src/obs/probe.hpp"

namespace wtcp::audit {

inline constexpr bool kEnabled = true;

/// Invoked on every failed check.  `component` and `check` are string
/// literals naming the invariant ("arq", "rtmax_bound"); `detail` is a
/// human-readable expansion of the failed condition.
using Handler = void (*)(const char* component, const char* check,
                         const char* detail);

/// Install a violation handler for THIS thread; returns the previous one.
/// Passing nullptr restores the default (log + abort).
Handler set_handler(Handler h);

/// Bind the probe registry audit counters publish to (per thread; the
/// Simulator binds its registry in set_probes).  Null detaches.
void bind_probes(obs::Registry* registry);

/// Thread-local tallies (reset with reset_counts; used by tests and
/// exported as audit.checks / audit.violations probe counters).
std::uint64_t checks();
std::uint64_t violations();
void reset_counts();

/// Record one evaluated check.  Called by the macros; callable directly by
/// tests exercising the handler plumbing.
void check(bool ok, const char* component, const char* check_name,
           const char* detail);

// ---------------------------------------------------------------------------
// Invariant predicates.  Components call these through the macros with
// their live state; audit tests call them with deliberately corrupted
// values to prove each one fires.  Every predicate is pure.
// ---------------------------------------------------------------------------

/// ARQ retransmission bound: after `attempts` transmissions the frame has
/// been retransmitted `attempts - 1` times, which must never exceed RTmax —
/// the timeout handler must have discarded the frame at RTmax.
inline bool arq_attempts_within_bound(std::int32_t attempts,
                                      std::int32_t rt_max) {
  return attempts >= 1 && attempts - 1 <= rt_max;
}

/// EBSN purity (the paper's appendix): re-arming the retransmission timer
/// must leave the RTT estimator exactly as it was — srtt, rttvar and the
/// backoff shift all unchanged.
inline bool ebsn_left_estimator_untouched(std::int64_t sa_before,
                                          std::int64_t sa_after,
                                          std::int64_t sv_before,
                                          std::int64_t sv_after,
                                          std::int32_t backoff_before,
                                          std::int32_t backoff_after) {
  return sa_before == sa_after && sv_before == sv_after &&
         backoff_before == backoff_after;
}

/// Tahoe/Reno congestion-state legality: cwnd and ssthresh are at least
/// one/two segments and the send sequence pointers are ordered.
inline bool tcp_congestion_state_legal(double cwnd, double ssthresh,
                                       std::int64_t snd_una,
                                       std::int64_t snd_nxt) {
  return cwnd >= 1.0 && ssthresh >= 2.0 && snd_una >= 0 && snd_una <= snd_nxt;
}

/// Gilbert-Elliott parameter sanity: BERs are probabilities-per-bit in
/// [0, 1] and both mean sojourn times are positive (the transition rates
/// lambda_gb = 1/mean_good and lambda_bg = 1/mean_bad must exist).
inline bool ge_config_sane(double ber_good, double ber_bad, double mean_good_s,
                           double mean_bad_s) {
  return ber_good >= 0.0 && ber_good <= 1.0 && ber_bad >= 0.0 &&
         ber_bad <= 1.0 && mean_good_s > 0.0 && mean_bad_s > 0.0;
}

/// Packet-pool teardown accounting: at end of run every acquired slot has
/// been released (live == 0) and the freelist plus live slots account for
/// every slot ever allocated (free_count + live == allocs).
inline bool pool_teardown_clean(std::uint64_t live, std::uint64_t free_count,
                                std::uint64_t allocs) {
  return live == 0 && free_count + live == allocs;
}

/// Pool refcount legality at release: a slot returns to the freelist only
/// when its last reference dropped.
inline bool pool_refcount_at_release(std::uint32_t refcount) {
  return refcount == 0;
}

/// Scheduler slot/heap consistency: a slot handed out of the free list
/// must not be live; a slot being released must be.
inline bool scheduler_slot_state(bool live, bool expected_live) {
  return live == expected_live;
}

/// Timing-wheel membership reconcile: walking every bucket list plus the
/// live scratch and overflow entries must reach each live slot exactly
/// once — no stranded, duplicated, or leaked events.
inline bool scheduler_wheel_membership(std::uint64_t linked,
                                       std::uint64_t live) {
  return linked == live;
}

}  // namespace wtcp::audit

/// Assert `cond` under the audit build; no-op otherwise.  `component` and
/// `check` are string literals; `detail` a string-literal elaboration.
#define WTCP_AUDIT_CHECK(cond, component, check_name, detail) \
  ::wtcp::audit::check((cond), (component), (check_name), (detail))

/// Run a statement only in audit builds (capture "before" state for
/// purity checks, walk a structure for O(n) consistency audits).
#define WTCP_AUDIT_ONLY(...) __VA_ARGS__

#else  // !WTCP_AUDIT

namespace wtcp::audit {
inline constexpr bool kEnabled = false;
}  // namespace wtcp::audit

#define WTCP_AUDIT_CHECK(cond, component, check_name, detail) ((void)0)
#define WTCP_AUDIT_ONLY(...)

#endif  // WTCP_AUDIT
