// Parallel execution of independent simulation runs.
//
// Every figure and ablation averages many independent runs per data point;
// each run is single-threaded by construction (one Simulator, one RNG
// root, one probe registry per topo::Scenario), so runs parallelize
// embarrassingly.  ParallelRunner is the small worker pool the experiment
// harness and the benches share.  Determinism is preserved by
// construction: workers only write to their own index's output slot and
// callers fold results in index order, so anything derived from the
// results is byte-identical to a sequential execution.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace wtcp::core {

/// What happened to one index of a contained parallel sweep.  Slots whose
/// `ok` is false carry the exception message, so callers can tell a failed
/// index's default-constructed result apart from a real one.
struct IndexOutcome {
  bool ok = true;
  std::string error;
};

/// Resolve a worker-count request: n > 0 is taken as-is; 0 means the
/// WTCP_JOBS environment variable if set to a positive integer, else
/// std::thread::hardware_concurrency() (at least 1).
int resolve_jobs(int jobs);

class ParallelRunner {
 public:
  /// `jobs` as per resolve_jobs(); jobs() reports the resolved count.
  explicit ParallelRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  /// Invoke `fn(i)` exactly once for every i in [0, n), distributing
  /// indices across jobs() threads (the caller's thread participates).
  /// With jobs() == 1 (or n <= 1) everything runs inline on the caller's
  /// thread — exactly the sequential behavior, no threads spawned.
  ///
  /// `fn` runs concurrently for distinct indices: it must only touch
  /// per-index state (e.g. results[i]).  The first exception thrown by
  /// `fn` stops the pool draining further indices and is rethrown on the
  /// caller's thread after all workers join.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn) const;

  /// Failure-contained variant: every index runs regardless of how many
  /// others throw.  A throwing index records its exception message in the
  /// returned vector (outcomes[i].ok == false) instead of aborting the
  /// pool, so a multi-seed sweep always completes and every failure
  /// surfaces — not just the first (docs/robustness.md).
  std::vector<IndexOutcome> for_each_index_contained(
      std::size_t n, const std::function<void(std::size_t)>& fn) const;

 private:
  int jobs_;
};

}  // namespace wtcp::core
