#include "src/core/theoretical.hpp"

namespace wtcp::core {

double effective_bandwidth_bps(const net::LinkConfig& link) {
  return static_cast<double>(link.bandwidth_bps) *
         static_cast<double>(link.overhead_den) /
         static_cast<double>(link.overhead_num);
}

double theoretical_max_throughput_bps(const phy::GilbertElliottConfig& channel,
                                      double tput_max_bps) {
  return channel.good_fraction() * tput_max_bps;
}

double theoretical_max_throughput_bps(const net::LinkConfig& wireless,
                                      const phy::GilbertElliottConfig& channel) {
  return theoretical_max_throughput_bps(channel, effective_bandwidth_bps(wireless));
}

}  // namespace wtcp::core
