// Reserve-once arena for per-flow subsystem state.
//
// A multi-user cell holds one sender, sink, wireless interface, ARQ
// engine, channel model, ... per flow.  Holding each in its own
// unique_ptr costs a heap allocation per flow per subsystem (60k+
// allocations for a 10k-flow cell) and scatters hot per-flow state
// across the heap.  A FlowSlab instead reserves raw storage for all K
// flows of ONE subsystem up front and placement-constructs into it:
// one allocation per subsystem, contiguous struct-of-arrays layout
// (generalizing PacketPool's chunked-slot design to non-trivial,
// non-movable component types).
//
// Elements are constructed in flow order via emplace_back and NEVER
// relocate — components freely hand out `this`-capturing callbacks.
// Destruction runs in reverse construction order, matching the
// unique_ptr-vector teardown it replaces.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace wtcp::core {

template <typename T>
class FlowSlab {
 public:
  FlowSlab() = default;
  explicit FlowSlab(std::size_t capacity) { reserve(capacity); }

  FlowSlab(const FlowSlab&) = delete;
  FlowSlab& operator=(const FlowSlab&) = delete;

  ~FlowSlab() { clear(); }

  /// Allocate raw storage for `capacity` elements.  Callable once (or
  /// again only after clear()); the slab never grows past it, which is
  /// what pins element addresses.
  void reserve(std::size_t capacity) {
    assert(!storage_ && "FlowSlab::reserve called on a live slab");
    if (capacity == 0) return;
    storage_.reset(new AlignedSlot[capacity]);
    capacity_ = capacity;
  }

  /// Construct the next element in place; returns it.  The address is
  /// stable for the slab's lifetime.
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    assert(size_ < capacity_ && "FlowSlab capacity exhausted");
    T* slot = new (&storage_[size_]) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// Destroy all elements (reverse order) and release the storage.
  void clear() {
    while (size_ > 0) {
      --size_;
      std::launder(reinterpret_cast<T*>(&storage_[size_]))->~T();
    }
    storage_.reset();
    capacity_ = 0;
  }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return *std::launder(reinterpret_cast<T*>(&storage_[i]));
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return *std::launder(reinterpret_cast<const T*>(&storage_[i]));
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

 private:
  struct alignas(T) AlignedSlot {
    unsigned char bytes[sizeof(T)];
  };

  std::unique_ptr<AlignedSlot[]> storage_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace wtcp::core
