// Experiment harness: multi-seed runs with summary statistics, matching
// the paper's methodology ("the standard deviation for all results
// presented is less than 4%").
#pragma once

#include <cstdint>
#include <vector>

#include "src/stats/metrics.hpp"
#include "src/stats/summary.hpp"
#include "src/topo/scenario.hpp"

namespace wtcp::core {

/// Aggregated results of one configuration run under several seeds.
struct MetricsSummary {
  stats::Summary throughput_bps;
  stats::Summary goodput;
  stats::Summary timeouts;
  stats::Summary retransmitted_kbytes;
  stats::Summary duration_s;
  stats::Summary ebsn_received;
  stats::Summary quench_received;
  std::uint64_t runs_total = 0;
  std::uint64_t runs_completed = 0;

  void add(const stats::RunMetrics& m);
};

/// Run `cfg` under `n_seeds` different seeds (base_seed, base_seed+1, ...).
MetricsSummary run_seeds(topo::ScenarioConfig cfg, int n_seeds,
                         std::uint64_t base_seed = 1);

/// Measured effective throughput of `cfg` with channel errors disabled —
/// the empirical tput_max the theoretical bound scales from.
double measure_error_free_throughput_bps(topo::ScenarioConfig cfg);

}  // namespace wtcp::core
