// Experiment harness: multi-seed runs with summary statistics, matching
// the paper's methodology ("the standard deviation for all results
// presented is less than 4%").
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/core/parallel.hpp"
#include "src/stats/metrics.hpp"
#include "src/stats/summary.hpp"
#include "src/topo/scenario.hpp"

namespace wtcp::core {

/// Aggregated results of one configuration run under several seeds.
///
/// `runs_total` counts every attempted seed; `runs_failed` the seeds that
/// threw or were killed by a watchdog budget (their metrics are NOT folded
/// into the statistics); `runs_completed` the non-failed seeds whose
/// transfer finished before the horizon.  runs_completed < runs_total -
/// runs_failed means some folded runs were INCOMPLETE (sim-time limit hit
/// mid-transfer) — surface that to the user (docs/robustness.md).
struct MetricsSummary {
  stats::Summary throughput_bps;
  stats::Summary goodput;
  stats::Summary timeouts;
  stats::Summary retransmitted_kbytes;
  stats::Summary duration_s;
  stats::Summary ebsn_received;
  stats::Summary quench_received;
  std::uint64_t runs_total = 0;
  std::uint64_t runs_completed = 0;
  std::uint64_t runs_failed = 0;

  void add(const stats::RunMetrics& m);
  /// Record a seed that produced no usable metrics (exception / budget).
  void add_failure();
  /// Folded runs whose transfer did not finish before the horizon.
  std::uint64_t runs_incomplete() const {
    return runs_total - runs_failed - runs_completed;
  }
  bool all_ok() const { return runs_failed == 0 && runs_incomplete() == 0; }
};

/// Structured per-seed verdict of a contained sweep (seed order).
struct SeedOutcome {
  std::uint64_t seed = 0;
  sim::RunStatus status = sim::RunStatus::kOk;
  std::string message;  ///< exception / watchdog detail ("" when ok)

  bool ok() const { return status == sim::RunStatus::kOk; }
};

/// Run `cfg` under `n_seeds` different seeds (base_seed, base_seed+1, ...)
/// across `jobs` worker threads (1 = sequential on the caller's thread,
/// 0 = resolve_jobs default: WTCP_JOBS env var or all hardware threads).
/// Results are folded in seed order, so the summary is byte-identical to
/// a sequential run whatever the parallelism.
///
/// Failure containment: a seed that throws (or is killed by an armed
/// cfg.budget watchdog) does not abort the sweep — it is counted in
/// summary.runs_failed, excluded from the statistics, and (when
/// `outcomes` is non-null) reported there in seed order.
MetricsSummary run_seeds(topo::ScenarioConfig cfg, int n_seeds,
                         std::uint64_t base_seed = 1, int jobs = 1,
                         std::vector<SeedOutcome>* outcomes = nullptr);

/// run_seeds with a per-run hook: `inspect(i, scenario, metrics)` fires on
/// the worker thread as soon as seed base_seed + i finishes, with the
/// scenario still alive (benches read component stats through it).
/// Distinct indices run concurrently — inspect must only touch
/// per-index state.  The summary is still folded in seed order.
/// Exceptions from the scenario OR the hook are contained as above.
MetricsSummary run_seeds_inspect(
    topo::ScenarioConfig cfg, int n_seeds, std::uint64_t base_seed, int jobs,
    const std::function<void(int, topo::Scenario&, const stats::RunMetrics&)>&
        inspect,
    std::vector<SeedOutcome>* outcomes = nullptr);

/// Measured effective throughput of `cfg` with channel errors disabled —
/// the empirical tput_max the theoretical bound scales from.
double measure_error_free_throughput_bps(topo::ScenarioConfig cfg);

// ---------------------------------------------------------------------------
// Machine-readable run reports (the observability layer's experiment face)
// ---------------------------------------------------------------------------

/// Canonical one-line description of every knob that affects a run's
/// outcome.  Two configs with equal descriptions produce identical runs
/// for the same seed; the digest below is the FNV-1a hash of this string.
std::string describe_config(const topo::ScenarioConfig& cfg);

/// 16-hex-digit FNV-1a digest of describe_config(cfg).
std::string config_digest(const topo::ScenarioConfig& cfg);

/// Everything recorded about one seed's run.
struct SeedRunReport {
  std::uint64_t seed = 0;
  stats::RunMetrics metrics;
  double wall_seconds = 0.0;             ///< wall-clock inside the run loop
  std::uint64_t events_executed = 0;
  std::size_t max_event_queue_depth = 0;
  std::size_t obs_events = 0;            ///< events published to the bus
  std::size_t obs_samples = 0;           ///< sampler rows recorded
  std::map<std::string, std::uint64_t> counters;        ///< probe snapshot
  std::map<std::string, double> gauges;                 ///< final values
  std::map<std::string, obs::Histogram> histograms;     ///< distribution probes
  std::map<std::string, std::uint64_t> executed_by_tag; ///< scheduler profile

  /// Structured outcome: anything but kOk means the seed failed (threw or
  /// hit a watchdog budget) and every field above except `seed`/`error`
  /// is default-constructed.
  sim::RunStatus status = sim::RunStatus::kOk;
  std::string error;
  /// True when this seed was restored from a resume checkpoint instead of
  /// re-run (in-memory only; deliberately absent from the manifest so a
  /// resumed sweep's files stay byte-identical to an uninterrupted one).
  bool restored = false;

  bool ok() const { return status == sim::RunStatus::kOk; }
};

struct ReportOptions {
  /// Output stem: writes <stem>.jsonl (events), <stem>.series.csv (time
  /// series) and <stem>.manifest.json.  Empty = in-memory report only.
  std::string out_stem;
  sim::Time sample_interval = sim::Time::milliseconds(100);
  bool profile_scheduler = true;
  /// Worker threads (1 = sequential, 0 = resolve_jobs default).  The
  /// JSONL/CSV/manifest outputs are byte-identical whatever the value:
  /// each seed renders its file sections in isolation and they are
  /// concatenated in seed order.
  int jobs = 1;

  /// CRC-guarded JSONL checkpoint journal (docs/robustness.md).  Every
  /// successfully finished seed is appended (and flushed) as it
  /// completes, so a killed sweep loses at most the in-flight seeds.
  /// Empty = no checkpointing.
  std::string checkpoint_path;
  /// Resume from `checkpoint_path`: seeds already journaled there (for
  /// this exact config digest) are restored instead of re-run, and the
  /// folded output — summary, JSONL, CSV, manifest — is byte-identical
  /// to an uninterrupted sweep.  Without resume, an existing checkpoint
  /// file is truncated and rewritten.
  bool resume = false;

  /// Optional hook fired on the worker thread after the scenario is built
  /// but before it runs (attach traces, inject faults in tests).  Runs
  /// only for seeds actually executed, never for restored ones; must only
  /// touch per-index state.  Exceptions are contained as seed failures.
  std::function<void(std::size_t, topo::Scenario&)> pre_run;
};

/// A full multi-seed experiment with per-seed detail.
struct RunReport {
  std::string config_description;
  std::string digest;
  std::vector<SeedRunReport> seeds;
  MetricsSummary summary;
};

/// Write `report` as a manifest JSON document.
void write_manifest(std::ostream& os, const RunReport& report);

/// run_seeds with observability on: every seed runs with a probe registry
/// and sampler; events/series/manifest are written under opts.out_stem
/// (JSONL rows and CSV rows carry a seed column so one file holds all
/// seeds).  Returns the in-memory report either way.
RunReport run_seeds_reported(topo::ScenarioConfig cfg, int n_seeds,
                             std::uint64_t base_seed,
                             const ReportOptions& opts);

}  // namespace wtcp::core
