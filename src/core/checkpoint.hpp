// Checkpoint journal for multi-seed sweeps (docs/robustness.md).
//
// run_seeds_reported appends one CRC-guarded JSONL line per successfully
// finished seed; a resumed sweep restores those seeds instead of re-running
// them.  The format is engineered for the resume contract — a resumed
// sweep's folded output is BYTE-IDENTICAL to an uninterrupted one:
//
//   * doubles are stored as hexfloat strings ("%a"), so every metric
//     round-trips bit-exactly and the seed-order Summary fold reproduces
//     the same last-bit floating point results;
//   * each seed's rendered JSONL events section and CSV series section are
//     stored verbatim, so output files can be reassembled without re-running;
//   * every line carries a CRC-32 of its record, so a line truncated or
//     mangled by a crash/kill is detected and skipped, never half-trusted;
//   * every line carries the config digest, so a checkpoint is never
//     resumed against a different configuration.
//
// Appends are atomic at line granularity in practice: a line is rendered
// in full, written with one stream insert, and flushed under a mutex; a
// torn tail (the kill case) fails its CRC and is ignored on load.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/experiment.hpp"

namespace wtcp::core {

/// CRC-32 (IEEE 802.3, reflected) of `data`.
std::uint32_t crc32(std::string_view data);

/// Exact (bit-preserving) double <-> string conversion used by the journal.
std::string hexfloat(double v);
bool parse_hexfloat(std::string_view s, double& out);

/// One journaled seed: the full per-seed report plus its rendered file
/// sections (empty when the sweep wrote no files and no checkpoint).
struct CheckpointEntry {
  std::size_t index = 0;  ///< seed index within the sweep (seed - base_seed)
  SeedRunReport report;
  std::string events_jsonl;
  std::string series_csv;
};

/// Render one journal line (newline-terminated):
///   {"crc":"xxxxxxxx","record":{...}}
/// with the CRC computed over the record's exact byte rendering.
std::string encode_checkpoint_line(std::string_view digest,
                                   const CheckpointEntry& entry);

/// Parse one journal line.  Returns false on any defect: bad framing,
/// CRC mismatch, malformed JSON, or a digest that differs from `digest`
/// (`digest_mismatch` distinguishes the last case for reporting).
bool decode_checkpoint_line(std::string_view line, std::string_view digest,
                            CheckpointEntry& out, bool& digest_mismatch);

/// Result of scanning a journal stream.
struct CheckpointLoad {
  std::vector<CheckpointEntry> entries;  ///< valid entries, file order
  std::size_t corrupt_lines = 0;         ///< CRC/framing failures, skipped
  std::size_t foreign_lines = 0;         ///< other-config digests, skipped
};

/// Scan every line of `in` against `digest`.  Defective lines are counted
/// and skipped — a torn tail from a killed sweep must not poison the rest.
CheckpointLoad load_checkpoint(std::istream& in, std::string_view digest);
CheckpointLoad load_checkpoint_file(const std::string& path,
                                    std::string_view digest);

/// Thread-safe journal appender.  Workers call append() as their seed
/// completes (any order); each call writes one full line and flushes.
class CheckpointWriter {
 public:
  /// Opens `path` for append (resume) or truncates it (fresh sweep).
  /// is_open() reports failure; a sweep with a broken checkpoint path
  /// still runs, it just cannot be resumed.
  CheckpointWriter(const std::string& path, std::string digest, bool append);

  bool is_open() const { return out_.is_open() && out_.good(); }

  void append(const CheckpointEntry& entry);

 private:
  std::mutex mu_;
  std::ofstream out_;
  std::string digest_;
};

}  // namespace wtcp::core
