#include "src/core/checkpoint.hpp"

#include <array>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/obs/json.hpp"

namespace wtcp::core {

// ---------------------------------------------------------------------------
// CRC-32 and exact double round-trip
// ---------------------------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string hexfloat(double v) {
  // %a renders the exact binary value; strtod parses it back bit-for-bit,
  // which is what makes a resumed fold byte-identical to an uninterrupted
  // one.  (%.17g would also round-trip, but %a is self-evidently exact.)
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

bool parse_hexfloat(std::string_view s, double& out) {
  const std::string z(s);  // strtod needs a terminator
  const char* begin = z.c_str();
  char* end = nullptr;
  out = std::strtod(begin, &end);
  return end != begin && *end == '\0';
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (just what the journal emits: objects, strings,
// integers, booleans; no arrays, no float literals — doubles travel as
// hexfloat strings)
// ---------------------------------------------------------------------------

namespace {

struct JValue {
  enum class T : std::uint8_t { kNull, kBool, kInt, kStr, kObj };
  T t = T::kNull;
  bool b = false;
  bool negative = false;
  std::uint64_t mag = 0;  ///< magnitude of an integer literal
  std::string s;
  std::vector<std::pair<std::string, JValue>> obj;

  const JValue* find(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::uint64_t as_u64() const { return negative ? 0 : mag; }
  std::int64_t as_i64() const {
    const auto m = static_cast<std::int64_t>(mag);
    return negative ? -m : m;
  }
};

class Reader {
 public:
  explicit Reader(std::string_view s) : s_(s) {}

  bool parse(JValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool string_body(std::string& out) {
    // pos_ is just past the opening quote; find the closing quote,
    // honoring backslash escapes, then unescape the span.
    const std::size_t start = pos_;
    while (pos_ < s_.size()) {
      if (s_[pos_] == '\\') {
        pos_ += 2;
        continue;
      }
      if (s_[pos_] == '"') {
        if (!obs::json_unescape(s_.substr(start, pos_ - start), out)) {
          return false;
        }
        ++pos_;
        return true;
      }
      ++pos_;
    }
    return false;
  }

  bool value(JValue& out) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '"') {
      ++pos_;
      out.t = JValue::T::kStr;
      return string_body(out.s);
    }
    if (c == 't') {
      out.t = JValue::T::kBool;
      out.b = true;
      return literal("true");
    }
    if (c == 'f') {
      out.t = JValue::T::kBool;
      out.b = false;
      return literal("false");
    }
    if (c == 'n') {
      out.t = JValue::T::kNull;
      return literal("null");
    }
    return integer(out);
  }

  bool integer(JValue& out) {
    out.t = JValue::T::kInt;
    out.negative = s_[pos_] == '-';
    if (out.negative) ++pos_;
    const std::size_t start = pos_;
    std::uint64_t mag = 0;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      mag = mag * 10 + static_cast<std::uint64_t>(s_[pos_] - '0');
      ++pos_;
    }
    out.mag = mag;
    return pos_ > start;
  }

  bool object(JValue& out) {
    out.t = JValue::T::kObj;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') return false;
      ++pos_;
      std::string key;
      if (!string_body(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JValue v;
      if (!value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// v2: added the "hist" section (histogram probes).  v1 lines fail the
// version check, count as corrupt, and their seeds simply re-run.
constexpr int kJournalVersion = 2;
constexpr std::string_view kLinePrefix = "{\"crc\":\"";
constexpr std::string_view kRecordKey = "\",\"record\":";

void write_metrics_record(obs::JsonWriter& w, const stats::RunMetrics& m) {
  w.key("metrics").begin_object();
  w.field("completed", m.completed);
  w.field("duration_ns", static_cast<std::int64_t>(m.duration.ns()));
  w.field("throughput_bps", hexfloat(m.throughput_bps));
  w.field("goodput", hexfloat(m.goodput));
  w.field("timeouts", m.timeouts);
  w.field("fast_retransmits", m.fast_retransmits);
  w.field("segments_sent", m.segments_sent);
  w.field("segments_retransmitted", m.segments_retransmitted);
  w.field("retransmitted_bytes",
          static_cast<std::int64_t>(m.retransmitted_bytes));
  w.field("ebsn_received", m.ebsn_received);
  w.field("quench_received", m.quench_received);
  w.field("unique_payload_bytes",
          static_cast<std::int64_t>(m.unique_payload_bytes));
  w.field("duplicate_segments", m.duplicate_segments);
  w.field("wireless_frames_corrupted", m.wireless_frames_corrupted);
  w.field("arq_attempts", m.arq_attempts);
  w.field("arq_retransmissions", m.arq_retransmissions);
  w.field("arq_discards", m.arq_discards);
  w.field("ebsn_sent", m.ebsn_sent);
  w.field("quench_sent", m.quench_sent);
  w.field("snoop_local_retransmits", m.snoop_local_retransmits);
  w.field("handoffs", m.handoffs);
  w.field("delay_p50_s", hexfloat(m.delay_p50_s));
  w.field("delay_p95_s", hexfloat(m.delay_p95_s));
  w.field("delay_max_s", hexfloat(m.delay_max_s));
  w.end_object();
}

bool read_metrics_record(const JValue& v, stats::RunMetrics& m) {
  if (v.t != JValue::T::kObj) return false;
  const auto u64 = [&](std::string_view k, std::uint64_t& out) {
    const JValue* f = v.find(k);
    if (!f || f->t != JValue::T::kInt) return false;
    out = f->as_u64();
    return true;
  };
  const auto i64 = [&](std::string_view k, std::int64_t& out) {
    const JValue* f = v.find(k);
    if (!f || f->t != JValue::T::kInt) return false;
    out = f->as_i64();
    return true;
  };
  const auto dbl = [&](std::string_view k, double& out) {
    const JValue* f = v.find(k);
    return f && f->t == JValue::T::kStr && parse_hexfloat(f->s, out);
  };
  const JValue* completed = v.find("completed");
  if (!completed || completed->t != JValue::T::kBool) return false;
  m.completed = completed->b;
  std::int64_t duration_ns = 0;
  if (!i64("duration_ns", duration_ns)) return false;
  m.duration = sim::Time::nanoseconds(duration_ns);
  return dbl("throughput_bps", m.throughput_bps) &&
         dbl("goodput", m.goodput) && u64("timeouts", m.timeouts) &&
         u64("fast_retransmits", m.fast_retransmits) &&
         u64("segments_sent", m.segments_sent) &&
         u64("segments_retransmitted", m.segments_retransmitted) &&
         i64("retransmitted_bytes", m.retransmitted_bytes) &&
         u64("ebsn_received", m.ebsn_received) &&
         u64("quench_received", m.quench_received) &&
         i64("unique_payload_bytes", m.unique_payload_bytes) &&
         u64("duplicate_segments", m.duplicate_segments) &&
         u64("wireless_frames_corrupted", m.wireless_frames_corrupted) &&
         u64("arq_attempts", m.arq_attempts) &&
         u64("arq_retransmissions", m.arq_retransmissions) &&
         u64("arq_discards", m.arq_discards) && u64("ebsn_sent", m.ebsn_sent) &&
         u64("quench_sent", m.quench_sent) &&
         u64("snoop_local_retransmits", m.snoop_local_retransmits) &&
         u64("handoffs", m.handoffs) && dbl("delay_p50_s", m.delay_p50_s) &&
         dbl("delay_p95_s", m.delay_p95_s) && dbl("delay_max_s", m.delay_max_s);
}

}  // namespace

// ---------------------------------------------------------------------------
// Encode / decode
// ---------------------------------------------------------------------------

std::string encode_checkpoint_line(std::string_view digest,
                                   const CheckpointEntry& entry) {
  std::ostringstream record_os;
  {
    obs::JsonWriter w(record_os);
    const SeedRunReport& sr = entry.report;
    w.begin_object();
    w.field("v", static_cast<std::int64_t>(kJournalVersion));
    w.field("digest", digest);
    w.field("seed", sr.seed);
    w.field("index", static_cast<std::uint64_t>(entry.index));
    w.field("wall_seconds", hexfloat(sr.wall_seconds));
    w.field("events_executed", sr.events_executed);
    w.field("max_event_queue_depth",
            static_cast<std::uint64_t>(sr.max_event_queue_depth));
    w.field("obs_events", static_cast<std::uint64_t>(sr.obs_events));
    w.field("obs_samples", static_cast<std::uint64_t>(sr.obs_samples));
    write_metrics_record(w, sr.metrics);
    w.key("counters").begin_object();
    for (const auto& [name, c] : sr.counters) w.field(name, c);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, g] : sr.gauges) w.field(name, hexfloat(g));
    w.end_object();
    // Histograms: counts are exact and doubles travel as hexfloat, so a
    // restored histogram is bit-identical — manifests from resumed sweeps
    // match uninterrupted ones byte for byte.  Buckets are stored sparse.
    w.key("hist").begin_object();
    for (const auto& [name, h] : sr.histograms) {
      w.key(name).begin_object();
      w.field("count", h.count);
      w.field("sum", hexfloat(h.sum));
      w.field("min", hexfloat(h.min));
      w.field("max", hexfloat(h.max));
      w.key("b").begin_object();
      for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
        if (h.buckets[b] != 0) {
          char key[8];
          std::snprintf(key, sizeof key, "%d", b);
          w.field(key, h.buckets[b]);
        }
      }
      w.end_object();
      w.end_object();
    }
    w.end_object();
    w.key("profile").begin_object();
    for (const auto& [tag, n] : sr.executed_by_tag) w.field(tag, n);
    w.end_object();
    w.field("events_jsonl", entry.events_jsonl);
    w.field("series_csv", entry.series_csv);
    w.end_object();
  }
  const std::string record = std::move(record_os).str();

  char crc_hex[9];
  std::snprintf(crc_hex, sizeof crc_hex, "%08" PRIx32, crc32(record));
  std::string line;
  line.reserve(record.size() + 32);
  line += kLinePrefix;
  line += crc_hex;
  line += kRecordKey;
  line += record;
  line += "}\n";
  return line;
}

bool decode_checkpoint_line(std::string_view line, std::string_view digest,
                            CheckpointEntry& out, bool& digest_mismatch) {
  digest_mismatch = false;
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  // Framing: {"crc":"xxxxxxxx","record":<record>}
  const std::size_t header = kLinePrefix.size() + 8 + kRecordKey.size();
  if (line.size() <= header + 1 ||
      line.substr(0, kLinePrefix.size()) != kLinePrefix ||
      line.substr(kLinePrefix.size() + 8, kRecordKey.size()) != kRecordKey ||
      line.back() != '}') {
    return false;
  }
  const std::string_view crc_hex = line.substr(kLinePrefix.size(), 8);
  const std::string_view record = line.substr(header, line.size() - header - 1);
  std::uint32_t want = 0;
  for (const char c : crc_hex) {
    want <<= 4;
    if (c >= '0' && c <= '9') {
      want |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      want |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  if (crc32(record) != want) return false;

  JValue root;
  if (!Reader(record).parse(root) || root.t != JValue::T::kObj) return false;

  const JValue* v = root.find("v");
  if (!v || v->t != JValue::T::kInt || v->as_i64() != kJournalVersion) {
    return false;
  }
  const JValue* dig = root.find("digest");
  if (!dig || dig->t != JValue::T::kStr) return false;
  if (dig->s != digest) {
    digest_mismatch = true;
    return false;
  }

  const auto u64 = [&](std::string_view k, std::uint64_t& field) {
    const JValue* f = root.find(k);
    if (!f || f->t != JValue::T::kInt) return false;
    field = f->as_u64();
    return true;
  };
  const auto str = [&](std::string_view k, std::string& field) {
    const JValue* f = root.find(k);
    if (!f || f->t != JValue::T::kStr) return false;
    field = f->s;
    return true;
  };
  const auto counter_map = [&](std::string_view k, auto& field) {
    const JValue* f = root.find(k);
    if (!f || f->t != JValue::T::kObj) return false;
    for (const auto& [name, val] : f->obj) {
      if (val.t != JValue::T::kInt) return false;
      field[name] = val.as_u64();
    }
    return true;
  };

  CheckpointEntry entry;
  SeedRunReport& sr = entry.report;
  std::uint64_t index = 0;
  std::string wall;
  std::uint64_t depth = 0, obs_events = 0, obs_samples = 0;
  if (!u64("seed", sr.seed) || !u64("index", index) ||
      !str("wall_seconds", wall) || !parse_hexfloat(wall, sr.wall_seconds) ||
      !u64("events_executed", sr.events_executed) ||
      !u64("max_event_queue_depth", depth) || !u64("obs_events", obs_events) ||
      !u64("obs_samples", obs_samples)) {
    return false;
  }
  entry.index = static_cast<std::size_t>(index);
  sr.max_event_queue_depth = static_cast<std::size_t>(depth);
  sr.obs_events = static_cast<std::size_t>(obs_events);
  sr.obs_samples = static_cast<std::size_t>(obs_samples);

  const JValue* metrics = root.find("metrics");
  if (!metrics || !read_metrics_record(*metrics, sr.metrics)) return false;

  if (!counter_map("counters", sr.counters) ||
      !counter_map("profile", sr.executed_by_tag)) {
    return false;
  }
  const JValue* gauges = root.find("gauges");
  if (!gauges || gauges->t != JValue::T::kObj) return false;
  for (const auto& [name, val] : gauges->obj) {
    double d = 0.0;
    if (val.t != JValue::T::kStr || !parse_hexfloat(val.s, d)) return false;
    sr.gauges[name] = d;
  }

  const JValue* hists = root.find("hist");
  if (!hists || hists->t != JValue::T::kObj) return false;
  for (const auto& [name, hv] : hists->obj) {
    if (hv.t != JValue::T::kObj) return false;
    obs::Histogram h;
    const JValue* c = hv.find("count");
    const JValue* s = hv.find("sum");
    const JValue* mn = hv.find("min");
    const JValue* mx = hv.find("max");
    const JValue* buckets = hv.find("b");
    if (!c || c->t != JValue::T::kInt || !s || s->t != JValue::T::kStr ||
        !parse_hexfloat(s->s, h.sum) || !mn || mn->t != JValue::T::kStr ||
        !parse_hexfloat(mn->s, h.min) || !mx || mx->t != JValue::T::kStr ||
        !parse_hexfloat(mx->s, h.max) || !buckets ||
        buckets->t != JValue::T::kObj) {
      return false;
    }
    h.count = c->as_u64();
    for (const auto& [bk, bv] : buckets->obj) {
      if (bv.t != JValue::T::kInt || bk.empty()) return false;
      int idx = 0;
      for (const char ch : bk) {
        if (ch < '0' || ch > '9') return false;
        idx = idx * 10 + (ch - '0');
        if (idx >= obs::Histogram::kBuckets) return false;
      }
      h.buckets[idx] = bv.as_u64();
    }
    sr.histograms[name] = h;
  }

  if (!str("events_jsonl", entry.events_jsonl) ||
      !str("series_csv", entry.series_csv)) {
    return false;
  }
  sr.restored = true;
  out = std::move(entry);
  return true;
}

CheckpointLoad load_checkpoint(std::istream& in, std::string_view digest) {
  CheckpointLoad load;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    CheckpointEntry entry;
    bool foreign = false;
    if (decode_checkpoint_line(line, digest, entry, foreign)) {
      load.entries.push_back(std::move(entry));
    } else if (foreign) {
      ++load.foreign_lines;
    } else {
      ++load.corrupt_lines;
    }
  }
  return load;
}

CheckpointLoad load_checkpoint_file(const std::string& path,
                                    std::string_view digest) {
  std::ifstream in(path);
  if (!in.good()) return {};  // no file yet = nothing to resume
  return load_checkpoint(in, digest);
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

CheckpointWriter::CheckpointWriter(const std::string& path, std::string digest,
                                   bool append)
    : digest_(std::move(digest)) {
  out_.open(path, append ? std::ios::out | std::ios::app
                         : std::ios::out | std::ios::trunc);
}

void CheckpointWriter::append(const CheckpointEntry& entry) {
  const std::string line = encode_checkpoint_line(digest_, entry);
  const std::lock_guard<std::mutex> lock(mu_);
  out_ << line;
  out_.flush();
}

}  // namespace wtcp::core
