// Build provenance: which build produced this artifact.
//
// Captured by CMake at configure time (git SHA + dirty flag from the
// source tree, compiler id/version, build type, and the observability
// option flags) and compiled into the library, so every run manifest,
// bench JSON, and trace file records where it came from.  Configure-time
// capture means a rebuild without re-configuring can lag the tree by a
// commit — acceptable for attribution, and the dirty flag catches the
// common case of uncommitted edits.
#pragma once

#include <string>

namespace wtcp::core {

struct Provenance {
  std::string git_sha;     ///< HEAD commit, or "unknown" outside a checkout
  bool git_dirty = false;  ///< working tree had local modifications
  std::string compiler;    ///< "<id> <version>", e.g. "GNU 13.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string flags;       ///< "audit=<0|1> trace=<0|1> sanitize=<list>"
};

/// The provenance baked into this build.  Never fails; fields degrade to
/// "unknown"/empty when the information was unavailable at configure time.
const Provenance& build_provenance();

}  // namespace wtcp::core
