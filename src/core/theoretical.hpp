// Theoretical throughput bounds from the paper's Section 5:
//
//   tput_max : effective wireless throughput with no errors — the raw link
//              rate divided by the framing/FEC overhead (19.2 kbps * 2/3 =
//              12.8 kbps wide-area; 2 Mbps local-area).
//   tput_th  : the maximum in the presence of burst errors,
//              tput_th = lambda_bg / (lambda_bg + lambda_gb) * tput_max
//                      = mean_good / (mean_good + mean_bad) * tput_max,
//              i.e. the good-state time fraction times tput_max.
#pragma once

#include "src/net/link.hpp"
#include "src/phy/gilbert_elliott.hpp"

namespace wtcp::core {

/// Effective (post-overhead) throughput of a link in bits/second.
double effective_bandwidth_bps(const net::LinkConfig& link);

/// tput_th for a given channel and effective error-free throughput.
double theoretical_max_throughput_bps(const phy::GilbertElliottConfig& channel,
                                      double tput_max_bps);

/// Convenience: tput_th straight from link + channel configs.
double theoretical_max_throughput_bps(const net::LinkConfig& wireless,
                                      const phy::GilbertElliottConfig& channel);

}  // namespace wtcp::core
