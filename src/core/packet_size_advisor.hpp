// Packet-size variation (paper Section 4.1).
//
// The optimal wired packet size depends on the wireless error conditions;
// the paper proposes "maintaining a fixed table at each base station which
// maps a particular wireless link error characteristic to the good packet
// size for that error characteristic".  PacketSizeAdvisor builds exactly
// that table by sweeping candidate sizes against bad-period lengths, and
// answers recommendations by nearest error characteristic.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topo/scenario.hpp"

namespace wtcp::core {

struct PacketSizeEntry {
  double mean_bad_s = 0.0;         ///< error characteristic (bad-period mean)
  std::int32_t packet_size = 0;    ///< best total packet size found
  double throughput_bps = 0.0;     ///< throughput at the best size
  double worst_throughput_bps = 0.0;  ///< worst candidate (for the win ratio)
};

class PacketSizeAdvisor {
 public:
  /// Sweep `sizes` x `bad_periods` on top of `base` (each point averaged
  /// over `seeds` runs) and record the best size per bad period.
  static PacketSizeAdvisor build(const topo::ScenarioConfig& base,
                                 const std::vector<std::int32_t>& sizes,
                                 const std::vector<double>& bad_periods_s,
                                 int seeds = 3);

  /// Construct from a precomputed table (deployments would ship this).
  explicit PacketSizeAdvisor(std::vector<PacketSizeEntry> table);

  /// Best packet size for the nearest known error characteristic.
  std::int32_t recommend(double mean_bad_s) const;

  /// The entry backing a recommendation (nearest characteristic).
  const PacketSizeEntry& entry_for(double mean_bad_s) const;

  const std::vector<PacketSizeEntry>& table() const { return table_; }

 private:
  std::vector<PacketSizeEntry> table_;  ///< sorted by mean_bad_s
};

}  // namespace wtcp::core
