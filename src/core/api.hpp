// Umbrella header: the public API of wtcp.
//
//   #include "src/core/api.hpp"
//
//   wtcp::topo::ScenarioConfig cfg = wtcp::topo::wan_scenario();
//   cfg.local_recovery = true;
//   cfg.feedback = wtcp::topo::FeedbackMode::kEbsn;
//   wtcp::stats::RunMetrics m = wtcp::topo::run_scenario(cfg);
//
// See examples/quickstart.cpp for a guided tour.
#pragma once

#include "src/core/checkpoint.hpp"
#include "src/core/ebsn.hpp"
#include "src/core/experiment.hpp"
#include "src/core/packet_size_advisor.hpp"
#include "src/core/parallel.hpp"
#include "src/core/theoretical.hpp"
#include "src/feedback/snoop_agent.hpp"
#include "src/feedback/source_quench.hpp"
#include "src/link/bs_scheduler.hpp"
#include "src/link/fragmentation.hpp"
#include "src/link/link_arq.hpp"
#include "src/link/wireless_link.hpp"
#include "src/mobility/handoff.hpp"
#include "src/net/link.hpp"
#include "src/net/medium.hpp"
#include "src/net/node.hpp"
#include "src/net/packet.hpp"
#include "src/net/queue.hpp"
#include "src/obs/export.hpp"
#include "src/obs/json.hpp"
#include "src/obs/probe.hpp"
#include "src/obs/sampler.hpp"
#include "src/phy/error_model.hpp"
#include "src/phy/gilbert_elliott.hpp"
#include "src/phy/trace_driven.hpp"
#include "src/sim/logging.hpp"
#include "src/sim/random.hpp"
#include "src/sim/scheduler.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/time.hpp"
#include "src/stats/metrics.hpp"
#include "src/stats/net_trace.hpp"
#include "src/stats/quantiles.hpp"
#include "src/stats/summary.hpp"
#include "src/stats/table.hpp"
#include "src/stats/trace.hpp"
#include "src/tcp/rto_estimator.hpp"
#include "src/tcp/tahoe_sender.hpp"
#include "src/tcp/tcp_sink.hpp"
#include "src/topo/multi_scenario.hpp"
#include "src/topo/scenario.hpp"
#include "src/traffic/background.hpp"
