#include "src/core/experiment.hpp"

namespace wtcp::core {

void MetricsSummary::add(const stats::RunMetrics& m) {
  ++runs_total;
  if (m.completed) ++runs_completed;
  throughput_bps.add(m.throughput_bps);
  goodput.add(m.goodput);
  timeouts.add(static_cast<double>(m.timeouts));
  retransmitted_kbytes.add(m.retransmitted_kbytes());
  duration_s.add(m.duration.to_seconds());
  ebsn_received.add(static_cast<double>(m.ebsn_received));
  quench_received.add(static_cast<double>(m.quench_received));
}

MetricsSummary run_seeds(topo::ScenarioConfig cfg, int n_seeds,
                         std::uint64_t base_seed) {
  MetricsSummary summary;
  for (int i = 0; i < n_seeds; ++i) {
    cfg.seed = base_seed + static_cast<std::uint64_t>(i);
    summary.add(topo::run_scenario(cfg));
  }
  return summary;
}

double measure_error_free_throughput_bps(topo::ScenarioConfig cfg) {
  cfg.channel_errors = false;
  cfg.local_recovery = false;
  cfg.feedback = topo::FeedbackMode::kNone;
  const stats::RunMetrics m = topo::run_scenario(cfg);
  return m.throughput_bps;
}

}  // namespace wtcp::core
