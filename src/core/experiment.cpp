#include "src/core/experiment.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>

#include "src/core/checkpoint.hpp"
#include "src/core/provenance.hpp"
#include "src/obs/export.hpp"
#include "src/obs/json.hpp"
#include "src/obs/probe.hpp"
#include "src/obs/sampler.hpp"

namespace wtcp::core {

void MetricsSummary::add(const stats::RunMetrics& m) {
  ++runs_total;
  if (m.completed) ++runs_completed;
  throughput_bps.add(m.throughput_bps);
  goodput.add(m.goodput);
  timeouts.add(static_cast<double>(m.timeouts));
  retransmitted_kbytes.add(m.retransmitted_kbytes());
  duration_s.add(m.duration.to_seconds());
  ebsn_received.add(static_cast<double>(m.ebsn_received));
  quench_received.add(static_cast<double>(m.quench_received));
}

void MetricsSummary::add_failure() {
  ++runs_total;
  ++runs_failed;
}

MetricsSummary run_seeds_inspect(
    topo::ScenarioConfig cfg, int n_seeds, std::uint64_t base_seed, int jobs,
    const std::function<void(int, topo::Scenario&, const stats::RunMetrics&)>&
        inspect,
    std::vector<SeedOutcome>* outcomes) {
  if (outcomes) outcomes->clear();
  if (n_seeds <= 0) return {};
  const std::size_t n = static_cast<std::size_t>(n_seeds);
  std::vector<stats::RunMetrics> metrics(n);
  // A budget-killed run produces partial metrics that must not be folded;
  // the watchdog verdict is captured here on the worker thread.
  std::vector<sim::RunOutcome> watchdog(n);
  const std::vector<IndexOutcome> contained =
      ParallelRunner(jobs).for_each_index_contained(n, [&](std::size_t i) {
        topo::ScenarioConfig run_cfg = cfg;
        run_cfg.seed = base_seed + i;
        topo::Scenario scenario(run_cfg);
        metrics[i] = scenario.run();
        watchdog[i] = scenario.simulator().outcome();
        if (watchdog[i].ok() && inspect) {
          inspect(static_cast<int>(i), scenario, metrics[i]);
        }
      });
  // Fold in seed order: Summary accumulation is order-sensitive in the
  // last floating-point bit, and byte-identical output is the contract.
  // Failed seeds (exception or watchdog) are counted, never folded.
  MetricsSummary summary;
  for (std::size_t i = 0; i < n; ++i) {
    SeedOutcome outcome;
    outcome.seed = base_seed + i;
    if (!contained[i].ok) {
      outcome.status = sim::RunStatus::kException;
      outcome.message = contained[i].error;
    } else if (!watchdog[i].ok()) {
      outcome.status = watchdog[i].status;
      outcome.message = watchdog[i].message;
    }
    if (outcome.ok()) {
      summary.add(metrics[i]);
    } else {
      summary.add_failure();
    }
    if (outcomes) outcomes->push_back(std::move(outcome));
  }
  return summary;
}

MetricsSummary run_seeds(topo::ScenarioConfig cfg, int n_seeds,
                         std::uint64_t base_seed, int jobs,
                         std::vector<SeedOutcome>* outcomes) {
  return run_seeds_inspect(std::move(cfg), n_seeds, base_seed, jobs, nullptr,
                           outcomes);
}

double measure_error_free_throughput_bps(topo::ScenarioConfig cfg) {
  cfg.channel_errors = false;
  cfg.local_recovery = false;
  cfg.feedback = topo::FeedbackMode::kNone;
  const stats::RunMetrics m = topo::run_scenario(cfg);
  return m.throughput_bps;
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

std::string describe_config(const topo::ScenarioConfig& cfg) {
  std::ostringstream os;
  os << "wired=" << cfg.wired.name << ":" << cfg.wired.bandwidth_bps << "bps:"
     << cfg.wired.prop_delay.ns() << "ns:q" << cfg.wired.queue_packets
     << " hops=" << cfg.wired_hops
     << " wireless=" << cfg.wireless.name << ":" << cfg.wireless.bandwidth_bps
     << "bps:" << cfg.wireless.prop_delay.ns() << "ns:oh"
     << cfg.wireless.overhead_num << "/" << cfg.wireless.overhead_den
     << (cfg.wireless.half_duplex ? ":half" : ":full")
     << " channel=" << (cfg.channel_errors ? "on" : "off");
  if (cfg.channel_errors) {
    if (!cfg.fade_trace_file.empty()) {
      os << ":trace=" << cfg.fade_trace_file;
    } else {
      os << (cfg.deterministic_channel ? ":det" : ":stoch") << ":bg"
         << cfg.channel.ber_good << ":bb" << cfg.channel.ber_bad << ":g"
         << cfg.channel.mean_good_s << "s:b" << cfg.channel.mean_bad_s << "s";
    }
  }
  os << " tcp=" << tcp::to_string(cfg.tcp.flavor) << ":mss" << cfg.tcp.mss
     << ":hdr" << cfg.tcp.header_bytes << ":win" << cfg.tcp.window_bytes
     << ":file" << cfg.tcp.file_bytes << ":dup" << cfg.tcp.dupack_threshold
     << ":tick" << cfg.tcp.rto.granularity.ns() << "ns"
     << (cfg.tcp.delayed_ack ? ":delack" : "")
     << (cfg.tcp.connect_handshake ? ":handshake" : "")
     << (cfg.tcp.sack_enabled ? ":sack" : "");
  if (cfg.tcp.ack_pacing) {
    // Appended only when on so pre-existing configs keep their digests.
    os << ":ackpace" << cfg.tcp.ack_pacing_interval.ns() << "ns";
  }
  os << " dir=" << topo::to_string(cfg.direction)
     << " arq=" << (cfg.local_recovery ? "on" : "off");
  if (cfg.local_recovery) {
    os << ":rt" << cfg.arq.rt_max << ":w" << cfg.arq.window;
  }
  os << " mtu=" << cfg.wireless_mtu_bytes
     << " feedback=" << topo::to_string(cfg.feedback)
     << " snoop=" << (cfg.snoop ? "on" : "off")
     << " handoff=" << (cfg.handoff.enabled ? "on" : "off")
     << " xtraffic=" << (cfg.cross_traffic ? "on" : "off")
     << " horizon=" << cfg.horizon.ns() << "ns";
  if (cfg.budget.armed()) {
    // Appended only when armed so every pre-existing (budget-free) config
    // keeps its exact description and digest.
    os << " budget=ev" << cfg.budget.max_events;
    if (cfg.budget.max_virtual_time != sim::Time::max()) {
      os << ":vt" << cfg.budget.max_virtual_time.ns() << "ns";
    }
    // max_wall_seconds deliberately excluded: it cannot affect the result
    // of a run that finishes, and a digest must not depend on a
    // machine-speed knob.
  }
  if (cfg.trace.enabled) {
    // Appended only when enabled, so every pre-existing (untraced) config
    // keeps its exact description and digest.  Output paths are excluded:
    // where a trace lands cannot affect the run.
    os << " trace=cap" << cfg.trace.capacity;
  }
  return os.str();
}

std::string config_digest(const topo::ScenarioConfig& cfg) {
  // FNV-1a, 64-bit.
  const std::string desc = describe_config(cfg);
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : desc) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return std::string(buf);
}

namespace {

void write_metrics(obs::JsonWriter& w, const stats::RunMetrics& m) {
  w.key("metrics").begin_object();
  w.field("completed", m.completed);
  w.field("duration_s", m.duration.to_seconds());
  w.field("throughput_bps", m.throughput_bps);
  w.field("goodput", m.goodput);
  w.field("timeouts", m.timeouts);
  w.field("fast_retransmits", m.fast_retransmits);
  w.field("segments_sent", m.segments_sent);
  w.field("segments_retransmitted", m.segments_retransmitted);
  w.field("retransmitted_bytes", static_cast<std::int64_t>(m.retransmitted_bytes));
  w.field("ebsn_sent", m.ebsn_sent);
  w.field("ebsn_received", m.ebsn_received);
  w.field("quench_sent", m.quench_sent);
  w.field("quench_received", m.quench_received);
  w.field("wireless_frames_corrupted", m.wireless_frames_corrupted);
  w.field("arq_attempts", m.arq_attempts);
  w.field("arq_retransmissions", m.arq_retransmissions);
  w.field("arq_discards", m.arq_discards);
  w.field("delay_p50_s", m.delay_p50_s);
  w.field("delay_p95_s", m.delay_p95_s);
  w.field("delay_max_s", m.delay_max_s);
  w.end_object();
}

void write_summary_stat(obs::JsonWriter& w, std::string_view name,
                        const stats::Summary& s) {
  w.key(name).begin_object();
  w.field("count", static_cast<std::uint64_t>(s.count()));
  w.field("mean", s.mean());
  w.field("stddev", s.stddev());
  w.field("min", s.min());
  w.field("max", s.max());
  w.end_object();
}

void write_histogram(obs::JsonWriter& w, std::string_view name,
                     const obs::Histogram& h) {
  w.key(name).begin_object();
  w.field("count", h.count);
  w.field("mean", h.mean());
  w.field("min", h.min);
  w.field("max", h.max);
  w.field("p50", h.quantile(0.50));
  w.field("p90", h.quantile(0.90));
  w.field("p95", h.quantile(0.95));
  w.field("p99", h.quantile(0.99));
  w.end_object();
}

}  // namespace

void write_manifest(std::ostream& os, const RunReport& report) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("config", report.config_description);
  w.field("digest", report.digest);
  // Build/run provenance: which tree and toolchain produced this file.
  // Deliberately NOT part of describe_config/config_digest — the same
  // configuration must keep its digest across commits and compilers.
  const Provenance& prov = build_provenance();
  w.key("provenance").begin_object();
  w.field("git_sha", prov.git_sha + (prov.git_dirty ? "-dirty" : ""));
  w.field("compiler", prov.compiler);
  w.field("build_type", prov.build_type);
  w.field("flags", prov.flags);
  w.end_object();
  w.field("seeds", static_cast<std::uint64_t>(report.seeds.size()));

  w.key("per_seed").begin_array();
  for (const SeedRunReport& sr : report.seeds) {
    w.begin_object();
    w.field("seed", sr.seed);
    w.field("outcome", sim::to_string(sr.status));
    if (!sr.ok()) {
      // A failed seed has nothing but its verdict: no metrics were
      // produced (exception) or they are partial garbage (watchdog).
      w.field("error", sr.error);
      w.end_object();
      continue;
    }
    w.field("wall_seconds", sr.wall_seconds);
    w.field("events_executed", sr.events_executed);
    w.field("max_event_queue_depth",
            static_cast<std::uint64_t>(sr.max_event_queue_depth));
    w.field("obs_events", static_cast<std::uint64_t>(sr.obs_events));
    w.field("obs_samples", static_cast<std::uint64_t>(sr.obs_samples));
    write_metrics(w, sr.metrics);
    w.key("counters").begin_object();
    for (const auto& [name, v] : sr.counters) w.field(name, v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, v] : sr.gauges) w.field(name, v);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : sr.histograms) write_histogram(w, name, h);
    w.end_object();
    w.key("scheduler_profile").begin_object();
    for (const auto& [tag, n] : sr.executed_by_tag) w.field(tag, n);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("aggregate").begin_object();
  w.field("runs_total", report.summary.runs_total);
  w.field("runs_completed", report.summary.runs_completed);
  w.field("runs_failed", report.summary.runs_failed);
  w.field("runs_incomplete", report.summary.runs_incomplete());
  write_summary_stat(w, "throughput_bps", report.summary.throughput_bps);
  write_summary_stat(w, "goodput", report.summary.goodput);
  write_summary_stat(w, "timeouts", report.summary.timeouts);
  write_summary_stat(w, "retransmitted_kbytes",
                     report.summary.retransmitted_kbytes);
  write_summary_stat(w, "duration_s", report.summary.duration_s);
  // Mergeable histograms: fold every ok seed's distribution into one —
  // the fixed bucket layout makes the merge exact.
  std::map<std::string, obs::Histogram> merged;
  for (const SeedRunReport& sr : report.seeds) {
    if (!sr.ok()) continue;
    for (const auto& [name, h] : sr.histograms) merged[name].merge(h);
  }
  w.key("histograms").begin_object();
  for (const auto& [name, h] : merged) write_histogram(w, name, h);
  w.end_object();
  w.end_object();

  w.end_object();
  os << '\n';
}

RunReport run_seeds_reported(topo::ScenarioConfig cfg, int n_seeds,
                             std::uint64_t base_seed,
                             const ReportOptions& opts) {
  cfg.obs.enabled = true;
  cfg.obs.sample_interval = opts.sample_interval;
  cfg.obs.profile_scheduler = opts.profile_scheduler;

  RunReport report;
  report.config_description = describe_config(cfg);
  report.digest = config_digest(cfg);

  const bool to_files = !opts.out_stem.empty();
  const bool checkpointing = !opts.checkpoint_path.empty();
  // Checkpoint entries must carry the rendered file sections so a resumed
  // sweep can reassemble byte-identical output without re-running.
  const bool render_sections = to_files || checkpointing;

  const std::size_t n =
      n_seeds > 0 ? static_cast<std::size_t>(n_seeds) : std::size_t{0};
  std::vector<CheckpointEntry> per_seed(n);

  // Resume: restore seeds already journaled for this exact config digest.
  // Everything is keyed by seed, so "--seeds 3 then --seeds 40 --resume"
  // composes naturally.
  std::vector<bool> restored(n, false);
  if (checkpointing && opts.resume) {
    CheckpointLoad load =
        load_checkpoint_file(opts.checkpoint_path, report.digest);
    for (CheckpointEntry& entry : load.entries) {
      if (entry.report.seed < base_seed) continue;
      const std::uint64_t idx64 = entry.report.seed - base_seed;
      if (idx64 >= n) continue;
      const std::size_t i = static_cast<std::size_t>(idx64);
      entry.index = i;
      per_seed[i] = std::move(entry);
      restored[i] = true;
    }
  }

  std::unique_ptr<CheckpointWriter> journal;
  if (checkpointing) {
    journal = std::make_unique<CheckpointWriter>(
        opts.checkpoint_path, report.digest, /*append=*/opts.resume);
  }

  const std::vector<IndexOutcome> contained =
      ParallelRunner(opts.jobs).for_each_index_contained(n, [&](std::size_t i) {
        if (restored[i]) return;
        topo::ScenarioConfig run_cfg = cfg;
        run_cfg.seed = base_seed + i;
        topo::Scenario scenario(run_cfg);
        if (opts.pre_run) opts.pre_run(i, scenario);
        const stats::RunMetrics m = scenario.run();
        const sim::RunOutcome& outcome = scenario.simulator().outcome();
        if (!outcome.ok()) {
          // Watchdog verdicts are recorded inline (not via exception):
          // the partial metrics are discarded, only the verdict survives.
          per_seed[i].report.seed = run_cfg.seed;
          per_seed[i].report.status = outcome.status;
          per_seed[i].report.error = outcome.message;
          return;
        }

        const obs::Registry& reg = *scenario.probes();
        SeedRunReport sr;
        sr.seed = run_cfg.seed;
        sr.metrics = m;
        sr.wall_seconds = scenario.simulator().wall_seconds();
        sr.events_executed = scenario.simulator().scheduler().executed_count();
        sr.max_event_queue_depth =
            scenario.simulator().scheduler().max_pending_depth();
        sr.obs_events = reg.events().size();
        sr.obs_samples = scenario.sampler()->sample_count();
        for (const auto& [name, c] : reg.counters()) sr.counters[name] = c.value;
        for (const auto& [name, g] : reg.gauges()) sr.gauges[name] = g.value;
        for (const auto& [name, h] : reg.histograms()) sr.histograms[name] = h;
        for (const auto& [tag, cnt] :
             scenario.simulator().scheduler().executed_by_tag()) {
          sr.executed_by_tag[tag] = cnt;
        }

        if (render_sections) {
          // Event names/components are string literals inside live
          // components: export while the scenario still exists.
          std::ostringstream events_os;
          obs::write_events_jsonl(events_os, reg,
                                  static_cast<std::int64_t>(run_cfg.seed));
          per_seed[i].events_jsonl = std::move(events_os).str();
          std::ostringstream series_os;
          scenario.sampler()->series().write_csv(
              series_os, static_cast<std::int64_t>(run_cfg.seed),
              /*header=*/i == 0);
          per_seed[i].series_csv = std::move(series_os).str();
        }
        per_seed[i].index = i;
        per_seed[i].report = std::move(sr);
        if (journal && journal->is_open()) journal->append(per_seed[i]);
      });

  for (std::size_t i = 0; i < n; ++i) {
    SeedRunReport& sr = per_seed[i].report;
    if (!contained[i].ok) {
      // The seed (or a hook) threw: nothing usable was recorded.
      sr = SeedRunReport{};
      sr.seed = base_seed + i;
      sr.status = sim::RunStatus::kException;
      sr.error = contained[i].error;
    }
    if (sr.ok()) {
      report.summary.add(sr.metrics);
    } else {
      report.summary.add_failure();
    }
    report.seeds.push_back(std::move(sr));
  }

  if (to_files) {
    std::ofstream events_out(opts.out_stem + ".jsonl");
    std::ofstream series_out(opts.out_stem + ".series.csv");
    for (const CheckpointEntry& ps : per_seed) {
      events_out << ps.events_jsonl;
      series_out << ps.series_csv;
    }
    std::ofstream manifest_out(opts.out_stem + ".manifest.json");
    write_manifest(manifest_out, report);
  }
  return report;
}

}  // namespace wtcp::core
