// Simulation time: a strong int64 nanosecond type.
//
// All of wtcp runs on integer nanoseconds so that event ordering is exact
// and runs are bit-reproducible across platforms.  Helpers convert to and
// from seconds/milliseconds and compute serialization delays for a given
// bit rate with round-to-nearest semantics.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace wtcp::sim {

/// A point in simulated time (or a duration), in integer nanoseconds.
///
/// Time is a regular value type: totally ordered, hashable, cheap to copy.
/// Arithmetic between two Times yields a Time (durations and instants share
/// the representation, as in ns-3's Time class).
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors.
  static constexpr Time nanoseconds(std::int64_t ns) { return Time{ns}; }
  static constexpr Time microseconds(std::int64_t us) { return Time{us * 1'000}; }
  static constexpr Time milliseconds(std::int64_t ms) { return Time{ms * 1'000'000}; }
  static constexpr Time seconds(std::int64_t s) { return Time{s * 1'000'000'000}; }
  /// Fractional seconds, rounded to the nearest nanosecond.
  static Time from_seconds(double s);
  /// Fractional milliseconds, rounded to the nearest nanosecond.
  static Time from_milliseconds(double ms);

  /// The largest representable time; used as "never".
  static constexpr Time max() { return Time{std::numeric_limits<std::int64_t>::max()}; }
  static constexpr Time zero() { return Time{0}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_milliseconds() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr auto operator<=>(Time a, Time b) = default;

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  constexpr Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  constexpr Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ns_ / k}; }
  /// Ratio of two durations.
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  /// Scale by a double, rounding to nearest nanosecond (for backoff jitter).
  Time scaled(double factor) const;

  /// "12.345678s" style human-readable rendering.
  std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// Serialization delay of `bytes` at `bits_per_second`, rounded up to a
/// whole nanosecond so that back-to-back transmissions never overlap.
Time transmission_time(std::int64_t bytes, std::int64_t bits_per_second);

/// Number of bits that fit in duration `d` at `bits_per_second` (floor).
std::int64_t bits_in(Time d, std::int64_t bits_per_second);

}  // namespace wtcp::sim
