// Event handles for the discrete-event scheduler.
#pragma once

#include <cstdint>

namespace wtcp::sim {

/// Opaque handle to a scheduled event.  Default-constructed handles are
/// invalid; a handle becomes stale (harmlessly) once its event fires or is
/// cancelled.
class EventId {
 public:
  constexpr EventId() = default;

  constexpr bool valid() const { return id_ != 0; }
  constexpr std::uint64_t raw() const { return id_; }

  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class Scheduler;
  explicit constexpr EventId(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

}  // namespace wtcp::sim
