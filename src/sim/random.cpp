#include "src/sim/random.hpp"

#include <cassert>
#include <cmath>

namespace wtcp::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : seed_(seed), stream_(stream) {
  std::uint64_t sm = seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state (probability ~2^-256 anyway).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::string_view label) const {
  return Rng(seed_, stream_ * 0x9e3779b97f4a7c15ULL + fnv1a(label));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Modulo bias is < 2^-40 for any range < 2^24; acceptable for simulation.
  return lo + static_cast<std::int64_t>(next_u64() % range);
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);  // guard log(0)
  return -mean * std::log(u);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace wtcp::sim
