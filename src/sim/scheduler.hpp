// Discrete-event scheduler: a binary heap of (time, seq) keyed events with
// O(log n) scheduling and O(1) lazy cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/event.hpp"
#include "src/sim/time.hpp"

namespace wtcp::sim {

/// The event queue at the heart of the simulator.
///
/// Events scheduled for the same instant fire in insertion order, which
/// makes runs deterministic.  Cancellation is lazy: the heap entry stays
/// behind and is skipped when popped.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.  Advances only inside run_one().
  Time now() const { return now_; }

  /// Schedule `cb` to run at absolute time `at` (must be >= now()).
  /// `tag` labels the event's component for profiling; it must be a
  /// string literal (or otherwise outlive the scheduler).
  EventId schedule_at(Time at, Callback cb, const char* tag = nullptr);

  /// Schedule `cb` to run `delay` from now (delay clamped to >= 0).
  EventId schedule_after(Time delay, Callback cb, const char* tag = nullptr);

  /// Cancel a pending event.  Returns true if the event was still pending.
  /// Safe to call with invalid/stale handles.
  bool cancel(EventId id);

  /// True if `id` refers to an event that has not yet fired or been
  /// cancelled.
  bool pending(EventId id) const { return callbacks_.contains(id.raw()); }

  /// Number of live (non-cancelled) pending events.
  std::size_t pending_count() const { return callbacks_.size(); }
  bool empty() const { return callbacks_.empty(); }

  /// Time of the earliest live event, or Time::max() if none.
  Time next_event_time();

  /// Pop and run the earliest event.  Returns false if the queue is empty.
  bool run_one();

  /// Run until the queue drains or `until` is reached (events at exactly
  /// `until` DO run).  Returns the number of events executed.
  std::uint64_t run_until(Time until);

  /// Run until the queue drains.
  std::uint64_t run();

  /// Drop all pending events (used between experiment runs).
  void clear();

  /// Total events executed over the scheduler's lifetime.
  std::uint64_t executed_count() const { return executed_; }

  /// High-water mark of live (non-cancelled) pending events.
  std::size_t max_pending_depth() const { return max_depth_; }

  /// Start counting executed events per schedule-site tag (untagged
  /// events land under "untagged").  Off by default: the per-event map
  /// lookup is the one profiling cost worth gating.
  void enable_profiling() { profiling_ = true; }
  bool profiling_enabled() const { return profiling_; }
  const std::map<std::string, std::uint64_t, std::less<>>& executed_by_tag() const {
    return executed_by_tag_;
  }

 private:
  struct HeapEntry {
    Time at;
    std::uint64_t seq;  // tie-break: insertion order
    std::uint64_t id;
    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  struct Entry {
    Callback cb;
    const char* tag;  ///< nullptr = untagged
  };

  Time now_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t max_depth_ = 0;
  bool profiling_ = false;
  std::map<std::string, std::uint64_t, std::less<>> executed_by_tag_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Entry> callbacks_;
};

}  // namespace wtcp::sim
