// Discrete-event scheduler: a binary heap of (time, seq) keyed events over
// a slot pool, with O(log n) scheduling and O(1) array-indexed
// validate/cancel.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/callback.hpp"
#include "src/sim/event.hpp"
#include "src/sim/time.hpp"

namespace wtcp::sim {

/// The event queue at the heart of the simulator.
///
/// Events scheduled for the same instant fire in insertion order, which
/// makes runs deterministic.  Cancellation is lazy: the heap entry stays
/// behind and is skipped when popped.
///
/// Hot-path design (the figure benches run hundreds of simulations per
/// data point, so per-event constants dominate wall-clock):
///   * callbacks live in a slot pool, recycled through a free list — no
///     per-event hash-map insert/erase;
///   * handles are (slot, generation) pairs, so validate/cancel is one
///     array index plus a generation compare;
///   * SmallCallback stores the capture inline in the slot — no per-event
///     std::function heap allocation;
///   * the heap is an open-coded std::push_heap/pop_heap vector with
///     reserved storage (priority_queue cannot reserve).
class Scheduler {
 public:
  using Callback = SmallCallback;

  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.  Advances only inside run_one().
  Time now() const { return now_; }

  /// Schedule `cb` to run at absolute time `at` (must be >= now()).
  /// `tag` labels the event's component for profiling; it must be a
  /// string literal (or otherwise outlive the scheduler).
  EventId schedule_at(Time at, Callback cb, const char* tag = nullptr);

  /// Schedule `cb` to run `delay` from now (delay clamped to >= 0).
  EventId schedule_after(Time delay, Callback cb, const char* tag = nullptr);

  /// Cancel a pending event.  Returns true if the event was still pending.
  /// Safe to call with invalid/stale handles.
  bool cancel(EventId id);

  /// True if `id` refers to an event that has not yet fired or been
  /// cancelled.  A slot's generation bumps on every recycle, so stale
  /// handles stay harmlessly invalid.
  bool pending(EventId id) const {
    const std::uint32_t s = slot_of(id);
    return s < slots_.size() && slots_[s].live && slots_[s].gen == gen_of(id);
  }

  /// Number of live (non-cancelled) pending events.
  std::size_t pending_count() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Time of the earliest live event, or Time::max() if none.
  Time next_event_time();

  /// Pop and run the earliest event.  Returns false if the queue is empty.
  bool run_one();

  /// Run until the queue drains or `until` is reached (events at exactly
  /// `until` DO run).  Returns the number of events executed.
  std::uint64_t run_until(Time until);

  /// Run until the queue drains.
  std::uint64_t run();

  /// Drop all pending events (used between experiment runs).
  void clear();

  /// Pre-size the heap and slot pool for `events` concurrently pending
  /// events.  Purely a performance knob (both grow on demand): benches
  /// with a known worst-case depth call this so slot-pool growth never
  /// lands inside the measured region.
  void reserve(std::size_t events);

  /// Total events executed over the scheduler's lifetime.
  std::uint64_t executed_count() const { return executed_; }

  /// High-water mark of live (non-cancelled) pending events.
  std::size_t max_pending_depth() const { return max_depth_; }

  /// Start counting executed events per schedule-site tag (untagged
  /// events land under "untagged").  Off by default.  Counts are keyed by
  /// the tag POINTER on the hot path (no string construction per event);
  /// executed_by_tag() merges same-content tags at export time.
  void enable_profiling() { profiling_ = true; }
  bool profiling_enabled() const { return profiling_; }
  std::map<std::string, std::uint64_t, std::less<>> executed_by_tag() const;

 private:
  struct HeapEntry {
    Time at;
    std::uint64_t seq;  // tie-break: insertion order
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Comparator for std::push_heap/pop_heap: "a fires after b" puts the
  /// earliest (time, seq) at the front of the max-heap.
  struct FiresLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    Callback cb;
    const char* tag = nullptr;       ///< nullptr = untagged
    std::uint32_t gen = 0;           ///< bumped on every release
    std::uint32_t next_free = kNoSlot;  ///< intrusive free-list link
    bool live = false;
  };

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id.raw() & 0xffffffffu) - 1;
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id.raw() >> 32);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return EventId{(static_cast<std::uint64_t>(gen) << 32) |
                   (static_cast<std::uint64_t>(slot) + 1)};
  }

  /// Return a slot to the free list (callback already destroyed or moved
  /// out) and invalidate outstanding handles to it.
  void release_slot(std::uint32_t s);

  Time now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::size_t max_depth_ = 0;
  bool profiling_ = false;
  std::unordered_map<const char*, std::uint64_t> tag_hits_;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;  ///< head of the intrusive free list
};

}  // namespace wtcp::sim
