// Discrete-event scheduler with two interchangeable event cores sharing
// one generation-counted slot pool:
//
//   * a hierarchical timing wheel (the default): kWheelLevels levels of
//     kWheelBuckets buckets (4 x 1024) over the nanosecond Time domain,
//     cascading on rollover, giving O(1) schedule and O(1) cancel with
//     true unlinking; and
//   * the previous std::push_heap/pop_heap binary heap with lazy
//     tombstones, kept behind the WTCP_SCHED switch for A/B bisection.
//
// Both cores fire events in exactly the same (time, seq) order, so runs
// are bit-identical whichever is selected (tests/sim/scheduler_wheel_test
// drives both in lockstep on randomized traces to prove it).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/callback.hpp"
#include "src/sim/event.hpp"
#include "src/sim/time.hpp"

namespace wtcp::sim {

/// Which event core a Scheduler runs on.  The wheel is the production
/// default; the heap is retained so a perf or determinism bisection can
/// flip one environment variable instead of reverting the rework.
enum class SchedulerImpl : std::uint8_t { kHeap, kWheel };

const char* to_string(SchedulerImpl impl);

/// The event queue at the heart of the simulator.
///
/// Events scheduled for the same instant fire in insertion order, which
/// makes runs deterministic.
///
/// Hot-path design (the figure benches run hundreds of simulations per
/// data point, so per-event constants dominate wall-clock):
///   * callbacks live in a slot pool, recycled through a free list — no
///     per-event hash-map insert/erase;
///   * handles are (slot, generation) pairs, so validate/cancel is one
///     array index plus a generation compare;
///   * SmallCallback stores the capture inline in the slot — no per-event
///     std::function heap allocation;
///   * the default event core is a hierarchical timing wheel: schedule is
///     an O(1) append into the bucket picked by the delay's magnitude,
///     cancel is an O(1) swap-remove (true removal, no tombstone), and
///     buckets cascade one level down as simulated time rolls over their
///     span.  Event horizons here are short and regular (serialization
///     delays, 100 ms RTO ticks) — the worst case for a comparison heap
///     and the best case for a wheel;
///   * the legacy binary-heap core (O(log n) schedule, lazy cancellation
///     with tombstone compaction) stays selectable via WTCP_SCHED=heap.
class Scheduler {
 public:
  using Callback = SmallCallback;

  explicit Scheduler(SchedulerImpl impl = default_impl());
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Event-core selection for default-constructed schedulers: the
  /// WTCP_SCHED environment variable ("heap" or "wheel") wins, then the
  /// WTCP_SCHED cmake cache default.  Read per construction, so tests can
  /// flip the variable between runs; an unknown value aborts loudly
  /// rather than silently benchmarking the wrong core.
  static SchedulerImpl default_impl();
  SchedulerImpl impl() const { return impl_; }

  /// Current simulated time.  Advances only inside run_one()/run_until().
  Time now() const { return now_; }

  /// Schedule `cb` to run at absolute time `at` (must be >= now()).
  /// `tag` labels the event's component for profiling; it must be a
  /// string literal (or otherwise outlive the scheduler).
  EventId schedule_at(Time at, Callback cb, const char* tag = nullptr);

  /// Schedule `cb` to run `delay` from now (delay clamped to >= 0).
  EventId schedule_after(Time delay, Callback cb, const char* tag = nullptr);

  /// Cancel a pending event.  Returns true if the event was still pending.
  /// Safe to call with invalid/stale handles.
  bool cancel(EventId id);

  /// True if `id` refers to an event that has not yet fired or been
  /// cancelled.  A slot's generation bumps on every recycle, so stale
  /// handles stay harmlessly invalid.
  bool pending(EventId id) const {
    const std::uint32_t s = slot_of(id);
    if (s >= slot_count_) return false;
    const Slot& slot = slot_ref(s);
    return slot.live && slot.gen == gen_of(id);
  }

  /// Number of live (non-cancelled) pending events.
  std::size_t pending_count() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Time of the earliest live event, or Time::max() if none.
  Time next_event_time();

  /// Pop and run the earliest event.  Returns false if the queue is empty.
  bool run_one();

  /// Run until the queue drains or `until` is reached (events at exactly
  /// `until` DO run).  Returns the number of events executed.
  std::uint64_t run_until(Time until);

  /// Run until the queue drains.
  std::uint64_t run();

  /// Drop all pending events (used between experiment runs).
  void clear();

  /// Pre-size the slot pool (and heap, for the heap core) for `events`
  /// concurrently pending events.  Purely a performance knob (both grow
  /// on demand): benches with a known worst-case depth call this so
  /// slot-pool growth never lands inside the measured region.
  void reserve(std::size_t events);

  /// Total events executed over the scheduler's lifetime.
  std::uint64_t executed_count() const { return executed_; }

  /// High-water mark of live (non-cancelled) pending events.
  std::size_t max_pending_depth() const { return max_depth_; }

  /// Start counting executed events per schedule-site tag (untagged
  /// events land under "untagged").  Off by default.  Counts are keyed by
  /// the tag POINTER on the hot path (no string construction per event);
  /// executed_by_tag() merges same-content tags at export time.
  void enable_profiling() { profiling_ = true; }
  bool profiling_enabled() const { return profiling_; }
  std::map<std::string, std::uint64_t, std::less<>> executed_by_tag() const;

 private:
  struct HeapEntry {
    Time at;
    std::uint64_t seq;  // tie-break: insertion order
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Comparator for std::push_heap/pop_heap: "a fires after b" puts the
  /// earliest (time, seq) at the front of the max-heap.
  struct FiresLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::int64_t kNeverNs =
      std::numeric_limits<std::int64_t>::max();

  // --- timing-wheel geometry -----------------------------------------
  // 4 levels of 1024 buckets, each level 1024x coarser, cover every delay
  // below 2^40 ns (~18 simulated minutes).  Level 0 buckets are a single
  // nanosecond wide, so a level-0 bucket only ever holds events for one
  // exact tick; higher-level buckets cascade strictly downward when
  // simulated time enters them.  Deltas past the span wait in a small
  // overflow heap until the horizon rotates near.  The wide-and-shallow
  // shape is deliberate: an event pays one placement per level it passes
  // through, and the simulator's event horizons cluster at microseconds
  // (serialization), milliseconds-to-100ms (propagation) and 100ms-1s
  // (RTO timers) — levels 1 and 2 here, versus levels 2-4 of a 256-way
  // wheel.
  static constexpr int kWheelBits = 10;
  static constexpr int kWheelLevels = 4;
  static constexpr std::uint32_t kWheelBuckets = 1u << kWheelBits;
  static constexpr std::uint32_t kWheelBucketCount =
      kWheelLevels * kWheelBuckets;
  static constexpr std::int64_t kWheelSpanNs = std::int64_t{1}
                                               << (kWheelBits * kWheelLevels);

  /// Pseudo-bucket ids for live wheel events not linked on a bucket list.
  static constexpr std::uint32_t kBucketNone = 0xffffffffu;
  static constexpr std::uint32_t kBucketScratch = 0xfffffffeu;
  static constexpr std::uint32_t kBucketOverflow = 0xfffffffdu;
  static constexpr std::uint32_t kBucketSolo = 0xfffffffcu;

  /// One pooled event.  The callback (64 B with its vtable pointer — see
  /// the static_asserts in callback.hpp) fills the slot's first cache
  /// line; the scheduling metadata both cores touch on every hot-path
  /// operation shares the second.
  struct Slot {
    Callback cb;
    const char* tag = nullptr;    ///< nullptr = untagged
    std::int64_t at_ns = 0;       ///< wheel: absolute fire time
    std::uint32_t gen = 0;        ///< bumped on every release
    std::uint32_t next = kNoSlot; ///< intrusive free-list link
    std::uint32_t bucket = kBucketNone;  ///< wheel: owning bucket id
    std::uint32_t idx = 0;        ///< wheel: position in the bucket array
    bool live = false;
  };

  /// One wheel bucket element.  Buckets hold contiguous entry arrays, not
  /// chained slot links: schedule is an append, cancel a swap-remove (the
  /// displaced entry's slot backref is patched), and a cascade is a
  /// sequential scan that re-appends — the hot paths never chase pointers
  /// through the 100+-byte slot pool, they stream 24-byte entries.  The
  /// entry carries everything placement and ordering need (fire time, seq
  /// tie-break, generation), so a cascade only ever WRITES to slots (the
  /// backref), and those stores double as a prefetch of each slot's cache
  /// line shortly before it fires.
  struct BucketEntry {
    std::int64_t at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Cached earliest event of one wheel level (levels >= 1; level 0's min
  /// falls out of the occupancy bitmap alone).  `valid && slot == kNoSlot`
  /// means "level known empty".  Maintained eagerly: invalidated the
  /// moment its event fires, cancels, or cascades away, then lazily
  /// rescanned on the next query.
  struct LevelMin {
    std::int64_t at = kNeverNs;
    std::uint32_t slot = kNoSlot;
    std::uint32_t gen = 0;
    bool valid = false;
  };

  struct Wheel {
    std::int64_t cur = 0;  ///< wheel position; always == now().ns()
    std::array<std::vector<BucketEntry>, kWheelBucketCount> bucket;
    /// One occupancy bit per bucket (kWheelBuckets/64 words per level):
    /// finding the next non-empty bucket is a few masked countr_zero scans.
    std::array<std::uint64_t, kWheelBucketCount / 64> occupancy;
    /// Occupied-bucket count per level: lets an empty level answer "no
    /// events" without touching its bitmap at all — the common shape in
    /// timer-sparse phases, where most levels sit empty most of the time.
    std::array<std::uint32_t, kWheelLevels> occ_count{};
    std::array<LevelMin, kWheelLevels> lmin;
    std::vector<HeapEntry> overflow;    ///< beyond-span events (lazy cancel)
    /// Same-tick drain buffer: a level-0 bucket with more than one event
    /// is swapped in here and sorted by seq, restoring global insertion
    /// order even when same-instant events arrived along different
    /// cascade paths.  Entries cancelled while waiting go lazy (their
    /// generation bump tombstones them).
    std::vector<BucketEntry> scratch;
    std::size_t scratch_pos = 0;
    /// Cascade drain buffer: the bucket being cascaded is swapped in here
    /// before re-placement, because a next-lap entry (same index, due one
    /// full level-lap later) legally re-places into the very bucket being
    /// drained — appending to the vector mid-iteration would invalidate
    /// the scan and the trailing clear() would destroy the entry.
    std::vector<BucketEntry> cascade;
    /// Memoized next_event_time(): exact while valid.  Lowered in O(1) by
    /// schedule, dropped by cancel-of-the-earliest and by firing.
    std::int64_t next_memo = kNeverNs;
    bool next_memo_valid = false;
    /// Solo-event register: when exactly one event is live it parks here
    /// (bucket id kBucketSolo) and never touches a bucket at all — the
    /// retransmission-timer shape (arm, cancel, re-arm, one timer live)
    /// then costs two register writes instead of a place + unlink.  A
    /// second schedule demotes the resident into the wheel with its
    /// original seq, so ordering is exactly as if it had never parked.
    /// Invariant: `solo_valid` implies buckets/scratch/overflow hold no
    /// *live* entries (lazy tombstones may remain).
    BucketEntry solo{};
    bool solo_valid = false;
  };

  // --- slot pool ------------------------------------------------------
  // Slots live in fixed-size chunks with stable addresses: growing the
  // pool allocates a new chunk instead of reallocating-and-relocating
  // every pending callback (a vector<Slot> pays an indirect relocate call
  // per slot per growth spurt — measurable in schedule-heavy runs).
  static constexpr std::uint32_t kSlotChunkBits = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kSlotChunkSize = 1u << kSlotChunkBits;

  Slot& slot_ref(std::uint32_t s) {
    return chunks_[s >> kSlotChunkBits][s & (kSlotChunkSize - 1)];
  }
  const Slot& slot_ref(std::uint32_t s) const {
    return chunks_[s >> kSlotChunkBits][s & (kSlotChunkSize - 1)];
  }

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id.raw() & 0xffffffffu) - 1;
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id.raw() >> 32);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return EventId{(static_cast<std::uint64_t>(gen) << 32) |
                   (static_cast<std::uint64_t>(slot) + 1)};
  }

  /// Return a slot to the free list (callback already destroyed or moved
  /// out) and invalidate outstanding handles to it.
  void release_slot(std::uint32_t s);

  // Heap core.
  bool heap_run_one();
  void heap_compact();

  // Wheel core.  Placement takes the entry fields by value so cascades
  // read streaming bucket entries, never the slot pool.
  void wheel_place(std::uint32_t s, std::int64_t at, std::uint64_t seq,
                   std::uint32_t gen);
  void wheel_remove(std::uint32_t s);
  void wheel_advance(std::int64_t t);
  std::int64_t wheel_find_earliest();
  std::int64_t wheel_level0_min() const;
  std::int64_t wheel_level_min(int level);
  void wheel_rescan_level(int level);
  bool wheel_scratch_peek(std::uint32_t& out);
  bool wheel_run_one();

  SchedulerImpl impl_;
  Time now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::size_t max_depth_ = 0;
  bool profiling_ = false;
  std::unordered_map<const char*, std::uint64_t> tag_hits_;
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;  ///< the slot pool
  std::uint32_t slot_count_ = 0;       ///< slots ever handed out
  std::uint32_t free_head_ = kNoSlot;  ///< head of the intrusive free list
  std::unique_ptr<Wheel> wheel_;       ///< non-null iff impl() == kWheel
};

}  // namespace wtcp::sim
