#include "src/sim/logging.hpp"

#include <cstdarg>
#include <vector>

namespace wtcp::sim {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::write(LogLevel level, Time now, std::string_view component,
                std::string_view message) {
  std::fprintf(sink_, "[%12.6f] %-5s %-10.*s %.*s\n", now.to_seconds(),
               level_name(level), static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
  // Warnings must survive a crash shortly after; pay the flush only there.
  if (level == LogLevel::kWarn) std::fflush(sink_);
}

std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace wtcp::sim
