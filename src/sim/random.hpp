// Reproducible random number generation.
//
// Each stochastic component of a simulation (error model, ARQ backoff, ...)
// gets its own Rng stream derived from the experiment seed, so adding or
// removing one component never perturbs the draws seen by another.
#pragma once

#include <cstdint>
#include <string_view>

namespace wtcp::sim {

/// xoshiro256++ PRNG seeded through SplitMix64.  Deterministic across
/// platforms (no dependence on libstdc++ distribution internals).
class Rng {
 public:
  /// Seed the stream.  `stream` distinguishes independent substreams of the
  /// same experiment seed.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  /// Derive an independent child stream, keyed by a label hash.  Use one
  /// child per component: `Rng err = root.fork("error-model");`
  Rng fork(std::string_view label) const;

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  std::uint64_t stream_;
};

}  // namespace wtcp::sim
