// Simulator facade: owns the scheduler and the experiment-wide RNG root,
// and provides the run loop with an optional hard stop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/core/audit.hpp"
#include "src/sim/random.hpp"
#include "src/sim/scheduler.hpp"
#include "src/sim/time.hpp"

namespace wtcp::obs {
class Registry;
class TraceSink;
}
namespace wtcp::net {
class PacketPool;
}

namespace wtcp::sim {

/// Why a run loop ended (docs/robustness.md has the full taxonomy).
/// kOk covers both "queue drained" and "caller's horizon reached" — the
/// pre-existing, always-legal stopping conditions.  Everything else is a
/// watchdog or containment verdict.
enum class RunStatus : std::uint8_t {
  kOk,           ///< drained, horizon reached, or stop() requested
  kEventBudget,  ///< RunBudget::max_events exhausted
  kTimeBudget,   ///< RunBudget::max_virtual_time reached before the horizon
  kDeadline,     ///< RunBudget::max_wall_seconds of real time elapsed
  kException,    ///< the run threw (set by the experiment harness, not run())
};

const char* to_string(RunStatus s);

/// Optional per-run watchdog limits.  Default-constructed = unarmed: the
/// run loop takes the exact pre-existing path, so budget-free runs stay
/// byte-identical (all fig03-11 / run_seeds goldens).
struct RunBudget {
  /// Stop after this many events in one run() call (0 = unlimited).
  std::uint64_t max_events = 0;
  /// Stop before executing any event past this virtual time.  Unlike the
  /// run(horizon) argument, crossing it is reported as kTimeBudget.
  Time max_virtual_time = Time::max();
  /// Stop once this much wall-clock time has elapsed inside run()
  /// (0 = unlimited).  Checked every 64 events; the only watchdog that is
  /// machine-dependent, so budget-killed runs are not reproducible — they
  /// are reported, never folded into result statistics.
  double max_wall_seconds = 0.0;

  bool armed() const {
    return max_events != 0 || max_virtual_time != Time::max() ||
           max_wall_seconds > 0.0;
  }
};

/// Structured verdict of the last run() call.
struct RunOutcome {
  RunStatus status = RunStatus::kOk;
  std::string message;  ///< human-readable detail ("" when ok)

  bool ok() const { return status == RunStatus::kOk; }
};

/// One simulation run.  Components hold a Simulator& and use it for time,
/// timers and randomness.  Not thread-safe (a run is single-threaded by
/// construction; parallelism happens across runs).
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return sched_.now(); }
  Scheduler& scheduler() { return sched_; }

  /// Per-run packet arena; every Packet on the datapath lives here.
  net::PacketPool& packet_pool() { return *pool_; }

  /// Root RNG; components should fork() their own labelled streams.
  const Rng& root_rng() const { return root_rng_; }
  Rng fork_rng(std::string_view label) const { return root_rng_.fork(label); }

  EventId at(Time when, Scheduler::Callback cb, const char* tag = nullptr) {
    return sched_.schedule_at(when, std::move(cb), tag);
  }
  EventId after(Time delay, Scheduler::Callback cb, const char* tag = nullptr) {
    return sched_.schedule_after(delay, std::move(cb), tag);
  }
  bool cancel(EventId id) { return sched_.cancel(id); }
  bool pending(EventId id) const { return sched_.pending(id); }

  /// Run until no events remain, `horizon` is exceeded, stop() is called,
  /// or an armed budget fires (see outcome()).  Returns the number of
  /// events executed by this call.
  std::uint64_t run(Time horizon = Time::max());

  /// Watchdog limits for subsequent run() calls.  Unarmed (the default)
  /// costs nothing: the run loop is the exact pre-watchdog code path.
  void set_budget(const RunBudget& b) { budget_ = b; }
  const RunBudget& budget() const { return budget_; }

  /// Verdict of the most recent run() call (kOk until a budget fires).
  const RunOutcome& outcome() const { return outcome_; }

  /// Request the run loop to exit after the current event.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::uint64_t seed() const { return seed_; }

  /// Probe bus for this run, or nullptr when observability is off.
  /// Components cache Counter*/Gauge* pointers from it at construction,
  /// so attach the registry BEFORE building the component graph.  The
  /// registry is owned by the caller and must outlive the simulator.
  void set_probes(obs::Registry* probes) {
    probes_ = probes;
    // Audit counters are per-run: rebinding the registry starts a fresh
    // audit.checks/audit.violations tally, so exported counts do not
    // depend on which worker thread the run landed on.
    WTCP_AUDIT_ONLY(::wtcp::audit::bind_probes(probes);
                    ::wtcp::audit::reset_counts();)
  }
  obs::Registry* probes() const { return probes_; }

  /// Packet-lifecycle trace sink for this run, or nullptr when tracing is
  /// off.  Same discipline as the probe bus: components cache the pointer
  /// (and intern their labels) at construction, so attach the sink BEFORE
  /// building the component graph; the caller owns it.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }
  obs::TraceSink* trace() const { return trace_; }

  /// Cumulative wall-clock seconds spent inside run() (scheduler
  /// profiling: wall-time per simulated second = wall_seconds() / now()).
  double wall_seconds() const { return wall_seconds_; }

 private:
  // The pool is the first member so it is destroyed LAST: events still
  // queued at teardown hold PacketRefs that release into it.
  std::unique_ptr<net::PacketPool> pool_;
  std::uint64_t seed_;
  Scheduler sched_;
  Rng root_rng_;
  obs::Registry* probes_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  double wall_seconds_ = 0.0;
  bool stopped_ = false;
  RunBudget budget_;
  RunOutcome outcome_;
};

}  // namespace wtcp::sim
