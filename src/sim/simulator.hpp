// Simulator facade: owns the scheduler and the experiment-wide RNG root,
// and provides the run loop with an optional hard stop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "src/core/audit.hpp"
#include "src/sim/random.hpp"
#include "src/sim/scheduler.hpp"
#include "src/sim/time.hpp"

namespace wtcp::obs {
class Registry;
}
namespace wtcp::net {
class PacketPool;
}

namespace wtcp::sim {

/// One simulation run.  Components hold a Simulator& and use it for time,
/// timers and randomness.  Not thread-safe (a run is single-threaded by
/// construction; parallelism happens across runs).
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return sched_.now(); }
  Scheduler& scheduler() { return sched_; }

  /// Per-run packet arena; every Packet on the datapath lives here.
  net::PacketPool& packet_pool() { return *pool_; }

  /// Root RNG; components should fork() their own labelled streams.
  const Rng& root_rng() const { return root_rng_; }
  Rng fork_rng(std::string_view label) const { return root_rng_.fork(label); }

  EventId at(Time when, Scheduler::Callback cb, const char* tag = nullptr) {
    return sched_.schedule_at(when, std::move(cb), tag);
  }
  EventId after(Time delay, Scheduler::Callback cb, const char* tag = nullptr) {
    return sched_.schedule_after(delay, std::move(cb), tag);
  }
  bool cancel(EventId id) { return sched_.cancel(id); }
  bool pending(EventId id) const { return sched_.pending(id); }

  /// Run until no events remain, `horizon` is exceeded, or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run(Time horizon = Time::max());

  /// Request the run loop to exit after the current event.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::uint64_t seed() const { return seed_; }

  /// Probe bus for this run, or nullptr when observability is off.
  /// Components cache Counter*/Gauge* pointers from it at construction,
  /// so attach the registry BEFORE building the component graph.  The
  /// registry is owned by the caller and must outlive the simulator.
  void set_probes(obs::Registry* probes) {
    probes_ = probes;
    // Audit counters are per-run: rebinding the registry starts a fresh
    // audit.checks/audit.violations tally, so exported counts do not
    // depend on which worker thread the run landed on.
    WTCP_AUDIT_ONLY(::wtcp::audit::bind_probes(probes);
                    ::wtcp::audit::reset_counts();)
  }
  obs::Registry* probes() const { return probes_; }

  /// Cumulative wall-clock seconds spent inside run() (scheduler
  /// profiling: wall-time per simulated second = wall_seconds() / now()).
  double wall_seconds() const { return wall_seconds_; }

 private:
  // The pool is the first member so it is destroyed LAST: events still
  // queued at teardown hold PacketRefs that release into it.
  std::unique_ptr<net::PacketPool> pool_;
  std::uint64_t seed_;
  Scheduler sched_;
  Rng root_rng_;
  obs::Registry* probes_ = nullptr;
  double wall_seconds_ = 0.0;
  bool stopped_ = false;
};

}  // namespace wtcp::sim
