// Move-only callable with small-buffer optimization for the scheduler's
// hot path.  Event callbacks capture a `this` pointer and a few words of
// state; storing them inline in the event slot removes the per-event heap
// allocation std::function paid.  Callables larger than kInlineBytes (or
// with throwing moves) fall back to a single heap allocation.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace wtcp::sim {

class SmallCallback {
 public:
  /// Inline capture budget.  Sized so a lambda capturing `this` plus a
  /// handful of words (the common scheduler pattern) never allocates.
  static constexpr std::size_t kInlineBytes = 56;

  SmallCallback() = default;
  SmallCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVTable<D>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept { move_from(other); }
  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

  /// Destroy the held callable (and release any captured state) now.
  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void* self);
    void (*relocate)(void* src, void* dst) noexcept;  ///< move into dst, destroy src
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr VTable kInlineVTable{
      [](void* self) { (*std::launder(reinterpret_cast<D*>(self)))(); },
      [](void* src, void* dst) noexcept {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* self) noexcept { std::launder(reinterpret_cast<D*>(self))->~D(); },
  };

  template <typename D>
  static constexpr VTable kHeapVTable{
      [](void* self) { (**std::launder(reinterpret_cast<D**>(self)))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* self) noexcept { delete *std::launder(reinterpret_cast<D**>(self)); },
  };

  void move_from(SmallCallback& other) noexcept {
    if (other.vt_ != nullptr) {
      vt_ = other.vt_;
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

// Scheduler slot-layout contract: the callback (56-byte inline buffer +
// vtable pointer) fills exactly one 64-byte cache line, so the slot pool's
// scheduling metadata (fire time, seq, generation, wheel links) starts on
// the next line and a schedule/cancel never dirties the callback's line.
static_assert(sizeof(SmallCallback) == 64);
static_assert(alignof(SmallCallback) == alignof(std::max_align_t));

}  // namespace wtcp::sim
