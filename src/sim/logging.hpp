// Minimal leveled, component-tagged logging keyed to simulation time.
// Disabled by default; experiments enable it for debugging single runs.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "src/sim/time.hpp"

namespace wtcp::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kOff };

/// Global log configuration.  A simulation is single-threaded, so a plain
/// global is fine and keeps call sites cheap when logging is off.
class Log {
 public:
  static void set_level(LogLevel level) { level_ = level; }
  static LogLevel level() { return level_; }
  static bool enabled(LogLevel level) { return level >= level_ && level_ != LogLevel::kOff; }

  /// Set the sink (defaults to stderr).  Pass nullptr to restore stderr.
  static void set_sink(std::FILE* sink) { sink_ = sink ? sink : stderr; }

  static void write(LogLevel level, Time now, std::string_view component,
                    std::string_view message);

 private:
  static inline LogLevel level_ = LogLevel::kOff;
  static inline std::FILE* sink_ = stderr;
};

/// printf-style formatting helper used by the WTCP_LOG macro.
std::string log_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace wtcp::sim

/// Usage: WTCP_LOG(kDebug, sim.now(), "tcp", "timeout seq=%ld", seq);
/// `now` is hoisted into a local so an expression with side effects (for
/// example a clock that samples on read) is evaluated exactly once.
#define WTCP_LOG(level, now, component, ...)                                       \
  do {                                                                             \
    if (::wtcp::sim::Log::enabled(::wtcp::sim::LogLevel::level)) {                 \
      const ::wtcp::sim::Time wtcp_log_now = (now);                                \
      ::wtcp::sim::Log::write(::wtcp::sim::LogLevel::level, wtcp_log_now,          \
                              (component),                                         \
                              ::wtcp::sim::log_format(__VA_ARGS__));               \
    }                                                                              \
  } while (0)
