#include "src/sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace wtcp::sim {

Time Time::from_seconds(double s) {
  return Time{static_cast<std::int64_t>(std::llround(s * 1e9))};
}

Time Time::from_milliseconds(double ms) {
  return Time{static_cast<std::int64_t>(std::llround(ms * 1e6))};
}

Time Time::scaled(double factor) const {
  return Time{static_cast<std::int64_t>(std::llround(static_cast<double>(ns_) * factor))};
}

std::string Time::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9fs", to_seconds());
  return buf;
}

Time transmission_time(std::int64_t bytes, std::int64_t bits_per_second) {
  // ceil(bits * 1e9 / bps) without overflow for realistic inputs:
  // bytes < 2^32 and bps >= 1.
  const std::int64_t bits = bytes * 8;
  const std::int64_t num = bits * 1'000'000'000;
  return Time::nanoseconds((num + bits_per_second - 1) / bits_per_second);
}

std::int64_t bits_in(Time d, std::int64_t bits_per_second) {
  if (d.is_negative()) return 0;
  // floor(ns * bps / 1e9).  Use long double to avoid overflow for long
  // durations at high bit rates; precision is ample for simulation needs.
  const long double bits =
      static_cast<long double>(d.ns()) * static_cast<long double>(bits_per_second) / 1e9L;
  return static_cast<std::int64_t>(bits);
}

}  // namespace wtcp::sim
