#include "src/sim/simulator.hpp"

#include <chrono>

namespace wtcp::sim {

Simulator::Simulator(std::uint64_t seed) : seed_(seed), root_rng_(seed) {}

std::uint64_t Simulator::run(Time horizon) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t n = 0;
  while (!stopped_ && sched_.next_event_time() <= horizon && sched_.run_one()) {
    ++n;
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return n;
}

}  // namespace wtcp::sim
