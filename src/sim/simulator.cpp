#include "src/sim/simulator.hpp"

#include <chrono>

#include "src/net/packet_pool.hpp"

namespace wtcp::sim {

Simulator::Simulator(std::uint64_t seed)
    : pool_(std::make_unique<net::PacketPool>()), seed_(seed), root_rng_(seed) {}

Simulator::~Simulator() = default;

std::uint64_t Simulator::run(Time horizon) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t n = 0;
  while (!stopped_ && sched_.next_event_time() <= horizon && sched_.run_one()) {
    ++n;
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return n;
}

}  // namespace wtcp::sim
