#include "src/sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "src/net/packet_pool.hpp"

namespace wtcp::sim {

Simulator::Simulator(std::uint64_t seed)
    : pool_(std::make_unique<net::PacketPool>()), seed_(seed), root_rng_(seed) {}

Simulator::~Simulator() {
  // Teardown order in owners (Scenario) destroys the probe registry before
  // this simulator, while audit checks still fire inside our member
  // destructors (scheduler slots release pooled PacketRefs).  Detach the
  // thread's audit probes first so those checks count locally instead of
  // publishing through dangling Counter pointers.
  WTCP_AUDIT_ONLY(::wtcp::audit::bind_probes(nullptr);)
}

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kEventBudget: return "event-budget";
    case RunStatus::kTimeBudget: return "time-budget";
    case RunStatus::kDeadline: return "deadline-exceeded";
    case RunStatus::kException: return "exception";
  }
  return "?";
}

std::uint64_t Simulator::run(Time horizon) {
  const auto wall_start = std::chrono::steady_clock::now();
  outcome_ = {};
  std::uint64_t n = 0;
  if (!budget_.armed()) {
    // The pre-watchdog loop, verbatim: budget-free runs pay nothing and
    // stay bitwise identical to the goldens.
    while (!stopped_ && sched_.next_event_time() <= horizon && sched_.run_one()) {
      ++n;
    }
  } else {
    const Time stop_at = std::min(horizon, budget_.max_virtual_time);
    char msg[128];
    while (!stopped_) {
      if (budget_.max_events != 0 && n >= budget_.max_events) {
        std::snprintf(msg, sizeof msg,
                      "event budget exhausted (%" PRIu64 " events)",
                      budget_.max_events);
        outcome_ = {RunStatus::kEventBudget, msg};
        break;
      }
      const Time next = sched_.next_event_time();
      if (next > stop_at) {
        if (next <= horizon) {
          // The budget, not the caller's horizon, is what stopped us.
          std::snprintf(msg, sizeof msg,
                        "virtual-time budget exceeded (%.6f s)",
                        budget_.max_virtual_time.to_seconds());
          outcome_ = {RunStatus::kTimeBudget, msg};
        }
        break;
      }
      if (budget_.max_wall_seconds > 0.0 && (n & 63) == 0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wall_start)
                .count();
        if (elapsed > budget_.max_wall_seconds) {
          std::snprintf(msg, sizeof msg,
                        "wall-clock deadline exceeded (%.3f s limit)",
                        budget_.max_wall_seconds);
          outcome_ = {RunStatus::kDeadline, msg};
          break;
        }
      }
      if (!sched_.run_one()) break;
      ++n;
    }
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return n;
}

}  // namespace wtcp::sim
