#include "src/sim/simulator.hpp"

#include <chrono>

#include "src/net/packet_pool.hpp"

namespace wtcp::sim {

Simulator::Simulator(std::uint64_t seed)
    : pool_(std::make_unique<net::PacketPool>()), seed_(seed), root_rng_(seed) {}

Simulator::~Simulator() {
  // Teardown order in owners (Scenario) destroys the probe registry before
  // this simulator, while audit checks still fire inside our member
  // destructors (scheduler slots release pooled PacketRefs).  Detach the
  // thread's audit probes first so those checks count locally instead of
  // publishing through dangling Counter pointers.
  WTCP_AUDIT_ONLY(::wtcp::audit::bind_probes(nullptr);)
}

std::uint64_t Simulator::run(Time horizon) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t n = 0;
  while (!stopped_ && sched_.next_event_time() <= horizon && sched_.run_one()) {
    ++n;
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return n;
}

}  // namespace wtcp::sim
