#include "src/sim/simulator.hpp"

namespace wtcp::sim {

Simulator::Simulator(std::uint64_t seed) : seed_(seed), root_rng_(seed) {}

std::uint64_t Simulator::run(Time horizon) {
  std::uint64_t n = 0;
  while (!stopped_ && sched_.next_event_time() <= horizon && sched_.run_one()) {
    ++n;
  }
  return n;
}

}  // namespace wtcp::sim
