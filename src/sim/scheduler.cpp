#include "src/sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/core/audit.hpp"

namespace wtcp::sim {

namespace {
/// Pre-sized storage: typical runs keep tens to a few hundred events
/// pending; reserving once keeps the first growth spurts off the hot path.
constexpr std::size_t kReserveEvents = 256;
}  // namespace

Scheduler::Scheduler() {
  heap_.reserve(kReserveEvents);
  slots_.reserve(kReserveEvents);
}

EventId Scheduler::schedule_at(Time at, Callback cb, const char* tag) {
  assert(cb);
  if (at < now_) at = now_;  // never schedule into the past
  std::uint32_t s;
  if (free_head_ == kNoSlot) {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    s = free_head_;
    free_head_ = slots_[s].next_free;
    WTCP_AUDIT_CHECK(audit::scheduler_slot_state(slots_[s].live, false),
                     "scheduler", "freelist_slot_live",
                     "slot handed out of the free list is still live");
  }
  Slot& slot = slots_[s];
  slot.cb = std::move(cb);
  slot.tag = tag;
  slot.live = true;
  heap_.push_back(HeapEntry{at, next_seq_++, s, slot.gen});
  std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
  ++live_;
  if (live_ > max_depth_) max_depth_ = live_;
  return make_id(s, slot.gen);
}

EventId Scheduler::schedule_after(Time delay, Callback cb, const char* tag) {
  if (delay.is_negative()) delay = Time::zero();
  return schedule_at(now_ + delay, std::move(cb), tag);
}

void Scheduler::release_slot(std::uint32_t s) {
  Slot& slot = slots_[s];
  WTCP_AUDIT_CHECK(audit::scheduler_slot_state(slot.live, true), "scheduler",
                   "double_release",
                   "releasing a slot that is not live (double cancel/fire)");
  WTCP_AUDIT_CHECK(live_ > 0, "scheduler", "live_underflow",
                   "live event count would underflow on release");
  slot.cb.reset();
  slot.tag = nullptr;
  slot.live = false;
  ++slot.gen;  // invalidates every outstanding handle to this slot
  slot.next_free = free_head_;  // intrusive link: no side-array traffic
  free_head_ = s;
  --live_;
}

bool Scheduler::cancel(EventId id) {
  if (!pending(id)) return false;
  release_slot(slot_of(id));  // heap entry stays; skipped when popped
  return true;
}

Time Scheduler::next_event_time() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Slot& slot = slots_[top.slot];
    if (slot.live && slot.gen == top.gen) return top.at;
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});  // cancelled
    heap_.pop_back();
  }
  return Time::max();
}

bool Scheduler::run_one() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
    heap_.pop_back();
    Slot& slot = slots_[top.slot];
    if (!slot.live || slot.gen != top.gen) continue;  // cancelled
    Callback cb = std::move(slot.cb);
    const char* tag = slot.tag;
    release_slot(top.slot);  // before cb(): the event is no longer pending
    now_ = top.at;
    ++executed_;
    if (profiling_) ++tag_hits_[tag];
    cb();
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run_until(Time until) {
  std::uint64_t n = 0;
  while (next_event_time() <= until && run_one()) ++n;
  if (now_ < until) {
    // No event exactly at `until`; still advance the clock so that now()
    // reflects the horizon the caller asked for.
    now_ = until;
  }
  return n;
}

std::uint64_t Scheduler::run() {
  std::uint64_t n = 0;
  while (run_one()) ++n;
  return n;
}

void Scheduler::reserve(std::size_t events) {
  heap_.reserve(events);
  slots_.reserve(events);
}

void Scheduler::clear() {
  // Full O(n) slot-pool/heap audit at the natural quiescent point (between
  // experiment runs): the live count matches the live slots, the free list
  // plus live slots account for every slot, and every heap entry naming a
  // live slot carries that slot's current generation.
  WTCP_AUDIT_ONLY({
    std::size_t live_slots = 0;
    for (const Slot& slot : slots_) {
      if (slot.live) ++live_slots;
    }
    WTCP_AUDIT_CHECK(live_slots == live_, "scheduler", "live_count_mismatch",
                     "live slot scan disagrees with the live counter");
    std::size_t free_len = 0;
    for (std::uint32_t f = free_head_; f != kNoSlot;
         f = slots_[f].next_free) {
      ++free_len;
      WTCP_AUDIT_CHECK(f < slots_.size(), "scheduler", "freelist_range",
                       "free-list link points outside the slot pool");
      if (f >= slots_.size()) break;
    }
    WTCP_AUDIT_CHECK(free_len + live_slots == slots_.size(), "scheduler",
                     "slot_accounting",
                     "free list + live slots do not cover the pool");
    for (const HeapEntry& e : heap_) {
      WTCP_AUDIT_CHECK(e.slot < slots_.size(), "scheduler", "heap_slot_range",
                       "heap entry references a slot outside the pool");
      if (e.slot < slots_.size() && slots_[e.slot].live) {
        WTCP_AUDIT_CHECK(slots_[e.slot].gen >= e.gen, "scheduler",
                         "heap_generation",
                         "heap entry carries a generation from the future");
      }
    }
  })
  // Rebuild the free list so slot 0 is handed out first again, matching a
  // freshly-constructed scheduler.
  free_head_ = kNoSlot;
  for (std::uint32_t s = static_cast<std::uint32_t>(slots_.size()); s-- > 0;) {
    Slot& slot = slots_[s];
    if (slot.live) {
      slot.cb.reset();
      slot.tag = nullptr;
      slot.live = false;
      ++slot.gen;
    }
    slot.next_free = free_head_;
    free_head_ = s;
  }
  heap_.clear();
  live_ = 0;
}

std::map<std::string, std::uint64_t, std::less<>> Scheduler::executed_by_tag()
    const {
  // Tags are counted by pointer on the hot path; identical literals from
  // different translation units may have distinct addresses, so merge by
  // content here, at export time.
  std::map<std::string, std::uint64_t, std::less<>> merged;
  for (const auto& [tag, n] : tag_hits_) {
    merged[tag != nullptr ? std::string(tag) : std::string("untagged")] += n;
  }
  return merged;
}

}  // namespace wtcp::sim
