#include "src/sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/core/audit.hpp"

namespace wtcp::sim {

namespace {

/// Pre-sized storage: typical runs keep tens to a few hundred events
/// pending; reserving once keeps the first growth spurts off the hot path.
constexpr std::size_t kReserveEvents = 256;

/// Circular find-first-set over one wheel level's occupancy bits (`words`
/// points at the level's `nwords` words, a power of two), starting at bit
/// `from`.  Returns the bucket index found, or -1 if the level is empty.
/// Call sites pass a constant word count, so the loop bound folds.
int find_set_circular(const std::uint64_t* words, std::uint32_t from,
                      std::uint32_t nwords) {
  const std::uint32_t w0 = from >> 6;
  const std::uint32_t b0 = from & 63;
  std::uint64_t w = words[w0] & (~std::uint64_t{0} << b0);
  if (w != 0) return static_cast<int>(w0 * 64 + std::countr_zero(w));
  for (std::uint32_t i = 1; i <= nwords; ++i) {
    const std::uint32_t wi = (w0 + i) & (nwords - 1);
    w = words[wi];
    if (i == nwords) {
      w &= ~(~std::uint64_t{0} << b0);  // wrapped: bits below `from`
    }
    if (w != 0) return static_cast<int>(wi * 64 + std::countr_zero(w));
  }
  return -1;
}

}  // namespace

const char* to_string(SchedulerImpl impl) {
  return impl == SchedulerImpl::kHeap ? "heap" : "wheel";
}

SchedulerImpl Scheduler::default_impl() {
  if (const char* env = std::getenv("WTCP_SCHED");
      env != nullptr && *env != '\0') {
    if (std::strcmp(env, "heap") == 0) return SchedulerImpl::kHeap;
    if (std::strcmp(env, "wheel") == 0) return SchedulerImpl::kWheel;
    std::fprintf(stderr,
                 "wtcp: unknown WTCP_SCHED value '%s' (expected 'heap' or "
                 "'wheel')\n",
                 env);
    std::abort();  // fail loud: silently benchmarking the wrong core is worse
  }
#if defined(WTCP_SCHED_DEFAULT_WHEEL) && !WTCP_SCHED_DEFAULT_WHEEL
  return SchedulerImpl::kHeap;
#else
  return SchedulerImpl::kWheel;
#endif
}

Scheduler::Scheduler(SchedulerImpl impl) : impl_(impl) {
  chunks_.reserve(kReserveEvents / kSlotChunkSize + 8);
  chunks_.emplace_back(std::make_unique<Slot[]>(kSlotChunkSize));
  if (impl_ == SchedulerImpl::kHeap) {
    heap_.reserve(kReserveEvents);
  } else {
    wheel_ = std::make_unique<Wheel>();
    wheel_->occupancy.fill(0);
  }
}

EventId Scheduler::schedule_at(Time at, Callback cb, const char* tag) {
  assert(cb);
  if (at < now_) at = now_;  // never schedule into the past
  std::uint32_t s;
  if (free_head_ == kNoSlot) {
    s = slot_count_++;
    if ((s >> kSlotChunkBits) == chunks_.size()) {
      chunks_.emplace_back(std::make_unique<Slot[]>(kSlotChunkSize));
    }
  } else {
    s = free_head_;
    free_head_ = slot_ref(s).next;
    WTCP_AUDIT_CHECK(audit::scheduler_slot_state(slot_ref(s).live, false),
                     "scheduler", "freelist_slot_live",
                     "slot handed out of the free list is still live");
  }
  Slot& slot = slot_ref(s);
  slot.cb = std::move(cb);
  slot.tag = tag;
  slot.live = true;
  const std::uint64_t seq = next_seq_++;
  ++live_;
  if (live_ > max_depth_) max_depth_ = live_;
  if (impl_ == SchedulerImpl::kWheel) {
    slot.at_ns = at.ns();
    Wheel& w = *wheel_;
    if (live_ == 1) {
      // Sole live event: park it in the solo register, skipping bucket
      // placement entirely.  The dominant protocol shape — one armed
      // retransmission timer, cancelled and re-armed per ACK — stays on
      // this path and never touches a bucket, its occupancy bit, or a
      // level-min cache.
      w.solo = BucketEntry{at.ns(), seq, s, slot.gen};
      w.solo_valid = true;
      slot.bucket = kBucketSolo;
    } else {
      if (w.solo_valid) {
        // A second event arrived: demote the resident into the wheel with
        // its ORIGINAL seq, so ordering is exactly as if it never parked.
        const BucketEntry e = w.solo;
        w.solo_valid = false;
        wheel_place(e.slot, e.at, e.seq, e.gen);
      }
      wheel_place(s, at.ns(), seq, slot.gen);
    }
    if (w.next_memo_valid) {
      if (slot.at_ns < w.next_memo) w.next_memo = slot.at_ns;
    } else if (live_ == 1) {
      // The queue was empty, so this event IS the minimum.
      w.next_memo = slot.at_ns;
      w.next_memo_valid = true;
    }
  } else {
    heap_.push_back(HeapEntry{at, seq, s, slot.gen});
    std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
  }
  return make_id(s, slot.gen);
}

EventId Scheduler::schedule_after(Time delay, Callback cb, const char* tag) {
  if (delay.is_negative()) delay = Time::zero();
  return schedule_at(now_ + delay, std::move(cb), tag);
}

void Scheduler::release_slot(std::uint32_t s) {
  Slot& slot = slot_ref(s);
  WTCP_AUDIT_CHECK(audit::scheduler_slot_state(slot.live, true), "scheduler",
                   "double_release",
                   "releasing a slot that is not live (double cancel/fire)");
  WTCP_AUDIT_CHECK(live_ > 0, "scheduler", "live_underflow",
                   "live event count would underflow on release");
  slot.cb.reset();
  slot.tag = nullptr;
  slot.live = false;
  slot.bucket = kBucketNone;
  ++slot.gen;  // invalidates every outstanding handle to this slot
  slot.next = free_head_;  // intrusive link: no side-array traffic
  free_head_ = s;
  --live_;
}

bool Scheduler::cancel(EventId id) {
  if (!pending(id)) return false;
  const std::uint32_t s = slot_of(id);
  if (impl_ == SchedulerImpl::kWheel) {
    Wheel& w = *wheel_;
    // Bucket-resident events are truly removed in O(1); the solo register
    // is simply invalidated; events parked in the overflow heap or the
    // same-tick scratch buffer go lazy — the generation bump below turns
    // their entries into tombstones.
    if (slot_ref(s).bucket < kWheelBucketCount) {
      wheel_remove(s);
    } else if (slot_ref(s).bucket == kBucketSolo) {
      w.solo_valid = false;
    }
    if (w.next_memo_valid && slot_ref(s).at_ns == w.next_memo) {
      w.next_memo_valid = false;  // may have been the (sole) minimum
    }
    release_slot(s);
  } else {
    release_slot(s);  // heap entry stays; skipped when popped
    // Compact once tombstones outnumber live entries (amortized O(1) per
    // cancel): cancel-heavy runs otherwise drag dead weight through every
    // subsequent sift.
    if (heap_.size() >= 64 && heap_.size() - live_ > heap_.size() / 2) {
      heap_compact();
    }
  }
  return true;
}

void Scheduler::heap_compact() {
  auto dead = [this](const HeapEntry& e) {
    const Slot& sl = slot_ref(e.slot);
    return !sl.live || sl.gen != e.gen;
  };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), FiresLater{});
}

// --- timing-wheel core -----------------------------------------------------

void Scheduler::wheel_place(std::uint32_t s, std::int64_t at,
                            std::uint64_t seq, std::uint32_t gen) {
  Wheel& w = *wheel_;
  const std::int64_t delta = at - w.cur;
  if (delta >= kWheelSpanNs) {
    // Beyond the wheel's horizon: park in the overflow heap until the
    // span rotates near (reintegrated by wheel_advance).
    slot_ref(s).bucket = kBucketOverflow;
    w.overflow.push_back(HeapEntry{Time::nanoseconds(at), seq, s, gen});
    std::push_heap(w.overflow.begin(), w.overflow.end(), FiresLater{});
    return;
  }
  // The delay's magnitude picks the level (each level is 1024x coarser);
  // the event's absolute time picks the bucket within it.
  const int level =
      delta == 0
          ? 0
          : (std::bit_width(static_cast<std::uint64_t>(delta)) - 1) /
                kWheelBits;
  const std::uint32_t idx = static_cast<std::uint32_t>(
      (at >> (kWheelBits * level)) & (kWheelBuckets - 1));
  const std::uint32_t b =
      static_cast<std::uint32_t>(level) * kWheelBuckets + idx;
  std::vector<BucketEntry>& vec = w.bucket[b];
  // Write-only slot access: the backref store never stalls the cascade's
  // streaming scan, and it pulls the slot's line into cache shortly
  // before the event fires.
  Slot& slot = slot_ref(s);
  slot.bucket = b;
  slot.idx = static_cast<std::uint32_t>(vec.size());
  if (vec.empty()) {
    w.occupancy[b >> 6] |= std::uint64_t{1} << (b & 63);
    ++w.occ_count[static_cast<std::size_t>(level)];
    // First touch of this bucket: jump straight to a useful capacity so a
    // bucket never walks the 1->2->4->8 realloc chain.  (clear() keeps
    // capacity, so steady state never allocates at all.)
    if (vec.capacity() == 0) vec.reserve(8);
  } else if (vec.size() == vec.capacity()) {
    // Deep fills (100k-events-pending benches put ~100 entries per
    // higher-level bucket) quadruple instead of doubling: half the
    // reallocs and two thirds of the entry copying on the way up.
    vec.reserve(vec.capacity() * 4);
  }
  vec.push_back(BucketEntry{at, seq, s, gen});
  if (level > 0) {  // level 0's min is derived from the bitmap alone
    LevelMin& m = w.lmin[static_cast<std::size_t>(level)];
    if (m.valid && at < m.at) {  // keeps "known empty" caches exact too
      m.at = at;
      m.slot = s;
      m.gen = gen;
    }
  }
}

void Scheduler::wheel_remove(std::uint32_t s) {
  Wheel& w = *wheel_;
  Slot& slot = slot_ref(s);
  const std::uint32_t b = slot.bucket;
  std::vector<BucketEntry>& vec = w.bucket[b];
  const std::uint32_t i = slot.idx;
  WTCP_AUDIT_CHECK(i < vec.size() && vec[i].slot == s, "scheduler",
                   "wheel_backref",
                   "slot's bucket/index backref does not match the entry");
  // Swap-remove: the displaced tail entry's slot gets its backref patched.
  vec[i] = vec.back();
  vec.pop_back();
  if (i < vec.size()) slot_ref(vec[i].slot).idx = i;
  if (vec.empty()) {
    w.occupancy[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    --w.occ_count[b >> kWheelBits];
  }
  slot.bucket = kBucketNone;
  if (b >= kWheelBuckets) {  // level >= 1: the cached min may have left
    LevelMin& m = w.lmin[b >> kWheelBits];
    if (m.valid && m.slot == s) m.valid = false;
  }
}

void Scheduler::wheel_advance(std::int64_t t) {
  Wheel& w = *wheel_;
  const std::int64_t old = w.cur;
  if (t == old) return;
  w.cur = t;
  // The highest bit the advance flipped bounds the topmost level whose
  // boundary was crossed — and every level at or below it crossed one too,
  // so the cascade loop below needs no per-level boundary compare.
  const int top_level =
      (std::bit_width(static_cast<std::uint64_t>(t ^ old)) - 1) / kWheelBits;
  if (top_level == 0) return;  // stayed inside the current level-1 bucket
  bool due_flushed = false;
  // Crossing a level's boundary means time just entered a new level-L
  // bucket; its events (all with fire times inside the entered span, i.e.
  // within 2^(10L) of t) now belong at strictly lower levels.  Intermediate
  // buckets skipped by a far jump are provably empty: every pending event
  // fires at or after t, and anything placed before this advance whose
  // index lands between the old and new positions would have needed a
  // placement-time delta past the level's range.  Top level first, so
  // each event settles in a single pass; the scan streams the contiguous
  // entry array, so re-placement never chases pointers.
  for (int level = top_level < kWheelLevels ? top_level : kWheelLevels - 1;
       level >= 1; --level) {
    // A level with no occupied buckets has nothing to cascade — skip it
    // without touching its (likely cold) bucket headers.
    if (w.occ_count[static_cast<std::size_t>(level)] == 0) continue;
    const int shift = kWheelBits * level;
    const std::uint32_t idx =
        static_cast<std::uint32_t>((t >> shift) & (kWheelBuckets - 1));
    const std::uint32_t b =
        static_cast<std::uint32_t>(level) * kWheelBuckets + idx;
    std::vector<BucketEntry>& vec = w.bucket[b];
    if (vec.empty()) continue;
    w.occupancy[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    --w.occ_count[static_cast<std::size_t>(level)];
    w.lmin[static_cast<std::size_t>(level)].valid = false;  // members moved
    // Swap the bucket into the cascade buffer before re-placing: almost
    // all entries land at strictly lower levels, but a NEXT-LAP entry
    // (same index, due one full level-lap later, remainder below the
    // advance target's) re-places into this very bucket — now legally,
    // since the swap left it empty and wheel_place restores its occupancy
    // bit.  Entries due exactly at the advance target skip the level-0
    // round trip (place, then immediately drain again) and land directly
    // in the fire buffer — the dominant path when a lone timer cascades
    // down to fire.  A cascade only runs when time moves forward, so no
    // live scratch entry (always due at the pre-advance now) can still be
    // waiting; dead left-overs are flushed before the first append.
    w.cascade.swap(vec);  // vec keeps the buffer's old (empty) capacity
    for (const BucketEntry& e : w.cascade) {
      if (e.at != t) {
        wheel_place(e.slot, e.at, e.seq, e.gen);
        continue;
      }
      if (!due_flushed) {
        w.scratch.clear();
        w.scratch_pos = 0;
        due_flushed = true;
      }
      slot_ref(e.slot).bucket = kBucketScratch;
      w.scratch.push_back(e);
    }
    w.cascade.clear();  // keeps capacity for the next cascade
  }
  if (due_flushed && w.scratch.size() > 1) {
    // Due entries arrived in bucket order; restore global insertion order.
    std::sort(w.scratch.begin(), w.scratch.end(),
              [](const BucketEntry& a, const BucketEntry& b2) {
                return a.seq < b2.seq;
              });
  }
  // Pull overflow events whose delay now fits the span (tombstones from
  // lazy cancels just pop).
  while (!w.overflow.empty()) {
    const HeapEntry top = w.overflow.front();
    const Slot& sl = slot_ref(top.slot);
    const bool alive =
        sl.live && sl.gen == top.gen && sl.bucket == kBucketOverflow;
    if (alive && top.at.ns() - t >= kWheelSpanNs) break;
    std::pop_heap(w.overflow.begin(), w.overflow.end(), FiresLater{});
    w.overflow.pop_back();
    if (alive) wheel_place(top.slot, top.at.ns(), top.seq, top.gen);
  }
}

std::int64_t Scheduler::wheel_level0_min() const {
  // Level-0 buckets are one nanosecond wide, so the bucket index alone
  // determines the fire time: the unique t in [cur, cur+1023] with
  // t mod 1024 == idx.  No slot or bucket memory is touched — just the
  // 128-byte level-0 occupancy bitmap, scanned circularly from the current index
  // (whose bucket holds events due exactly now).
  const Wheel& w = *wheel_;
  if (w.occ_count[0] == 0) return kNeverNs;  // no bitmap touch when empty
  const std::uint32_t c =
      static_cast<std::uint32_t>(w.cur) & (kWheelBuckets - 1);
  const int idx = find_set_circular(w.occupancy.data(), c, kWheelBuckets / 64);
  if (idx < 0) return kNeverNs;
  const std::int64_t base =
      w.cur & ~static_cast<std::int64_t>(kWheelBuckets - 1);
  return base + idx +
         (static_cast<std::uint32_t>(idx) < c ? kWheelBuckets : 0);
}

std::int64_t Scheduler::wheel_level_min(int level) {
  // Levels >= 1 only; level 0 is wheel_level0_min().  The cache is
  // maintained eagerly at every removal point (swap-remove, cascade,
  // clear), so a valid entry needs no revalidation load — the audit build
  // double checks that claim against the slot pool.
  Wheel& w = *wheel_;
  LevelMin& m = w.lmin[static_cast<std::size_t>(level)];
  if (!m.valid) wheel_rescan_level(level);
  WTCP_AUDIT_CHECK(
      m.slot == kNoSlot ||
          (slot_ref(m.slot).live && slot_ref(m.slot).gen == m.gen &&
           (slot_ref(m.slot).bucket >> kWheelBits) ==
               static_cast<std::uint32_t>(level)),
      "scheduler", "wheel_lmin_stale",
      "level-min cache points at a dead, recycled, or moved slot");
  return m.slot == kNoSlot ? kNeverNs : m.at;
}

void Scheduler::wheel_rescan_level(int level) {
  Wheel& w = *wheel_;
  LevelMin& m = w.lmin[static_cast<std::size_t>(level)];
  if (w.occ_count[static_cast<std::size_t>(level)] == 0) {
    m.at = kNeverNs;
    m.slot = kNoSlot;
    m.gen = 0;
    m.valid = true;  // level known empty, no bitmap touch
    return;
  }
  const std::uint32_t c = static_cast<std::uint32_t>(
      (w.cur >> (kWheelBits * level)) & (kWheelBuckets - 1));
  // Bucket scan order == fire-time order.  The bucket at the current
  // index is scanned LAST: placement deltas at level L span
  // [2^(10L), 2^(10L+10)), so that bucket can only hold next-lap events —
  // the latest at the level, not the earliest.
  const std::uint32_t start = (c + 1) & (kWheelBuckets - 1);
  const int idx = find_set_circular(
      w.occupancy.data() + level * (kWheelBuckets / 64), start,
      kWheelBuckets / 64);
  if (idx < 0) {
    m.at = kNeverNs;
    m.slot = kNoSlot;
    m.gen = 0;
    m.valid = true;  // level known empty
    return;
  }
  // The first occupied bucket in scan order holds the level's earliest
  // events; a streaming min-scan of its entry array picks the earliest
  // within it (same-prefix events differ in their low bits).
  const std::uint32_t b =
      static_cast<std::uint32_t>(level) * kWheelBuckets +
      static_cast<std::uint32_t>(idx);
  const BucketEntry* best = nullptr;
  for (const BucketEntry& e : w.bucket[b]) {
    if (best == nullptr || e.at < best->at) best = &e;
  }
  m.at = best->at;
  m.slot = best->slot;
  m.gen = best->gen;
  m.valid = true;
}

bool Scheduler::wheel_scratch_peek(std::uint32_t& out) {
  Wheel& w = *wheel_;
  while (w.scratch_pos < w.scratch.size()) {
    const BucketEntry& e = w.scratch[w.scratch_pos];
    const Slot& sl = slot_ref(e.slot);
    if (sl.live && sl.gen == e.gen && sl.bucket == kBucketScratch) {
      out = e.slot;
      return true;
    }
    ++w.scratch_pos;  // cancelled while waiting in the scratch buffer
  }
  if (!w.scratch.empty()) {
    w.scratch.clear();
    w.scratch_pos = 0;
  }
  return false;
}

std::int64_t Scheduler::wheel_find_earliest() {
  Wheel& w = *wheel_;
  if (w.next_memo_valid) return w.next_memo;
  if (w.solo_valid) {
    // Solo implies no other live event anywhere — the register IS the min.
    w.next_memo = w.solo.at;
    w.next_memo_valid = true;
    return w.solo.at;
  }
  std::int64_t best = kNeverNs;
  std::uint32_t s;
  if (wheel_scratch_peek(s)) best = slot_ref(s).at_ns;
  const std::int64_t l0 = wheel_level0_min();
  if (l0 < best) best = l0;
  for (int level = 1; level < kWheelLevels; ++level) {
    const std::int64_t m = wheel_level_min(level);
    if (m < best) best = m;
  }
  while (!w.overflow.empty()) {
    const HeapEntry& top = w.overflow.front();
    const Slot& sl = slot_ref(top.slot);
    if (sl.live && sl.gen == top.gen && sl.bucket == kBucketOverflow) {
      if (top.at.ns() < best) best = top.at.ns();
      break;
    }
    std::pop_heap(w.overflow.begin(), w.overflow.end(), FiresLater{});
    w.overflow.pop_back();  // tombstone from a lazy cancel
  }
  w.next_memo = best;
  w.next_memo_valid = true;
  return best;
}

bool Scheduler::wheel_run_one() {
  Wheel& w = *wheel_;
  const std::int64_t t = wheel_find_earliest();
  if (t == kNeverNs) return false;
  wheel_advance(t);
  std::uint32_t s;
  if (w.solo_valid) {
    // The solo register holds the only live event; fire it directly —
    // buckets, scratch and the occupancy bitmap hold nothing live.
    WTCP_AUDIT_CHECK(w.solo.at == t, "scheduler", "wheel_solo_time",
                     "solo register fire time disagrees with the minimum");
    s = w.solo.slot;
    w.solo_valid = false;
  } else if (wheel_scratch_peek(s)) {
    // Same-instant events can reach tick t along two paths: cascaded into
    // the fire buffer by the advance above, or placed into the level-0
    // bucket directly (scheduled with a sub-1024 ns delay).  When both
    // happened, merge the bucket in and re-sort so seq order still rules.
    const std::uint32_t b =
        static_cast<std::uint32_t>(t & (kWheelBuckets - 1));
    std::vector<BucketEntry>& vec = w.bucket[b];
    if (!vec.empty()) {
      w.occupancy[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
      --w.occ_count[0];
      for (const BucketEntry& e : vec) {
        slot_ref(e.slot).bucket = kBucketScratch;
        w.scratch.push_back(e);
      }
      vec.clear();
      // Drop the consumed prefix so it cannot resurface after the sort.
      w.scratch.erase(w.scratch.begin(),
                      w.scratch.begin() +
                          static_cast<std::ptrdiff_t>(w.scratch_pos));
      w.scratch_pos = 0;
      std::sort(w.scratch.begin(), w.scratch.end(),
                [](const BucketEntry& a, const BucketEntry& b2) {
                  return a.seq < b2.seq;
                });
      wheel_scratch_peek(s);  // reposition on the first live entry
    }
    ++w.scratch_pos;  // consume
  } else {
    // The due events sit in the level-0 bucket for tick t (one exact time
    // per level-0 bucket).  Same-instant events can arrive there along
    // different cascade paths, so a multi-event bucket is drained into the
    // scratch buffer and sorted by seq to restore global insertion order.
    const std::uint32_t b =
        static_cast<std::uint32_t>(t & (kWheelBuckets - 1));
    std::vector<BucketEntry>& vec = w.bucket[b];
    WTCP_AUDIT_CHECK(!vec.empty(), "scheduler", "wheel_due_bucket_empty",
                     "earliest-event bucket is empty at fire time");
    w.occupancy[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    --w.occ_count[0];
    if (vec.size() == 1) {
      s = vec.front().slot;  // single event: skip the scratch round-trip
      slot_ref(s).bucket = kBucketNone;
      vec.clear();
    } else {
      std::swap(w.scratch, vec);  // vec is left empty with swapped capacity
      for (const BucketEntry& e : w.scratch) {
        slot_ref(e.slot).bucket = kBucketScratch;
      }
      std::sort(w.scratch.begin(), w.scratch.end(),
                [](const BucketEntry& a, const BucketEntry& b2) {
                  return a.seq < b2.seq;
                });
      w.scratch_pos = 1;  // fire entry 0 now
      s = w.scratch.front().slot;
    }
  }
  Slot& slot = slot_ref(s);
  Callback cb = std::move(slot.cb);
  const char* tag = slot.tag;
  release_slot(s);  // before cb(): the event is no longer pending
  // The memoized minimum just fired.  If live same-tick events remain in
  // the scratch buffer they ARE the new minimum (nothing fires before
  // now); otherwise the next query rescans.
  std::uint32_t peek;
  if (wheel_scratch_peek(peek)) {
    w.next_memo = t;
    w.next_memo_valid = true;
  } else {
    w.next_memo_valid = false;
  }
  now_ = Time::nanoseconds(t);
  ++executed_;
  if (profiling_) ++tag_hits_[tag];
  cb();
  return true;
}

// --- shared front-ends -----------------------------------------------------

Time Scheduler::next_event_time() {
  if (impl_ == SchedulerImpl::kWheel) {
    return Time::nanoseconds(wheel_find_earliest());  // kNeverNs == max()
  }
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Slot& slot = slot_ref(top.slot);
    if (slot.live && slot.gen == top.gen) return top.at;
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});  // cancelled
    heap_.pop_back();
  }
  return Time::max();
}

bool Scheduler::heap_run_one() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
    heap_.pop_back();
    Slot& slot = slot_ref(top.slot);
    if (!slot.live || slot.gen != top.gen) continue;  // cancelled
    Callback cb = std::move(slot.cb);
    const char* tag = slot.tag;
    release_slot(top.slot);  // before cb(): the event is no longer pending
    now_ = top.at;
    ++executed_;
    if (profiling_) ++tag_hits_[tag];
    cb();
    return true;
  }
  return false;
}

bool Scheduler::run_one() {
  return impl_ == SchedulerImpl::kWheel ? wheel_run_one() : heap_run_one();
}

std::uint64_t Scheduler::run_until(Time until) {
  std::uint64_t n = 0;
  while (next_event_time() <= until && run_one()) ++n;
  if (now_ < until) {
    // No event exactly at `until`; still advance the clock so that now()
    // reflects the horizon the caller asked for.  The wheel's position
    // must track now() for placement deltas to stay exact.
    if (impl_ == SchedulerImpl::kWheel) wheel_advance(until.ns());
    now_ = until;
  }
  return n;
}

std::uint64_t Scheduler::run() {
  std::uint64_t n = 0;
  while (run_one()) ++n;
  return n;
}

void Scheduler::reserve(std::size_t events) {
  if (impl_ == SchedulerImpl::kHeap) heap_.reserve(events);
  while (chunks_.size() * kSlotChunkSize < events) {
    chunks_.emplace_back(std::make_unique<Slot[]>(kSlotChunkSize));
  }
}

void Scheduler::clear() {
  // Full O(n) slot-pool/queue audit at the natural quiescent point (between
  // experiment runs): the live count matches the live slots, the free list
  // plus live slots account for every slot, and the event core's own
  // bookkeeping reconciles against the pool — every heap entry naming a
  // live slot carries that slot's current generation; every live wheel
  // slot is reachable from exactly one bucket entry, scratch entry,
  // overflow entry, or the solo register.
  WTCP_AUDIT_ONLY({
    std::size_t live_slots = 0;
    for (std::uint32_t s = 0; s < slot_count_; ++s) {
      if (slot_ref(s).live) ++live_slots;
    }
    WTCP_AUDIT_CHECK(live_slots == live_, "scheduler", "live_count_mismatch",
                     "live slot scan disagrees with the live counter");
    std::size_t free_len = 0;
    for (std::uint32_t f = free_head_; f != kNoSlot; f = slot_ref(f).next) {
      ++free_len;
      WTCP_AUDIT_CHECK(f < slot_count_, "scheduler", "freelist_range",
                       "free-list link points outside the slot pool");
      if (f >= slot_count_) break;
    }
    WTCP_AUDIT_CHECK(free_len + live_slots == slot_count_, "scheduler",
                     "slot_accounting",
                     "free list + live slots do not cover the pool");
    for (const HeapEntry& e : heap_) {
      WTCP_AUDIT_CHECK(e.slot < slot_count_, "scheduler", "heap_slot_range",
                       "heap entry references a slot outside the pool");
      if (e.slot < slot_count_ && slot_ref(e.slot).live) {
        WTCP_AUDIT_CHECK(slot_ref(e.slot).gen >= e.gen, "scheduler",
                         "heap_generation",
                         "heap entry carries a generation from the future");
      }
    }
    if (wheel_) {
      const Wheel& w = *wheel_;
      std::size_t linked = 0;
      std::array<std::uint32_t, kWheelLevels> occ_recount{};
      for (std::uint32_t b = 0; b < kWheelBucketCount; ++b) {
        const bool occupied = (w.occupancy[b >> 6] >> (b & 63)) & 1;
        WTCP_AUDIT_CHECK(occupied == !w.bucket[b].empty(), "scheduler",
                         "wheel_occupancy_bit",
                         "occupancy bit disagrees with bucket emptiness");
        if (occupied) ++occ_recount[b >> kWheelBits];
        for (std::uint32_t i = 0; i < w.bucket[b].size(); ++i) {
          const BucketEntry& e = w.bucket[b][i];
          ++linked;
          WTCP_AUDIT_CHECK(
              e.slot < slot_count_ && slot_ref(e.slot).live &&
                  slot_ref(e.slot).gen == e.gen &&
                  slot_ref(e.slot).bucket == b && slot_ref(e.slot).idx == i,
              "scheduler", "wheel_bucket_membership",
              "bucket entry does not round-trip through its slot backref");
        }
      }
      for (std::size_t i = w.scratch_pos; i < w.scratch.size(); ++i) {
        const BucketEntry& e = w.scratch[i];
        const Slot& sl = slot_ref(e.slot);
        if (sl.live && sl.gen == e.gen && sl.bucket == kBucketScratch) {
          ++linked;
        }
      }
      for (const HeapEntry& e : w.overflow) {
        const Slot& sl = slot_ref(e.slot);
        if (sl.live && sl.gen == e.gen && sl.bucket == kBucketOverflow) {
          ++linked;
        }
      }
      if (w.solo_valid) {
        const Slot& sl = slot_ref(w.solo.slot);
        WTCP_AUDIT_CHECK(
            w.solo.slot < slot_count_ && sl.live && sl.gen == w.solo.gen &&
                sl.bucket == kBucketSolo,
            "scheduler", "wheel_solo_membership",
            "solo register does not round-trip through its slot backref");
        ++linked;
      }
      for (int level = 0; level < kWheelLevels; ++level) {
        WTCP_AUDIT_CHECK(
            occ_recount[static_cast<std::size_t>(level)] ==
                w.occ_count[static_cast<std::size_t>(level)],
            "scheduler", "wheel_occ_count",
            "per-level occupied-bucket counter disagrees with the bitmap");
      }
      WTCP_AUDIT_CHECK(audit::scheduler_wheel_membership(linked, live_),
                       "scheduler", "wheel_membership",
                       "bucket/scratch/overflow membership does not cover "
                       "every live slot exactly once");
    }
  })
  // Rebuild the free list so slot 0 is handed out first again, matching a
  // freshly-constructed scheduler.  (This sweep is linear by design — the
  // heap core's lazy tombstones never force an O(n log n) drain here.)
  free_head_ = kNoSlot;
  for (std::uint32_t s = slot_count_; s-- > 0;) {
    Slot& slot = slot_ref(s);
    if (slot.live) {
      slot.cb.reset();
      slot.tag = nullptr;
      slot.live = false;
      ++slot.gen;
    }
    slot.bucket = kBucketNone;
    slot.idx = 0;
    slot.next = free_head_;
    free_head_ = s;
  }
  heap_.clear();
  if (wheel_) {
    Wheel& w = *wheel_;
    for (std::uint32_t b = 0; b < kWheelBucketCount; ++b) {
      w.bucket[b].clear();
    }
    w.occupancy.fill(0);
    w.occ_count.fill(0);
    w.lmin.fill(LevelMin{});
    w.overflow.clear();
    w.scratch.clear();
    w.scratch_pos = 0;
    w.cascade.clear();  // always empty outside wheel_advance; belt&braces
    w.solo_valid = false;
    // The wheel's position stays pinned to now(), which clear() preserves.
    w.next_memo = kNeverNs;
    w.next_memo_valid = true;  // queue is now empty, and that is exact
  }
  live_ = 0;
}

std::map<std::string, std::uint64_t, std::less<>> Scheduler::executed_by_tag()
    const {
  // Tags are counted by pointer on the hot path; identical literals from
  // different translation units may have distinct addresses, so merge by
  // content here, at export time.
  std::map<std::string, std::uint64_t, std::less<>> merged;
  for (const auto& [tag, n] : tag_hits_) {
    merged[tag != nullptr ? std::string(tag) : std::string("untagged")] += n;
  }
  return merged;
}

}  // namespace wtcp::sim
