#include "src/sim/scheduler.hpp"

#include <cassert>
#include <string_view>
#include <utility>

namespace wtcp::sim {

EventId Scheduler::schedule_at(Time at, Callback cb, const char* tag) {
  assert(cb);
  if (at < now_) at = now_;  // never schedule into the past
  const std::uint64_t id = next_id_++;
  heap_.push(HeapEntry{at, next_seq_++, id});
  callbacks_.emplace(id, Entry{std::move(cb), tag});
  if (callbacks_.size() > max_depth_) max_depth_ = callbacks_.size();
  return EventId{id};
}

EventId Scheduler::schedule_after(Time delay, Callback cb, const char* tag) {
  if (delay.is_negative()) delay = Time::zero();
  return schedule_at(now_ + delay, std::move(cb), tag);
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  return callbacks_.erase(id.raw()) > 0;
}

Time Scheduler::next_event_time() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();  // drop cancelled entries
  }
  return heap_.empty() ? Time::max() : heap_.top().at;
}

bool Scheduler::run_one() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second.cb);
    const char* tag = it->second.tag;
    callbacks_.erase(it);
    now_ = top.at;
    ++executed_;
    if (profiling_) {
      const std::string_view key = tag ? tag : "untagged";
      auto pit = executed_by_tag_.find(key);
      if (pit == executed_by_tag_.end()) {
        pit = executed_by_tag_.emplace(std::string(key), 0).first;
      }
      ++pit->second;
    }
    cb();
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run_until(Time until) {
  std::uint64_t n = 0;
  while (next_event_time() <= until && run_one()) ++n;
  if (now_ < until && heap_.empty()) {
    // No event exactly at `until`; still advance the clock so that now()
    // reflects the horizon the caller asked for.
    now_ = until;
  } else if (now_ < until) {
    now_ = until;
  }
  return n;
}

std::uint64_t Scheduler::run() {
  std::uint64_t n = 0;
  while (run_one()) ++n;
  return n;
}

void Scheduler::clear() {
  callbacks_.clear();
  while (!heap_.empty()) heap_.pop();
}

}  // namespace wtcp::sim
