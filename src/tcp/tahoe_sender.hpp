// TCP bulk-transfer source, in the style of ns-1's TCP agents (the
// simulator the paper used).  The sender owns reliability — sequence
// space, the retransmission timer, the SACK scoreboard, and the
// fast-recovery episode state machine — while all window math is
// delegated to a pluggable CongestionControl strategy (src/tcp/cc/):
// Tahoe (the paper's choice), Reno, NewReno, Westwood+, and CERL.
//
// All flavors use Jacobson RTO with Karn's rule, exponential backoff, and
// segment-granularity sequence numbers.
//
// Extensions for the paper's mechanisms:
//   * EBSN (Section 4.2.3 / appendix): on receiving an Explicit Bad State
//     Notification the source re-arms its retransmission timer with the
//     CURRENT timeout value — RTT estimate, variance, backoff and cwnd are
//     untouched.
//   * ICMP Source Quench (Section 4.2.2): classic 4.3BSD response, cwnd
//     collapses to one segment; shown by the paper NOT to prevent
//     timeouts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/net/node.hpp"
#include "src/net/packet.hpp"
#include "src/obs/probe.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/trace.hpp"
#include "src/tcp/cc/congestion_control.hpp"
#include "src/tcp/rto_estimator.hpp"

namespace wtcp::tcp {

/// How packets leave an agent toward the network.
using PacketForwarder = std::function<void(net::PacketRef)>;

struct TcpConfig {
  TcpFlavor flavor = TcpFlavor::kTahoe;
  std::uint64_t conn = 0;  ///< connection id (multi-connection scenarios)
  std::int32_t mss = 536;           ///< payload bytes per segment
  std::int32_t header_bytes = 40;   ///< TCP/IP header (paper: 40 B)
  std::int64_t window_bytes = 4096; ///< receiver advertised window (paper: 4 KB WAN, 64 KB LAN)
  std::int64_t file_bytes = 100 * 1024;  ///< bulk transfer size
  std::int32_t dupack_threshold = 3;
  RtoConfig rto;

  bool react_to_ebsn = true;    ///< honor EBSN messages (paper appendix)
  bool react_to_quench = true;  ///< honor ICMP source quench

  /// Flavor tuning knobs forwarded to the congestion-control strategy
  /// (Westwood+ filter, CERL threshold position).
  CcTuning cc;

  /// Receiver-side ACK pacing (PAPERS.md: Bhutani's near-optimal scheme):
  /// in-order cumulative ACKs are released no closer together than
  /// ack_pacing_interval, coalescing the in-between ones — the sender
  /// sees a smooth, clocked ACK stream instead of wireless-link bursts.
  /// Out-of-order and duplicate data is always ACKed immediately (those
  /// dupacks drive fast retransmit), flushing any pending paced ACK.
  bool ack_pacing = false;
  sim::Time ack_pacing_interval = sim::Time::milliseconds(50);

  /// Receiver-side delayed ACKs (RFC 1122): ACK every second in-order
  /// segment or after delack_timeout, whichever first.  Out-of-order data
  /// is always ACKed immediately (dupacks drive fast retransmit).  The
  /// paper's ns-1 sink ACKs every segment, so this defaults off.
  bool delayed_ack = false;
  sim::Time delack_timeout = sim::Time::milliseconds(200);

  /// Model connection establishment and teardown: a SYN / SYN-ACK
  /// exchange before data (with retransmission and an RTT sample) and a
  /// FIN / FIN-ACK afterwards.  The paper's ns-1 agents start mid-stream,
  /// so this defaults off; it costs one extra RTT at each end.
  bool connect_handshake = false;

  /// Selective acknowledgments (RFC 2018, contemporaneous with the
  /// paper): the sink advertises up to 3 out-of-order blocks; the sender
  /// keeps a scoreboard, retransmits only holes during Reno/NewReno fast
  /// recovery, and skips SACKed segments in Tahoe's post-timeout
  /// go-back-N.  Defaults off (the paper's TCP has no SACK).
  bool sack_enabled = false;

  /// Number of segments the transfer comprises.
  std::int64_t total_segments() const {
    return (file_bytes + mss - 1) / mss;
  }
  /// Advertised window in segments (>= 1).
  std::int64_t window_segments() const {
    return std::max<std::int64_t>(1, window_bytes / mss);
  }
};

/// Connection lifecycle (only advances when connect_handshake is on).
enum class ConnState : std::uint8_t {
  kClosed,
  kSynSent,
  kEstablished,
  kFinSent,
  kDone,
};

const char* to_string(ConnState s);

struct TcpSenderStats {
  std::uint64_t syn_sent = 0;             ///< SYN transmissions (incl. rtx)
  std::uint64_t fin_sent = 0;             ///< FIN transmissions (incl. rtx)
  std::uint64_t segments_sent = 0;        ///< first transmissions
  std::uint64_t segments_retransmitted = 0;
  std::int64_t payload_bytes_sent = 0;    ///< includes retransmissions
  std::int64_t payload_bytes_retransmitted = 0;
  std::int64_t wire_bytes_sent = 0;       ///< payload + headers, all tx
  std::uint64_t acks_received = 0;
  std::uint64_t dupacks_received = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t rtt_samples = 0;
  std::uint64_t ebsn_received = 0;
  std::uint64_t quench_received = 0;
  bool completed = false;
  sim::Time start_time;
  sim::Time finish_time;  ///< when the final ACK arrived
};

/// The TCP source embedded in the fixed host.
class TcpSender final : public net::PacketSink {
 public:
  TcpSender(sim::Simulator& sim, TcpConfig cfg, net::NodeId self, net::NodeId peer,
            std::string name);

  /// Where outgoing segments go (the wired link endpoint).
  void set_downstream(PacketForwarder fwd) { downstream_ = std::move(fwd); }

  /// Optional event trace (Figures 3-5).
  void set_trace(stats::ConnectionTrace* trace) { trace_ = trace; }

  /// Begin the bulk transfer at time `at` (defaults to immediately).
  void start();
  void start_at(sim::Time at);

  /// Network delivery entry point: ACKs, EBSNs, source quenches.
  void handle_packet(net::PacketRef pkt) override;

  /// Fired once when the final ACK arrives.
  std::function<void()> on_complete;

  // Observers (tests, experiment harness).
  const TcpSenderStats& stats() const { return stats_; }
  double cwnd() const { return cc_->cwnd(); }
  double ssthresh() const { return cc_->ssthresh(); }
  std::int64_t snd_una() const { return snd_una_; }
  std::int64_t snd_nxt() const { return snd_nxt_; }
  std::size_t sacked_count() const { return sacked_.size(); }
  std::int64_t total_segments() const { return total_segments_; }
  const RtoEstimator& rto_estimator() const { return estimator_; }
  bool rtx_timer_pending() const { return sim_.pending(rtx_timer_); }
  /// Absolute expiry of the pending retransmission timer (tests: the
  /// SACK-hole-retransmit rearm regression watches this move).
  sim::Time rtx_deadline() const { return rtx_deadline_; }
  bool in_fast_recovery() const { return in_fast_recovery_; }
  ConnState conn_state() const { return conn_state_; }
  const TcpConfig& config() const { return cfg_; }
  /// The congestion-control strategy driving this sender's window.
  const CongestionControl& congestion_control() const { return *cc_; }

 private:
  void send_segments();
  void transmit(std::int64_t seq);
  void send_syn();
  void send_fin();
  net::PacketRef make_control_segment(bool syn, bool fin);
  void absorb_sack(const net::TcpHeader& hdr);
  /// First un-SACKed, not-yet-retransmitted hole in (snd_una, recover],
  /// or -1.  SACK-directed recovery only.
  std::int64_t next_sack_hole() const;
  std::int64_t effective_window() const;
  std::int32_t payload_of(std::int64_t seq) const;
  void set_rtx_timer();
  void cancel_rtx_timer();
  void on_rtx_timeout();
  void on_ack(const net::Packet& pkt);
  void on_new_ack(std::int64_t ack);
  void on_dupack();
  void on_ebsn();
  void on_quench();
  void complete();
  void trace(stats::TraceEvent e, std::int64_t seq);
  /// Harvest the Karn-guarded RTT sample for `ack` (if any) and package
  /// the event context every CongestionControl hook receives.
  CcAck make_cc_ack(std::int64_t newly_acked);

  sim::Simulator& sim_;
  TcpConfig cfg_;
  net::NodeId self_;
  net::NodeId peer_;
  std::string name_;
  PacketForwarder downstream_;
  stats::ConnectionTrace* trace_ = nullptr;
  /// Probe bus (null when observability is off).  One counter per trace
  /// event type, indexed by stats::TraceEvent.
  obs::Registry* bus_ = nullptr;
  obs::Counter* event_counters_[10] = {};
  obs::Histogram* ebsn_rearm_hist_ = nullptr;
  obs::TraceSink* tsink_ = nullptr;

  RtoEstimator estimator_;
  std::int64_t total_segments_;
  std::int64_t snd_una_ = 0;       ///< oldest unacknowledged segment
  std::int64_t snd_nxt_ = 0;       ///< next segment to transmit
  std::int64_t max_seq_sent_ = -1; ///< highest segment ever transmitted
  /// Window math lives in the strategy (src/tcp/cc/); the sender keeps
  /// the reliability and recovery-episode state machine.
  std::unique_ptr<CongestionControl> cc_;
  std::int32_t dupacks_ = 0;
  bool in_fast_recovery_ = false;  ///< Reno/NewReno only
  std::int64_t recover_ = -1;      ///< NewReno: highest seq sent at loss
  std::set<std::int64_t> sacked_;          ///< SACK scoreboard (>= snd_una)
  std::set<std::int64_t> episode_rtx_;     ///< holes retransmitted this recovery

  // Single-timer RTT measurement (one segment timed at a time, as in BSD).
  std::int64_t timing_seq_ = -1;
  sim::Time timing_sent_at_;
  std::vector<bool> ever_retransmitted_;

  sim::EventId rtx_timer_;
  /// Absolute expiry of the pending rtx timer — lets EBSN handling report
  /// how much lead time the re-arm bought (timer state alone can't).
  sim::Time rtx_deadline_;
  TcpSenderStats stats_;
  bool started_ = false;
  ConnState conn_state_ = ConnState::kEstablished;  ///< kClosed when handshaking
  sim::Time syn_sent_at_;
};

/// The paper's experiments all use Tahoe; most of this codebase predates
/// the Reno extension and refers to the sender by that name.
using TahoeSender = TcpSender;

}  // namespace wtcp::tcp
