// Jacobson/Karn retransmission-timeout estimation with a coarse-grained
// clock, in the style of 4.3BSD/ns TCP.
//
// Round-trip times are measured to the nearest clock tick (the paper sets
// the granularity to 100 ms) and smoothed with the classic fixed-point
// filter: srtt gain 1/8, rttvar gain 1/4, RTO = srtt + 4*rttvar.  Karn's
// rule lives in the sender (no samples from retransmitted segments); the
// exponential backoff multiplier is managed here.
#pragma once

#include <cstdint>

#include "src/obs/probe.hpp"
#include "src/sim/time.hpp"

namespace wtcp::tcp {

struct RtoConfig {
  sim::Time granularity = sim::Time::milliseconds(100);  ///< TCP clock tick
  sim::Time initial_rto = sim::Time::seconds(3);  ///< before the first sample
  sim::Time min_rto = sim::Time::milliseconds(200);  ///< >= 2 ticks classically
  sim::Time max_rto = sim::Time::seconds(64);
  std::int32_t max_backoff_shift = 6;  ///< backoff caps at 2^6 = 64x
};

class RtoEstimator {
 public:
  explicit RtoEstimator(RtoConfig cfg);

  /// Feed one RTT measurement (only for never-retransmitted segments —
  /// Karn's rule is enforced by the caller).
  void add_sample(sim::Time rtt);

  /// Current timeout including the backoff multiplier, clamped to
  /// [min_rto, max_rto].
  sim::Time rto() const;

  /// Timeout without backoff (the base estimate).
  sim::Time base_rto() const;

  /// Double the timeout (consecutive loss).  Saturates at
  /// 2^max_backoff_shift.
  void back_off();

  /// An ACK for a non-retransmitted segment arrived: drop the backoff.
  void reset_backoff() {
    backoff_shift_ = 0;
    update_rto_gauge();
  }

  std::int32_t backoff_shift() const { return backoff_shift_; }
  bool has_sample() const { return has_sample_; }

  /// Smoothed estimates (for tests/diagnostics).
  sim::Time srtt() const;
  sim::Time rttvar() const;

  const RtoConfig& config() const { return cfg_; }

  /// RTT quantized to clock ticks, as the estimator will perceive it.
  std::int64_t to_ticks(sim::Time rtt) const;

  /// Publish samples/backoffs/current-RTO to the probe bus (no-op with a
  /// null registry).  Called by the owning sender when observability is on.
  void bind_probes(obs::Registry* registry);

 private:
  void update_rto_gauge();

  obs::Counter* probe_samples_ = nullptr;
  obs::Counter* probe_backoffs_ = nullptr;
  obs::Gauge* probe_rto_s_ = nullptr;
  RtoConfig cfg_;
  // BSD fixed point: sa = 8*srtt_ticks, sv = 4*rttvar_ticks.
  std::int64_t sa_ = 0;
  std::int64_t sv_ = 0;
  bool has_sample_ = false;
  std::int32_t backoff_shift_ = 0;
};

}  // namespace wtcp::tcp
