// TCP sink (receiver) embedded in the mobile host: cumulative ACKs, one
// ACK per arriving data segment (no delayed ACKs, as in ns-1's sink),
// duplicate-ACK generation for out-of-order arrivals.  Optional ACK
// pacing (PAPERS.md: Bhutani) releases in-order cumulative ACKs no
// closer together than a configured interval, coalescing the in-between
// ones, so the sender sees a smooth ACK clock instead of the wireless
// link's bursts; dupacks and control ACKs always bypass the pacer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/net/packet.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/quantiles.hpp"
#include "src/stats/trace.hpp"
#include "src/tcp/tahoe_sender.hpp"  // TcpConfig, PacketForwarder

namespace wtcp::tcp {

struct TcpSinkStats {
  std::uint64_t segments_received = 0;   ///< all data arrivals, incl. dups
  std::uint64_t duplicate_segments = 0;  ///< already-delivered data
  std::uint64_t out_of_order_segments = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_delayed = 0;  ///< ACKs coalesced by delayed-ACK mode
  std::uint64_t acks_paced = 0;    ///< in-order ACKs deferred by the pacer
  std::uint64_t syns_received = 0;
  std::uint64_t fins_received = 0;
  std::int64_t payload_bytes_received = 0;  ///< all arrivals
  std::int64_t unique_payload_bytes = 0;    ///< useful (goodput numerator)
  std::int64_t delivered_wire_bytes = 0;    ///< unique payload + header per
                                            ///< delivered segment
  bool completed = false;
  sim::Time first_data_time;
  sim::Time completion_time;  ///< when the final in-order byte arrived
};

class TcpSink final : public net::PacketSink {
 public:
  TcpSink(sim::Simulator& sim, TcpConfig cfg, net::NodeId self, net::NodeId peer,
          std::string name);

  /// Where ACKs leave (the mobile host's wireless interface).
  void set_downstream(PacketForwarder fwd) { downstream_ = std::move(fwd); }

  void set_trace(stats::ConnectionTrace* trace) { trace_ = trace; }

  void handle_packet(net::PacketRef pkt) override;

  /// Force `n` duplicate ACKs for the current cumulative position — the
  /// Caceres & Iftode [4] trick: after a handoff completes, trigger the
  /// source's fast retransmit instead of waiting for its (backed-off)
  /// timer.  No-op before any data arrived or after completion.
  void force_duplicate_acks(std::int32_t n);

  /// Fired when the whole file has been received in order.
  std::function<void()> on_complete;

  const TcpSinkStats& stats() const { return stats_; }
  std::int64_t rcv_next() const { return rcv_next_; }

  /// End-to-end delay distribution (source transmission -> first arrival
  /// here) over fresh segments, seconds.  Retransmitted copies count from
  /// their own transmission time — the user-perceived delivery latency.
  const stats::Quantiles& delay() const { return delay_; }

 private:
  void deliver_in_order();
  /// Build and transmit the cumulative ACK for the current rcv_next.
  void emit_ack();
  /// Urgent path: flush any pending paced/delayed state and ACK at once.
  void send_ack_now();
  /// Pacing path (in-order arrivals only): release immediately if the
  /// pacing gap has elapsed, otherwise coalesce into one ACK scheduled at
  /// the next release time.
  void paced_ack();
  void maybe_delay_ack(bool in_order);
  void handle_control_segment(const net::TcpHeader& hdr);
  void fill_sack_blocks(net::TcpHeader& hdr) const;

  sim::Simulator& sim_;
  TcpConfig cfg_;
  net::NodeId self_;
  net::NodeId peer_;
  std::string name_;
  PacketForwarder downstream_;
  stats::ConnectionTrace* trace_ = nullptr;

  std::int64_t rcv_next_ = 0;                      ///< next expected segment
  std::map<std::int64_t, std::int32_t> buffered_;  ///< out-of-order: seq -> payload
  std::int32_t unacked_in_order_ = 0;              ///< delayed-ACK counter
  sim::EventId delack_timer_;
  sim::EventId pace_timer_;
  sim::Time next_ack_release_;   ///< earliest time the next paced ACK may go
  bool ack_pending_ = false;     ///< a coalesced ACK awaits the pace timer
  stats::Quantiles delay_;
  TcpSinkStats stats_;
  obs::Histogram* e2e_hist_ = nullptr;
  obs::TraceSink* tsink_ = nullptr;
};

}  // namespace wtcp::tcp
