// Westwood+ — bandwidth-estimate-driven loss response.
//
// The ACK stream is integrated into per-RTT bandwidth samples pushed
// through a first-order low-pass filter.  On loss, ssthresh is set to the
// estimated bandwidth-delay product (BWE * RTTmin / MSS) instead of half
// the flight: a random wireless loss barely moves the estimate, so the
// window returns to the link rate in one RTT rather than rebuilding from
// half.  Recovery bookkeeping is inherited from NewReno.
#include <algorithm>
#include <cmath>

#include "src/tcp/cc/strategies.hpp"

namespace wtcp::tcp {

void WestwoodCc::close_epoch(sim::Time now) {
  const double span_s = (now - epoch_start_).to_seconds();
  if (span_s <= 0.0) return;
  const double sample_Bps = epoch_bytes_ / span_s;
  // First-order low-pass over paired raw samples (a fixed-coefficient
  // discretization of 1/(1 + s*tau); ns-3's TcpWestwoodPlus uses the
  // same shape).  Deterministic: inputs come only from hook arguments.
  const double pole = tuning_.westwood_filter_pole;
  if (bwe_Bps_ == 0.0) {
    bwe_Bps_ = sample_Bps;  // seed the filter with the first sample
  } else {
    bwe_Bps_ = pole * bwe_Bps_ +
               (1.0 - pole) * 0.5 * (sample_Bps + prev_sample_Bps_);
  }
  prev_sample_Bps_ = sample_Bps;
  epoch_bytes_ = 0.0;
  epoch_start_ = now;
  obs::set(bw_gauge_, bwe_Bps_ * 8.0);  // published in bits/s
}

void WestwoodCc::on_ack_stream(const CcAck& ack) {
  if (ack.rtt_sample_valid &&
      (rtt_min_.is_zero() || ack.rtt_sample < rtt_min_)) {
    rtt_min_ = ack.rtt_sample;
    obs::set(rtt_min_gauge_, rtt_min_.to_seconds());
  }
  if (!epoch_open_) {
    epoch_open_ = true;
    epoch_start_ = ack.now;
  }
  // A duplicate ACK still signals one segment's worth of delivered data.
  const double segs = ack.acked_segments > 0.0 ? ack.acked_segments : 1.0;
  epoch_bytes_ += segs * static_cast<double>(mss_);
  // Sample once per smoothed RTT (floored so a burst of back-to-back
  // ACKs cannot drive the filter).
  sim::Time epoch = ack.srtt;
  if (epoch < tuning_.westwood_min_epoch) epoch = tuning_.westwood_min_epoch;
  if (ack.now - epoch_start_ >= epoch) close_epoch(ack.now);
}

double WestwoodCc::bdp_ssthresh() const {
  if (bwe_Bps_ <= 0.0 || rtt_min_.is_zero()) {
    // No estimate yet: Reno halving is the only defensible response.
    return std::max(2.0, std::floor(flight() / 2.0));
  }
  const double bdp_segments =
      bwe_Bps_ * rtt_min_.to_seconds() / static_cast<double>(mss_);
  return std::max(2.0, std::floor(bdp_segments));
}

bool WestwoodCc::on_dupack_threshold(const CcAck&) {
  ssthresh_ = bdp_ssthresh();
  // NewReno recovery shape around the bandwidth-derived threshold.
  cwnd_ = ssthresh_ + static_cast<double>(dupack_threshold_);
  return true;
}

void WestwoodCc::on_timeout(const CcAck&) {
  ssthresh_ = bdp_ssthresh();
  cwnd_ = 1.0;
}

void WestwoodCc::bind_probes(obs::Registry& reg) {
  bw_gauge_ = reg.gauge("cc.bw_est_bps");
  rtt_min_gauge_ = reg.gauge("cc.rtt_min_s");
}

}  // namespace wtcp::tcp
