// Pluggable congestion control for the TCP sender (ROADMAP item 2).
//
// TcpSender owns reliability (sequence space, retransmission timer, SACK
// scoreboard, the fast-recovery episode bookkeeping); a CongestionControl
// strategy owns the window math: cwnd and ssthresh live here, and every
// congestion-relevant event is forwarded through a narrow hook interface.
// The classic flavors (Tahoe / Reno / NewReno) are re-implemented as the
// first three strategies, operation-for-operation identical to the code
// they were extracted from so the hexfloat goldens stay bit-identical.
// On top of them:
//
//   * Westwood+  — bandwidth-estimate-driven ssthresh: the ACK stream is
//     integrated into a low-pass-filtered rate estimate, and a loss sets
//     ssthresh to the estimated bandwidth-delay product instead of half
//     the flight (random wireless loss barely dents the estimate, so the
//     window recovers far faster than Reno's blind halving).
//   * CERL — RTT-threshold loss differentiation: losses that arrive while
//     the smoothed RTT sits below a threshold between RTTmin and RTTmax
//     are classified as wireless (the queue is short, so congestion is
//     implausible) and do NOT shrink the window.
//
// Strategies must stay deterministic: no clocks, no randomness — every
// input arrives through the hook arguments.
#pragma once

#include <cstdint>
#include <memory>

#include "src/obs/probe.hpp"
#include "src/sim/time.hpp"

namespace wtcp::tcp {

enum class TcpFlavor : std::uint8_t {
  kTahoe,     ///< loss => slow start from cwnd = 1 (the paper's TCP)
  kReno,      ///< fast recovery after fast retransmit
  kNewReno,   ///< + partial-ACK handling: multiple losses per window heal
              ///< inside one fast-recovery episode (RFC 6582 style)
  kWestwood,  ///< Westwood+: bandwidth-estimate-driven ssthresh after loss
  kCerl,      ///< CERL: RTT-threshold loss differentiation for wireless
};

const char* to_string(TcpFlavor f);

/// Explicit network feedback forwarded to the strategy.
enum class CcFeedback : std::uint8_t {
  kEbsn,          ///< paper's Explicit Bad State Notification (timer-only;
                  ///< strategies must leave cwnd/ssthresh untouched — the
                  ///< sender audits this)
  kSourceQuench,  ///< ICMP source quench (classic 4.3BSD: cwnd -> 1)
};

/// Per-event context handed to every hook.  `acked_segments` is the
/// cumulative advance (0 for duplicate ACKs and timeouts); the RTT fields
/// mirror what the sender's Jacobson estimator saw on this event.
struct CcAck {
  sim::Time now;
  double acked_segments = 0.0;
  bool rtt_sample_valid = false;  ///< a Karn-clean sample arrived with this ACK
  sim::Time rtt_sample;           ///< valid only when rtt_sample_valid
  sim::Time srtt;                 ///< smoothed RTT (zero before first sample)
};

/// Flavor tuning knobs (TcpConfig::cc).
struct CcTuning {
  /// Westwood+: first-order low-pass filter on the per-RTT bandwidth
  /// samples, bwe = pole * bwe + (1 - pole)/2 * (sample_k + sample_{k-1}).
  double westwood_filter_pole = 0.9;
  /// Westwood+: minimum bandwidth-sampling epoch (used before the first
  /// RTT estimate exists, and as a floor under very short RTTs).
  sim::Time westwood_min_epoch = sim::Time::milliseconds(50);
  /// CERL: loss-classification threshold position between RTTmin and
  /// RTTmax — threshold = RTTmin + alpha * (RTTmax - RTTmin).  A loss
  /// seen while srtt < threshold is classified wireless.
  double cerl_alpha = 0.55;
};

/// Construction parameters: the slice of TcpConfig the window math needs.
struct CcParams {
  double awnd = 8.0;  ///< advertised window, segments (growth clamp)
  std::int32_t mss = 536;
  std::int32_t dupack_threshold = 3;
  CcTuning tuning;
};

/// Strategy interface.  One instance per sender per run; all hooks are
/// invoked from the sender's event handlers (single-threaded, in event
/// order), and the strategy owns cwnd/ssthresh between calls.
class CongestionControl {
 public:
  explicit CongestionControl(const CcParams& p)
      : awnd_(p.awnd),
        mss_(p.mss),
        dupack_threshold_(p.dupack_threshold),
        tuning_(p.tuning),
        ssthresh_(p.awnd) {}
  virtual ~CongestionControl() = default;

  CongestionControl(const CongestionControl&) = delete;
  CongestionControl& operator=(const CongestionControl&) = delete;

  virtual const char* name() const = 0;
  virtual TcpFlavor flavor() const = 0;

  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }

  /// Does a partial ACK (below `recover`) keep the fast-recovery episode
  /// alive (RFC 6582)?  False = plain-Reno semantics: any new ACK exits.
  virtual bool partial_ack_stays_in_recovery() const { return false; }

  /// Every ACK arriving at the sender — new or duplicate — before the
  /// recovery state machine acts.  The strategy's tap on the ACK stream
  /// (Westwood+ bandwidth estimation, CERL RTT-range bookkeeping).
  virtual void on_ack_stream(const CcAck&) {}

  /// New cumulative ACK in normal operation: grow the window (default:
  /// slow start below ssthresh, else congestion avoidance).
  virtual void on_new_ack(const CcAck&) { grow_window(); }

  /// NewReno partial ACK — recovery continues.  Default: deflate by the
  /// amount acknowledged plus one for the retransmission that left.
  virtual void on_partial_ack(const CcAck&, double acked_segments);

  /// Duplicate ACK while already in fast recovery: Reno window inflation
  /// (one more segment has left the network).
  virtual void on_recovery_dupack(const CcAck&) { cwnd_ += 1.0; }

  /// DupThresh duplicate ACKs: a loss was detected.  Adjust the windows
  /// and return true to enter fast recovery (Reno family), false to
  /// restart from slow start (Tahoe).
  virtual bool on_dupack_threshold(const CcAck&) = 0;

  /// The full ACK that ends fast recovery.  RFC 6582: deflate to ssthresh
  /// with NO additive increase on this ACK.
  virtual void on_recovery_exit(const CcAck&) { cwnd_ = ssthresh_; }

  /// Retransmission timeout (always aborts any fast-recovery episode).
  virtual void on_timeout(const CcAck&) { collapse(); }

  /// Explicit network feedback.  EBSN is timer-only by the paper's
  /// definition — the default keeps the window untouched for it and
  /// applies the classic 4.3BSD quench collapse (cwnd -> 1, ssthresh
  /// unchanged) for source quench.
  virtual void on_explicit_feedback(CcFeedback kind) {
    if (kind == CcFeedback::kSourceQuench) cwnd_ = 1.0;
  }

  /// Bind flavor-specific cc.* probes (docs/observability.md).  Default:
  /// nothing to publish.
  virtual void bind_probes(obs::Registry&) {}

 protected:
  /// One ACK's worth of growth: slow start below ssthresh, ~1/cwnd in
  /// congestion avoidance, clamped just past the advertised window.
  /// Exactly the arithmetic the pre-extraction sender used (goldens).
  void grow_window();

  /// Tahoe-style loss response: ssthresh = half the flight (min 2),
  /// window back to one segment.
  void collapse();

  /// Segments believed in the network (cwnd capped by the receiver).
  double flight() const { return cwnd_ < awnd_ ? cwnd_ : awnd_; }

  double awnd_;
  std::int32_t mss_;
  std::int32_t dupack_threshold_;
  CcTuning tuning_;
  double cwnd_ = 1.0;
  double ssthresh_;
};

/// Factory: one strategy instance per sender per run.
std::unique_ptr<CongestionControl> make_congestion_control(TcpFlavor flavor,
                                                           const CcParams& p);

}  // namespace wtcp::tcp
