#include "src/tcp/cc/congestion_control.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/audit.hpp"
#include "src/tcp/cc/strategies.hpp"

namespace wtcp::tcp {

const char* to_string(TcpFlavor f) {
  switch (f) {
    case TcpFlavor::kTahoe: return "tahoe";
    case TcpFlavor::kReno: return "reno";
    case TcpFlavor::kNewReno: return "newreno";
    case TcpFlavor::kWestwood: return "westwood";
    case TcpFlavor::kCerl: return "cerl";
  }
  return "?";
}

void CongestionControl::grow_window() {
  WTCP_AUDIT_ONLY(const double cwnd_before = cwnd_;)
  if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;  // slow start: one segment per ACK
  } else {
    cwnd_ += 1.0 / cwnd_;  // congestion avoidance: ~one segment per RTT
  }
  cwnd_ = std::min(cwnd_, awnd_ + 1.0);  // no point growing far past awnd
  // Opening the window must never shrink it.
  WTCP_AUDIT_CHECK(cwnd_ >= cwnd_before || cwnd_before > awnd_, "tcp",
                   "cwnd_monotonic_open", "grow_window shrank the window");
}

void CongestionControl::collapse() {
  // Tahoe: ssthresh = half the effective window (min 2 segments), window
  // back to one segment, restart slow start.
  ssthresh_ = std::max(2.0, std::floor(flight() / 2.0));
  cwnd_ = 1.0;
}

void CongestionControl::on_partial_ack(const CcAck&, double acked_segments) {
  // RFC 6582: deflate by the amount acknowledged, plus one for the
  // retransmission that just left the network.
  cwnd_ = std::max(ssthresh_, cwnd_ - acked_segments + 1.0);
}

std::unique_ptr<CongestionControl> make_congestion_control(TcpFlavor flavor,
                                                           const CcParams& p) {
  switch (flavor) {
    case TcpFlavor::kTahoe: return std::make_unique<TahoeCc>(p);
    case TcpFlavor::kReno: return std::make_unique<RenoCc>(p);
    case TcpFlavor::kNewReno: return std::make_unique<NewRenoCc>(p);
    case TcpFlavor::kWestwood: return std::make_unique<WestwoodCc>(p);
    case TcpFlavor::kCerl: return std::make_unique<CerlCc>(p);
  }
  return std::make_unique<TahoeCc>(p);  // unreachable
}

}  // namespace wtcp::tcp
