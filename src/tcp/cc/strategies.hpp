// The five concrete congestion-control strategies.  Declared here (not
// only behind the factory) so tests can poke at flavor-specific state —
// Westwood's bandwidth estimate, CERL's classification counters.
#pragma once

#include "src/tcp/cc/congestion_control.hpp"

namespace wtcp::tcp {

/// The paper's TCP: no fast recovery; any loss signal collapses the
/// window to one segment and restarts slow start.
class TahoeCc : public CongestionControl {
 public:
  using CongestionControl::CongestionControl;
  const char* name() const override { return "tahoe"; }
  TcpFlavor flavor() const override { return TcpFlavor::kTahoe; }
  bool on_dupack_threshold(const CcAck&) override {
    collapse();
    return false;  // no fast recovery: go-back-N via slow start
  }
};

/// Reno: fast recovery after fast retransmit — halve, inflate by the
/// dupacks already seen, deflate to ssthresh on the next new ACK.
class RenoCc : public CongestionControl {
 public:
  using CongestionControl::CongestionControl;
  const char* name() const override { return "reno"; }
  TcpFlavor flavor() const override { return TcpFlavor::kReno; }
  bool on_dupack_threshold(const CcAck&) override;
};

/// NewReno (RFC 6582): Reno whose fast-recovery episode survives partial
/// ACKs, healing multiple losses per window without a timeout.
class NewRenoCc : public RenoCc {
 public:
  using RenoCc::RenoCc;
  const char* name() const override { return "newreno"; }
  TcpFlavor flavor() const override { return TcpFlavor::kNewReno; }
  bool partial_ack_stays_in_recovery() const override { return true; }
};

/// Westwood+: NewReno recovery shape, but ssthresh after a loss comes
/// from a bandwidth estimate fed by the ACK stream (ssthresh = BWE *
/// RTTmin / MSS) instead of blind halving.  Over a lossy wireless link
/// the estimate tracks the real link rate, so random losses cost one
/// retransmission, not half the pipe.
class WestwoodCc : public NewRenoCc {
 public:
  explicit WestwoodCc(const CcParams& p) : NewRenoCc(p) {}
  const char* name() const override { return "westwood"; }
  TcpFlavor flavor() const override { return TcpFlavor::kWestwood; }

  void on_ack_stream(const CcAck& ack) override;
  bool on_dupack_threshold(const CcAck& ack) override;
  void on_timeout(const CcAck& ack) override;
  void bind_probes(obs::Registry& reg) override;

  /// Filtered bandwidth estimate, bytes/second (0 until the first epoch
  /// closes).
  double bandwidth_estimate_Bps() const { return bwe_Bps_; }
  sim::Time rtt_min() const { return rtt_min_; }

 private:
  /// ssthresh from the bandwidth-delay product, in segments; falls back
  /// to Reno halving until an estimate exists.
  double bdp_ssthresh() const;
  void close_epoch(sim::Time now);

  double bwe_Bps_ = 0.0;          ///< filtered estimate
  double prev_sample_Bps_ = 0.0;  ///< previous raw sample (Tustin pairing)
  double epoch_bytes_ = 0.0;      ///< payload acked since the epoch began
  sim::Time epoch_start_;
  bool epoch_open_ = false;
  sim::Time rtt_min_;             ///< zero until the first sample
  obs::Gauge* bw_gauge_ = nullptr;
  obs::Gauge* rtt_min_gauge_ = nullptr;
};

/// CERL: NewReno recovery shape with RTT-threshold loss differentiation.
/// A loss observed while srtt < RTTmin + alpha*(RTTmax - RTTmin) implies
/// a short queue, so congestion is implausible: classify it wireless and
/// leave the window alone.  Losses above the threshold get the standard
/// Reno response.
class CerlCc : public NewRenoCc {
 public:
  explicit CerlCc(const CcParams& p) : NewRenoCc(p) {}
  const char* name() const override { return "cerl"; }
  TcpFlavor flavor() const override { return TcpFlavor::kCerl; }

  void on_ack_stream(const CcAck& ack) override;
  bool on_dupack_threshold(const CcAck& ack) override;
  void on_recovery_exit(const CcAck& ack) override;
  void on_timeout(const CcAck& ack) override;
  void bind_probes(obs::Registry& reg) override;

  sim::Time rtt_threshold() const;
  std::uint64_t wireless_losses() const { return wireless_losses_; }
  std::uint64_t congestion_losses() const { return congestion_losses_; }

 private:
  /// True when the loss signalled by `ack` should be blamed on the
  /// wireless link (no samples yet => congestion, the safe default).
  bool classify_wireless(const CcAck& ack) const;

  sim::Time rtt_min_;  ///< zero until the first sample
  sim::Time rtt_max_;
  bool episode_wireless_ = false;  ///< current recovery episode's verdict
  double episode_entry_cwnd_ = 0.0;
  std::uint64_t wireless_losses_ = 0;
  std::uint64_t congestion_losses_ = 0;
  obs::Counter* wireless_ctr_ = nullptr;
  obs::Counter* congestion_ctr_ = nullptr;
  obs::Gauge* threshold_gauge_ = nullptr;
};

}  // namespace wtcp::tcp
