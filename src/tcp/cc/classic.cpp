// Tahoe / Reno / NewReno — the classic strategies, extracted from the
// pre-interface TcpSender with the window arithmetic preserved
// operation-for-operation (the hexfloat goldens pin this).
#include <algorithm>
#include <cmath>

#include "src/tcp/cc/strategies.hpp"

namespace wtcp::tcp {

bool RenoCc::on_dupack_threshold(const CcAck&) {
  // Fast recovery: halve, then inflate by the dupacks already seen (they
  // prove that many segments left the network).
  ssthresh_ = std::max(2.0, std::floor(flight() / 2.0));
  cwnd_ = ssthresh_ + static_cast<double>(dupack_threshold_);
  return true;
}

}  // namespace wtcp::tcp
