// CERL — congestion estimation by RTT-threshold loss differentiation.
//
// The strategy tracks the RTT range seen so far and places a threshold at
// RTTmin + alpha*(RTTmax - RTTmin).  When a loss is detected while the
// smoothed RTT sits below the threshold, the bottleneck queue must be
// short, so congestion is implausible: the loss is classified wireless
// and the window is left alone (the hole is still retransmitted by the
// sender's recovery machinery).  Losses above the threshold get the
// standard Reno response.  Classification counts are published as
// cc.loss_wireless / cc.loss_congestion.
#include <algorithm>
#include <cmath>

#include "src/tcp/cc/strategies.hpp"

namespace wtcp::tcp {

void CerlCc::on_ack_stream(const CcAck& ack) {
  if (!ack.rtt_sample_valid) return;
  if (rtt_min_.is_zero() || ack.rtt_sample < rtt_min_) rtt_min_ = ack.rtt_sample;
  if (ack.rtt_sample > rtt_max_) rtt_max_ = ack.rtt_sample;
  obs::set(threshold_gauge_, rtt_threshold().to_seconds());
}

sim::Time CerlCc::rtt_threshold() const {
  if (rtt_min_.is_zero()) return sim::Time::zero();
  const double min_s = rtt_min_.to_seconds();
  const double max_s = rtt_max_.to_seconds();
  return sim::Time::from_seconds(min_s + tuning_.cerl_alpha * (max_s - min_s));
}

bool CerlCc::classify_wireless(const CcAck& ack) const {
  // No RTT range yet => congestion (the conservative Reno default).
  if (rtt_min_.is_zero() || rtt_max_ <= rtt_min_) return false;
  return ack.srtt < rtt_threshold();
}

bool CerlCc::on_dupack_threshold(const CcAck& ack) {
  episode_wireless_ = classify_wireless(ack);
  if (episode_wireless_) {
    ++wireless_losses_;
    obs::add(wireless_ctr_);
    // Random wireless loss: the pipe is fine.  Keep ssthresh, remember
    // the window, and inflate only by the dupacks already seen so the
    // episode's transmission accounting matches Reno's.
    episode_entry_cwnd_ = cwnd_;
    cwnd_ += static_cast<double>(dupack_threshold_);
    return true;
  }
  ++congestion_losses_;
  obs::add(congestion_ctr_);
  return RenoCc::on_dupack_threshold(ack);
}

void CerlCc::on_recovery_exit(const CcAck& ack) {
  if (episode_wireless_) {
    // The loss was not congestion: restore the pre-episode window.
    cwnd_ = episode_entry_cwnd_;
    episode_wireless_ = false;
    return;
  }
  NewRenoCc::on_recovery_exit(ack);
}

void CerlCc::on_timeout(const CcAck& ack) {
  episode_wireless_ = false;  // a timeout ends any classified episode
  if (classify_wireless(ack)) {
    ++wireless_losses_;
    obs::add(wireless_ctr_);
    // Wireless blackout: the timer verdict must still be honored (slow
    // start from one segment), but ssthresh keeps its value so the window
    // climbs straight back once the link recovers.
    cwnd_ = 1.0;
    return;
  }
  ++congestion_losses_;
  obs::add(congestion_ctr_);
  collapse();
}

void CerlCc::bind_probes(obs::Registry& reg) {
  wireless_ctr_ = reg.counter("cc.loss_wireless");
  congestion_ctr_ = reg.counter("cc.loss_congestion");
  threshold_gauge_ = reg.gauge("cc.rtt_threshold_s");
}

}  // namespace wtcp::tcp
