#include "src/tcp/tahoe_sender.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/core/audit.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/logging.hpp"

namespace wtcp::tcp {

const char* to_string(ConnState s) {
  switch (s) {
    case ConnState::kClosed: return "closed";
    case ConnState::kSynSent: return "syn-sent";
    case ConnState::kEstablished: return "established";
    case ConnState::kFinSent: return "fin-sent";
    case ConnState::kDone: return "done";
  }
  return "?";
}

TcpSender::TcpSender(sim::Simulator& sim, TcpConfig cfg, net::NodeId self,
                     net::NodeId peer, std::string name)
    : sim_(sim),
      cfg_(cfg),
      self_(self),
      peer_(peer),
      name_(std::move(name)),
      estimator_(cfg.rto),
      total_segments_(cfg.total_segments()),
      cc_(make_congestion_control(
          cfg.flavor,
          CcParams{.awnd = static_cast<double>(cfg.window_segments()),
                   .mss = cfg.mss,
                   .dupack_threshold = cfg.dupack_threshold,
                   .tuning = cfg.cc})),
      ever_retransmitted_(static_cast<std::size_t>(total_segments_), false) {
  assert(cfg_.mss > 0 && cfg_.file_bytes > 0);
  if ((bus_ = sim_.probes())) {
    static constexpr const char* kCounterNames[10] = {
        "tcp.sends",         "tcp.retransmits",    "tcp.acks",
        "tcp.dupacks",       "tcp.timeouts",       "tcp.fast_rtx",
        "tcp.ebsn_received", "tcp.quench_received", "tcp.cwnd_updates",
        "tcp.delivers"};
    for (int i = 0; i < 10; ++i) {
      event_counters_[i] = bus_->counter(kCounterNames[i]);
    }
    estimator_.bind_probes(bus_);
    ebsn_rearm_hist_ = bus_->histogram("tcp.ebsn_rearm_lead_s");
    cc_->bind_probes(*bus_);
  }
  tsink_ = sim_.trace();
}

void TcpSender::trace(stats::TraceEvent e, std::int64_t seq) {
  if (trace_) trace_->record(sim_.now(), e, seq);
  if (bus_) {
    obs::add(event_counters_[static_cast<int>(e)]);
    // A bound ConnectionTrace mirrors its records onto the bus itself;
    // publish directly only when no trace is attached, so each TCP event
    // appears exactly once in the event log.
    if (!trace_) {
      bus_->publish(sim_.now(), "tcp", stats::to_string(e),
                    static_cast<double>(seq));
    }
  }
}

void TcpSender::start() {
  assert(downstream_ && "downstream forwarder must be set before start()");
  assert(!started_);
  started_ = true;
  stats_.start_time = sim_.now();
  if (cfg_.connect_handshake) {
    conn_state_ = ConnState::kSynSent;
    send_syn();
    return;
  }
  send_segments();
}

net::PacketRef TcpSender::make_control_segment(bool syn, bool fin) {
  net::PacketRef pkt = sim_.packet_pool().acquire();
  pkt->type = net::PacketType::kTcpData;
  pkt->size_bytes = cfg_.header_bytes;
  pkt->src = self_;
  pkt->dst = peer_;
  pkt->created_at = sim_.now();
  pkt->tcp = net::TcpHeader{.seq = syn ? -1 : total_segments_,
                            .ack = -1,
                            .payload = 0,
                            .syn = syn,
                            .fin = fin,
                            .conn = cfg_.conn};
  return pkt;
}

void TcpSender::send_syn() {
  ++stats_.syn_sent;
  if (stats_.syn_sent == 1) syn_sent_at_ = sim_.now();
  set_rtx_timer();
  downstream_(make_control_segment(/*syn=*/true, /*fin=*/false));
}

void TcpSender::send_fin() {
  ++stats_.fin_sent;
  set_rtx_timer();
  downstream_(make_control_segment(/*syn=*/false, /*fin=*/true));
}

void TcpSender::start_at(sim::Time at) {
  sim_.at(at, [this] { start(); }, "tcp.start");
}

std::int64_t TcpSender::effective_window() const {
  const auto cw = static_cast<std::int64_t>(cc_->cwnd());
  return std::max<std::int64_t>(1, std::min(cfg_.window_segments(), cw));
}

std::int32_t TcpSender::payload_of(std::int64_t seq) const {
  assert(seq >= 0 && seq < total_segments_);
  const std::int64_t offset = seq * cfg_.mss;
  return static_cast<std::int32_t>(
      std::min<std::int64_t>(cfg_.mss, cfg_.file_bytes - offset));
}

void TcpSender::send_segments() {
  while (snd_nxt_ < total_segments_ && snd_nxt_ < snd_una_ + effective_window()) {
    if (cfg_.sack_enabled && sacked_.contains(snd_nxt_)) {
      // The receiver already holds this segment (SACKed): advance past it
      // without burning airtime (this is where SACK beats go-back-N).
      ++snd_nxt_;
      continue;
    }
    transmit(snd_nxt_);
    ++snd_nxt_;
  }
}

void TcpSender::absorb_sack(const net::TcpHeader& hdr) {
  if (!cfg_.sack_enabled || !hdr.has_sack()) return;
  for (const net::SackBlock& b : hdr.sack) {
    if (b.empty()) break;
    for (std::int64_t s = std::max(b.begin, snd_una_);
         s < std::min(b.end, total_segments_); ++s) {
      sacked_.insert(s);
    }
  }
}

std::int64_t TcpSender::next_sack_hole() const {
  const std::int64_t limit = std::min(recover_ + 1, snd_nxt_);
  for (std::int64_t s = snd_una_; s < limit; ++s) {
    if (sacked_.contains(s) || episode_rtx_.contains(s)) continue;
    // RFC 6675 "IsLost": an un-SACKed segment is only presumed lost once
    // at least DupThresh segments above it have been SACKed — otherwise
    // it may simply still be in flight.
    const auto above = std::distance(sacked_.upper_bound(s), sacked_.end());
    if (above >= cfg_.dupack_threshold) return s;
  }
  return -1;
}

void TcpSender::transmit(std::int64_t seq) {
  const bool is_rtx = seq <= max_seq_sent_;
  const std::int32_t payload = payload_of(seq);

  net::PacketRef pkt = net::make_tcp_data(sim_.packet_pool(), seq, payload,
                                          cfg_.header_bytes, self_, peer_,
                                          sim_.now());
  pkt->tcp->retransmit = is_rtx;
  pkt->tcp->conn = cfg_.conn;

  if (is_rtx) {
    ever_retransmitted_[static_cast<std::size_t>(seq)] = true;
    ++stats_.segments_retransmitted;
    stats_.payload_bytes_retransmitted += payload;
    trace(stats::TraceEvent::kRetransmit, seq);
    WTCP_TRACE_EMIT(tsink_, sim_.now(), pkt->uid,
                    obs::TraceSite::kTcpRetransmit, 0, 0,
                    static_cast<std::int32_t>(seq));
    // Karn: a timed segment that gets retransmitted yields no sample.
    if (timing_seq_ == seq) timing_seq_ = -1;
  } else {
    ++stats_.segments_sent;
    trace(stats::TraceEvent::kSend, seq);
    WTCP_TRACE_EMIT(tsink_, sim_.now(), pkt->uid, obs::TraceSite::kTcpSend, 0,
                    0, static_cast<std::int32_t>(seq));
    if (timing_seq_ < 0) {
      timing_seq_ = seq;
      timing_sent_at_ = sim_.now();
    }
  }
  stats_.payload_bytes_sent += payload;
  stats_.wire_bytes_sent += pkt->size_bytes;
  max_seq_sent_ = std::max(max_seq_sent_, seq);

  if (!sim_.pending(rtx_timer_)) set_rtx_timer();

  WTCP_LOG(kTrace, sim_.now(), name_.c_str(), "tx %s cwnd=%.2f una=%lld",
           pkt->describe().c_str(), cc_->cwnd(),
           static_cast<long long>(snd_una_));
  downstream_(std::move(pkt));
}

void TcpSender::set_rtx_timer() {
  sim_.cancel(rtx_timer_);
  rtx_deadline_ = sim_.now() + estimator_.rto();
  rtx_timer_ =
      sim_.after(estimator_.rto(), [this] { on_rtx_timeout(); }, "tcp.rtx_timer");
}

void TcpSender::cancel_rtx_timer() { sim_.cancel(rtx_timer_); }

CcAck TcpSender::make_cc_ack(std::int64_t newly_acked) {
  // Snapshot of the estimator at call time; the caller fills in the RTT
  // sample fields if this event carried a Karn-clean measurement.
  CcAck ev{};
  ev.now = sim_.now();
  ev.acked_segments = static_cast<double>(newly_acked);
  ev.srtt = estimator_.srtt();
  return ev;
}

void TcpSender::on_rtx_timeout() {
  if (stats_.completed) return;
  if (conn_state_ == ConnState::kSynSent) {
    ++stats_.timeouts;
    estimator_.back_off();
    send_syn();
    return;
  }
  if (conn_state_ == ConnState::kFinSent) {
    ++stats_.timeouts;
    estimator_.back_off();
    send_fin();
    return;
  }
  ++stats_.timeouts;
  trace(stats::TraceEvent::kTimeout, snd_una_);
  WTCP_TRACE_EMIT(tsink_, sim_.now(), 0, obs::TraceSite::kTcpTimeout,
                  static_cast<std::uint8_t>(
                      std::min(estimator_.backoff_shift(), 255)),
                  0, static_cast<std::int32_t>(snd_una_));
  WTCP_LOG(kDebug, sim_.now(), name_.c_str(), "TIMEOUT una=%lld rto=%s backoff=%d",
           static_cast<long long>(snd_una_), estimator_.rto().to_string().c_str(),
           estimator_.backoff_shift());

  estimator_.back_off();  // consecutive-loss doubling
  timing_seq_ = -1;       // Karn: abandon the in-progress measurement
  dupacks_ = 0;
  in_fast_recovery_ = false;  // a timeout aborts Reno fast recovery
  episode_rtx_.clear();       // (the SACK scoreboard itself survives)
  cc_->on_timeout(make_cc_ack(0));
  WTCP_AUDIT_CHECK(audit::tcp_congestion_state_legal(
                       cc_->cwnd(), cc_->ssthresh(), snd_una_, snd_nxt_),
                   "tcp", "congestion_state",
                   "illegal cwnd/ssthresh/sequence state after loss response");
  snd_nxt_ = snd_una_;  // go-back-N via slow start
  send_segments();      // retransmits snd_una (cwnd == 1)
  set_rtx_timer();
}

void TcpSender::handle_packet(net::PacketRef pkt) {
  switch (pkt->type) {
    case net::PacketType::kTcpAck:
      on_ack(*pkt);
      return;
    case net::PacketType::kEbsn:
      on_ebsn();
      return;
    case net::PacketType::kSourceQuench:
      on_quench();
      return;
    default:
      WTCP_LOG(kWarn, sim_.now(), name_.c_str(), "unexpected packet: %s",
               pkt->describe().c_str());
      return;
  }
}

void TcpSender::on_ack(const net::Packet& pkt) {
  assert(pkt.tcp.has_value());
  if (stats_.completed) return;
  ++stats_.acks_received;
  const std::int64_t ack = pkt.tcp->ack;

  if (conn_state_ == ConnState::kSynSent) {
    if (!pkt.tcp->syn) return;  // stale
    // SYN-ACK: connection established; the handshake round trip is a
    // clean RTT sample unless the SYN was retransmitted (Karn).
    if (stats_.syn_sent == 1) {
      estimator_.add_sample(sim_.now() - syn_sent_at_);
      ++stats_.rtt_samples;
    } else {
      estimator_.reset_backoff();  // eventual success clears SYN backoff
    }
    conn_state_ = ConnState::kEstablished;
    cancel_rtx_timer();
    send_segments();
    return;
  }
  if (conn_state_ == ConnState::kFinSent) {
    if (ack > total_segments_) complete();  // FIN-ACK
    return;
  }

  absorb_sack(*pkt.tcp);
  if (ack > snd_una_) {
    on_new_ack(ack);
  } else {
    on_dupack();
  }
}

void TcpSender::on_new_ack(std::int64_t ack) {
  trace(stats::TraceEvent::kAck, ack);
  WTCP_TRACE_EMIT(tsink_, sim_.now(), 0, obs::TraceSite::kTcpAckRx, 0, 0,
                  static_cast<std::int32_t>(ack));

  CcAck ev = make_cc_ack(ack - snd_una_);
  // RTT sample (Karn: only if the timed segment was never retransmitted).
  if (timing_seq_ >= 0 && ack > timing_seq_) {
    if (!ever_retransmitted_[static_cast<std::size_t>(timing_seq_)]) {
      const sim::Time sample = sim_.now() - timing_sent_at_;
      estimator_.add_sample(sample);
      ++stats_.rtt_samples;
      ev.rtt_sample_valid = true;
      ev.rtt_sample = sample;
      ev.srtt = estimator_.srtt();  // strategies see the updated estimate
    }
    timing_seq_ = -1;
  }
  // Backoff is dropped once a never-retransmitted segment is acked.  A
  // stray cumulative ACK beyond the transfer (corrupted or misrouted
  // header) must not index past the end of the retransmission bitmap.
  const std::int64_t acked_seg = ack - 1;
  WTCP_AUDIT_CHECK(acked_seg >= 0 && acked_seg < total_segments_, "tcp",
                   "ack_in_sequence_space",
                   "cumulative ACK outside the transfer's sequence space");
  if (acked_seg >= 0 && acked_seg < total_segments_ &&
      !ever_retransmitted_[static_cast<std::size_t>(acked_seg)]) {
    estimator_.reset_backoff();
  }
  cc_->on_ack_stream(ev);

  if (in_fast_recovery_) {
    if (cc_->partial_ack_stays_in_recovery() && ack <= recover_) {
      // Partial ACK: another segment of the same loss window is missing.
      // Deflate by the amount acknowledged, retransmit the next hole, and
      // stay in fast recovery (RFC 6582).
      cc_->on_partial_ack(ev, static_cast<double>(ack - snd_una_));
      snd_una_ = ack;
      snd_nxt_ = std::max(snd_nxt_, snd_una_);
      sacked_.erase(sacked_.begin(), sacked_.lower_bound(snd_una_));
      dupacks_ = 0;
      // Retransmit the next hole — unless SACK-directed recovery already
      // did (the retransmission that produced this partial ACK may have
      // been followed by hole retransmissions still in flight).
      if (episode_rtx_.insert(snd_una_).second) {
        transmit(snd_una_);
      }
      set_rtx_timer();
      return;
    }
    // Full ACK (or plain Reno): deflate and resume congestion avoidance.
    // RFC 6582 deflation carries NO additive increase on this ACK — the
    // window opens again starting with the next one.
    in_fast_recovery_ = false;
    episode_rtx_.clear();
    cc_->on_recovery_exit(ev);
  } else {
    cc_->on_new_ack(ev);
  }
  if (trace_) {
    trace_->record(sim_.now(), stats::TraceEvent::kCwnd,
                   static_cast<std::int64_t>(std::llround(cc_->cwnd() * 1000)));
  }
  WTCP_TRACE_EMIT(tsink_, sim_.now(), 0, obs::TraceSite::kTcpCwnd, 0, 0,
                  static_cast<std::int32_t>(std::llround(cc_->cwnd() * 1000)));
  snd_una_ = ack;
  snd_nxt_ = std::max(snd_nxt_, snd_una_);
  sacked_.erase(sacked_.begin(), sacked_.lower_bound(snd_una_));
  dupacks_ = 0;
  WTCP_AUDIT_CHECK(audit::tcp_congestion_state_legal(
                       cc_->cwnd(), cc_->ssthresh(), snd_una_, snd_nxt_),
                   "tcp", "congestion_state",
                   "illegal cwnd/ssthresh/sequence state after new ACK");

  if (snd_una_ >= total_segments_) {
    if (cfg_.connect_handshake) {
      // All data acknowledged: close actively with a FIN.
      conn_state_ = ConnState::kFinSent;
      send_fin();
      return;
    }
    complete();
    return;
  }
  set_rtx_timer();  // restart for the (new) oldest outstanding segment
  send_segments();
}

void TcpSender::on_dupack() {
  ++stats_.dupacks_received;
  trace(stats::TraceEvent::kDupAck, snd_una_);
  WTCP_TRACE_EMIT(tsink_, sim_.now(), 0, obs::TraceSite::kTcpDupAck,
                  static_cast<std::uint8_t>(std::min(dupacks_ + 1, 255)), 0,
                  static_cast<std::int32_t>(snd_una_));
  ++dupacks_;
  const CcAck ev = make_cc_ack(0);
  cc_->on_ack_stream(ev);

  if (in_fast_recovery_) {
    // Window inflation: each extra dupack signals one more segment has
    // left the network.  With SACK, spend the credit on the next hole
    // first; otherwise (or with no holes left) send new data.
    cc_->on_recovery_dupack(ev);
    if (cfg_.sack_enabled) {
      const std::int64_t hole = next_sack_hole();
      if (hole >= 0) {
        episode_rtx_.insert(hole);
        transmit(hole);
        // The hole retransmission is now the oldest data the timer
        // guards; restart it so losing the retransmission is detected a
        // full RTO from NOW rather than at whatever deadline survived
        // from before the episode (which may be about to fire, or worse,
        // already stale enough to cut recovery short).
        set_rtx_timer();
        return;
      }
    }
    send_segments();
    return;
  }
  if (dupacks_ != cfg_.dupack_threshold) return;  // act exactly once
  if (snd_una_ >= snd_nxt_) return;  // nothing outstanding to retransmit

  ++stats_.fast_retransmits;
  trace(stats::TraceEvent::kFastRtx, snd_una_);
  WTCP_TRACE_EMIT(tsink_, sim_.now(), 0, obs::TraceSite::kTcpFastRtx, 0, 0,
                  static_cast<std::int32_t>(snd_una_));
  timing_seq_ = -1;

  const bool fast_recovery = cc_->on_dupack_threshold(ev);
  WTCP_AUDIT_CHECK(audit::tcp_congestion_state_legal(
                       cc_->cwnd(), cc_->ssthresh(), snd_una_, snd_nxt_),
                   "tcp", "congestion_state",
                   "illegal cwnd/ssthresh/sequence state after loss response");
  if (fast_recovery) {
    // Reno family: retransmit the hole and keep transmitting on further
    // dupacks until the episode's loss window is fully acknowledged.
    in_fast_recovery_ = true;
    recover_ = max_seq_sent_;
    episode_rtx_.clear();
    episode_rtx_.insert(snd_una_);
    transmit(snd_una_);
    set_rtx_timer();
    return;
  }

  // Fast retransmit (Tahoe: no fast recovery, straight to slow start).
  snd_nxt_ = snd_una_;
  send_segments();
  set_rtx_timer();
}

void TcpSender::on_ebsn() {
  ++stats_.ebsn_received;
  trace(stats::TraceEvent::kEbsn, snd_una_);
  WTCP_TRACE_EMIT(tsink_, sim_.now(), 0, obs::TraceSite::kTcpEbsnRx,
                  cfg_.react_to_ebsn ? 1 : 0, 0,
                  static_cast<std::int32_t>(snd_una_));
  if (!cfg_.react_to_ebsn) return;
  // Paper appendix: cancel the previous timer and put a new one in place
  // retaining the current timeout value.  Nothing else changes — the RTT
  // estimate, its variance, the backoff shift and cwnd must all be
  // exactly as they were (an EBSN that polluted the estimators would
  // corrupt every later RTO).
  WTCP_AUDIT_ONLY(const std::int64_t sa_before = estimator_.srtt().ns();
                  const std::int64_t sv_before = estimator_.rttvar().ns();
                  const std::int32_t backoff_before =
                      estimator_.backoff_shift();
                  const double cwnd_before = cc_->cwnd();)
  // The strategy is told about the EBSN but must leave the window exactly
  // as it was (audited below) — EBSN is a timer-only mechanism.
  cc_->on_explicit_feedback(CcFeedback::kEbsn);
  if (snd_una_ < snd_nxt_ && !stats_.completed) {
    // Lead time the re-arm bought: how close the pending timer was to
    // firing when the EBSN arrived (and was pushed back a full RTO).
    if (sim_.pending(rtx_timer_)) {
      obs::record(ebsn_rearm_hist_, (rtx_deadline_ - sim_.now()).to_seconds());
    }
    set_rtx_timer();
    WTCP_TRACE_EMIT(tsink_, sim_.now(), 0, obs::TraceSite::kTcpTimerRearm, 0,
                    0,
                    static_cast<std::int32_t>(estimator_.rto().ns() / 1000));
  }
  WTCP_AUDIT_CHECK(audit::ebsn_left_estimator_untouched(
                       sa_before, estimator_.srtt().ns(), sv_before,
                       estimator_.rttvar().ns(), backoff_before,
                       estimator_.backoff_shift()) &&
                       cc_->cwnd() == cwnd_before,
                   "tcp", "ebsn_estimator_purity",
                   "EBSN handling changed srtt/rttvar/backoff/cwnd");
}

void TcpSender::on_quench() {
  ++stats_.quench_received;
  trace(stats::TraceEvent::kQuench, snd_una_);
  WTCP_TRACE_EMIT(tsink_, sim_.now(), 0, obs::TraceSite::kTcpQuenchRx,
                  cfg_.react_to_quench ? 1 : 0, 0,
                  static_cast<std::int32_t>(snd_una_));
  if (!cfg_.react_to_quench) return;
  // Classic 4.3BSD reaction: collapse the congestion window to one
  // segment; ssthresh is untouched.
  cc_->on_explicit_feedback(CcFeedback::kSourceQuench);
}

void TcpSender::complete() {
  stats_.completed = true;
  stats_.finish_time = sim_.now();
  conn_state_ = cfg_.connect_handshake ? ConnState::kDone : conn_state_;
  cancel_rtx_timer();
  WTCP_LOG(kInfo, sim_.now(), name_.c_str(),
           "transfer complete: %llu timeouts, %llu fast-rtx, %llu rtx segs",
           static_cast<unsigned long long>(stats_.timeouts),
           static_cast<unsigned long long>(stats_.fast_retransmits),
           static_cast<unsigned long long>(stats_.segments_retransmitted));
  if (on_complete) on_complete();
}

}  // namespace wtcp::tcp
