#include "src/tcp/tcp_sink.hpp"

#include <cassert>

#include "src/obs/trace.hpp"
#include "src/sim/logging.hpp"

namespace wtcp::tcp {

TcpSink::TcpSink(sim::Simulator& sim, TcpConfig cfg, net::NodeId self,
                 net::NodeId peer, std::string name)
    : sim_(sim), cfg_(cfg), self_(self), peer_(peer), name_(std::move(name)) {
  if (obs::Registry* bus = sim_.probes()) {
    e2e_hist_ = bus->histogram("tcp.e2e_delay_s");
  }
  tsink_ = sim_.trace();
}

void TcpSink::handle_packet(net::PacketRef pkt) {
  if (pkt->type != net::PacketType::kTcpData) {
    WTCP_LOG(kWarn, sim_.now(), name_.c_str(), "unexpected packet: %s",
             pkt->describe().c_str());
    return;
  }
  assert(pkt->tcp.has_value());

  if (pkt->tcp->syn || pkt->tcp->fin) {
    handle_control_segment(*pkt->tcp);
    return;
  }

  const std::int64_t seq = pkt->tcp->seq;
  const std::int32_t payload = pkt->tcp->payload;

  if (stats_.segments_received == 0) stats_.first_data_time = sim_.now();
  ++stats_.segments_received;
  stats_.payload_bytes_received += payload;
  const std::int64_t rcv_next_before = rcv_next_;
  const bool had_holes = !buffered_.empty();

  const bool fresh = seq >= rcv_next_ && !buffered_.contains(seq);
  if (fresh) {
    const double e2e = (sim_.now() - pkt->created_at).to_seconds();
    delay_.add(e2e);
    obs::record(e2e_hist_, e2e);
  }

  if (seq == rcv_next_) {
    stats_.unique_payload_bytes += payload;
    stats_.delivered_wire_bytes += payload + cfg_.header_bytes;
    if (trace_) trace_->record(sim_.now(), stats::TraceEvent::kDeliver, seq);
    WTCP_TRACE_EMIT(tsink_, sim_.now(), pkt->uid, obs::TraceSite::kSinkDeliver,
                    0, 0, static_cast<std::int32_t>(seq));
    ++rcv_next_;
    deliver_in_order();
  } else if (seq > rcv_next_) {
    // Hole: buffer (dedup) and dupack below.
    auto [it, inserted] = buffered_.try_emplace(seq, payload);
    (void)it;
    if (inserted) {
      ++stats_.out_of_order_segments;
    } else {
      ++stats_.duplicate_segments;
    }
  } else {
    ++stats_.duplicate_segments;
  }

  if (!stats_.completed && rcv_next_ >= cfg_.total_segments()) {
    stats_.completed = true;
    stats_.completion_time = sim_.now();
  }

  // ACK policy: ns-1 sink ACKs every segment; delayed-ACK mode coalesces
  // in-order arrivals but always ACKs out-of-order or duplicate data
  // immediately (those dupacks drive fast retransmit).
  // "In order" means: this arrival advanced rcv_next and there were no
  // holes before or after it (filling a hole must be ACKed at once so the
  // sender exits recovery promptly).
  const bool in_order_arrival =
      rcv_next_ > rcv_next_before && buffered_.empty() && !had_holes;
  if (cfg_.delayed_ack && !stats_.completed && in_order_arrival) {
    maybe_delay_ack(true);
  } else if (cfg_.ack_pacing && !stats_.completed && in_order_arrival) {
    // Only the smooth in-order ACK clock is paced; dupacks, hole fills
    // and the completion ACK take the urgent path below.
    paced_ack();
  } else {
    send_ack_now();
  }

  if (stats_.completed && on_complete && rcv_next_ >= cfg_.total_segments()) {
    // Fire exactly once.
    auto cb = std::move(on_complete);
    on_complete = nullptr;
    cb();
  }
}

void TcpSink::handle_control_segment(const net::TcpHeader& hdr) {
  if (!downstream_) return;
  if (hdr.syn) {
    ++stats_.syns_received;
    // SYN-ACK: accept the connection, expect segment 0.  Duplicate SYNs
    // (retransmissions) are re-acknowledged idempotently.
    net::PacketRef ack = net::make_tcp_ack(sim_.packet_pool(), 0,
                                           cfg_.header_bytes, self_, peer_,
                                           sim_.now());
    ack->tcp->syn = true;
    ack->tcp->conn = cfg_.conn;
    ++stats_.acks_sent;
    downstream_(std::move(ack));
    return;
  }
  // FIN: only meaningful once all data arrived (the sender closes after
  // the final data ACK); otherwise it degenerates to a normal dupack.
  const bool all_data_in = rcv_next_ >= cfg_.total_segments();
  if (all_data_in) ++stats_.fins_received;
  net::PacketRef ack = net::make_tcp_ack(
      sim_.packet_pool(), all_data_in ? rcv_next_ + 1 : rcv_next_,
      cfg_.header_bytes, self_, peer_, sim_.now());
  ack->tcp->fin = all_data_in;
  ack->tcp->conn = cfg_.conn;
  ++stats_.acks_sent;
  downstream_(std::move(ack));
}

void TcpSink::force_duplicate_acks(std::int32_t n) {
  if (stats_.segments_received == 0 || stats_.completed) return;
  for (std::int32_t i = 0; i < n; ++i) send_ack_now();
}

void TcpSink::emit_ack() {
  if (!downstream_) return;
  net::PacketRef ack = net::make_tcp_ack(sim_.packet_pool(), rcv_next_,
                                         cfg_.header_bytes, self_, peer_,
                                         sim_.now());
  ack->tcp->conn = cfg_.conn;
  if (cfg_.sack_enabled) fill_sack_blocks(*ack->tcp);
  ++stats_.acks_sent;
  downstream_(std::move(ack));
}

void TcpSink::send_ack_now() {
  sim_.cancel(delack_timer_);
  unacked_in_order_ = 0;
  if (cfg_.ack_pacing) {
    // This ACK supersedes any coalesced one waiting on the pace timer (it
    // carries the latest cumulative position) and restarts the pacing gap.
    sim_.cancel(pace_timer_);
    ack_pending_ = false;
    next_ack_release_ = sim_.now() + cfg_.ack_pacing_interval;
  }
  emit_ack();
}

void TcpSink::paced_ack() {
  if (sim_.now() >= next_ack_release_) {
    next_ack_release_ = sim_.now() + cfg_.ack_pacing_interval;
    emit_ack();
    return;
  }
  ++stats_.acks_paced;
  if (ack_pending_) return;  // coalesce: the scheduled ACK reads rcv_next_
  ack_pending_ = true;
  pace_timer_ = sim_.after(
      next_ack_release_ - sim_.now(),
      [this] {
        ack_pending_ = false;
        next_ack_release_ = sim_.now() + cfg_.ack_pacing_interval;
        emit_ack();
      },
      "tcp.ack_pace");
}

void TcpSink::fill_sack_blocks(net::TcpHeader& hdr) const {
  // Summarize the out-of-order buffer as up to 3 contiguous runs above
  // the cumulative ACK, lowest first (deterministic and sufficient at
  // segment granularity).
  std::size_t n = 0;
  auto it = buffered_.begin();
  while (it != buffered_.end() && n < hdr.sack.size()) {
    const std::int64_t begin = it->first;
    std::int64_t end = begin + 1;
    ++it;
    while (it != buffered_.end() && it->first == end) {
      ++end;
      ++it;
    }
    hdr.sack[n++] = net::SackBlock{begin, end};
  }
}

void TcpSink::maybe_delay_ack(bool /*in_order*/) {
  if (++unacked_in_order_ >= 2) {
    send_ack_now();
    return;
  }
  ++stats_.acks_delayed;
  if (!sim_.pending(delack_timer_)) {
    delack_timer_ = sim_.after(cfg_.delack_timeout, [this] { send_ack_now(); },
                               "tcp.delack");
  }
}

void TcpSink::deliver_in_order() {
  auto it = buffered_.begin();
  while (it != buffered_.end() && it->first == rcv_next_) {
    stats_.unique_payload_bytes += it->second;
    stats_.delivered_wire_bytes += it->second + cfg_.header_bytes;
    if (trace_) trace_->record(sim_.now(), stats::TraceEvent::kDeliver, it->first);
    // The buffered copy's PacketRef was not retained, so no uid here.
    WTCP_TRACE_EMIT(tsink_, sim_.now(), 0, obs::TraceSite::kSinkDeliver, 1, 0,
                    static_cast<std::int32_t>(it->first));
    ++rcv_next_;
    it = buffered_.erase(it);
  }
}

}  // namespace wtcp::tcp
