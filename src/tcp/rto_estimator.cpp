#include "src/tcp/rto_estimator.hpp"

#include <algorithm>
#include <cassert>

namespace wtcp::tcp {

RtoEstimator::RtoEstimator(RtoConfig cfg) : cfg_(cfg) {
  assert(cfg_.granularity > sim::Time::zero());
  assert(cfg_.min_rto <= cfg_.max_rto);
}

std::int64_t RtoEstimator::to_ticks(sim::Time rtt) const {
  // Round to nearest tick, at least 1: a coarse clock cannot observe a
  // zero-tick round trip as zero (BSD counts elapsed ticks, min 1).
  const std::int64_t g = cfg_.granularity.ns();
  const std::int64_t ticks = (rtt.ns() + g / 2) / g;
  return std::max<std::int64_t>(ticks, 1);
}

void RtoEstimator::add_sample(sim::Time rtt) {
  obs::add(probe_samples_);
  const std::int64_t m = to_ticks(rtt);
  if (!has_sample_) {
    // RFC 6298 initialization: SRTT = R, RTTVAR = R/2.
    sa_ = m << 3;
    sv_ = (m << 2) / 2;
    has_sample_ = true;
    update_rto_gauge();
    return;
  }
  // 4.3BSD integer filter (Jacobson '88, appendix A).
  std::int64_t delta = m - (sa_ >> 3);
  sa_ += delta;
  if (sa_ <= 0) sa_ = 1;
  if (delta < 0) delta = -delta;
  delta -= (sv_ >> 2);
  sv_ += delta;
  if (sv_ <= 0) sv_ = 1;
  update_rto_gauge();
}

sim::Time RtoEstimator::base_rto() const {
  if (!has_sample_) return cfg_.initial_rto;
  const std::int64_t ticks = (sa_ >> 3) + sv_;  // srtt + 4*rttvar
  const sim::Time rto = cfg_.granularity * ticks;
  return std::clamp(rto, cfg_.min_rto, cfg_.max_rto);
}

sim::Time RtoEstimator::rto() const {
  const sim::Time backed = base_rto() * (std::int64_t{1} << backoff_shift_);
  return std::clamp(backed, cfg_.min_rto, cfg_.max_rto);
}

void RtoEstimator::back_off() {
  obs::add(probe_backoffs_);
  if (backoff_shift_ < cfg_.max_backoff_shift) ++backoff_shift_;
  update_rto_gauge();
}

void RtoEstimator::bind_probes(obs::Registry* registry) {
  if (!registry) return;
  probe_samples_ = registry->counter("tcp.rto.samples");
  probe_backoffs_ = registry->counter("tcp.rto.backoffs");
  probe_rto_s_ = registry->gauge("tcp.rto.seconds");
  update_rto_gauge();
}

void RtoEstimator::update_rto_gauge() {
  if (probe_rto_s_) probe_rto_s_->value = rto().to_seconds();
}

sim::Time RtoEstimator::srtt() const {
  return cfg_.granularity * (sa_ >> 3);
}

sim::Time RtoEstimator::rttvar() const {
  return cfg_.granularity * (sv_ >> 2);
}

}  // namespace wtcp::tcp
