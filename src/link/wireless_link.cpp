#include "src/link/wireless_link.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/trace.hpp"
#include "src/sim/logging.hpp"

namespace wtcp::link {

WirelessInterface::WirelessInterface(sim::Simulator& sim, net::DuplexLink& link,
                                     int endpoint, WirelessIfaceConfig cfg,
                                     std::string name, net::PacketSink* upper)
    : sim_(sim),
      link_(link),
      endpoint_(endpoint),
      cfg_(cfg),
      name_(std::move(name)),
      fragmenter_(cfg.frag),
      reassembler_(sim, cfg.reassembly, upper) {
  if (obs::Registry* bus = sim_.probes()) {
    probe_datagrams_ = bus->counter("wifi.datagrams_sent");
    probe_fragments_ = bus->counter("wifi.fragments_sent");
  }
  tsink_ = sim_.trace();
  if (cfg_.local_recovery) {
    arq_sender_ = std::make_unique<ArqSender>(sim, link, endpoint, cfg_.arq,
                                              name_ + "/arq-snd");
    make_arq_receiver();
  }
  link.set_sink(endpoint, this);
}

void WirelessInterface::make_arq_receiver() {
  arq_receiver_ = std::make_unique<ArqReceiver>(sim_, link_, endpoint_, cfg_.arq,
                                                name_ + "/arq-rcv");
  arq_receiver_->set_deliver([this](net::PacketRef frame) {
    reassembler_.handle_fragment(std::move(frame));
  });
}

ArqSender& WirelessInterface::arq_sender() {
  assert(arq_sender_ && "local recovery is not enabled on this interface");
  return *arq_sender_;
}

WirelessInterface::SendInfo WirelessInterface::send_datagram(
    net::PacketRef datagram) {
  // The datagram is consumed by fragment_to; hold its uid so fragment
  // records can point back at their parent.
  const std::uint64_t parent_uid = datagram->uid;
  const FragmentInfo info = fragmenter_.fragment_to(
      sim_.packet_pool(), std::move(datagram), sim_.now(),
      [this, parent_uid](net::PacketRef frag) {
        (void)parent_uid;
        WTCP_TRACE_EMIT(
            tsink_, sim_.now(), frag->uid, obs::TraceSite::kFragment,
            static_cast<std::uint8_t>(std::min(frag->frag->index, 255)), 0,
            static_cast<std::int32_t>(parent_uid));
        if (arq_sender_) {
          arq_sender_->submit(std::move(frag));
        } else {
          link_.send(endpoint_, std::move(frag));
        }
      });
  obs::add(probe_datagrams_);
  obs::add(probe_fragments_, static_cast<std::uint64_t>(info.count));
  return SendInfo{info.datagram_id, info.count};
}

void WirelessInterface::handle_packet(net::PacketRef pkt) {
  switch (pkt->type) {
    case net::PacketType::kLinkAck:
      if (arq_sender_) {
        arq_sender_->on_link_ack(*pkt);
      }
      // Without ARQ a stray link ACK is dropped.
      return;
    case net::PacketType::kLinkFragment: {
      if (pkt->frag->link_seq >= 0) {
        // ARQ frame: acknowledge + in-order release even if our own ARQ is
        // disabled (the peer decides whether to run local recovery).
        if (!arq_receiver_) make_arq_receiver();
        arq_receiver_->on_frame(std::move(pkt));
      } else {
        reassembler_.handle_fragment(std::move(pkt));
      }
      return;
    }
    default:
      WTCP_LOG(kWarn, sim_.now(), name_.c_str(), "unexpected packet on wireless: %s",
               pkt->describe().c_str());
      return;
  }
}

net::LinkConfig wan_wireless_link_config() {
  return net::LinkConfig{
      .name = "wireless-wan",
      .bandwidth_bps = 19'200,
      .prop_delay = sim::Time::milliseconds(5),
      .queue_packets = 4096,
      .overhead_num = 3,
      .overhead_den = 2,
      .half_duplex = false,
      .medium = nullptr,
  };
}

net::LinkConfig lan_wireless_link_config() {
  return net::LinkConfig{
      .name = "wireless-lan",
      .bandwidth_bps = 2'000'000,
      .prop_delay = sim::Time::microseconds(100),
      .queue_packets = 4096,
      .overhead_num = 1,
      .overhead_den = 1,
      .half_duplex = false,
      .medium = nullptr,
  };
}

}  // namespace wtcp::link
