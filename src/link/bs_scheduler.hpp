// Base-station downlink scheduling across multiple mobile users (the CSDP
// study of Bhagwat et al. [9], which the paper's Section 2 discusses).
//
// When several TCP connections share one base-station radio, the policy
// that picks the next queued datagram matters: under FIFO, a head-of-line
// datagram addressed to a user in a fade blocks airtime every other user
// could have used; round-robin isolates users; channel-state-dependent
// (CSD) round-robin additionally skips users whose channel is currently
// bad, spending airtime only where it can succeed; deficit-weighted
// round-robin (DWRR) additionally makes the service share byte-accurate
// and weightable per user.
//
// Built for cells with 10k+ users: per-user queues are intrusive lists
// threaded through one shared node slab (chunk-grown freelist, so steady
// state enqueues allocate nothing), backlogged users are tracked in a
// bitmap, and every pick walks only backlogged users — O(backlogged per
// pass), never O(K).  total_backlog() is a maintained counter.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/packet.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::link {

enum class SchedPolicy : std::uint8_t {
  kFifo,          ///< one global queue, strict arrival order
  kRoundRobin,    ///< per-user queues, cyclic service
  kCsdRoundRobin, ///< round-robin over users whose channel probe says GOOD
  kDeficitRoundRobin, ///< DWRR: byte-accurate weighted cyclic service
};

const char* to_string(SchedPolicy p);

struct BsSchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFifo;
  /// Datagrams handed downstream (to the per-user ARQ / link) that have
  /// not yet been resolved (delivered or discarded).  1 serializes the
  /// radio datagram-by-datagram (policy then barely matters: even RR
  /// blocks on an in-service faded user); a few slots let different
  /// users' ARQs interleave on the medium.
  std::int32_t max_outstanding = 4;
  /// When CSD defers because every backlogged user's channel is bad,
  /// re-probe after this long ("accuracy of the channel state predictor").
  sim::Time probe_interval = sim::Time::milliseconds(50);
  std::size_t queue_datagrams = 4096;  ///< per-user queue bound
  /// DWRR: bytes of credit a backlogged user earns per scheduler visit
  /// (scaled by its weight).  One paper-sized packet by default, so equal
  /// weights degenerate to packet-by-packet round-robin.
  std::int64_t dwrr_quantum_bytes = 1536;
};

struct BsSchedulerStats {
  std::uint64_t enqueued = 0;
  std::uint64_t released = 0;
  std::uint64_t dropped = 0;        ///< per-user queue overflow
  std::uint64_t csd_deferrals = 0;  ///< pump passes where CSD found no good user
  std::uint64_t csd_skips = 0;      ///< users skipped for a bad channel
};

class BsScheduler {
 public:
  /// `release(user, datagram)` hands a datagram to user `user`'s wireless
  /// path; the caller must later invoke on_resolved(user) exactly once
  /// per released datagram.
  using Release = std::function<void(std::size_t user, net::PacketRef datagram)>;
  /// Channel oracle: true if `user`'s channel is currently good.  CSD
  /// policies require it; others ignore it.
  using ChannelProbe = std::function<bool(std::size_t user)>;

  BsScheduler(sim::Simulator& sim, BsSchedulerConfig cfg, std::size_t users);
  ~BsScheduler();

  BsScheduler(const BsScheduler&) = delete;
  BsScheduler& operator=(const BsScheduler&) = delete;

  void set_release(Release release) { release_ = std::move(release); }
  void set_channel_probe(ChannelProbe probe) { probe_ = std::move(probe); }

  /// DWRR service weight for `user` (default 1; must be >= 1).  A user
  /// with weight w earns w quanta of byte credit per scheduler visit.
  void set_weight(std::size_t user, std::uint32_t weight);

  /// Queue a datagram for `user` and serve if the radio has room.
  void enqueue(std::size_t user, net::PacketRef datagram);

  /// Downstream resolved one released datagram (ARQ delivered or
  /// discarded it); frees an outstanding slot and serves the next.
  void on_resolved(std::size_t user);

  std::size_t backlog(std::size_t user) const { return users_[user].size; }
  /// Queued (not yet released) datagrams across all users.  Maintained
  /// incrementally — O(1), audited against a recount under WTCP_AUDIT.
  std::size_t total_backlog() const;
  std::int32_t outstanding() const { return outstanding_; }
  /// DWRR byte credit currently banked for `user` (tests/diagnostics).
  std::int64_t deficit(std::size_t user) const { return users_[user].deficit; }
  /// Queue-node slots ever allocated (chunk growth; plateaus after
  /// warm-up — the many-flow steady-state-allocation regression tests
  /// assert on this, like PacketPool::allocs).
  std::size_t node_slots() const { return nodes_.size(); }
  const BsSchedulerStats& stats() const { return stats_; }
  const BsSchedulerConfig& config() const { return cfg_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// One queued datagram: intrusive singly-linked per-user FIFO threaded
  /// through the shared slab.
  struct Node {
    net::PacketRef pkt;
    std::uint32_t next = kNil;
  };

  struct UserState {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t size = 0;
    std::uint32_t weight = 1;
    std::int64_t deficit = 0;  ///< DWRR byte credit
  };

  void pump();
  /// Pick the next user to serve, or npos if none is eligible.
  std::size_t pick();
  std::size_t pick_dwrr();
  /// Pop the head datagram of `user`, maintaining slab/bitmap/counters.
  net::PacketRef pop_head(std::size_t user);
  std::uint32_t alloc_node();
  /// First backlogged user at index >= from (no wrap), or npos.
  std::size_t next_backlogged(std::size_t from) const;
  /// First backlogged user cyclically from rr_cursor_, or npos.
  std::size_t next_backlogged_cyclic() const;
  void mark_backlogged(std::size_t user, bool backlogged);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  sim::Simulator& sim_;
  BsSchedulerConfig cfg_;
  Release release_;
  ChannelProbe probe_;

  std::vector<Node> nodes_;        ///< shared queue-node slab (chunk-grown)
  std::uint32_t free_head_ = kNil; ///< slab freelist
  std::vector<UserState> users_;
  std::vector<std::uint64_t> backlog_bits_;  ///< bit set = nonempty queue
  std::size_t total_backlog_ = 0;

  /// Arrival order of users (kFifo): power-of-two ring buffer, grown by
  /// doubling (plateaus after warm-up), one entry per queued datagram.
  std::vector<std::uint32_t> fifo_ring_;
  std::size_t fifo_head_ = 0;  ///< pop position (masked)
  std::size_t fifo_tail_ = 0;  ///< push position (masked)

  std::size_t rr_cursor_ = 0;
  /// DWRR: user currently holding the service turn, or npos.  Persists
  /// across pump passes so an interrupted turn (outstanding limit)
  /// resumes with its remaining byte credit.
  std::size_t dwrr_current_ = npos;
  std::int32_t outstanding_ = 0;
  sim::EventId probe_timer_;
  BsSchedulerStats stats_;
};

}  // namespace wtcp::link
