// Base-station downlink scheduling across multiple mobile users (the CSDP
// study of Bhagwat et al. [9], which the paper's Section 2 discusses).
//
// When several TCP connections share one base-station radio, the policy
// that picks the next queued datagram matters: under FIFO, a head-of-line
// datagram addressed to a user in a fade blocks airtime every other user
// could have used; round-robin isolates users; channel-state-dependent
// (CSD) round-robin additionally skips users whose channel is currently
// bad, spending airtime only where it can succeed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/net/packet.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::link {

enum class SchedPolicy : std::uint8_t {
  kFifo,          ///< one global queue, strict arrival order
  kRoundRobin,    ///< per-user queues, cyclic service
  kCsdRoundRobin, ///< round-robin over users whose channel probe says GOOD
};

const char* to_string(SchedPolicy p);

struct BsSchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFifo;
  /// Datagrams handed downstream (to the per-user ARQ / link) that have
  /// not yet been resolved (delivered or discarded).  1 serializes the
  /// radio datagram-by-datagram (policy then barely matters: even RR
  /// blocks on an in-service faded user); a few slots let different
  /// users' ARQs interleave on the medium.
  std::int32_t max_outstanding = 4;
  /// When CSD defers because every backlogged user's channel is bad,
  /// re-probe after this long ("accuracy of the channel state predictor").
  sim::Time probe_interval = sim::Time::milliseconds(50);
  std::size_t queue_datagrams = 4096;  ///< per-user queue bound
};

struct BsSchedulerStats {
  std::uint64_t enqueued = 0;
  std::uint64_t released = 0;
  std::uint64_t dropped = 0;        ///< per-user queue overflow
  std::uint64_t csd_deferrals = 0;  ///< pump passes where CSD found no good user
  std::uint64_t csd_skips = 0;      ///< users skipped for a bad channel
};

class BsScheduler {
 public:
  /// `release(user, datagram)` hands a datagram to user `user`'s wireless
  /// path; the caller must later invoke on_resolved(user) exactly once
  /// per released datagram.
  using Release = std::function<void(std::size_t user, net::PacketRef datagram)>;
  /// Channel oracle: true if `user`'s channel is currently good.  CSD
  /// policies require it; others ignore it.
  using ChannelProbe = std::function<bool(std::size_t user)>;

  BsScheduler(sim::Simulator& sim, BsSchedulerConfig cfg, std::size_t users);

  void set_release(Release release) { release_ = std::move(release); }
  void set_channel_probe(ChannelProbe probe) { probe_ = std::move(probe); }

  /// Queue a datagram for `user` and serve if the radio has room.
  void enqueue(std::size_t user, net::PacketRef datagram);

  /// Downstream resolved one released datagram (ARQ delivered or
  /// discarded it); frees an outstanding slot and serves the next.
  void on_resolved(std::size_t user);

  std::size_t backlog(std::size_t user) const { return queues_[user].size(); }
  std::size_t total_backlog() const;
  std::int32_t outstanding() const { return outstanding_; }
  const BsSchedulerStats& stats() const { return stats_; }
  const BsSchedulerConfig& config() const { return cfg_; }

 private:
  void pump();
  /// Pick the next user to serve, or npos if none is eligible.
  std::size_t pick();

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  sim::Simulator& sim_;
  BsSchedulerConfig cfg_;
  Release release_;
  ChannelProbe probe_;
  std::vector<std::deque<net::PacketRef>> queues_;  ///< per-user
  std::deque<std::size_t> fifo_order_;           ///< arrival order of users (kFifo)
  std::size_t rr_cursor_ = 0;
  std::int32_t outstanding_ = 0;
  sim::EventId probe_timer_;
  BsSchedulerStats stats_;
};

}  // namespace wtcp::link
