#include "src/link/fragmentation.hpp"

#include <cassert>
#include <memory>

#include "src/obs/trace.hpp"

namespace wtcp::link {

Fragmenter::Fragmenter(FragmenterConfig cfg) : cfg_(cfg) {
  assert(cfg_.mtu_bytes > 0);
}

std::int32_t Fragmenter::fragment_count(std::int64_t size_bytes) const {
  if (size_bytes <= 0) return 1;
  return static_cast<std::int32_t>((size_bytes + cfg_.mtu_bytes - 1) / cfg_.mtu_bytes);
}

std::vector<net::PacketRef> Fragmenter::fragment(net::PacketPool& pool,
                                                 net::PacketRef datagram,
                                                 sim::Time now) {
  std::vector<net::PacketRef> frags;
  frags.reserve(static_cast<std::size_t>(fragment_count(datagram->size_bytes)));
  fragment_to(pool, std::move(datagram), now,
              [&frags](net::PacketRef f) { frags.push_back(std::move(f)); });
  return frags;
}

Reassembler::Reassembler(sim::Simulator& sim, ReassemblerConfig cfg,
                         net::PacketSink* upper)
    : sim_(sim), cfg_(cfg), tsink_(sim.trace()), upper_(upper) {}

void Reassembler::handle_fragment(net::PacketRef frag) {
  assert(frag && frag->frag.has_value());
  purge_expired();
  ++stats_.fragments_received;

  const net::FragmentHeader& h = *frag->frag;
  auto [it, inserted] = partial_.try_emplace(h.datagram_id);
  Partial& p = it->second;
  if (inserted) {
    p.have.assign(static_cast<std::size_t>(h.count), false);
    p.remaining = h.count;
    p.first_seen = sim_.now();
  }
  const auto idx = static_cast<std::size_t>(h.index);
  assert(idx < p.have.size());
  if (p.have[idx]) {
    ++stats_.duplicate_fragments;
    return;
  }
  p.have[idx] = true;
  if (--p.remaining > 0) return;

  // Complete: hand the encapsulated wired datagram upstairs (a share of
  // the original slot — the fragments never copied it).
  ++stats_.datagrams_completed;
  net::PacketRef datagram =
      frag->encapsulated ? frag->encapsulated.share() : std::move(frag);
  partial_.erase(it);
  WTCP_TRACE_EMIT(tsink_, sim_.now(), datagram->uid,
                  obs::TraceSite::kReassembled, 0, 0,
                  static_cast<std::int32_t>(h.datagram_id));
  if (upper_) upper_->handle_packet(std::move(datagram));
}

void Reassembler::purge_expired() {
  const sim::Time cutoff = sim_.now() - cfg_.timeout;
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (it->second.first_seen < cutoff) {
      ++stats_.datagrams_expired;
      it = partial_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace wtcp::link
