#include "src/link/fragmentation.hpp"

#include <cassert>
#include <memory>

namespace wtcp::link {

Fragmenter::Fragmenter(FragmenterConfig cfg) : cfg_(cfg) {
  assert(cfg_.mtu_bytes > 0);
}

std::int32_t Fragmenter::fragment_count(std::int64_t size_bytes) const {
  if (size_bytes <= 0) return 1;
  return static_cast<std::int32_t>((size_bytes + cfg_.mtu_bytes - 1) / cfg_.mtu_bytes);
}

std::vector<net::Packet> Fragmenter::fragment(const net::Packet& datagram,
                                              sim::Time now) {
  const std::int32_t count = fragment_count(datagram.size_bytes);
  const std::uint64_t id = next_datagram_id_++;
  auto original = std::make_shared<const net::Packet>(datagram);

  std::vector<net::Packet> frags;
  frags.reserve(static_cast<std::size_t>(count));
  std::int64_t remaining = datagram.size_bytes;
  for (std::int32_t i = 0; i < count; ++i) {
    net::Packet f;
    f.type = net::PacketType::kLinkFragment;
    f.size_bytes = std::min(cfg_.mtu_bytes, remaining);
    remaining -= f.size_bytes;
    f.src = datagram.src;
    f.dst = datagram.dst;
    f.frag = net::FragmentHeader{.datagram_id = id, .index = i, .count = count,
                                 .link_seq = -1};
    f.encapsulated = original;
    f.created_at = now;
    frags.push_back(std::move(f));
  }
  ++stats_.datagrams;
  stats_.fragments += static_cast<std::uint64_t>(count);
  return frags;
}

Reassembler::Reassembler(sim::Simulator& sim, ReassemblerConfig cfg,
                         net::PacketSink* upper)
    : sim_(sim), cfg_(cfg), upper_(upper) {}

void Reassembler::handle_fragment(const net::Packet& frag) {
  assert(frag.frag.has_value());
  purge_expired();
  ++stats_.fragments_received;

  const net::FragmentHeader& h = *frag.frag;
  auto [it, inserted] = partial_.try_emplace(h.datagram_id);
  Partial& p = it->second;
  if (inserted) {
    p.have.assign(static_cast<std::size_t>(h.count), false);
    p.remaining = h.count;
    p.first_seen = sim_.now();
  }
  const auto idx = static_cast<std::size_t>(h.index);
  assert(idx < p.have.size());
  if (p.have[idx]) {
    ++stats_.duplicate_fragments;
    return;
  }
  p.have[idx] = true;
  if (--p.remaining > 0) return;

  // Complete: hand the encapsulated wired datagram upstairs.
  ++stats_.datagrams_completed;
  net::Packet datagram = frag.encapsulated ? *frag.encapsulated : frag;
  partial_.erase(it);
  if (upper_) upper_->handle_packet(std::move(datagram));
}

void Reassembler::purge_expired() {
  const sim::Time cutoff = sim_.now() - cfg_.timeout;
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (it->second.first_seen < cutoff) {
      ++stats_.datagrams_expired;
      it = partial_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace wtcp::link
