// IP-style fragmentation and reassembly over the wireless MTU.
//
// Every wired datagram entering the wireless link is split into MTU-sized
// link fragments (the paper's CDPD-like 128-byte MTU).  The mobile host
// reassembles; a single missing fragment means the whole datagram is lost
// ("fragmentation considered harmful"), which is the effect behind the
// paper's packet-size results (Figure 7/9).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/net/node.hpp"
#include "src/net/packet.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::obs {
class TraceSink;
}

namespace wtcp::link {

struct FragmenterConfig {
  std::int64_t mtu_bytes = 128;  ///< max link-frame payload (paper: 128 B)
};

struct FragmenterStats {
  std::uint64_t datagrams = 0;
  std::uint64_t fragments = 0;
};

/// Identity of one fragmented datagram.
struct FragmentInfo {
  std::uint64_t datagram_id = 0;
  std::int32_t count = 0;
};

/// Splits wired datagrams into kLinkFragment packets.  Datagrams no larger
/// than the MTU still get wrapped (count = 1) so that the ARQ path is
/// uniform; the wrapping adds no bytes.
class Fragmenter {
 public:
  explicit Fragmenter(FragmenterConfig cfg);

  /// Number of fragments a datagram of `size_bytes` will produce.
  std::int32_t fragment_count(std::int64_t size_bytes) const;

  /// Split `datagram` and hand each fragment to `emit(net::PacketRef)` in
  /// index order.  Fragments are drawn from `pool` and all share the
  /// original datagram slot through `encapsulated` (refcount bumps, no
  /// copies).  Allocation-free in steady state.
  template <typename Emit>
  FragmentInfo fragment_to(net::PacketPool& pool, net::PacketRef datagram,
                           sim::Time now, Emit&& emit) {
    assert(datagram);
    const std::int32_t count = fragment_count(datagram->size_bytes);
    const std::uint64_t id = next_datagram_id_++;
    std::int64_t remaining = datagram->size_bytes;
    for (std::int32_t i = 0; i < count; ++i) {
      net::PacketRef f = pool.acquire();
      f->type = net::PacketType::kLinkFragment;
      f->size_bytes = std::min(cfg_.mtu_bytes, remaining);
      remaining -= f->size_bytes;
      f->src = datagram->src;
      f->dst = datagram->dst;
      f->frag = net::FragmentHeader{.datagram_id = id, .index = i,
                                    .count = count, .link_seq = -1};
      f->encapsulated = datagram.share();
      f->created_at = now;
      emit(std::move(f));
    }
    ++stats_.datagrams;
    stats_.fragments += static_cast<std::uint64_t>(count);
    return FragmentInfo{.datagram_id = id, .count = count};
  }

  /// Convenience for tests: collect the fragments into a vector.
  std::vector<net::PacketRef> fragment(net::PacketPool& pool,
                                       net::PacketRef datagram, sim::Time now);

  const FragmenterStats& stats() const { return stats_; }

 private:
  FragmenterConfig cfg_;
  FragmenterStats stats_;
  std::uint64_t next_datagram_id_ = 1;
};

struct ReassemblerConfig {
  /// Incomplete datagrams older than this are purged (holes never fill:
  /// either ARQ recovers a fragment quickly or it was discarded).
  sim::Time timeout = sim::Time::seconds(60);
};

struct ReassemblerStats {
  std::uint64_t fragments_received = 0;
  std::uint64_t duplicate_fragments = 0;
  std::uint64_t datagrams_completed = 0;
  std::uint64_t datagrams_expired = 0;  ///< purged with holes
};

/// Collects fragments and delivers the encapsulated wired datagram to the
/// upper sink once all pieces arrived.  Duplicates (ARQ retransmissions
/// whose link ACK was lost) are ignored.
class Reassembler {
 public:
  Reassembler(sim::Simulator& sim, ReassemblerConfig cfg, net::PacketSink* upper);

  void set_upper(net::PacketSink* upper) { upper_ = upper; }

  /// Feed one arriving fragment (takes ownership).
  void handle_fragment(net::PacketRef frag);

  const ReassemblerStats& stats() const { return stats_; }
  std::size_t pending() const { return partial_.size(); }

 private:
  struct Partial {
    std::vector<bool> have;
    std::int32_t remaining = 0;
    sim::Time first_seen;
  };

  void purge_expired();

  sim::Simulator& sim_;
  ReassemblerConfig cfg_;
  obs::TraceSink* tsink_ = nullptr;
  net::PacketSink* upper_;
  std::unordered_map<std::uint64_t, Partial> partial_;
  ReassemblerStats stats_;
};

}  // namespace wtcp::link
