// IP-style fragmentation and reassembly over the wireless MTU.
//
// Every wired datagram entering the wireless link is split into MTU-sized
// link fragments (the paper's CDPD-like 128-byte MTU).  The mobile host
// reassembles; a single missing fragment means the whole datagram is lost
// ("fragmentation considered harmful"), which is the effect behind the
// paper's packet-size results (Figure 7/9).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/net/node.hpp"
#include "src/net/packet.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::link {

struct FragmenterConfig {
  std::int64_t mtu_bytes = 128;  ///< max link-frame payload (paper: 128 B)
};

struct FragmenterStats {
  std::uint64_t datagrams = 0;
  std::uint64_t fragments = 0;
};

/// Splits wired datagrams into kLinkFragment packets.  Datagrams no larger
/// than the MTU still get wrapped (count = 1) so that the ARQ path is
/// uniform; the wrapping adds no bytes.
class Fragmenter {
 public:
  explicit Fragmenter(FragmenterConfig cfg);

  /// Number of fragments a datagram of `size_bytes` will produce.
  std::int32_t fragment_count(std::int64_t size_bytes) const;

  std::vector<net::Packet> fragment(const net::Packet& datagram, sim::Time now);

  const FragmenterStats& stats() const { return stats_; }

 private:
  FragmenterConfig cfg_;
  FragmenterStats stats_;
  std::uint64_t next_datagram_id_ = 1;
};

struct ReassemblerConfig {
  /// Incomplete datagrams older than this are purged (holes never fill:
  /// either ARQ recovers a fragment quickly or it was discarded).
  sim::Time timeout = sim::Time::seconds(60);
};

struct ReassemblerStats {
  std::uint64_t fragments_received = 0;
  std::uint64_t duplicate_fragments = 0;
  std::uint64_t datagrams_completed = 0;
  std::uint64_t datagrams_expired = 0;  ///< purged with holes
};

/// Collects fragments and delivers the encapsulated wired datagram to the
/// upper sink once all pieces arrived.  Duplicates (ARQ retransmissions
/// whose link ACK was lost) are ignored.
class Reassembler {
 public:
  Reassembler(sim::Simulator& sim, ReassemblerConfig cfg, net::PacketSink* upper);

  void set_upper(net::PacketSink* upper) { upper_ = upper; }

  /// Feed one arriving fragment.
  void handle_fragment(const net::Packet& frag);

  const ReassemblerStats& stats() const { return stats_; }
  std::size_t pending() const { return partial_.size(); }

 private:
  struct Partial {
    std::vector<bool> have;
    std::int32_t remaining = 0;
    sim::Time first_seen;
  };

  void purge_expired();

  sim::Simulator& sim_;
  ReassemblerConfig cfg_;
  net::PacketSink* upper_;
  std::unordered_map<std::uint64_t, Partial> partial_;
  ReassemblerStats stats_;
};

}  // namespace wtcp::link
