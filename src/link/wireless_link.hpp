// Wireless interface: the per-endpoint glue that turns a raw DuplexLink
// into the paper's wireless hop.
//
// Outbound: wired datagrams are fragmented to the wireless MTU and either
// sent raw (basic TCP) or handed to the local-recovery ARQ sender.
// Inbound: link ACKs are demuxed to the ARQ sender; fragments go through
// duplicate suppression (when ARQ is on) and reassembly, and complete
// datagrams are delivered to the upper-layer sink (TCP agent or base
// station forwarder).
//
// Also provides `make_wan_wireless_link` / `make_lan_wireless_link`
// factories preconfigured with the paper's Section 3.1 / 4.2.4 parameters.
#pragma once

#include <memory>
#include <string>

#include "src/link/fragmentation.hpp"
#include "src/link/link_arq.hpp"
#include "src/net/link.hpp"
#include "src/obs/probe.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::link {

struct WirelessIfaceConfig {
  bool local_recovery = false;  ///< enable link-level ARQ on this endpoint
  ArqConfig arq;
  FragmenterConfig frag;        ///< wireless MTU (paper: 128 B wide-area)
  ReassemblerConfig reassembly;
};

class WirelessInterface final : public net::PacketSink {
 public:
  /// Constructs the interface and registers it as the link's sink at
  /// `endpoint`.  `upper` receives reassembled wired datagrams.
  WirelessInterface(sim::Simulator& sim, net::DuplexLink& link, int endpoint,
                    WirelessIfaceConfig cfg, std::string name,
                    net::PacketSink* upper = nullptr);

  void set_upper(net::PacketSink* upper) { reassembler_.set_upper(upper); }

  /// Identity of one send_datagram() call: which link-layer datagram id
  /// the fragmenter assigned and how many fragments it produced.  Callers
  /// that track datagram resolution (the BS scheduler) key on these.
  struct SendInfo {
    std::uint64_t datagram_id = 0;
    std::int32_t fragments = 0;
  };

  /// Send a wired datagram across the wireless hop (takes ownership;
  /// fragments share the datagram's slot, nothing is copied).
  SendInfo send_datagram(net::PacketRef datagram);

  /// Link delivery entry point (fragments + link ACKs).
  void handle_packet(net::PacketRef pkt) override;

  /// ARQ sender of this endpoint (EBSN subscribes to its hooks).
  /// Precondition: local_recovery is enabled.
  ArqSender& arq_sender();
  const ArqSender* arq_sender_or_null() const { return arq_sender_.get(); }

  const Fragmenter& fragmenter() const { return fragmenter_; }
  const Reassembler& reassembler() const { return reassembler_; }
  const ArqReceiver* arq_receiver_or_null() const { return arq_receiver_.get(); }
  bool local_recovery() const { return cfg_.local_recovery; }

 private:
  void make_arq_receiver();
  sim::Simulator& sim_;
  net::DuplexLink& link_;
  int endpoint_;
  WirelessIfaceConfig cfg_;
  std::string name_;
  Fragmenter fragmenter_;
  Reassembler reassembler_;
  std::unique_ptr<ArqSender> arq_sender_;
  std::unique_ptr<ArqReceiver> arq_receiver_;
  obs::Counter* probe_datagrams_ = nullptr;
  obs::Counter* probe_fragments_ = nullptr;
  obs::TraceSink* tsink_ = nullptr;
};

/// Paper Section 3.1: 19.2 kbps raw, 1.5x framing/FEC overhead (=> 12.8
/// kbps effective), 128 B MTU handled by WirelessInterface, small prop
/// delay.  Queue sized so that the paper's windows never congest it.
net::LinkConfig wan_wireless_link_config();

/// Paper Section 4.2.4: 2 Mbps wireless LAN, no framing overhead, no
/// fragmentation (MTU >= packet size).
net::LinkConfig lan_wireless_link_config();

}  // namespace wtcp::link
