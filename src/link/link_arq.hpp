// Link-level local recovery (the paper's Section 4.2.1 base-station ARQ,
// modelled on the aggressive-retransmission protocol of Bhagwat et al.
// [9]): a sliding window of frames is kept on the air; each frame is
// retransmitted after a randomized exponential backoff whenever its link
// ACK times out, and discarded after RTmax successive retransmissions
// (paper/CDPD: RTmax = 13).
//
// The sender side exposes an `on_attempt_failed` hook fired at every link
// ACK timeout — this is exactly where the paper's base station emits an
// EBSN ("EBSNs are sent to the source after every unsuccessful attempt by
// the base station to transmit packets over the wireless link").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "src/net/link.hpp"
#include "src/net/packet.hpp"
#include "src/obs/probe.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::link {

struct ArqConfig {
  std::int32_t rt_max = 13;  ///< max successive retransmissions before discard
  std::int32_t window = 8;   ///< frames concurrently awaiting a link ACK
  sim::Time base_backoff = sim::Time::milliseconds(25);
  sim::Time max_backoff = sim::Time::milliseconds(250);
  /// Extra slack on top of the computed ACK round trip (absorbs link ACKs
  /// queueing behind other reverse-channel traffic).
  sim::Time ack_guard = sim::Time::milliseconds(20);
  std::int64_t link_ack_bytes = 16;  ///< size of a link ACK control frame
  std::size_t buffer_packets = 4096; ///< sender-side ARQ buffer
  /// Receiver-side in-order release: how long a head-of-line hole may stall
  /// buffered frames before being skipped (covers frames the sender
  /// discarded after RTmax).  Zero = auto: ~3 recovery cycles, derived from
  /// window, frame airtime and max_backoff.
  sim::Time reorder_flush = sim::Time::zero();
};

struct ArqSenderStats {
  std::uint64_t submitted = 0;
  std::uint64_t attempts = 0;        ///< transmissions incl. retransmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t delivered = 0;       ///< frames positively acknowledged
  std::uint64_t discarded = 0;       ///< frames dropped after RTmax
  std::uint64_t stale_acks = 0;      ///< link ACKs for a non-outstanding frame
  std::uint64_t buffer_drops = 0;
};

/// Reliable (best-effort up to RTmax) transmitter for one direction of the
/// wireless link.  Selective-repeat: up to `window` frames are
/// outstanding; each runs its own ACK timer, armed when the frame's
/// airtime actually ends (the sender observes its own transmissions
/// through the link's frame observer).
class ArqSender {
 public:
  ArqSender(sim::Simulator& sim, net::DuplexLink& link, int endpoint, ArqConfig cfg,
            std::string name);

  /// Queue a frame for reliable transmission.  The frame's link_seq is
  /// assigned here.
  void submit(net::PacketRef frame);

  /// Feed a received link ACK (called by the endpoint demux).
  void on_link_ack(const net::Packet& ack);

  /// Fired on every link-ACK timeout, BEFORE the backoff/retransmit or
  /// discard decision.  `attempt` is the number of transmissions so far.
  std::function<void(const net::Packet&, std::int32_t attempt)> on_attempt_failed;
  /// Fired when a frame exceeds RTmax and is dropped.
  std::function<void(const net::Packet&)> on_discard;
  /// Fired when a frame is positively acknowledged.
  std::function<void(const net::Packet&)> on_delivered;

  const ArqSenderStats& stats() const { return stats_; }
  std::size_t backlog() const { return queue_.size() + outstanding_.size(); }
  std::size_t outstanding() const { return outstanding_.size(); }
  bool idle() const { return outstanding_.empty() && queue_.empty(); }
  const ArqConfig& config() const { return cfg_; }

 private:
  struct Outstanding {
    net::PacketRef frame;
    std::int32_t attempts = 0;  ///< transmissions so far
    sim::EventId ack_timer;
    sim::EventId backoff_timer;
    bool in_flight = false;     ///< handed to the link, airtime not finished
  };

  void fill_window();
  void transmit_attempt(std::int64_t seq);
  void on_frame_aired(const net::Packet& frame);
  void on_ack_timeout(std::int64_t seq);
  sim::Time ack_wait_after_airtime(const net::Packet& frame) const;
  sim::Time backoff_delay(std::int32_t attempt);

  sim::Simulator& sim_;
  net::DuplexLink& link_;
  int endpoint_;
  ArqConfig cfg_;
  std::string name_;
  sim::Rng rng_;

  std::deque<net::PacketRef> queue_;                ///< not yet in the window
  std::map<std::int64_t, Outstanding> outstanding_; ///< link_seq -> state
  std::int64_t next_link_seq_ = 0;
  ArqSenderStats stats_;

  /// Probe bus (null when observability is off).  Counters are shared
  /// across ARQ instances — they aggregate both link directions.
  obs::Registry* bus_ = nullptr;
  obs::Counter* probe_attempts_ = nullptr;
  obs::Counter* probe_retransmissions_ = nullptr;
  obs::Counter* probe_discards_ = nullptr;
  obs::Counter* probe_delivered_ = nullptr;
  /// Frame-creation-to-link-ACK latency (shared across instances, like
  /// the counters), and the packet-lifecycle trace sink.
  obs::Histogram* recovery_hist_ = nullptr;
  obs::TraceSink* tsink_ = nullptr;
};

struct ArqReceiverStats {
  std::uint64_t frames = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t buffered = 0;       ///< arrived out of order
  std::uint64_t holes_skipped = 0;  ///< head-of-line frames given up on
};

/// Receiver side: acknowledges every ARQ frame, suppresses duplicates, and
/// releases frames to the upper layer IN link_seq ORDER.  In-order release
/// is what keeps selective-repeat recovery from reordering TCP segments
/// and triggering spurious duplicate ACKs at the sink.  A head-of-line
/// hole that outlives the flush timeout (a frame the sender discarded
/// after RTmax) is skipped so delivery can continue.
class ArqReceiver {
 public:
  ArqReceiver(sim::Simulator& sim, net::DuplexLink& link, int endpoint, ArqConfig cfg,
              std::string name);

  /// Where in-order frames are released.
  void set_deliver(std::function<void(net::PacketRef)> deliver) {
    deliver_ = std::move(deliver);
  }

  /// Feed a received ARQ frame.  Sends a link ACK in all cases (the
  /// earlier ACK may have been lost) and releases whatever is now in
  /// order through the deliver callback.
  void on_frame(net::PacketRef frame);

  const ArqReceiverStats& stats() const { return stats_; }
  std::int64_t next_expected() const { return next_expected_; }
  std::size_t reorder_depth() const { return buffer_.size(); }

 private:
  void release_in_order();
  void arm_hole_timer();
  void on_hole_timeout();
  sim::Time flush_timeout_for(const net::Packet& head) const;

  sim::Simulator& sim_;
  net::DuplexLink& link_;
  int endpoint_;
  ArqConfig cfg_;
  std::string name_;
  std::function<void(net::PacketRef)> deliver_;
  std::int64_t next_expected_ = 0;
  std::map<std::int64_t, net::PacketRef> buffer_;  ///< out-of-order frames
  sim::EventId hole_timer_;
  ArqReceiverStats stats_;
};

}  // namespace wtcp::link
