#include "src/link/link_arq.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "src/core/audit.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/logging.hpp"

namespace wtcp::link {

// ---------------------------------------------------------------------------
// ArqSender
// ---------------------------------------------------------------------------

ArqSender::ArqSender(sim::Simulator& sim, net::DuplexLink& link, int endpoint,
                     ArqConfig cfg, std::string name)
    : sim_(sim),
      link_(link),
      endpoint_(endpoint),
      cfg_(cfg),
      name_(std::move(name)),
      rng_(sim.fork_rng(name_ + "/arq-backoff")) {
  assert(cfg_.rt_max >= 0 && cfg_.window >= 1);
  if ((bus_ = sim_.probes())) {
    probe_attempts_ = bus_->counter("arq.attempts");
    probe_retransmissions_ = bus_->counter("arq.retransmissions");
    probe_discards_ = bus_->counter("arq.discards");
    probe_delivered_ = bus_->counter("arq.delivered");
    recovery_hist_ = bus_->histogram("arq.recovery_s");
  }
  tsink_ = sim_.trace();
  // Arm ACK timers from actual transmission completion: watch our own
  // frames finish their airtime.
  link_.add_frame_observer([this](int from, const net::Packet& pkt, bool) {
    if (from != endpoint_ || pkt.type != net::PacketType::kLinkFragment) return;
    on_frame_aired(pkt);
  });
}

void ArqSender::submit(net::PacketRef frame) {
  assert(frame && frame->frag.has_value() && "ARQ transports link fragments");
  if (queue_.size() >= cfg_.buffer_packets) {
    // ARQ buffer overflow: drop-tail.  With the paper's window sizes this
    // does not happen; the bound protects pathological configs.
    ++stats_.buffer_drops;
    return;
  }
  ++stats_.submitted;
  // The frame is still exclusively ours here; after this point it is
  // immutable (retransmission attempts share the same slot).
  frame->frag->link_seq = next_link_seq_++;
  WTCP_TRACE_EMIT(tsink_, sim_.now(), frame->uid, obs::TraceSite::kArqSubmit,
                  0, 0, static_cast<std::int32_t>(frame->frag->link_seq));
  queue_.push_back(std::move(frame));
  fill_window();
}

void ArqSender::fill_window() {
  while (!queue_.empty() &&
         outstanding_.size() < static_cast<std::size_t>(cfg_.window)) {
    net::PacketRef frame = std::move(queue_.front());
    queue_.pop_front();
    const std::int64_t seq = frame->frag->link_seq;
    auto [it, inserted] = outstanding_.try_emplace(seq);
    assert(inserted);
    it->second.frame = std::move(frame);
    transmit_attempt(seq);
  }
}

void ArqSender::transmit_attempt(std::int64_t seq) {
  auto it = outstanding_.find(seq);
  assert(it != outstanding_.end());
  Outstanding& o = it->second;
  ++o.attempts;
  // The attempt about to go on the air must still be within the RTmax
  // budget — attempt RTmax+1 (i.e. retransmission RTmax) is the last one
  // the timeout handler may retry; anything beyond means the mandatory
  // discard was skipped.
  WTCP_AUDIT_CHECK(audit::arq_attempts_within_bound(o.attempts, cfg_.rt_max),
                   "arq", "rtmax_bound",
                   "transmission attempt exceeds RTmax without discard");
  ++stats_.attempts;
  obs::add(probe_attempts_);
  if (o.attempts > 1) {
    ++stats_.retransmissions;
    obs::add(probe_retransmissions_);
  }
  o.in_flight = true;
  WTCP_TRACE_EMIT(tsink_, sim_.now(), o.frame->uid, obs::TraceSite::kArqAttempt,
                  static_cast<std::uint8_t>(std::min(o.attempts, 255)), 0,
                  static_cast<std::int32_t>(seq));
  // Share, don't copy: a retransmission puts another ref to the same
  // immutable slot on the air (the receiver dedups by link_seq).
  link_.send(endpoint_, o.frame.share());
}

sim::Time ArqSender::ack_wait_after_airtime(const net::Packet& frame) const {
  // After our frame leaves the air: propagation out, the ACK's airtime
  // back (possibly queued behind one reverse-channel frame of up to MTU
  // size — covered by the guard), propagation back.
  sim::Time wait = link_.config().prop_delay * 2 +
                   link_.frame_airtime(cfg_.link_ack_bytes) * 2 + cfg_.ack_guard;
  if (link_.config().half_duplex) {
    // On a shared medium the link ACK additionally waits for whatever data
    // frame grabbed the channel first — up to one frame of our own size.
    wait += link_.frame_airtime(frame.size_bytes);
  }
  return wait;
}

void ArqSender::on_frame_aired(const net::Packet& pkt) {
  const std::int64_t seq = pkt.frag->link_seq;
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;  // already acked or discarded
  Outstanding& o = it->second;
  if (!o.in_flight) return;  // stale duplicate airing after a late ACK
  o.in_flight = false;
  sim_.cancel(o.ack_timer);
  o.ack_timer = sim_.after(
      ack_wait_after_airtime(*o.frame), [this, seq] { on_ack_timeout(seq); },
      "arq.ack_timer");
}

sim::Time ArqSender::backoff_delay(std::int32_t attempt) {
  // Randomized exponential backoff: base * 2^(attempt-1), capped, then
  // jittered by +/-50% ("random retransmission backoff").
  sim::Time nominal = cfg_.base_backoff;
  for (std::int32_t i = 1; i < attempt && nominal < cfg_.max_backoff; ++i) {
    nominal = nominal * 2;
  }
  nominal = std::min(nominal, cfg_.max_backoff);
  return nominal.scaled(rng_.uniform(0.5, 1.5));
}

void ArqSender::on_ack_timeout(std::int64_t seq) {
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;
  Outstanding& o = it->second;
  WTCP_LOG(kDebug, sim_.now(), name_.c_str(), "ack timeout attempt=%d %s",
           o.attempts, o.frame->describe().c_str());
  if (bus_) {
    bus_->publish(sim_.now(), "arq", "ack_timeout",
                  static_cast<double>(o.attempts));
  }
  if (on_attempt_failed) on_attempt_failed(*o.frame, o.attempts);

  // `attempts` transmissions done => `attempts - 1` retransmissions so
  // far; RTmax bounds successive retransmissions.
  if (o.attempts - 1 >= cfg_.rt_max) {
    ++stats_.discarded;
    obs::add(probe_discards_);
    WTCP_TRACE_EMIT(tsink_, sim_.now(), o.frame->uid,
                    obs::TraceSite::kArqDiscard,
                    static_cast<std::uint8_t>(std::min(o.attempts, 255)), 0,
                    static_cast<std::int32_t>(seq));
    if (bus_) bus_->publish(sim_.now(), "arq", "discard", static_cast<double>(seq));
    const net::PacketRef dropped = std::move(o.frame);
    sim_.cancel(o.backoff_timer);
    outstanding_.erase(it);
    // RTmax reached => the frame must actually leave the window; a
    // lingering entry would retransmit a discarded frame.
    WTCP_AUDIT_CHECK(!outstanding_.contains(seq), "arq", "discard_mandatory",
                     "frame still outstanding after its RTmax discard");
    if (on_discard) on_discard(*dropped);
    fill_window();
    return;
  }
  WTCP_TRACE_EMIT(tsink_, sim_.now(), o.frame->uid, obs::TraceSite::kArqBackoff,
                  static_cast<std::uint8_t>(std::min(o.attempts, 255)), 0,
                  static_cast<std::int32_t>(seq));
  o.backoff_timer = sim_.after(
      backoff_delay(o.attempts),
      [this, seq] {
        if (outstanding_.contains(seq)) transmit_attempt(seq);
      },
      "arq.backoff");
}

void ArqSender::on_link_ack(const net::Packet& ack) {
  assert(ack.type == net::PacketType::kLinkAck && ack.frag.has_value());
  auto it = outstanding_.find(ack.frag->link_seq);
  if (it == outstanding_.end()) {
    ++stats_.stale_acks;
    return;
  }
  ++stats_.delivered;
  obs::add(probe_delivered_);
  Outstanding& o = it->second;
  sim_.cancel(o.ack_timer);
  sim_.cancel(o.backoff_timer);
  const net::PacketRef done = std::move(o.frame);
  outstanding_.erase(it);
  // Recovery latency: frame creation (fragmentation time) to link ACK.
  obs::record(recovery_hist_, (sim_.now() - done->created_at).to_seconds());
  WTCP_TRACE_EMIT(tsink_, sim_.now(), done->uid, obs::TraceSite::kArqDelivered,
                  0, 0, static_cast<std::int32_t>(ack.frag->link_seq));
  if (on_delivered) on_delivered(*done);
  fill_window();
}

// ---------------------------------------------------------------------------
// ArqReceiver
// ---------------------------------------------------------------------------

ArqReceiver::ArqReceiver(sim::Simulator& sim, net::DuplexLink& link, int endpoint,
                         ArqConfig cfg, std::string name)
    : sim_(sim), link_(link), endpoint_(endpoint), cfg_(cfg), name_(std::move(name)) {}

void ArqReceiver::on_frame(net::PacketRef frame) {
  assert(frame && frame->frag.has_value());
  ++stats_.frames;
  const std::int64_t seq = frame->frag->link_seq;
  assert(seq >= 0 && "ARQ receiver fed a non-ARQ frame");

  // Always (re-)acknowledge: the sender may be retransmitting because our
  // previous ACK was lost.  Link ACKs jump the queue.
  net::PacketRef ack =
      net::make_control(sim_.packet_pool(), net::PacketType::kLinkAck,
                        cfg_.link_ack_bytes, frame->dst, frame->src, sim_.now());
  ack->frag = net::FragmentHeader{.datagram_id = frame->frag->datagram_id,
                                  .index = frame->frag->index,
                                  .count = frame->frag->count,
                                  .link_seq = seq};
  link_.send(endpoint_, std::move(ack), /*priority=*/true);
  ++stats_.acks_sent;

  if (seq < next_expected_ || buffer_.contains(seq)) {
    ++stats_.duplicates;
    return;
  }
  if (seq > next_expected_) ++stats_.buffered;
  buffer_.emplace(seq, std::move(frame));
  release_in_order();
  arm_hole_timer();
}

void ArqReceiver::release_in_order() {
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first == next_expected_) {
    net::PacketRef out = std::move(it->second);
    it = buffer_.erase(it);
    ++next_expected_;
    ++stats_.delivered;
    if (deliver_) deliver_(std::move(out));
  }
}

sim::Time ArqReceiver::flush_timeout_for(const net::Packet& head) const {
  if (!cfg_.reorder_flush.is_zero()) return cfg_.reorder_flush;
  // ~3 recovery cycles: while later frames are arriving, the hole frame is
  // being retried once per cycle unless the sender discarded it.
  const sim::Time cycle = link_.frame_airtime(head.size_bytes) * cfg_.window +
                          cfg_.max_backoff + cfg_.ack_guard +
                          link_.config().prop_delay * 2;
  return cycle * 3;
}

void ArqReceiver::arm_hole_timer() {
  if (buffer_.empty()) {
    sim_.cancel(hole_timer_);
    return;
  }
  if (sim_.pending(hole_timer_)) return;  // already timing this hole
  const sim::Time flush = flush_timeout_for(*buffer_.begin()->second);
  hole_timer_ = sim_.after(flush, [this] { on_hole_timeout(); }, "arq.hole_timer");
}

void ArqReceiver::on_hole_timeout() {
  if (buffer_.empty()) return;
  // Skip the head-of-line hole: the sender has evidently given up on
  // those frames (RTmax discard).  Resume delivery at the first frame we
  // actually hold.
  const std::int64_t skip_to = buffer_.begin()->first;
  WTCP_LOG(kDebug, sim_.now(), name_.c_str(), "hole flush: skipping %lld..%lld",
           static_cast<long long>(next_expected_), static_cast<long long>(skip_to - 1));
  stats_.holes_skipped += static_cast<std::uint64_t>(skip_to - next_expected_);
  next_expected_ = skip_to;
  release_in_order();
  arm_hole_timer();
}

}  // namespace wtcp::link
