#include "src/link/bs_scheduler.hpp"

#include <cassert>
#include <utility>

#include "src/sim/logging.hpp"

namespace wtcp::link {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kRoundRobin: return "round-robin";
    case SchedPolicy::kCsdRoundRobin: return "csd-round-robin";
  }
  return "?";
}

BsScheduler::BsScheduler(sim::Simulator& sim, BsSchedulerConfig cfg, std::size_t users)
    : sim_(sim), cfg_(cfg), queues_(users) {
  assert(users > 0);
  assert(cfg_.max_outstanding >= 1);
}

void BsScheduler::enqueue(std::size_t user, net::PacketRef datagram) {
  assert(user < queues_.size());
  if (queues_[user].size() >= cfg_.queue_datagrams) {
    ++stats_.dropped;
    return;
  }
  ++stats_.enqueued;
  queues_[user].push_back(std::move(datagram));
  if (cfg_.policy == SchedPolicy::kFifo) fifo_order_.push_back(user);
  pump();
}

void BsScheduler::on_resolved(std::size_t user) {
  (void)user;
  assert(outstanding_ > 0);
  --outstanding_;
  pump();
}

std::size_t BsScheduler::total_backlog() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

std::size_t BsScheduler::pick() {
  const std::size_t users = queues_.size();
  switch (cfg_.policy) {
    case SchedPolicy::kFifo: {
      while (!fifo_order_.empty() && queues_[fifo_order_.front()].empty()) {
        fifo_order_.pop_front();  // stale entries from other policies
      }
      return fifo_order_.empty() ? npos : fifo_order_.front();
    }
    case SchedPolicy::kRoundRobin: {
      for (std::size_t i = 0; i < users; ++i) {
        const std::size_t u = (rr_cursor_ + i) % users;
        if (!queues_[u].empty()) {
          rr_cursor_ = (u + 1) % users;
          return u;
        }
      }
      return npos;
    }
    case SchedPolicy::kCsdRoundRobin: {
      assert(probe_ && "CSD scheduling requires a channel probe");
      bool any_backlogged = false;
      for (std::size_t i = 0; i < users; ++i) {
        const std::size_t u = (rr_cursor_ + i) % users;
        if (queues_[u].empty()) continue;
        any_backlogged = true;
        if (probe_(u)) {
          rr_cursor_ = (u + 1) % users;
          return u;
        }
        ++stats_.csd_skips;
      }
      if (any_backlogged) {
        // Every backlogged user is in a fade: defer and re-probe rather
        // than burn shared airtime on doomed transmissions.
        ++stats_.csd_deferrals;
        if (!sim_.pending(probe_timer_)) {
          probe_timer_ =
              sim_.after(cfg_.probe_interval, [this] { pump(); }, "bs.probe");
        }
      }
      return npos;
    }
  }
  return npos;
}

void BsScheduler::pump() {
  assert(release_ && "BsScheduler::set_release() must be called first");
  while (outstanding_ < cfg_.max_outstanding) {
    const std::size_t user = pick();
    if (user == npos) return;
    net::PacketRef datagram = std::move(queues_[user].front());
    queues_[user].pop_front();
    if (cfg_.policy == SchedPolicy::kFifo && !fifo_order_.empty() &&
        fifo_order_.front() == user) {
      fifo_order_.pop_front();
    }
    ++outstanding_;
    ++stats_.released;
    WTCP_LOG(kTrace, sim_.now(), "bs-sched", "release user=%zu (%s)", user,
             datagram->describe().c_str());
    release_(user, std::move(datagram));
  }
}

}  // namespace wtcp::link
