#include "src/link/bs_scheduler.hpp"

#include <bit>
#include <cassert>
#include <utility>

#include "src/core/audit.hpp"
#include "src/sim/logging.hpp"

namespace wtcp::link {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kRoundRobin: return "round-robin";
    case SchedPolicy::kCsdRoundRobin: return "csd-round-robin";
    case SchedPolicy::kDeficitRoundRobin: return "deficit-round-robin";
  }
  return "?";
}

BsScheduler::BsScheduler(sim::Simulator& sim, BsSchedulerConfig cfg, std::size_t users)
    : sim_(sim), cfg_(cfg), users_(users), backlog_bits_((users + 63) / 64) {
  assert(users > 0);
  assert(cfg_.max_outstanding >= 1);
  assert(cfg_.dwrr_quantum_bytes >= 1);
}

BsScheduler::~BsScheduler() {
  if (sim_.pending(probe_timer_)) sim_.cancel(probe_timer_);
}

void BsScheduler::set_weight(std::size_t user, std::uint32_t weight) {
  assert(user < users_.size());
  assert(weight >= 1);
  users_[user].weight = weight;
}

std::uint32_t BsScheduler::alloc_node() {
  if (free_head_ == kNil) {
    // Double the slab (min one cache-friendly chunk) and thread the new
    // slots onto the freelist.  Growth stops once the working set is
    // covered — node_slots() plateaus in steady state.
    const std::size_t old = nodes_.size();
    const std::size_t grown = old + (old == 0 ? 64 : old);
    nodes_.resize(grown);
    for (std::size_t i = grown; i-- > old;) {
      nodes_[i].next = free_head_;
      free_head_ = static_cast<std::uint32_t>(i);
    }
  }
  const std::uint32_t n = free_head_;
  free_head_ = nodes_[n].next;
  return n;
}

void BsScheduler::mark_backlogged(std::size_t user, bool backlogged) {
  std::uint64_t& word = backlog_bits_[user >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (user & 63);
  if (backlogged) {
    word |= bit;
  } else {
    word &= ~bit;
  }
}

std::size_t BsScheduler::next_backlogged(std::size_t from) const {
  const std::size_t n = users_.size();
  if (from >= n) return npos;
  std::size_t w = from >> 6;
  std::uint64_t word = backlog_bits_[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (word != 0) {
      const std::size_t u = (w << 6) +
                            static_cast<std::size_t>(std::countr_zero(word));
      return u < n ? u : npos;
    }
    if (++w >= backlog_bits_.size()) return npos;
    word = backlog_bits_[w];
  }
}

std::size_t BsScheduler::next_backlogged_cyclic() const {
  const std::size_t u = next_backlogged(rr_cursor_ % users_.size());
  return u != npos ? u : next_backlogged(0);
}

void BsScheduler::enqueue(std::size_t user, net::PacketRef datagram) {
  assert(user < users_.size());
  UserState& u = users_[user];
  if (u.size >= cfg_.queue_datagrams) {
    ++stats_.dropped;
    return;
  }
  ++stats_.enqueued;
  const std::uint32_t n = alloc_node();
  nodes_[n].pkt = std::move(datagram);
  nodes_[n].next = kNil;
  if (u.tail == kNil) {
    u.head = n;
  } else {
    nodes_[u.tail].next = n;
  }
  u.tail = n;
  if (u.size++ == 0) mark_backlogged(user, true);
  ++total_backlog_;
  if (cfg_.policy == SchedPolicy::kFifo) {
    if (fifo_tail_ - fifo_head_ == fifo_ring_.size()) {
      // Grow to the next power of two, compacting live entries to the
      // front so head/tail masking stays valid.
      std::vector<std::uint32_t> bigger(
          fifo_ring_.empty() ? 64 : fifo_ring_.size() * 2);
      const std::size_t live = fifo_tail_ - fifo_head_;
      for (std::size_t i = 0; i < live; ++i) {
        bigger[i] = fifo_ring_[(fifo_head_ + i) & (fifo_ring_.size() - 1)];
      }
      fifo_ring_ = std::move(bigger);
      fifo_head_ = 0;
      fifo_tail_ = live;
    }
    fifo_ring_[fifo_tail_++ & (fifo_ring_.size() - 1)] =
        static_cast<std::uint32_t>(user);
  }
  pump();
}

void BsScheduler::on_resolved(std::size_t user) {
  (void)user;
  assert(outstanding_ > 0);
  --outstanding_;
  pump();
}

std::size_t BsScheduler::total_backlog() const {
  WTCP_AUDIT_ONLY({
    std::size_t recount = 0;
    for (const UserState& u : users_) recount += u.size;
    WTCP_AUDIT_CHECK(recount == total_backlog_, "bs-sched", "backlog_counter",
                     "maintained total_backlog_ != sum of per-user sizes");
  })
  return total_backlog_;
}

net::PacketRef BsScheduler::pop_head(std::size_t user) {
  UserState& u = users_[user];
  assert(u.head != kNil);
  const std::uint32_t n = u.head;
  net::PacketRef pkt = std::move(nodes_[n].pkt);
  u.head = nodes_[n].next;
  if (u.head == kNil) u.tail = kNil;
  nodes_[n].next = free_head_;
  free_head_ = n;
  --u.size;
  --total_backlog_;
  if (u.size == 0) mark_backlogged(user, false);
  return pkt;
}

std::size_t BsScheduler::pick() {
  const std::size_t users = users_.size();
  switch (cfg_.policy) {
    case SchedPolicy::kFifo: {
      while (fifo_head_ != fifo_tail_ &&
             users_[fifo_ring_[fifo_head_ & (fifo_ring_.size() - 1)]].size ==
                 0) {
        ++fifo_head_;  // stale entries (queue emptied out of band)
      }
      return fifo_head_ == fifo_tail_
                 ? npos
                 : fifo_ring_[fifo_head_ & (fifo_ring_.size() - 1)];
    }
    case SchedPolicy::kRoundRobin: {
      const std::size_t u = next_backlogged_cyclic();
      if (u != npos) rr_cursor_ = (u + 1) % users;
      return u;
    }
    case SchedPolicy::kCsdRoundRobin: {
      assert(probe_ && "CSD scheduling requires a channel probe");
      if (total_backlog_ > 0) {
        // One cyclic lap over BACKLOGGED users only (the probe reads
        // channel state and never touches queues, so the bitmap is
        // stable across the walk).  Visit order matches the historical
        // all-users scan: ascending ids, cyclic from rr_cursor_.
        const std::size_t cursor = rr_cursor_ % users;
        const std::size_t start = next_backlogged_cyclic();
        std::size_t u = start;
        bool wrapped = start < cursor;
        while (u != npos) {
          if (probe_(u)) {
            rr_cursor_ = (u + 1) % users;
            return u;
          }
          ++stats_.csd_skips;
          std::size_t v = next_backlogged(u + 1);
          if (v == npos && !wrapped) {
            wrapped = true;
            v = next_backlogged(0);
          }
          if (v == npos || (wrapped && v >= cursor) || v == start) {
            break;  // completed the lap
          }
          u = v;
        }
        // Every backlogged user is in a fade: defer and re-probe rather
        // than burn shared airtime on doomed transmissions.
        ++stats_.csd_deferrals;
        if (!sim_.pending(probe_timer_)) {
          probe_timer_ =
              sim_.after(cfg_.probe_interval, [this] { pump(); }, "bs.probe");
        }
      }
      return npos;
    }
    case SchedPolicy::kDeficitRoundRobin:
      return pick_dwrr();
  }
  return npos;
}

std::size_t BsScheduler::pick_dwrr() {
  if (total_backlog_ == 0) return npos;
  // A user's service turn lasts while its banked byte credit covers the
  // head datagram; credit is earned (quantum x weight) when the turn
  // starts and forfeited when its queue drains.  The loop terminates
  // because every visit banks at least one quantum for some backlogged
  // user, so a head datagram is eventually affordable.
  while (true) {
    if (dwrr_current_ == npos) {
      dwrr_current_ = next_backlogged_cyclic();
      if (dwrr_current_ == npos) return npos;
      UserState& t = users_[dwrr_current_];
      t.deficit += cfg_.dwrr_quantum_bytes * t.weight;
    }
    UserState& u = users_[dwrr_current_];
    if (u.size == 0) {
      // Drained mid-turn (resolutions interleave under the outstanding
      // limit): unused credit is forfeited so an idle user cannot hoard
      // airtime.
      u.deficit = 0;
      rr_cursor_ = (dwrr_current_ + 1) % users_.size();
      dwrr_current_ = npos;
      continue;
    }
    if (u.deficit >= nodes_[u.head].pkt->size_bytes) return dwrr_current_;
    // Credit too small for the head datagram: bank it, end the turn.
    rr_cursor_ = (dwrr_current_ + 1) % users_.size();
    dwrr_current_ = npos;
  }
}

void BsScheduler::pump() {
  assert(release_ && "BsScheduler::set_release() must be called first");
  while (outstanding_ < cfg_.max_outstanding) {
    const std::size_t user = pick();
    if (user == npos) return;
    net::PacketRef datagram = pop_head(user);
    if (cfg_.policy == SchedPolicy::kFifo && fifo_head_ != fifo_tail_ &&
        fifo_ring_[fifo_head_ & (fifo_ring_.size() - 1)] == user) {
      ++fifo_head_;
    } else if (cfg_.policy == SchedPolicy::kDeficitRoundRobin) {
      UserState& u = users_[user];
      u.deficit -= datagram->size_bytes;
      if (u.size == 0) {
        u.deficit = 0;
        rr_cursor_ = (user + 1) % users_.size();
        dwrr_current_ = npos;
      }
    }
    ++outstanding_;
    ++stats_.released;
    WTCP_LOG(kTrace, sim_.now(), "bs-sched", "release user=%zu (%s)", user,
             datagram->describe().c_str());
    release_(user, std::move(datagram));
  }
}

}  // namespace wtcp::link
