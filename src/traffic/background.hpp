// Background (cross) traffic for wired-congestion experiments.
//
// The paper assumes an uncongested wired network and names the congested
// case as its follow-up study [18] ("the impact of congestion in the
// wired network on the effectiveness of EBSN").  OnOffSource injects
// CBR or bursty on/off traffic into the wired link so that the TCP
// connection under test competes for the 56 kbps pipe and the
// base-station queue.
#pragma once

#include <cstdint>
#include <functional>

#include "src/net/packet.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::traffic {

struct OnOffConfig {
  std::int64_t rate_bps = 14'000;   ///< sending rate while ON
  std::int32_t packet_bytes = 576;  ///< background packet size
  /// Mean ON/OFF period lengths (exponential).  mean_off == 0 makes the
  /// source plain CBR.
  double mean_on_s = 1.0;
  double mean_off_s = 0.0;
  sim::Time start = sim::Time::zero();
};

struct OnOffStats {
  std::uint64_t packets_sent = 0;
  std::int64_t bytes_sent = 0;
  std::uint64_t bursts = 0;  ///< ON periods begun
};

/// Emits kBackground packets into `downstream` (the wired link).  Packet
/// spacing while ON is packet_bytes*8/rate_bps; ON/OFF sojourns are
/// exponential with the configured means.
class OnOffSource {
 public:
  using Downstream = std::function<void(net::PacketRef)>;

  OnOffSource(sim::Simulator& sim, OnOffConfig cfg, net::NodeId self,
              net::NodeId dst, Downstream downstream);

  /// Begin the schedule (idempotent; honors cfg.start).
  void start();
  /// Stop emitting (pending timer is cancelled).
  void stop();

  bool on() const { return on_; }
  const OnOffStats& stats() const { return stats_; }
  const OnOffConfig& config() const { return cfg_; }

  /// Average offered load in bits/second given the duty cycle.
  double offered_load_bps() const;

 private:
  void begin_on();
  void begin_off();
  void emit();
  sim::Time packet_interval() const;

  sim::Simulator& sim_;
  OnOffConfig cfg_;
  net::NodeId self_;
  net::NodeId dst_;
  Downstream downstream_;
  sim::Rng rng_;
  bool started_ = false;
  bool stopped_ = false;
  bool on_ = false;
  sim::EventId timer_;
  OnOffStats stats_;
};

}  // namespace wtcp::traffic
