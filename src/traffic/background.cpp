#include "src/traffic/background.hpp"

#include <cassert>

namespace wtcp::traffic {

OnOffSource::OnOffSource(sim::Simulator& sim, OnOffConfig cfg, net::NodeId self,
                         net::NodeId dst, Downstream downstream)
    : sim_(sim),
      cfg_(cfg),
      self_(self),
      dst_(dst),
      downstream_(std::move(downstream)),
      rng_(sim.fork_rng("background")) {
  assert(cfg_.rate_bps > 0 && cfg_.packet_bytes > 0);
  assert(cfg_.mean_on_s > 0);
  assert(downstream_);
}

double OnOffSource::offered_load_bps() const {
  const double duty = cfg_.mean_off_s <= 0
                          ? 1.0
                          : cfg_.mean_on_s / (cfg_.mean_on_s + cfg_.mean_off_s);
  return static_cast<double>(cfg_.rate_bps) * duty;
}

sim::Time OnOffSource::packet_interval() const {
  return sim::transmission_time(cfg_.packet_bytes, cfg_.rate_bps);
}

void OnOffSource::start() {
  if (started_) return;
  started_ = true;
  sim_.at(cfg_.start, [this] { begin_on(); }, "traffic.onoff");
}

void OnOffSource::stop() {
  stopped_ = true;
  sim_.cancel(timer_);
}

void OnOffSource::begin_on() {
  if (stopped_) return;
  on_ = true;
  ++stats_.bursts;
  if (cfg_.mean_off_s > 0) {
    const sim::Time on_len = sim::Time::from_seconds(rng_.exponential(cfg_.mean_on_s));
    sim_.after(std::max(on_len, sim::Time::nanoseconds(1)),
               [this] { begin_off(); }, "traffic.onoff");
  }
  emit();
}

void OnOffSource::begin_off() {
  if (stopped_) return;
  on_ = false;
  sim_.cancel(timer_);
  const sim::Time off_len = sim::Time::from_seconds(rng_.exponential(cfg_.mean_off_s));
  sim_.after(std::max(off_len, sim::Time::nanoseconds(1)),
             [this] { begin_on(); }, "traffic.onoff");
}

void OnOffSource::emit() {
  if (stopped_ || !on_) return;
  net::PacketRef p =
      net::make_control(sim_.packet_pool(), net::PacketType::kBackground,
                        cfg_.packet_bytes, self_, dst_, sim_.now());
  ++stats_.packets_sent;
  stats_.bytes_sent += p->size_bytes;
  downstream_(std::move(p));
  timer_ = sim_.after(packet_interval(), [this] { emit(); }, "traffic.emit");
}

}  // namespace wtcp::traffic
