#include "src/phy/error_model.hpp"

#include <cassert>

namespace wtcp::phy {

bool ErrorModel::corrupts(sim::Time start, sim::Time end, std::int64_t bits) {
  assert(end >= start);
  ++stats_.queries;
  obs::add(probe_queries_);
  const bool bad = corrupts_impl(start, end, bits);
  if (bad) {
    ++stats_.corrupted;
    obs::add(probe_corrupted_);
  }
  return bad;
}

BernoulliErrorModel::BernoulliErrorModel(double loss_probability, sim::Rng rng)
    : p_(loss_probability), rng_(rng) {
  assert(p_ >= 0.0 && p_ <= 1.0);
}

bool BernoulliErrorModel::corrupts_impl(sim::Time, sim::Time, std::int64_t) {
  return rng_.chance(p_);
}

ScriptedErrorModel::ScriptedErrorModel(std::vector<Window> loss_windows)
    : windows_(std::move(loss_windows)) {}

bool ScriptedErrorModel::corrupts_impl(sim::Time start, sim::Time end, std::int64_t) {
  for (const Window& w : windows_) {
    if (start < w.end && end > w.begin) return true;
    if (start == end && start >= w.begin && start < w.end) return true;
  }
  return false;
}

CompositeErrorModel::CompositeErrorModel(
    std::vector<std::shared_ptr<ErrorModel>> parts)
    : parts_(std::move(parts)) {
  assert(!parts_.empty());
}

bool CompositeErrorModel::corrupts_impl(sim::Time start, sim::Time end,
                                        std::int64_t bits) {
  bool corrupted = false;
  for (const auto& part : parts_) {
    // No short-circuit: every component must observe every query.
    corrupted |= part->corrupts(start, end, bits);
  }
  return corrupted;
}

}  // namespace wtcp::phy
