// Two-state Markov (Gilbert-Elliott) burst-error channel, exactly the model
// of the paper's Section 3.1 (Figure 1):
//
//   - two states, GOOD and BAD;
//   - in each state bit errors are Poisson with mean BER beta_g / beta_b;
//   - sojourn times are exponential with means mean_good / mean_bad
//     (equivalently, Poisson transition rates lambda_gb = 1/mean_good and
//     lambda_bg = 1/mean_bad).
//
// A frame occupying the air for [start, end) with B bits sees an expected
// error count  Lambda = sum_over_states( BER_s * B * overlap_s / (end-start) )
// integrated along the sampled state trajectory; it is corrupted with
// probability 1 - exp(-Lambda).
//
// Both directions of a duplex wireless link share one channel instance, so
// data and ACK frames fade together as in the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "src/phy/error_model.hpp"

namespace wtcp::phy {

enum class ChannelState : std::uint8_t { kGood, kBad };

const char* to_string(ChannelState s);

/// Parameters of the burst-error channel.  Defaults are the paper's
/// wide-area settings: BER_good = 1e-6, BER_bad = 1e-2, mean good period
/// 10 s, mean bad period 1 s.
struct GilbertElliottConfig {
  double ber_good = 1e-6;   ///< mean bit error rate in the good state
  double ber_bad = 1e-2;    ///< mean bit error rate in the bad state (deep fades)
  double mean_good_s = 10;  ///< mean good-period length, seconds (1/lambda_gb)
  double mean_bad_s = 1;    ///< mean bad-period length, seconds (1/lambda_bg)

  /// Long-run fraction of time the channel is good.
  double good_fraction() const { return mean_good_s / (mean_good_s + mean_bad_s); }
};

/// Stochastic Gilbert-Elliott channel.  Samples the state trajectory lazily
/// and remembers enough history to answer (possibly overlapping) airtime
/// queries from both directions of a duplex link.
///
/// Pull-only: the model never schedules simulator events, so a cell with
/// 10k idle channels costs the event core nothing — a channel's fades are
/// materialized only when a frame airs on it or a scheduler probes it,
/// and catch-up across a long unqueried gap prunes as it samples (O(1)
/// retained segments, no per-sojourn buildup).
class GilbertElliottModel final : public ErrorModel {
 public:
  GilbertElliottModel(GilbertElliottConfig cfg, sim::Rng rng);

  /// State of the channel at time `t` (samples the trajectory up to `t`).
  /// `t` must be >= the earliest time still retained (queries are expected
  /// in roughly nondecreasing order; see header comment).
  ChannelState state_at(sim::Time t);

  /// State at `t` WITHOUT extending the trajectory — never draws from the
  /// RNG, so observers (the obs sampler) cannot perturb the run.  Times
  /// past the sampled horizon report the state entered at the horizon.
  ChannelState peek_state(sim::Time t) const;

  const GilbertElliottConfig& config() const { return cfg_; }

  /// Total time spent in the bad state among the trajectory sampled so far
  /// (diagnostics; grows as queries extend the trajectory).
  sim::Time sampled_bad_time() const { return sampled_bad_; }
  sim::Time sampled_until() const { return horizon_; }

  /// Trajectory segments currently retained.  Both query paths prune
  /// history behind the (nondecreasing) query time, so this stays O(1) for
  /// arbitrarily long runs instead of growing one entry per sojourn.
  std::size_t retained_segments() const { return segments_.size(); }

 protected:
  bool corrupts_impl(sim::Time start, sim::Time end, std::int64_t bits) override;

 private:
  struct Segment {
    sim::Time begin;  ///< segment covers [begin, next segment's begin)
    ChannelState state;
  };

  void extend_one();  ///< sample one more sojourn past the horizon
  void extend_to(sim::Time until);
  void prune_before(sim::Time t);
  /// Expected bit-error count for `bits` spread uniformly over [start, end).
  double expected_errors(sim::Time start, sim::Time end, std::int64_t bits);
  double ber_of(ChannelState s) const {
    return s == ChannelState::kGood ? cfg_.ber_good : cfg_.ber_bad;
  }

  GilbertElliottConfig cfg_;
  sim::Rng rng_;
  std::deque<Segment> segments_;  ///< sampled trajectory, oldest first
  sim::Time horizon_;             ///< trajectory is valid on [segments_.front().begin, horizon_)
  sim::Time sampled_bad_;
  sim::Time last_query_start_;
  // state_at memo: CSD probes re-ask the same instant within one
  // scheduler pass; answering from here skips the segment walk and is
  // draw-free by construction (valid only once the horizon passed the
  // memoized time, which the first query guaranteed).
  bool memo_valid_ = false;
  sim::Time memo_time_;
  ChannelState memo_state_ = ChannelState::kGood;
};

/// Deterministic variant used for the paper's Figure 3-5 traces: the
/// channel alternates fixed-length good/bad periods starting in GOOD at
/// t = 0, and a frame is corrupted iff its expected bit-error count is
/// >= 1.0 (constant — "do not follow a random distribution").
class DeterministicGilbertElliott final : public ErrorModel {
 public:
  explicit DeterministicGilbertElliott(GilbertElliottConfig cfg);

  ChannelState state_at(sim::Time t) const;
  const GilbertElliottConfig& config() const { return cfg_; }

 protected:
  bool corrupts_impl(sim::Time start, sim::Time end, std::int64_t bits) override;

 private:
  double expected_errors(sim::Time start, sim::Time end, std::int64_t bits) const;

  GilbertElliottConfig cfg_;
  sim::Time good_len_;
  sim::Time bad_len_;
  sim::Time cycle_;
};

}  // namespace wtcp::phy
