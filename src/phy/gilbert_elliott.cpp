#include "src/phy/gilbert_elliott.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/core/audit.hpp"

namespace wtcp::phy {

const char* to_string(ChannelState s) {
  return s == ChannelState::kGood ? "GOOD" : "BAD";
}

// ---------------------------------------------------------------------------
// Stochastic model
// ---------------------------------------------------------------------------

GilbertElliottModel::GilbertElliottModel(GilbertElliottConfig cfg, sim::Rng rng)
    : cfg_(cfg), rng_(rng) {
  assert(cfg_.mean_good_s > 0 && cfg_.mean_bad_s > 0);
  assert(cfg_.ber_good >= 0 && cfg_.ber_bad >= 0);
  // Transition-probability sanity: BERs are per-bit probabilities and the
  // sojourn means define valid Poisson transition rates (Figure 1).
  WTCP_AUDIT_CHECK(audit::ge_config_sane(cfg_.ber_good, cfg_.ber_bad,
                                         cfg_.mean_good_s, cfg_.mean_bad_s),
                   "channel", "config_sane",
                   "Gilbert-Elliott BER or sojourn parameters out of range");
  segments_.push_back(Segment{sim::Time::zero(), ChannelState::kGood});
  horizon_ = sim::Time::zero();
}

void GilbertElliottModel::extend_one() {
  const ChannelState cur = segments_.back().state;
  const double mean_s =
      cur == ChannelState::kGood ? cfg_.mean_good_s : cfg_.mean_bad_s;
  const sim::Time sojourn = sim::Time::from_seconds(rng_.exponential(mean_s));
  // Guard against a zero-length sojourn from an extreme draw.
  const sim::Time step = std::max(sojourn, sim::Time::nanoseconds(1));
  const sim::Time seg_begin = horizon_;
  horizon_ = seg_begin + step;
  if (cur == ChannelState::kBad) sampled_bad_ += step;
  const ChannelState next =
      cur == ChannelState::kGood ? ChannelState::kBad : ChannelState::kGood;
  segments_.push_back(Segment{horizon_, next});
  // The sampled trajectory must strictly alternate GOOD/BAD with
  // nondecreasing boundaries — a repeated state or a backwards segment
  // would double-count sojourn time in the error integral.
  WTCP_AUDIT_CHECK(segments_.back().state != cur &&
                       segments_.back().begin >= seg_begin,
                   "channel", "trajectory_alternates",
                   "Gilbert-Elliott trajectory repeated a state or went "
                   "backwards in time");
}

void GilbertElliottModel::extend_to(sim::Time until) {
  while (horizon_ < until) extend_one();
}

void GilbertElliottModel::prune_before(sim::Time t) {
  // Keep the segment containing `t` and everything after it.
  while (segments_.size() > 1 && segments_[1].begin <= t) {
    segments_.pop_front();
  }
}

ChannelState GilbertElliottModel::state_at(sim::Time t) {
  // Same-instant queries repeat when a scheduler probes one user's
  // channel several times inside one pump pass; the trajectory is already
  // sampled past `t` then, so answer from the memo without touching the
  // deque (and provably without RNG draws).
  if (memo_valid_ && t == memo_time_) return memo_state_;
  // Queries arrive in nondecreasing time order (same contract as
  // corrupts_impl), so history before `t` is dead.  Pruning INSIDE the
  // catch-up loop keeps the retained trajectory O(1) even while sampling
  // across a long idle gap — a backlogless flow that goes unqueried for
  // hours would otherwise materialize one segment per elapsed sojourn
  // before the post-hoc prune could discard them.
  while (horizon_ < t + sim::Time::nanoseconds(1)) {
    extend_one();
    prune_before(t);
  }
  prune_before(t);
  assert(!segments_.empty() && segments_.front().begin <= t);
  ChannelState s = segments_.front().state;
  for (const Segment& seg : segments_) {
    if (seg.begin > t) break;
    s = seg.state;
  }
  memo_valid_ = true;
  memo_time_ = t;
  memo_state_ = s;
  return s;
}

ChannelState GilbertElliottModel::peek_state(sim::Time t) const {
  ChannelState s = segments_.front().state;
  for (const Segment& seg : segments_) {
    if (seg.begin > t) break;
    s = seg.state;
  }
  return s;
}

double GilbertElliottModel::expected_errors(sim::Time start, sim::Time end,
                                            std::int64_t bits) {
  extend_to(end);
  if (start == end) {
    // Instantaneous frame: judge by the state at `start`.
    return ber_of(state_at(start)) * static_cast<double>(bits);
  }
  const double span_ns = static_cast<double>((end - start).ns());
  double lambda = 0.0;
  // Walk the trajectory accumulating BER-weighted overlap.
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const sim::Time seg_begin = segments_[i].begin;
    const sim::Time seg_end =
        (i + 1 < segments_.size()) ? segments_[i + 1].begin : horizon_;
    const sim::Time ov_begin = std::max(seg_begin, start);
    const sim::Time ov_end = std::min(seg_end, end);
    if (ov_end <= ov_begin) continue;
    const double frac = static_cast<double>((ov_end - ov_begin).ns()) / span_ns;
    lambda += ber_of(segments_[i].state) * static_cast<double>(bits) * frac;
  }
  return lambda;
}

bool GilbertElliottModel::corrupts_impl(sim::Time start, sim::Time end,
                                        std::int64_t bits) {
  assert(start >= last_query_start_ &&
         "GE model queries must have nondecreasing start times");
  last_query_start_ = start;
  prune_before(start);
  const double lambda = expected_errors(start, end, bits);
  const double p_loss = 1.0 - std::exp(-lambda);
  return rng_.chance(p_loss);
}

// ---------------------------------------------------------------------------
// Deterministic model (Figure 3-5 traces)
// ---------------------------------------------------------------------------

DeterministicGilbertElliott::DeterministicGilbertElliott(GilbertElliottConfig cfg)
    : cfg_(cfg),
      good_len_(sim::Time::from_seconds(cfg.mean_good_s)),
      bad_len_(sim::Time::from_seconds(cfg.mean_bad_s)),
      cycle_(good_len_ + bad_len_) {
  assert(good_len_ > sim::Time::zero() && bad_len_ > sim::Time::zero());
}

ChannelState DeterministicGilbertElliott::state_at(sim::Time t) const {
  if (t.is_negative()) return ChannelState::kGood;
  const std::int64_t in_cycle = t.ns() % cycle_.ns();
  return in_cycle < good_len_.ns() ? ChannelState::kGood : ChannelState::kBad;
}

double DeterministicGilbertElliott::expected_errors(sim::Time start, sim::Time end,
                                                    std::int64_t bits) const {
  if (start == end) {
    const double ber =
        state_at(start) == ChannelState::kGood ? cfg_.ber_good : cfg_.ber_bad;
    return ber * static_cast<double>(bits);
  }
  // Integrate the piecewise-constant BER over [start, end).
  const double span_ns = static_cast<double>((end - start).ns());
  double lambda = 0.0;
  sim::Time t = start;
  while (t < end) {
    const ChannelState s = state_at(t);
    // Next boundary after t.
    const std::int64_t in_cycle = t.ns() % cycle_.ns();
    const std::int64_t to_boundary = (s == ChannelState::kGood)
                                         ? good_len_.ns() - in_cycle
                                         : cycle_.ns() - in_cycle;
    const sim::Time seg_end = std::min(end, t + sim::Time::nanoseconds(to_boundary));
    const double frac = static_cast<double>((seg_end - t).ns()) / span_ns;
    const double ber = (s == ChannelState::kGood) ? cfg_.ber_good : cfg_.ber_bad;
    lambda += ber * static_cast<double>(bits) * frac;
    t = seg_end;
  }
  return lambda;
}

bool DeterministicGilbertElliott::corrupts_impl(sim::Time start, sim::Time end,
                                                std::int64_t bits) {
  return expected_errors(start, end, bits) >= 1.0;
}

}  // namespace wtcp::phy
