// Channel error models.
//
// A link asks its error model, at transmission start, whether a frame
// occupying the air for [start, end) with a given number of on-air bits
// gets corrupted.  Models see queries in nondecreasing `start` order
// (transmissions on each link direction are serialized and event times are
// monotone), but a query's interval may extend past a later query's start
// when the two directions of a duplex link share one channel state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/probe.hpp"
#include "src/sim/random.hpp"
#include "src/sim/time.hpp"

namespace wtcp::phy {

/// Cumulative statistics every model tracks.
struct ErrorModelStats {
  std::uint64_t queries = 0;
  std::uint64_t corrupted = 0;
};

class ErrorModel {
 public:
  virtual ~ErrorModel() = default;

  /// Decide whether a frame on the air during [start, end) carrying `bits`
  /// bits is corrupted.  Implementations must tolerate zero-length
  /// intervals (instantaneous control frames) by judging the state at
  /// `start`.
  bool corrupts(sim::Time start, sim::Time end, std::int64_t bits);

  const ErrorModelStats& stats() const { return stats_; }

  /// Publish query/corruption counts to the probe bus (either pointer may
  /// be null).  Called by whoever builds the channel when obs is on.
  void bind_probes(obs::Counter* queries, obs::Counter* corrupted) {
    probe_queries_ = queries;
    probe_corrupted_ = corrupted;
  }

 protected:
  virtual bool corrupts_impl(sim::Time start, sim::Time end, std::int64_t bits) = 0;

 private:
  ErrorModelStats stats_;
  obs::Counter* probe_queries_ = nullptr;
  obs::Counter* probe_corrupted_ = nullptr;
};

/// Lossless channel (wired links).
class NullErrorModel final : public ErrorModel {
 protected:
  bool corrupts_impl(sim::Time, sim::Time, std::int64_t) override { return false; }
};

/// Independent per-frame loss with fixed probability.  Used in unit tests
/// and as a memoryless baseline channel for ablations.
class BernoulliErrorModel final : public ErrorModel {
 public:
  BernoulliErrorModel(double loss_probability, sim::Rng rng);

 protected:
  bool corrupts_impl(sim::Time, sim::Time, std::int64_t) override;

 private:
  double p_;
  sim::Rng rng_;
};

/// Deterministic scripted loss: frames whose airtime overlaps any window in
/// a caller-provided list are corrupted.  Used to build exact test
/// scenarios ("lose exactly packets 4 and 5").
class ScriptedErrorModel final : public ErrorModel {
 public:
  struct Window {
    sim::Time begin;
    sim::Time end;
  };
  explicit ScriptedErrorModel(std::vector<Window> loss_windows);

 protected:
  bool corrupts_impl(sim::Time start, sim::Time end, std::int64_t bits) override;

 private:
  std::vector<Window> windows_;
};

/// Combines several channel impairments: a frame is corrupted if ANY
/// component model corrupts it.  All components see every query (their
/// internal state trajectories stay consistent).  Used to overlay handoff
/// blackouts on the fading channel.
class CompositeErrorModel final : public ErrorModel {
 public:
  explicit CompositeErrorModel(std::vector<std::shared_ptr<ErrorModel>> parts);

 protected:
  bool corrupts_impl(sim::Time start, sim::Time end, std::int64_t bits) override;

 private:
  std::vector<std::shared_ptr<ErrorModel>> parts_;
};

}  // namespace wtcp::phy
