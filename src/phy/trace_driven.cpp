#include "src/phy/trace_driven.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wtcp::phy {

TraceDrivenErrorModel::TraceDrivenErrorModel(std::vector<FadeWindow> windows,
                                             sim::Rng rng, double residual_ber)
    : windows_(std::move(windows)), rng_(rng), residual_ber_(residual_ber) {
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    if (windows_[i].end <= windows_[i].begin) {
      throw std::runtime_error("fade trace: empty or inverted window");
    }
    if (i > 0 && windows_[i].begin < windows_[i - 1].end) {
      throw std::runtime_error("fade trace: windows unsorted or overlapping");
    }
  }
}

std::vector<FadeWindow> TraceDrivenErrorModel::parse(std::istream& is) {
  std::vector<FadeWindow> windows;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    double begin_s = 0, end_s = 0;
    if (!(ls >> begin_s)) continue;  // blank / comment-only line
    if (!(ls >> end_s)) {
      throw std::runtime_error("fade trace: missing end time on line " +
                               std::to_string(lineno));
    }
    windows.push_back(FadeWindow{sim::Time::from_seconds(begin_s),
                                 sim::Time::from_seconds(end_s)});
  }
  return windows;
}

TraceDrivenErrorModel TraceDrivenErrorModel::from_file(const std::string& path,
                                                       sim::Rng rng,
                                                       double residual_ber) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("fade trace: cannot open " + path);
  return TraceDrivenErrorModel(parse(is), rng, residual_ber);
}

void TraceDrivenErrorModel::write(std::ostream& os,
                                  const std::vector<FadeWindow>& windows) {
  os << "# fade trace: begin_seconds end_seconds\n";
  for (const FadeWindow& w : windows) {
    os << w.begin.to_seconds() << ' ' << w.end.to_seconds() << '\n';
  }
}

std::vector<FadeWindow> TraceDrivenErrorModel::record(GilbertElliottModel& model,
                                                      sim::Time horizon,
                                                      sim::Time resolution) {
  std::vector<FadeWindow> windows;
  bool in_fade = false;
  sim::Time fade_begin;
  for (sim::Time t; t < horizon; t += resolution) {
    const bool bad = model.state_at(t) == ChannelState::kBad;
    if (bad && !in_fade) {
      in_fade = true;
      fade_begin = t;
    } else if (!bad && in_fade) {
      in_fade = false;
      windows.push_back(FadeWindow{fade_begin, t});
    }
  }
  if (in_fade) windows.push_back(FadeWindow{fade_begin, horizon});
  return windows;
}

sim::Time TraceDrivenErrorModel::total_fade_time() const {
  sim::Time total;
  for (const FadeWindow& w : windows_) total += w.end - w.begin;
  return total;
}

bool TraceDrivenErrorModel::overlaps_fade(sim::Time start, sim::Time end) const {
  // Binary search: first window ending after `start`.
  auto it = std::lower_bound(windows_.begin(), windows_.end(), start,
                             [](const FadeWindow& w, sim::Time t) {
                               return w.end <= t;
                             });
  if (it == windows_.end()) return false;
  if (start == end) return start >= it->begin && start < it->end;
  return it->begin < end;
}

bool TraceDrivenErrorModel::corrupts_impl(sim::Time start, sim::Time end,
                                          std::int64_t bits) {
  if (overlaps_fade(start, end)) return true;
  // Residual bit errors outside fades.
  const double lambda = residual_ber_ * static_cast<double>(bits);
  return rng_.chance(1.0 - std::exp(-lambda));
}

}  // namespace wtcp::phy
