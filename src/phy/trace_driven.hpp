// Trace-driven channel: replay fade windows recorded elsewhere (a
// measurement campaign, another simulator, or a saved Gilbert-Elliott
// realization).  The trace format is plain text, one window per line:
//
//     # comment lines and blank lines are ignored
//     <begin_seconds> <end_seconds>
//
// Frames whose airtime overlaps any window are corrupted; a constant
// residual BER applies outside the windows (defaults to the paper's
// good-state 1e-6).  Windows must be non-overlapping and sorted.
//
// This complements the analytic models: reviewers of 1990s wireless-TCP
// work routinely asked for trace-driven validation, and it lets users
// replay the exact same fade schedule across schemes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/phy/error_model.hpp"
#include "src/phy/gilbert_elliott.hpp"

namespace wtcp::phy {

struct FadeWindow {
  sim::Time begin;
  sim::Time end;
};

class TraceDrivenErrorModel final : public ErrorModel {
 public:
  /// Build from in-memory windows (must be sorted, non-overlapping).
  TraceDrivenErrorModel(std::vector<FadeWindow> windows, sim::Rng rng,
                        double residual_ber = 1e-6);

  /// Parse the text format from a stream.  Throws std::runtime_error on
  /// malformed input (bad numbers, unsorted or overlapping windows).
  static std::vector<FadeWindow> parse(std::istream& is);

  /// Load from a file.  Throws std::runtime_error if unreadable.
  static TraceDrivenErrorModel from_file(const std::string& path, sim::Rng rng,
                                         double residual_ber = 1e-6);

  /// Serialize windows in the same text format (round-trips with parse).
  static void write(std::ostream& os, const std::vector<FadeWindow>& windows);

  /// Record a Gilbert-Elliott realization as a trace: sample `model` over
  /// [0, horizon) and emit its bad periods.
  static std::vector<FadeWindow> record(GilbertElliottModel& model,
                                        sim::Time horizon,
                                        sim::Time resolution = sim::Time::milliseconds(10));

  const std::vector<FadeWindow>& windows() const { return windows_; }
  sim::Time total_fade_time() const;

 protected:
  bool corrupts_impl(sim::Time start, sim::Time end, std::int64_t bits) override;

 private:
  bool overlaps_fade(sim::Time start, sim::Time end) const;

  std::vector<FadeWindow> windows_;
  sim::Rng rng_;
  double residual_ber_;
};

}  // namespace wtcp::phy
