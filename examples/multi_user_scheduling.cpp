// Multi-user demo: four mobile hosts share one base-station radio, each
// with an independently fading channel.  Shows how the base station's
// scheduling policy changes aggregate throughput and fairness, and how
// per-connection EBSN stacks on top.
//
//   $ ./multi_user_scheduling [users] [file_kb]
#include <cstdlib>
#include <iostream>

#include "src/core/api.hpp"

int main(int argc, char** argv) {
  using namespace wtcp;

  topo::MultiUserConfig base = topo::multi_user_lan_scenario();
  if (argc > 1) base.users = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) base.tcp.file_bytes = std::atol(argv[2]) * 1024;

  std::cout << base.users << " users, " << base.tcp.file_bytes / 1024
            << " KB each, shared 2 Mbps radio, per-user fades (good "
            << base.channel.mean_good_s << " s / bad " << base.channel.mean_bad_s
            << " s)\n\n";

  stats::TextTable table(
      {"policy", "EBSN", "aggregate kbps", "fairness", "slowest user kbps"});

  auto run_case = [&](link::SchedPolicy policy, bool ebsn) {
    stats::Summary agg, fair, slowest;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      topo::MultiUserConfig cfg = base;
      cfg.sched.policy = policy;
      if (ebsn) cfg.feedback = topo::FeedbackMode::kEbsn;
      cfg.seed = seed;
      topo::MultiUserLanScenario s(cfg);
      const topo::MultiUserMetrics m = s.run();
      agg.add(m.aggregate_throughput_bps);
      fair.add(m.fairness);
      double slow = m.per_user.front().throughput_bps;
      for (const auto& u : m.per_user) slow = std::min(slow, u.throughput_bps);
      slowest.add(slow);
    }
    table.add_row({to_string(policy), ebsn ? "yes" : "no",
                   stats::fmt_double(agg.mean() / 1000.0, 0),
                   stats::fmt_double(fair.mean(), 3),
                   stats::fmt_double(slowest.mean() / 1000.0, 0)});
  };

  run_case(link::SchedPolicy::kFifo, false);
  run_case(link::SchedPolicy::kRoundRobin, false);
  run_case(link::SchedPolicy::kCsdRoundRobin, false);
  run_case(link::SchedPolicy::kCsdRoundRobin, true);

  table.print(std::cout);
  std::cout << "\nchannel-state-dependent service avoids burning shared\n"
               "airtime on faded users; EBSN then keeps each connection's\n"
               "TCP timer calm during its own fades.\n";
  return 0;
}
