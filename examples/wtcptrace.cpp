// wtcptrace — offline analysis for packet-lifecycle traces recorded by
// wtcpsim --trace-out (see docs/observability.md).
//
//   $ wtcptrace dump run.seed1.trace            # lossless JSONL on stdout
//   $ wtcptrace chrome run.seed1.trace > t.json # chrome://tracing / Perfetto
//   $ wtcptrace summary run.seed1.trace         # per-hop latency percentiles
//   $ wtcptrace timeouts run.seed1.trace        # retransmission-cause report
//   $ wtcptrace diff a.trace b.trace            # first divergence, site deltas
//   $ wtcptrace verify run.seed1.trace          # round-trip + span invariants
//
// All subcommands accept either the binary .trace format or its JSONL
// export (the two are lossless mirrors of each other).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/probe.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/time.hpp"

namespace {

using namespace wtcp;

[[noreturn]] void usage(int code) {
  std::cout << R"(usage: wtcptrace <command> <trace-file> [trace-file-2]

commands
  dump FILE       lossless JSONL export of a binary trace on stdout
  chrome FILE     chrome://tracing / Perfetto JSON on stdout (per-packet
                  tracks, link-occupancy slices, ARQ/EBSN spans)
  summary FILE    per-hop latency percentiles (tx start -> delivery), site
                  counts, and ring-drop accounting
  timeouts FILE   every TCP timeout with its attributed cause: wireless
                  loss, wired congestion, or spurious (data had arrived)
  diff A B        first diverging record and per-site count deltas
  verify FILE     binary<->JSONL round trip plus span invariants (no tx end
                  or ARQ resolution without its start, time is monotone)

FILE may be binary (written by wtcpsim --trace-out) or JSONL (written by
wtcptrace dump); the format is auto-detected.
)";
  std::exit(code);
}

/// Load a trace, auto-detecting binary vs. JSONL by the magic bytes.
bool load(const std::string& path, obs::TraceFile* out, std::string* error) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    *error = "cannot open " + path;
    return false;
  }
  char magic[8] = {};
  probe.read(magic, sizeof magic);
  probe.close();
  if (std::memcmp(magic, "WTCPTRC1", 8) == 0) {
    return obs::read_trace_file(path, out, error);
  }
  std::ifstream is(path);
  return obs::read_trace_jsonl(is, out, error);
}

std::uint8_t site_id(obs::TraceSite s) { return static_cast<std::uint8_t>(s); }

bool is_site(const obs::TraceRecord& r, obs::TraceSite s) {
  return r.site == site_id(s);
}

double t_s(const obs::TraceRecord& r) {
  return sim::Time::nanoseconds(r.t_ns).to_seconds();
}

int cmd_dump(const obs::TraceFile& f) {
  obs::write_trace_jsonl(std::cout, f);
  return 0;
}

int cmd_chrome(const obs::TraceFile& f) {
  obs::write_chrome_trace(std::cout, f);
  return 0;
}

/// Per-hop latency: pair each kLinkTxStart with the next kLinkDeliver for
/// the same (packet uid, link label).  The delta is recorded into an
/// obs::Histogram with the exact arithmetic the in-run probes use, so the
/// percentiles printed here match the manifest's "link.*.delay_s" entries.
int cmd_summary(const obs::TraceFile& f) {
  std::map<std::string, obs::Histogram> per_hop;
  std::map<std::pair<std::uint64_t, std::uint16_t>, std::int64_t> open_tx;
  std::vector<std::uint64_t> site_counts(f.site_names.empty()
                                             ? site_id(obs::TraceSite::kSiteCount)
                                             : f.site_names.size(),
                                         0);
  for (const obs::TraceRecord& r : f.records) {
    if (r.site < site_counts.size()) ++site_counts[r.site];
    if (is_site(r, obs::TraceSite::kLinkTxStart)) {
      open_tx[{r.id, r.label}] = r.t_ns;
    } else if (is_site(r, obs::TraceSite::kLinkDeliver)) {
      const auto it = open_tx.find({r.id, r.label});
      if (it == open_tx.end()) continue;
      const double delay =
          sim::Time::nanoseconds(r.t_ns - it->second).to_seconds();
      per_hop[f.label_of(r.label)].record(delay);
      open_tx.erase(it);
    }
  }

  std::printf("trace: seed %llu, %zu records held, %llu overwritten\n\n",
              static_cast<unsigned long long>(f.seed), f.records.size(),
              static_cast<unsigned long long>(f.dropped));
  std::printf("per-hop latency (tx start -> delivery):\n");
  std::printf("  %-24s %8s %10s %10s %10s %10s\n", "hop", "frames", "p50_ms",
              "p95_ms", "p99_ms", "max_ms");
  for (const auto& [hop, h] : per_hop) {
    std::printf("  %-24s %8llu %10.3f %10.3f %10.3f %10.3f\n", hop.c_str(),
                static_cast<unsigned long long>(h.count),
                h.quantile(0.50) * 1e3, h.quantile(0.95) * 1e3,
                h.quantile(0.99) * 1e3, h.max * 1e3);
  }
  if (per_hop.empty()) std::printf("  (no tx/deliver pairs in trace)\n");

  std::printf("\nevents by site:\n");
  for (std::size_t s = 0; s < site_counts.size(); ++s) {
    if (site_counts[s] == 0) continue;
    std::printf("  %-24s %8llu\n",
                f.site_name(static_cast<std::uint8_t>(s)).c_str(),
                static_cast<unsigned long long>(site_counts[s]));
  }
  return 0;
}

/// Attribute each TCP timeout to a cause by replaying the causal window
/// between the timed-out segment's last (re)transmission and the timer
/// firing:
///   spurious    the receiver delivered that very segment in the window —
///               the data was not lost, the timer was just early;
///   wireless    the window contains channel corruption or link-ARQ
///               recovery activity (backoff/discard);
///   congestion  the window contains a tail drop on a wired queue
///               (a == 0 marks the non-error-model hops);
///   unknown     none of the evidence sites appear (e.g. the window was
///               overwritten in the ring).
int cmd_timeouts(const obs::TraceFile& f) {
  const std::vector<obs::TraceRecord>& rec = f.records;
  int spurious = 0, wireless = 0, congestion = 0, unknown = 0;
  std::printf("#%-4s %10s %10s  %-10s %s\n", "n", "t_s", "seq", "cause",
              "evidence");
  int n = 0;
  for (std::size_t i = 0; i < rec.size(); ++i) {
    if (!is_site(rec[i], obs::TraceSite::kTcpTimeout)) continue;
    const std::int32_t seq = rec[i].arg;
    // Find the last (re)transmission of the timed-out segment.
    std::size_t t0 = 0;
    bool found = false;
    for (std::size_t j = i; j-- > 0;) {
      if ((is_site(rec[j], obs::TraceSite::kTcpSend) ||
           is_site(rec[j], obs::TraceSite::kTcpRetransmit)) &&
          rec[j].arg == seq) {
        t0 = j;
        found = true;
        break;
      }
    }
    const char* cause = "unknown";
    std::string evidence;
    if (found) {
      bool delivered = false, wl = false, cg = false;
      for (std::size_t j = t0; j < i; ++j) {
        const obs::TraceRecord& r = rec[j];
        if (is_site(r, obs::TraceSite::kSinkDeliver) && r.arg == seq) {
          delivered = true;
        } else if (is_site(r, obs::TraceSite::kLinkCorrupt) ||
                   is_site(r, obs::TraceSite::kArqBackoff) ||
                   is_site(r, obs::TraceSite::kArqDiscard)) {
          wl = true;
          if (evidence.empty()) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%s @%.3fs",
                          f.site_name(r.site).c_str(), t_s(r));
            evidence = buf;
          }
        } else if (is_site(r, obs::TraceSite::kQueueDrop) && r.a == 0) {
          cg = true;
          if (evidence.empty()) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "queue.drop(%s) @%.3fs",
                          f.label_of(r.label).c_str(), t_s(r));
            evidence = buf;
          }
        }
      }
      // Precedence: delivery proves the timer wrong outright; otherwise
      // prefer the concrete loss evidence.
      if (delivered) {
        cause = "spurious";
        ++spurious;
      } else if (wl) {
        cause = "wireless";
        ++wireless;
      } else if (cg) {
        cause = "congestion";
        ++congestion;
      } else {
        ++unknown;
      }
    } else {
      ++unknown;
    }
    std::printf("%-5d %10.3f %10d  %-10s %s\n", ++n, t_s(rec[i]), seq, cause,
                evidence.c_str());
  }
  std::printf(
      "\n%d timeouts: %d wireless, %d congestion, %d spurious, %d unknown\n",
      n, wireless, congestion, spurious, unknown);
  return 0;
}

int cmd_diff(const obs::TraceFile& a, const obs::TraceFile& b) {
  const std::size_t common = std::min(a.records.size(), b.records.size());
  std::size_t first_diverge = common;
  for (std::size_t i = 0; i < common; ++i) {
    const obs::TraceRecord &ra = a.records[i], &rb = b.records[i];
    if (std::memcmp(&ra, &rb, sizeof ra) != 0 ||
        a.label_of(ra.label) != b.label_of(rb.label)) {
      first_diverge = i;
      break;
    }
  }
  if (first_diverge == common && a.records.size() == b.records.size()) {
    std::printf("identical: %zu records\n", common);
    return 0;
  }
  if (first_diverge < common) {
    const obs::TraceRecord &ra = a.records[first_diverge],
                           &rb = b.records[first_diverge];
    std::printf("first divergence at record %zu:\n", first_diverge);
    std::printf("  A: t=%.6fs site=%s id=%llu a=%u label=%s arg=%d\n", t_s(ra),
                a.site_name(ra.site).c_str(),
                static_cast<unsigned long long>(ra.id), ra.a,
                a.label_of(ra.label).c_str(), ra.arg);
    std::printf("  B: t=%.6fs site=%s id=%llu a=%u label=%s arg=%d\n", t_s(rb),
                b.site_name(rb.site).c_str(),
                static_cast<unsigned long long>(rb.id), rb.a,
                b.label_of(rb.label).c_str(), rb.arg);
  } else {
    std::printf("traces agree for %zu records, then lengths differ\n", common);
  }
  std::printf("record counts: A=%zu B=%zu\n", a.records.size(),
              b.records.size());

  std::map<std::string, std::pair<std::int64_t, std::int64_t>> by_site;
  for (const obs::TraceRecord& r : a.records) {
    ++by_site[a.site_name(r.site)].first;
  }
  for (const obs::TraceRecord& r : b.records) {
    ++by_site[b.site_name(r.site)].second;
  }
  std::printf("\nper-site counts (A vs B):\n");
  for (const auto& [site, c] : by_site) {
    if (c.first == c.second) continue;
    std::printf("  %-24s %8lld %8lld  (%+lld)\n", site.c_str(),
                static_cast<long long>(c.first),
                static_cast<long long>(c.second),
                static_cast<long long>(c.second - c.first));
  }
  return 1;
}

/// Structural checks over one trace.  Failures print and count; exit code
/// is the number of violated invariants.
int cmd_verify(const obs::TraceFile& f, const std::string& path) {
  int failures = 0;
  auto fail = [&](const char* what, const std::string& detail) {
    std::printf("FAIL %-28s %s\n", what, detail.c_str());
    ++failures;
  };
  auto pass = [&](const char* what) { std::printf("ok   %s\n", what); };

  // 1. JSONL round trip is lossless.
  {
    std::ostringstream os;
    obs::write_trace_jsonl(os, f);
    std::istringstream is(os.str());
    obs::TraceFile back;
    std::string err;
    if (!obs::read_trace_jsonl(is, &back, &err)) {
      fail("jsonl_roundtrip", "re-parse failed: " + err);
    } else if (back.records.size() != f.records.size()) {
      fail("jsonl_roundtrip",
           "record count changed: " + std::to_string(f.records.size()) +
               " -> " + std::to_string(back.records.size()));
    } else {
      bool same = back.seed == f.seed && back.dropped == f.dropped &&
                  back.labels == f.labels && back.site_names == f.site_names;
      for (std::size_t i = 0; same && i < f.records.size(); ++i) {
        same = std::memcmp(&back.records[i], &f.records[i],
                           sizeof(obs::TraceRecord)) == 0;
      }
      if (same) {
        pass("jsonl_roundtrip");
      } else {
        fail("jsonl_roundtrip", "records or tables differ after round trip");
      }
    }
  }

  // 2. Time is monotone non-decreasing (the ring preserves emission order).
  {
    bool ok = true;
    for (std::size_t i = 1; i < f.records.size(); ++i) {
      if (f.records[i].t_ns < f.records[i - 1].t_ns) {
        fail("monotone_time",
             "record " + std::to_string(i) + " goes backwards");
        ok = false;
        break;
      }
    }
    if (ok) pass("monotone_time");
  }

  // 3. Span invariants.  Causality: a tx end/corrupt or an ARQ
  // resolve must never appear without its opening record — unless the
  // ring overwrote history, in which case orphaned ends are expected.
  // Spans still open when the trace stops are NOT violations: the run
  // ends the instant the transfer (or horizon) does, with frames in
  // flight and ARQ episodes pending; they are reported for context.
  {
    std::map<std::pair<std::uint64_t, std::uint16_t>, int> open_tx;
    std::map<std::int32_t, int> open_arq;
    std::size_t orphan_tx = 0, orphan_arq = 0;
    for (const obs::TraceRecord& r : f.records) {
      if (is_site(r, obs::TraceSite::kLinkTxStart)) {
        ++open_tx[{r.id, r.label}];
      } else if (is_site(r, obs::TraceSite::kLinkTxEnd) ||
                 is_site(r, obs::TraceSite::kLinkCorrupt)) {
        auto it = open_tx.find({r.id, r.label});
        if (it == open_tx.end()) {
          ++orphan_tx;
        } else if (--it->second == 0) {
          open_tx.erase(it);
        }
      } else if (is_site(r, obs::TraceSite::kArqSubmit)) {
        ++open_arq[r.arg];
      } else if (is_site(r, obs::TraceSite::kArqDelivered) ||
                 is_site(r, obs::TraceSite::kArqDiscard)) {
        auto it = open_arq.find(r.arg);
        if (it == open_arq.end()) {
          ++orphan_arq;
        } else if (--it->second == 0) {
          open_arq.erase(it);
        }
      }
    }
    if (f.dropped > 0) {
      std::printf("skip span causality (%llu records overwritten)\n",
                  static_cast<unsigned long long>(f.dropped));
    } else {
      if (orphan_tx > 0) {
        fail("tx_span_causality", std::to_string(orphan_tx) +
                                      " tx ends with no matching start");
      } else {
        pass("tx_span_causality");
      }
      if (orphan_arq > 0) {
        fail("arq_span_causality",
             std::to_string(orphan_arq) +
                 " ARQ resolutions with no matching submit");
      } else {
        pass("arq_span_causality");
      }
    }
    if (!open_tx.empty() || !open_arq.empty()) {
      std::printf("note %zu tx span%s, %zu ARQ episode%s in flight at end\n",
                  open_tx.size(), open_tx.size() == 1 ? "" : "s",
                  open_arq.size(), open_arq.size() == 1 ? "" : "s");
    }
  }

  // 4. Every site id is in the file's name table.
  {
    bool ok = true;
    for (const obs::TraceRecord& r : f.records) {
      if (r.site >= f.site_names.size() || r.label >= f.labels.size()) {
        fail("ids_in_tables", "record references unknown site/label id");
        ok = false;
        break;
      }
    }
    if (ok) pass("ids_in_tables");
  }

  std::printf("%s: %zu records, %d invariant failure%s\n", path.c_str(),
              f.records.size(), failures, failures == 1 ? "" : "s");
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage(argc < 2 ? 2 : (std::strcmp(argv[1], "--help") ? 2 : 0));
  const std::string cmd = argv[1];
  const std::string path = argv[2];

  obs::TraceFile f;
  std::string err;
  if (!load(path, &f, &err)) {
    std::cerr << "wtcptrace: " << err << "\n";
    return 2;
  }

  if (cmd == "dump") return cmd_dump(f);
  if (cmd == "chrome") return cmd_chrome(f);
  if (cmd == "summary") return cmd_summary(f);
  if (cmd == "timeouts") return cmd_timeouts(f);
  if (cmd == "verify") return cmd_verify(f, path);
  if (cmd == "diff") {
    if (argc < 4) usage(2);
    obs::TraceFile g;
    if (!load(argv[3], &g, &err)) {
      std::cerr << "wtcptrace: " << err << "\n";
      return 2;
    }
    return cmd_diff(f, g);
  }
  usage(2);
}
