// Packet-size tuning (paper Section 4.1): builds the base station's
// error-characteristic -> good-packet-size table with PacketSizeAdvisor
// and shows the throughput win of a tuned size over the wireless MTU and
// the 576 B IP default.
//
//   $ ./packet_size_tuning
#include <iostream>

#include "src/core/api.hpp"

int main() {
  using namespace wtcp;

  topo::ScenarioConfig base = topo::wan_scenario();
  base.tcp.file_bytes = 50 * 1024;  // keep the sweep quick

  const std::vector<std::int32_t> sizes = {128, 256, 384, 512, 768, 1024, 1536};
  const std::vector<double> bad_periods = {1.0, 2.0, 3.0, 4.0};

  std::cout << "building packet-size table (" << sizes.size() << " sizes x "
            << bad_periods.size() << " error characteristics)...\n\n";
  const core::PacketSizeAdvisor advisor =
      core::PacketSizeAdvisor::build(base, sizes, bad_periods, /*seeds=*/3);

  stats::TextTable table(
      {"bad period s", "good packet size B", "best kbps", "worst kbps", "win"});
  for (const core::PacketSizeEntry& e : advisor.table()) {
    table.add_row({stats::fmt_double(e.mean_bad_s, 1), std::to_string(e.packet_size),
                   stats::fmt_double(e.throughput_bps / 1000.0, 2),
                   stats::fmt_double(e.worst_throughput_bps / 1000.0, 2),
                   stats::fmt_double(e.throughput_bps /
                                         std::max(e.worst_throughput_bps, 1.0),
                                     2)});
  }
  table.print(std::cout);

  std::cout << "\nadvisor.recommend(2.5 s bad) = " << advisor.recommend(2.5)
            << " bytes\n";
  return 0;
}
