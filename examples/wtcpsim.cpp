// wtcpsim — command-line scenario driver (the role ns-1's Tcl front end
// played for the paper's authors).  Every knob the paper varies is a
// flag; output is a human-readable summary or a single TSV row for
// scripting sweeps.
//
//   $ ./wtcpsim --setup wan --scheme ebsn --bad 4 --packet-size 1536
//   $ ./wtcpsim --setup lan --scheme basic --bad 0.8 --seeds 10 --tsv
//   $ ./wtcpsim --scheme ebsn --handoff-interval 15 --trace
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/api.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::cout << R"(usage: wtcpsim [options]

topology
  --setup wan|lan          paper Section 3 WAN (default) or Section 4.2.4 LAN
  --half-duplex            both wireless directions share one channel
  --uplink                 bulk data MH -> FH (default: FH -> MH)
  --hops N                 wired hops between FH and BS (default 1)
  --handshake              model SYN/FIN connection setup and teardown

scheme
  --scheme S               basic|local|ebsn|quench|snoop   (default basic)
  --flavor F               tahoe|reno|newreno|westwood|cerl (default tahoe)
  --sack                   RFC 2018 selective acknowledgments

multi-user cell (Section 2 / Bhagwat et al. [9])
  --users N                K concurrent flows through one base-station
                           radio (the Section 4.2.4 LAN, K mobile hosts).
                           Honors --file-kb, --window, --granularity-ms,
                           the channel flags, --seeds/--seed/--jobs and
                           --tsv; scheme must be basic|local|ebsn
  --policy P               base-station scheduler: fifo|rr|csd|dwrr
                           (default rr)

workload / TCP
  --file-kb N              transfer size in KB
  --packet-size N          wired packet size incl. 40 B header
  --window N               receiver window in bytes
  --granularity-ms N       TCP clock granularity (default 100)
  --delayed-ack            receiver coalesces ACKs (RFC 1122)
  --ack-pacing             receiver paces in-order cumulative ACKs
  --ack-pacing-ms N        minimum gap between paced ACKs (default 50)

channel
  --good S --bad S         mean good/bad period lengths, seconds
  --ber-good X --ber-bad X bit error rates per state
  --deterministic          fixed-cycle channel (Figures 3-5 style)
  --fade-trace FILE        replay a recorded fade trace (begin end per line)
  --no-errors              disable channel errors entirely

local recovery
  --rtmax N                ARQ retransmission limit (default 13)
  --arq-window N           ARQ frames concurrently outstanding (default 8)

handoffs
  --handoff-interval S     enable handoffs, mean interval S seconds
  --handoff-latency MS     blackout per handoff (default 500 ms)
  --handoff-fast-rtx       MH forces dupacks on resumption ([4])

run control
  --seeds N                average over N seeds (default 5)
  --seed N                 base seed (default 1)
  --jobs N                 worker threads for the multi-seed sweep
                           (default: all hardware threads; 1 = sequential;
                           results are byte-identical either way)
  --trace                  print the (time, seq mod 90) send plot (1 seed)
  --tsv                    one machine-readable output row
  --help

resilience (docs/robustness.md)
  --max-events N           per-run watchdog: kill a run after N events
  --run-deadline S         per-run watchdog: kill a run after S seconds of
                           wall-clock time (machine-dependent; killed runs
                           are reported as failed, never folded into means)
  --checkpoint PATH        journal each finished seed to a crc-guarded
                           JSONL checkpoint as it completes
  --resume                 skip seeds already in --checkpoint PATH; the
                           folded output is byte-identical to an
                           uninterrupted sweep
  --allow-incomplete       exit 0 even when some runs hit the sim-time
                           limit mid-transfer (failed runs still exit 1)

observability
  --obs-out PATH           machine-readable run report: writes PATH.jsonl
                           (events), PATH.series.csv (sampled time series)
                           and PATH.manifest.json (config digest, per-seed
                           metrics/counters/profile, aggregate summary);
                           a trailing .jsonl on PATH is stripped
  --obs-sample-interval MS sampler period (default 100 ms)
  --trace-out STEM         record the packet-lifecycle trace; each seed
                           writes STEM.seed<N>.trace (binary; inspect with
                           wtcptrace).  Requires a WTCP_TRACE=ON build to
                           contain events
  --trace-flight PATH      flight recorder: dump the last trace events as
                           JSONL to PATH when a watchdog kills a run, a
                           seed throws, or a WTCP_AUDIT invariant fires
  --trace-capacity N       trace ring capacity in records (default 65536;
                           oldest records are overwritten beyond that)
)";
  std::exit(code);
}

double arg_double(int argc, char** argv, int& i) {
  if (++i >= argc) usage(2);
  return std::atof(argv[i]);
}

long arg_long(int argc, char** argv, int& i) {
  if (++i >= argc) usage(2);
  return std::atol(argv[i]);
}

std::string arg_str(int argc, char** argv, int& i) {
  if (++i >= argc) usage(2);
  return argv[i];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wtcp;

  std::string setup = "wan";
  std::string scheme = "basic";
  std::string flavor = "tahoe";
  int seeds = 5;
  std::uint64_t base_seed = 1;
  int jobs = 0;  // 0 = resolve_jobs default (WTCP_JOBS env or hardware)
  bool trace = false, tsv = false;
  std::string obs_out;
  sim::Time obs_interval = sim::Time::milliseconds(100);
  std::string checkpoint;
  bool resume = false;
  bool allow_incomplete = false;
  long multi_users = 0;  // > 0 selects the multi-user cell scenario
  std::string policy = "rr";

  // Two-pass parse: --setup decides the config template first.
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--setup")) setup = arg_str(argc, argv, i);
    if (!std::strcmp(argv[i], "--help")) usage(0);
  }
  topo::ScenarioConfig cfg =
      setup == "lan" ? topo::lan_scenario() : topo::wan_scenario();
  if (setup != "lan" && setup != "wan") usage(2);

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--setup") {
      ++i;  // already handled
    } else if (a == "--scheme") {
      scheme = arg_str(argc, argv, i);
    } else if (a == "--flavor") {
      flavor = arg_str(argc, argv, i);
    } else if (a == "--file-kb") {
      cfg.tcp.file_bytes = arg_long(argc, argv, i) * 1024;
    } else if (a == "--packet-size") {
      cfg.set_packet_size(static_cast<std::int32_t>(arg_long(argc, argv, i)));
    } else if (a == "--window") {
      cfg.tcp.window_bytes = arg_long(argc, argv, i);
    } else if (a == "--granularity-ms") {
      cfg.tcp.rto.granularity = sim::Time::milliseconds(arg_long(argc, argv, i));
      cfg.tcp.rto.min_rto = cfg.tcp.rto.granularity * 2;
    } else if (a == "--delayed-ack") {
      cfg.tcp.delayed_ack = true;
    } else if (a == "--ack-pacing") {
      cfg.tcp.ack_pacing = true;
    } else if (a == "--ack-pacing-ms") {
      cfg.tcp.ack_pacing = true;
      cfg.tcp.ack_pacing_interval =
          sim::Time::milliseconds(arg_long(argc, argv, i));
    } else if (a == "--good") {
      cfg.channel.mean_good_s = arg_double(argc, argv, i);
    } else if (a == "--bad") {
      cfg.channel.mean_bad_s = arg_double(argc, argv, i);
    } else if (a == "--ber-good") {
      cfg.channel.ber_good = arg_double(argc, argv, i);
    } else if (a == "--ber-bad") {
      cfg.channel.ber_bad = arg_double(argc, argv, i);
    } else if (a == "--deterministic") {
      cfg.deterministic_channel = true;
    } else if (a == "--fade-trace") {
      cfg.fade_trace_file = arg_str(argc, argv, i);
    } else if (a == "--no-errors") {
      cfg.channel_errors = false;
    } else if (a == "--half-duplex") {
      cfg.wireless.half_duplex = true;
    } else if (a == "--uplink") {
      cfg.direction = topo::TransferDirection::kUplink;
    } else if (a == "--handshake") {
      cfg.tcp.connect_handshake = true;
    } else if (a == "--sack") {
      cfg.tcp.sack_enabled = true;
    } else if (a == "--hops") {
      cfg.wired_hops = static_cast<std::int32_t>(arg_long(argc, argv, i));
    } else if (a == "--rtmax") {
      cfg.arq.rt_max = static_cast<std::int32_t>(arg_long(argc, argv, i));
    } else if (a == "--arq-window") {
      cfg.arq.window = static_cast<std::int32_t>(arg_long(argc, argv, i));
    } else if (a == "--handoff-interval") {
      cfg.handoff.enabled = true;
      cfg.handoff.mean_interval = sim::Time::from_seconds(arg_double(argc, argv, i));
    } else if (a == "--handoff-latency") {
      cfg.handoff.latency = sim::Time::milliseconds(arg_long(argc, argv, i));
    } else if (a == "--handoff-fast-rtx") {
      cfg.handoff.fast_retransmit_on_resume = true;
    } else if (a == "--users") {
      multi_users = arg_long(argc, argv, i);
      if (multi_users <= 0) {
        std::cerr << "--users must be a positive flow count\n";
        usage(2);
      }
    } else if (a == "--policy") {
      policy = arg_str(argc, argv, i);
    } else if (a == "--seeds") {
      seeds = static_cast<int>(arg_long(argc, argv, i));
    } else if (a == "--seed") {
      base_seed = static_cast<std::uint64_t>(arg_long(argc, argv, i));
    } else if (a == "--jobs") {
      const std::string v = arg_str(argc, argv, i);
      char* end = nullptr;
      const long j = std::strtol(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || j <= 0) {
        std::cerr << "--jobs must be a positive integer (got \"" << v << "\")\n";
        usage(2);
      }
      jobs = static_cast<int>(j);
    } else if (a == "--trace") {
      trace = true;
    } else if (a == "--tsv") {
      tsv = true;
    } else if (a == "--obs-out") {
      obs_out = arg_str(argc, argv, i);
      // Accept "run.jsonl" as the stem "run".
      const std::string suffix = ".jsonl";
      if (obs_out.size() > suffix.size() &&
          obs_out.compare(obs_out.size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
        obs_out.resize(obs_out.size() - suffix.size());
      }
    } else if (a == "--trace-out") {
      cfg.trace.enabled = true;
      cfg.trace.out_path = arg_str(argc, argv, i);
    } else if (a == "--trace-flight") {
      cfg.trace.enabled = true;
      cfg.trace.flight_path = arg_str(argc, argv, i);
    } else if (a == "--trace-capacity") {
      const long cap = arg_long(argc, argv, i);
      if (cap <= 0) {
        std::cerr << "--trace-capacity must be a positive record count\n";
        usage(2);
      }
      cfg.trace.enabled = true;
      cfg.trace.capacity = static_cast<std::size_t>(cap);
    } else if (a == "--obs-sample-interval") {
      const long ms = arg_long(argc, argv, i);
      if (ms <= 0) {
        std::cerr << "--obs-sample-interval must be a positive number of ms\n";
        usage(2);
      }
      obs_interval = sim::Time::milliseconds(ms);
    } else if (a == "--max-events") {
      const long ev = arg_long(argc, argv, i);
      if (ev <= 0) {
        std::cerr << "--max-events must be a positive integer\n";
        usage(2);
      }
      cfg.budget.max_events = static_cast<std::uint64_t>(ev);
    } else if (a == "--run-deadline") {
      const double s = arg_double(argc, argv, i);
      if (s <= 0) {
        std::cerr << "--run-deadline must be a positive number of seconds\n";
        usage(2);
      }
      cfg.budget.max_wall_seconds = s;
    } else if (a == "--checkpoint") {
      checkpoint = arg_str(argc, argv, i);
    } else if (a == "--resume") {
      resume = true;
    } else if (a == "--allow-incomplete") {
      allow_incomplete = true;
    } else if (a == "--help") {
      usage(0);
    } else {
      std::cerr << "unknown flag: " << a << "\n";
      usage(2);
    }
  }

  if (flavor == "reno") {
    cfg.tcp.flavor = tcp::TcpFlavor::kReno;
  } else if (flavor == "newreno") {
    cfg.tcp.flavor = tcp::TcpFlavor::kNewReno;
  } else if (flavor == "westwood") {
    cfg.tcp.flavor = tcp::TcpFlavor::kWestwood;
  } else if (flavor == "cerl") {
    cfg.tcp.flavor = tcp::TcpFlavor::kCerl;
  } else if (flavor != "tahoe") {
    usage(2);
  }
  if (scheme == "snoop") {
    cfg.snoop = true;
  } else if (scheme == "local" || scheme == "ebsn" || scheme == "quench") {
    cfg.local_recovery = true;
    if (scheme == "ebsn") cfg.feedback = topo::FeedbackMode::kEbsn;
    if (scheme == "quench") cfg.feedback = topo::FeedbackMode::kSourceQuench;
  } else if (scheme != "basic") {
    usage(2);
  }

  if (resume && checkpoint.empty()) {
    std::cerr << "--resume requires --checkpoint PATH\n";
    usage(2);
  }

  if (multi_users > 0) {
    // K flows through one base-station radio.  Starts from the paper-[9]
    // LAN template (NOT the --setup template, whose workload defaults
    // differ) and carries over only the knobs given on the command line.
    topo::MultiUserConfig mcfg = topo::multi_user_lan_scenario();
    mcfg.users = static_cast<std::size_t>(multi_users);
    const auto flag_given = [&](const char* name) {
      for (int j = 1; j < argc; ++j) {
        if (!std::strcmp(argv[j], name)) return true;
      }
      return false;
    };
    if (flag_given("--file-kb")) mcfg.tcp.file_bytes = cfg.tcp.file_bytes;
    if (flag_given("--window")) mcfg.tcp.window_bytes = cfg.tcp.window_bytes;
    if (flag_given("--granularity-ms")) {
      mcfg.tcp.rto.granularity = cfg.tcp.rto.granularity;
      mcfg.tcp.rto.min_rto = cfg.tcp.rto.min_rto;
    }
    if (flag_given("--good")) mcfg.channel.mean_good_s = cfg.channel.mean_good_s;
    if (flag_given("--bad")) mcfg.channel.mean_bad_s = cfg.channel.mean_bad_s;
    if (flag_given("--ber-good")) mcfg.channel.ber_good = cfg.channel.ber_good;
    if (flag_given("--ber-bad")) mcfg.channel.ber_bad = cfg.channel.ber_bad;
    if (flag_given("--no-errors")) mcfg.channel_errors = false;

    if (policy == "fifo") {
      mcfg.sched.policy = link::SchedPolicy::kFifo;
    } else if (policy == "rr") {
      mcfg.sched.policy = link::SchedPolicy::kRoundRobin;
    } else if (policy == "csd") {
      mcfg.sched.policy = link::SchedPolicy::kCsdRoundRobin;
    } else if (policy == "dwrr") {
      mcfg.sched.policy = link::SchedPolicy::kDeficitRoundRobin;
    } else {
      std::cerr << "--policy must be fifo|rr|csd|dwrr (got \"" << policy
                << "\")\n";
      usage(2);
    }
    if (scheme == "basic") {
      mcfg.local_recovery = false;
    } else if (scheme == "ebsn") {
      mcfg.feedback = topo::FeedbackMode::kEbsn;
    } else if (scheme != "local") {
      std::cerr << "--users supports --scheme basic|local|ebsn\n";
      usage(2);
    }

    // Seed sweep, run_seeds style: workers fill their own slot and the
    // fold below walks slots in index order, so any --jobs value yields
    // byte-identical output.
    std::vector<topo::MultiUserMetrics> runs(static_cast<std::size_t>(seeds));
    core::ParallelRunner pool(jobs);
    pool.for_each_index(runs.size(), [&](std::size_t i) {
      topo::MultiUserConfig one = mcfg;
      one.seed = base_seed + i;
      topo::MultiUserLanScenario cell(one);
      runs[i] = cell.run();
    });

    double agg = 0, fair = 0, dur = 0;
    std::uint64_t completed = 0, skips = 0, deferrals = 0;
    for (const topo::MultiUserMetrics& m : runs) {
      agg += m.aggregate_throughput_bps;
      fair += m.fairness;
      dur += m.duration.to_seconds();
      completed += m.completed_users;
      skips += m.csd_skips;
      deferrals += m.csd_deferrals;
    }
    const double n = static_cast<double>(seeds);
    const std::uint64_t flows_total =
        static_cast<std::uint64_t>(multi_users) * static_cast<std::uint64_t>(seeds);
    if (tsv) {
      std::printf(
          "users\tpolicy\tscheme\tseeds\taggregate_bps\tfairness\t"
          "completed\tcsd_skips\tcsd_deferrals\n");
      std::printf("%ld\t%s\t%s\t%d\t%.1f\t%.5f\t%llu/%llu\t%llu\t%llu\n",
                  multi_users, policy.c_str(), scheme.c_str(), seeds, agg / n,
                  fair / n, static_cast<unsigned long long>(completed),
                  static_cast<unsigned long long>(flows_total),
                  static_cast<unsigned long long>(skips),
                  static_cast<unsigned long long>(deferrals));
    } else {
      std::printf("setup:      multi-user LAN cell, %ld flows, policy %s, scheme %s\n",
                  multi_users, policy.c_str(), scheme.c_str());
      std::printf("workload:   %lld KB per flow, %lld B window\n",
                  static_cast<long long>(mcfg.tcp.file_bytes / 1024),
                  static_cast<long long>(mcfg.tcp.window_bytes));
      if (mcfg.channel_errors) {
        std::printf("channel:    good %.1f s / bad %.1f s (BER %.0e / %.0e), per-user\n",
                    mcfg.channel.mean_good_s, mcfg.channel.mean_bad_s,
                    mcfg.channel.ber_good, mcfg.channel.ber_bad);
      } else {
        std::printf("channel:    error-free\n");
      }
      std::printf("\nover %d seeds:\n", seeds);
      std::printf("  aggregate   %10.2f kbps\n", agg / n / 1000.0);
      std::printf("  fairness    %10.4f (Jain)\n", fair / n);
      std::printf("  duration    %10.2f s\n", dur / n);
      std::printf("  completed   %llu/%llu flows\n",
                  static_cast<unsigned long long>(completed),
                  static_cast<unsigned long long>(flows_total));
      if (mcfg.sched.policy == link::SchedPolicy::kCsdRoundRobin) {
        std::printf("  CSD         %.1f skips, %.1f deferrals per run\n",
                    static_cast<double>(skips) / n,
                    static_cast<double>(deferrals) / n);
      }
    }
    return completed == flows_total ? 0 : 1;
  }

  const double theory = cfg.channel_errors
                            ? core::theoretical_max_throughput_bps(cfg.wireless,
                                                                   cfg.channel)
                            : core::effective_bandwidth_bps(cfg.wireless);

  if (trace) {
    if (!obs_out.empty() || !checkpoint.empty()) {
      std::cerr << "note: --obs-out/--checkpoint are ignored with --trace "
                   "(use the default or --tsv output modes)\n";
    }
    cfg.seed = base_seed;
    stats::ConnectionTrace tr;
    topo::Scenario s(cfg);
    s.set_sender_trace(&tr);
    const stats::RunMetrics m = s.run();
    std::cout << m << "\n\n# time_s\tseq_mod90\trtx\n";
    tr.write_send_plot(std::cout);
    return m.completed ? 0 : 1;
  }

  core::MetricsSummary s;
  std::vector<core::SeedOutcome> outcomes;
  if (!obs_out.empty() || !checkpoint.empty()) {
    core::ReportOptions opts;
    opts.out_stem = obs_out;  // may be empty: checkpoint-only sweep
    opts.sample_interval = obs_interval;
    opts.jobs = jobs;
    opts.checkpoint_path = checkpoint;
    opts.resume = resume;
    const core::RunReport report =
        core::run_seeds_reported(cfg, seeds, base_seed, opts);
    s = report.summary;
    for (const core::SeedRunReport& sr : report.seeds) {
      outcomes.push_back({sr.seed, sr.status, sr.error});
    }
    if (!obs_out.empty()) {
      std::fprintf(stderr,
                   "obs: wrote %s.jsonl, %s.series.csv, %s.manifest.json\n",
                   obs_out.c_str(), obs_out.c_str(), obs_out.c_str());
    }
    if (!checkpoint.empty() && resume) {
      std::size_t restored = 0;
      for (const core::SeedRunReport& sr : report.seeds) {
        if (sr.restored) ++restored;
      }
      std::fprintf(stderr, "checkpoint: restored %zu of %d seeds from %s\n",
                   restored, seeds, checkpoint.c_str());
    }
  } else {
    s = core::run_seeds(cfg, seeds, base_seed, jobs, &outcomes);
  }

  // Failure containment (docs/robustness.md): the sweep always completes;
  // every failed seed surfaces here as a structured outcome, and the exit
  // code tells scripts the means are not trustworthy.
  for (const core::SeedOutcome& o : outcomes) {
    if (!o.ok()) {
      std::fprintf(stderr, "error: seed %llu failed: %s (%s)\n",
                   static_cast<unsigned long long>(o.seed),
                   sim::to_string(o.status), o.message.c_str());
    }
  }
  if (s.runs_incomplete() > 0) {
    std::fprintf(stderr,
                 "warning: %llu of %llu runs did NOT complete the transfer "
                 "(sim-time limit); their partial metrics ARE folded into "
                 "the means%s\n",
                 static_cast<unsigned long long>(s.runs_incomplete()),
                 static_cast<unsigned long long>(s.runs_total),
                 allow_incomplete ? "" : " (pass --allow-incomplete to exit 0)");
  }
  const int exit_code =
      (s.runs_failed > 0 || (s.runs_incomplete() > 0 && !allow_incomplete)) ? 1
                                                                            : 0;

  if (tsv) {
    std::printf(
        "setup\tscheme\tflavor\tpacket\tbad_s\tseeds\tthroughput_bps\t"
        "throughput_cv\tgoodput\ttimeouts\trtx_kb\tebsn\ttheory_bps\n");
    std::printf("%s\t%s\t%s\t%d\t%.2f\t%d\t%.1f\t%.4f\t%.5f\t%.2f\t%.2f\t%.1f\t%.1f\n",
                setup.c_str(), scheme.c_str(), flavor.c_str(), cfg.packet_size(),
                cfg.channel.mean_bad_s, seeds, s.throughput_bps.mean(),
                s.throughput_bps.cv(), s.goodput.mean(), s.timeouts.mean(),
                s.retransmitted_kbytes.mean(), s.ebsn_received.mean(), theory);
    return exit_code;
  }

  std::printf("setup:      %s, scheme %s, TCP %s\n", setup.c_str(), scheme.c_str(),
              flavor.c_str());
  std::printf("workload:   %lld KB transfer, %d B packets, %lld B window\n",
              static_cast<long long>(cfg.tcp.file_bytes / 1024), cfg.packet_size(),
              static_cast<long long>(cfg.tcp.window_bytes));
  if (cfg.channel_errors) {
    std::printf("channel:    good %.1f s / bad %.1f s (BER %.0e / %.0e)%s\n",
                cfg.channel.mean_good_s, cfg.channel.mean_bad_s,
                cfg.channel.ber_good, cfg.channel.ber_bad,
                cfg.deterministic_channel ? ", deterministic" : "");
  } else {
    std::printf("channel:    error-free\n");
  }
  if (cfg.handoff.enabled) {
    std::printf("handoffs:   every ~%.1f s, %.0f ms blackout%s\n",
                cfg.handoff.mean_interval.to_seconds(),
                cfg.handoff.latency.to_milliseconds(),
                cfg.handoff.fast_retransmit_on_resume ? ", fast-rtx on resume" : "");
  }
  std::printf("\nover %d seeds:\n", seeds);
  std::printf("  throughput  %10.2f kbps  (cv %.2f; theory bound %.2f kbps)\n",
              s.throughput_bps.mean() / 1000.0, s.throughput_bps.cv(),
              theory / 1000.0);
  std::printf("  goodput     %10.3f\n", s.goodput.mean());
  std::printf("  duration    %10.2f s\n", s.duration_s.mean());
  std::printf("  timeouts    %10.2f per run\n", s.timeouts.mean());
  std::printf("  rtx data    %10.2f KB per run\n", s.retransmitted_kbytes.mean());
  std::printf("  EBSNs       %10.1f per run\n", s.ebsn_received.mean());
  {
    // Delay distribution from one representative run (skipped if a
    // watchdog kills it: partial percentiles would be misleading).
    topo::ScenarioConfig one = cfg;
    one.seed = base_seed;
    topo::Scenario sc(one);
    const stats::RunMetrics m1 = sc.run();
    if (sc.simulator().outcome().ok()) {
      std::printf(
          "  delay       p50 %.3f s, p95 %.3f s, max %.3f s (seed %llu)\n",
          m1.delay_p50_s, m1.delay_p95_s, m1.delay_max_s,
          static_cast<unsigned long long>(base_seed));
    }
  }
  std::printf("  completed   %llu/%llu runs",
              static_cast<unsigned long long>(s.runs_completed),
              static_cast<unsigned long long>(s.runs_total));
  if (s.runs_failed > 0) {
    std::printf("  (%llu FAILED)",
                static_cast<unsigned long long>(s.runs_failed));
  }
  std::printf("\n");
  return exit_code;
}
