// Quickstart: run the paper's three wide-area configurations — basic TCP,
// local recovery, and local recovery + EBSN — over the same burst-error
// wireless link, and compare them with the theoretical maximum.
//
//   $ ./quickstart
#include <iostream>

#include "src/core/api.hpp"

int main() {
  using namespace wtcp;

  // The paper's wide-area setup (Section 3): 56 kbps wired link, 19.2 kbps
  // wireless link with 1.5x framing overhead, 128 B wireless MTU, 576 B
  // packets, 4 KB window, 100 KB file transfer.
  topo::ScenarioConfig base = topo::wan_scenario();
  base.channel.mean_bad_s = 4.0;  // harsh: mean 4 s fades every ~10 s

  const double tput_th =
      core::theoretical_max_throughput_bps(base.wireless, base.channel);
  std::cout << "Channel: good " << base.channel.mean_good_s << " s / bad "
            << base.channel.mean_bad_s << " s, theoretical max "
            << tput_th / 1000.0 << " kbps\n\n";

  stats::TextTable table({"scheme", "throughput kbps", "goodput", "timeouts",
                          "rtx KB", "EBSNs"});

  auto report = [&](const char* name, topo::ScenarioConfig cfg) {
    // Average over 5 seeds, as the paper averages runs (stddev < 4%).
    const core::MetricsSummary s = core::run_seeds(cfg, 5);
    table.add_row({name, stats::fmt_double(s.throughput_bps.mean() / 1000.0, 2),
                   stats::fmt_double(s.goodput.mean(), 3),
                   stats::fmt_double(s.timeouts.mean(), 1),
                   stats::fmt_double(s.retransmitted_kbytes.mean(), 1),
                   stats::fmt_double(s.ebsn_received.mean(), 0)});
  };

  // 1. Basic TCP-Tahoe end to end: every wireless loss triggers congestion
  //    control at the source.
  report("basic TCP", base);

  // 2. Local recovery: the base station retransmits lost fragments
  //    (link-level ARQ, RTmax = 13) — but the source can still time out.
  topo::ScenarioConfig local = base;
  local.local_recovery = true;
  report("local recovery", local);

  // 3. EBSN: during local recovery the base station notifies the source
  //    after every failed attempt; the source re-arms its timer and never
  //    times out (the paper's contribution).
  topo::ScenarioConfig ebsn = local;
  ebsn.feedback = topo::FeedbackMode::kEbsn;
  report("local recovery + EBSN", ebsn);

  table.print(std::cout);
  std::cout << "\nEBSN should sit near the theoretical max ("
            << tput_th / 1000.0 << " kbps) with ~zero timeouts.\n";
  return 0;
}
