// Wide-area bulk transfer with a packet trace — the scenario behind the
// paper's Figures 3-5.  Prints a compact timeline of source activity
// (sends, retransmissions, timeouts, EBSNs) for the deterministic
// 10 s good / 4 s bad channel, then writes the (time, seq mod 90) plot
// data to stdout in the same form as the paper's graphs.
//
//   $ ./wan_file_transfer [basic|local|ebsn]
#include <cstring>
#include <iostream>
#include <string>

#include "src/core/api.hpp"

int main(int argc, char** argv) {
  using namespace wtcp;

  std::string mode = argc > 1 ? argv[1] : "basic";

  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.deterministic_channel = true;  // exactly reproducible error timing
  cfg.channel.mean_bad_s = 4.0;      // the Figure 3-5 example channel
  cfg.tcp.file_bytes = 50 * 1024;    // ~55 s of simulated transfer

  if (mode == "local") {
    cfg.local_recovery = true;
  } else if (mode == "ebsn") {
    cfg.local_recovery = true;
    cfg.feedback = topo::FeedbackMode::kEbsn;
  } else if (mode != "basic") {
    std::cerr << "usage: wan_file_transfer [basic|local|ebsn]\n";
    return 1;
  }

  stats::ConnectionTrace trace;
  topo::Scenario scenario(cfg);
  scenario.set_sender_trace(&trace);
  const stats::RunMetrics m = scenario.run();

  std::cout << "mode: " << mode << "\n" << m << "\n\n";

  std::cout << "timeline of notable source events:\n";
  for (const stats::TraceRecord& r : trace.records()) {
    switch (r.event) {
      case stats::TraceEvent::kTimeout:
      case stats::TraceEvent::kFastRtx:
      case stats::TraceEvent::kRetransmit:
        std::cout << "  " << r.at.to_seconds() << "s  " << to_string(r.event)
                  << " seq=" << r.seq << "\n";
        break;
      default:
        break;
    }
  }

  std::cout << "\n# packet trace (paper Figures 3-5 format)\n";
  trace.write_send_plot(std::cout);
  return 0;
}
