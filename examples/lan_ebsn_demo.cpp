// Local-area wireless demo (paper Section 4.2.4): 10 Mbps wired link,
// 2 Mbps wireless LAN, 64 KB window, 4 MB transfer.  Small LAN round-trip
// times make the TCP source especially prone to timeouts during local
// recovery — the ideal habitat for EBSN.  Sweeps the bad-period length
// and prints basic-vs-EBSN throughput against the theoretical maximum.
//
//   $ ./lan_ebsn_demo
#include <iostream>

#include "src/core/api.hpp"

int main() {
  using namespace wtcp;

  topo::ScenarioConfig base = topo::lan_scenario();

  stats::TextTable table({"bad period s", "basic Mbps", "EBSN Mbps",
                          "theory Mbps", "basic timeouts", "EBSN timeouts"});

  for (double bad : {0.4, 0.8, 1.2, 1.6}) {
    topo::ScenarioConfig basic = base;
    basic.channel.mean_bad_s = bad;

    topo::ScenarioConfig ebsn = basic;
    ebsn.local_recovery = true;
    ebsn.feedback = topo::FeedbackMode::kEbsn;

    const core::MetricsSummary mb = core::run_seeds(basic, 3);
    const core::MetricsSummary me = core::run_seeds(ebsn, 3);
    const double th =
        core::theoretical_max_throughput_bps(basic.wireless, basic.channel);

    table.add_row({stats::fmt_double(bad, 1),
                   stats::fmt_double(mb.throughput_bps.mean() / 1e6, 3),
                   stats::fmt_double(me.throughput_bps.mean() / 1e6, 3),
                   stats::fmt_double(th / 1e6, 3),
                   stats::fmt_double(mb.timeouts.mean(), 1),
                   stats::fmt_double(me.timeouts.mean(), 1)});
  }

  table.print(std::cout);
  std::cout << "\nEBSN tracks the theoretical bound; basic TCP falls away as\n"
               "bad periods lengthen (paper Figure 10).\n";
  return 0;
}
