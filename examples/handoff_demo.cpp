// Handoff demo: a mobile host re-registers with a new base station every
// ~15 s (500 ms blackout) while downloading over a clean wireless link,
// then over a fading one.  Compares the recovery strategies from the
// literature the paper builds on:
//   * plain TCP-Tahoe (times out across each handoff),
//   * Caceres & Iftode [4]: forced duplicate ACKs on resumption,
//   * base-station local recovery + EBSN (this paper's machinery).
//
//   $ ./handoff_demo
#include <iostream>

#include "src/core/api.hpp"

int main() {
  using namespace wtcp;

  topo::ScenarioConfig base = topo::wan_scenario();
  base.handoff.enabled = true;
  base.handoff.mean_interval = sim::Time::seconds(15);
  base.handoff.latency = sim::Time::milliseconds(500);

  stats::TextTable table({"channel", "strategy", "throughput kbps", "timeouts",
                          "delay p95 s", "handoffs"});

  auto run_case = [&](const char* channel, bool fading, const char* name,
                      bool fast_rtx, bool ebsn) {
    stats::Summary tput, timeouts, p95, handoffs;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      topo::ScenarioConfig cfg = base;
      cfg.channel_errors = fading;
      cfg.channel.mean_bad_s = 2;
      cfg.handoff.fast_retransmit_on_resume = fast_rtx;
      if (ebsn) {
        cfg.local_recovery = true;
        cfg.feedback = topo::FeedbackMode::kEbsn;
      }
      cfg.seed = seed;
      const stats::RunMetrics m = topo::run_scenario(cfg);
      tput.add(m.throughput_bps);
      timeouts.add(static_cast<double>(m.timeouts));
      p95.add(m.delay_p95_s);
      handoffs.add(static_cast<double>(m.handoffs));
    }
    table.add_row({channel, name, stats::fmt_double(tput.mean() / 1000.0, 2),
                   stats::fmt_double(timeouts.mean(), 1),
                   stats::fmt_double(p95.mean(), 2),
                   stats::fmt_double(handoffs.mean(), 1)});
  };

  for (bool fading : {false, true}) {
    const char* ch = fading ? "fading" : "clean";
    run_case(ch, fading, "plain Tahoe", false, false);
    run_case(ch, fading, "fast-rtx on resume [4]", true, false);
    run_case(ch, fading, "local recovery + EBSN", false, true);
  }

  table.print(std::cout);
  std::cout << "\nhandoffs cost plain TCP a timeout each; forced dupacks [4]\n"
               "recover in one RTT; EBSN + ARQ make handoffs invisible to\n"
               "the transport (the base station replays the blackout).\n";
  return 0;
}
