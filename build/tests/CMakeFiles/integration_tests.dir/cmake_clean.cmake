file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/advisor_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/advisor_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/fuzz_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/fuzz_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/invariants_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/invariants_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/multi_hop_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/multi_hop_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/multi_user_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/multi_user_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/paper_results_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/paper_results_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/scenario_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/scenario_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/uplink_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/uplink_test.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
