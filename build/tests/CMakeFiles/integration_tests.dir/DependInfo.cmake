
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/advisor_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/advisor_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/advisor_test.cpp.o.d"
  "/root/repo/tests/integration/fuzz_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/fuzz_test.cpp.o.d"
  "/root/repo/tests/integration/invariants_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/invariants_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/invariants_test.cpp.o.d"
  "/root/repo/tests/integration/multi_hop_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/multi_hop_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/multi_hop_test.cpp.o.d"
  "/root/repo/tests/integration/multi_user_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/multi_user_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/multi_user_test.cpp.o.d"
  "/root/repo/tests/integration/paper_results_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/paper_results_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/paper_results_test.cpp.o.d"
  "/root/repo/tests/integration/scenario_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/scenario_test.cpp.o.d"
  "/root/repo/tests/integration/uplink_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/uplink_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/uplink_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wtcp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
