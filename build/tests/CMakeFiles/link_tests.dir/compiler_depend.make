# Empty compiler generated dependencies file for link_tests.
# This may be replaced when dependencies are built.
