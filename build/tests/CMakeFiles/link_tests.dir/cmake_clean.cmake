file(REMOVE_RECURSE
  "CMakeFiles/link_tests.dir/link/bs_scheduler_test.cpp.o"
  "CMakeFiles/link_tests.dir/link/bs_scheduler_test.cpp.o.d"
  "CMakeFiles/link_tests.dir/link/fragmentation_test.cpp.o"
  "CMakeFiles/link_tests.dir/link/fragmentation_test.cpp.o.d"
  "CMakeFiles/link_tests.dir/link/link_arq_test.cpp.o"
  "CMakeFiles/link_tests.dir/link/link_arq_test.cpp.o.d"
  "CMakeFiles/link_tests.dir/link/wireless_link_test.cpp.o"
  "CMakeFiles/link_tests.dir/link/wireless_link_test.cpp.o.d"
  "link_tests"
  "link_tests.pdb"
  "link_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
