
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tcp/delayed_ack_test.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/delayed_ack_test.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/delayed_ack_test.cpp.o.d"
  "/root/repo/tests/tcp/handshake_test.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/handshake_test.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/handshake_test.cpp.o.d"
  "/root/repo/tests/tcp/reno_test.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/reno_test.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/reno_test.cpp.o.d"
  "/root/repo/tests/tcp/rto_estimator_test.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/rto_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/rto_estimator_test.cpp.o.d"
  "/root/repo/tests/tcp/sack_test.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/sack_test.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/sack_test.cpp.o.d"
  "/root/repo/tests/tcp/tahoe_sender_test.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/tahoe_sender_test.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/tahoe_sender_test.cpp.o.d"
  "/root/repo/tests/tcp/tcp_sink_test.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/tcp_sink_test.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/tcp_sink_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wtcp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
