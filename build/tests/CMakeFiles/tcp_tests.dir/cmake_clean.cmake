file(REMOVE_RECURSE
  "CMakeFiles/tcp_tests.dir/tcp/delayed_ack_test.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/delayed_ack_test.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/handshake_test.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/handshake_test.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/reno_test.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/reno_test.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/rto_estimator_test.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/rto_estimator_test.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/sack_test.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/sack_test.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/tahoe_sender_test.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/tahoe_sender_test.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/tcp_sink_test.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/tcp_sink_test.cpp.o.d"
  "tcp_tests"
  "tcp_tests.pdb"
  "tcp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
