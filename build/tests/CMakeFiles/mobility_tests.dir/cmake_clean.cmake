file(REMOVE_RECURSE
  "CMakeFiles/mobility_tests.dir/mobility/handoff_test.cpp.o"
  "CMakeFiles/mobility_tests.dir/mobility/handoff_test.cpp.o.d"
  "mobility_tests"
  "mobility_tests.pdb"
  "mobility_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
