file(REMOVE_RECURSE
  "CMakeFiles/feedback_tests.dir/feedback/ebsn_test.cpp.o"
  "CMakeFiles/feedback_tests.dir/feedback/ebsn_test.cpp.o.d"
  "CMakeFiles/feedback_tests.dir/feedback/snoop_test.cpp.o"
  "CMakeFiles/feedback_tests.dir/feedback/snoop_test.cpp.o.d"
  "CMakeFiles/feedback_tests.dir/feedback/source_quench_test.cpp.o"
  "CMakeFiles/feedback_tests.dir/feedback/source_quench_test.cpp.o.d"
  "feedback_tests"
  "feedback_tests.pdb"
  "feedback_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
