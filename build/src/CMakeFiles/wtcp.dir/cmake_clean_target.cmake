file(REMOVE_RECURSE
  "libwtcp.a"
)
