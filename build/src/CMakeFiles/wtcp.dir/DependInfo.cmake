
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ebsn.cpp" "src/CMakeFiles/wtcp.dir/core/ebsn.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/core/ebsn.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/wtcp.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/packet_size_advisor.cpp" "src/CMakeFiles/wtcp.dir/core/packet_size_advisor.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/core/packet_size_advisor.cpp.o.d"
  "/root/repo/src/core/theoretical.cpp" "src/CMakeFiles/wtcp.dir/core/theoretical.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/core/theoretical.cpp.o.d"
  "/root/repo/src/feedback/snoop_agent.cpp" "src/CMakeFiles/wtcp.dir/feedback/snoop_agent.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/feedback/snoop_agent.cpp.o.d"
  "/root/repo/src/feedback/source_quench.cpp" "src/CMakeFiles/wtcp.dir/feedback/source_quench.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/feedback/source_quench.cpp.o.d"
  "/root/repo/src/link/bs_scheduler.cpp" "src/CMakeFiles/wtcp.dir/link/bs_scheduler.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/link/bs_scheduler.cpp.o.d"
  "/root/repo/src/link/fragmentation.cpp" "src/CMakeFiles/wtcp.dir/link/fragmentation.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/link/fragmentation.cpp.o.d"
  "/root/repo/src/link/link_arq.cpp" "src/CMakeFiles/wtcp.dir/link/link_arq.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/link/link_arq.cpp.o.d"
  "/root/repo/src/link/wireless_link.cpp" "src/CMakeFiles/wtcp.dir/link/wireless_link.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/link/wireless_link.cpp.o.d"
  "/root/repo/src/mobility/handoff.cpp" "src/CMakeFiles/wtcp.dir/mobility/handoff.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/mobility/handoff.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/wtcp.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/net/link.cpp.o.d"
  "/root/repo/src/net/medium.cpp" "src/CMakeFiles/wtcp.dir/net/medium.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/net/medium.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/wtcp.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/wtcp.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/CMakeFiles/wtcp.dir/net/queue.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/net/queue.cpp.o.d"
  "/root/repo/src/phy/error_model.cpp" "src/CMakeFiles/wtcp.dir/phy/error_model.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/phy/error_model.cpp.o.d"
  "/root/repo/src/phy/gilbert_elliott.cpp" "src/CMakeFiles/wtcp.dir/phy/gilbert_elliott.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/phy/gilbert_elliott.cpp.o.d"
  "/root/repo/src/phy/trace_driven.cpp" "src/CMakeFiles/wtcp.dir/phy/trace_driven.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/phy/trace_driven.cpp.o.d"
  "/root/repo/src/sim/logging.cpp" "src/CMakeFiles/wtcp.dir/sim/logging.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/sim/logging.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/wtcp.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/wtcp.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/wtcp.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/CMakeFiles/wtcp.dir/sim/time.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/sim/time.cpp.o.d"
  "/root/repo/src/stats/metrics.cpp" "src/CMakeFiles/wtcp.dir/stats/metrics.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/stats/metrics.cpp.o.d"
  "/root/repo/src/stats/net_trace.cpp" "src/CMakeFiles/wtcp.dir/stats/net_trace.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/stats/net_trace.cpp.o.d"
  "/root/repo/src/stats/quantiles.cpp" "src/CMakeFiles/wtcp.dir/stats/quantiles.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/stats/quantiles.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/wtcp.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/stats/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/wtcp.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/stats/table.cpp.o.d"
  "/root/repo/src/stats/trace.cpp" "src/CMakeFiles/wtcp.dir/stats/trace.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/stats/trace.cpp.o.d"
  "/root/repo/src/tcp/rto_estimator.cpp" "src/CMakeFiles/wtcp.dir/tcp/rto_estimator.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/tcp/rto_estimator.cpp.o.d"
  "/root/repo/src/tcp/tahoe_sender.cpp" "src/CMakeFiles/wtcp.dir/tcp/tahoe_sender.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/tcp/tahoe_sender.cpp.o.d"
  "/root/repo/src/tcp/tcp_sink.cpp" "src/CMakeFiles/wtcp.dir/tcp/tcp_sink.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/tcp/tcp_sink.cpp.o.d"
  "/root/repo/src/topo/multi_scenario.cpp" "src/CMakeFiles/wtcp.dir/topo/multi_scenario.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/topo/multi_scenario.cpp.o.d"
  "/root/repo/src/topo/scenario.cpp" "src/CMakeFiles/wtcp.dir/topo/scenario.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/topo/scenario.cpp.o.d"
  "/root/repo/src/traffic/background.cpp" "src/CMakeFiles/wtcp.dir/traffic/background.cpp.o" "gcc" "src/CMakeFiles/wtcp.dir/traffic/background.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
