# Empty compiler generated dependencies file for wtcp.
# This may be replaced when dependencies are built.
