# Empty compiler generated dependencies file for abl_handoff.
# This may be replaced when dependencies are built.
