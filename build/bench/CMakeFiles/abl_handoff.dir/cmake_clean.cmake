file(REMOVE_RECURSE
  "CMakeFiles/abl_handoff.dir/abl_handoff.cpp.o"
  "CMakeFiles/abl_handoff.dir/abl_handoff.cpp.o.d"
  "abl_handoff"
  "abl_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
