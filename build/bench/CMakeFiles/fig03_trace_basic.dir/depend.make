# Empty dependencies file for fig03_trace_basic.
# This may be replaced when dependencies are built.
