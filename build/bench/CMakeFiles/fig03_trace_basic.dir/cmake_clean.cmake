file(REMOVE_RECURSE
  "CMakeFiles/fig03_trace_basic.dir/fig03_trace_basic.cpp.o"
  "CMakeFiles/fig03_trace_basic.dir/fig03_trace_basic.cpp.o.d"
  "fig03_trace_basic"
  "fig03_trace_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_trace_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
