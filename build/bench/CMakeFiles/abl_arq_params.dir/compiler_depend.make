# Empty compiler generated dependencies file for abl_arq_params.
# This may be replaced when dependencies are built.
