file(REMOVE_RECURSE
  "CMakeFiles/abl_arq_params.dir/abl_arq_params.cpp.o"
  "CMakeFiles/abl_arq_params.dir/abl_arq_params.cpp.o.d"
  "abl_arq_params"
  "abl_arq_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_arq_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
