file(REMOVE_RECURSE
  "CMakeFiles/abl_snoop_compare.dir/abl_snoop_compare.cpp.o"
  "CMakeFiles/abl_snoop_compare.dir/abl_snoop_compare.cpp.o.d"
  "abl_snoop_compare"
  "abl_snoop_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_snoop_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
