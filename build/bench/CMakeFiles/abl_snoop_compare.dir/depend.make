# Empty dependencies file for abl_snoop_compare.
# This may be replaced when dependencies are built.
