# Empty compiler generated dependencies file for fig05_trace_ebsn.
# This may be replaced when dependencies are built.
