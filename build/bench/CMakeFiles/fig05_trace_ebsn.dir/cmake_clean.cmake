file(REMOVE_RECURSE
  "CMakeFiles/fig05_trace_ebsn.dir/fig05_trace_ebsn.cpp.o"
  "CMakeFiles/fig05_trace_ebsn.dir/fig05_trace_ebsn.cpp.o.d"
  "fig05_trace_ebsn"
  "fig05_trace_ebsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_trace_ebsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
