file(REMOVE_RECURSE
  "CMakeFiles/fig09_wan_retransmit.dir/fig09_wan_retransmit.cpp.o"
  "CMakeFiles/fig09_wan_retransmit.dir/fig09_wan_retransmit.cpp.o.d"
  "fig09_wan_retransmit"
  "fig09_wan_retransmit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_wan_retransmit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
