# Empty dependencies file for fig09_wan_retransmit.
# This may be replaced when dependencies are built.
