# Empty dependencies file for fig08_wan_ebsn.
# This may be replaced when dependencies are built.
