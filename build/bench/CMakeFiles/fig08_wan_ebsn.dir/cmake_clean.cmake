file(REMOVE_RECURSE
  "CMakeFiles/fig08_wan_ebsn.dir/fig08_wan_ebsn.cpp.o"
  "CMakeFiles/fig08_wan_ebsn.dir/fig08_wan_ebsn.cpp.o.d"
  "fig08_wan_ebsn"
  "fig08_wan_ebsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_wan_ebsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
