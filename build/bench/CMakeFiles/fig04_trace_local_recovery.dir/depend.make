# Empty dependencies file for fig04_trace_local_recovery.
# This may be replaced when dependencies are built.
