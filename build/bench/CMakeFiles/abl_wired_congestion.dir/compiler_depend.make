# Empty compiler generated dependencies file for abl_wired_congestion.
# This may be replaced when dependencies are built.
