file(REMOVE_RECURSE
  "CMakeFiles/abl_wired_congestion.dir/abl_wired_congestion.cpp.o"
  "CMakeFiles/abl_wired_congestion.dir/abl_wired_congestion.cpp.o.d"
  "abl_wired_congestion"
  "abl_wired_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wired_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
