file(REMOVE_RECURSE
  "CMakeFiles/abl_tcp_flavor.dir/abl_tcp_flavor.cpp.o"
  "CMakeFiles/abl_tcp_flavor.dir/abl_tcp_flavor.cpp.o.d"
  "abl_tcp_flavor"
  "abl_tcp_flavor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tcp_flavor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
