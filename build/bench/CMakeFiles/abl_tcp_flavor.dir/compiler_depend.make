# Empty compiler generated dependencies file for abl_tcp_flavor.
# This may be replaced when dependencies are built.
