file(REMOVE_RECURSE
  "CMakeFiles/abl_source_quench.dir/abl_source_quench.cpp.o"
  "CMakeFiles/abl_source_quench.dir/abl_source_quench.cpp.o.d"
  "abl_source_quench"
  "abl_source_quench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_source_quench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
