# Empty compiler generated dependencies file for abl_source_quench.
# This may be replaced when dependencies are built.
