file(REMOVE_RECURSE
  "CMakeFiles/abl_csdp_scheduling.dir/abl_csdp_scheduling.cpp.o"
  "CMakeFiles/abl_csdp_scheduling.dir/abl_csdp_scheduling.cpp.o.d"
  "abl_csdp_scheduling"
  "abl_csdp_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_csdp_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
