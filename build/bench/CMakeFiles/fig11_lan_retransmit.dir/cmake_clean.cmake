file(REMOVE_RECURSE
  "CMakeFiles/fig11_lan_retransmit.dir/fig11_lan_retransmit.cpp.o"
  "CMakeFiles/fig11_lan_retransmit.dir/fig11_lan_retransmit.cpp.o.d"
  "fig11_lan_retransmit"
  "fig11_lan_retransmit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_lan_retransmit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
