# Empty compiler generated dependencies file for fig11_lan_retransmit.
# This may be replaced when dependencies are built.
