file(REMOVE_RECURSE
  "CMakeFiles/fig07_wan_basic.dir/fig07_wan_basic.cpp.o"
  "CMakeFiles/fig07_wan_basic.dir/fig07_wan_basic.cpp.o.d"
  "fig07_wan_basic"
  "fig07_wan_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_wan_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
