# Empty compiler generated dependencies file for fig07_wan_basic.
# This may be replaced when dependencies are built.
