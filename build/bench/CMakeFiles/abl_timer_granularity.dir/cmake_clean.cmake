file(REMOVE_RECURSE
  "CMakeFiles/abl_timer_granularity.dir/abl_timer_granularity.cpp.o"
  "CMakeFiles/abl_timer_granularity.dir/abl_timer_granularity.cpp.o.d"
  "abl_timer_granularity"
  "abl_timer_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_timer_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
