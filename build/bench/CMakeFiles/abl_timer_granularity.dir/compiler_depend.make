# Empty compiler generated dependencies file for abl_timer_granularity.
# This may be replaced when dependencies are built.
