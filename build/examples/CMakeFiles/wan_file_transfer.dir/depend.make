# Empty dependencies file for wan_file_transfer.
# This may be replaced when dependencies are built.
