file(REMOVE_RECURSE
  "CMakeFiles/wan_file_transfer.dir/wan_file_transfer.cpp.o"
  "CMakeFiles/wan_file_transfer.dir/wan_file_transfer.cpp.o.d"
  "wan_file_transfer"
  "wan_file_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_file_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
