file(REMOVE_RECURSE
  "CMakeFiles/packet_size_tuning.dir/packet_size_tuning.cpp.o"
  "CMakeFiles/packet_size_tuning.dir/packet_size_tuning.cpp.o.d"
  "packet_size_tuning"
  "packet_size_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_size_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
