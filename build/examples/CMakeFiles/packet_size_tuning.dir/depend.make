# Empty dependencies file for packet_size_tuning.
# This may be replaced when dependencies are built.
