# Empty compiler generated dependencies file for multi_user_scheduling.
# This may be replaced when dependencies are built.
