file(REMOVE_RECURSE
  "CMakeFiles/multi_user_scheduling.dir/multi_user_scheduling.cpp.o"
  "CMakeFiles/multi_user_scheduling.dir/multi_user_scheduling.cpp.o.d"
  "multi_user_scheduling"
  "multi_user_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_user_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
