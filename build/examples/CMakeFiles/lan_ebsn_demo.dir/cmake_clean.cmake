file(REMOVE_RECURSE
  "CMakeFiles/lan_ebsn_demo.dir/lan_ebsn_demo.cpp.o"
  "CMakeFiles/lan_ebsn_demo.dir/lan_ebsn_demo.cpp.o.d"
  "lan_ebsn_demo"
  "lan_ebsn_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lan_ebsn_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
