# Empty dependencies file for lan_ebsn_demo.
# This may be replaced when dependencies are built.
