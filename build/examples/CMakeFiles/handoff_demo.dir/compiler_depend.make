# Empty compiler generated dependencies file for handoff_demo.
# This may be replaced when dependencies are built.
