file(REMOVE_RECURSE
  "CMakeFiles/handoff_demo.dir/handoff_demo.cpp.o"
  "CMakeFiles/handoff_demo.dir/handoff_demo.cpp.o.d"
  "handoff_demo"
  "handoff_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handoff_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
