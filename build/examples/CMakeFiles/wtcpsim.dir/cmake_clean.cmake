file(REMOVE_RECURSE
  "CMakeFiles/wtcpsim.dir/wtcpsim.cpp.o"
  "CMakeFiles/wtcpsim.dir/wtcpsim.cpp.o.d"
  "wtcpsim"
  "wtcpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtcpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
