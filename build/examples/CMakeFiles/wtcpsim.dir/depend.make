# Empty dependencies file for wtcpsim.
# This may be replaced when dependencies are built.
