#include "src/feedback/source_quench.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/simulator.hpp"

namespace wtcp::feedback {
namespace {

net::PacketRef data_fragment(sim::Simulator& sim) {
  net::PacketRef inner = net::make_tcp_data(sim.packet_pool(), 0, 536, 40, 0, 2,
                                            sim.now());
  net::PacketRef frag = sim.packet_pool().acquire();
  frag->type = net::PacketType::kLinkFragment;
  frag->size_bytes = 128;
  frag->frag = net::FragmentHeader{.datagram_id = 1, .index = 0, .count = 5,
                                   .link_seq = 0};
  frag->encapsulated = std::move(inner);
  return frag;
}

class QuenchTest : public ::testing::Test {
 protected:
  void build(SourceQuenchConfig cfg = {}) {
    agent_ = std::make_unique<SourceQuenchAgent>(
        sim_, cfg, 1, 0,
        [this](net::PacketRef p) { out_.push_back(std::move(p)); });
  }

  sim::Simulator sim_;
  std::unique_ptr<SourceQuenchAgent> agent_;
  std::vector<net::PacketRef> out_;
};

TEST_F(QuenchTest, NotifySendsQuench) {
  SourceQuenchConfig cfg;
  cfg.min_interval = sim::Time::zero();
  build(cfg);
  agent_->notify(*data_fragment(sim_));
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0]->type, net::PacketType::kSourceQuench);
  EXPECT_EQ(agent_->stats().quenches_sent, 1u);
}

TEST_F(QuenchTest, DefaultRateLimitIsIcmpLike) {
  build();  // default 500 ms min interval
  for (int i = 0; i < 5; ++i) agent_->notify(*data_fragment(sim_));
  EXPECT_EQ(out_.size(), 1u);
  EXPECT_EQ(agent_->stats().suppressed, 4u);
}

TEST_F(QuenchTest, QuenchesSpacedByInterval) {
  build();
  for (int i = 0; i < 4; ++i) {
    sim_.at(sim::Time::milliseconds(400) * i, [this] {
      agent_->notify(*data_fragment(sim_));
    });
  }
  sim_.run();
  // t = 0 passes, 0.4 suppressed, 0.8 passes, 1.2 suppressed... wait:
  // 1.2 - 0.8 = 0.4 < 0.5 suppressed.  So 2 pass.
  EXPECT_EQ(out_.size(), 2u);
}

TEST_F(QuenchTest, NonDataSuppressedByDefault) {
  build();
  net::PacketRef frag = sim_.packet_pool().acquire();
  frag->type = net::PacketType::kLinkFragment;
  frag->size_bytes = 40;
  frag->frag = net::FragmentHeader{.link_seq = 0};
  frag->encapsulated = net::make_tcp_ack(sim_.packet_pool(), 1, 40, 2, 0, sim_.now());
  agent_->notify(*frag);
  EXPECT_TRUE(out_.empty());
}

}  // namespace
}  // namespace wtcp::feedback
