#include "src/core/ebsn.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/phy/error_model.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::core {
namespace {

net::PacketRef data_fragment(sim::Simulator& sim) {
  net::PacketRef inner = net::make_tcp_data(sim.packet_pool(), 0, 536, 40, 0, 2,
                                            sim.now());
  net::PacketRef frag = sim.packet_pool().acquire();
  frag->type = net::PacketType::kLinkFragment;
  frag->size_bytes = 128;
  frag->frag = net::FragmentHeader{.datagram_id = 1, .index = 0, .count = 5,
                                   .link_seq = 0};
  frag->encapsulated = std::move(inner);
  return frag;
}

net::PacketRef ack_fragment(sim::Simulator& sim) {
  net::PacketRef inner = net::make_tcp_ack(sim.packet_pool(), 3, 40, 2, 0,
                                           sim.now());
  net::PacketRef frag = sim.packet_pool().acquire();
  frag->type = net::PacketType::kLinkFragment;
  frag->size_bytes = 40;
  frag->frag = net::FragmentHeader{.datagram_id = 2, .index = 0, .count = 1,
                                   .link_seq = 1};
  frag->encapsulated = std::move(inner);
  return frag;
}

class EbsnAgentTest : public ::testing::Test {
 protected:
  EbsnAgentTest() = default;

  void build(EbsnConfig cfg = {}) {
    agent_ = std::make_unique<EbsnAgent>(
        sim_, cfg, 1, 0,
        [this](net::PacketRef p) { out_.push_back(std::move(p)); });
  }

  sim::Simulator sim_;
  std::unique_ptr<EbsnAgent> agent_;
  std::vector<net::PacketRef> out_;
};

TEST_F(EbsnAgentTest, NotifySendsEbsnTowardSource) {
  build();
  agent_->notify(*data_fragment(sim_));
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0]->type, net::PacketType::kEbsn);
  EXPECT_EQ(out_[0]->size_bytes, 40);
  EXPECT_EQ(out_[0]->src, 1);
  EXPECT_EQ(out_[0]->dst, 0);
  EXPECT_EQ(agent_->stats().notifications_sent, 1u);
}

TEST_F(EbsnAgentTest, EveryFailedAttemptNotifies) {
  build();
  for (int i = 0; i < 7; ++i) agent_->notify(*data_fragment(sim_));
  EXPECT_EQ(out_.size(), 7u);
}

TEST_F(EbsnAgentTest, DataOnlyFilterSuppressesAckFragments) {
  build();  // data_only defaults to true
  agent_->notify(*ack_fragment(sim_));
  EXPECT_TRUE(out_.empty());
  EXPECT_EQ(agent_->stats().suppressed, 1u);
}

TEST_F(EbsnAgentTest, DataOnlyFilterCanBeDisabled) {
  EbsnConfig cfg;
  cfg.data_only = false;
  build(cfg);
  agent_->notify(*ack_fragment(sim_));
  EXPECT_EQ(out_.size(), 1u);
}

TEST_F(EbsnAgentTest, RateLimiterSuppressesBursts) {
  EbsnConfig cfg;
  cfg.min_interval = sim::Time::milliseconds(500);
  build(cfg);
  // Three notifies at t=0: only the first passes.
  for (int i = 0; i < 3; ++i) agent_->notify(*data_fragment(sim_));
  EXPECT_EQ(out_.size(), 1u);
  EXPECT_EQ(agent_->stats().suppressed, 2u);
  // After the interval elapses, the next one passes again.
  sim_.after(sim::Time::milliseconds(600), [&] {
    agent_->notify(*data_fragment(sim_));
  });
  sim_.run();
  EXPECT_EQ(out_.size(), 2u);
}

TEST_F(EbsnAgentTest, CustomMessageSize) {
  EbsnConfig cfg;
  cfg.message_bytes = 64;
  build(cfg);
  agent_->notify(*data_fragment(sim_));
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0]->size_bytes, 64);
}

TEST_F(EbsnAgentTest, AttachHooksIntoArqFailures) {
  build();
  net::LinkConfig lc;
  lc.bandwidth_bps = 19'200;
  lc.prop_delay = sim::Time::milliseconds(5);
  lc.overhead_num = 3;
  lc.overhead_den = 2;
  net::DuplexLink link(sim_, lc);
  // Channel dead: every attempt fails and must produce one EBSN.
  link.set_error_model(std::make_shared<phy::ScriptedErrorModel>(
      std::vector<phy::ScriptedErrorModel::Window>{
          {sim::Time::zero(), sim::Time::seconds(10'000)}}));
  link::ArqConfig acfg;
  acfg.rt_max = 4;
  link::ArqSender arq(sim_, link, 0, acfg, "arq");
  agent_->attach(arq);
  arq.submit(data_fragment(sim_));
  sim_.run();
  EXPECT_EQ(arq.stats().attempts, 5u);
  EXPECT_EQ(out_.size(), 5u);  // one EBSN per failed attempt
}

}  // namespace
}  // namespace wtcp::core
