#include "src/feedback/snoop_agent.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/simulator.hpp"

namespace wtcp::feedback {
namespace {

class SnoopTest : public ::testing::Test {
 protected:
  void build(SnoopConfig cfg = {}) {
    snoop_ = std::make_unique<SnoopAgent>(sim_, cfg, "snoop");
    snoop_->set_wireless_tx(
        [this](net::PacketRef p) { wireless_tx_.push_back(std::move(p)); });
  }

  net::PacketRef data(std::int64_t seq) {
    return net::make_tcp_data(sim_.packet_pool(), seq, 536, 40, 0, 2, sim_.now());
  }
  net::PacketRef ack(std::int64_t a) {
    return net::make_tcp_ack(sim_.packet_pool(), a, 40, 2, 0, sim_.now());
  }

  sim::Simulator sim_;
  std::unique_ptr<SnoopAgent> snoop_;
  std::vector<net::PacketRef> wireless_tx_;
};

TEST_F(SnoopTest, CachesPassingData) {
  build();
  for (int i = 0; i < 5; ++i) snoop_->on_data_from_wired(data(i));
  EXPECT_EQ(snoop_->cache_size(), 5u);
  EXPECT_EQ(snoop_->stats().data_cached, 5u);
}

TEST_F(SnoopTest, NewAckFreesCacheAndForwards) {
  build();
  for (int i = 0; i < 5; ++i) snoop_->on_data_from_wired(data(i));
  EXPECT_TRUE(snoop_->on_ack_from_wireless(*ack(3)));
  EXPECT_EQ(snoop_->cache_size(), 2u);  // 3, 4 remain
  EXPECT_EQ(snoop_->stats().acks_forwarded, 1u);
}

TEST_F(SnoopTest, FirstDupackTriggersLocalRetransmitAndIsSuppressed) {
  build();
  for (int i = 0; i < 5; ++i) snoop_->on_data_from_wired(data(i));
  EXPECT_TRUE(snoop_->on_ack_from_wireless(*ack(2)));   // new ack
  EXPECT_FALSE(snoop_->on_ack_from_wireless(*ack(2)));  // dup 1: suppressed
  ASSERT_EQ(wireless_tx_.size(), 1u);
  EXPECT_EQ(wireless_tx_[0]->tcp->seq, 2);
  EXPECT_EQ(snoop_->stats().local_retransmits, 1u);
  EXPECT_EQ(snoop_->stats().dupacks_suppressed, 1u);
}

TEST_F(SnoopTest, SubsequentDupacksSuppressedWithoutRetransmit) {
  build();
  for (int i = 0; i < 5; ++i) snoop_->on_data_from_wired(data(i));
  snoop_->on_ack_from_wireless(*ack(2));
  snoop_->on_ack_from_wireless(*ack(2));  // dup 1: local rtx
  snoop_->on_ack_from_wireless(*ack(2));  // dup 2
  snoop_->on_ack_from_wireless(*ack(2));  // dup 3
  EXPECT_EQ(wireless_tx_.size(), 1u);
  EXPECT_EQ(snoop_->stats().dupacks_suppressed, 3u);
}

TEST_F(SnoopTest, DupackForUncachedSeqForwarded) {
  build();
  // Nothing cached: snoop cannot help, TCP must recover end to end.
  EXPECT_TRUE(snoop_->on_ack_from_wireless(*ack(7)));
  EXPECT_TRUE(snoop_->on_ack_from_wireless(*ack(7)));
  EXPECT_TRUE(wireless_tx_.empty());
}

TEST_F(SnoopTest, LocalTimeoutRetransmitsOldestCached) {
  SnoopConfig cfg;
  cfg.max_local_rto = sim::Time::milliseconds(200);
  build(cfg);
  snoop_->on_data_from_wired(data(0));
  snoop_->on_data_from_wired(data(1));
  sim_.run(sim::Time::seconds(1));
  EXPECT_GE(snoop_->stats().local_timeouts, 1u);
  ASSERT_GE(wireless_tx_.size(), 1u);
  EXPECT_EQ(wireless_tx_[0]->tcp->seq, 0);
}

TEST_F(SnoopTest, LocalRetransmitsAreBounded) {
  SnoopConfig cfg;
  cfg.max_local_rto = sim::Time::milliseconds(100);
  cfg.max_local_retransmits = 3;
  build(cfg);
  snoop_->on_data_from_wired(data(0));
  sim_.run(sim::Time::seconds(20));
  EXPECT_LE(snoop_->stats().local_retransmits, 3u);
}

TEST_F(SnoopTest, CacheBounded) {
  SnoopConfig cfg;
  cfg.cache_packets = 4;
  build(cfg);
  for (int i = 0; i < 10; ++i) snoop_->on_data_from_wired(data(i));
  EXPECT_LE(snoop_->cache_size(), 4u);
  EXPECT_GT(snoop_->stats().cache_evictions, 0u);
  // The oldest outstanding segments are the ones retained.
  snoop_->on_ack_from_wireless(*ack(0));
  snoop_->on_ack_from_wireless(*ack(0));  // dup: seq 0 must still be cached
  EXPECT_EQ(wireless_tx_.size(), 1u);
}

TEST_F(SnoopTest, StaleDataBelowAckNotCached) {
  build();
  snoop_->on_ack_from_wireless(*ack(5));
  snoop_->on_data_from_wired(data(3));  // already acked end-to-end
  EXPECT_EQ(snoop_->cache_size(), 0u);
}

}  // namespace
}  // namespace wtcp::feedback
