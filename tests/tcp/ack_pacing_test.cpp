// Receiver ACK pacing: the in-order cumulative ACK clock is released at
// most once per pacing interval (coalescing bursts into one up-to-date
// ACK), while dupacks, hole fills and the completion ACK stay urgent.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/tcp/tcp_sink.hpp"

namespace wtcp::tcp {
namespace {

class AckPacingTest : public ::testing::Test {
 protected:
  void build(bool pacing) {
    cfg_.mss = 536;
    cfg_.header_bytes = 40;
    cfg_.file_bytes = 10 * 536;
    cfg_.ack_pacing = pacing;  // interval keeps its 50 ms default
    sink_ = std::make_unique<TcpSink>(sim_, cfg_, 2, 0, "snk");
    sink_->set_downstream([this](net::PacketRef p) {
      ack_times_.push_back(sim_.now());
      acks_.push_back(std::move(p));
    });
  }

  void data(std::int64_t seq) {
    sink_->handle_packet(net::make_tcp_data(sim_.packet_pool(), seq, 536, 40,
                                            0, 2, sim_.now()));
  }
  void data_at(std::int64_t ms, std::int64_t seq) {
    sim_.after(sim::Time::milliseconds(ms), [this, seq] { data(seq); });
  }
  std::int64_t last_ack() const { return acks_.back()->tcp->ack; }

  sim::Simulator sim_;
  TcpConfig cfg_;
  std::unique_ptr<TcpSink> sink_;
  std::vector<net::PacketRef> acks_;
  std::vector<sim::Time> ack_times_;
};

TEST_F(AckPacingTest, BurstCoalescesIntoOneDeferredCumulativeAck) {
  build(true);
  for (std::int64_t s = 0; s < 5; ++s) data(s);
  // The first arrival finds the gate open and ACKs immediately; the other
  // four fold into a single pending ACK on the pace timer.
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_EQ(last_ack(), 1);
  EXPECT_EQ(sink_->stats().acks_paced, 4u);

  sim_.run();
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_EQ(last_ack(), 5);  // coalesced ACK carries the latest position
  EXPECT_EQ(ack_times_.back(), sim::Time::milliseconds(50));
}

TEST_F(AckPacingTest, SteadyFastArrivalsAreThrottledToTheInterval) {
  build(true);
  // One segment every 12 ms: far faster than the 50 ms pacing gap.
  for (std::int64_t s = 0; s < 9; ++s) data_at(12 * s, s);
  sim_.run();
  // t=0 ACKs 1 immediately; 12..48 ms coalesce into the t=50 ms release
  // (ACK 5); 60..96 ms coalesce into the t=100 ms release (ACK 9).
  ASSERT_EQ(acks_.size(), 3u);
  EXPECT_EQ(acks_[0]->tcp->ack, 1);
  EXPECT_EQ(acks_[1]->tcp->ack, 5);
  EXPECT_EQ(acks_[2]->tcp->ack, 9);
  EXPECT_EQ(ack_times_[1], sim::Time::milliseconds(50));
  EXPECT_EQ(ack_times_[2], sim::Time::milliseconds(100));
  EXPECT_EQ(sink_->stats().acks_paced, 8u);  // 4 deferred arrivals per gap
}

TEST_F(AckPacingTest, SlowArrivalsPassStraightThrough) {
  build(true);
  // Wider than the interval: the gate is always open, pacing is a no-op.
  for (std::int64_t s = 0; s < 4; ++s) data_at(60 * s, s);
  sim_.run();
  ASSERT_EQ(acks_.size(), 4u);
  for (std::size_t i = 0; i < acks_.size(); ++i) {
    EXPECT_EQ(acks_[i]->tcp->ack, static_cast<std::int64_t>(i) + 1);
    EXPECT_EQ(ack_times_[i], sim::Time::milliseconds(60) * i);
  }
  EXPECT_EQ(sink_->stats().acks_paced, 0u);
}

TEST_F(AckPacingTest, DupacksBypassPacingAndSupersedeThePendingAck) {
  build(true);
  data_at(0, 0);   // ACK 1 immediately, gate closes until 50 ms
  data_at(5, 1);   // coalesced: pending ACK 2 scheduled for t=50 ms
  data_at(10, 3);  // hole at 2 -> dupack must go out NOW
  sim_.run();
  // The urgent dupack (ACK 2 at t=10 ms) also carries the coalesced
  // cumulative position, so the pending paced ACK is cancelled outright.
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_EQ(last_ack(), 2);
  EXPECT_EQ(ack_times_.back(), sim::Time::milliseconds(10));
}

TEST_F(AckPacingTest, HoleFillIsAckedImmediately) {
  build(true);
  data_at(0, 0);   // ACK 1
  data_at(5, 2);   // dupack (hole at 1)
  data_at(8, 1);   // fills the hole: the sender is waiting on this ACK
  sim_.run();
  ASSERT_EQ(acks_.size(), 3u);
  EXPECT_EQ(last_ack(), 3);
  EXPECT_EQ(ack_times_.back(), sim::Time::milliseconds(8));
}

TEST_F(AckPacingTest, CompletionAckIsFlushedImmediately) {
  build(true);
  for (std::int64_t s = 0; s < 10; ++s) data(s);
  // First ACK plus the immediate completion ACK; segments 1..8 coalesced
  // into a pending ACK that the completion flush cancels.
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_EQ(last_ack(), 10);
  EXPECT_TRUE(sink_->stats().completed);
  sim_.run();
  EXPECT_EQ(acks_.size(), 2u);  // no stale paced ACK left behind
}

TEST_F(AckPacingTest, PacingOffKeepsThePerSegmentAckClock) {
  build(false);
  for (std::int64_t s = 0; s < 5; ++s) data(s);
  EXPECT_EQ(acks_.size(), 5u);
  EXPECT_EQ(last_ack(), 5);
  EXPECT_EQ(sink_->stats().acks_paced, 0u);
}

}  // namespace
}  // namespace wtcp::tcp
