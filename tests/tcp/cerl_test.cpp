// CERL RTT-threshold loss differentiation.
#include <gtest/gtest.h>

#include "src/tcp/cc/strategies.hpp"

namespace wtcp::tcp {
namespace {

CcParams params() {
  CcParams p;
  p.awnd = 16.0;
  p.mss = 536;
  p.dupack_threshold = 3;
  return p;
}

CcAck sample(double rtt_ms, double srtt_ms) {
  CcAck ev{};
  ev.now = sim::Time::milliseconds(static_cast<std::int64_t>(rtt_ms));
  ev.acked_segments = 1.0;
  ev.rtt_sample_valid = true;
  ev.rtt_sample = sim::Time::milliseconds(static_cast<std::int64_t>(rtt_ms));
  ev.srtt = sim::Time::milliseconds(static_cast<std::int64_t>(srtt_ms));
  return ev;
}

TEST(Cerl, ThresholdSitsAlphaBetweenRttExtremes) {
  CerlCc cc(params());
  EXPECT_TRUE(cc.rtt_threshold().is_zero());  // no samples yet
  cc.on_ack_stream(sample(100, 100));
  cc.on_ack_stream(sample(300, 200));
  // threshold = 100 ms + 0.55 * (300 - 100) ms = 210 ms.
  EXPECT_NEAR(cc.rtt_threshold().to_seconds(), 0.210, 1e-9);
}

TEST(Cerl, LowRttLossIsWirelessAndPreservesTheWindow) {
  CerlCc cc(params());
  cc.on_ack_stream(sample(100, 100));
  cc.on_ack_stream(sample(300, 200));
  for (int i = 0; i < 9; ++i) cc.on_new_ack(sample(150, 150));  // cwnd 10
  ASSERT_DOUBLE_EQ(cc.cwnd(), 10.0);
  const double ssthresh = cc.ssthresh();

  // Loss while srtt (150 ms) < threshold (210 ms): the queue is short, so
  // blame the wireless link.  ssthresh keeps its value; the window only
  // picks up the episode's dupack inflation.
  EXPECT_TRUE(cc.on_dupack_threshold(sample(150, 150)));
  EXPECT_EQ(cc.wireless_losses(), 1u);
  EXPECT_EQ(cc.congestion_losses(), 0u);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), ssthresh);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 13.0);  // 10 + 3 dupacks

  // Exiting the episode restores the pre-loss window exactly.
  cc.on_recovery_exit(sample(150, 150));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.0);
}

TEST(Cerl, HighRttLossGetsTheRenoResponse) {
  CerlCc cc(params());
  cc.on_ack_stream(sample(100, 100));
  cc.on_ack_stream(sample(300, 200));
  for (int i = 0; i < 9; ++i) cc.on_new_ack(sample(250, 250));  // cwnd 10

  // Loss while srtt (250 ms) > threshold (210 ms): a long queue preceded
  // it, so this is congestion — standard halving.
  EXPECT_TRUE(cc.on_dupack_threshold(sample(250, 250)));
  EXPECT_EQ(cc.congestion_losses(), 1u);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 5.0);  // floor(10/2)
  EXPECT_DOUBLE_EQ(cc.cwnd(), 8.0);      // ssthresh + 3
  cc.on_recovery_exit(sample(250, 250));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 5.0);  // plain NewReno deflation
}

TEST(Cerl, NoRttRangeDefaultsToCongestion) {
  CerlCc cc(params());
  for (int i = 0; i < 9; ++i) cc.on_new_ack(sample(100, 100));
  // Identical min and max (or no samples at all): never claim wireless.
  cc.on_ack_stream(sample(100, 100));
  EXPECT_TRUE(cc.on_dupack_threshold(sample(100, 100)));
  EXPECT_EQ(cc.wireless_losses(), 0u);
  EXPECT_EQ(cc.congestion_losses(), 1u);
}

TEST(Cerl, WirelessTimeoutKeepsSsthresh) {
  CerlCc cc(params());
  cc.on_ack_stream(sample(100, 100));
  cc.on_ack_stream(sample(300, 200));
  for (int i = 0; i < 9; ++i) cc.on_new_ack(sample(150, 150));
  const double ssthresh = cc.ssthresh();

  // A fade-induced blackout: the timer verdict stands (slow start from
  // one segment) but ssthresh survives, so the window climbs straight
  // back once the link recovers.
  cc.on_timeout(sample(150, 150));
  EXPECT_EQ(cc.wireless_losses(), 1u);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), ssthresh);
}

TEST(Cerl, CongestionTimeoutCollapses) {
  CerlCc cc(params());
  cc.on_ack_stream(sample(100, 100));
  cc.on_ack_stream(sample(300, 200));
  for (int i = 0; i < 9; ++i) cc.on_new_ack(sample(250, 250));  // cwnd 10
  cc.on_timeout(sample(250, 250));
  EXPECT_EQ(cc.congestion_losses(), 1u);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 5.0);  // floor(10/2)
}

TEST(Cerl, TimeoutEndsAWirelessEpisodeBeforeTheExitAck) {
  CerlCc cc(params());
  cc.on_ack_stream(sample(100, 100));
  cc.on_ack_stream(sample(300, 200));
  for (int i = 0; i < 9; ++i) cc.on_new_ack(sample(150, 150));
  ASSERT_TRUE(cc.on_dupack_threshold(sample(150, 150)));  // wireless episode
  cc.on_timeout(sample(250, 250));  // episode aborted by the timer
  // The later recovery-exit ACK must NOT resurrect the saved window.
  cc.on_recovery_exit(sample(250, 250));
  EXPECT_DOUBLE_EQ(cc.cwnd(), cc.ssthresh());
}

}  // namespace
}  // namespace wtcp::tcp
