// Westwood+ bandwidth estimation and loss response.
#include <gtest/gtest.h>

#include "src/tcp/cc/strategies.hpp"

namespace wtcp::tcp {
namespace {

CcParams params() {
  CcParams p;
  p.awnd = 16.0;
  p.mss = 536;
  p.dupack_threshold = 3;
  return p;
}

CcAck ack_at(double seconds, double acked = 1.0, double srtt_ms = 40.0) {
  CcAck ev{};
  ev.now = sim::Time::from_seconds(seconds);
  ev.acked_segments = acked;
  ev.rtt_sample_valid = true;
  ev.rtt_sample = sim::Time::milliseconds(static_cast<std::int64_t>(srtt_ms));
  ev.srtt = sim::Time::milliseconds(static_cast<std::int64_t>(srtt_ms));
  return ev;
}

TEST(Westwood, FirstEpochSeedsTheFilterWithTheRawSample) {
  WestwoodCc cc(params());
  // One segment per ACK every 10 ms; srtt 40 ms < the 50 ms minimum
  // epoch, so the first epoch closes on the ACK at t = 50 ms with six
  // ACKs (t = 0 opens it): 6 * 536 B over 0.05 s = 64320 B/s.
  for (int i = 0; i <= 5; ++i) cc.on_ack_stream(ack_at(0.010 * i));
  EXPECT_NEAR(cc.bandwidth_estimate_Bps(), 6 * 536 / 0.05, 1e-6);
  EXPECT_EQ(cc.rtt_min(), sim::Time::milliseconds(40));
}

TEST(Westwood, FilterBlendsPairedSamples) {
  WestwoodCc cc(params());
  for (int i = 0; i <= 5; ++i) cc.on_ack_stream(ack_at(0.010 * i));
  const double first = cc.bandwidth_estimate_Bps();  // 64320, seeds filter
  // Second epoch at twice the rate: one segment every 5 ms from t = 55 ms;
  // the epoch that opened at t = 50 ms closes at t = 100 ms with ten ACKs
  // (55..100 ms): 10 * 536 / 0.05 = 107200 B/s.
  for (int i = 1; i <= 10; ++i) cc.on_ack_stream(ack_at(0.050 + 0.005 * i));
  const double second_sample = 10 * 536 / 0.05;
  const double pole = params().tuning.westwood_filter_pole;  // 0.9
  EXPECT_NEAR(cc.bandwidth_estimate_Bps(),
              pole * first + (1.0 - pole) * 0.5 * (second_sample + first),
              1e-6);
}

TEST(Westwood, DupacksStillCountOneSegmentOfDeliveredData) {
  WestwoodCc a(params());
  WestwoodCc b(params());
  // Same ACK clock; `a` sees new ACKs, `b` sees duplicate ACKs
  // (acked_segments = 0).  Both must integrate the same delivered bytes.
  for (int i = 0; i <= 5; ++i) {
    a.on_ack_stream(ack_at(0.010 * i, 1.0));
    b.on_ack_stream(ack_at(0.010 * i, 0.0));
  }
  EXPECT_DOUBLE_EQ(a.bandwidth_estimate_Bps(), b.bandwidth_estimate_Bps());
}

TEST(Westwood, LossSetsSsthreshToBandwidthDelayProduct) {
  WestwoodCc cc(params());
  for (int i = 0; i <= 5; ++i) cc.on_ack_stream(ack_at(0.010 * i));
  const double bwe = cc.bandwidth_estimate_Bps();  // 64320 B/s
  ASSERT_GT(bwe, 0.0);
  // BDP = 64320 B/s * 0.04 s / 536 B = 4.8 segments -> ssthresh 4.
  cc.on_dupack_threshold(ack_at(0.06, 0.0));
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 4.0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 4.0 + 3.0);  // NewReno recovery shape
  // A timeout uses the same estimate but restarts slow start.
  cc.on_timeout(ack_at(0.07, 0.0));
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 4.0);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
}

TEST(Westwood, FallsBackToRenoHalvingBeforeFirstEstimate) {
  WestwoodCc cc(params());
  for (int i = 0; i < 7; ++i) cc.on_new_ack(ack_at(0.1 * i));  // cwnd 8
  ASSERT_DOUBLE_EQ(cc.bandwidth_estimate_Bps(), 0.0);
  cc.on_dupack_threshold(ack_at(1.0, 0.0));
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 4.0);  // floor(8/2): Reno fallback
  EXPECT_DOUBLE_EQ(cc.cwnd(), 7.0);
}

TEST(Westwood, SsthreshFloorIsTwoSegments) {
  WestwoodCc cc(params());
  // A trickle: one segment per 500 ms -> BDP under 2 segments.
  for (int i = 0; i <= 5; ++i) cc.on_ack_stream(ack_at(0.5 * i));
  ASSERT_GT(cc.bandwidth_estimate_Bps(), 0.0);
  cc.on_dupack_threshold(ack_at(3.0, 0.0));
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 2.0);
}

TEST(Westwood, StaysInRecoveryAcrossPartialAcks) {
  WestwoodCc cc(params());
  EXPECT_TRUE(cc.partial_ack_stays_in_recovery());
}

}  // namespace
}  // namespace wtcp::tcp
