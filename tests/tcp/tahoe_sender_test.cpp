#include "src/tcp/tahoe_sender.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/core/audit.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/trace.hpp"
#include "src/tcp/tcp_sink.hpp"

namespace wtcp::tcp {
namespace {

TcpConfig small_cfg() {
  TcpConfig cfg;
  cfg.mss = 536;
  cfg.header_bytes = 40;
  cfg.window_bytes = 4096;  // 7 segments
  cfg.file_bytes = 10 * 536;
  cfg.rto.granularity = sim::Time::milliseconds(100);
  cfg.rto.initial_rto = sim::Time::seconds(1);
  return cfg;
}

// Fixture with a hand-driven network: captures the sender's output; the
// test injects ACKs / EBSNs / quenches directly.
class TahoeTest : public ::testing::Test {
 protected:
  void build(TcpConfig cfg) {
    cfg_ = cfg;
    sender_ = std::make_unique<TahoeSender>(sim_, cfg, 0, 2, "src");
    sender_->set_downstream([this](net::PacketRef p) { sent_.push_back(std::move(p)); });
    sender_->set_trace(&trace_);
  }

  void ack(std::int64_t next_expected) {
    sender_->handle_packet(net::make_tcp_ack(sim_.packet_pool(), next_expected, 40, 2, 0, sim_.now()));
  }
  void ebsn() {
    sender_->handle_packet(net::make_control(
        sim_.packet_pool(), net::PacketType::kEbsn, 40, 1, 0, sim_.now()));
  }
  void quench() {
    sender_->handle_packet(net::make_control(
        sim_.packet_pool(), net::PacketType::kSourceQuench, 40, 1, 0, sim_.now()));
  }

  sim::Simulator sim_;
  TcpConfig cfg_;
  std::unique_ptr<TahoeSender> sender_;
  std::vector<net::PacketRef> sent_;
  stats::ConnectionTrace trace_;
};

TEST_F(TahoeTest, SlowStartBeginsWithOneSegment) {
  build(small_cfg());
  sender_->start();
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_EQ(sent_[0]->tcp->seq, 0);
  EXPECT_EQ(sent_[0]->size_bytes, 576);
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 1.0);
}

TEST_F(TahoeTest, CwndDoublesPerRttInSlowStart) {
  build(small_cfg());
  sender_->start();
  ack(1);  // cwnd 2 -> sends 2
  EXPECT_EQ(sent_.size(), 3u);
  ack(2);
  ack(3);  // cwnd 4 -> window now allows 4 beyond una
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 4.0);
  EXPECT_EQ(sent_.size(), 7u);
}

TEST_F(TahoeTest, CongestionAvoidanceGrowsLinearly) {
  TcpConfig cfg = small_cfg();
  cfg.file_bytes = 100 * 536;
  cfg.window_bytes = 100 * 536;  // wide open receiver window
  build(cfg);
  sender_->start();
  // Push cwnd past ssthresh by hand-acking; ssthresh starts at win segs.
  // Force a loss first so ssthresh becomes small.
  sim_.run(sim::Time::seconds(2));  // initial RTO fires -> cwnd 1, ssthresh>=2
  EXPECT_EQ(sender_->stats().timeouts, 1u);
  const double ssthresh = sender_->ssthresh();
  // Ack everything sent so far, one by one, until cwnd > ssthresh.
  std::int64_t next = sender_->snd_una();
  while (sender_->cwnd() <= ssthresh + 1.0 && next < 60) ack(++next);
  const double before = sender_->cwnd();
  ack(++next);
  const double growth = sender_->cwnd() - before;
  EXPECT_GT(growth, 0.0);
  EXPECT_LT(growth, 1.0);  // sublinear per-ack growth
  EXPECT_NEAR(growth, 1.0 / before, 0.05);
}

TEST_F(TahoeTest, WindowNeverExceedsReceiverWindow) {
  build(small_cfg());  // 7-segment advertised window
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 6; ++i) ack(++next);
  // All acks delivered; in-flight bounded by min(cwnd, 7).
  EXPECT_LE(sender_->snd_nxt() - sender_->snd_una(), 7);
}

TEST_F(TahoeTest, TimeoutTriggersSlowStartAndBackoff) {
  build(small_cfg());
  sender_->start();
  ack(1);
  ack(2);  // cwnd 3
  const std::size_t sent_before = sent_.size();
  sim_.run(sim::Time::seconds(10));  // no more acks -> RTO fires
  EXPECT_GE(sender_->stats().timeouts, 1u);
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 1.0);
  // The retransmission is the oldest unacked segment.
  ASSERT_GT(sent_.size(), sent_before);
  EXPECT_EQ(sent_[sent_before]->tcp->seq, 2);
  EXPECT_TRUE(sent_[sent_before]->tcp->retransmit);
  EXPECT_GT(sender_->rto_estimator().backoff_shift(), 0);
}

TEST_F(TahoeTest, ConsecutiveTimeoutsDoubleRto) {
  build(small_cfg());
  sender_->start();
  std::vector<double> timeout_times;
  sim_.run(sim::Time::seconds(20));
  for (const auto& r : trace_.records()) {
    if (r.event == stats::TraceEvent::kTimeout) {
      timeout_times.push_back(r.at.to_seconds());
    }
  }
  ASSERT_GE(timeout_times.size(), 3u);
  const double gap1 = timeout_times[1] - timeout_times[0];
  const double gap2 = timeout_times[2] - timeout_times[1];
  EXPECT_NEAR(gap2 / gap1, 2.0, 0.1);
}

TEST_F(TahoeTest, FastRetransmitOnThreeDupacks) {
  build(small_cfg());
  sender_->start();
  ack(1);
  ack(2);  // cwnd 3; segments 0..4 sent
  const std::size_t before = sent_.size();
  ack(2);  // dup 1
  ack(2);  // dup 2
  EXPECT_EQ(sent_.size(), before);
  ack(2);  // dup 3 -> fast retransmit
  ASSERT_EQ(sent_.size(), before + 1);
  EXPECT_EQ(sent_[before]->tcp->seq, 2);
  EXPECT_TRUE(sent_[before]->tcp->retransmit);
  EXPECT_EQ(sender_->stats().fast_retransmits, 1u);
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 1.0);
}

TEST_F(TahoeTest, ExtraDupacksBeyondThresholdDoNothing) {
  build(small_cfg());
  sender_->start();
  ack(1);
  ack(2);
  for (int i = 0; i < 3; ++i) ack(2);
  const std::size_t after_frtx = sent_.size();
  ack(2);
  ack(2);
  EXPECT_EQ(sent_.size(), after_frtx);
  EXPECT_EQ(sender_->stats().fast_retransmits, 1u);
}

TEST_F(TahoeTest, SsthreshHalvesOnLoss) {
  build(small_cfg());
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 5; ++i) ack(++next);  // cwnd 6
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 6.0);
  for (int i = 0; i < 3; ++i) ack(next);  // fast rtx
  EXPECT_DOUBLE_EQ(sender_->ssthresh(), 3.0);
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 1.0);
}

TEST_F(TahoeTest, CompletesAndReportsFinishTime) {
  build(small_cfg());
  bool done = false;
  sender_->on_complete = [&] { done = true; };
  sender_->start();
  std::int64_t next = 0;
  while (next < sender_->total_segments()) ack(++next);
  EXPECT_TRUE(done);
  EXPECT_TRUE(sender_->stats().completed);
  EXPECT_FALSE(sender_->rtx_timer_pending());
}

TEST_F(TahoeTest, LastSegmentMayBePartial) {
  TcpConfig cfg = small_cfg();
  cfg.file_bytes = 3 * 536 + 100;
  build(cfg);
  EXPECT_EQ(sender_->total_segments(), 4);
  sender_->start();
  std::int64_t next = 0;
  while (next < 4) ack(++next);
  ASSERT_EQ(sent_.size(), 4u);
  EXPECT_EQ(sent_[3]->tcp->payload, 100);
  EXPECT_EQ(sender_->stats().payload_bytes_sent, cfg.file_bytes);
}

TEST_F(TahoeTest, EbsnReArmsTimerWithoutTouchingWindowOrRto) {
  build(small_cfg());
  sender_->start();
  ack(1);
  ack(2);
  const double cwnd_before = sender_->cwnd();
  const sim::Time rto_before = sender_->rto_estimator().rto();
  ASSERT_GE(rto_before, sim::Time::milliseconds(300));
  // Keep sending EBSNs every 0.25 s (< RTO): the timer never fires.
  for (int i = 1; i <= 36; ++i) {
    sim_.at(sim::Time::milliseconds(250) * i, [this] { ebsn(); });
  }
  sim_.run(sim::Time::seconds(9));
  EXPECT_EQ(sender_->stats().timeouts, 0u);
  EXPECT_EQ(sender_->stats().ebsn_received, 36u);
  EXPECT_DOUBLE_EQ(sender_->cwnd(), cwnd_before);
  EXPECT_EQ(sender_->rto_estimator().rto(), rto_before);
  EXPECT_EQ(sender_->rto_estimator().backoff_shift(), 0);
}

TEST_F(TahoeTest, WithoutEbsnSameScenarioTimesOut) {
  build(small_cfg());
  sender_->start();
  ack(1);
  ack(2);
  sim_.run(sim::Time::seconds(10));
  EXPECT_GT(sender_->stats().timeouts, 0u);
}

TEST_F(TahoeTest, EbsnIgnoredWhenDisabled) {
  TcpConfig cfg = small_cfg();
  cfg.react_to_ebsn = false;
  build(cfg);
  sender_->start();
  ack(1);
  for (int i = 1; i <= 20; ++i) {
    sim_.at(sim::Time::milliseconds(500) * i, [this] { ebsn(); });
  }
  sim_.run(sim::Time::seconds(10));
  EXPECT_GT(sender_->stats().timeouts, 0u);
  EXPECT_EQ(sender_->stats().ebsn_received, 20u);
}

TEST_F(TahoeTest, EbsnWithNothingOutstandingIsANoop) {
  build(small_cfg());
  sender_->start();
  std::int64_t next = 0;
  while (next < sender_->total_segments()) ack(++next);  // complete
  ebsn();
  EXPECT_FALSE(sender_->rtx_timer_pending());
}

TEST_F(TahoeTest, SourceQuenchCollapsesCwndOnly) {
  build(small_cfg());
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 4; ++i) ack(++next);
  const double ssthresh_before = sender_->ssthresh();
  quench();
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 1.0);
  EXPECT_DOUBLE_EQ(sender_->ssthresh(), ssthresh_before);
  EXPECT_EQ(sender_->stats().quench_received, 1u);
  // Quench does NOT stop the retransmit timer: losses still time out.
  EXPECT_TRUE(sender_->rtx_timer_pending());
}

TEST_F(TahoeTest, KarnNoRttSampleFromRetransmittedSegment) {
  build(small_cfg());
  sender_->start();
  sim_.run(sim::Time::seconds(2));  // segment 0 times out, is retransmitted
  const auto samples_before = sender_->stats().rtt_samples;
  ack(1);  // acks the retransmitted segment 0
  EXPECT_EQ(sender_->stats().rtt_samples, samples_before);
}

TEST_F(TahoeTest, BackoffResetOnAckOfFreshSegment) {
  build(small_cfg());
  sender_->start();
  sim_.run(sim::Time::seconds(4));  // several timeouts, backoff grows
  EXPECT_GT(sender_->rto_estimator().backoff_shift(), 0);
  ack(1);  // segment 0 was retransmitted -> backoff stays
  EXPECT_GT(sender_->rto_estimator().backoff_shift(), 0);
  // Segment 1 goes out fresh after the ack; acking it resets backoff.
  ack(2);
  EXPECT_EQ(sender_->rto_estimator().backoff_shift(), 0);
}

#if defined(WTCP_AUDIT) && WTCP_AUDIT
void ignore_violation(const char*, const char*, const char*) {}
#endif

TEST_F(TahoeTest, StrayAckBeyondTheFileDoesNotIndexPastTheBitmap) {
#if defined(WTCP_AUDIT) && WTCP_AUDIT
  // The injected stray ACK trips ack_in_sequence_space by design; keep
  // the audit build from aborting on it.
  audit::Handler prev = audit::set_handler(&ignore_violation);
#endif
  build(small_cfg());
  sender_->start();
  ack(1);
  // A corrupted or misrouted cumulative ACK pointing past the end of the
  // transfer: the Karn backoff-reset path indexes the per-segment
  // retransmission bitmap at ack-1 and must bounds-check first.  The
  // sender treats it as acking everything (completes) without touching
  // memory past the array.
  ack(cfg_.total_segments() + 5);
  EXPECT_TRUE(sender_->stats().completed);
#if defined(WTCP_AUDIT) && WTCP_AUDIT
  audit::set_handler(prev);
#endif
}

TEST_F(TahoeTest, ConnectionIdStampsEveryDataPacket) {
  TcpConfig cfg = small_cfg();
  cfg.conn = 7;
  build(cfg);
  sender_->start();
  ack(1);
  ack(2);
  for (const net::PacketRef& p : sent_) {
    ASSERT_TRUE(p->tcp.has_value());
    EXPECT_EQ(p->tcp->conn, 7u);
  }
}

TEST_F(TahoeTest, TraceRecordsSendsAndRetransmissionsDistinctly) {
  build(small_cfg());
  sender_->start();
  sim_.run(sim::Time::seconds(2));
  EXPECT_GE(trace_.count(stats::TraceEvent::kSend), 1u);
  EXPECT_GE(trace_.count(stats::TraceEvent::kRetransmit), 1u);
  EXPECT_GE(trace_.count(stats::TraceEvent::kTimeout), 1u);
}

// ---------------------------------------------------------------------------
// Closed-loop harness: sender <-> sink over delayed, lossy forwarders.
// ---------------------------------------------------------------------------

class LoopTest : public ::testing::Test {
 protected:
  void build(TcpConfig cfg, std::set<std::int64_t> drop_first_tx = {}) {
    cfg_ = cfg;
    sender_ = std::make_unique<TahoeSender>(sim_, cfg, 0, 2, "src");
    sink_ = std::make_unique<TcpSink>(sim_, cfg, 2, 0, "snk");
    drops_ = std::move(drop_first_tx);
    sender_->set_downstream([this](net::PacketRef p) {
      const std::int64_t seq = p->tcp->seq;
      if (!p->tcp->retransmit && drops_.contains(seq)) return;  // lose first tx
      sim_.after(delay_, [this, p = std::move(p)]() mutable {
        sink_->handle_packet(std::move(p));
      });
    });
    sink_->set_downstream([this](net::PacketRef p) {
      sim_.after(delay_, [this, p = std::move(p)]() mutable {
        sender_->handle_packet(std::move(p));
      });
    });
  }

  sim::Simulator sim_;
  TcpConfig cfg_;
  std::unique_ptr<TahoeSender> sender_;
  std::unique_ptr<TcpSink> sink_;
  std::set<std::int64_t> drops_;
  sim::Time delay_ = sim::Time::milliseconds(50);
};

TEST_F(LoopTest, LosslessTransferCompletes) {
  TcpConfig cfg = small_cfg();
  cfg.file_bytes = 50 * 536;
  build(cfg);
  sender_->start();
  sim_.run();
  EXPECT_TRUE(sender_->stats().completed);
  EXPECT_TRUE(sink_->stats().completed);
  EXPECT_EQ(sink_->stats().unique_payload_bytes, cfg.file_bytes);
  EXPECT_EQ(sender_->stats().timeouts, 0u);
  EXPECT_EQ(sender_->stats().segments_retransmitted, 0u);
}

TEST_F(LoopTest, SingleLossRecoveredByFastRetransmit) {
  TcpConfig cfg = small_cfg();
  cfg.file_bytes = 50 * 536;
  build(cfg, /*drop_first_tx=*/{20});
  sender_->start();
  sim_.run();
  EXPECT_TRUE(sender_->stats().completed);
  EXPECT_EQ(sink_->stats().unique_payload_bytes, cfg.file_bytes);
  EXPECT_EQ(sender_->stats().fast_retransmits, 1u);
  EXPECT_EQ(sender_->stats().timeouts, 0u);
}

TEST_F(LoopTest, LossNearEndRecoveredByTimeout) {
  TcpConfig cfg = small_cfg();
  cfg.file_bytes = 10 * 536;
  build(cfg, /*drop_first_tx=*/{9});  // last segment: no dupacks possible
  sender_->start();
  sim_.run();
  EXPECT_TRUE(sender_->stats().completed);
  EXPECT_GE(sender_->stats().timeouts, 1u);
}

TEST_F(LoopTest, MultipleLossesStillComplete) {
  TcpConfig cfg = small_cfg();
  cfg.file_bytes = 100 * 536;
  build(cfg, {3, 4, 5, 30, 55, 56, 80});
  sender_->start();
  sim_.run();
  EXPECT_TRUE(sender_->stats().completed);
  EXPECT_EQ(sink_->stats().unique_payload_bytes, cfg.file_bytes);
  EXPECT_EQ(sink_->rcv_next(), 100);
}

TEST_F(LoopTest, GoodputAccountingConsistent) {
  TcpConfig cfg = small_cfg();
  cfg.file_bytes = 60 * 536;
  build(cfg, {10, 25});
  sender_->start();
  sim_.run();
  const auto& snd = sender_->stats();
  const auto& snk = sink_->stats();
  EXPECT_EQ(snk.unique_payload_bytes, cfg.file_bytes);
  EXPECT_EQ(snd.payload_bytes_sent,
            cfg.file_bytes + snd.payload_bytes_retransmitted);
}

}  // namespace
}  // namespace wtcp::tcp
