#include "src/tcp/tcp_sink.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/simulator.hpp"

namespace wtcp::tcp {
namespace {

class SinkTest : public ::testing::Test {
 protected:
  SinkTest() {
    cfg_.mss = 536;
    cfg_.header_bytes = 40;
    cfg_.file_bytes = 10 * 536;
    sink_ = std::make_unique<TcpSink>(sim_, cfg_, 2, 0, "snk");
    sink_->set_downstream([this](net::PacketRef p) { acks_.push_back(std::move(p)); });
  }

  void data(std::int64_t seq, std::int32_t payload = 536) {
    sink_->handle_packet(net::make_tcp_data(sim_.packet_pool(), seq, payload, 40, 0, 2, sim_.now()));
  }
  std::int64_t last_ack() const { return acks_.back()->tcp->ack; }

  sim::Simulator sim_;
  TcpConfig cfg_;
  std::unique_ptr<TcpSink> sink_;
  std::vector<net::PacketRef> acks_;
};

TEST_F(SinkTest, AcksEveryInOrderSegmentCumulatively) {
  data(0);
  EXPECT_EQ(last_ack(), 1);
  data(1);
  EXPECT_EQ(last_ack(), 2);
  data(2);
  EXPECT_EQ(last_ack(), 3);
  EXPECT_EQ(acks_.size(), 3u);
  EXPECT_EQ(sink_->stats().unique_payload_bytes, 3 * 536);
}

TEST_F(SinkTest, OutOfOrderGeneratesDupacks) {
  data(0);
  data(2);  // hole at 1
  EXPECT_EQ(last_ack(), 1);  // duplicate ack
  data(3);
  EXPECT_EQ(last_ack(), 1);
  EXPECT_EQ(sink_->stats().out_of_order_segments, 2u);
  data(1);  // fills the hole; buffered 2,3 released
  EXPECT_EQ(last_ack(), 4);
  EXPECT_EQ(sink_->rcv_next(), 4);
  EXPECT_EQ(sink_->stats().unique_payload_bytes, 4 * 536);
}

TEST_F(SinkTest, DuplicateDataStillAcked) {
  data(0);
  data(0);
  EXPECT_EQ(acks_.size(), 2u);
  EXPECT_EQ(last_ack(), 1);
  EXPECT_EQ(sink_->stats().duplicate_segments, 1u);
  // Duplicate payload does not inflate the goodput numerator.
  EXPECT_EQ(sink_->stats().unique_payload_bytes, 536);
  EXPECT_EQ(sink_->stats().payload_bytes_received, 2 * 536);
}

TEST_F(SinkTest, BufferedDuplicateCounted) {
  data(3);
  data(3);
  EXPECT_EQ(sink_->stats().duplicate_segments, 1u);
  EXPECT_EQ(sink_->stats().out_of_order_segments, 1u);
}

TEST_F(SinkTest, CompletionFiresOnceWithTimestamp) {
  int completions = 0;
  sink_->on_complete = [&] { ++completions; };
  for (std::int64_t s = 0; s < 10; ++s) {
    sim_.after(sim::Time::milliseconds(100) * (s + 1),
               [this, s] { data(s); });
  }
  sim_.run();
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(sink_->stats().completed);
  EXPECT_EQ(sink_->stats().completion_time, sim::Time::seconds(1));
  // A stray duplicate after completion must not re-fire.
  data(9);
  EXPECT_EQ(completions, 1);
}

TEST_F(SinkTest, DeliveredWireBytesIncludeHeaders) {
  data(0);
  data(1);
  EXPECT_EQ(sink_->stats().delivered_wire_bytes, 2 * (536 + 40));
}

TEST_F(SinkTest, FirstDataTimeRecorded) {
  sim_.after(sim::Time::milliseconds(250), [this] { data(0); });
  sim_.run();
  EXPECT_EQ(sink_->stats().first_data_time, sim::Time::milliseconds(250));
}

TEST_F(SinkTest, NonDataPacketsIgnored) {
  sink_->handle_packet(net::make_control(sim_.packet_pool(), net::PacketType::kEbsn, 40, 1, 2, sim_.now()));
  EXPECT_TRUE(acks_.empty());
  EXPECT_EQ(sink_->stats().segments_received, 0u);
}

TEST_F(SinkTest, PartialFinalSegment) {
  // 9 full segments + trailing 100 bytes.
  cfg_.file_bytes = 9 * 536 + 100;
  sink_ = std::make_unique<TcpSink>(sim_, cfg_, 2, 0, "snk");
  sink_->set_downstream([this](net::PacketRef p) { acks_.push_back(std::move(p)); });
  for (std::int64_t s = 0; s < 9; ++s) data(s);
  EXPECT_FALSE(sink_->stats().completed);
  data(9, 100);
  EXPECT_TRUE(sink_->stats().completed);
  EXPECT_EQ(sink_->stats().unique_payload_bytes, cfg_.file_bytes);
}

TEST_F(SinkTest, AcksCarryConnectionId) {
  cfg_.conn = 9;
  sink_ = std::make_unique<TcpSink>(sim_, cfg_, 2, 0, "snk");
  sink_->set_downstream([this](net::PacketRef p) { acks_.push_back(std::move(p)); });
  data(0);
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_EQ(acks_[0]->tcp->conn, 9u);
}

TEST_F(SinkTest, ForcedDupacksRepeatCurrentPosition) {
  data(0);
  data(1);
  const std::size_t before = acks_.size();
  sink_->force_duplicate_acks(3);
  ASSERT_EQ(acks_.size(), before + 3);
  for (std::size_t i = before; i < acks_.size(); ++i) {
    EXPECT_EQ(acks_[i]->tcp->ack, 2);
  }
}

TEST_F(SinkTest, ForcedDupacksNoopBeforeDataOrAfterCompletion) {
  sink_->force_duplicate_acks(3);
  EXPECT_TRUE(acks_.empty());
  for (std::int64_t s = 0; s < 10; ++s) data(s);  // completes
  const std::size_t done = acks_.size();
  sink_->force_duplicate_acks(3);
  EXPECT_EQ(acks_.size(), done);
}

TEST_F(SinkTest, ManyHolesFilledInAnyOrder) {
  // Deliver evens then odds.
  for (std::int64_t s = 0; s < 10; s += 2) data(s);
  EXPECT_EQ(sink_->rcv_next(), 1);
  for (std::int64_t s = 9; s >= 1; s -= 2) data(s);
  EXPECT_EQ(sink_->rcv_next(), 10);
  EXPECT_TRUE(sink_->stats().completed);
  EXPECT_EQ(sink_->stats().unique_payload_bytes, 10 * 536);
}

}  // namespace
}  // namespace wtcp::tcp
