// Conformance suite over every CongestionControl strategy: whatever the
// flavor's loss response looks like, the window state it hands back to
// the sender must stay legal (cwnd >= 1, ssthresh >= 2 after any loss),
// recovery entry/exit must follow the declared shape, and the explicit
// feedback contract (EBSN untouched, quench collapses) must hold.
#include "src/tcp/cc/congestion_control.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/tcp/cc/strategies.hpp"

namespace wtcp::tcp {
namespace {

constexpr TcpFlavor kAllFlavors[] = {TcpFlavor::kTahoe, TcpFlavor::kReno,
                                     TcpFlavor::kNewReno, TcpFlavor::kWestwood,
                                     TcpFlavor::kCerl};

CcParams params() {
  CcParams p;
  p.awnd = 8.0;
  p.mss = 536;
  p.dupack_threshold = 3;
  return p;
}

CcAck at(double seconds, double acked = 1.0) {
  CcAck ev{};
  ev.now = sim::Time::from_seconds(seconds);
  ev.acked_segments = acked;
  ev.rtt_sample_valid = true;
  ev.rtt_sample = sim::Time::milliseconds(100);
  ev.srtt = sim::Time::milliseconds(100);
  return ev;
}

class CcConformance : public ::testing::TestWithParam<TcpFlavor> {
 protected:
  std::unique_ptr<CongestionControl> make() {
    return make_congestion_control(GetParam(), params());
  }
};

TEST_P(CcConformance, FactoryMatchesFlavorAndName) {
  auto cc = make();
  EXPECT_EQ(cc->flavor(), GetParam());
  EXPECT_STREQ(cc->name(), to_string(GetParam()));
}

TEST_P(CcConformance, InitialStateIsSlowStartFromOneSegment) {
  auto cc = make();
  EXPECT_DOUBLE_EQ(cc->cwnd(), 1.0);
  EXPECT_DOUBLE_EQ(cc->ssthresh(), params().awnd);
}

TEST_P(CcConformance, GrowthIsMonotonicAndClampedPastAwnd) {
  auto cc = make();
  double prev = cc->cwnd();
  for (int i = 0; i < 50; ++i) {
    cc->on_ack_stream(at(0.1 * i));
    cc->on_new_ack(at(0.1 * i));
    EXPECT_GE(cc->cwnd(), prev);
    prev = cc->cwnd();
  }
  EXPECT_LE(cc->cwnd(), params().awnd + 1.0);
}

TEST_P(CcConformance, DupackThresholdLeavesLegalState) {
  auto cc = make();
  for (int i = 0; i < 10; ++i) cc->on_new_ack(at(0.1 * i));
  const bool recovery = cc->on_dupack_threshold(at(1.5, 0.0));
  EXPECT_GE(cc->cwnd(), 1.0);
  EXPECT_GE(cc->ssthresh(), 2.0);
  // Tahoe restarts slow start; every other flavor enters fast recovery.
  EXPECT_EQ(recovery, GetParam() != TcpFlavor::kTahoe);
  if (recovery) {
    // Recovery dupacks inflate, the exit deflates back to a legal window.
    cc->on_recovery_dupack(at(1.6, 0.0));
    cc->on_recovery_exit(at(1.7));
    EXPECT_GE(cc->cwnd(), 1.0);
    EXPECT_GE(cc->ssthresh(), 2.0);
  }
}

TEST_P(CcConformance, TimeoutCollapsesToLegalSlowStartState) {
  auto cc = make();
  for (int i = 0; i < 10; ++i) cc->on_new_ack(at(0.1 * i));
  cc->on_timeout(at(2.0, 0.0));
  EXPECT_DOUBLE_EQ(cc->cwnd(), 1.0);
  EXPECT_GE(cc->ssthresh(), 2.0);
}

TEST_P(CcConformance, RepeatedLossesNeverBreachFloors) {
  auto cc = make();
  for (int round = 0; round < 6; ++round) {
    cc->on_new_ack(at(0.1 * round));
    cc->on_dupack_threshold(at(1.0 + round, 0.0));
    EXPECT_GE(cc->cwnd(), 1.0);
    EXPECT_GE(cc->ssthresh(), 2.0);
    cc->on_timeout(at(2.0 + round, 0.0));
    EXPECT_GE(cc->cwnd(), 1.0);
    EXPECT_GE(cc->ssthresh(), 2.0);
  }
}

TEST_P(CcConformance, PartialAckSupportMatchesFlavor) {
  auto cc = make();
  const bool stays = cc->partial_ack_stays_in_recovery();
  const bool plain_reno_semantics =
      GetParam() == TcpFlavor::kTahoe || GetParam() == TcpFlavor::kReno;
  EXPECT_EQ(stays, !plain_reno_semantics);
}

TEST_P(CcConformance, PartialAckDeflatesButNeverBelowSsthresh) {
  auto cc = make();
  for (int i = 0; i < 10; ++i) cc->on_new_ack(at(0.1 * i));
  cc->on_dupack_threshold(at(1.5, 0.0));
  const double ssthresh = cc->ssthresh();
  // A huge partial ACK may deflate at most down to ssthresh (RFC 6582).
  cc->on_partial_ack(at(1.6, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(cc->cwnd(), ssthresh);
  EXPECT_GE(cc->cwnd(), 1.0);
}

TEST_P(CcConformance, EbsnLeavesWindowUntouched) {
  auto cc = make();
  for (int i = 0; i < 5; ++i) cc->on_new_ack(at(0.1 * i));
  const double cwnd = cc->cwnd();
  const double ssthresh = cc->ssthresh();
  cc->on_explicit_feedback(CcFeedback::kEbsn);
  EXPECT_DOUBLE_EQ(cc->cwnd(), cwnd);
  EXPECT_DOUBLE_EQ(cc->ssthresh(), ssthresh);
}

TEST_P(CcConformance, QuenchCollapsesWindowKeepsSsthresh) {
  auto cc = make();
  for (int i = 0; i < 5; ++i) cc->on_new_ack(at(0.1 * i));
  const double ssthresh = cc->ssthresh();
  cc->on_explicit_feedback(CcFeedback::kSourceQuench);
  EXPECT_DOUBLE_EQ(cc->cwnd(), 1.0);
  EXPECT_DOUBLE_EQ(cc->ssthresh(), ssthresh);
}

INSTANTIATE_TEST_SUITE_P(AllFlavors, CcConformance,
                         ::testing::ValuesIn(kAllFlavors),
                         [](const ::testing::TestParamInfo<TcpFlavor>& tpi) {
                           return std::string(to_string(tpi.param));
                         });

// The classic strategies must reproduce the pre-extraction arithmetic
// exactly (the hexfloat goldens pin the sender; this pins the strategy).
TEST(CcClassic, TahoeGrowthMatchesLegacyMath) {
  auto cc = make_congestion_control(TcpFlavor::kTahoe, params());
  // Slow start doubles per RTT: +1 per ACK while cwnd < ssthresh (8).
  for (int i = 0; i < 7; ++i) cc->on_new_ack(at(0.1 * i));
  EXPECT_DOUBLE_EQ(cc->cwnd(), 8.0);
  // Congestion avoidance: cwnd += 1/cwnd.
  cc->on_new_ack(at(0.8));
  EXPECT_DOUBLE_EQ(cc->cwnd(), 8.0 + 1.0 / 8.0);
}

TEST(CcClassic, RenoLossHalvesAndInflatesByDupthresh) {
  auto cc = make_congestion_control(TcpFlavor::kReno, params());
  for (int i = 0; i < 7; ++i) cc->on_new_ack(at(0.1 * i));  // cwnd 8
  ASSERT_TRUE(cc->on_dupack_threshold(at(1.0, 0.0)));
  EXPECT_DOUBLE_EQ(cc->ssthresh(), 4.0);  // floor(8/2)
  EXPECT_DOUBLE_EQ(cc->cwnd(), 7.0);      // ssthresh + 3 dupacks
  cc->on_recovery_exit(at(1.1));
  EXPECT_DOUBLE_EQ(cc->cwnd(), 4.0);  // deflate exactly, no growth
}

TEST(CcClassic, NewRenoPartialAckDeflationMath) {
  auto cc = make_congestion_control(TcpFlavor::kNewReno, params());
  for (int i = 0; i < 7; ++i) cc->on_new_ack(at(0.1 * i));  // cwnd 8
  ASSERT_TRUE(cc->on_dupack_threshold(at(1.0, 0.0)));       // ssthresh 4, cwnd 7
  // RFC 6582: cwnd = max(ssthresh, cwnd - acked + 1).
  cc->on_partial_ack(at(1.1, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(cc->cwnd(), 6.0);  // 7 - 2 + 1
  cc->on_partial_ack(at(1.2, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(cc->cwnd(), 5.0);
  cc->on_partial_ack(at(1.3, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(cc->cwnd(), 4.0);  // clamped at ssthresh
}

}  // namespace
}  // namespace wtcp::tcp
