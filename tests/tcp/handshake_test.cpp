// Optional SYN/FIN connection lifecycle (TcpConfig::connect_handshake).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/tcp/tahoe_sender.hpp"
#include "src/tcp/tcp_sink.hpp"

namespace wtcp::tcp {
namespace {

TcpConfig hs_cfg() {
  TcpConfig cfg;
  cfg.connect_handshake = true;
  cfg.mss = 536;
  cfg.header_bytes = 40;
  cfg.window_bytes = 8 * 536;
  cfg.file_bytes = 20 * 536;
  cfg.rto.initial_rto = sim::Time::seconds(1);
  return cfg;
}

TEST(ConnState, Names) {
  EXPECT_STREQ(to_string(ConnState::kClosed), "closed");
  EXPECT_STREQ(to_string(ConnState::kSynSent), "syn-sent");
  EXPECT_STREQ(to_string(ConnState::kEstablished), "established");
  EXPECT_STREQ(to_string(ConnState::kFinSent), "fin-sent");
  EXPECT_STREQ(to_string(ConnState::kDone), "done");
}

// Direct-drive harness.
class HandshakeTest : public ::testing::Test {
 protected:
  void build(TcpConfig cfg) {
    sender_ = std::make_unique<TcpSender>(sim_, cfg, 0, 2, "src");
    sender_->set_downstream([this](net::PacketRef p) { sent_.push_back(std::move(p)); });
  }

  sim::Simulator sim_;
  std::unique_ptr<TcpSender> sender_;
  std::vector<net::PacketRef> sent_;
};

TEST_F(HandshakeTest, StartSendsSynNotData) {
  build(hs_cfg());
  sender_->start();
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_TRUE(sent_[0]->tcp->syn);
  EXPECT_EQ(sent_[0]->tcp->payload, 0);
  EXPECT_EQ(sent_[0]->size_bytes, 40);
  EXPECT_EQ(sender_->conn_state(), ConnState::kSynSent);
}

TEST_F(HandshakeTest, SynAckEstablishesAndStartsDataWithRttSample) {
  build(hs_cfg());
  sender_->start();
  sim_.scheduler().run_until(sim::Time::milliseconds(300));
  net::PacketRef synack = net::make_tcp_ack(sim_.packet_pool(), 0, 40, 2, 0, sim_.now());
  synack->tcp->syn = true;
  sender_->handle_packet(std::move(synack));
  EXPECT_EQ(sender_->conn_state(), ConnState::kEstablished);
  EXPECT_EQ(sender_->stats().rtt_samples, 1u);
  ASSERT_EQ(sent_.size(), 2u);  // SYN + first data segment (cwnd 1)
  EXPECT_FALSE(sent_[1]->tcp->syn);
  EXPECT_EQ(sent_[1]->tcp->seq, 0);
}

TEST_F(HandshakeTest, SynRetransmittedOnTimeoutWithBackoff) {
  build(hs_cfg());
  sender_->start();
  sim_.run(sim::Time::seconds(4));  // initial RTO 1 s, doubling
  EXPECT_GE(sender_->stats().syn_sent, 3u);
  EXPECT_EQ(sender_->conn_state(), ConnState::kSynSent);
  for (const auto& p : sent_) EXPECT_TRUE(p->tcp->syn);
  // A late SYN-ACK after retransmissions yields no RTT sample (Karn).
  net::PacketRef synack = net::make_tcp_ack(sim_.packet_pool(), 0, 40, 2, 0, sim_.now());
  synack->tcp->syn = true;
  sender_->handle_packet(std::move(synack));
  EXPECT_EQ(sender_->stats().rtt_samples, 0u);
  EXPECT_EQ(sender_->rto_estimator().backoff_shift(), 0);
}

TEST_F(HandshakeTest, NormalAcksIgnoredWhileSynSent) {
  build(hs_cfg());
  sender_->start();
  sender_->handle_packet(net::make_tcp_ack(sim_.packet_pool(), 1, 40, 2, 0, sim_.now()));
  EXPECT_EQ(sender_->conn_state(), ConnState::kSynSent);
  EXPECT_EQ(sent_.size(), 1u);
}

// Sink side.
class SinkHandshakeTest : public ::testing::Test {
 protected:
  SinkHandshakeTest() {
    cfg_ = hs_cfg();
    sink_ = std::make_unique<TcpSink>(sim_, cfg_, 2, 0, "snk");
    sink_->set_downstream([this](net::PacketRef p) { acks_.push_back(std::move(p)); });
  }

  sim::Simulator sim_;
  TcpConfig cfg_;
  std::unique_ptr<TcpSink> sink_;
  std::vector<net::PacketRef> acks_;
};

TEST_F(SinkHandshakeTest, SynGetsSynAck) {
  net::PacketRef syn = sim_.packet_pool().acquire();
  syn->type = net::PacketType::kTcpData;
  syn->size_bytes = 40;
  syn->tcp = net::TcpHeader{.seq = -1, .payload = 0, .syn = true};
  sink_->handle_packet(syn.share());
  sink_->handle_packet(std::move(syn));  // duplicate SYN re-acked
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_TRUE(acks_[0]->tcp->syn);
  EXPECT_EQ(acks_[0]->tcp->ack, 0);
  EXPECT_EQ(sink_->stats().syns_received, 2u);
  EXPECT_EQ(sink_->stats().segments_received, 0u);  // no data counted
}

TEST_F(SinkHandshakeTest, FinAckedOnlyAfterAllData) {
  net::PacketRef fin = sim_.packet_pool().acquire();
  fin->type = net::PacketType::kTcpData;
  fin->size_bytes = 40;
  fin->tcp = net::TcpHeader{.seq = 20, .payload = 0, .fin = true};
  // FIN before data: degenerates to a plain (dup)ack.
  sink_->handle_packet(fin.share());
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_FALSE(acks_[0]->tcp->fin);
  EXPECT_EQ(acks_[0]->tcp->ack, 0);
  // Deliver everything, then FIN.
  for (std::int64_t s = 0; s < 20; ++s) {
    sink_->handle_packet(
        net::make_tcp_data(sim_.packet_pool(), s, 536, 40, 0, 2, sim_.now()));
  }
  sink_->handle_packet(std::move(fin));
  EXPECT_TRUE(acks_.back()->tcp->fin);
  EXPECT_EQ(acks_.back()->tcp->ack, 21);
  EXPECT_EQ(sink_->stats().fins_received, 1u);
}

// Closed loop: full lifecycle over a delayed path.
TEST(HandshakeLoop, FullLifecycle) {
  sim::Simulator sim;
  TcpConfig cfg = hs_cfg();
  TcpSender sender(sim, cfg, 0, 2, "src");
  TcpSink sink(sim, cfg, 2, 0, "snk");
  const sim::Time delay = sim::Time::milliseconds(50);
  sender.set_downstream([&](net::PacketRef p) {
    sim.after(delay, [&sink, p = std::move(p)]() mutable {
      sink.handle_packet(std::move(p));
    });
  });
  sink.set_downstream([&](net::PacketRef p) {
    sim.after(delay, [&sender, p = std::move(p)]() mutable {
      sender.handle_packet(std::move(p));
    });
  });
  sender.start();
  sim.run();
  EXPECT_TRUE(sender.stats().completed);
  EXPECT_EQ(sender.conn_state(), ConnState::kDone);
  EXPECT_EQ(sender.stats().syn_sent, 1u);
  EXPECT_EQ(sender.stats().fin_sent, 1u);
  EXPECT_TRUE(sink.stats().completed);
  EXPECT_EQ(sink.stats().unique_payload_bytes, cfg.file_bytes);
  EXPECT_EQ(sender.stats().timeouts, 0u);
}

TEST(HandshakeLoop, LostSynAndFinStillComplete) {
  sim::Simulator sim;
  TcpConfig cfg = hs_cfg();
  TcpSender sender(sim, cfg, 0, 2, "src");
  TcpSink sink(sim, cfg, 2, 0, "snk");
  int syn_drops = 1, fin_drops = 1;
  sender.set_downstream([&](net::PacketRef p) {
    if (p->tcp->syn && syn_drops > 0) {
      --syn_drops;
      return;
    }
    if (p->tcp->fin && fin_drops > 0) {
      --fin_drops;
      return;
    }
    sim.after(sim::Time::milliseconds(50), [&sink, p = std::move(p)]() mutable {
      sink.handle_packet(std::move(p));
    });
  });
  sink.set_downstream([&](net::PacketRef p) {
    sim.after(sim::Time::milliseconds(50), [&sender, p = std::move(p)]() mutable {
      sender.handle_packet(std::move(p));
    });
  });
  sender.start();
  sim.run();
  EXPECT_TRUE(sender.stats().completed);
  EXPECT_EQ(sender.stats().syn_sent, 2u);
  EXPECT_EQ(sender.stats().fin_sent, 2u);
}

}  // namespace
}  // namespace wtcp::tcp
