// Delayed-ACK receiver mode (RFC 1122 style): coalesce in-order ACKs,
// never delay a duplicate ACK.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/tcp/tcp_sink.hpp"

namespace wtcp::tcp {
namespace {

class DelackTest : public ::testing::Test {
 protected:
  DelackTest() {
    cfg_.mss = 536;
    cfg_.header_bytes = 40;
    cfg_.file_bytes = 20 * 536;
    cfg_.delayed_ack = true;
    cfg_.delack_timeout = sim::Time::milliseconds(200);
    sink_ = std::make_unique<TcpSink>(sim_, cfg_, 2, 0, "snk");
    sink_->set_downstream([this](net::PacketRef p) { acks_.push_back(std::move(p)); });
  }

  void data(std::int64_t seq) {
    sink_->handle_packet(net::make_tcp_data(sim_.packet_pool(), seq, 536, 40, 0, 2, sim_.now()));
  }

  sim::Simulator sim_;
  TcpConfig cfg_;
  std::unique_ptr<TcpSink> sink_;
  std::vector<net::PacketRef> acks_;
};

TEST_F(DelackTest, EverySecondSegmentAcked) {
  data(0);
  EXPECT_TRUE(acks_.empty());  // first in-order segment: delayed
  data(1);
  ASSERT_EQ(acks_.size(), 1u);  // second: immediate cumulative ACK
  EXPECT_EQ(acks_[0]->tcp->ack, 2);
  data(2);
  EXPECT_EQ(acks_.size(), 1u);
  data(3);
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_EQ(acks_[1]->tcp->ack, 4);
  EXPECT_EQ(sink_->stats().acks_delayed, 2u);
}

TEST_F(DelackTest, TimerFlushesLoneSegment) {
  data(0);
  EXPECT_TRUE(acks_.empty());
  sim_.run();  // delack timer fires at 200 ms
  ASSERT_EQ(acks_.size(), 1u);
  EXPECT_EQ(acks_[0]->tcp->ack, 1);
  EXPECT_EQ(sim_.now(), sim::Time::milliseconds(200));
}

TEST_F(DelackTest, OutOfOrderAckedImmediately) {
  data(0);
  data(1);  // flushes: ack 2
  ASSERT_EQ(acks_.size(), 1u);
  data(3);  // hole at 2: dupack NOW
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_EQ(acks_[1]->tcp->ack, 2);
  data(4);  // still out of order: another immediate dupack
  ASSERT_EQ(acks_.size(), 3u);
}

TEST_F(DelackTest, HoleFillAckedImmediately) {
  data(0);
  data(1);
  data(3);  // dupack
  data(2);  // fills the hole: buffered data exists during processing ->
            // immediate ACK covering everything
  ASSERT_EQ(acks_.size(), 3u);
  EXPECT_EQ(acks_.back()->tcp->ack, 4);
}

TEST_F(DelackTest, DuplicateAckedImmediately) {
  data(0);
  data(1);
  data(1);  // duplicate
  ASSERT_EQ(acks_.size(), 2u);
  EXPECT_EQ(acks_.back()->tcp->ack, 2);
}

TEST_F(DelackTest, FinalSegmentAckedImmediately) {
  for (std::int64_t s = 0; s < 20; ++s) data(s);
  // 20 segments: acks at every 2nd + final flush; the last data arrival
  // completes the transfer and must be acked without waiting.
  EXPECT_EQ(acks_.back()->tcp->ack, 20);
  EXPECT_TRUE(sink_->stats().completed);
  EXPECT_TRUE(acks_.size() >= 10u);
}

TEST_F(DelackTest, DisabledModeAcksEverySegment) {
  cfg_.delayed_ack = false;
  sink_ = std::make_unique<TcpSink>(sim_, cfg_, 2, 0, "snk");
  sink_->set_downstream([this](net::PacketRef p) { acks_.push_back(std::move(p)); });
  acks_.clear();
  for (std::int64_t s = 0; s < 5; ++s) data(s);
  EXPECT_EQ(acks_.size(), 5u);
}

}  // namespace
}  // namespace wtcp::tcp
