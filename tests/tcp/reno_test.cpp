// TCP-Reno flavor: fast recovery semantics.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/tcp/tahoe_sender.hpp"
#include "src/tcp/tcp_sink.hpp"

namespace wtcp::tcp {
namespace {

TcpConfig reno_cfg() {
  TcpConfig cfg;
  cfg.flavor = TcpFlavor::kReno;
  cfg.mss = 536;
  cfg.header_bytes = 40;
  cfg.window_bytes = 16 * 536;  // 16-segment window
  cfg.file_bytes = 100 * 536;
  cfg.rto.granularity = sim::Time::milliseconds(100);
  cfg.rto.initial_rto = sim::Time::seconds(1);
  return cfg;
}

class RenoTest : public ::testing::Test {
 protected:
  void build(TcpConfig cfg) {
    sender_ = std::make_unique<TcpSender>(sim_, cfg, 0, 2, "src");
    sender_->set_downstream([this](net::PacketRef p) { sent_.push_back(std::move(p)); });
  }
  void ack(std::int64_t next_expected) {
    sender_->handle_packet(net::make_tcp_ack(sim_.packet_pool(), next_expected, 40, 2, 0, sim_.now()));
  }

  sim::Simulator sim_;
  std::unique_ptr<TcpSender> sender_;
  std::vector<net::PacketRef> sent_;
};

TEST(TcpFlavor, Names) {
  EXPECT_STREQ(to_string(TcpFlavor::kTahoe), "tahoe");
  EXPECT_STREQ(to_string(TcpFlavor::kReno), "reno");
  EXPECT_STREQ(to_string(TcpFlavor::kNewReno), "newreno");
  EXPECT_STREQ(to_string(TcpFlavor::kWestwood), "westwood");
  EXPECT_STREQ(to_string(TcpFlavor::kCerl), "cerl");
}

TEST_F(RenoTest, FastRetransmitEntersFastRecovery) {
  build(reno_cfg());
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);  // cwnd 8, una 7
  ASSERT_DOUBLE_EQ(sender_->cwnd(), 8.0);
  for (int i = 0; i < 3; ++i) ack(next);  // 3 dupacks
  EXPECT_TRUE(sender_->in_fast_recovery());
  // ssthresh = 4, cwnd = ssthresh + 3 = 7 (not 1, unlike Tahoe).
  EXPECT_DOUBLE_EQ(sender_->ssthresh(), 4.0);
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 7.0);
  // The hole was retransmitted...
  EXPECT_TRUE(sent_.back()->tcp->retransmit);
  EXPECT_EQ(sent_.back()->tcp->seq, next);
  // ...and snd_nxt was NOT pulled back (no go-back-N).
  EXPECT_GT(sender_->snd_nxt(), sender_->snd_una());
}

TEST_F(RenoTest, WindowInflationSendsNewDataPerExtraDupack) {
  build(reno_cfg());
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);
  for (int i = 0; i < 3; ++i) ack(next);  // enter recovery
  const std::size_t before = sent_.size();
  const std::int64_t nxt_before = sender_->snd_nxt();
  // Each further dupack inflates cwnd by 1 and may release a new segment.
  for (int i = 0; i < 4; ++i) ack(next);
  EXPECT_GT(sender_->snd_nxt(), nxt_before);
  EXPECT_GT(sent_.size(), before);
  for (std::size_t i = before; i < sent_.size(); ++i) {
    EXPECT_FALSE(sent_[i]->tcp->retransmit);  // new data, not retransmissions
  }
}

TEST_F(RenoTest, NewAckDeflatesToSsthresh) {
  build(reno_cfg());
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);
  for (int i = 0; i < 5; ++i) ack(next);  // recovery + 2 inflation dupacks
  EXPECT_TRUE(sender_->in_fast_recovery());
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 9.0);  // 4 + 3 + 2
  ack(sender_->snd_nxt());                 // everything outstanding acked
  EXPECT_FALSE(sender_->in_fast_recovery());
  // Deflated to ssthresh exactly: RFC 6582 gives the exiting ACK no
  // additive increase (the window opens again on the NEXT new ACK).
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 4.0);
}

TEST_F(RenoTest, TimeoutAbortsFastRecovery) {
  build(reno_cfg());
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);
  for (int i = 0; i < 3; ++i) ack(next);
  EXPECT_TRUE(sender_->in_fast_recovery());
  sim_.run(sim::Time::seconds(30));  // no more acks: RTO fires
  EXPECT_FALSE(sender_->in_fast_recovery());
  EXPECT_GE(sender_->stats().timeouts, 1u);
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 1.0);
}

TEST_F(RenoTest, TahoeNeverEntersFastRecovery) {
  TcpConfig cfg = reno_cfg();
  cfg.flavor = TcpFlavor::kTahoe;
  build(cfg);
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);
  for (int i = 0; i < 6; ++i) ack(next);
  EXPECT_FALSE(sender_->in_fast_recovery());
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 1.0);
}

TEST_F(RenoTest, PlainRenoExitsRecoveryOnPartialAck) {
  build(reno_cfg());
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);  // una 7, nxt 15
  for (int i = 0; i < 3; ++i) ack(next);    // enter recovery
  ASSERT_TRUE(sender_->in_fast_recovery());
  // A partial ACK (8 < highest sent 14) still ends plain Reno's recovery.
  ack(8);
  EXPECT_FALSE(sender_->in_fast_recovery());
}

TEST_F(RenoTest, NewRenoStaysInRecoveryAcrossPartialAcks) {
  TcpConfig cfg = reno_cfg();
  cfg.flavor = TcpFlavor::kNewReno;
  build(cfg);
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);  // una 7, nxt 15, cwnd 8
  for (int i = 0; i < 3; ++i) ack(next);    // recovery; rtx of 7
  ASSERT_TRUE(sender_->in_fast_recovery());
  const std::size_t before = sent_.size();

  // Partial ACK: 7 got through but 9 is also missing.
  ack(9);
  EXPECT_TRUE(sender_->in_fast_recovery());
  // NewReno immediately retransmits the next hole (seq 9).
  ASSERT_EQ(sent_.size(), before + 1);
  EXPECT_EQ(sent_.back()->tcp->seq, 9);
  EXPECT_TRUE(sent_.back()->tcp->retransmit);
  EXPECT_EQ(sender_->snd_una(), 9);

  // Another partial ACK: hole at 12.
  ack(12);
  EXPECT_TRUE(sender_->in_fast_recovery());
  EXPECT_EQ(sent_.back()->tcp->seq, 12);

  // Full ACK past `recover` (14 was the highest sent at loss): exit,
  // deflating to ssthresh with no additive increase on the exiting ACK.
  ack(15);
  EXPECT_FALSE(sender_->in_fast_recovery());
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 4.0);
}

TEST_F(RenoTest, NewRenoPartialAckDeflatesTowardSsthresh) {
  TcpConfig cfg = reno_cfg();
  cfg.flavor = TcpFlavor::kNewReno;
  build(cfg);
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);
  for (int i = 0; i < 6; ++i) ack(next);  // recovery + 3 inflation dupacks
  const double inflated = sender_->cwnd();  // 4 + 3 + 3 = 10
  ASSERT_DOUBLE_EQ(inflated, 10.0);
  ack(9);  // partial ack of 2 segments: cwnd = max(4, 10 - 2 + 1) = 9
  EXPECT_DOUBLE_EQ(sender_->cwnd(), 9.0);
  EXPECT_GE(sender_->cwnd(), sender_->ssthresh());
}

TEST_F(RenoTest, NewRenoClosedLoopMultiLossAvoidsTimeout) {
  TcpConfig cfg = reno_cfg();
  cfg.flavor = TcpFlavor::kNewReno;
  auto sink = std::make_unique<TcpSink>(sim_, cfg, 2, 0, "snk");
  build(cfg);
  std::set<std::int64_t> drops{30, 32, 34};  // three losses in one window
  sender_->set_downstream([&, this](net::PacketRef p) {
    if (!p->tcp->retransmit && drops.contains(p->tcp->seq)) return;
    sim_.after(sim::Time::milliseconds(50), [&, p = std::move(p)]() mutable {
      sink->handle_packet(std::move(p));
    });
  });
  sink->set_downstream([this](net::PacketRef p) {
    sim_.after(sim::Time::milliseconds(50), [this, p = std::move(p)]() mutable {
      sender_->handle_packet(std::move(p));
    });
  });
  sender_->start();
  sim_.run();
  EXPECT_TRUE(sender_->stats().completed);
  // One fast-recovery episode heals all three holes without a timeout.
  EXPECT_EQ(sender_->stats().timeouts, 0u);
  EXPECT_EQ(sender_->stats().fast_retransmits, 1u);
  EXPECT_EQ(sender_->stats().segments_retransmitted, 3u);
}

// Closed-loop: Reno recovers a single loss without collapsing to cwnd 1.
TEST_F(RenoTest, ClosedLoopSingleLossKeepsPipeFull) {
  TcpConfig cfg = reno_cfg();
  auto sink = std::make_unique<TcpSink>(sim_, cfg, 2, 0, "snk");
  build(cfg);
  std::set<std::int64_t> drops{30};
  sender_->set_downstream([&, this](net::PacketRef p) {
    if (!p->tcp->retransmit && drops.contains(p->tcp->seq)) return;
    sim_.after(sim::Time::milliseconds(50), [&, p = std::move(p)]() mutable {
      sink->handle_packet(std::move(p));
    });
  });
  sink->set_downstream([this](net::PacketRef p) {
    sim_.after(sim::Time::milliseconds(50), [this, p = std::move(p)]() mutable {
      sender_->handle_packet(std::move(p));
    });
  });
  sender_->start();
  sim_.run();
  EXPECT_TRUE(sender_->stats().completed);
  EXPECT_EQ(sender_->stats().fast_retransmits, 1u);
  EXPECT_EQ(sender_->stats().timeouts, 0u);
  EXPECT_EQ(sender_->stats().segments_retransmitted, 1u);
}

}  // namespace
}  // namespace wtcp::tcp
