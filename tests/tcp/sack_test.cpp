// Selective acknowledgments (RFC 2018, TcpConfig::sack_enabled).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/tcp/tahoe_sender.hpp"
#include "src/tcp/tcp_sink.hpp"

namespace wtcp::tcp {
namespace {

TcpConfig sack_cfg(TcpFlavor flavor = TcpFlavor::kNewReno) {
  TcpConfig cfg;
  cfg.flavor = flavor;
  cfg.sack_enabled = true;
  cfg.mss = 536;
  cfg.header_bytes = 40;
  cfg.window_bytes = 16 * 536;
  cfg.file_bytes = 100 * 536;
  cfg.rto.initial_rto = sim::Time::seconds(1);
  return cfg;
}

// ---------------------------------------------------------------------------
// Sink: block generation
// ---------------------------------------------------------------------------

class SackSinkTest : public ::testing::Test {
 protected:
  SackSinkTest() {
    cfg_ = sack_cfg();
    sink_ = std::make_unique<TcpSink>(sim_, cfg_, 2, 0, "snk");
    sink_->set_downstream([this](net::PacketRef p) { acks_.push_back(std::move(p)); });
  }
  void data(std::int64_t seq) {
    sink_->handle_packet(net::make_tcp_data(sim_.packet_pool(), seq, 536, 40, 0, 2, sim_.now()));
  }

  sim::Simulator sim_;
  TcpConfig cfg_;
  std::unique_ptr<TcpSink> sink_;
  std::vector<net::PacketRef> acks_;
};

TEST_F(SackSinkTest, InOrderAcksCarryNoBlocks) {
  data(0);
  data(1);
  EXPECT_FALSE(acks_.back()->tcp->has_sack());
}

TEST_F(SackSinkTest, DupacksCarryBufferedRuns) {
  data(0);
  data(2);
  data(3);
  data(5);
  const net::TcpHeader& h = *acks_.back()->tcp;
  EXPECT_EQ(h.ack, 1);
  ASSERT_TRUE(h.has_sack());
  EXPECT_EQ(h.sack[0].begin, 2);
  EXPECT_EQ(h.sack[0].end, 4);
  EXPECT_EQ(h.sack[1].begin, 5);
  EXPECT_EQ(h.sack[1].end, 6);
  EXPECT_TRUE(h.sack[2].empty());
}

TEST_F(SackSinkTest, AtMostThreeBlocks) {
  data(2);
  data(4);
  data(6);
  data(8);  // four runs; only three fit
  const net::TcpHeader& h = *acks_.back()->tcp;
  EXPECT_FALSE(h.sack[2].empty());
  EXPECT_EQ(h.sack[2].begin, 6);
}

TEST_F(SackSinkTest, DisabledMeansNoBlocks) {
  cfg_.sack_enabled = false;
  sink_ = std::make_unique<TcpSink>(sim_, cfg_, 2, 0, "snk");
  sink_->set_downstream([this](net::PacketRef p) { acks_.push_back(std::move(p)); });
  data(3);
  EXPECT_FALSE(acks_.back()->tcp->has_sack());
}

// ---------------------------------------------------------------------------
// Sender: scoreboard-directed recovery
// ---------------------------------------------------------------------------

class SackSenderTest : public ::testing::Test {
 protected:
  void build(TcpConfig cfg) {
    sender_ = std::make_unique<TcpSender>(sim_, cfg, 0, 2, "src");
    sender_->set_downstream([this](net::PacketRef p) { sent_.push_back(std::move(p)); });
  }
  void ack(std::int64_t a, std::vector<net::SackBlock> blocks = {}) {
    net::PacketRef p = net::make_tcp_ack(sim_.packet_pool(), a, 40, 2, 0, sim_.now());
    for (std::size_t i = 0; i < blocks.size() && i < 3; ++i) {
      p->tcp->sack[i] = blocks[i];
    }
    sender_->handle_packet(std::move(p));
  }

  sim::Simulator sim_;
  std::unique_ptr<TcpSender> sender_;
  std::vector<net::PacketRef> sent_;
};

TEST_F(SackSenderTest, ScoreboardTracksBlocks) {
  build(sack_cfg());
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);
  ack(next, {{9, 11}});
  EXPECT_EQ(sender_->sacked_count(), 2u);
  ack(next + 1);  // cumulative advance prunes nothing below 8... seqs 9,10 stay
  EXPECT_EQ(sender_->sacked_count(), 2u);
}

TEST_F(SackSenderTest, RecoveryRetransmitsHolesNotSackedData) {
  build(sack_cfg());
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);  // una 7, nxt 15
  // Segments 7 and 9 lost; 8 and 10.. received: dupacks carry the blocks.
  ack(7, {{8, 9}});
  ack(7, {{8, 9}, {10, 13}});
  ack(7, {{8, 9}, {10, 14}});  // third dupack -> fast retransmit of 7
  ASSERT_TRUE(sender_->in_fast_recovery());
  EXPECT_EQ(sent_.back()->tcp->seq, 7);
  // Further dupacks: the next hole is 9 (8 is SACKed), never 8.
  ack(7, {{8, 9}, {10, 14}});
  EXPECT_EQ(sent_.back()->tcp->seq, 9);
  EXPECT_TRUE(sent_.back()->tcp->retransmit);
  // More dupacks: no holes left below recover -> new data, not rtx.
  ack(7, {{8, 9}, {10, 14}});
  ack(7, {{8, 9}, {10, 14}});
  EXPECT_FALSE(sent_.back()->tcp->retransmit);
}

TEST_F(SackSenderTest, GoBackNSkipsSackedSegments) {
  TcpConfig cfg = sack_cfg(TcpFlavor::kTahoe);
  build(cfg);
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);  // una 7, segments 7..14 in flight
  // Receiver holds 8..14 but 7 was lost; report via SACK, then let the
  // retransmission timer fire (only 2 dupacks: no fast retransmit).
  ack(7, {{8, 15}});
  ack(7, {{8, 15}});
  const std::size_t before = sent_.size();
  sim_.run(sim::Time::milliseconds(400));  // first RTO fires
  ASSERT_EQ(sender_->stats().timeouts, 1u);
  // Go-back-N must retransmit ONLY segment 7; 8..14 are SACKed.
  ASSERT_EQ(sent_.size(), before + 1);
  EXPECT_TRUE(sent_.back()->tcp->retransmit);
  EXPECT_EQ(sent_.back()->tcp->seq, 7);
  // The retransmission fills the hole; the cumulative ACK releases new
  // data and nothing from 8..14 is ever resent.
  ack(15);
  for (const auto& p : sent_) {
    if (p->tcp->retransmit) {
      EXPECT_EQ(p->tcp->seq, 7);
    }
  }
  EXPECT_GT(sender_->snd_nxt(), 15);
}

TEST_F(SackSenderTest, HoleRetransmitRearmsTheRetransmissionTimer) {
  build(sack_cfg());
  sender_->start();
  std::int64_t next = 0;
  for (int i = 0; i < 7; ++i) ack(++next);  // una 7, nxt 15
  ack(7, {{8, 9}});
  ack(7, {{8, 9}, {10, 13}});
  ack(7, {{8, 9}, {10, 14}});  // third dupack: fast rtx of 7, timer restarted
  ASSERT_TRUE(sender_->in_fast_recovery());
  const sim::Time before = sender_->rtx_deadline();
  ASSERT_GT(before, sim::Time::zero());
  // 60 ms later another dupack directs retransmission of hole 9.  That
  // retransmission is now the oldest unguarded data, so the timer must be
  // restarted from NOW — not left at the deadline armed for segment 7.
  sim_.after(sim::Time::milliseconds(60),
             [this] { ack(7, {{8, 9}, {10, 14}}); });
  sim_.run(sim::Time::milliseconds(60));
  EXPECT_EQ(sent_.back()->tcp->seq, 9);
  EXPECT_TRUE(sent_.back()->tcp->retransmit);
  EXPECT_EQ(sender_->rtx_deadline(), before + sim::Time::milliseconds(60));
}

// ---------------------------------------------------------------------------
// Closed loop: SACK vs go-back-N retransmission volume
// ---------------------------------------------------------------------------

std::uint64_t run_loop(bool sack, TcpFlavor flavor) {
  sim::Simulator sim;
  TcpConfig cfg = sack_cfg(flavor);
  cfg.sack_enabled = sack;
  TcpSender sender(sim, cfg, 0, 2, "src");
  TcpSink sink(sim, cfg, 2, 0, "snk");
  const std::set<std::int64_t> drops{30, 33, 36, 60, 63, 80};
  sender.set_downstream([&](net::PacketRef p) {
    if (!p->tcp->retransmit && drops.contains(p->tcp->seq)) return;
    sim.after(sim::Time::milliseconds(50), [&sink, p = std::move(p)]() mutable {
      sink.handle_packet(std::move(p));
    });
  });
  sink.set_downstream([&](net::PacketRef p) {
    sim.after(sim::Time::milliseconds(50), [&sender, p = std::move(p)]() mutable {
      sender.handle_packet(std::move(p));
    });
  });
  sender.start();
  sim.run();
  EXPECT_TRUE(sender.stats().completed);
  EXPECT_TRUE(sink.stats().completed);
  return sender.stats().segments_retransmitted;
}

TEST(SackLoop, SackNeverRetransmitsMoreThanGoBackN) {
  for (TcpFlavor flavor :
       {TcpFlavor::kTahoe, TcpFlavor::kReno, TcpFlavor::kNewReno}) {
    const std::uint64_t without = run_loop(false, flavor);
    const std::uint64_t with = run_loop(true, flavor);
    EXPECT_LE(with, without) << to_string(flavor);
    EXPECT_GE(with, 6u) << to_string(flavor);  // the genuinely lost segments
  }
}

TEST(SackLoop, NewRenoSackRetransmitsExactlyTheLosses) {
  EXPECT_EQ(run_loop(true, TcpFlavor::kNewReno), 6u);
}

TEST(SackLoop, LostHoleRetransmissionIsRecoveredByTheRearmedTimer) {
  sim::Simulator sim;
  TcpConfig cfg = sack_cfg(TcpFlavor::kNewReno);
  TcpSender sender(sim, cfg, 0, 2, "src");
  TcpSink sink(sim, cfg, 2, 0, "snk");
  const std::set<std::int64_t> drops{30, 33};
  bool dropped_rtx = false;
  sender.set_downstream([&](net::PacketRef p) {
    if (!p->tcp->retransmit && drops.contains(p->tcp->seq)) return;
    // Also lose the SACK-directed retransmission of the second hole.  The
    // scoreboard never re-selects an episode hole, so only the (freshly
    // rearmed) retransmission timer can recover it.
    if (p->tcp->retransmit && p->tcp->seq == 33 && !dropped_rtx) {
      dropped_rtx = true;
      return;
    }
    sim.after(sim::Time::milliseconds(50), [&sink, p = std::move(p)]() mutable {
      sink.handle_packet(std::move(p));
    });
  });
  sink.set_downstream([&](net::PacketRef p) {
    sim.after(sim::Time::milliseconds(50), [&sender, p = std::move(p)]() mutable {
      sender.handle_packet(std::move(p));
    });
  });
  sender.start();
  sim.run();
  EXPECT_TRUE(dropped_rtx);
  EXPECT_GE(sender.stats().timeouts, 1u);
  EXPECT_TRUE(sender.stats().completed);
  EXPECT_TRUE(sink.stats().completed);
}

}  // namespace
}  // namespace wtcp::tcp
