#include "src/tcp/rto_estimator.hpp"

#include <gtest/gtest.h>

namespace wtcp::tcp {
namespace {

RtoConfig paper_cfg() {
  RtoConfig cfg;
  cfg.granularity = sim::Time::milliseconds(100);
  cfg.initial_rto = sim::Time::seconds(3);
  cfg.min_rto = sim::Time::milliseconds(200);
  cfg.max_rto = sim::Time::seconds(64);
  return cfg;
}

TEST(RtoEstimator, InitialRtoBeforeAnySample) {
  RtoEstimator e(paper_cfg());
  EXPECT_FALSE(e.has_sample());
  EXPECT_EQ(e.rto(), sim::Time::seconds(3));
}

TEST(RtoEstimator, FirstSampleGivesThreeTimesRtt) {
  RtoEstimator e(paper_cfg());
  e.add_sample(sim::Time::milliseconds(500));  // 5 ticks
  // SRTT = R, RTTVAR = R/2 => RTO = 3R = 1.5 s.
  EXPECT_EQ(e.rto(), sim::Time::milliseconds(1500));
  EXPECT_EQ(e.srtt(), sim::Time::milliseconds(500));
}

TEST(RtoEstimator, QuantizesToTicks) {
  RtoEstimator e(paper_cfg());
  EXPECT_EQ(e.to_ticks(sim::Time::milliseconds(449)), 4);  // rounds
  EXPECT_EQ(e.to_ticks(sim::Time::milliseconds(450)), 5);
  EXPECT_EQ(e.to_ticks(sim::Time::milliseconds(1)), 1);    // never 0
  EXPECT_EQ(e.to_ticks(sim::Time::zero()), 1);
}

TEST(RtoEstimator, ConvergesOnStableRtt) {
  RtoEstimator e(paper_cfg());
  for (int i = 0; i < 100; ++i) e.add_sample(sim::Time::milliseconds(800));
  // Stable RTT: srtt -> 0.8 s, rttvar decays toward one tick.
  EXPECT_EQ(e.srtt(), sim::Time::milliseconds(800));
  EXPECT_LE(e.rttvar(), sim::Time::milliseconds(100));
  EXPECT_LE(e.rto(), sim::Time::milliseconds(1200));
  EXPECT_GE(e.rto(), sim::Time::milliseconds(800));
}

TEST(RtoEstimator, VarianceGrowsOnJitter) {
  RtoEstimator e(paper_cfg());
  for (int i = 0; i < 50; ++i) {
    e.add_sample(sim::Time::milliseconds(i % 2 ? 400 : 1600));
  }
  EXPECT_GT(e.rttvar(), sim::Time::milliseconds(300));
  EXPECT_GT(e.rto(), e.srtt());
}

TEST(RtoEstimator, MinRtoClamp) {
  RtoConfig cfg = paper_cfg();
  RtoEstimator e(cfg);
  for (int i = 0; i < 100; ++i) e.add_sample(sim::Time::milliseconds(10));
  EXPECT_GE(e.rto(), cfg.min_rto);
}

TEST(RtoEstimator, MaxRtoClamp) {
  RtoConfig cfg = paper_cfg();
  cfg.max_rto = sim::Time::seconds(4);
  RtoEstimator e(cfg);
  e.add_sample(sim::Time::seconds(10));
  EXPECT_EQ(e.rto(), sim::Time::seconds(4));
}

TEST(RtoEstimator, BackoffDoublesAndSaturates) {
  RtoEstimator e(paper_cfg());
  e.add_sample(sim::Time::milliseconds(500));  // rto 1.5 s
  const sim::Time base = e.rto();
  e.back_off();
  EXPECT_EQ(e.rto(), base * 2);
  e.back_off();
  EXPECT_EQ(e.rto(), base * 4);
  for (int i = 0; i < 20; ++i) e.back_off();
  EXPECT_EQ(e.backoff_shift(), paper_cfg().max_backoff_shift);
  EXPECT_LE(e.rto(), paper_cfg().max_rto);
}

TEST(RtoEstimator, ResetBackoffRestoresBase) {
  RtoEstimator e(paper_cfg());
  e.add_sample(sim::Time::milliseconds(500));
  const sim::Time base = e.rto();
  e.back_off();
  e.back_off();
  e.reset_backoff();
  EXPECT_EQ(e.rto(), base);
}

TEST(RtoEstimator, BackoffAppliesToInitialRtoToo) {
  RtoEstimator e(paper_cfg());
  e.back_off();
  EXPECT_EQ(e.rto(), sim::Time::seconds(6));
}

TEST(RtoEstimator, CoarseClockInflatesSmallRtts) {
  // With a 100 ms clock, a 5 ms LAN round trip still reads as one tick.
  RtoEstimator e(paper_cfg());
  for (int i = 0; i < 50; ++i) e.add_sample(sim::Time::milliseconds(5));
  EXPECT_EQ(e.srtt(), sim::Time::milliseconds(100));
}

// The paper's Section 4.2.1 point: a finer timer granularity reduces RTO
// for the same RTT stream, making timeouts during local recovery MORE
// likely.  Verify the monotonicity.
TEST(RtoEstimator, FinerGranularityYieldsTighterRto) {
  RtoConfig coarse = paper_cfg();
  RtoConfig fine = paper_cfg();
  fine.granularity = sim::Time::milliseconds(10);
  RtoEstimator ec(coarse), ef(fine);
  for (int i = 0; i < 60; ++i) {
    const sim::Time rtt = sim::Time::milliseconds(230 + (i % 5) * 7);
    ec.add_sample(rtt);
    ef.add_sample(rtt);
  }
  EXPECT_LT(ef.rto(), ec.rto());
}

// Parameterized sweep over granularities: RTO always >= min and within
// sane bounds for a stable 800 ms RTT.
class GranularitySweep : public ::testing::TestWithParam<int> {};

TEST_P(GranularitySweep, RtoBounded) {
  RtoConfig cfg = paper_cfg();
  cfg.granularity = sim::Time::milliseconds(GetParam());
  RtoEstimator e(cfg);
  for (int i = 0; i < 80; ++i) e.add_sample(sim::Time::milliseconds(800));
  EXPECT_GE(e.rto(), cfg.min_rto);
  // srtt + 4*var, var <= 1 tick after convergence.
  EXPECT_LE(e.rto(), sim::Time::milliseconds(800 + 5 * GetParam()) +
                         sim::Time::milliseconds(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Granularities, GranularitySweep,
                         ::testing::Values(10, 100, 300, 500));

}  // namespace
}  // namespace wtcp::tcp
