#include "src/link/fragmentation.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/sim/simulator.hpp"

namespace wtcp::link {
namespace {

net::PacketRef datagram(net::PacketPool& pool, std::int64_t size,
                        std::int64_t seq = 0) {
  return net::make_tcp_data(pool, seq, static_cast<std::int32_t>(size - 40), 40,
                            0, 2, sim::Time::zero());
}

TEST(Fragmenter, FragmentCountMatchesCeilDivision) {
  Fragmenter f(FragmenterConfig{.mtu_bytes = 128});
  EXPECT_EQ(f.fragment_count(128), 1);
  EXPECT_EQ(f.fragment_count(129), 2);
  EXPECT_EQ(f.fragment_count(576), 5);   // 576 = 4*128 + 64
  EXPECT_EQ(f.fragment_count(616), 5);   // paper 576 B + 40 B header
  EXPECT_EQ(f.fragment_count(1536), 12);
  EXPECT_EQ(f.fragment_count(1), 1);
}

TEST(Fragmenter, SmallDatagramWrappedAsSingleFragment) {
  net::PacketPool pool;
  Fragmenter f(FragmenterConfig{.mtu_bytes = 128});
  auto frags = f.fragment(pool, datagram(pool, 100), sim::Time::zero());
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0]->type, net::PacketType::kLinkFragment);
  EXPECT_EQ(frags[0]->size_bytes, 100);
  EXPECT_EQ(frags[0]->frag->count, 1);
  ASSERT_TRUE(frags[0]->encapsulated);
  EXPECT_EQ(frags[0]->encapsulated->size_bytes, 100);
}

TEST(Fragmenter, SizesSumToDatagramAndLastIsPartial) {
  net::PacketPool pool;
  Fragmenter f(FragmenterConfig{.mtu_bytes = 128});
  auto frags = f.fragment(pool, datagram(pool, 616), sim::Time::zero());
  ASSERT_EQ(frags.size(), 5u);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    EXPECT_EQ(frags[i]->frag->index, static_cast<std::int32_t>(i));
    EXPECT_EQ(frags[i]->frag->count, 5);
    total += frags[i]->size_bytes;
  }
  EXPECT_EQ(total, 616);
  EXPECT_EQ(frags[0]->size_bytes, 128);
  EXPECT_EQ(frags[4]->size_bytes, 616 - 4 * 128);
}

TEST(Fragmenter, DatagramIdsAreUniqueAndShared) {
  net::PacketPool pool;
  Fragmenter f(FragmenterConfig{.mtu_bytes = 128});
  auto a = f.fragment(pool, datagram(pool, 300), sim::Time::zero());
  auto b = f.fragment(pool, datagram(pool, 300), sim::Time::zero());
  EXPECT_EQ(a[0]->frag->datagram_id, a[1]->frag->datagram_id);
  EXPECT_NE(a[0]->frag->datagram_id, b[0]->frag->datagram_id);
}

TEST(Fragmenter, AllFragmentsShareEncapsulatedOriginal) {
  net::PacketPool pool;
  Fragmenter f(FragmenterConfig{.mtu_bytes = 128});
  auto frags = f.fragment(pool, datagram(pool, 616, 42), sim::Time::zero());
  for (const auto& fr : frags) {
    ASSERT_TRUE(fr->encapsulated);
    EXPECT_EQ(fr->encapsulated->tcp->seq, 42);
    // Refcounted share of the same slot, not a copy.
    EXPECT_EQ(fr->encapsulated.get(), frags[0]->encapsulated.get());
  }
}

TEST(Fragmenter, FanOutRecyclesIntoPool) {
  net::PacketPool pool;
  Fragmenter f(FragmenterConfig{.mtu_bytes = 128});
  {
    auto frags = f.fragment(pool, datagram(pool, 616), sim::Time::zero());
    EXPECT_EQ(pool.live(), 6u);  // datagram + 5 fragments
  }
  EXPECT_EQ(pool.live(), 0u);  // everything returned to the freelist
}

TEST(Fragmenter, StatsAccumulate) {
  net::PacketPool pool;
  Fragmenter f(FragmenterConfig{.mtu_bytes = 128});
  f.fragment(pool, datagram(pool, 616), sim::Time::zero());
  f.fragment(pool, datagram(pool, 128), sim::Time::zero());
  EXPECT_EQ(f.stats().datagrams, 2u);
  EXPECT_EQ(f.stats().fragments, 6u);
}

// ---------------------------------------------------------------------------
// Reassembler
// ---------------------------------------------------------------------------

class ReassemblerTest : public ::testing::Test {
 protected:
  ReassemblerTest()
      : sink_([this](net::PacketRef p) { delivered_.push_back(std::move(p)); }),
        reasm_(sim_, ReassemblerConfig{.timeout = sim::Time::seconds(60)}, &sink_),
        frag_(FragmenterConfig{.mtu_bytes = 128}) {}

  net::PacketRef datagram(std::int64_t size, std::int64_t seq = 0) {
    return link::datagram(sim_.packet_pool(), size, seq);
  }

  sim::Simulator sim_;  // owns the pool; declared first so refs die first
  std::vector<net::PacketRef> delivered_;
  net::CallbackSink sink_;
  Reassembler reasm_;
  Fragmenter frag_;
};

TEST_F(ReassemblerTest, CompletesInOrder) {
  for (auto& fr : frag_.fragment(sim_.packet_pool(), datagram(616, 3), sim_.now())) {
    reasm_.handle_fragment(std::move(fr));
  }
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0]->tcp->seq, 3);
  EXPECT_EQ(delivered_[0]->size_bytes, 616);
  EXPECT_EQ(reasm_.stats().datagrams_completed, 1u);
  EXPECT_EQ(reasm_.pending(), 0u);
}

TEST_F(ReassemblerTest, CompletesOutOfOrder) {
  auto frags = frag_.fragment(sim_.packet_pool(), datagram(616), sim_.now());
  reasm_.handle_fragment(std::move(frags[4]));
  reasm_.handle_fragment(std::move(frags[1]));
  reasm_.handle_fragment(std::move(frags[3]));
  reasm_.handle_fragment(std::move(frags[0]));
  EXPECT_TRUE(delivered_.empty());
  reasm_.handle_fragment(std::move(frags[2]));
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(ReassemblerTest, DuplicatesIgnored) {
  auto frags = frag_.fragment(sim_.packet_pool(), datagram(616), sim_.now());
  reasm_.handle_fragment(frags[0].share());
  reasm_.handle_fragment(frags[0].share());
  reasm_.handle_fragment(frags[0].share());
  EXPECT_EQ(reasm_.stats().duplicate_fragments, 2u);
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(ReassemblerTest, InterleavedDatagrams) {
  auto a = frag_.fragment(sim_.packet_pool(), datagram(300, 1), sim_.now());
  auto b = frag_.fragment(sim_.packet_pool(), datagram(300, 2), sim_.now());
  reasm_.handle_fragment(std::move(a[0]));
  reasm_.handle_fragment(std::move(b[0]));
  reasm_.handle_fragment(std::move(a[1]));
  reasm_.handle_fragment(std::move(b[1]));
  reasm_.handle_fragment(std::move(b[2]));
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0]->tcp->seq, 2);
  reasm_.handle_fragment(std::move(a[2]));
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[1]->tcp->seq, 1);
}

TEST_F(ReassemblerTest, MissingFragmentMeansNoDelivery) {
  auto frags = frag_.fragment(sim_.packet_pool(), datagram(616), sim_.now());
  for (std::size_t i = 0; i + 1 < frags.size(); ++i) {
    reasm_.handle_fragment(std::move(frags[i]));
  }
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(reasm_.pending(), 1u);
}

TEST_F(ReassemblerTest, ExpiredPartialsArePurged) {
  auto frags = frag_.fragment(sim_.packet_pool(), datagram(616), sim_.now());
  reasm_.handle_fragment(std::move(frags[0]));
  EXPECT_EQ(reasm_.pending(), 1u);
  // Another fragment arriving much later triggers the purge sweep.
  sim_.after(sim::Time::seconds(120), [&] {
    auto later = frag_.fragment(sim_.packet_pool(), datagram(300), sim_.now());
    reasm_.handle_fragment(std::move(later[0]));
  });
  sim_.run();
  EXPECT_EQ(reasm_.stats().datagrams_expired, 1u);
  EXPECT_EQ(reasm_.pending(), 1u);  // only the new partial remains
}

TEST_F(ReassemblerTest, LateFragmentAfterPurgeStartsFresh) {
  auto frags = frag_.fragment(sim_.packet_pool(), datagram(616), sim_.now());
  reasm_.handle_fragment(std::move(frags[0]));
  sim_.after(sim::Time::seconds(120), [&] {
    // The old partial gets purged; the remaining fragments then arrive and
    // cannot complete (fragment 0 was lost with the purge).
    for (std::size_t i = 1; i < frags.size(); ++i) {
      reasm_.handle_fragment(std::move(frags[i]));
    }
  });
  sim_.run();
  EXPECT_TRUE(delivered_.empty());
}

}  // namespace
}  // namespace wtcp::link
