#include "src/link/wireless_link.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/phy/error_model.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::link {
namespace {

// Two WirelessInterfaces (BS at endpoint 0, MH at endpoint 1) over a WAN
// wireless link.
class WirelessIfaceTest : public ::testing::Test {
 protected:
  void build(bool local_recovery,
             std::vector<phy::ScriptedErrorModel::Window> loss = {}) {
    link_ = std::make_unique<net::DuplexLink>(sim_, wan_wireless_link_config());
    if (!loss.empty()) {
      link_->set_error_model(std::make_shared<phy::ScriptedErrorModel>(loss));
    }
    WirelessIfaceConfig cfg;
    cfg.local_recovery = local_recovery;
    cfg.frag.mtu_bytes = 128;
    bs_up_ = std::make_unique<net::CallbackSink>(
        [this](net::PacketRef p) { at_bs_.push_back(std::move(p)); });
    mh_up_ = std::make_unique<net::CallbackSink>(
        [this](net::PacketRef p) { at_mh_.push_back(std::move(p)); });
    bs_ = std::make_unique<WirelessInterface>(sim_, *link_, 0, cfg, "bs",
                                              bs_up_.get());
    mh_ = std::make_unique<WirelessInterface>(sim_, *link_, 1, cfg, "mh",
                                              mh_up_.get());
  }

  net::PacketRef data(std::int64_t seq, std::int32_t payload = 576) {
    return net::make_tcp_data(sim_.packet_pool(), seq, payload, 40, 0, 2,
                              sim_.now());
  }

  sim::Simulator sim_;
  std::unique_ptr<net::DuplexLink> link_;
  std::unique_ptr<net::CallbackSink> bs_up_;
  std::unique_ptr<net::CallbackSink> mh_up_;
  std::unique_ptr<WirelessInterface> bs_;
  std::unique_ptr<WirelessInterface> mh_;
  std::vector<net::PacketRef> at_bs_;
  std::vector<net::PacketRef> at_mh_;
};

TEST_F(WirelessIfaceTest, DatagramCrossesCleanLinkWithoutArq) {
  build(/*local_recovery=*/false);
  bs_->send_datagram(data(7));
  sim_.run();
  ASSERT_EQ(at_mh_.size(), 1u);
  EXPECT_EQ(at_mh_[0]->tcp->seq, 7);
  EXPECT_EQ(at_mh_[0]->size_bytes, 616);
  EXPECT_EQ(bs_->fragmenter().stats().fragments, 5u);
  EXPECT_EQ(mh_->reassembler().stats().datagrams_completed, 1u);
}

TEST_F(WirelessIfaceTest, DatagramCrossesCleanLinkWithArq) {
  build(/*local_recovery=*/true);
  bs_->send_datagram(data(7));
  sim_.run();
  ASSERT_EQ(at_mh_.size(), 1u);
  EXPECT_EQ(bs_->arq_sender().stats().delivered, 5u);
}

TEST_F(WirelessIfaceTest, BothDirectionsWork) {
  build(/*local_recovery=*/true);
  bs_->send_datagram(data(1));
  mh_->send_datagram(net::make_tcp_ack(sim_.packet_pool(), 1, 40, 2, 0, sim_.now()));
  sim_.run();
  ASSERT_EQ(at_mh_.size(), 1u);
  ASSERT_EQ(at_bs_.size(), 1u);
  EXPECT_EQ(at_bs_[0]->type, net::PacketType::kTcpAck);
}

TEST_F(WirelessIfaceTest, LossWithoutArqKillsWholeDatagram) {
  // One fragment airs inside the loss window -> datagram never completes.
  build(false, {{sim::Time::milliseconds(100), sim::Time::milliseconds(200)}});
  bs_->send_datagram(data(1));  // 5 fragments, 80 ms airtime each
  sim_.run();
  EXPECT_TRUE(at_mh_.empty());
  EXPECT_GT(link_->stats(0).frames_corrupted, 0u);
}

TEST_F(WirelessIfaceTest, LossWithArqIsRecoveredLocally) {
  build(true, {{sim::Time::milliseconds(100), sim::Time::milliseconds(400)}});
  bs_->send_datagram(data(1));
  sim_.run();
  ASSERT_EQ(at_mh_.size(), 1u);
  EXPECT_GT(bs_->arq_sender().stats().retransmissions, 0u);
}

TEST_F(WirelessIfaceTest, ManyDatagramsDeliverInOrderUnderBurstLoss) {
  build(true, {{sim::Time::milliseconds(500), sim::Time::seconds(2)}});
  for (int i = 0; i < 12; ++i) bs_->send_datagram(data(i));
  sim_.run();
  ASSERT_EQ(at_mh_.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(at_mh_[static_cast<std::size_t>(i)]->tcp->seq, i);
  }
}

TEST_F(WirelessIfaceTest, MixedArqOnlyOnOneSide) {
  // BS runs local recovery; MH does not (its sends are raw).  The MH side
  // must still ACK and dedup BS ARQ frames.
  link_ = std::make_unique<net::DuplexLink>(sim_, wan_wireless_link_config());
  WirelessIfaceConfig with, without;
  with.local_recovery = true;
  without.local_recovery = false;
  bs_up_ = std::make_unique<net::CallbackSink>(
      [this](net::PacketRef p) { at_bs_.push_back(std::move(p)); });
  mh_up_ = std::make_unique<net::CallbackSink>(
      [this](net::PacketRef p) { at_mh_.push_back(std::move(p)); });
  bs_ = std::make_unique<WirelessInterface>(sim_, *link_, 0, with, "bs", bs_up_.get());
  mh_ = std::make_unique<WirelessInterface>(sim_, *link_, 1, without, "mh",
                                            mh_up_.get());
  bs_->send_datagram(data(5));
  mh_->send_datagram(net::make_tcp_ack(sim_.packet_pool(), 5, 40, 2, 0, sim_.now()));
  sim_.run();
  ASSERT_EQ(at_mh_.size(), 1u);
  ASSERT_EQ(at_bs_.size(), 1u);
  EXPECT_EQ(bs_->arq_sender().stats().delivered, 5u);
}

TEST_F(WirelessIfaceTest, LanConfigHasNoOverhead) {
  const net::LinkConfig lan = lan_wireless_link_config();
  EXPECT_EQ(lan.bandwidth_bps, 2'000'000);
  EXPECT_EQ(lan.overhead_num, 1);
  const net::LinkConfig wan = wan_wireless_link_config();
  EXPECT_EQ(wan.bandwidth_bps, 19'200);
  // 1.5x overhead: 12.8 kbps effective.
  EXPECT_EQ(wan.overhead_num * 2, wan.overhead_den * 3);
}

TEST_F(WirelessIfaceTest, NoFragmentationWhenMtuLarge) {
  link_ = std::make_unique<net::DuplexLink>(sim_, lan_wireless_link_config());
  WirelessIfaceConfig cfg;
  cfg.frag.mtu_bytes = 1 << 20;
  mh_up_ = std::make_unique<net::CallbackSink>(
      [this](net::PacketRef p) { at_mh_.push_back(std::move(p)); });
  bs_ = std::make_unique<WirelessInterface>(sim_, *link_, 0, cfg, "bs", nullptr);
  mh_ = std::make_unique<WirelessInterface>(sim_, *link_, 1, cfg, "mh",
                                            mh_up_.get());
  bs_->send_datagram(data(1, 1496));
  sim_.run();
  ASSERT_EQ(at_mh_.size(), 1u);
  EXPECT_EQ(bs_->fragmenter().stats().fragments, 1u);
}

}  // namespace
}  // namespace wtcp::link
