#include "src/link/link_arq.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/link/fragmentation.hpp"
#include "src/net/node.hpp"
#include "src/phy/error_model.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::link {
namespace {

// A fixture wiring an ArqSender at endpoint 0 to an ArqReceiver at
// endpoint 1 over a real DuplexLink, with a scriptable error model.
class ArqTest : public ::testing::Test {
 protected:
  static constexpr std::int64_t kBw = 19'200;

  void build(std::vector<phy::ScriptedErrorModel::Window> loss = {},
             ArqConfig cfg = {}) {
    net::LinkConfig lc;
    lc.name = "wl";
    lc.bandwidth_bps = kBw;
    lc.prop_delay = sim::Time::milliseconds(5);
    lc.overhead_num = 3;
    lc.overhead_den = 2;
    link_ = std::make_unique<net::DuplexLink>(sim_, lc);
    if (!loss.empty()) {
      link_->set_error_model(std::make_shared<phy::ScriptedErrorModel>(loss));
    }
    cfg_ = cfg;
    sender_ = std::make_unique<ArqSender>(sim_, *link_, 0, cfg, "snd");
    receiver_ = std::make_unique<ArqReceiver>(sim_, *link_, 1, cfg, "rcv");
    receiver_->set_deliver(
        [this](net::PacketRef p) { delivered_.push_back(std::move(p)); });
    // Demux: receiver handles fragments, sender handles link ACKs.
    rx_demux_ = std::make_unique<net::CallbackSink>([this](net::PacketRef p) {
      if (p->type == net::PacketType::kLinkFragment) receiver_->on_frame(std::move(p));
    });
    tx_demux_ = std::make_unique<net::CallbackSink>([this](net::PacketRef p) {
      if (p->type == net::PacketType::kLinkAck) sender_->on_link_ack(*p);
    });
    link_->set_sink(1, rx_demux_.get());
    link_->set_sink(0, tx_demux_.get());
  }

  net::PacketRef frame(std::int64_t size = 128, std::int32_t index = 0) {
    net::PacketRef p = sim_.packet_pool().acquire();
    p->type = net::PacketType::kLinkFragment;
    p->size_bytes = size;
    p->src = 1;
    p->dst = 2;
    p->frag = net::FragmentHeader{.datagram_id = next_dgram_++, .index = index,
                                  .count = 1, .link_seq = -1};
    return p;
  }

  sim::Simulator sim_;
  ArqConfig cfg_;
  std::unique_ptr<net::DuplexLink> link_;
  std::unique_ptr<ArqSender> sender_;
  std::unique_ptr<ArqReceiver> receiver_;
  std::unique_ptr<net::CallbackSink> rx_demux_;
  std::unique_ptr<net::CallbackSink> tx_demux_;
  std::vector<net::PacketRef> delivered_;
  std::uint64_t next_dgram_ = 1;
};

TEST_F(ArqTest, CleanChannelDeliversEverythingOnce) {
  build();
  for (int i = 0; i < 20; ++i) sender_->submit(frame());
  sim_.run();
  EXPECT_EQ(delivered_.size(), 20u);
  EXPECT_EQ(sender_->stats().delivered, 20u);
  EXPECT_EQ(sender_->stats().retransmissions, 0u);
  EXPECT_EQ(sender_->stats().discarded, 0u);
  EXPECT_TRUE(sender_->idle());
}

TEST_F(ArqTest, AssignsMonotoneLinkSeqs) {
  build();
  for (int i = 0; i < 5; ++i) sender_->submit(frame());
  sim_.run();
  ASSERT_EQ(delivered_.size(), 5u);
  for (std::size_t i = 0; i < delivered_.size(); ++i) {
    EXPECT_EQ(delivered_[i]->frag->link_seq, static_cast<std::int64_t>(i));
  }
}

TEST_F(ArqTest, RecoversFromLossBurst) {
  // Channel dead for [0.1 s, 1.0 s): first frames need retransmission.
  build({{sim::Time::milliseconds(100), sim::Time::seconds(1)}});
  for (int i = 0; i < 10; ++i) sender_->submit(frame());
  sim_.run();
  EXPECT_EQ(delivered_.size(), 10u);
  EXPECT_GT(sender_->stats().retransmissions, 0u);
  EXPECT_EQ(sender_->stats().discarded, 0u);
}

TEST_F(ArqTest, InOrderDeliveryDespiteSelectiveRepeat) {
  build({{sim::Time::milliseconds(100), sim::Time::milliseconds(700)}});
  for (int i = 0; i < 30; ++i) sender_->submit(frame());
  sim_.run();
  ASSERT_EQ(delivered_.size(), 30u);
  for (std::size_t i = 0; i < delivered_.size(); ++i) {
    EXPECT_EQ(delivered_[i]->frag->link_seq, static_cast<std::int64_t>(i))
        << "out-of-order release at position " << i;
  }
}

TEST_F(ArqTest, AttemptFailedHookFiresPerTimeout) {
  build({{sim::Time::zero(), sim::Time::seconds(2)}});
  int failures = 0;
  sender_->on_attempt_failed = [&](const net::Packet&, std::int32_t attempt) {
    ++failures;
    EXPECT_GE(attempt, 1);
  };
  sender_->submit(frame());
  sim_.run(sim::Time::milliseconds(1500));
  EXPECT_GE(failures, 2);
}

TEST_F(ArqTest, DiscardsAfterRtMax) {
  ArqConfig cfg;
  cfg.rt_max = 3;
  // Channel dead forever.
  build({{sim::Time::zero(), sim::Time::seconds(10'000)}}, cfg);
  bool discarded = false;
  sender_->on_discard = [&](const net::Packet&) { discarded = true; };
  sender_->submit(frame());
  sim_.run();
  EXPECT_TRUE(discarded);
  EXPECT_EQ(sender_->stats().discarded, 1u);
  // rt_max retransmissions + 1 original = 4 attempts.
  EXPECT_EQ(sender_->stats().attempts, 4u);
  EXPECT_TRUE(sender_->idle());
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(ArqTest, WindowBoundsOutstandingFrames) {
  ArqConfig cfg;
  cfg.window = 3;
  build({}, cfg);
  for (int i = 0; i < 10; ++i) sender_->submit(frame());
  EXPECT_LE(sender_->outstanding(), 3u);
  sim_.run(sim::Time::milliseconds(50));
  EXPECT_LE(sender_->outstanding(), 3u);
  sim_.run();
  EXPECT_EQ(delivered_.size(), 10u);
}

TEST_F(ArqTest, LostLinkAckCausesDuplicateWhichReceiverSuppresses) {
  // Kill only the reverse direction (ACKs) for a while: frames arrive,
  // ACKs die, the sender retransmits, the receiver must dedup.
  // The scripted model is shared by both directions, so instead use a
  // window that catches the ACK but not the (earlier) data frame:
  // data airtime [0, 80) ms; ack goes on air ~85 ms.
  build({{sim::Time::milliseconds(81), sim::Time::milliseconds(200)}});
  sender_->submit(frame());
  sim_.run();
  EXPECT_EQ(delivered_.size(), 1u);
  EXPECT_GE(sender_->stats().retransmissions, 1u);
  EXPECT_GE(receiver_->stats().duplicates, 1u);
  EXPECT_EQ(sender_->stats().delivered, 1u);
}

TEST_F(ArqTest, HoleSkipAfterSenderDiscard) {
  // Frame 0 sent while channel is dead long enough to exhaust rt_max; the
  // following frames are submitted after the bad window and deliver fine.
  ArqConfig cfg;
  cfg.rt_max = 2;
  cfg.window = 1;  // serialize, so only frame 0 faces the bad window
  build({{sim::Time::zero(), sim::Time::seconds(3)}}, cfg);
  sender_->submit(frame());
  sim_.at(sim::Time::seconds(4), [&] {
    for (int i = 0; i < 3; ++i) sender_->submit(frame());
  });
  sim_.run();
  // Frame 0 was discarded; 1..3 must still come through (hole skipped).
  ASSERT_EQ(delivered_.size(), 3u);
  EXPECT_EQ(delivered_[0]->frag->link_seq, 1);
  EXPECT_EQ(receiver_->stats().holes_skipped, 1u);
}

TEST_F(ArqTest, StaleAcksAreCounted) {
  build();
  sender_->submit(frame());
  sim_.run();
  // Forge a link ACK for a long-gone seq.
  net::PacketRef stale = net::make_control(sim_.packet_pool(),
                                           net::PacketType::kLinkAck, 16, 2, 1,
                                           sim_.now());
  stale->frag = net::FragmentHeader{.link_seq = 0};
  sender_->on_link_ack(*stale);
  EXPECT_EQ(sender_->stats().stale_acks, 1u);
}

TEST_F(ArqTest, BufferOverflowDropsSubmissions) {
  ArqConfig cfg;
  cfg.buffer_packets = 4;
  cfg.window = 1;
  build({}, cfg);
  for (int i = 0; i < 10; ++i) sender_->submit(frame());
  EXPECT_GT(sender_->stats().buffer_drops, 0u);
  sim_.run();
  EXPECT_EQ(delivered_.size(),
            sender_->stats().submitted);
}

TEST_F(ArqTest, DeliveredHookFires) {
  build();
  int ok = 0;
  sender_->on_delivered = [&](const net::Packet&) { ++ok; };
  for (int i = 0; i < 4; ++i) sender_->submit(frame());
  sim_.run();
  EXPECT_EQ(ok, 4);
}

// Parameterized: every rt_max in 0..13 leads to exactly rt_max+1 attempts
// on a dead channel (the paper's discard rule).
class RtMaxSweep : public ArqTest, public ::testing::WithParamInterface<int> {};

TEST_P(RtMaxSweep, AttemptsAreRtMaxPlusOne) {
  ArqConfig cfg;
  cfg.rt_max = GetParam();
  build({{sim::Time::zero(), sim::Time::seconds(100'000)}}, cfg);
  sender_->submit(frame());
  sim_.run();
  EXPECT_EQ(sender_->stats().attempts, static_cast<std::uint64_t>(GetParam() + 1));
  EXPECT_EQ(sender_->stats().discarded, 1u);
}

INSTANTIATE_TEST_SUITE_P(RtMax, RtMaxSweep, ::testing::Values(0, 1, 2, 5, 13));

}  // namespace
}  // namespace wtcp::link
