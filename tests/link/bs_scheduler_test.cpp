#include "src/link/bs_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.hpp"

namespace wtcp::link {
namespace {

net::PacketRef dgram(net::PacketPool& pool, std::uint64_t conn) {
  net::PacketRef p = net::make_tcp_data(pool, 0, 536, 40, 0, 2, sim::Time::zero());
  p->tcp->conn = conn;
  return p;
}

class SchedTest : public ::testing::Test {
 protected:
  void build(BsSchedulerConfig cfg, std::size_t users = 3) {
    sched_ = std::make_unique<BsScheduler>(sim_, cfg, users);
    sched_->set_release([this](std::size_t user, net::PacketRef) {
      releases_.push_back(user);
    });
    sched_->set_channel_probe([this](std::size_t user) { return good_[user]; });
    good_.assign(users, true);
  }

  sim::Simulator sim_;
  std::unique_ptr<BsScheduler> sched_;
  std::vector<std::size_t> releases_;
  std::vector<bool> good_;
};

TEST_F(SchedTest, FifoServesArrivalOrder) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kFifo;
  cfg.max_outstanding = 1;
  build(cfg);
  sched_->enqueue(2, dgram(sim_.packet_pool(), 2));  // released immediately (slot free)
  sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  EXPECT_EQ(releases_, (std::vector<std::size_t>{2}));
  sched_->on_resolved(2);
  sched_->on_resolved(0);
  sched_->on_resolved(1);
  EXPECT_EQ(releases_, (std::vector<std::size_t>{2, 0, 1, 0}));
}

TEST_F(SchedTest, RoundRobinCyclesUsers) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kRoundRobin;
  cfg.max_outstanding = 1;
  build(cfg);
  // User 0 floods; users 1, 2 have one datagram each.
  for (int i = 0; i < 4; ++i) sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  sched_->enqueue(2, dgram(sim_.packet_pool(), 2));
  for (int i = 0; i < 5; ++i) sched_->on_resolved(releases_.back());
  // Cyclic service: 0 (first), then 1, 2, back to 0...
  EXPECT_EQ(releases_, (std::vector<std::size_t>{0, 1, 2, 0, 0, 0}));
}

TEST_F(SchedTest, MaxOutstandingBoundsReleases) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kRoundRobin;
  cfg.max_outstanding = 2;
  build(cfg);
  for (int i = 0; i < 6; ++i) sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  EXPECT_EQ(releases_.size(), 2u);
  EXPECT_EQ(sched_->outstanding(), 2);
  sched_->on_resolved(0);
  EXPECT_EQ(releases_.size(), 3u);
}

TEST_F(SchedTest, CsdSkipsBadUsers) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kCsdRoundRobin;
  cfg.max_outstanding = 1;
  build(cfg);
  good_ = {false, true, true};
  sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  // User 0 is faded: user 1 is served first.
  EXPECT_EQ(releases_, (std::vector<std::size_t>{1}));
  EXPECT_GE(sched_->stats().csd_skips, 1u);
  // User 0's channel recovers; resolution pumps it out.
  good_[0] = true;
  sched_->on_resolved(1);
  EXPECT_EQ(releases_, (std::vector<std::size_t>{1, 0}));
}

TEST_F(SchedTest, CsdDefersWhenAllBadAndReprobes) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kCsdRoundRobin;
  cfg.max_outstanding = 1;
  cfg.probe_interval = sim::Time::milliseconds(50);
  build(cfg);
  good_ = {false, false, false};
  sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  EXPECT_TRUE(releases_.empty());
  EXPECT_GE(sched_->stats().csd_deferrals, 1u);
  // Channel heals; the probe timer pumps without any external event.
  sim_.after(sim::Time::milliseconds(20), [this] { good_[0] = true; });
  sim_.run();
  EXPECT_EQ(releases_, (std::vector<std::size_t>{0}));
  EXPECT_LE(sim_.now(), sim::Time::milliseconds(100));
}

TEST_F(SchedTest, CsdProbesOnlyBackloggedInCyclicOrder) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kCsdRoundRobin;
  cfg.max_outstanding = 1;
  build(cfg, 4);
  // Override the fixture probe with a recording one: CSD must probe
  // BACKLOGGED users only, in cyclic order from the cursor — an idle
  // user's channel is never touched (that's what makes a 10k-flow cell
  // with a handful of backlogged users cheap).
  std::vector<std::size_t> probed;
  sched_->set_channel_probe([this, &probed](std::size_t user) {
    probed.push_back(user);
    return good_[user];
  });
  // Fill the single outstanding slot so the next enqueues queue up
  // without triggering picks.
  sched_->enqueue(3, dgram(sim_.packet_pool(), 3));
  EXPECT_EQ(probed, (std::vector<std::size_t>{3}));
  probed.clear();
  good_ = {true, false, false, true};
  sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  sched_->enqueue(2, dgram(sim_.packet_pool(), 2));
  sched_->enqueue(3, dgram(sim_.packet_pool(), 3));
  EXPECT_TRUE(probed.empty());  // slot busy: no picks, no probes
  // Resolution triggers one lap from the cursor (wrapped to 0): user 0
  // is idle and must not be probed; 1 and 2 are faded (one csd_skip
  // each); 3 is served.
  sched_->on_resolved(3);
  EXPECT_EQ(probed, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(releases_, (std::vector<std::size_t>{3, 3}));
  EXPECT_EQ(sched_->stats().csd_skips, 2u);
  // Next lap probes only the two remaining backlogged users, finds all
  // bad, and defers to the probe timer.
  probed.clear();
  sched_->on_resolved(3);
  EXPECT_EQ(probed, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(releases_, (std::vector<std::size_t>{3, 3}));
  EXPECT_EQ(sched_->stats().csd_deferrals, 1u);
}

TEST_F(SchedTest, DwrrBanksDeficitAcrossLaps) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kDeficitRoundRobin;
  cfg.max_outstanding = 1;
  cfg.dwrr_quantum_bytes = 1536;  // 2.66 datagrams of 576 wire bytes
  build(cfg, 3);
  // Plug the single outstanding slot with user 2 so users 0 and 1 build
  // full queues before the first DWRR lap.
  sched_->enqueue(2, dgram(sim_.packet_pool(), 2));
  for (int i = 0; i < 6; ++i) {
    sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
    sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  }
  for (int i = 0; i < 12; ++i) sched_->on_resolved(releases_.back());
  // Lap 1 grants 1536 bytes -> 2 datagrams each, banking 384; lap 2's
  // bank of 1920 covers 3; the final lap drains the leftovers.  The
  // banked remainder is what distinguishes DWRR from plain round-robin.
  EXPECT_EQ(releases_, (std::vector<std::size_t>{2, 0, 0, 1, 1, 0, 0, 0, 1,
                                                 1, 1, 0, 1}));
}

TEST_F(SchedTest, DwrrWeightScalesQuantum) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kDeficitRoundRobin;
  cfg.max_outstanding = 1;
  cfg.dwrr_quantum_bytes = 1536;
  build(cfg, 3);
  sched_->set_weight(1, 2);  // user 1 earns 3072 bytes per lap
  sched_->enqueue(2, dgram(sim_.packet_pool(), 2));
  for (int i = 0; i < 6; ++i) {
    sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
    sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  }
  for (int i = 0; i < 12; ++i) sched_->on_resolved(releases_.back());
  // 3072 bytes covers 5 datagrams per lap for user 1 against user 0's 2.
  EXPECT_EQ(releases_, (std::vector<std::size_t>{2, 0, 0, 1, 1, 1, 1, 1, 0,
                                                 0, 0, 1, 0}));
}

TEST_F(SchedTest, DwrrForfeitsDeficitWhenQueueDrains) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kDeficitRoundRobin;
  cfg.max_outstanding = 1;
  cfg.dwrr_quantum_bytes = 10'000;
  build(cfg, 2);
  sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  EXPECT_EQ(releases_, (std::vector<std::size_t>{0}));
  // The queue drained with 9424 bytes of credit left; an idle user may
  // not bank it (else a long-idle flow would burst on return).
  EXPECT_EQ(sched_->deficit(0), 0);
}

TEST_F(SchedTest, PerUserQueueBound) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kRoundRobin;
  cfg.max_outstanding = 1;
  cfg.queue_datagrams = 3;
  build(cfg);
  for (int i = 0; i < 10; ++i) sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  // 1 released + 3 queued; rest dropped.
  EXPECT_EQ(sched_->backlog(0), 3u);
  EXPECT_EQ(sched_->stats().dropped, 6u);
}

TEST_F(SchedTest, BacklogAccounting) {
  BsSchedulerConfig cfg;
  cfg.max_outstanding = 1;
  build(cfg);
  sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  EXPECT_EQ(sched_->total_backlog(), 2u);  // one was released
  EXPECT_EQ(sched_->stats().enqueued, 3u);
  EXPECT_EQ(sched_->stats().released, 1u);
}

}  // namespace
}  // namespace wtcp::link
