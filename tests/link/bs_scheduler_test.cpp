#include "src/link/bs_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.hpp"

namespace wtcp::link {
namespace {

net::PacketRef dgram(net::PacketPool& pool, std::uint64_t conn) {
  net::PacketRef p = net::make_tcp_data(pool, 0, 536, 40, 0, 2, sim::Time::zero());
  p->tcp->conn = conn;
  return p;
}

class SchedTest : public ::testing::Test {
 protected:
  void build(BsSchedulerConfig cfg, std::size_t users = 3) {
    sched_ = std::make_unique<BsScheduler>(sim_, cfg, users);
    sched_->set_release([this](std::size_t user, net::PacketRef) {
      releases_.push_back(user);
    });
    sched_->set_channel_probe([this](std::size_t user) { return good_[user]; });
    good_.assign(users, true);
  }

  sim::Simulator sim_;
  std::unique_ptr<BsScheduler> sched_;
  std::vector<std::size_t> releases_;
  std::vector<bool> good_;
};

TEST_F(SchedTest, FifoServesArrivalOrder) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kFifo;
  cfg.max_outstanding = 1;
  build(cfg);
  sched_->enqueue(2, dgram(sim_.packet_pool(), 2));  // released immediately (slot free)
  sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  EXPECT_EQ(releases_, (std::vector<std::size_t>{2}));
  sched_->on_resolved(2);
  sched_->on_resolved(0);
  sched_->on_resolved(1);
  EXPECT_EQ(releases_, (std::vector<std::size_t>{2, 0, 1, 0}));
}

TEST_F(SchedTest, RoundRobinCyclesUsers) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kRoundRobin;
  cfg.max_outstanding = 1;
  build(cfg);
  // User 0 floods; users 1, 2 have one datagram each.
  for (int i = 0; i < 4; ++i) sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  sched_->enqueue(2, dgram(sim_.packet_pool(), 2));
  for (int i = 0; i < 5; ++i) sched_->on_resolved(releases_.back());
  // Cyclic service: 0 (first), then 1, 2, back to 0...
  EXPECT_EQ(releases_, (std::vector<std::size_t>{0, 1, 2, 0, 0, 0}));
}

TEST_F(SchedTest, MaxOutstandingBoundsReleases) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kRoundRobin;
  cfg.max_outstanding = 2;
  build(cfg);
  for (int i = 0; i < 6; ++i) sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  EXPECT_EQ(releases_.size(), 2u);
  EXPECT_EQ(sched_->outstanding(), 2);
  sched_->on_resolved(0);
  EXPECT_EQ(releases_.size(), 3u);
}

TEST_F(SchedTest, CsdSkipsBadUsers) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kCsdRoundRobin;
  cfg.max_outstanding = 1;
  build(cfg);
  good_ = {false, true, true};
  sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  // User 0 is faded: user 1 is served first.
  EXPECT_EQ(releases_, (std::vector<std::size_t>{1}));
  EXPECT_GE(sched_->stats().csd_skips, 1u);
  // User 0's channel recovers; resolution pumps it out.
  good_[0] = true;
  sched_->on_resolved(1);
  EXPECT_EQ(releases_, (std::vector<std::size_t>{1, 0}));
}

TEST_F(SchedTest, CsdDefersWhenAllBadAndReprobes) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kCsdRoundRobin;
  cfg.max_outstanding = 1;
  cfg.probe_interval = sim::Time::milliseconds(50);
  build(cfg);
  good_ = {false, false, false};
  sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  EXPECT_TRUE(releases_.empty());
  EXPECT_GE(sched_->stats().csd_deferrals, 1u);
  // Channel heals; the probe timer pumps without any external event.
  sim_.after(sim::Time::milliseconds(20), [this] { good_[0] = true; });
  sim_.run();
  EXPECT_EQ(releases_, (std::vector<std::size_t>{0}));
  EXPECT_LE(sim_.now(), sim::Time::milliseconds(100));
}

TEST_F(SchedTest, PerUserQueueBound) {
  BsSchedulerConfig cfg;
  cfg.policy = SchedPolicy::kRoundRobin;
  cfg.max_outstanding = 1;
  cfg.queue_datagrams = 3;
  build(cfg);
  for (int i = 0; i < 10; ++i) sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  // 1 released + 3 queued; rest dropped.
  EXPECT_EQ(sched_->backlog(0), 3u);
  EXPECT_EQ(sched_->stats().dropped, 6u);
}

TEST_F(SchedTest, BacklogAccounting) {
  BsSchedulerConfig cfg;
  cfg.max_outstanding = 1;
  build(cfg);
  sched_->enqueue(0, dgram(sim_.packet_pool(), 0));
  sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  sched_->enqueue(1, dgram(sim_.packet_pool(), 1));
  EXPECT_EQ(sched_->total_backlog(), 2u);  // one was released
  EXPECT_EQ(sched_->stats().enqueued, 3u);
  EXPECT_EQ(sched_->stats().released, 1u);
}

}  // namespace
}  // namespace wtcp::link
