// wtcp-lint fixture: use-after-move scope handling — the false-positive
// classes the analyzer must stay quiet on (ctor init lists, ternary arms,
// lambda init-capture shadowing, conditional moves) and the true
// positives hiding next to them.
#include <string>
#include <utility>

namespace fx {

struct Packet {
  int seq = 0;
};
struct Queue {
  void enqueue(Packet p);
  void enqueue_front(Packet p);
};
struct Sim {
  void after(int delay, void (*fn)());
  template <class F>
  void after(int delay, F f);
};
struct Hook {
  template <class F>
  void add_hook(F f);
};
void consume(Packet p);
void observe(const Packet& p);
void log_value(int v);

// Init-list moves die with the ctor: `name` below must not poison the
// rest of the file (the analyzer once leaked these marks into every
// following function).
struct Holder {
  explicit Holder(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }  // ok: different scope
  std::string name_;
};

void ternary_consumes_once(bool front, Packet pkt, Queue& q) {
  front ? q.enqueue_front(std::move(pkt)) : q.enqueue(std::move(pkt));  // ok
}

void init_capture_shadows_body(Sim& sim, Packet p) {
  sim.after(3, [p = std::move(p)]() mutable { consume(std::move(p)); });  // ok
  observe(p);  // LINT-EXPECT: use-after-move
}

void init_capture_double_defer(Sim& sim, Packet p) {
  sim.after(1, [p = std::move(p)]() mutable { consume(std::move(p)); });
  sim.after(2, [p = std::move(p)]() mutable { consume(std::move(p)); });  // LINT-EXPECT: use-after-move
}

void braceless_if_move_is_conditional(bool c, Packet p) {
  if (c) consume(std::move(p));
  observe(p);  // ok: the move only happens on one path
}

void move_on_return_path(bool c, Packet p) {
  if (c) return consume(std::move(p));
  observe(p);  // ok: nothing runs after the return
}

void inner_scope_move_dies_with_it(Packet p) {
  {
    Packet q;
    consume(std::move(q));
  }
  observe(p);  // ok
}

// Regression for src/stats/net_trace.cpp: a brace-less `if` inside a
// lambda body that is itself a call argument must not wedge the virtual
// scope open (the `;` ending it sits at paren depth 1).
void braceless_if_inside_nested_lambda(Hook& h, Packet p) {
  h.add_hook([](int v) { if (v > 0) log_value(v); });
  consume(std::move(p));
}

void later_function_reuses_the_name(Hook& h, const Packet& p) {
  observe(p);  // ok: `p` here is a fresh parameter
  h.add_hook([](int v) { log_value(v); });
}

}  // namespace fx
