// wtcp-lint fixture: deferred-capture discipline.  Lambdas handed to
// scheduling sinks (sim.at/sim.after/schedule_at/...) run after the
// enclosing frame is gone, so by-reference captures of locals are
// lifetime bugs.  Non-sink calls may capture however they like.
namespace fx {

struct Packet {
  int seq = 0;
};
struct Sim {
  template <class F>
  void at(double t, F f);
  template <class F>
  void after(double d, F f);
};
struct Runner {
  template <class F>
  void run(int n, F f);
};
struct Work {
  template <class F>
  void each(F f) const;
};
template <class F>
void schedule_at(double t, F f);
void use(int v);
void consume_copy(Packet p);

void bad_default_ref_capture(Sim& sim, int x) {
  sim.after(5.0, [&] { use(x); });  // LINT-EXPECT: deferred-capture
}

void bad_named_ref_capture(Sim& sim, Packet p) {
  sim.at(9.0, [&p] { consume_copy(p); });  // LINT-EXPECT: deferred-capture
}

void bad_free_function_sink(int x) {
  schedule_at(3.0, [&] { use(x); });  // LINT-EXPECT: deferred-capture
}

void ok_by_value(Sim& sim, int x) {
  sim.after(5.0, [x] { use(x); });  // ok
}

struct Agent {
  Sim* sim;
  void tick();
  void arm() {
    sim->after(1.0, [this] { tick(); });  // ok: [this] is not a by-ref local
  }
};

void ok_non_sink_call(Runner& r, int x) {
  r.run(7, [&] { use(x); });  // ok: run() executes synchronously
}

void ok_nested_lambda_in_body(Sim& sim, Work w) {
  // The inner [&] goes to each(), not to the sink; only lambdas at the
  // sink's top argument level are judged.
  sim.after(1.0, [w] { w.each([&](int v) { use(v); }); });  // ok
}

}  // namespace fx
