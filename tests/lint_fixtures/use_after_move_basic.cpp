// wtcp-lint fixture: use-after-move basics.
//
// Never compiled — scanned by wtcp-lint in --fixture mode and checked
// against the `// LINT-EXPECT: <check-id>` annotations by
// tests/lint_fixtures/run_fixtures.py (exact diagnostic sets: a diag on
// an unannotated line fails, a missing diag on an annotated line fails).
#include <utility>

namespace fx {

struct Packet {
  int seq = 0;
};

void consume(Packet p);
void observe(const Packet& p);
struct Ptr {
  void reset(int* p);
};
void consume_ptr(Ptr p);
void use_ptr(const Ptr& p);
int* make_int();

void basic_use_after_move() {
  Packet p;
  consume(std::move(p));
  observe(p);  // LINT-EXPECT: use-after-move
}

void double_consume() {
  Packet p;
  consume(std::move(p));
  consume(std::move(p));  // LINT-EXPECT: use-after-move
}

void reassignment_reinitializes() {
  Packet p;
  consume(std::move(p));
  p = Packet{};
  observe(p);  // ok: reassigned above
}

void reset_reinitializes() {
  Ptr q;
  consume_ptr(std::move(q));
  q.reset(make_int());
  use_ptr(q);  // ok: reset() re-initializes
}

void member_access_is_not_the_local(Packet p) {
  struct Owner {
    Packet p;
  } owner;
  consume(std::move(p));
  observe(owner.p);  // ok: `owner.p` is a member, not the moved local
}

}  // namespace fx
