// wtcp-lint fixture: probe-name drift.  A probe read under a name nobody
// binds silently reads zero; a probe bound under a name nobody reads or
// documents is dead weight drifting from the catalog.  Computed names
// are out of scope (not statically knowable).
#include <string>

namespace fx {

struct Counter;
struct Gauge;
struct Registry {
  Counter* counter(const char* name);
  Gauge* gauge(const char* name);
  double counter_value(const char* name) const;
  double gauge_value(const char* name) const;
};

void bind_probes(Registry& reg, const std::string& stem) {
  reg.counter("fx.bound_and_read");  // ok: read below
  reg.counter("fx.bound_only");  // LINT-EXPECT: probe-drift
  reg.gauge("fx.gauge_pair");  // ok: read below
  reg.counter(stem.c_str());  // ok: computed name, not judged
}

double read_probes(const Registry& reg) {
  double s = 0.0;
  s += reg.counter_value("fx.bound_and_read");  // ok
  s += reg.gauge_value("fx.gauge_pair");        // ok
  s += reg.counter_value("fx.never_bound");  // LINT-EXPECT: probe-drift
  return s;
}

}  // namespace fx
