// wtcp-lint fixture: audit purity.  WTCP_AUDIT_CHECK / WTCP_AUDIT_ONLY
// compile to ((void)0) when the audit layer is off, so any side effect
// inside them silently changes behaviour between build flavours.
// WTCP_AUDIT_ONLY may declare and mutate its own macro-local state (the
// recount loops); mutating anything that outlives the macro is the bug.
#include <cstddef>

namespace fx {

struct Window {
  int lo = 0;
  int hi = 0;
  int expected = 0;
};
struct Stats {
  bool checked = false;
  int audit_count = 0;
};
struct Row {
  bool live = false;
};
struct Table {
  Row rows[4];
  std::size_t expected = 0;
};
struct Guard {
  int* reset();
};
int count_rows(const Table& t);

void check_with_increment(int evaluated) {
  WTCP_AUDIT_CHECK(++evaluated > 0, "fx", "inc", "");  // LINT-EXPECT: audit-pure
}

void check_with_assignment(Window& w) {
  WTCP_AUDIT_CHECK((w.lo = 0) == 0, "fx", "assign", "");  // LINT-EXPECT: audit-pure
}

void check_with_reset(Guard& g) {
  WTCP_AUDIT_CHECK(g.reset() != nullptr, "fx", "reset", "");  // LINT-EXPECT: audit-pure
}

void check_pure_comparisons(const Window& w, const Table& t) {
  WTCP_AUDIT_CHECK(w.lo <= w.hi, "fx", "order", "");               // ok
  WTCP_AUDIT_CHECK(count_rows(t) == static_cast<int>(t.expected),  // ok
                   "fx", "count", "");
}

void only_mutating_live_state(Stats& s) {
  WTCP_AUDIT_ONLY(s.checked = true;);  // LINT-EXPECT: audit-pure
}

void only_incrementing_live_state(Stats& s) {
  WTCP_AUDIT_ONLY(++s.audit_count;);  // LINT-EXPECT: audit-pure
}

void only_with_local_recount(const Table& t) {
  // ok: `live` exists only inside the macro, so mutating it cannot
  // diverge between audit-on and audit-off builds.
  WTCP_AUDIT_ONLY(std::size_t live = 0;
                  for (const Row& r : t.rows) live += r.live ? 1u : 0u;
                  WTCP_AUDIT_CHECK(live == t.expected, "fx", "recount", ""););
}

}  // namespace fx
