// wtcp-lint fixture: entropy determinism hazards.  All randomness must
// come from sim::Rng streams forked off the run seed; global-state libc
// RNG and hardware entropy make runs unrepeatable.
#include <cstdlib>
#include <random>

namespace fx {

int draw_libc_rand() {
  const int r = rand();  // LINT-EXPECT: libc-rand
  return r;
}

long draw_libc_random() {
  const long r = random();  // LINT-EXPECT: libc-rand
  return r;
}

unsigned draw_hardware_entropy() {
  std::random_device rd;  // LINT-EXPECT: random-device
  return rd();
}

using entropy_t = std::random_device;  // LINT-EXPECT: random-device

unsigned draw_through_alias() {
  entropy_t gen;  // LINT-EXPECT: determinism-alias
  return gen();
}

unsigned draw_seeded_engine() {
  std::mt19937 gen(1234u);  // ok: fixed seed, repeatable
  return gen();
}

struct Cell {
  int rand() const;  // ok: member declaration, not the libc call
};

int member_named_rand_is_fine(const Cell& c) {
  return c.rand();  // ok: member call, not the libc global
}

int rand_with_arguments(int (*my_rand)(int)) {
  const int r = my_rand(7);  // ok: different identifier
  return r;
}

}  // namespace fx
