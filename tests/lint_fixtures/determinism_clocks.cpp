// wtcp-lint fixture: wall-clock determinism hazards, including the alias
// laundering the old regex linter could not see.  Simulation logic must
// take time from sim::Time, never from host clocks.
#include <chrono>
#include <ctime>

namespace fx {

double read_system_clock() {
  return static_cast<double>(
      std::chrono::system_clock::now().time_since_epoch().count());  // LINT-EXPECT: system-clock
}

double read_high_resolution_clock() {
  auto t0 = std::chrono::high_resolution_clock::now();  // LINT-EXPECT: system-clock
  return static_cast<double>(t0.time_since_epoch().count());
}

double read_steady_clock() {
  auto t0 = std::chrono::steady_clock::now();  // LINT-EXPECT: steady-clock
  return static_cast<double>(t0.time_since_epoch().count());
}

long read_libc_time() {
  const long t0 = time(nullptr);  // LINT-EXPECT: wall-clock
  return t0;
}

// Aliases do not launder the dependency: the declaration names the
// banned clock, and every use through the alias is flagged too.
using wall = std::chrono::steady_clock;  // LINT-EXPECT: steady-clock

double read_through_type_alias() {
  auto t0 = wall::now();  // LINT-EXPECT: determinism-alias
  return static_cast<double>(t0.time_since_epoch().count());
}

namespace cr = std::chrono;

double read_through_namespace_alias() {
  auto t0 = cr::steady_clock::now();  // LINT-EXPECT: determinism-alias
  return static_cast<double>(t0.time_since_epoch().count());
}

double duration_through_namespace_alias_is_fine(cr::nanoseconds d) {
  return cr::duration<double>(d).count();  // ok: durations are not clocks
}

struct TimeLike {
  double now() const { return cached; }  // ok: sim-style time source
  double cached = 0.0;
};

double read_sim_time(const TimeLike& t) {
  return t.now();  // ok
}

}  // namespace fx
