#!/usr/bin/env python3
"""Fixture harness for wtcp-lint (Tier 1.5, docs/static-analysis.md).

Each tests/lint_fixtures/*.cpp file annotates the lines where the
analyzer must fire with `// LINT-EXPECT: <check-id> [<check-id>...]`.
The harness runs wtcp-lint over every fixture in --fixture mode (all
checks on, no scope policy) and asserts the EXACT diagnostic set:

  * a diagnostic on an unannotated line fails (false positive),
  * an annotated line with no diagnostic fails (false negative),
  * the exit code must agree with whether anything was expected.

Two extra scenarios exercise the allowlist machinery end-to-end: a
covering entry must silence the run (exit 0), and an entry that matches
nothing must be reported stale (exit 1).
"""

import argparse
import pathlib
import re
import subprocess
import sys
import tempfile

EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([a-z][a-z-]*(?:\s+[a-z][a-z-]*)*)")
DIAG_RE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+): \[(?P<check>[a-z-]+)\]")


def expected_diags(path: pathlib.Path):
    expected = set()
    for lineno, text in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        m = EXPECT_RE.search(text)
        if m:
            for check in m.group(1).split():
                expected.add((lineno, check))
    return expected


def run_lint(binary, root, inputs, allowlist=""):
    cmd = [binary, "--root", str(root), "--fixture", "--allowlist", allowlist]
    cmd += [str(i) for i in inputs]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    diags = set()
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.add((int(m.group("line")), m.group("check")))
    return proc, diags


def check_fixture(binary, fixtures_dir, path):
    expected = expected_diags(path)
    proc, actual = run_lint(binary, fixtures_dir, [path.name])
    failures = []
    for line, check in sorted(actual - expected):
        failures.append(
            f"  false positive: {path.name}:{line} fired [{check}] "
            "on an unannotated line"
        )
    for line, check in sorted(expected - actual):
        failures.append(
            f"  false negative: {path.name}:{line} expected [{check}] "
            "but nothing fired"
        )
    want_rc = 1 if expected else 0
    if not failures and proc.returncode != want_rc:
        failures.append(
            f"  exit code: {path.name} returned {proc.returncode}, "
            f"wanted {want_rc}\n  stdout:\n{proc.stdout}"
            f"\n  stderr:\n{proc.stderr}"
        )
    return failures


def check_allowlist_semantics(binary, fixtures_dir):
    """A covering entry silences the run; a stale entry fails it."""
    fixture = "use_after_move_basic.cpp"
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        covering = pathlib.Path(tmp) / "covering.txt"
        covering.write_text(
            "# harness-generated\n"
            f"use-after-move {fixture} fixture exercises the allowlist\n",
            encoding="utf-8",
        )
        proc, diags = run_lint(binary, fixtures_dir, [fixture], str(covering))
        if proc.returncode != 0 or diags:
            failures.append(
                "  allowlist: covering entry did not silence "
                f"{fixture} (rc={proc.returncode})\n{proc.stdout}"
            )

        stale = pathlib.Path(tmp) / "stale.txt"
        stale.write_text(
            f"use-after-move {fixture} fixture exercises the allowlist\n"
            f"libc-rand {fixture} matches nothing and must be stale\n",
            encoding="utf-8",
        )
        proc, _ = run_lint(binary, fixtures_dir, [fixture], str(stale))
        if proc.returncode != 1 or "stale-allowlist" not in proc.stdout:
            failures.append(
                "  allowlist: stale entry was not reported "
                f"(rc={proc.returncode})\n{proc.stdout}"
            )

        malformed = pathlib.Path(tmp) / "malformed.txt"
        malformed.write_text(
            f"use-after-move {fixture} fixture exercises the allowlist\n"
            "use-after-move missing-justification.cpp\n",
            encoding="utf-8",
        )
        proc, _ = run_lint(binary, fixtures_dir, [fixture], str(malformed))
        if proc.returncode == 0 or "malformed" not in proc.stderr:
            failures.append(
                "  allowlist: malformed entry was not rejected "
                f"(rc={proc.returncode})\n{proc.stderr}"
            )
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bin", required=True, help="path to the wtcp-lint binary")
    ap.add_argument(
        "--fixtures", required=True, help="directory with *.cpp fixtures"
    )
    args = ap.parse_args()

    fixtures_dir = pathlib.Path(args.fixtures)
    fixtures = sorted(fixtures_dir.glob("*.cpp"))
    if not fixtures:
        print(f"no fixtures found under {fixtures_dir}", file=sys.stderr)
        return 2

    failures = []
    checks_seen = set()
    for path in fixtures:
        failures += check_fixture(args.bin, fixtures_dir, path)
        checks_seen |= {c for _, c in expected_diags(path)}
    failures += check_allowlist_semantics(args.bin, fixtures_dir)

    # Every check the analyzer implements must have at least one firing
    # fixture — a check nobody exercises can rot silently.
    required = {
        "use-after-move",
        "deferred-capture",
        "audit-pure",
        "libc-rand",
        "random-device",
        "wall-clock",
        "system-clock",
        "steady-clock",
        "determinism-alias",
        "unordered-container",
        "unordered-iteration",
        "pointer-keyed-order",
        "probe-drift",
    }
    for missing in sorted(required - checks_seen):
        failures.append(f"  coverage: no fixture exercises [{missing}]")

    if failures:
        print(f"{len(failures)} fixture failure(s):")
        print("\n".join(failures))
        return 1
    print(f"{len(fixtures)} fixtures, {len(checks_seen)} checks: all exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
