// wtcp-lint fixture: tokenizer correctness.  Every hazard below is inert
// — inside comments, string literals, raw strings, or spliced lines —
// so this file must produce ZERO diagnostics.  A naive regex linter
// fails almost every line here.
#include <string>
#include <utility>

namespace fx {

// In a comment: std::move(ghost); ghost.seq; rand(); time(nullptr);
// std::chrono::steady_clock::now(); std::unordered_map<int, int> um;

const char* kDoc = R"(
  std::move(ghost);
  ghost;
  rand();
  std::random_device rd;
  std::chrono::system_clock::now();
  for (auto& kv : um) {}
)";

const char* kCustomDelim = R"fx(
  time(nullptr); )" — a fake terminator inside the raw string
  WTCP_AUDIT_CHECK(++evaluated, "fx", "x", "");
)fx";

const char* kEscapes = "std::move(quoted); rand(); \" time(nullptr);";

// A line continuation glues the next physical line into this comment: \
   rand(); std::chrono::steady_clock::now();

#define FX_CONCAT(a, b) a##b
#define FX_WRAP(x) \
  do {             \
    (void)(x);     \
  } while (0)

inline int add(int a, int b) { return a + b; }

inline std::string quoted_move(std::string s) {
  // The identifier `move` alone (no std:: qualification) is not a move.
  std::string move = s;
  return move;
}

}  // namespace fx
