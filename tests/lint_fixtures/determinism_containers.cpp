// wtcp-lint fixture: container-order determinism hazards — unordered
// containers (hash order), pointer-keyed ordered containers (address
// order), and range-for iteration over unordered members.
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace fx {

struct Node;
void use_pair(int k, int v);

struct FlowTable {
  std::unordered_map<int, int> by_id;  // LINT-EXPECT: unordered-container
  std::vector<int> order;

  int sum_hash_order() const {
    int s = 0;
    for (const auto& kv : by_id) s += kv.second;  // LINT-EXPECT: unordered-iteration
    return s;
  }

  int sum_insertion_order() const {
    int s = 0;
    for (int v : order) s += v;  // ok: vector iterates deterministically
    return s;
  }
};

using IdMap = std::unordered_map<int, long>;  // LINT-EXPECT: unordered-container

struct Pending {
  IdMap pending;

  long drain() {
    long s = 0;
    for (auto& kv : pending) s += kv.second;  // LINT-EXPECT: unordered-iteration
    return s;
  }
};

std::map<Node*, int> rank_by_node;  // LINT-EXPECT: pointer-keyed-order
std::set<const Node*> visited;     // LINT-EXPECT: pointer-keyed-order

std::map<int, Node*> node_by_rank;      // ok: pointer values, integer keys
std::map<std::string, int> rank_by_name;  // ok: value-ordered key

}  // namespace fx
