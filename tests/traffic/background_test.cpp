#include "src/traffic/background.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/topo/scenario.hpp"

namespace wtcp::traffic {
namespace {

class OnOffTest : public ::testing::Test {
 protected:
  void build(OnOffConfig cfg) {
    src_ = std::make_unique<OnOffSource>(sim_, cfg, 0, 1, [this](net::PacketRef p) {
      sent_.push_back(std::move(p));
    });
  }

  sim::Simulator sim_{1};
  std::unique_ptr<OnOffSource> src_;
  std::vector<net::PacketRef> sent_;
};

TEST_F(OnOffTest, CbrRateIsExact) {
  OnOffConfig cfg;
  cfg.rate_bps = 57'600;  // 576 B packets -> one per 80 ms
  cfg.packet_bytes = 576;
  cfg.mean_off_s = 0;  // pure CBR
  build(cfg);
  src_->start();
  sim_.run(sim::Time::seconds(10));
  // t=0, 0.08, ..., <=10 s: 126 packets (0 through 125 inclusive).
  EXPECT_EQ(sent_.size(), 126u);
  EXPECT_EQ(sent_[0]->type, net::PacketType::kBackground);
  EXPECT_EQ(sent_[0]->size_bytes, 576);
  EXPECT_DOUBLE_EQ(src_->offered_load_bps(), 57'600.0);
}

TEST_F(OnOffTest, StartDelayHonored) {
  OnOffConfig cfg;
  cfg.mean_off_s = 0;
  cfg.start = sim::Time::seconds(5);
  build(cfg);
  src_->start();
  sim_.run(sim::Time::seconds(4));
  EXPECT_TRUE(sent_.empty());
  sim_.run(sim::Time::seconds(6));
  EXPECT_FALSE(sent_.empty());
}

TEST_F(OnOffTest, OnOffDutyCycleMatches) {
  OnOffConfig cfg;
  cfg.rate_bps = 57'600;
  cfg.packet_bytes = 576;
  cfg.mean_on_s = 1.0;
  cfg.mean_off_s = 3.0;  // 25% duty
  build(cfg);
  src_->start();
  sim_.run(sim::Time::seconds(2000));
  EXPECT_DOUBLE_EQ(src_->offered_load_bps(), 57'600.0 * 0.25);
  const double achieved =
      static_cast<double>(src_->stats().bytes_sent) * 8.0 / 2000.0;
  EXPECT_NEAR(achieved, src_->offered_load_bps(), src_->offered_load_bps() * 0.15);
  EXPECT_GT(src_->stats().bursts, 100u);
}

TEST_F(OnOffTest, StopCeasesEmission) {
  OnOffConfig cfg;
  cfg.mean_off_s = 0;
  build(cfg);
  src_->start();
  sim_.run(sim::Time::seconds(1));
  const std::size_t n = sent_.size();
  src_->stop();
  sim_.run(sim::Time::seconds(10));
  EXPECT_EQ(sent_.size(), n);
}

TEST_F(OnOffTest, DeterministicPerSeed) {
  OnOffConfig cfg;
  cfg.mean_on_s = 0.5;
  cfg.mean_off_s = 0.5;
  sim::Simulator a(9), b(9);
  std::size_t na = 0, nb = 0;
  OnOffSource sa(a, cfg, 0, 1, [&](net::PacketRef) { ++na; });
  OnOffSource sb(b, cfg, 0, 1, [&](net::PacketRef) { ++nb; });
  sa.start();
  sb.start();
  a.run(sim::Time::seconds(100));
  b.run(sim::Time::seconds(100));
  EXPECT_EQ(na, nb);
  EXPECT_GT(na, 0u);
}

// ---------------------------------------------------------------------------
// Scenario-level congestion
// ---------------------------------------------------------------------------

topo::ScenarioConfig congested_wan(double load_fraction) {
  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.tcp.file_bytes = 40 * 1024;
  cfg.channel_errors = false;  // isolate congestion effects
  cfg.wired.queue_packets = 10;
  cfg.cross_traffic = true;
  cfg.cross.rate_bps = static_cast<std::int64_t>(56'000 * load_fraction);
  cfg.cross.mean_off_s = 0;  // CBR
  return cfg;
}

TEST(CrossTraffic, BackgroundTerminatesAtBs) {
  topo::ScenarioConfig cfg = congested_wan(0.25);
  topo::Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  EXPECT_TRUE(m.completed);
  EXPECT_GT(s.background_delivered(), 0u);
  // No background packet can appear at the BS that was not sent, and the
  // shortfall is bounded by wired-queue drops plus what is still queued.
  const std::uint64_t sent = s.cross_traffic_source()->stats().packets_sent;
  EXPECT_LE(s.background_delivered(), sent);
  EXPECT_GE(s.background_delivered() + s.wired_link().queue_stats(0).dropped +
                s.wired_link().queue_depth(0) + 1,
            sent);
}

TEST(CrossTraffic, HeavyLoadCongestsAndTcpBacksOff) {
  // 90% background load on 56 kbps leaves ~5.6 kbps for TCP; the wired
  // queue overflows and TCP sees genuine congestion losses.
  topo::ScenarioConfig cfg = congested_wan(0.9);
  topo::Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  EXPECT_TRUE(m.completed);
  EXPECT_GT(s.wired_link().queue_stats(0).dropped, 0u);
  EXPECT_GT(m.timeouts + m.fast_retransmits, 0u);
  // TCP gets well under the wireless rate now.
  EXPECT_LT(m.throughput_bps, 9'000);
}

TEST(CrossTraffic, LightLoadBarelyAffectsTcp) {
  topo::ScenarioConfig quiet = congested_wan(0.0);
  quiet.cross_traffic = false;
  topo::ScenarioConfig light = congested_wan(0.15);
  const stats::RunMetrics mq = topo::run_scenario(quiet);
  const stats::RunMetrics ml = topo::run_scenario(light);
  // 56 kbps wired minus 15% still exceeds the 12.8 kbps wireless rate.
  EXPECT_GT(ml.throughput_bps, 0.9 * mq.throughput_bps);
}

}  // namespace
}  // namespace wtcp::traffic
