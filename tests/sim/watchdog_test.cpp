// Per-run watchdog budgets: each limit fires with the right structured
// verdict, and an unarmed budget changes nothing about a run.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/simulator.hpp"

namespace wtcp::sim {
namespace {

// Schedules itself forever: the stalled-scenario stand-in every watchdog
// test runs against.
void churn(Simulator& sim, std::vector<double>* times = nullptr) {
  if (times) times->push_back(sim.now().to_seconds());
  sim.after(Time::milliseconds(1), [&sim, times] { churn(sim, times); },
            "churn");
}

TEST(RunBudget, DefaultIsUnarmed) {
  RunBudget b;
  EXPECT_FALSE(b.armed());
  b.max_events = 10;
  EXPECT_TRUE(b.armed());
  b = RunBudget{};
  b.max_virtual_time = Time::seconds(1);
  EXPECT_TRUE(b.armed());
  b = RunBudget{};
  b.max_wall_seconds = 0.5;
  EXPECT_TRUE(b.armed());
}

TEST(RunStatus, ToStringCoversEveryValue) {
  EXPECT_STREQ(to_string(RunStatus::kOk), "ok");
  EXPECT_STREQ(to_string(RunStatus::kEventBudget), "event-budget");
  EXPECT_STREQ(to_string(RunStatus::kTimeBudget), "time-budget");
  EXPECT_STREQ(to_string(RunStatus::kDeadline), "deadline-exceeded");
  EXPECT_STREQ(to_string(RunStatus::kException), "exception");
}

TEST(Watchdog, EventBudgetStopsInfiniteChain) {
  Simulator sim;
  churn(sim);
  RunBudget b;
  b.max_events = 1000;
  sim.set_budget(b);
  const std::uint64_t n = sim.run();
  EXPECT_EQ(n, 1000u);
  EXPECT_EQ(sim.outcome().status, RunStatus::kEventBudget);
  EXPECT_FALSE(sim.outcome().ok());
  EXPECT_NE(sim.outcome().message.find("1000"), std::string::npos)
      << sim.outcome().message;
}

TEST(Watchdog, VirtualTimeBudgetFiresBeforeHorizon) {
  Simulator sim;
  churn(sim);
  RunBudget b;
  b.max_virtual_time = Time::seconds(1);
  sim.set_budget(b);
  sim.run(Time::seconds(10));
  EXPECT_EQ(sim.outcome().status, RunStatus::kTimeBudget);
  EXPECT_LE(sim.now(), Time::seconds(1));
}

TEST(Watchdog, HorizonBeforeTimeBudgetIsStillOk) {
  // The run(horizon) argument stopping the run is the normal, pre-existing
  // contract — only the BUDGET crossing is a watchdog verdict.
  Simulator sim;
  churn(sim);
  RunBudget b;
  b.max_virtual_time = Time::seconds(10);
  sim.set_budget(b);
  sim.run(Time::seconds(1));
  EXPECT_EQ(sim.outcome().status, RunStatus::kOk);
  EXPECT_TRUE(sim.outcome().ok());
}

TEST(Watchdog, WallClockDeadlineFiresOnStalledRun) {
  Simulator sim;
  // Each event burns ~1 ms of real time; the deadline check runs every 64
  // events, so ~64 ms per check window against a 50 ms budget.
  std::function<void()> burn = [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    sim.after(Time::nanoseconds(1), burn, "burn");
  };
  sim.after(Time::nanoseconds(1), burn, "burn");
  RunBudget b;
  b.max_wall_seconds = 0.05;
  sim.set_budget(b);
  const std::uint64_t n = sim.run();
  EXPECT_EQ(sim.outcome().status, RunStatus::kDeadline);
  // Must have been cut off long before any natural end (the chain is
  // infinite) — a couple of check windows at most.
  EXPECT_LE(n, 1000u);
}

TEST(Watchdog, UnarmedBudgetChangesNothing) {
  std::vector<double> plain_times, budget_times;
  Simulator plain;
  churn(plain, &plain_times);
  const std::uint64_t n_plain = plain.run(Time::seconds(1));

  Simulator with_default;
  churn(with_default, &budget_times);
  with_default.set_budget(RunBudget{});  // explicitly set, still unarmed
  const std::uint64_t n_budget = with_default.run(Time::seconds(1));

  EXPECT_EQ(n_plain, n_budget);
  EXPECT_EQ(plain_times, budget_times);
  EXPECT_EQ(plain.outcome().status, RunStatus::kOk);
  EXPECT_EQ(with_default.outcome().status, RunStatus::kOk);
}

TEST(Watchdog, OutcomeResetsOnNextRun) {
  Simulator sim;
  churn(sim);
  RunBudget b;
  b.max_events = 10;
  sim.set_budget(b);
  sim.run();
  ASSERT_EQ(sim.outcome().status, RunStatus::kEventBudget);

  // Disarm and run again: the verdict must not stick.
  sim.set_budget(RunBudget{});
  sim.run(sim.now() + Time::milliseconds(5));
  EXPECT_EQ(sim.outcome().status, RunStatus::kOk);
  EXPECT_TRUE(sim.outcome().message.empty());
}

TEST(Watchdog, EventBudgetCountsPerRunCall) {
  Simulator sim;
  churn(sim);
  RunBudget b;
  b.max_events = 100;
  sim.set_budget(b);
  EXPECT_EQ(sim.run(), 100u);
  ASSERT_EQ(sim.outcome().status, RunStatus::kEventBudget);
  // The budget is per run() call, not cumulative across calls.
  EXPECT_EQ(sim.run(), 100u);
  EXPECT_EQ(sim.outcome().status, RunStatus::kEventBudget);
}

}  // namespace
}  // namespace wtcp::sim
