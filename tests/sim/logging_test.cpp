#include "src/sim/logging.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace wtcp::sim {
namespace {

// Capture log output through a tmpfile sink.
class LogCapture {
 public:
  LogCapture() : file_(std::tmpfile()) { Log::set_sink(file_); }
  ~LogCapture() {
    Log::set_sink(nullptr);
    Log::set_level(LogLevel::kOff);
    if (file_) std::fclose(file_);
  }

  std::string contents() {
    std::fflush(file_);
    std::rewind(file_);
    std::string out;
    char buf[256];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), file_)) > 0) out.append(buf, n);
    return out;
  }

 private:
  std::FILE* file_;
};

TEST(Log, OffByDefaultAndDisabledLevelsDontWrite) {
  LogCapture cap;
  Log::set_level(LogLevel::kOff);
  WTCP_LOG(kWarn, Time::seconds(1), "test", "should not appear %d", 1);
  EXPECT_TRUE(cap.contents().empty());
}

TEST(Log, EnabledLevelWrites) {
  LogCapture cap;
  Log::set_level(LogLevel::kDebug);
  WTCP_LOG(kInfo, Time::from_seconds(1.5), "tcp", "timeout seq=%d rto=%s", 42,
           "1.2s");
  const std::string out = cap.contents();
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("tcp"), std::string::npos);
  EXPECT_NE(out.find("timeout seq=42 rto=1.2s"), std::string::npos);
  EXPECT_NE(out.find("1.500000"), std::string::npos);
}

TEST(Log, LevelFiltering) {
  LogCapture cap;
  Log::set_level(LogLevel::kWarn);
  WTCP_LOG(kDebug, Time::zero(), "x", "debug hidden");
  WTCP_LOG(kTrace, Time::zero(), "x", "trace hidden");
  WTCP_LOG(kWarn, Time::zero(), "x", "warn shown");
  const std::string out = cap.contents();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("warn shown"), std::string::npos);
}

TEST(Log, EnabledPredicate) {
  Log::set_level(LogLevel::kInfo);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_TRUE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kWarn));
  Log::set_level(LogLevel::kOff);
  EXPECT_FALSE(Log::enabled(LogLevel::kWarn));
}

TEST(LogFormat, FormatsLikePrintf) {
  EXPECT_EQ(log_format("a=%d b=%s c=%.2f", 7, "xy", 1.5), "a=7 b=xy c=1.50");
  EXPECT_EQ(log_format("no args"), "no args");
  EXPECT_EQ(log_format("%s", ""), "");
}

}  // namespace
}  // namespace wtcp::sim
