#include "src/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "src/sim/simulator.hpp"

namespace wtcp::sim {
namespace {

TEST(Scheduler, StartsEmptyAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.next_event_time(), Time::max());
  EXPECT_FALSE(s.run_one());
}

TEST(Scheduler, RunsEventAtScheduledTime) {
  Scheduler s;
  Time fired;
  s.schedule_at(Time::milliseconds(10), [&] { fired = s.now(); });
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(fired, Time::milliseconds(10));
  EXPECT_EQ(s.now(), Time::milliseconds(10));
}

TEST(Scheduler, EventsFireInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::milliseconds(30), [&] { order.push_back(3); });
  s.schedule_at(Time::milliseconds(10), [&] { order.push_back(1); });
  s.schedule_at(Time::milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, SimultaneousEventsFireInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(Time::seconds(1), [&order, i] { order.push_back(i); });
  }
  s.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterIsRelativeToNow) {
  Scheduler s;
  Time fired;
  s.schedule_at(Time::seconds(5), [&] {
    s.schedule_after(Time::seconds(2), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, Time::seconds(7));
}

TEST(Scheduler, PastScheduleClampsToNow) {
  Scheduler s;
  Time fired;
  s.schedule_at(Time::seconds(5), [&] {
    s.schedule_at(Time::seconds(1), [&] { fired = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(fired, Time::seconds(5));
}

TEST(Scheduler, NegativeDelayClampsToZero) {
  Scheduler s;
  bool fired = false;
  s.schedule_after(Time::seconds(-3), [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), Time::zero());
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule_at(Time::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(s.pending(id));
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.pending(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotentAndSafeOnInvalidHandles) {
  Scheduler s;
  EventId id = s.schedule_at(Time::seconds(1), [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));      // already cancelled
  EXPECT_FALSE(s.cancel(EventId{}));  // default/invalid handle
  s.run();
  EXPECT_FALSE(s.cancel(id));  // stale handle after run
}

TEST(Scheduler, CancelledEventDoesNotBlockNextEventTime) {
  Scheduler s;
  EventId early = s.schedule_at(Time::seconds(1), [] {});
  s.schedule_at(Time::seconds(2), [] {});
  s.cancel(early);
  EXPECT_EQ(s.next_event_time(), Time::seconds(2));
}

TEST(Scheduler, RunUntilStopsAtHorizonInclusive) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::seconds(1), [&] { order.push_back(1); });
  s.schedule_at(Time::seconds(2), [&] { order.push_back(2); });
  s.schedule_at(Time::seconds(3), [&] { order.push_back(3); });
  EXPECT_EQ(s.run_until(Time::seconds(2)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), Time::seconds(2));
  EXPECT_EQ(s.pending_count(), 1u);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.schedule_after(Time::seconds(1), chain);
  };
  s.schedule_at(Time::seconds(1), chain);
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), Time::seconds(5));
}

TEST(Scheduler, ExecutedCountAccumulates) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(Time::milliseconds(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_count(), 7u);
}

TEST(Scheduler, SlotReuseInvalidatesStaleHandles) {
  Scheduler s;
  bool a_fired = false, b_fired = false;
  EventId a = s.schedule_at(Time::seconds(1), [&] { a_fired = true; });
  EXPECT_TRUE(s.cancel(a));
  // The new event recycles a's slot; a's handle must stay dead.
  EventId b = s.schedule_at(Time::seconds(2), [&] { b_fired = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(s.pending(a));
  EXPECT_TRUE(s.pending(b));
  EXPECT_FALSE(s.cancel(a));  // stale handle must not kill b
  EXPECT_TRUE(s.pending(b));
  s.run();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
}

TEST(Scheduler, LargeCapturesFallBackToHeapAndStillFire) {
  Scheduler s;
  std::array<char, 256> big{};  // larger than SmallCallback's inline buffer
  big[0] = 'x';
  big[255] = 'y';
  char seen_front = 0, seen_back = 0;
  s.schedule_at(Time::seconds(1), [big, &seen_front, &seen_back] {
    seen_front = big[0];
    seen_back = big[255];
  });
  s.run();
  EXPECT_EQ(seen_front, 'x');
  EXPECT_EQ(seen_back, 'y');
}

TEST(Scheduler, ProfilingMergesEqualTagContent) {
  // Tags are counted by pointer on the hot path; executed_by_tag() must
  // merge distinct pointers with equal content (identical literals can
  // have different addresses across translation units).
  static const char tag_a[] = "dup";
  static const char tag_b[] = "dup";
  Scheduler s;
  s.enable_profiling();
  s.schedule_at(Time::seconds(1), [] {}, tag_a);
  s.schedule_at(Time::seconds(2), [] {}, tag_b);
  s.schedule_at(Time::seconds(3), [] {});  // untagged
  s.run();
  const auto by_tag = s.executed_by_tag();
  ASSERT_TRUE(by_tag.contains("dup"));
  EXPECT_EQ(by_tag.at("dup"), 2u);
  ASSERT_TRUE(by_tag.contains("untagged"));
  EXPECT_EQ(by_tag.at("untagged"), 1u);
}

TEST(Scheduler, ClearDropsEverything) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(Time::seconds(1), [&] { fired = true; });
  s.clear();
  EXPECT_TRUE(s.empty());
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, StopHaltsRunLoop) {
  Simulator sim;
  int fired = 0;
  sim.after(Time::seconds(1), [&] { ++fired; });
  sim.after(Time::seconds(2), [&] {
    ++fired;
    sim.stop();
  });
  sim.after(Time::seconds(3), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(sim.stopped());
}

TEST(Simulator, RunHonorsHorizon) {
  Simulator sim;
  int fired = 0;
  sim.after(Time::seconds(1), [&] { ++fired; });
  sim.after(Time::seconds(10), [&] { ++fired; });
  sim.run(Time::seconds(5));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, ForkedRngsAreDeterministicPerSeed) {
  Simulator a(42), b(42), c(43);
  EXPECT_EQ(a.fork_rng("x").next_u64(), b.fork_rng("x").next_u64());
  EXPECT_NE(a.fork_rng("x").next_u64(), c.fork_rng("x").next_u64());
  EXPECT_NE(a.fork_rng("x").next_u64(), a.fork_rng("y").next_u64());
}

}  // namespace
}  // namespace wtcp::sim
