#include "src/sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace wtcp::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(1, 0), b(1, 1);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIsDeterministicAndLabelled) {
  Rng root(7);
  Rng a = root.fork("alpha");
  Rng b = root.fork("alpha");
  Rng c = root.fork("beta");
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(9), b(9);
  (void)a.fork("child");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng r(11);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.uniform(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(17);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60'000; ++i) {
    const std::int64_t v = r.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10'000, 600);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(23);
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.05);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(29);
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(r.exponential(0.001), 0.0);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng r(37);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

// Property sweep: exponential sample means converge for various means.
class RngExponentialSweep : public ::testing::TestWithParam<double> {};

TEST_P(RngExponentialSweep, MeanConverges) {
  const double mean = GetParam();
  Rng r(41);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(mean);
  EXPECT_NEAR(sum / kN, mean, mean * 0.03);
}

INSTANTIATE_TEST_SUITE_P(Means, RngExponentialSweep,
                         ::testing::Values(0.01, 0.4, 1.0, 4.0, 10.0));

}  // namespace
}  // namespace wtcp::sim
