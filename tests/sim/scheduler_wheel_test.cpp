// Differential and boundary tests for the timing-wheel event core.
//
// The wheel replaced the binary heap as the default scheduler; the heap
// stays selectable (WTCP_SCHED=heap) precisely so these tests can drive
// BOTH cores in lockstep and assert they fire the same events at the same
// times in the same order.  The randomized trace below mixes every
// placement class — same-tick, level-0 direct, every cascade level, and
// beyond-span overflow — with cancels and rescheduling, because the
// wheel's failure modes live at the boundaries between those classes.
#include "src/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/sim/random.hpp"

namespace wtcp::sim {
namespace {

TEST(SchedulerWheel, ImplSelectionIsExplicit) {
  Scheduler wheel(SchedulerImpl::kWheel);
  Scheduler heap(SchedulerImpl::kHeap);
  EXPECT_EQ(wheel.impl(), SchedulerImpl::kWheel);
  EXPECT_EQ(heap.impl(), SchedulerImpl::kHeap);
  EXPECT_STREQ(to_string(SchedulerImpl::kWheel), "wheel");
  EXPECT_STREQ(to_string(SchedulerImpl::kHeap), "heap");
}

// One randomized op stream applied to both cores simultaneously.  Every
// observable — firing order, firing times, cancel results, pending
// counts, next_event_time — must match exactly at every step.
TEST(SchedulerWheel, RandomizedDifferentialMatchesHeap) {
  constexpr int kOps = 1'000'000;
  Rng rng(20260809);

  Scheduler wheel(SchedulerImpl::kWheel);
  Scheduler heap(SchedulerImpl::kHeap);
  std::vector<std::uint64_t> fired_wheel;
  std::vector<std::uint64_t> fired_heap;
  fired_wheel.reserve(kOps);
  fired_heap.reserve(kOps);

  struct Pair {
    EventId w;
    EventId h;
  };
  std::vector<Pair> live;
  std::uint64_t next_tag = 0;

  // Delay distribution: exercise every wheel level, the same-tick path,
  // and the beyond-span overflow heap.  A uniform delay would almost
  // never land on a level boundary or past the 2^40 ns span.
  auto random_delay = [&rng]() -> std::int64_t {
    switch (rng.uniform_int(0, 5)) {
      case 0:
        return 0;  // same tick
      case 1:
        return rng.uniform_int(1, 1023);  // level 0 direct
      case 2: {
        // Around a power of two: straddles level boundaries.
        const std::int64_t base = std::int64_t{1}
                                  << rng.uniform_int(1, 41);
        return base + rng.uniform_int(-1, 1);
      }
      case 3:
        return rng.uniform_int(1, 1'000'000);  // microsecond cluster
      case 4:
        return rng.uniform_int(1, std::int64_t{1} << 38);  // deep levels
      default:
        // Past the wheel span: parks in the overflow heap, reintegrates
        // as simulated time rotates close.
        return (std::int64_t{1} << 40) + rng.uniform_int(0, 1 << 20);
    }
  };

  for (int op = 0; op < kOps; ++op) {
    switch (rng.uniform_int(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // schedule the same event on both cores
        const Time at = wheel.now() + Time::nanoseconds(random_delay());
        const std::uint64_t tag = next_tag++;
        live.push_back(Pair{
            wheel.schedule_at(at, [&fired_wheel, tag] {
              fired_wheel.push_back(tag);
            }),
            heap.schedule_at(at, [&fired_heap, tag] {
              fired_heap.push_back(tag);
            }),
        });
        break;
      }
      case 4:
      case 5: {  // cancel a random (possibly stale) handle on both
        if (live.empty()) break;
        const std::size_t i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        ASSERT_EQ(wheel.pending(live[i].w), heap.pending(live[i].h));
        ASSERT_EQ(wheel.cancel(live[i].w), heap.cancel(live[i].h));
        live[i] = live.back();
        live.pop_back();
        break;
      }
      case 6:
      case 7:
      case 8: {  // fire the earliest event on both
        ASSERT_EQ(wheel.run_one(), heap.run_one());
        ASSERT_EQ(wheel.now(), heap.now());
        break;
      }
      default: {  // advance both to the same horizon
        const Time until = wheel.now() + Time::nanoseconds(random_delay());
        ASSERT_EQ(wheel.run_until(until), heap.run_until(until));
        ASSERT_EQ(wheel.now(), heap.now());
        break;
      }
    }
    ASSERT_EQ(wheel.pending_count(), heap.pending_count());
    ASSERT_EQ(wheel.next_event_time(), heap.next_event_time());
  }

  // Drain everything that is still pending.
  ASSERT_EQ(wheel.run(), heap.run());
  ASSERT_EQ(wheel.now(), heap.now());
  ASSERT_EQ(wheel.executed_count(), heap.executed_count());
  ASSERT_EQ(fired_wheel, fired_heap);  // identical order, event by event
}

// Same-instant events must fire in insertion order even when they reach
// the fire tick along different paths: scheduled far ahead (cascades down
// level by level), scheduled just ahead (level-0 direct), and scheduled
// from a callback mid-run.  Both cores must agree on the order.
TEST(SchedulerWheel, SameTickSeqOrderAcrossCascadePaths) {
  for (SchedulerImpl impl : {SchedulerImpl::kWheel, SchedulerImpl::kHeap}) {
    Scheduler s(impl);
    const Time t = Time::nanoseconds(50'000'000);  // 50 ms: a deep level
    std::vector<int> order;
    // Far ahead of t: these cascade down through multiple levels.
    s.schedule_at(t, [&] { order.push_back(0); });
    s.schedule_at(t, [&] { order.push_back(1); });
    // A helper 200 ns before t whose callback schedules two more at t —
    // they are born inside the fire window (level-0 direct placement).
    s.schedule_at(t - Time::nanoseconds(200), [&] {
      s.schedule_at(t, [&] { order.push_back(3); });
      s.schedule_at(t, [&] { order.push_back(4); });
    });
    // Scheduled before the run but after the two cascade events.
    s.schedule_at(t, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}))
        << "impl=" << to_string(impl);
  }
}

// The EBSN/RTO re-arm pattern, aimed at bucket boundaries: a timer is
// cancelled and re-scheduled so that the old and new fire times land in
// different buckets (and different levels).  True removal plus re-insert
// must leave exactly one firing at exactly the new time.
TEST(SchedulerWheel, RescheduleAcrossBucketBoundary) {
  for (SchedulerImpl impl : {SchedulerImpl::kWheel, SchedulerImpl::kHeap}) {
    Scheduler s(impl);
    int fired = 0;
    Time fired_at;
    // Straddle each level boundary 2^(10L): the first placement lands at
    // level L-1's top bucket, the re-placement at level L's bottom one.
    for (int shift : {10, 20, 30}) {
      const std::int64_t edge = std::int64_t{1} << shift;
      const Time base = s.now();
      EventId id = s.schedule_after(Time::nanoseconds(edge - 1),
                                    [&] { ++fired; });
      ASSERT_TRUE(s.cancel(id));
      id = s.schedule_after(Time::nanoseconds(edge + 1), [&] {
        ++fired;
        fired_at = s.now();
      });
      EXPECT_EQ(s.run(), 1u) << "impl=" << to_string(impl);
      EXPECT_EQ(fired_at, base + Time::nanoseconds(edge + 1));
    }
    EXPECT_EQ(fired, 3);
    // Re-arm across the overflow horizon: beyond-span, then back inside.
    EventId id = s.schedule_after(
        Time::nanoseconds((std::int64_t{1} << 40) + 5), [&] { ++fired; });
    ASSERT_TRUE(s.cancel(id));
    const Time base = s.now();
    s.schedule_after(Time::nanoseconds(123), [&] {
      ++fired;
      fired_at = s.now();
    });
    EXPECT_EQ(s.run(), 1u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(fired_at, base + Time::nanoseconds(123));
  }
}

// Beyond-span events park in the overflow heap and reintegrate once the
// wheel's horizon rotates near; cancelled ones must quietly disappear.
TEST(SchedulerWheel, FarFutureOverflowReintegratesAndCancels) {
  for (SchedulerImpl impl : {SchedulerImpl::kWheel, SchedulerImpl::kHeap}) {
    Scheduler s(impl);
    const std::int64_t span = std::int64_t{1} << 40;
    std::vector<int> order;
    s.schedule_after(Time::nanoseconds(2 * span + 7),
                     [&] { order.push_back(2); });
    const EventId dead = s.schedule_after(Time::nanoseconds(span + 100),
                                          [&] { order.push_back(9); });
    s.schedule_after(Time::nanoseconds(span + 500),
                     [&] { order.push_back(1); });
    s.schedule_after(Time::nanoseconds(50), [&] { order.push_back(0); });
    ASSERT_TRUE(s.cancel(dead));
    EXPECT_EQ(s.run(), 3u) << "impl=" << to_string(impl);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(s.now(), Time::nanoseconds(2 * span + 7));
  }
}

// run_until must advance the wheel's position even when no event fires,
// so later placement deltas stay exact across the skipped stretch.
TEST(SchedulerWheel, RunUntilAdvancesWheelPosition) {
  Scheduler s(SchedulerImpl::kWheel);
  EXPECT_EQ(s.run_until(Time::milliseconds(500)), 0u);
  EXPECT_EQ(s.now(), Time::milliseconds(500));
  Time fired_at;
  s.schedule_after(Time::nanoseconds(3), [&] { fired_at = s.now(); });
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(fired_at, Time::milliseconds(500) + Time::nanoseconds(3));
}

// clear() between runs must leave the wheel in a like-new state: same
// slot handout order, exact next_event_time bookkeeping.
TEST(SchedulerWheel, ClearResetsWheelState) {
  Scheduler s(SchedulerImpl::kWheel);
  for (int i = 0; i < 100; ++i) {
    s.schedule_after(Time::nanoseconds(1 + 10'000 * i), [] {});
  }
  s.run_until(Time::nanoseconds(200'000));  // fire some, keep the rest
  ASSERT_GT(s.pending_count(), 0u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.next_event_time(), Time::max());
  Time fired_at;
  s.schedule_after(Time::nanoseconds(42), [&] { fired_at = s.now(); });
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(fired_at, Time::nanoseconds(200'000 + 42));
}

}  // namespace
}  // namespace wtcp::sim
