#include "src/sim/time.hpp"

#include <gtest/gtest.h>

namespace wtcp::sim {
namespace {

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t.ns(), 0);
  EXPECT_TRUE(t.is_zero());
  EXPECT_FALSE(t.is_negative());
}

TEST(Time, NamedConstructors) {
  EXPECT_EQ(Time::nanoseconds(5).ns(), 5);
  EXPECT_EQ(Time::microseconds(3).ns(), 3'000);
  EXPECT_EQ(Time::milliseconds(7).ns(), 7'000'000);
  EXPECT_EQ(Time::seconds(2).ns(), 2'000'000'000);
}

TEST(Time, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Time::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Time::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(Time::from_seconds(0.4e-9).ns(), 0);
  EXPECT_EQ(Time::from_seconds(0.6e-9).ns(), 1);
}

TEST(Time, FromMilliseconds) {
  EXPECT_EQ(Time::from_milliseconds(0.5).ns(), 500'000);
  EXPECT_EQ(Time::from_milliseconds(100).ns(), Time::milliseconds(100).ns());
}

TEST(Time, ToSecondsRoundTrip) {
  const Time t = Time::milliseconds(1234);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.234);
  EXPECT_DOUBLE_EQ(t.to_milliseconds(), 1234.0);
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::milliseconds(1), Time::milliseconds(2));
  EXPECT_LE(Time::seconds(1), Time::milliseconds(1000));
  EXPECT_EQ(Time::seconds(1), Time::milliseconds(1000));
  EXPECT_GT(Time::max(), Time::seconds(1'000'000));
}

TEST(Time, Arithmetic) {
  const Time a = Time::milliseconds(300);
  const Time b = Time::milliseconds(200);
  EXPECT_EQ((a + b).ns(), Time::milliseconds(500).ns());
  EXPECT_EQ((a - b).ns(), Time::milliseconds(100).ns());
  EXPECT_EQ((b - a).ns(), -Time::milliseconds(100).ns());
  EXPECT_TRUE((b - a).is_negative());
  EXPECT_EQ((a * 3).ns(), Time::milliseconds(900).ns());
  EXPECT_EQ((3 * a).ns(), Time::milliseconds(900).ns());
  EXPECT_EQ((a / 3).ns(), 100'000'000);
  EXPECT_DOUBLE_EQ(a / b, 1.5);
}

TEST(Time, CompoundAssignment) {
  Time t = Time::seconds(1);
  t += Time::milliseconds(500);
  EXPECT_EQ(t, Time::milliseconds(1500));
  t -= Time::seconds(1);
  EXPECT_EQ(t, Time::milliseconds(500));
}

TEST(Time, Scaled) {
  EXPECT_EQ(Time::milliseconds(100).scaled(1.5), Time::milliseconds(150));
  EXPECT_EQ(Time::milliseconds(100).scaled(0.0), Time::zero());
  // Rounds to nearest nanosecond.
  EXPECT_EQ(Time::nanoseconds(3).scaled(0.5), Time::nanoseconds(2));
}

TEST(Time, ToString) {
  EXPECT_EQ(Time::seconds(1).to_string(), "1.000000000s");
  EXPECT_EQ(Time::nanoseconds(1).to_string(), "0.000000001s");
}

TEST(TransmissionTime, ExactDivision) {
  // 1000 bytes at 8000 bps = 1 second exactly.
  EXPECT_EQ(transmission_time(1000, 8'000), Time::seconds(1));
}

TEST(TransmissionTime, RoundsUp) {
  // 1 byte at 19200 bps = 416666.67 ns -> rounded up.
  EXPECT_EQ(transmission_time(1, 19'200).ns(), 416'667);
}

TEST(TransmissionTime, PaperWirelessFrame) {
  // A 128 B MTU fragment with 1.5x overhead = 192 B at 19.2 kbps = 80 ms.
  EXPECT_EQ(transmission_time(192, 19'200), Time::milliseconds(80));
}

TEST(TransmissionTime, ZeroBytes) {
  EXPECT_EQ(transmission_time(0, 19'200), Time::zero());
}

TEST(BitsIn, Basics) {
  EXPECT_EQ(bits_in(Time::seconds(1), 19'200), 19'200);
  EXPECT_EQ(bits_in(Time::milliseconds(500), 2'000'000), 1'000'000);
  EXPECT_EQ(bits_in(Time::zero(), 19'200), 0);
  EXPECT_EQ(bits_in(Time::seconds(-1), 19'200), 0);
}

}  // namespace
}  // namespace wtcp::sim
