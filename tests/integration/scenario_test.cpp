// Integration tests over the full FH-BS-MH topology.
#include "src/topo/scenario.hpp"

#include <gtest/gtest.h>

#include "src/core/theoretical.hpp"

namespace wtcp::topo {
namespace {

ScenarioConfig quick_wan() {
  ScenarioConfig cfg = wan_scenario();
  cfg.tcp.file_bytes = 30 * 1024;  // keep tests fast
  return cfg;
}

TEST(Scenario, ErrorFreeTransferCompletesNearLinkRate) {
  ScenarioConfig cfg = quick_wan();
  cfg.channel_errors = false;
  const stats::RunMetrics m = run_scenario(cfg);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.timeouts, 0u);
  EXPECT_EQ(m.segments_retransmitted, 0u);
  EXPECT_DOUBLE_EQ(m.goodput, 1.0);
  // Effective wireless rate is 12.8 kbps; TCP should get most of it.
  EXPECT_GT(m.throughput_bps, 0.9 * 12'800);
  EXPECT_LE(m.throughput_bps, 12'800 * 1.01);
}

TEST(Scenario, ErrorFreeLanTransferSaturates) {
  ScenarioConfig cfg = lan_scenario();
  cfg.channel_errors = false;
  cfg.tcp.file_bytes = 1024 * 1024;
  const stats::RunMetrics m = run_scenario(cfg);
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.throughput_bps, 0.9 * 2'000'000);
}

TEST(Scenario, BasicTcpSuffersTimeoutsUnderBurstErrors) {
  ScenarioConfig cfg = quick_wan();
  cfg.channel.mean_bad_s = 4;
  const stats::RunMetrics m = run_scenario(cfg);
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.timeouts + m.fast_retransmits, 0u);
  EXPECT_LT(m.goodput, 1.0);
  EXPECT_GT(m.wireless_frames_corrupted, 0u);
}

TEST(Scenario, LocalRecoveryReducesSourceRetransmissions) {
  ScenarioConfig basic = quick_wan();
  basic.channel.mean_bad_s = 4;
  ScenarioConfig local = basic;
  local.local_recovery = true;
  // Average a few seeds to avoid a fluke.
  std::uint64_t rtx_basic = 0, rtx_local = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    basic.seed = local.seed = seed;
    rtx_basic += run_scenario(basic).segments_retransmitted;
    rtx_local += run_scenario(local).segments_retransmitted;
  }
  EXPECT_LT(rtx_local, rtx_basic);
}

TEST(Scenario, EbsnEliminatesTimeoutsOnDeterministicChannel) {
  ScenarioConfig cfg = quick_wan();
  cfg.deterministic_channel = true;
  cfg.channel.mean_bad_s = 4;
  cfg.local_recovery = true;
  cfg.feedback = FeedbackMode::kEbsn;
  Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.timeouts, 0u);
  EXPECT_EQ(m.segments_retransmitted, 0u);
  EXPECT_DOUBLE_EQ(m.goodput, 1.0);
  EXPECT_GT(m.ebsn_sent, 0u);
  EXPECT_EQ(m.ebsn_received, m.ebsn_sent);
}

TEST(Scenario, EbsnRequiresLocalRecovery) {
  ScenarioConfig cfg = quick_wan();
  cfg.local_recovery = false;
  cfg.feedback = FeedbackMode::kEbsn;
#ifdef NDEBUG
  GTEST_SKIP() << "assertion disabled in release build";
#else
  EXPECT_DEATH({ Scenario s(cfg); }, "local_recovery");
#endif
}

TEST(Scenario, SourceQuenchDoesNotPreventTimeouts) {
  ScenarioConfig cfg = quick_wan();
  cfg.deterministic_channel = true;
  cfg.channel.mean_bad_s = 6;  // long enough that the RTO expires
  cfg.local_recovery = true;
  cfg.feedback = FeedbackMode::kSourceQuench;
  cfg.tcp.file_bytes = 60 * 1024;
  Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.quench_sent, 0u);
  EXPECT_GT(m.quench_received, 0u);
  // The paper's negative result: quenching stems new packets but cannot
  // prevent timeouts of packets already in flight.
  EXPECT_GT(m.timeouts, 0u);
}

TEST(Scenario, SnoopPerformsLocalRetransmissions) {
  ScenarioConfig cfg = quick_wan();
  cfg.channel.mean_bad_s = 2;
  cfg.snoop = true;
  const stats::RunMetrics m = run_scenario(cfg);
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.snoop_local_retransmits, 0u);
}

TEST(Scenario, MetricsAreDeterministicPerSeed) {
  ScenarioConfig cfg = quick_wan();
  cfg.channel.mean_bad_s = 2;
  cfg.seed = 77;
  const stats::RunMetrics a = run_scenario(cfg);
  const stats::RunMetrics b = run_scenario(cfg);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_DOUBLE_EQ(a.throughput_bps, b.throughput_bps);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.segments_retransmitted, b.segments_retransmitted);
}

TEST(Scenario, DifferentSeedsGiveDifferentRuns) {
  ScenarioConfig cfg = quick_wan();
  cfg.channel.mean_bad_s = 2;
  cfg.seed = 1;
  const stats::RunMetrics a = run_scenario(cfg);
  cfg.seed = 2;
  const stats::RunMetrics b = run_scenario(cfg);
  EXPECT_NE(a.duration, b.duration);
}

TEST(Scenario, SenderTraceCapturesTransfer) {
  ScenarioConfig cfg = quick_wan();
  cfg.deterministic_channel = true;
  stats::ConnectionTrace trace;
  Scenario s(cfg);
  s.set_sender_trace(&trace);
  s.run();
  EXPECT_EQ(trace.count(stats::TraceEvent::kSend),
            static_cast<std::size_t>(cfg.tcp.total_segments()));
}

TEST(Scenario, PacketSizeSetterAdjustsMss) {
  ScenarioConfig cfg = wan_scenario();
  cfg.set_packet_size(512);
  EXPECT_EQ(cfg.tcp.mss, 472);
  EXPECT_EQ(cfg.packet_size(), 512);
}

TEST(Scenario, HorizonBoundsBrokenConfigs) {
  // A channel that is bad essentially forever: transfer cannot finish.
  ScenarioConfig cfg = quick_wan();
  cfg.channel.mean_good_s = 0.01;
  cfg.channel.mean_bad_s = 1000;
  cfg.horizon = sim::Time::seconds(500);
  const stats::RunMetrics m = run_scenario(cfg);
  EXPECT_FALSE(m.completed);
  EXPECT_LE(m.duration, sim::Time::seconds(500) + sim::Time::seconds(1));
}

TEST(Theoretical, MatchesPaperNumbers) {
  const ScenarioConfig wan = wan_scenario();
  EXPECT_DOUBLE_EQ(core::effective_bandwidth_bps(wan.wireless), 12'800.0);
  phy::GilbertElliottConfig ch = wan.channel;
  ch.mean_bad_s = 1;
  EXPECT_NEAR(core::theoretical_max_throughput_bps(wan.wireless, ch), 11'636, 1);
  ch.mean_bad_s = 4;
  EXPECT_NEAR(core::theoretical_max_throughput_bps(wan.wireless, ch), 9'143, 1);
  const ScenarioConfig lan = lan_scenario();
  ch = lan.channel;
  ch.mean_bad_s = 0.4;
  EXPECT_NEAR(core::theoretical_max_throughput_bps(lan.wireless, ch),
              2e6 * 4.0 / 4.4, 1);
}

}  // namespace
}  // namespace wtcp::topo
