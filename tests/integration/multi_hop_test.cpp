// Multi-hop wired paths: identical hops chained through store-and-forward
// routers between the fixed host and the base station.
#include <gtest/gtest.h>

#include "src/topo/scenario.hpp"

namespace wtcp::topo {
namespace {

ScenarioConfig hop_cfg(std::int32_t hops) {
  ScenarioConfig cfg = wan_scenario();
  cfg.tcp.file_bytes = 30 * 1024;
  cfg.channel_errors = false;
  cfg.wired_hops = hops;
  return cfg;
}

TEST(MultiHop, SingleHopMatchesLegacyBehavior) {
  Scenario s(hop_cfg(1));
  EXPECT_EQ(s.wired_hop_count(), 1u);
  const stats::RunMetrics m = s.run();
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.throughput_bps, 0.9 * 12'800);
}

TEST(MultiHop, ThreeHopsStillComplete) {
  Scenario s(hop_cfg(3));
  EXPECT_EQ(s.wired_hop_count(), 3u);
  const stats::RunMetrics m = s.run();
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.timeouts, 0u);
  // The wireless link (12.8 kbps) is still the bottleneck: each 56 kbps
  // hop only adds latency.
  EXPECT_GT(m.throughput_bps, 0.85 * 12'800);
}

TEST(MultiHop, ExtraHopsInflateTransferTime) {
  const stats::RunMetrics one = topo::run_scenario(hop_cfg(1));
  const stats::RunMetrics four = topo::run_scenario(hop_cfg(4));
  ASSERT_TRUE(one.completed);
  ASSERT_TRUE(four.completed);
  // 3 extra hops x (50 ms prop + ~82 ms serialization) per direction
  // inflate the RTT; the transfer takes measurably longer.
  EXPECT_GT(four.duration, one.duration);
}

TEST(MultiHop, RttSeenBySenderGrowsWithHops) {
  Scenario one(hop_cfg(1));
  Scenario four(hop_cfg(4));
  one.run();
  four.run();
  EXPECT_GT(four.sender().rto_estimator().srtt(),
            one.sender().rto_estimator().srtt());
}

TEST(MultiHop, TrafficTraversesEveryHop) {
  ScenarioConfig cfg = hop_cfg(3);
  Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  ASSERT_TRUE(m.completed);
  for (std::size_t h = 0; h < 3; ++h) {
    // Forward data on every hop...
    EXPECT_EQ(s.wired_link(h).stats(0).bytes_sent,
              s.sender().stats().wire_bytes_sent)
        << "hop " << h;
    // ...and ACKs flowing back.
    EXPECT_GT(s.wired_link(h).stats(1).frames_delivered, 0u) << "hop " << h;
  }
}

TEST(MultiHop, EbsnTraversesRoutersToo) {
  ScenarioConfig cfg = hop_cfg(3);
  cfg.channel_errors = true;
  cfg.channel.mean_bad_s = 4;
  cfg.local_recovery = true;
  cfg.feedback = FeedbackMode::kEbsn;
  Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.ebsn_sent, 0u);
  EXPECT_EQ(m.ebsn_received, m.ebsn_sent);  // wired path is lossless
}

TEST(MultiHop, BurstErrorsWithMultiHopStillRecover) {
  ScenarioConfig cfg = hop_cfg(2);
  cfg.channel_errors = true;
  cfg.channel.mean_bad_s = 2;
  const stats::RunMetrics m = topo::run_scenario(cfg);
  EXPECT_TRUE(m.completed);
}

}  // namespace
}  // namespace wtcp::topo
