// Property-based invariant sweeps: conservation laws and metric bounds
// that must hold for EVERY configuration, checked across the cross
// product of scheme x packet size x bad period (and the LAN setup).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/core/theoretical.hpp"
#include "src/topo/scenario.hpp"

namespace wtcp {
namespace {

using topo::FeedbackMode;
using topo::Scenario;
using topo::ScenarioConfig;

struct Point {
  std::string scheme;   // basic | local | ebsn | quench | snoop
  std::int32_t packet;  // wired packet size
  double bad_s;
};

void apply_scheme(ScenarioConfig& cfg, const std::string& scheme) {
  if (scheme == "snoop") {
    cfg.snoop = true;
    return;
  }
  if (scheme == "basic") return;
  cfg.local_recovery = true;
  if (scheme == "ebsn") cfg.feedback = FeedbackMode::kEbsn;
  if (scheme == "quench") cfg.feedback = FeedbackMode::kSourceQuench;
}

class WanInvariants
    : public ::testing::TestWithParam<std::tuple<const char*, int, double>> {};

TEST_P(WanInvariants, ConservationAndBounds) {
  const auto [scheme, packet, bad] = GetParam();
  ScenarioConfig cfg = topo::wan_scenario();
  cfg.tcp.file_bytes = 40 * 1024;
  cfg.set_packet_size(packet);
  cfg.channel.mean_bad_s = bad;
  cfg.seed = 42;
  apply_scheme(cfg, scheme);

  Scenario s(cfg);
  const stats::RunMetrics m = s.run();

  // The transfer must complete within the (huge) horizon.
  ASSERT_TRUE(m.completed) << scheme << " " << packet << " " << bad;

  const auto& snd = s.sender().stats();
  const auto& snk = s.sink().stats();

  // Conservation: the sink cannot deliver more than the source sent.
  EXPECT_LE(snk.unique_payload_bytes, snd.payload_bytes_sent);
  // Total arrivals are bounded by source transmissions plus base-station
  // local retransmissions (the snoop agent duplicates cached packets).
  EXPECT_LE(snk.payload_bytes_received,
            snd.payload_bytes_sent +
                static_cast<std::int64_t>(m.snoop_local_retransmits) * cfg.tcp.mss);
  // Completion means every payload byte was delivered exactly once.
  EXPECT_EQ(snk.unique_payload_bytes, cfg.tcp.file_bytes);
  // Sent = file + retransmissions.
  EXPECT_EQ(snd.payload_bytes_sent,
            cfg.tcp.file_bytes + snd.payload_bytes_retransmitted);

  // Metric bounds.
  EXPECT_GT(m.goodput, 0.0);
  EXPECT_LE(m.goodput, 1.0);
  EXPECT_GT(m.throughput_bps, 0.0);
  // Throughput can never exceed the effective wireless rate.
  EXPECT_LE(m.throughput_bps,
            core::effective_bandwidth_bps(cfg.wireless) * 1.01);

  // Sequence sanity.  The run stops at SINK completion; the final ACKs
  // may still be in flight toward the sender.
  EXPECT_LE(s.sender().snd_una(), cfg.tcp.total_segments());
  EXPECT_GE(s.sender().snd_una(), 0);
  EXPECT_EQ(s.sink().rcv_next(), cfg.tcp.total_segments());

  // Every ACK the source counted was a real arrival.
  EXPECT_LE(snd.acks_received, snk.acks_sent);

  // EBSN accounting: received at most sent (wired link is lossless).
  if (s.ebsn_agent() != nullptr) {
    EXPECT_EQ(m.ebsn_received, s.ebsn_agent()->stats().notifications_sent);
  } else {
    EXPECT_EQ(m.ebsn_received, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WanInvariants,
    ::testing::Combine(::testing::Values("basic", "local", "ebsn", "quench",
                                         "snoop"),
                       ::testing::Values(128, 576, 1536),
                       ::testing::Values(1.0, 4.0)),
    [](const auto& param_info) {
      return std::string(std::get<0>(param_info.param)) + "_" +
             std::to_string(std::get<1>(param_info.param)) + "B_" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param))) +
             "s";
    });

class LanInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(LanInvariants, ConservationAndBounds) {
  ScenarioConfig cfg = topo::lan_scenario();
  cfg.tcp.file_bytes = 512 * 1024;
  cfg.channel.mean_bad_s = 1.2;
  cfg.seed = 7;
  apply_scheme(cfg, GetParam());

  Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(s.sink().stats().unique_payload_bytes, cfg.tcp.file_bytes);
  EXPECT_LE(m.goodput, 1.0);
  EXPECT_LE(m.throughput_bps, 2e6 * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Schemes, LanInvariants,
                         ::testing::Values("basic", "local", "ebsn", "snoop"));

// Delayed ACKs and Reno must preserve the same conservation laws.
class VariantInvariants
    : public ::testing::TestWithParam<std::tuple<bool, tcp::TcpFlavor>> {};

TEST_P(VariantInvariants, CompleteAndConserve) {
  const auto [delack, flavor] = GetParam();
  ScenarioConfig cfg = topo::wan_scenario();
  cfg.tcp.file_bytes = 40 * 1024;
  cfg.tcp.delayed_ack = delack;
  cfg.tcp.flavor = flavor;
  cfg.channel.mean_bad_s = 2;
  cfg.local_recovery = true;
  cfg.feedback = FeedbackMode::kEbsn;
  cfg.seed = 9;

  Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(s.sink().stats().unique_payload_bytes, cfg.tcp.file_bytes);
  if (delack) {
    // Coalescing must actually reduce ACK volume.
    EXPECT_LT(s.sink().stats().acks_sent, s.sender().stats().segments_sent +
                                              s.sender().stats().segments_retransmitted);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, VariantInvariants,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(tcp::TcpFlavor::kTahoe,
                                         tcp::TcpFlavor::kReno)));

}  // namespace
}  // namespace wtcp
