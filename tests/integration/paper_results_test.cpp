// End-to-end checks of the paper's headline results (shape, not absolute
// numbers).  These are the claims DESIGN.md section 4 commits to:
//
//   * EBSN throughput ~ theoretical max on the deterministic channel.
//   * EBSN substantially outperforms basic TCP for long bad periods.
//   * Basic TCP goodput degrades with packet size (fragmentation harm);
//     EBSN goodput stays ~1.
//   * LAN: EBSN near tput_th, ~zero retransmissions; basic far below with
//     large retransmission volume (Figures 10/11).
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/core/theoretical.hpp"
#include "src/topo/scenario.hpp"

namespace wtcp {
namespace {

using core::MetricsSummary;
using core::run_seeds;
using topo::FeedbackMode;
using topo::ScenarioConfig;

ScenarioConfig wan_with(FeedbackMode fb, double bad_s, std::int32_t pkt = 576) {
  ScenarioConfig cfg = topo::wan_scenario();
  cfg.channel.mean_bad_s = bad_s;
  cfg.set_packet_size(pkt);
  if (fb != FeedbackMode::kNone) {
    cfg.local_recovery = true;
    cfg.feedback = fb;
  }
  return cfg;
}

TEST(PaperResults, DeterministicEbsnHitsTheoreticalMax) {
  ScenarioConfig cfg = wan_with(FeedbackMode::kEbsn, 4);
  cfg.deterministic_channel = true;
  cfg.tcp.file_bytes = 50 * 1024;
  const stats::RunMetrics m = topo::run_scenario(cfg);
  const double th = core::theoretical_max_throughput_bps(cfg.wireless, cfg.channel);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.timeouts, 0u);
  EXPECT_DOUBLE_EQ(m.goodput, 1.0);
  EXPECT_GT(m.throughput_bps, 0.9 * th);
}

TEST(PaperResults, EbsnBeatsBasicTcpAtLongBadPeriods) {
  // Paper: up to 100% improvement at 1536 B / bad = 4 s (4.5 -> 9 kbps).
  const MetricsSummary basic = run_seeds(wan_with(FeedbackMode::kNone, 4, 1536), 12);
  const MetricsSummary ebsn = run_seeds(wan_with(FeedbackMode::kEbsn, 4, 1536), 12);
  EXPECT_GT(ebsn.throughput_bps.mean(), 1.5 * basic.throughput_bps.mean());
}

TEST(PaperResults, EbsnThroughputIncreasesWithPacketSize) {
  // Paper Figure 8: "unlike basic TCP, the throughput now increases with
  // increase in packet sizes."
  const MetricsSummary small = run_seeds(wan_with(FeedbackMode::kEbsn, 2, 128), 8);
  const MetricsSummary large = run_seeds(wan_with(FeedbackMode::kEbsn, 2, 1536), 8);
  EXPECT_GT(large.throughput_bps.mean(), small.throughput_bps.mean());
}

TEST(PaperResults, BasicTcpRetransmitsGrowWithBadPeriod) {
  // Paper Figure 9: retransmitted data grows with the bad period length.
  const MetricsSummary short_bad = run_seeds(wan_with(FeedbackMode::kNone, 1), 10);
  const MetricsSummary long_bad = run_seeds(wan_with(FeedbackMode::kNone, 4), 10);
  EXPECT_GT(long_bad.retransmitted_kbytes.mean(),
            short_bad.retransmitted_kbytes.mean());
}

TEST(PaperResults, EbsnSuppressesSourceRetransmissions) {
  const MetricsSummary basic = run_seeds(wan_with(FeedbackMode::kNone, 4), 8);
  const MetricsSummary ebsn = run_seeds(wan_with(FeedbackMode::kEbsn, 4), 8);
  EXPECT_LT(ebsn.retransmitted_kbytes.mean(),
            0.3 * basic.retransmitted_kbytes.mean());
  EXPECT_GT(ebsn.goodput.mean(), 0.95);
}

TEST(PaperResults, EbsnGoodputNearOneAcrossPacketSizes) {
  for (std::int32_t pkt : {256, 576, 1536}) {
    const MetricsSummary s = run_seeds(wan_with(FeedbackMode::kEbsn, 2, pkt), 6);
    EXPECT_GT(s.goodput.mean(), 0.95) << "packet size " << pkt;
  }
}

TEST(PaperResults, LanEbsnNearTheoreticalMax) {
  ScenarioConfig cfg = topo::lan_scenario();
  cfg.channel.mean_bad_s = 0.8;
  cfg.local_recovery = true;
  cfg.feedback = FeedbackMode::kEbsn;
  cfg.tcp.file_bytes = 2 * 1024 * 1024;  // quicker than the full 4 MB
  const MetricsSummary s = run_seeds(cfg, 6);
  const double th = core::theoretical_max_throughput_bps(cfg.wireless, cfg.channel);
  EXPECT_GT(s.throughput_bps.mean(), 0.85 * th);
  EXPECT_LT(s.timeouts.mean(), 1.5);
}

TEST(PaperResults, LanBasicVsEbsnRetransmissionVolume) {
  // Paper Figure 11: basic TCP retransmits large volumes; EBSN ~ none.
  ScenarioConfig basic = topo::lan_scenario();
  basic.channel.mean_bad_s = 0.8;
  basic.tcp.file_bytes = 2 * 1024 * 1024;
  ScenarioConfig ebsn = basic;
  ebsn.local_recovery = true;
  ebsn.feedback = FeedbackMode::kEbsn;
  const MetricsSummary mb = run_seeds(basic, 6);
  const MetricsSummary me = run_seeds(ebsn, 6);
  EXPECT_GT(mb.retransmitted_kbytes.mean(), 20.0);
  EXPECT_LT(me.retransmitted_kbytes.mean(),
            0.5 * mb.retransmitted_kbytes.mean());
}

TEST(PaperResults, LanEbsnBeatsBasic) {
  ScenarioConfig basic = topo::lan_scenario();
  basic.channel.mean_bad_s = 1.6;
  ScenarioConfig ebsn = basic;
  ebsn.local_recovery = true;
  ebsn.feedback = FeedbackMode::kEbsn;
  const MetricsSummary mb = run_seeds(basic, 10);
  const MetricsSummary me = run_seeds(ebsn, 10);
  EXPECT_GT(me.throughput_bps.mean(), 1.1 * mb.throughput_bps.mean());
}

TEST(PaperResults, LocalRecoveryAloneStillTimesOutSometimes) {
  // Paper Figure 4 / Section 4.2.1: during local recovery the source can
  // still time out (redundant retransmissions) — EBSN exists to fix this.
  ScenarioConfig cfg = wan_with(FeedbackMode::kNone, 4);
  cfg.local_recovery = true;
  const MetricsSummary s = run_seeds(cfg, 12);
  EXPECT_GT(s.timeouts.mean(), 0.5);
}

TEST(PaperResults, EbsnMessagesFlowOnlyDuringBadPeriods) {
  ScenarioConfig cfg = wan_with(FeedbackMode::kEbsn, 4);
  cfg.deterministic_channel = true;
  cfg.tcp.file_bytes = 40 * 1024;
  topo::Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.ebsn_sent, 0u);
  // With 10 s good / 4 s bad and ~45 s of transfer there are ~2-3 bad
  // periods; EBSN counts should be dozens, not thousands (they only fire
  // on failed attempts).
  EXPECT_LT(m.ebsn_sent, 1000u);
}

}  // namespace
}  // namespace wtcp
