// Packet-lifecycle tracing through a full Scenario run: hook coverage on
// the WAN EBSN setup, bit-exact agreement between trace-derived per-hop
// latency and the in-run histogram probes, timeout attribution, golden
// neutrality (tracing on-but-idle changes nothing), and the flight
// recorder's watchdog / exception triggers.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/api.hpp"
#include "src/obs/trace.hpp"

namespace wtcp {
namespace {

topo::ScenarioConfig wan_ebsn_config() {
  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.tcp.file_bytes = 20 * 1024;
  cfg.channel.mean_bad_s = 4;
  cfg.local_recovery = true;
  cfg.feedback = topo::FeedbackMode::kEbsn;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return std::move(os).str();
}

#if defined(WTCP_TRACE) && WTCP_TRACE

bool is_site(const obs::TraceRecord& r, obs::TraceSite s) {
  return r.site == static_cast<std::uint8_t>(s);
}

std::uint64_t count_site(const std::vector<obs::TraceRecord>& rec,
                         obs::TraceSite s) {
  std::uint64_t n = 0;
  for (const obs::TraceRecord& r : rec) {
    if (is_site(r, s)) ++n;
  }
  return n;
}

TEST(TraceScenario, WanEbsnRunCoversTheDatapath) {
  topo::ScenarioConfig cfg = wan_ebsn_config();
  cfg.obs.enabled = true;
  cfg.trace.enabled = true;
  cfg.trace.capacity = 1 << 20;  // hold the whole run, no overwrites
  topo::Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  ASSERT_TRUE(m.completed);

  ASSERT_NE(s.trace_sink(), nullptr);
  EXPECT_EQ(s.trace_sink()->dropped(), 0u);
  const std::vector<obs::TraceRecord> rec = s.trace_sink()->snapshot();
  ASSERT_FALSE(rec.empty());

  // Every layer of the FH -> BS -> MH datapath left a footprint.
  for (const obs::TraceSite site :
       {obs::TraceSite::kTcpSend, obs::TraceSite::kFragment,
        obs::TraceSite::kQueueEnqueue, obs::TraceSite::kLinkTxStart,
        obs::TraceSite::kLinkDeliver, obs::TraceSite::kArqSubmit,
        obs::TraceSite::kArqAttempt, obs::TraceSite::kArqDelivered,
        obs::TraceSite::kReassembled, obs::TraceSite::kSinkDeliver,
        obs::TraceSite::kTcpAckRx, obs::TraceSite::kTcpCwnd}) {
    EXPECT_GT(count_site(rec, site), 0u) << obs::to_string(site);
  }
  // The run rode through fades, so EBSN activity must appear end to end.
  EXPECT_GT(count_site(rec, obs::TraceSite::kEbsnSent), 0u);
  EXPECT_EQ(count_site(rec, obs::TraceSite::kEbsnSent),
            static_cast<std::uint64_t>(m.ebsn_sent));
  EXPECT_EQ(count_site(rec, obs::TraceSite::kTcpEbsnRx),
            static_cast<std::uint64_t>(m.ebsn_received));

  // Journal counts reconcile with the run's own metrics exactly.
  EXPECT_EQ(count_site(rec, obs::TraceSite::kTcpSend),
            static_cast<std::uint64_t>(m.segments_sent));
  EXPECT_EQ(count_site(rec, obs::TraceSite::kTcpRetransmit),
            static_cast<std::uint64_t>(m.segments_retransmitted));
  EXPECT_EQ(count_site(rec, obs::TraceSite::kTcpTimeout),
            static_cast<std::uint64_t>(m.timeouts));
}

// The acceptance bit-exactness check: per-hop latency recomputed from
// tx-start -> deliver trace pairs lands in the SAME buckets as the
// histograms the links recorded live.  wtcptrace `summary` prints
// quantiles off the identical arithmetic, so this pins CLI == probes.
TEST(TraceScenario, PerHopLatencyFromTraceMatchesHistogramProbes) {
  topo::ScenarioConfig cfg = wan_ebsn_config();
  cfg.obs.enabled = true;
  cfg.trace.enabled = true;
  cfg.trace.capacity = 1 << 20;
  topo::Scenario s(cfg);
  ASSERT_TRUE(s.run().completed);

  std::map<std::string, obs::Histogram> from_trace;
  std::map<std::pair<std::uint64_t, std::uint16_t>, std::int64_t> open_tx;
  for (const obs::TraceRecord& r : s.trace_sink()->snapshot()) {
    if (is_site(r, obs::TraceSite::kLinkTxStart)) {
      open_tx[{r.id, r.label}] = r.t_ns;
    } else if (is_site(r, obs::TraceSite::kLinkDeliver)) {
      const auto it = open_tx.find({r.id, r.label});
      ASSERT_NE(it, open_tx.end()) << "deliver without tx start";
      from_trace[s.trace_sink()->labels()[r.label]].record(
          sim::Time::nanoseconds(r.t_ns - it->second).to_seconds());
      open_tx.erase(it);
    }
  }
  ASSERT_FALSE(from_trace.empty());

  ASSERT_NE(s.probes(), nullptr);
  const auto& live = s.probes()->histograms();
  for (const auto& [label, h] : from_trace) {
    const auto it = live.find("link." + label + ".delay_s");
    ASSERT_NE(it, live.end()) << label;
    const obs::Histogram& probe = it->second;
    EXPECT_EQ(h.count, probe.count) << label;
    EXPECT_EQ(h.sum, probe.sum) << label;      // bit-exact, same arithmetic
    EXPECT_EQ(h.min, probe.min) << label;
    EXPECT_EQ(h.max, probe.max) << label;
    EXPECT_EQ(0, std::memcmp(h.buckets, probe.buckets, sizeof h.buckets))
        << label;
    EXPECT_EQ(h.quantile(0.50), probe.quantile(0.50)) << label;
    EXPECT_EQ(h.quantile(0.99), probe.quantile(0.99)) << label;
  }
}

// Every TCP timeout in a lossy basic-TCP run must be attributable from
// the journal alone (this is wtcptrace `timeouts`' algorithm).  On the
// deterministic fade channel every timeout traces back to wireless-loss
// evidence: the window between the timed-out segment's last transmission
// and the timer firing always contains corruption or ARQ recovery.
TEST(TraceScenario, EveryTimeoutAttributedToWirelessLoss) {
  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.tcp.file_bytes = 50 * 1024;
  cfg.deterministic_channel = true;
  cfg.channel.mean_bad_s = 6;
  cfg.trace.enabled = true;
  cfg.trace.capacity = 1 << 20;
  topo::Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  ASSERT_TRUE(m.completed);
  ASSERT_GT(m.timeouts, 0u) << "config must produce timeouts to attribute";

  const std::vector<obs::TraceRecord> rec = s.trace_sink()->snapshot();
  EXPECT_EQ(count_site(rec, obs::TraceSite::kTcpTimeout),
            static_cast<std::uint64_t>(m.timeouts));

  int attributed = 0, unknown = 0;
  for (std::size_t i = 0; i < rec.size(); ++i) {
    if (!is_site(rec[i], obs::TraceSite::kTcpTimeout)) continue;
    const std::int32_t seq = rec[i].arg;
    std::size_t t0 = rec.size();
    for (std::size_t j = i; j-- > 0;) {
      if ((is_site(rec[j], obs::TraceSite::kTcpSend) ||
           is_site(rec[j], obs::TraceSite::kTcpRetransmit)) &&
          rec[j].arg == seq) {
        t0 = j;
        break;
      }
    }
    ASSERT_NE(t0, rec.size()) << "timeout without a prior (re)transmission";
    bool evidence = false;
    for (std::size_t j = t0; j < i && !evidence; ++j) {
      evidence = (is_site(rec[j], obs::TraceSite::kSinkDeliver) &&
                  rec[j].arg == seq) ||
                 is_site(rec[j], obs::TraceSite::kLinkCorrupt) ||
                 is_site(rec[j], obs::TraceSite::kArqBackoff) ||
                 is_site(rec[j], obs::TraceSite::kArqDiscard) ||
                 (is_site(rec[j], obs::TraceSite::kQueueDrop) &&
                  rec[j].a == 0);
    }
    evidence ? ++attributed : ++unknown;
  }
  EXPECT_EQ(unknown, 0);
  EXPECT_EQ(attributed, static_cast<int>(m.timeouts));
}

TEST(TraceScenario, BinaryTraceWrittenPerSeedAndLossless) {
  const std::string stem = testing::TempDir() + "wtcp_trace_scn";
  topo::ScenarioConfig cfg = wan_ebsn_config();
  cfg.seed = 5;
  cfg.trace.enabled = true;
  cfg.trace.capacity = 1 << 20;
  cfg.trace.out_path = stem;
  std::vector<obs::TraceRecord> live;
  {
    topo::Scenario s(cfg);
    ASSERT_TRUE(s.run().completed);
    live = s.trace_sink()->snapshot();
  }
  obs::TraceFile f;
  std::string err;
  ASSERT_TRUE(obs::read_trace_file(stem + ".seed5.trace", &f, &err)) << err;
  EXPECT_EQ(f.seed, 5u);
  ASSERT_EQ(f.records.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(&f.records[i], &live[i], sizeof live[i]))
        << "record " << i;
  }
  std::remove((stem + ".seed5.trace").c_str());
}

#endif  // WTCP_TRACE

// The golden-neutrality contract holds in EVERY build flavor: enabling
// the sink must not steer the simulation.  Trace records never feed back
// into protocol logic, so metrics are bit-identical with tracing off vs
// on-but-unread.
TEST(TraceScenario, MetricsByteIdenticalTracingOffVsIdle) {
  topo::ScenarioConfig off = wan_ebsn_config();
  off.obs.enabled = true;
  topo::ScenarioConfig on = off;
  on.trace.enabled = true;

  topo::Scenario s_off(off);
  const stats::RunMetrics m_off = s_off.run();
  topo::Scenario s_on(on);
  const stats::RunMetrics m_on = s_on.run();

  EXPECT_EQ(m_off.duration, m_on.duration);
  EXPECT_EQ(m_off.unique_payload_bytes, m_on.unique_payload_bytes);
  EXPECT_EQ(m_off.timeouts, m_on.timeouts);
  EXPECT_EQ(m_off.segments_sent, m_on.segments_sent);
  EXPECT_EQ(m_off.segments_retransmitted, m_on.segments_retransmitted);
  EXPECT_EQ(m_off.ebsn_received, m_on.ebsn_received);
  // Doubles compared for exact equality on purpose: same arithmetic, same
  // order, or the goldens would drift.
  EXPECT_EQ(m_off.goodput, m_on.goodput);
  EXPECT_EQ(m_off.delay_p50_s, m_on.delay_p50_s);
  EXPECT_EQ(m_off.delay_p95_s, m_on.delay_p95_s);
}

TEST(TraceScenario, FlightRecorderDumpsOnWatchdogKill) {
  const std::string path = testing::TempDir() + "wtcp_flight_watchdog.jsonl";
  std::remove(path.c_str());
  topo::ScenarioConfig cfg = wan_ebsn_config();
  cfg.budget.max_events = 500;  // killed long before the transfer ends
  cfg.trace.enabled = true;
  cfg.trace.flight_path = path;
  topo::Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  EXPECT_FALSE(m.completed);
  ASSERT_FALSE(s.simulator().outcome().ok());

  const std::string dump = slurp(path);
  EXPECT_NE(dump.find("\"flight_record\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"reason\":\"event-budget\""), std::string::npos);
#if defined(WTCP_TRACE) && WTCP_TRACE
  // A killed-but-instrumented run must leave a non-empty post-mortem.
  EXPECT_GT(s.trace_sink()->size(), 0u);
  EXPECT_EQ(dump.find("\"dumped\":0,"), std::string::npos) << dump;
#endif
  std::remove(path.c_str());
}

TEST(TraceScenario, FlightRecorderDumpsOnThrownSeed) {
  const std::string path = testing::TempDir() + "wtcp_flight_throw.jsonl";
  std::remove(path.c_str());
  topo::ScenarioConfig cfg = wan_ebsn_config();
  cfg.trace.enabled = true;
  cfg.trace.flight_path = path;
  topo::Scenario s(cfg);
  s.simulator().after(sim::Time::seconds(2), [] {
    throw std::runtime_error("injected mid-run fault");
  });
  EXPECT_THROW(s.run(), std::runtime_error);

  const std::string dump = slurp(path);
  EXPECT_NE(dump.find("\"flight_record\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"reason\":\"exception\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceScenario, NoFlightFileOnCleanRun) {
  const std::string path = testing::TempDir() + "wtcp_flight_clean.jsonl";
  std::remove(path.c_str());
  topo::ScenarioConfig cfg = wan_ebsn_config();
  cfg.trace.enabled = true;
  cfg.trace.flight_path = path;
  topo::Scenario s(cfg);
  ASSERT_TRUE(s.run().completed);
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "clean run must not dump a flight record";
}

}  // namespace
}  // namespace wtcp
