// Resilient sweeps end to end: failure containment (a throwing and a
// stalled seed must not abort or poison the others), watchdog verdicts in
// the report/manifest, and the checkpoint/resume byte-identity contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/api.hpp"

namespace wtcp {
namespace {

topo::ScenarioConfig sweep_config() {
  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.local_recovery = true;
  cfg.feedback = topo::FeedbackMode::kEbsn;
  cfg.channel.mean_bad_s = 4;
  cfg.tcp.file_bytes = 20 * 1024;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return std::move(os).str();
}

std::string strip_wall_seconds(std::string s) {
  const std::string key = "\"wall_seconds\":";
  for (std::size_t pos = s.find(key); pos != std::string::npos;
       pos = s.find(key, pos)) {
    std::size_t end = s.find_first_of(",}", pos + key.size());
    if (end == std::string::npos) end = s.size();
    s.erase(pos, end - pos);
  }
  return s;
}

// Self-perpetuating no-op event chain: keeps the event queue non-empty
// forever, so the run "stalls" until a watchdog cuts it off.
void stall_churn(sim::Simulator& s) {
  s.after(sim::Time::milliseconds(1), [&s] { stall_churn(s); }, "churn");
}

// ---------------------------------------------------------------------------
// Failure containment across a sweep
// ---------------------------------------------------------------------------

// The resilience headline: one seed throws, another stalls, and the sweep
// still completes with per-seed structured verdicts for both.
TEST(ResilientSweep, ThrowingAndStalledSeedsAreContained) {
  topo::ScenarioConfig cfg = sweep_config();
  // Generous event budget: orders of magnitude above a normal run of this
  // transfer, but the stalled seed's churn chain will exhaust it.
  cfg.budget.max_events = 2'000'000;

  core::ReportOptions opts;
  opts.out_stem = testing::TempDir() + "wtcp_resilient_sweep";
  opts.jobs = 4;
  opts.pre_run = [](std::size_t i, topo::Scenario& scenario) {
    if (i == 2) throw std::runtime_error("injected fault");
    if (i == 4) {
      // Hang the run: completion never stops the simulator, and the churn
      // chain keeps the queue busy until the event budget cuts it off.
      scenario.sink().on_complete = [] {};
      stall_churn(scenario.simulator());
    }
  };
  const core::RunReport report = core::run_seeds_reported(cfg, 6, 1, opts);

  ASSERT_EQ(report.seeds.size(), 6u);
  EXPECT_EQ(report.summary.runs_total, 6u);
  EXPECT_EQ(report.summary.runs_failed, 2u);
  EXPECT_EQ(report.summary.runs_completed, 4u);
  EXPECT_EQ(report.summary.runs_incomplete(), 0u);
  EXPECT_FALSE(report.summary.all_ok());
  // Statistics fold only the four healthy seeds.
  EXPECT_EQ(report.summary.throughput_bps.count(), 4u);

  EXPECT_EQ(report.seeds[2].status, sim::RunStatus::kException);
  EXPECT_NE(report.seeds[2].error.find("injected fault"), std::string::npos);
  EXPECT_EQ(report.seeds[4].status, sim::RunStatus::kEventBudget);
  EXPECT_FALSE(report.seeds[4].error.empty());
  for (const std::size_t i : {0u, 1u, 3u, 5u}) {
    EXPECT_TRUE(report.seeds[i].ok()) << "seed index " << i;
    EXPECT_TRUE(report.seeds[i].metrics.completed);
  }

  // Both verdicts land in the manifest, machine-readable.
  const std::string manifest = slurp(opts.out_stem + ".manifest.json");
  EXPECT_NE(manifest.find("\"outcome\":\"exception\""), std::string::npos);
  EXPECT_NE(manifest.find("\"outcome\":\"event-budget\""), std::string::npos);
  EXPECT_NE(manifest.find("\"error\":\"injected fault\""), std::string::npos);
  EXPECT_NE(manifest.find("\"runs_failed\":2"), std::string::npos);
}

// run_seeds (the plain statistics path) shares the same containment: an
// armed budget that kills every run yields failures, not an abort.
TEST(ResilientSweep, RunSeedsReportsWatchdogOutcomes) {
  topo::ScenarioConfig cfg = sweep_config();
  cfg.budget.max_events = 50;  // far too few to finish anything

  std::vector<core::SeedOutcome> outcomes;
  const core::MetricsSummary s = core::run_seeds(cfg, 3, 7, /*jobs=*/2,
                                                 &outcomes);
  EXPECT_EQ(s.runs_total, 3u);
  EXPECT_EQ(s.runs_failed, 3u);
  EXPECT_EQ(s.throughput_bps.count(), 0u);
  ASSERT_EQ(outcomes.size(), 3u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].seed, 7u + i);
    EXPECT_EQ(outcomes[i].status, sim::RunStatus::kEventBudget);
    EXPECT_FALSE(outcomes[i].message.empty());
  }
}

TEST(ResilientSweep, UnarmedBudgetSweepIsAllOk) {
  std::vector<core::SeedOutcome> outcomes;
  const core::MetricsSummary s =
      core::run_seeds(sweep_config(), 3, 1, /*jobs=*/2, &outcomes);
  EXPECT_EQ(s.runs_failed, 0u);
  EXPECT_EQ(s.runs_completed, 3u);
  EXPECT_TRUE(s.all_ok());
  for (const core::SeedOutcome& o : outcomes) EXPECT_TRUE(o.ok());
}

// ---------------------------------------------------------------------------
// Checkpoint / resume: interrupted + resumed == uninterrupted, bytewise
// ---------------------------------------------------------------------------

class CheckpointResume : public testing::TestWithParam<int> {};

TEST_P(CheckpointResume, InterruptedThenResumedIsByteIdentical) {
  const int jobs = GetParam();
  const topo::ScenarioConfig cfg = sweep_config();
  const std::string tag = "wtcp_resume_j" + std::to_string(jobs);

  // Reference: the uninterrupted 6-seed sweep.
  core::ReportOptions full_opts;
  full_opts.out_stem = testing::TempDir() + tag + "_full";
  full_opts.jobs = jobs;
  const core::RunReport full = core::run_seeds_reported(cfg, 6, 1, full_opts);
  ASSERT_EQ(full.summary.runs_failed, 0u);

  // Pass 1: the "killed" sweep.  Seeds at index >= 3 fail (stand-in for a
  // kill arriving after three seeds were journaled).
  const std::string ck = testing::TempDir() + tag + ".ck.jsonl";
  std::remove(ck.c_str());
  core::ReportOptions pass1;
  pass1.out_stem = testing::TempDir() + tag + "_pass1";
  pass1.jobs = jobs;
  pass1.checkpoint_path = ck;
  pass1.pre_run = [](std::size_t i, topo::Scenario&) {
    if (i >= 3) throw std::runtime_error("simulated kill");
  };
  const core::RunReport interrupted =
      core::run_seeds_reported(cfg, 6, 1, pass1);
  EXPECT_EQ(interrupted.summary.runs_failed, 3u);

  // Pass 2: resume.  Only the three unfinished seeds may run.
  std::atomic<int> reruns{0};
  core::ReportOptions pass2;
  pass2.out_stem = testing::TempDir() + tag + "_pass2";
  pass2.jobs = jobs;
  pass2.checkpoint_path = ck;
  pass2.resume = true;
  pass2.pre_run = [&reruns](std::size_t, topo::Scenario&) { ++reruns; };
  const core::RunReport resumed = core::run_seeds_reported(cfg, 6, 1, pass2);

  EXPECT_EQ(reruns.load(), 3);
  ASSERT_EQ(resumed.seeds.size(), 6u);
  EXPECT_EQ(resumed.summary.runs_failed, 0u);
  EXPECT_EQ(resumed.summary.runs_completed, 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(resumed.seeds[i].restored, i < 3) << "seed index " << i;
  }

  // The folded summary is bit-identical: hexfloat round-trip + seed-order
  // fold leave no room for drift.
  EXPECT_EQ(full.summary.throughput_bps.mean(),
            resumed.summary.throughput_bps.mean());
  EXPECT_EQ(full.summary.throughput_bps.stddev(),
            resumed.summary.throughput_bps.stddev());
  EXPECT_EQ(full.summary.goodput.mean(), resumed.summary.goodput.mean());
  EXPECT_EQ(full.summary.duration_s.mean(), resumed.summary.duration_s.mean());

  // And the files: events + series byte-for-byte, manifest modulo wall
  // clock.  This is the resume contract (docs/robustness.md).
  EXPECT_EQ(slurp(full_opts.out_stem + ".jsonl"),
            slurp(pass2.out_stem + ".jsonl"));
  EXPECT_EQ(slurp(full_opts.out_stem + ".series.csv"),
            slurp(pass2.out_stem + ".series.csv"));
  EXPECT_EQ(strip_wall_seconds(slurp(full_opts.out_stem + ".manifest.json")),
            strip_wall_seconds(slurp(pass2.out_stem + ".manifest.json")));
}

INSTANTIATE_TEST_SUITE_P(Jobs, CheckpointResume, testing::Values(1, 4));

// A checkpoint written under one config must not seed a resume under
// another: the digest guard treats those lines as foreign.
TEST(CheckpointResumeGuard, DifferentConfigIsNotRestored) {
  const std::string ck = testing::TempDir() + "wtcp_resume_guard.ck.jsonl";
  std::remove(ck.c_str());

  core::ReportOptions pass1;
  pass1.checkpoint_path = ck;
  pass1.jobs = 2;
  core::run_seeds_reported(sweep_config(), 2, 1, pass1);

  topo::ScenarioConfig other = sweep_config();
  other.tcp.file_bytes += 1024;  // different run entirely
  std::atomic<int> executed{0};
  core::ReportOptions pass2;
  pass2.checkpoint_path = ck;
  pass2.resume = true;
  pass2.jobs = 2;
  pass2.pre_run = [&executed](std::size_t, topo::Scenario&) { ++executed; };
  const core::RunReport report = core::run_seeds_reported(other, 2, 1, pass2);

  EXPECT_EQ(executed.load(), 2);  // nothing restored, both seeds re-ran
  EXPECT_EQ(report.summary.runs_completed, 2u);
  for (const core::SeedRunReport& sr : report.seeds) {
    EXPECT_FALSE(sr.restored);
  }
}

// Resume also composes with EXTENDING a sweep: journal 3 seeds, then ask
// for 6 with --resume and only the new three run.
TEST(CheckpointResumeGuard, ExtendingSweepRunsOnlyNewSeeds) {
  const std::string ck = testing::TempDir() + "wtcp_resume_extend.ck.jsonl";
  std::remove(ck.c_str());
  const topo::ScenarioConfig cfg = sweep_config();

  core::ReportOptions pass1;
  pass1.checkpoint_path = ck;
  pass1.jobs = 2;
  core::run_seeds_reported(cfg, 3, 1, pass1);

  std::atomic<int> executed{0};
  core::ReportOptions pass2;
  pass2.checkpoint_path = ck;
  pass2.resume = true;
  pass2.jobs = 2;
  pass2.pre_run = [&executed](std::size_t, topo::Scenario&) { ++executed; };
  const core::RunReport report = core::run_seeds_reported(cfg, 6, 1, pass2);

  EXPECT_EQ(executed.load(), 3);
  EXPECT_EQ(report.summary.runs_completed, 6u);
  EXPECT_TRUE(report.seeds[0].restored);
  EXPECT_FALSE(report.seeds[5].restored);
}

}  // namespace
}  // namespace wtcp
