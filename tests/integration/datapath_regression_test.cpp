// Regression locks for the pooled packet datapath.
//
// 1. Bitwise determinism: the pooled/move-only datapath must reproduce the
//    exact pre-pool run_seeds summaries (captured as hexfloat constants
//    from the shared_ptr/copying implementation) at jobs=1 and jobs=4.
//    Any ordering or arithmetic drift in the refactor shows up here as an
//    exact-double mismatch, not a tolerance failure.
// 2. Steady-state allocation plateau: a long WAN transfer must stop
//    growing the packet arena after warm-up — `pool.allocs` frozen while
//    `pool.recycled` keeps counting.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/core/experiment.hpp"
#include "src/sim/simulator.hpp"
#include "src/topo/scenario.hpp"

namespace wtcp {
namespace {

struct GoldenSummary {
  double mean;
  double min;
  double max;
  double var;
};

void expect_exact(const stats::Summary& s, const GoldenSummary& g,
                  const char* what) {
  EXPECT_EQ(s.count(), 6u) << what;
  EXPECT_EQ(s.mean(), g.mean) << what;
  EXPECT_EQ(s.min(), g.min) << what;
  EXPECT_EQ(s.max(), g.max) << what;
  EXPECT_EQ(s.variance(), g.var) << what;
}

// Captured from the pre-pool datapath (seed commit history): run_seeds with
// 6 seeds, base seed 1.  Hexfloat for exact doubles.
struct GoldenConfig {
  GoldenSummary tput;
  GoldenSummary goodput;
  GoldenSummary rexmt_kb;
  GoldenSummary dur;
  GoldenSummary ebsn;
};

const GoldenConfig kWanEbsn = {
    .tput = {0x1.173362d769889p+13, 0x1.a135c10aa335cp+12,
             0x1.61ff7730cf398p+13, 0x1.55ed7d7952e37p+21},
    .goodput = {0x1.f5c28ea47ffbep-1, 0x1.e1bd9c3079a3bp-1, 0x1p+0,
                0x1.350a2de38740ep-11},
    .rexmt_kb = {0x1.0cp+0, 0x0p+0, 0x1.92p+1, 0x1.a4d8p+0},
    .dur = {0x1.9675e711ca5acp+5, 0x1.36f6585b832afp+5, 0x1.07d913b4ac895p+6,
            0x1.875e3adf2941ap+6},
    .ebsn = {0x1.7855555555555p+7, 0x1.68p+5, 0x1.83p+8, 0x1.b13e222222223p+13},
};

const GoldenConfig kWanBasic = {
    .tput = {0x1.6916ca2240ea9p+12, 0x1.c02bc215fc744p+11,
             0x1.ea7670e595be7p+12, 0x1.74ad1a2c30c77p+21},
    .goodput = {0x1.a829586924892p-1, 0x1.76b49eaa14c8dp-1,
                0x1.e8db1187b216bp-1, 0x1.adb51e5367a8bp-8},
    .rexmt_kb = {0x1.5a4aaaaaaaaabp+3, 0x1.2fp+1, 0x1.252p+4,
                 0x1.08f1922222222p+5},
    .dur = {0x1.4d389cd227ca1p+6, 0x1.c0e1dd7b9315cp+5, 0x1.eb3dbb8a9657bp+6,
            0x1.9831228f246e2p+9},
    .ebsn = {0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0},
};

const GoldenConfig kLanSnoop = {
    .tput = {0x1.621b01e6141e3p+20, 0x1.208f4818b275bp+20,
             0x1.7f0f8d2e3a514p+20, 0x1.2f145401a5642p+34},
    .goodput = {0x1.f313a85959e5ep-1, 0x1.e4af8e4c590c5p-1, 0x1p+0,
                0x1.5ecc917bb2d14p-12},
    .rexmt_kb = {0x1.ad34p+6, 0x0p+0, 0x1.cda8p+7, 0x1.87e421c666667p+12},
    .dur = {0x1.7f8d634f0a84fp+4, 0x1.5f51fc49f0979p+4, 0x1.d25ff9d14df72p+4,
            0x1.cb8119f8d669dp+2},
    .ebsn = {0x0p+0, 0x0p+0, 0x0p+0, 0x0p+0},
};

void expect_config(const core::MetricsSummary& m, const GoldenConfig& g,
                   const char* label) {
  EXPECT_EQ(m.runs_total, 6u) << label;
  EXPECT_EQ(m.runs_completed, 6u) << label;
  expect_exact(m.throughput_bps, g.tput, label);
  expect_exact(m.goodput, g.goodput, label);
  expect_exact(m.retransmitted_kbytes, g.rexmt_kb, label);
  expect_exact(m.duration_s, g.dur, label);
  expect_exact(m.ebsn_received, g.ebsn, label);
}

class DatapathDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(DatapathDeterminism, MatchesPrePoolGoldenSummaries) {
  const int jobs = GetParam();
  {
    topo::ScenarioConfig cfg = topo::wan_scenario();
    cfg.tcp.file_bytes = 50 * 1024;
    cfg.channel.mean_bad_s = 4;
    cfg.local_recovery = true;
    cfg.feedback = topo::FeedbackMode::kEbsn;
    expect_config(core::run_seeds(cfg, 6, 1, jobs), kWanEbsn, "wan_ebsn");
  }
  {
    topo::ScenarioConfig cfg = topo::wan_scenario();
    cfg.tcp.file_bytes = 50 * 1024;
    cfg.channel.mean_bad_s = 2;
    expect_config(core::run_seeds(cfg, 6, 1, jobs), kWanBasic, "wan_basic");
  }
  {
    topo::ScenarioConfig cfg = topo::lan_scenario();
    cfg.channel.mean_bad_s = 0.8;
    cfg.snoop = true;
    expect_config(core::run_seeds(cfg, 6, 1, jobs), kLanSnoop, "lan_snoop");
  }
}

INSTANTIATE_TEST_SUITE_P(Jobs, DatapathDeterminism, ::testing::Values(1, 4));

TEST(PacketPoolSteadyState, AllocsPlateauAfterWarmUpInLongWanRun) {
  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.tcp.file_bytes = 200 * 1024;  // ~4x the paper transfer: a long run
  cfg.channel.mean_bad_s = 4;
  cfg.local_recovery = true;
  cfg.feedback = topo::FeedbackMode::kEbsn;

  topo::Scenario s(cfg);
  net::PacketPool& pool = s.simulator().packet_pool();

  // Sample the arena well past warm-up but well before the transfer ends
  // (the 50 KB variant already takes ~40-90 s of sim time).
  std::uint64_t allocs_mid = 0;
  std::uint64_t recycled_mid = 0;
  s.simulator().after(sim::Time::seconds(30), [&] {
    allocs_mid = pool.allocs();
    recycled_mid = pool.recycled();
  });

  const stats::RunMetrics m = s.run();
  ASSERT_GT(m.duration.to_seconds(), 60.0);  // the sample was mid-run
  ASSERT_TRUE(m.completed);

  EXPECT_GT(allocs_mid, 0u);
  EXPECT_GT(recycled_mid, 0u);
  // Steady state: the arena stopped growing while recycling kept going.
  EXPECT_EQ(pool.allocs(), allocs_mid);
  EXPECT_GT(pool.recycled(), recycled_mid);
}

}  // namespace
}  // namespace wtcp
