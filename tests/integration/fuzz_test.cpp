// Randomized configuration fuzzing: draw scenario configurations from a
// seeded generator and assert that every run terminates and conserves
// bytes.  This is the catch-all net under the targeted suites — any
// wiring combination (flavor x scheme x hops x handoff x delack x ARQ
// parameters) must be safe.
#include <gtest/gtest.h>

#include "src/sim/random.hpp"
#include "src/topo/scenario.hpp"

namespace wtcp {
namespace {

topo::ScenarioConfig random_config(sim::Rng& rng) {
  topo::ScenarioConfig cfg =
      rng.chance(0.5) ? topo::wan_scenario() : topo::lan_scenario();
  const bool is_lan = cfg.wireless.bandwidth_bps > 1'000'000;

  cfg.tcp.file_bytes = is_lan ? rng.uniform_int(64, 512) * 1024
                              : rng.uniform_int(10, 60) * 1024;
  if (!is_lan) {
    cfg.set_packet_size(static_cast<std::int32_t>(rng.uniform_int(2, 24) * 64));
  }
  cfg.tcp.window_bytes = rng.uniform_int(2, 64) * 1024;
  cfg.tcp.flavor = static_cast<tcp::TcpFlavor>(rng.uniform_int(0, 2));
  cfg.tcp.delayed_ack = rng.chance(0.3);
  cfg.tcp.connect_handshake = rng.chance(0.3);
  cfg.tcp.sack_enabled = rng.chance(0.4);
  cfg.tcp.rto.granularity = sim::Time::milliseconds(rng.uniform_int(1, 5) * 100);
  cfg.tcp.rto.min_rto = cfg.tcp.rto.granularity * 2;

  // Channel: keep the good fraction >= 2/3 so transfers always finish.
  cfg.channel.mean_good_s = rng.uniform(4.0, 12.0);
  cfg.channel.mean_bad_s = rng.uniform(0.2, cfg.channel.mean_good_s / 2.0);
  cfg.deterministic_channel = rng.chance(0.2);

  const int scheme = static_cast<int>(rng.uniform_int(0, 3));
  if (scheme >= 1) cfg.local_recovery = true;
  if (scheme == 2) cfg.feedback = topo::FeedbackMode::kEbsn;
  if (scheme == 3) cfg.feedback = topo::FeedbackMode::kSourceQuench;
  if (scheme == 0 && rng.chance(0.4)) cfg.snoop = true;

  cfg.arq.rt_max = static_cast<std::int32_t>(rng.uniform_int(1, 20));
  cfg.arq.window = static_cast<std::int32_t>(rng.uniform_int(1, 16));
  cfg.wired_hops = static_cast<std::int32_t>(rng.uniform_int(1, 3));
  cfg.wireless.half_duplex = rng.chance(0.2);

  if (rng.chance(0.3)) {
    cfg.handoff.enabled = true;
    cfg.handoff.mean_interval = sim::Time::from_seconds(rng.uniform(8, 30));
    cfg.handoff.latency = sim::Time::milliseconds(rng.uniform_int(100, 800));
    cfg.handoff.fast_retransmit_on_resume = rng.chance(0.5);
    cfg.handoff.deterministic = rng.chance(0.5);
  }
  if (rng.chance(0.25)) {
    cfg.cross_traffic = true;
    cfg.cross.rate_bps = cfg.wired.bandwidth_bps / 4;
    cfg.cross.mean_on_s = 1.0;
    cfg.cross.mean_off_s = 1.0;
  }
  return cfg;
}

class FuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweep, TerminatesAndConserves) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  topo::ScenarioConfig cfg = random_config(rng);
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  cfg.horizon = sim::Time::seconds(50'000);

  topo::Scenario s(cfg);
  const stats::RunMetrics m = s.run();

  ASSERT_TRUE(m.completed) << "incomplete transfer; duration "
                           << m.duration.to_seconds() << " s";
  EXPECT_EQ(s.sink().stats().unique_payload_bytes, cfg.tcp.file_bytes);
  EXPECT_LE(s.sink().stats().unique_payload_bytes,
            s.sender().stats().payload_bytes_sent);
  EXPECT_GT(m.goodput, 0.0);
  EXPECT_LE(m.goodput, 1.0);
  EXPECT_GT(m.throughput_bps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Random, FuzzSweep, ::testing::Range(1, 33));

}  // namespace
}  // namespace wtcp
