// Scheduler-core A/B lock: run_seeds summaries must be byte-identical
// whether the simulation runs on the timing wheel or the binary heap, at
// jobs=1 and jobs=4.
//
// WTCP_SCHED is read per Scheduler construction, so flipping the
// environment variable between sweeps switches the event core of every
// run started afterwards — no rebuild needed.  Combined with the golden
// hexfloat locks in datapath_regression_test.cpp (which pin the
// build-default core to the pre-wheel numbers), this proves the wheel
// changed event-core mechanics only, never simulation results.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/core/experiment.hpp"
#include "src/sim/scheduler.hpp"
#include "src/topo/scenario.hpp"

namespace wtcp {
namespace {

// Sets WTCP_SCHED for the scope, restoring the prior value on exit so the
// override never leaks into other tests in this binary.
class ScopedSchedEnv {
 public:
  explicit ScopedSchedEnv(const char* value) {
    const char* prev = std::getenv("WTCP_SCHED");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv("WTCP_SCHED", value, 1);
  }
  ~ScopedSchedEnv() {
    if (had_prev_) {
      ::setenv("WTCP_SCHED", prev_.c_str(), 1);
    } else {
      ::unsetenv("WTCP_SCHED");
    }
  }
  ScopedSchedEnv(const ScopedSchedEnv&) = delete;
  ScopedSchedEnv& operator=(const ScopedSchedEnv&) = delete;

 private:
  bool had_prev_ = false;
  std::string prev_;
};

void expect_identical(const stats::Summary& a, const stats::Summary& b,
                      const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
}

void expect_identical(const core::MetricsSummary& a,
                      const core::MetricsSummary& b, const char* label) {
  EXPECT_EQ(a.runs_total, b.runs_total) << label;
  EXPECT_EQ(a.runs_completed, b.runs_completed) << label;
  EXPECT_EQ(a.runs_failed, b.runs_failed) << label;
  expect_identical(a.throughput_bps, b.throughput_bps, label);
  expect_identical(a.goodput, b.goodput, label);
  expect_identical(a.timeouts, b.timeouts, label);
  expect_identical(a.retransmitted_kbytes, b.retransmitted_kbytes, label);
  expect_identical(a.duration_s, b.duration_s, label);
  expect_identical(a.ebsn_received, b.ebsn_received, label);
  expect_identical(a.quench_received, b.quench_received, label);
}

core::MetricsSummary sweep_with(const char* sched,
                                const topo::ScenarioConfig& cfg, int jobs) {
  ScopedSchedEnv env(sched);
  return core::run_seeds(cfg, 6, 1, jobs);
}

class SchedulerAB : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerAB, RunSeedsSummariesIdenticalWheelVsHeap) {
  const int jobs = GetParam();
  {
    topo::ScenarioConfig cfg = topo::wan_scenario();
    cfg.tcp.file_bytes = 50 * 1024;
    cfg.channel.mean_bad_s = 4;
    cfg.local_recovery = true;
    cfg.feedback = topo::FeedbackMode::kEbsn;
    expect_identical(sweep_with("wheel", cfg, jobs),
                     sweep_with("heap", cfg, jobs), "wan_ebsn");
  }
  {
    topo::ScenarioConfig cfg = topo::wan_scenario();
    cfg.tcp.file_bytes = 50 * 1024;
    cfg.channel.mean_bad_s = 2;
    expect_identical(sweep_with("wheel", cfg, jobs),
                     sweep_with("heap", cfg, jobs), "wan_basic");
  }
  {
    topo::ScenarioConfig cfg = topo::lan_scenario();
    cfg.channel.mean_bad_s = 0.8;
    cfg.snoop = true;
    expect_identical(sweep_with("wheel", cfg, jobs),
                     sweep_with("heap", cfg, jobs), "lan_snoop");
  }
}

INSTANTIATE_TEST_SUITE_P(Jobs, SchedulerAB, ::testing::Values(1, 4));

// The env override must actually reach Scheduler construction — otherwise
// the A/B sweeps above would compare the default core against itself and
// the test would vacuously pass.
TEST(SchedulerAB_Env, OverrideSelectsCore) {
  {
    ScopedSchedEnv env("heap");
    EXPECT_EQ(sim::Scheduler().impl(), sim::SchedulerImpl::kHeap);
  }
  {
    ScopedSchedEnv env("wheel");
    EXPECT_EQ(sim::Scheduler().impl(), sim::SchedulerImpl::kWheel);
  }
}

}  // namespace
}  // namespace wtcp
