#include "src/core/packet_size_advisor.hpp"

#include <gtest/gtest.h>

#include "src/core/experiment.hpp"

namespace wtcp::core {
namespace {

TEST(PacketSizeAdvisor, FromPrecomputedTable) {
  PacketSizeAdvisor advisor({
      {.mean_bad_s = 1.0, .packet_size = 512, .throughput_bps = 8700},
      {.mean_bad_s = 3.0, .packet_size = 384, .throughput_bps = 6000},
  });
  EXPECT_EQ(advisor.recommend(1.0), 512);
  EXPECT_EQ(advisor.recommend(3.0), 384);
  // Nearest-characteristic lookup.
  EXPECT_EQ(advisor.recommend(1.4), 512);
  EXPECT_EQ(advisor.recommend(2.6), 384);
  EXPECT_EQ(advisor.recommend(100.0), 384);
  EXPECT_EQ(advisor.recommend(0.0), 512);
}

TEST(PacketSizeAdvisor, TableIsSortedByCharacteristic) {
  PacketSizeAdvisor advisor({
      {.mean_bad_s = 3.0, .packet_size = 384},
      {.mean_bad_s = 1.0, .packet_size = 512},
  });
  EXPECT_DOUBLE_EQ(advisor.table()[0].mean_bad_s, 1.0);
  EXPECT_DOUBLE_EQ(advisor.table()[1].mean_bad_s, 3.0);
}

TEST(PacketSizeAdvisor, EntryForExposesThroughputs) {
  PacketSizeAdvisor advisor({
      {.mean_bad_s = 1.0, .packet_size = 512, .throughput_bps = 8700,
       .worst_throughput_bps = 6700},
  });
  const PacketSizeEntry& e = advisor.entry_for(1.0);
  EXPECT_EQ(e.packet_size, 512);
  EXPECT_GT(e.throughput_bps, e.worst_throughput_bps);
}

TEST(PacketSizeAdvisor, BuildSweepsAndPicksBest) {
  topo::ScenarioConfig base = topo::wan_scenario();
  base.tcp.file_bytes = 20 * 1024;  // keep the test quick
  const PacketSizeAdvisor advisor = PacketSizeAdvisor::build(
      base, {256, 512, 1536}, {1.0, 4.0}, /*seeds=*/2);
  ASSERT_EQ(advisor.table().size(), 2u);
  for (const PacketSizeEntry& e : advisor.table()) {
    EXPECT_TRUE(e.packet_size == 256 || e.packet_size == 512 ||
                e.packet_size == 1536);
    EXPECT_GT(e.throughput_bps, 0.0);
    EXPECT_GE(e.throughput_bps, e.worst_throughput_bps);
  }
  // The best size for some characteristic must beat the worst candidate
  // at that characteristic (otherwise the table is vacuous).
  EXPECT_GT(advisor.table()[1].throughput_bps,
            advisor.table()[1].worst_throughput_bps);
}

TEST(Experiment, RunSeedsAggregates) {
  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.tcp.file_bytes = 20 * 1024;
  cfg.channel.mean_bad_s = 2;
  const MetricsSummary s = run_seeds(cfg, 4);
  EXPECT_EQ(s.runs_total, 4u);
  EXPECT_EQ(s.runs_completed, 4u);
  EXPECT_EQ(s.throughput_bps.count(), 4u);
  EXPECT_GT(s.throughput_bps.mean(), 0.0);
  EXPECT_GT(s.throughput_bps.stddev(), 0.0);  // seeds differ
}

TEST(Experiment, ErrorFreeThroughputNearEffectiveRate) {
  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.tcp.file_bytes = 30 * 1024;
  const double tput = measure_error_free_throughput_bps(cfg);
  EXPECT_GT(tput, 0.9 * 12'800);
  EXPECT_LT(tput, 12'800 * 1.01);
}

}  // namespace
}  // namespace wtcp::core
