// Uplink (MH -> FH) transfers: the data source sits behind the wireless
// hop, so bad-state notification is a LOCAL signal at the mobile host.
#include <gtest/gtest.h>

#include "src/stats/summary.hpp"
#include "src/topo/scenario.hpp"

namespace wtcp::topo {
namespace {

ScenarioConfig uplink_cfg() {
  ScenarioConfig cfg = wan_scenario();
  cfg.direction = TransferDirection::kUplink;
  cfg.tcp.file_bytes = 30 * 1024;
  return cfg;
}

TEST(Uplink, DirectionNames) {
  EXPECT_STREQ(to_string(TransferDirection::kDownlink), "downlink");
  EXPECT_STREQ(to_string(TransferDirection::kUplink), "uplink");
}

TEST(Uplink, ErrorFreeTransferCompletes) {
  ScenarioConfig cfg = uplink_cfg();
  cfg.channel_errors = false;
  Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.timeouts, 0u);
  EXPECT_DOUBLE_EQ(m.goodput, 1.0);
  // Still wireless-bound.
  EXPECT_GT(m.throughput_bps, 0.85 * 12'800);
  // Data crossed the wireless hop MH -> BS (endpoint 1 transmits it).
  EXPECT_GT(s.wireless_link().stats(1).bytes_sent, cfg.tcp.file_bytes);
}

TEST(Uplink, BurstErrorsHurtBasicTcp) {
  ScenarioConfig cfg = uplink_cfg();
  cfg.channel.mean_bad_s = 4;
  const stats::RunMetrics m = run_scenario(cfg);
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.timeouts + m.fast_retransmits, 0u);
  EXPECT_LT(m.goodput, 1.0);
}

TEST(Uplink, LocalEbsnEliminatesTimeoutsOnDeterministicChannel) {
  ScenarioConfig cfg = uplink_cfg();
  cfg.deterministic_channel = true;
  cfg.channel.mean_bad_s = 4;
  cfg.local_recovery = true;
  cfg.feedback = FeedbackMode::kEbsn;
  Scenario s(cfg);
  const stats::RunMetrics m = s.run();
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.timeouts, 0u);
  EXPECT_DOUBLE_EQ(m.goodput, 1.0);
  // The notifications never crossed a link: they were delivered locally
  // at the mobile host.
  EXPECT_GT(m.ebsn_sent, 0u);
  EXPECT_EQ(m.ebsn_received, m.ebsn_sent);
}

TEST(Uplink, LocalEbsnBeatsBasicUnderStochasticFades) {
  stats::Summary basic, ebsn;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScenarioConfig b = uplink_cfg();
    b.channel.mean_bad_s = 4;
    b.seed = seed;
    basic.add(run_scenario(b).throughput_bps);

    ScenarioConfig e = b;
    e.local_recovery = true;
    e.feedback = FeedbackMode::kEbsn;
    ebsn.add(run_scenario(e).throughput_bps);
  }
  EXPECT_GT(ebsn.mean(), 1.2 * basic.mean());
}

TEST(Uplink, DeterministicPerSeed) {
  ScenarioConfig cfg = uplink_cfg();
  cfg.channel.mean_bad_s = 2;
  cfg.seed = 5;
  const stats::RunMetrics a = run_scenario(cfg);
  const stats::RunMetrics b = run_scenario(cfg);
  EXPECT_EQ(a.duration, b.duration);
}

TEST(Uplink, SnoopIsRejected) {
  ScenarioConfig cfg = uplink_cfg();
  cfg.snoop = true;
#ifdef NDEBUG
  GTEST_SKIP() << "assertion disabled in release build";
#else
  EXPECT_DEATH({ Scenario s(cfg); }, "snoop");
#endif
}

TEST(Uplink, HandshakeAndDelayedAcksCompose) {
  ScenarioConfig cfg = uplink_cfg();
  cfg.channel.mean_bad_s = 2;
  cfg.tcp.connect_handshake = true;
  cfg.tcp.delayed_ack = true;
  cfg.local_recovery = true;
  cfg.feedback = FeedbackMode::kEbsn;
  const stats::RunMetrics m = run_scenario(cfg);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.unique_payload_bytes, cfg.tcp.file_bytes);
}

}  // namespace
}  // namespace wtcp::topo
