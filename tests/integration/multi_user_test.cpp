// Multi-user LAN scenario: K TCP connections over one shared base-station
// radio with per-user burst-error channels.
#include "src/topo/multi_scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/parallel.hpp"
#include "src/obs/probe.hpp"
#include "src/stats/summary.hpp"

namespace wtcp::topo {
namespace {

MultiUserConfig quick_cfg() {
  MultiUserConfig cfg = multi_user_lan_scenario();
  cfg.tcp.file_bytes = 256 * 1024;  // keep tests fast
  return cfg;
}

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness({1, 1, 1, 1}), 1.0);
  EXPECT_NEAR(jain_fairness({1, 0, 0, 0}), 0.25, 1e-12);
  EXPECT_NEAR(jain_fairness({2, 1}), 9.0 / 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 0.0);
}

TEST(MultiUser, ErrorFreeAllUsersComplete) {
  MultiUserConfig cfg = quick_cfg();
  cfg.channel_errors = false;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_EQ(m.completed_users, cfg.users);
  for (const auto& u : m.per_user) {
    EXPECT_TRUE(u.completed);
    EXPECT_DOUBLE_EQ(u.goodput, 1.0);
    EXPECT_EQ(u.timeouts, 0u);
  }
  // One shared 2 Mbps radio carrying both data and ACKs: aggregate close
  // to (but below) the channel rate.
  EXPECT_GT(m.aggregate_throughput_bps, 1.5e6);
  EXPECT_LT(m.aggregate_throughput_bps, 2.0e6);
  EXPECT_GT(m.fairness, 0.95);
}

TEST(MultiUser, SharedMediumHalvesPerUserRates) {
  // 2 users vs 4 users: per-user throughput roughly halves.
  MultiUserConfig cfg = quick_cfg();
  cfg.channel_errors = false;
  cfg.users = 2;
  MultiUserLanScenario two(cfg);
  const double two_rate = two.run().per_user[0].throughput_bps;
  cfg.users = 4;
  MultiUserLanScenario four(cfg);
  const double four_rate = four.run().per_user[0].throughput_bps;
  EXPECT_NEAR(four_rate / two_rate, 0.5, 0.15);
}

TEST(MultiUser, CompletesUnderBurstErrors) {
  MultiUserConfig cfg = quick_cfg();
  cfg.seed = 3;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_EQ(m.completed_users, cfg.users);
  for (const auto& u : m.per_user) EXPECT_GT(u.throughput_bps, 0.0);
}

TEST(MultiUser, CsdOutperformsFifo) {
  stats::Summary fifo, csd;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    MultiUserConfig cfg = quick_cfg();
    cfg.seed = seed;
    cfg.sched.policy = link::SchedPolicy::kFifo;
    MultiUserLanScenario f(cfg);
    fifo.add(f.run().aggregate_throughput_bps);

    cfg.sched.policy = link::SchedPolicy::kCsdRoundRobin;
    MultiUserLanScenario c(cfg);
    csd.add(c.run().aggregate_throughput_bps);
  }
  // The [9] result: channel-state-dependent scheduling significantly
  // beats FIFO when users fade independently.
  EXPECT_GT(csd.mean(), 1.3 * fifo.mean());
}

TEST(MultiUser, CsdUsesProbeAndSkips) {
  MultiUserConfig cfg = quick_cfg();
  cfg.sched.policy = link::SchedPolicy::kCsdRoundRobin;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_GT(m.csd_skips, 0u);
}

TEST(MultiUser, EbsnWorksPerConnection) {
  MultiUserConfig cfg = quick_cfg();
  cfg.feedback = FeedbackMode::kEbsn;
  cfg.sched.policy = link::SchedPolicy::kRoundRobin;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_EQ(m.completed_users, cfg.users);
  std::uint64_t total_ebsn = 0, total_timeouts = 0;
  for (const auto& u : m.per_user) {
    total_ebsn += u.ebsn_received;
    total_timeouts += u.timeouts;
  }
  EXPECT_GT(total_ebsn, 0u);
  // EBSN keeps per-connection timeouts low even on the shared radio.
  EXPECT_LE(total_timeouts, 8u);
}

TEST(MultiUser, RoundRobinIsFair) {
  MultiUserConfig cfg = quick_cfg();
  cfg.sched.policy = link::SchedPolicy::kRoundRobin;
  cfg.seed = 5;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_GT(m.fairness, 0.85);
}

TEST(MultiUser, WorksWithFragmentation) {
  // Wide-area-style MTU on the shared radio: each datagram becomes many
  // ARQ frames, and the scheduler's resolution counting must track them
  // all before freeing a slot.
  MultiUserConfig cfg = quick_cfg();
  cfg.users = 2;
  cfg.tcp.file_bytes = 64 * 1024;
  cfg.wireless_mtu_bytes = 512;
  cfg.sched.policy = link::SchedPolicy::kRoundRobin;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_EQ(m.completed_users, cfg.users);
  for (const auto& u : m.per_user) {
    EXPECT_EQ(u.unique_payload_bytes, cfg.tcp.file_bytes);
  }
}

TEST(MultiUser, DeterministicPerSeed) {
  MultiUserConfig cfg = quick_cfg();
  cfg.seed = 11;
  MultiUserLanScenario a(cfg);
  MultiUserLanScenario b(cfg);
  const MultiUserMetrics ma = a.run();
  const MultiUserMetrics mb = b.run();
  EXPECT_EQ(ma.duration, mb.duration);
  EXPECT_DOUBLE_EQ(ma.aggregate_throughput_bps, mb.aggregate_throughput_bps);
}

// ---------------------------------------------------------------------------
// Golden results: 4-user paper configuration, byte-identical across
// refactors.
// ---------------------------------------------------------------------------

struct GoldenRow {
  const char* label;  ///< "fifo" | "rr" | "csd" | "csd+ebsn"
  std::uint64_t seed;
  std::int64_t duration_ns;
  double aggregate_bps;  ///< exact (hexfloat literal)
  double fairness;       ///< exact (hexfloat literal)
  std::uint64_t completed;
  std::uint64_t timeouts;  ///< summed over users
  std::uint64_t csd_skips;
  std::uint64_t csd_deferrals;
};

// Captured from the pre-arena implementation (PR 8) on the exact
// multi_user_lan_scenario() defaults: 4 users, 1 MB per connection,
// good 4 s / bad 0.8 s channels.  Every value — including the hexfloat
// doubles — must reproduce EXACTLY.  A mismatch means per-flow RNG
// streams, construction order, or scheduler visit order changed, which
// silently invalidates all multi-user results in the paper figures.
TEST(MultiUserGolden, FourUserPaperConfigIsByteIdentical) {
  static const GoldenRow kRows[] = {
      {"fifo", 1, 26621008610LL, 0x1.3bf4b05cad059p+20, 0x1.f9dd1ae841c29p-1,
       4, 2, 0, 0},
      {"rr", 1, 38898034809LL, 0x1.b0779bc4a5374p+19, 0x1.ff579301adf42p-1,
       4, 14, 0, 0},
      {"csd", 1, 22059970826LL, 0x1.7d481b79bd159p+20, 0x1.fb8d1e89b40d4p-1,
       4, 1, 983, 10},
      {"csd+ebsn", 1, 20865915387LL, 0x1.9319bf50379c3p+20,
       0x1.fd55b5d8c5a4p-1, 4, 0, 983, 10},
      {"fifo", 2, 35367522257LL, 0x1.dba33cb5e2f19p+19, 0x1.ff7793e395434p-1,
       4, 21, 0, 0},
      {"rr", 2, 39855575929LL, 0x1.a613bb5593784p+19, 0x1.fffffba935307p-1,
       4, 0, 0, 0},
      {"csd", 2, 18750377225LL, 0x1.c094bac990433p+20, 0x1.fff751ad871c7p-1,
       4, 0, 357, 0},
      {"csd+ebsn", 2, 18750377225LL, 0x1.c094bac990433p+20,
       0x1.fff751ad871c7p-1, 4, 0, 357, 0},
  };
  for (const GoldenRow& row : kRows) {
    SCOPED_TRACE(std::string(row.label) + " seed " +
                 std::to_string(row.seed));
    MultiUserConfig cfg = multi_user_lan_scenario();
    const std::string label = row.label;
    if (label == "fifo") {
      cfg.sched.policy = link::SchedPolicy::kFifo;
    } else if (label == "rr") {
      cfg.sched.policy = link::SchedPolicy::kRoundRobin;
    } else {
      cfg.sched.policy = link::SchedPolicy::kCsdRoundRobin;
      if (label == "csd+ebsn") cfg.feedback = FeedbackMode::kEbsn;
    }
    cfg.seed = row.seed;
    MultiUserLanScenario s(cfg);
    const MultiUserMetrics m = s.run();
    std::uint64_t timeouts = 0;
    for (const auto& u : m.per_user) timeouts += u.timeouts;
    EXPECT_EQ(m.duration.ns(), row.duration_ns);
    EXPECT_EQ(m.aggregate_throughput_bps, row.aggregate_bps);
    EXPECT_EQ(m.fairness, row.fairness);
    EXPECT_EQ(m.completed_users, row.completed);
    EXPECT_EQ(timeouts, row.timeouts);
    EXPECT_EQ(m.csd_skips, row.csd_skips);
    EXPECT_EQ(m.csd_deferrals, row.csd_deferrals);
  }
}

// ---------------------------------------------------------------------------
// Many-flow cell
// ---------------------------------------------------------------------------

// One summary line per seed, hexfloat so equality means bit equality.
std::string seed_summary(const MultiUserMetrics& m) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%lld %a %a %llu %llu %llu",
                static_cast<long long>(m.duration.ns()),
                m.aggregate_throughput_bps, m.fairness,
                static_cast<unsigned long long>(m.completed_users),
                static_cast<unsigned long long>(m.csd_skips),
                static_cast<unsigned long long>(m.csd_deferrals));
  return buf;
}

// A 64-user seed sweep must fold to bit-identical summaries whether the
// runs execute sequentially or on four worker threads — the contract
// wtcpsim --users relies on for its TSV output.
TEST(MultiUserScale, SixtyFourUserSweepMatchesAcrossJobCounts) {
  constexpr std::size_t kSeeds = 6;
  auto sweep = [](int jobs) {
    std::vector<std::string> out(kSeeds);
    core::ParallelRunner pool(jobs);
    pool.for_each_index(kSeeds, [&out](std::size_t i) {
      MultiUserConfig cfg = multi_user_lan_scenario();
      cfg.users = 64;
      cfg.tcp.file_bytes = 32 * 1024;
      cfg.sched.policy = link::SchedPolicy::kCsdRoundRobin;
      cfg.seed = 1 + i;
      MultiUserLanScenario s(cfg);
      out[i] = seed_summary(s.run());
    });
    return out;
  };
  const std::vector<std::string> solo = sweep(1);
  const std::vector<std::string> quad = sweep(4);
  EXPECT_EQ(solo, quad);
  for (const std::string& line : solo) {
    EXPECT_NE(line.find(" 64 "), std::string::npos) << line;  // all complete
  }
}

// 1000 concurrent flows through one cell: everything finishes, nobody
// starves.  Kept cheap (4 KB transfers) so CI can run it in both the
// release and audit matrices; the name is the ctest filter CI uses.
TEST(MultiUserScale, ThousandUserSmoke) {
  MultiUserConfig cfg = multi_user_lan_scenario();
  cfg.users = 1000;
  cfg.tcp.file_bytes = 4 * 1024;
  cfg.sched.policy = link::SchedPolicy::kRoundRobin;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_EQ(m.completed_users, 1000u);
  // 4 KB transfers finish in a handful of scheduler laps, so completion
  // times (and thus per-flow rates) spread more than a bulk run's.
  EXPECT_GT(m.fairness, 0.7);
}

// The 10k-flow acceptance bar: once the cell reaches steady state, the
// datapath performs ZERO heap allocation — the packet pool stops minting
// slots and the scheduler's node slab stops growing.  Checked by
// snapshotting both mid-run and asserting the later snapshot is equal.
TEST(MultiUserScale, TenThousandUserSteadyStateAllocsPlateau) {
  // Saturated steady state: every flow is a bulk transfer clamped to a
  // 2-segment window and a 2-datagram base-station queue, so per-flow
  // footprint (in-flight data + ACKs + queued copies) caps within the
  // first few scheduler laps and then stays there — late retransmit
  // duplicates are dropped at enqueue instead of accumulating.
  // Transfers deliberately outlast the horizon: this probes churn, not
  // completion (ThousandUserSmoke covers that).
  MultiUserConfig cfg = multi_user_lan_scenario();
  cfg.users = 10'000;
  cfg.tcp.file_bytes = 1 << 20;
  cfg.tcp.window_bytes = 2 * cfg.tcp.mss;  // >= 2 segments (ssthresh floor)
  cfg.sched.policy = link::SchedPolicy::kRoundRobin;
  cfg.sched.queue_datagrams = 2;
  cfg.horizon = sim::Time::seconds(520);
  MultiUserLanScenario s(cfg);
  std::uint64_t pool_t1 = 0, pool_t2 = 0;
  std::size_t slab_t1 = 0, slab_t2 = 0;
  s.simulator().after(sim::Time::seconds(380), [&] {
    pool_t1 = s.simulator().packet_pool().allocs();
    slab_t1 = s.scheduler().node_slots();
  });
  s.simulator().after(sim::Time::seconds(500), [&] {
    pool_t2 = s.simulator().packet_pool().allocs();
    slab_t2 = s.scheduler().node_slots();
  });
  const MultiUserMetrics m = s.run();
  EXPECT_GT(pool_t1, 0u);
  EXPECT_GT(slab_t1, 0u);
  EXPECT_EQ(pool_t2, pool_t1) << "packet pool grew after warm-up";
  EXPECT_EQ(slab_t2, slab_t1) << "scheduler node slab grew after warm-up";
  EXPECT_GT(m.aggregate_throughput_bps, 0.0);
}

// ---------------------------------------------------------------------------
// Probe publishing
// ---------------------------------------------------------------------------

TEST(MultiUser, PublishesFixedSlotAggregateProbes) {
  MultiUserConfig cfg = quick_cfg();
  cfg.sched.policy = link::SchedPolicy::kCsdRoundRobin;
  obs::Registry reg;
  MultiUserLanScenario s(cfg);
  s.set_probe_registry(&reg);
  const MultiUserMetrics m = s.run();
  EXPECT_EQ(reg.gauge_value("multi.completed_users"),
            static_cast<double>(cfg.users));
  EXPECT_EQ(reg.gauge_value("multi.aggregate_throughput_bps"),
            m.aggregate_throughput_bps);
  EXPECT_EQ(reg.gauge_value("multi.fairness_jain"), m.fairness);
  EXPECT_GT(reg.gauge_value("multi.duration_s"), 0.0);
  EXPECT_EQ(reg.counter_value("multi.csd_skips"), m.csd_skips);
  EXPECT_EQ(reg.counter_value("multi.csd_deferrals"), m.csd_deferrals);
  // One histogram sample per flow — fixed probe-name count regardless
  // of K.
  const auto& hists = reg.histograms();
  ASSERT_EQ(hists.count("multi.user_throughput_bps"), 1u);
  ASSERT_EQ(hists.count("multi.user_goodput"), 1u);
  EXPECT_EQ(hists.at("multi.user_throughput_bps").count, cfg.users);
  EXPECT_EQ(hists.at("multi.user_goodput").count, cfg.users);
}

}  // namespace
}  // namespace wtcp::topo
