// Multi-user LAN scenario: K TCP connections over one shared base-station
// radio with per-user burst-error channels.
#include "src/topo/multi_scenario.hpp"

#include <gtest/gtest.h>

#include "src/stats/summary.hpp"

namespace wtcp::topo {
namespace {

MultiUserConfig quick_cfg() {
  MultiUserConfig cfg = multi_user_lan_scenario();
  cfg.tcp.file_bytes = 256 * 1024;  // keep tests fast
  return cfg;
}

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness({1, 1, 1, 1}), 1.0);
  EXPECT_NEAR(jain_fairness({1, 0, 0, 0}), 0.25, 1e-12);
  EXPECT_NEAR(jain_fairness({2, 1}), 9.0 / 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 0.0);
}

TEST(MultiUser, ErrorFreeAllUsersComplete) {
  MultiUserConfig cfg = quick_cfg();
  cfg.channel_errors = false;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_EQ(m.completed_users, cfg.users);
  for (const auto& u : m.per_user) {
    EXPECT_TRUE(u.completed);
    EXPECT_DOUBLE_EQ(u.goodput, 1.0);
    EXPECT_EQ(u.timeouts, 0u);
  }
  // One shared 2 Mbps radio carrying both data and ACKs: aggregate close
  // to (but below) the channel rate.
  EXPECT_GT(m.aggregate_throughput_bps, 1.5e6);
  EXPECT_LT(m.aggregate_throughput_bps, 2.0e6);
  EXPECT_GT(m.fairness, 0.95);
}

TEST(MultiUser, SharedMediumHalvesPerUserRates) {
  // 2 users vs 4 users: per-user throughput roughly halves.
  MultiUserConfig cfg = quick_cfg();
  cfg.channel_errors = false;
  cfg.users = 2;
  MultiUserLanScenario two(cfg);
  const double two_rate = two.run().per_user[0].throughput_bps;
  cfg.users = 4;
  MultiUserLanScenario four(cfg);
  const double four_rate = four.run().per_user[0].throughput_bps;
  EXPECT_NEAR(four_rate / two_rate, 0.5, 0.15);
}

TEST(MultiUser, CompletesUnderBurstErrors) {
  MultiUserConfig cfg = quick_cfg();
  cfg.seed = 3;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_EQ(m.completed_users, cfg.users);
  for (const auto& u : m.per_user) EXPECT_GT(u.throughput_bps, 0.0);
}

TEST(MultiUser, CsdOutperformsFifo) {
  stats::Summary fifo, csd;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    MultiUserConfig cfg = quick_cfg();
    cfg.seed = seed;
    cfg.sched.policy = link::SchedPolicy::kFifo;
    MultiUserLanScenario f(cfg);
    fifo.add(f.run().aggregate_throughput_bps);

    cfg.sched.policy = link::SchedPolicy::kCsdRoundRobin;
    MultiUserLanScenario c(cfg);
    csd.add(c.run().aggregate_throughput_bps);
  }
  // The [9] result: channel-state-dependent scheduling significantly
  // beats FIFO when users fade independently.
  EXPECT_GT(csd.mean(), 1.3 * fifo.mean());
}

TEST(MultiUser, CsdUsesProbeAndSkips) {
  MultiUserConfig cfg = quick_cfg();
  cfg.sched.policy = link::SchedPolicy::kCsdRoundRobin;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_GT(m.csd_skips, 0u);
}

TEST(MultiUser, EbsnWorksPerConnection) {
  MultiUserConfig cfg = quick_cfg();
  cfg.feedback = FeedbackMode::kEbsn;
  cfg.sched.policy = link::SchedPolicy::kRoundRobin;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_EQ(m.completed_users, cfg.users);
  std::uint64_t total_ebsn = 0, total_timeouts = 0;
  for (const auto& u : m.per_user) {
    total_ebsn += u.ebsn_received;
    total_timeouts += u.timeouts;
  }
  EXPECT_GT(total_ebsn, 0u);
  // EBSN keeps per-connection timeouts low even on the shared radio.
  EXPECT_LE(total_timeouts, 8u);
}

TEST(MultiUser, RoundRobinIsFair) {
  MultiUserConfig cfg = quick_cfg();
  cfg.sched.policy = link::SchedPolicy::kRoundRobin;
  cfg.seed = 5;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_GT(m.fairness, 0.85);
}

TEST(MultiUser, WorksWithFragmentation) {
  // Wide-area-style MTU on the shared radio: each datagram becomes many
  // ARQ frames, and the scheduler's resolution counting must track them
  // all before freeing a slot.
  MultiUserConfig cfg = quick_cfg();
  cfg.users = 2;
  cfg.tcp.file_bytes = 64 * 1024;
  cfg.wireless_mtu_bytes = 512;
  cfg.sched.policy = link::SchedPolicy::kRoundRobin;
  MultiUserLanScenario s(cfg);
  const MultiUserMetrics m = s.run();
  EXPECT_EQ(m.completed_users, cfg.users);
  for (const auto& u : m.per_user) {
    EXPECT_EQ(u.unique_payload_bytes, cfg.tcp.file_bytes);
  }
}

TEST(MultiUser, DeterministicPerSeed) {
  MultiUserConfig cfg = quick_cfg();
  cfg.seed = 11;
  MultiUserLanScenario a(cfg);
  MultiUserLanScenario b(cfg);
  const MultiUserMetrics ma = a.run();
  const MultiUserMetrics mb = b.run();
  EXPECT_EQ(ma.duration, mb.duration);
  EXPECT_DOUBLE_EQ(ma.aggregate_throughput_bps, mb.aggregate_throughput_bps);
}

}  // namespace
}  // namespace wtcp::topo
