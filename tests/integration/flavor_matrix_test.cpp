// Flavor-matrix smoke: every congestion-control strategy against every
// recovery scheme, end to end on the WAN topology.  One small transfer
// per cell — the goal is "no cell wedges, every cell completes with sane
// metrics", not performance numbers (bench/abl_tcp_flavor.cpp measures
// those).  The binary carries the `flavor-matrix` ctest label so CI can
// run just this matrix after a congestion-control change.
#include "src/topo/scenario.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

namespace wtcp::topo {
namespace {

ScenarioConfig cell_config(tcp::TcpFlavor flavor, const std::string& scheme) {
  ScenarioConfig cfg = wan_scenario();
  cfg.tcp.file_bytes = 20 * 1024;  // keep the 25-cell sweep fast
  cfg.tcp.flavor = flavor;
  cfg.channel.mean_bad_s = 4;  // burst errors so loss responses actually run
  cfg.obs.enabled = true;
  if (scheme == "snoop") {
    cfg.snoop = true;
  } else if (scheme != "basic") {
    cfg.local_recovery = true;
    if (scheme == "ebsn") cfg.feedback = FeedbackMode::kEbsn;
    if (scheme == "quench") cfg.feedback = FeedbackMode::kSourceQuench;
  }
  return cfg;
}

using Cell = std::tuple<tcp::TcpFlavor, const char*>;

class FlavorMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(FlavorMatrix, CellCompletesWithSaneMetrics) {
  const auto [flavor, scheme] = GetParam();
  Scenario s(cell_config(flavor, scheme));
  const stats::RunMetrics m = s.run();
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.throughput_bps, 0.0);
  EXPECT_GT(m.goodput, 0.0);
  EXPECT_LE(m.goodput, 1.0);

  // The flavor-specific instruments must be live on the probe bus.
  ASSERT_NE(s.probes(), nullptr);
  if (flavor == tcp::TcpFlavor::kWestwood) {
    EXPECT_GT(s.probes()->gauge_value("cc.bw_est_bps"), 0.0);
  }
  if (flavor == tcp::TcpFlavor::kCerl) {
    // Every loss episode is classified one way or the other.
    const auto classified = s.probes()->counter_value("cc.loss_wireless") +
                            s.probes()->counter_value("cc.loss_congestion");
    EXPECT_EQ(classified, m.timeouts + m.fast_retransmits);
  }
}

TEST_P(FlavorMatrix, AckPacedCellCompletes) {
  const auto [flavor, scheme] = GetParam();
  ScenarioConfig cfg = cell_config(flavor, scheme);
  cfg.tcp.ack_pacing = true;
  const stats::RunMetrics m = run_scenario(cfg);
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.goodput, 0.0);
}

constexpr tcp::TcpFlavor kFlavors[] = {
    tcp::TcpFlavor::kTahoe, tcp::TcpFlavor::kReno, tcp::TcpFlavor::kNewReno,
    tcp::TcpFlavor::kWestwood, tcp::TcpFlavor::kCerl};
constexpr const char* kSchemes[] = {"basic", "local", "ebsn", "quench",
                                    "snoop"};

INSTANTIATE_TEST_SUITE_P(
    AllCells, FlavorMatrix,
    ::testing::Combine(::testing::ValuesIn(kFlavors),
                       ::testing::ValuesIn(kSchemes)),
    [](const ::testing::TestParamInfo<Cell>& tpi) {
      return std::string(tcp::to_string(std::get<0>(tpi.param))) + "_" +
             std::get<1>(tpi.param);
    });

}  // namespace
}  // namespace wtcp::topo
