// The machine-readable report path end to end: run_seeds_reported drives
// instrumented scenarios, snapshots every probe, and (optionally) writes
// the JSONL/CSV/manifest trio.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/core/experiment.hpp"

namespace wtcp {
namespace {

topo::ScenarioConfig ebsn_trace_config() {
  // The Figure-5 setup: deterministic 10 s good / 6 s bad channel, local
  // recovery + EBSN.  The paper's claim, which the report must surface:
  // EBSN eliminates source timeouts entirely.
  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.local_recovery = true;
  cfg.feedback = topo::FeedbackMode::kEbsn;
  cfg.deterministic_channel = true;
  cfg.channel.mean_bad_s = 6;
  cfg.tcp.file_bytes = 50 * 1024;
  return cfg;
}

TEST(RunReport, EbsnDeterministicRunReportsZeroTimeouts) {
  const core::ReportOptions opts;  // empty out_stem: in-memory only
  const core::RunReport report =
      core::run_seeds_reported(ebsn_trace_config(), 2, 1, opts);

  EXPECT_EQ(report.digest.size(), 16u);
  EXPECT_FALSE(report.config_description.empty());
  ASSERT_EQ(report.seeds.size(), 2u);
  EXPECT_EQ(report.summary.runs_completed, 2u);

  for (const core::SeedRunReport& sr : report.seeds) {
    EXPECT_TRUE(sr.metrics.completed);
    EXPECT_EQ(sr.metrics.timeouts, 0u);
    EXPECT_EQ(sr.counters.at("tcp.timeouts"), 0u);
    EXPECT_GT(sr.counters.at("tcp.sends"), 0u);
    EXPECT_GT(sr.counters.at("ebsn.sent"), 0u);
    EXPECT_GT(sr.counters.at("arq.attempts"), 0u);
    EXPECT_GT(sr.obs_samples, 0u);
    EXPECT_GT(sr.obs_events, 0u);
    EXPECT_GT(sr.events_executed, 0u);
    EXPECT_GT(sr.max_event_queue_depth, 0u);
    // Scheduler profiling attributed events to tagged components.
    EXPECT_FALSE(sr.executed_by_tag.empty());
    EXPECT_TRUE(sr.executed_by_tag.contains("obs.sampler"));
  }
}

TEST(RunReport, DigestIsStableAndConfigSensitive) {
  const topo::ScenarioConfig cfg = ebsn_trace_config();
  EXPECT_EQ(core::config_digest(cfg), core::config_digest(cfg));

  topo::ScenarioConfig other = cfg;
  other.tcp.mss += 1;
  EXPECT_NE(core::config_digest(cfg), core::config_digest(other));
}

TEST(RunReport, WritesJsonlCsvAndManifestFiles) {
  const std::string stem = testing::TempDir() + "wtcp_report_test";
  core::ReportOptions opts;
  opts.out_stem = stem;
  const core::RunReport report =
      core::run_seeds_reported(ebsn_trace_config(), 2, 1, opts);

  std::ifstream jsonl(stem + ".jsonl");
  ASSERT_TRUE(jsonl.good());
  std::string line;
  ASSERT_TRUE(std::getline(jsonl, line));
  EXPECT_EQ(line.front(), '{');
  EXPECT_NE(line.find("\"seed\":"), std::string::npos);

  std::ifstream csv(stem + ".series.csv");
  ASSERT_TRUE(csv.good());
  std::string header;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_EQ(header.substr(0, 11), "seed,time_s");
  for (const char* col : {"cwnd", "rto_s", "wired_queue", "channel_bad"}) {
    EXPECT_NE(header.find(col), std::string::npos) << col;
  }
  std::size_t csv_rows = 0;
  while (std::getline(csv, line)) ++csv_rows;
  std::size_t expected = 0;
  for (const core::SeedRunReport& sr : report.seeds) {
    expected += sr.obs_samples;
  }
  EXPECT_EQ(csv_rows, expected);

  std::ifstream manifest(stem + ".manifest.json");
  ASSERT_TRUE(manifest.good());
  std::stringstream all;
  all << manifest.rdbuf();
  EXPECT_EQ(all.str().front(), '{');
  EXPECT_NE(all.str().find("\"per_seed\":"), std::string::npos);
  EXPECT_NE(all.str().find("\"aggregate\":"), std::string::npos);
  EXPECT_NE(all.str().find(report.digest), std::string::npos);
}

TEST(RunReport, ObservabilityDoesNotChangeResults) {
  // The probe bus must be write-only: metrics with obs on equal metrics
  // with obs off for the same seed (no RNG perturbation, no behavior
  // coupling).
  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.local_recovery = true;
  cfg.feedback = topo::FeedbackMode::kEbsn;
  cfg.channel.mean_bad_s = 4;  // stochastic channel: the RNG-sensitive case
  cfg.tcp.file_bytes = 50 * 1024;
  cfg.seed = 7;

  const stats::RunMetrics off = topo::run_scenario(cfg);

  const core::ReportOptions opts;
  const core::RunReport on = core::run_seeds_reported(cfg, 1, 7, opts);
  ASSERT_EQ(on.seeds.size(), 1u);
  const stats::RunMetrics& m = on.seeds[0].metrics;

  EXPECT_EQ(m.duration, off.duration);
  EXPECT_EQ(m.segments_sent, off.segments_sent);
  EXPECT_EQ(m.segments_retransmitted, off.segments_retransmitted);
  EXPECT_EQ(m.timeouts, off.timeouts);
  EXPECT_DOUBLE_EQ(m.throughput_bps, off.throughput_bps);
}

}  // namespace
}  // namespace wtcp
