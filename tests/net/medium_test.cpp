#include "src/net/medium.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/link.hpp"
#include "src/net/node.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::net {
namespace {

TEST(Medium, AcquireRelease) {
  Medium m;
  EXPECT_FALSE(m.busy());
  m.acquire();
  EXPECT_TRUE(m.busy());
  m.release();
  EXPECT_FALSE(m.busy());
  EXPECT_EQ(m.grants(), 1u);
}

TEST(Medium, ReleaseOffersWaitersRoundRobin) {
  Medium m;
  std::vector<int> served;
  // Waiters that take the medium once each, clearing their ready bit as
  // a real direction does when its queue drains.
  for (int i = 0; i < 3; ++i) {
    const std::size_t id = m.add_waiter([&m, &served, i] {
      served.push_back(i);
      m.set_ready(static_cast<std::size_t>(i), false);
      m.acquire(static_cast<std::size_t>(i));
      return true;
    });
    m.set_ready(id, true);
  }
  EXPECT_EQ(m.ready_count(), 3u);
  m.acquire();          // initial holder
  m.release();          // -> waiter 0 takes it
  m.release();          // -> waiter 1
  m.release();          // -> waiter 2
  EXPECT_EQ(served, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(m.ready_count(), 0u);
}

TEST(Medium, SkipsDecliningWaiters) {
  Medium m;
  int taken = -1;
  const std::size_t decliner = m.add_waiter([] { return false; });
  const std::size_t taker = m.add_waiter([&] {
    taken = 1;
    m.acquire();
    return true;
  });
  m.set_ready(decliner, true);
  m.set_ready(taker, true);
  m.acquire();
  m.release();
  EXPECT_EQ(taken, 1);
  EXPECT_TRUE(m.busy());
}

// A waiter that never declares itself ready is never offered the channel,
// no matter how many times the medium turns over.
TEST(Medium, NotReadyWaitersAreNeverOffered) {
  Medium m;
  int offers_to_idle = 0;
  m.add_waiter([&] {
    ++offers_to_idle;
    return false;
  });
  const std::size_t busy_id = m.add_waiter([&] {
    m.acquire(busy_id);
    return true;
  });
  m.set_ready(busy_id, true);
  m.acquire();
  m.release();  // only the ready waiter is offered
  EXPECT_EQ(offers_to_idle, 0);
  EXPECT_TRUE(m.busy());
  m.set_ready(busy_id, false);
  m.release();  // nobody ready: channel just goes idle
  EXPECT_EQ(offers_to_idle, 0);
  EXPECT_FALSE(m.busy());
  EXPECT_EQ(m.ready_count(), 0u);
}

// Two links bound to one medium: transmissions serialize across links.
TEST(Medium, SerializesAcrossLinks) {
  sim::Simulator sim;
  auto medium = std::make_shared<Medium>();
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000;  // 1 byte/ms
  cfg.prop_delay = sim::Time::milliseconds(1);
  cfg.medium = medium;
  DuplexLink a(sim, cfg), b(sim, cfg);

  std::vector<std::pair<char, sim::Time>> arrivals;
  CallbackSink sink_a([&](PacketRef) { arrivals.emplace_back('a', sim.now()); });
  CallbackSink sink_b([&](PacketRef) { arrivals.emplace_back('b', sim.now()); });
  a.set_sink(1, &sink_a);
  b.set_sink(1, &sink_b);

  auto mk = [&] {
    PacketRef p = sim.packet_pool().acquire();
    p->size_bytes = 100;  // 100 ms airtime
    return p;
  };
  a.send(0, mk());
  b.send(0, mk());
  sim.run();

  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].first, 'a');
  EXPECT_EQ(arrivals[0].second, sim::Time::milliseconds(101));
  // b had to wait for a's airtime to end.
  EXPECT_EQ(arrivals[1].first, 'b');
  EXPECT_EQ(arrivals[1].second, sim::Time::milliseconds(201));
  EXPECT_EQ(medium->grants(), 2u);
}

TEST(Medium, RoundRobinAcrossLinksUnderBacklog) {
  sim::Simulator sim;
  auto medium = std::make_shared<Medium>();
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000;
  cfg.prop_delay = sim::Time::milliseconds(1);
  cfg.medium = medium;
  DuplexLink a(sim, cfg), b(sim, cfg);

  std::vector<char> order;
  CallbackSink sink_a([&](PacketRef) { order.push_back('a'); });
  CallbackSink sink_b([&](PacketRef) { order.push_back('b'); });
  a.set_sink(1, &sink_a);
  b.set_sink(1, &sink_b);

  auto mk = [&] {
    PacketRef p = sim.packet_pool().acquire();
    p->size_bytes = 10;
    return p;
  };
  for (int i = 0; i < 3; ++i) {
    a.send(0, mk());
    b.send(0, mk());
  }
  sim.run();
  ASSERT_EQ(order.size(), 6u);
  // After the first frame, service alternates (no starvation).
  int a_count = 0;
  for (char c : order) a_count += (c == 'a');
  EXPECT_EQ(a_count, 3);
  EXPECT_NE(order[1], order[0]);
}

TEST(Medium, UplinkAndDownlinkShareRadio) {
  sim::Simulator sim;
  auto medium = std::make_shared<Medium>();
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000;
  cfg.prop_delay = sim::Time::milliseconds(1);
  cfg.medium = medium;
  DuplexLink link(sim, cfg);
  std::vector<std::pair<int, sim::Time>> arrivals;
  CallbackSink s0([&](PacketRef) { arrivals.emplace_back(0, sim.now()); });
  CallbackSink s1([&](PacketRef) { arrivals.emplace_back(1, sim.now()); });
  link.set_sink(0, &s0);
  link.set_sink(1, &s1);
  auto mk = [&] {
    PacketRef p = sim.packet_pool().acquire();
    p->size_bytes = 100;
    return p;
  };
  link.send(0, mk());  // downlink
  link.send(1, mk());  // uplink must wait
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1].second - arrivals[0].second, sim::Time::milliseconds(100));
}

}  // namespace
}  // namespace wtcp::net
