#include "src/net/link.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/node.hpp"
#include "src/phy/error_model.hpp"
#include "src/sim/simulator.hpp"

namespace wtcp::net {
namespace {

struct Arrival {
  PacketRef pkt;
  sim::Time at;
};

class Recorder final : public PacketSink {
 public:
  explicit Recorder(sim::Simulator& sim) : sim_(sim) {}
  void handle_packet(PacketRef pkt) override {
    arrivals.push_back(Arrival{std::move(pkt), sim_.now()});
  }
  std::vector<Arrival> arrivals;

 private:
  sim::Simulator& sim_;
};

LinkConfig test_config() {
  return LinkConfig{
      .name = "test",
      .bandwidth_bps = 8'000,  // 1 byte per ms
      .prop_delay = sim::Time::milliseconds(10),
      .queue_packets = 4,
  };
}

PacketRef pkt(sim::Simulator& sim, std::int64_t size) {
  PacketRef p = sim.packet_pool().acquire();
  p->type = PacketType::kTcpData;
  p->size_bytes = size;
  p->tcp = TcpHeader{};
  return p;
}

TEST(DuplexLink, DeliversAfterSerializationPlusPropagation) {
  sim::Simulator sim;
  DuplexLink link(sim, test_config());
  Recorder rx(sim);
  link.set_sink(1, &rx);
  link.send(0, pkt(sim, 100));  // 100 ms serialization + 10 ms propagation
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 1u);
  EXPECT_EQ(rx.arrivals[0].at, sim::Time::milliseconds(110));
}

TEST(DuplexLink, BackToBackFramesSerialize) {
  sim::Simulator sim;
  DuplexLink link(sim, test_config());
  Recorder rx(sim);
  link.set_sink(1, &rx);
  link.send(0, pkt(sim, 100));
  link.send(0, pkt(sim, 100));
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 2u);
  EXPECT_EQ(rx.arrivals[0].at, sim::Time::milliseconds(110));
  EXPECT_EQ(rx.arrivals[1].at, sim::Time::milliseconds(210));
}

TEST(DuplexLink, DirectionsAreIndependent) {
  sim::Simulator sim;
  DuplexLink link(sim, test_config());
  Recorder rx0(sim), rx1(sim);
  link.set_sink(0, &rx0);
  link.set_sink(1, &rx1);
  link.send(0, pkt(sim, 100));
  link.send(1, pkt(sim, 100));
  sim.run();
  ASSERT_EQ(rx0.arrivals.size(), 1u);
  ASSERT_EQ(rx1.arrivals.size(), 1u);
  // Full duplex: both arrive at the same time, no contention.
  EXPECT_EQ(rx0.arrivals[0].at, sim::Time::milliseconds(110));
  EXPECT_EQ(rx1.arrivals[0].at, sim::Time::milliseconds(110));
}

TEST(DuplexLink, OverheadExpandsAirtime) {
  sim::Simulator sim;
  LinkConfig cfg = test_config();
  cfg.overhead_num = 3;
  cfg.overhead_den = 2;
  DuplexLink link(sim, cfg);
  Recorder rx(sim);
  link.set_sink(1, &rx);
  link.send(0, pkt(sim, 100));  // on-air 150 B -> 150 ms + 10 ms
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 1u);
  EXPECT_EQ(rx.arrivals[0].at, sim::Time::milliseconds(160));
  EXPECT_EQ(link.airtime_bytes(100), 150);
  EXPECT_EQ(link.airtime_bytes(1), 2);  // rounds up
}

TEST(DuplexLink, QueueOverflowDropsTail) {
  sim::Simulator sim;
  DuplexLink link(sim, test_config());  // queue 4
  Recorder rx(sim);
  link.set_sink(1, &rx);
  // First is immediately in transmission, 4 queue, rest dropped.
  int accepted = 0;
  for (int i = 0; i < 8; ++i) {
    if (link.send(0, pkt(sim, 100))) ++accepted;
  }
  sim.run();
  EXPECT_EQ(accepted, 5);
  EXPECT_EQ(rx.arrivals.size(), 5u);
  EXPECT_EQ(link.queue_stats(0).dropped, 3u);
}

TEST(DuplexLink, PrioritySendJumpsQueue) {
  sim::Simulator sim;
  DuplexLink link(sim, test_config());
  Recorder rx(sim);
  link.set_sink(1, &rx);
  PacketRef a = pkt(sim, 100);
  a->uid = 1;
  PacketRef b = pkt(sim, 100);
  b->uid = 2;
  PacketRef c = pkt(sim, 100);
  c->uid = 3;
  link.send(0, std::move(a));           // goes on air immediately
  link.send(0, std::move(b));           // queued
  link.send(0, std::move(c), /*priority=*/true);  // jumps ahead of b
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 3u);
  EXPECT_EQ(rx.arrivals[0].pkt->uid, 1u);
  EXPECT_EQ(rx.arrivals[1].pkt->uid, 3u);
  EXPECT_EQ(rx.arrivals[2].pkt->uid, 2u);
}

TEST(DuplexLink, ErrorModelDropsCorruptedFrames) {
  sim::Simulator sim;
  DuplexLink link(sim, test_config());
  Recorder rx(sim);
  link.set_sink(1, &rx);
  // Corrupt everything transmitted in [0, 150 ms).
  link.set_error_model(std::make_shared<phy::ScriptedErrorModel>(
      std::vector<phy::ScriptedErrorModel::Window>{
          {sim::Time::zero(), sim::Time::milliseconds(150)}}));
  link.send(0, pkt(sim, 100));  // on air [0, 100) -> corrupted
  link.send(0, pkt(sim, 100));  // on air [100, 200) -> overlaps window -> corrupted
  link.send(0, pkt(sim, 100));  // on air [200, 300) -> clean
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 1u);
  EXPECT_EQ(link.stats(0).frames_corrupted, 2u);
  EXPECT_EQ(link.stats(0).frames_delivered, 1u);
}

TEST(DuplexLink, StatsCountBytesAndBusyTime) {
  sim::Simulator sim;
  DuplexLink link(sim, test_config());
  Recorder rx(sim);
  link.set_sink(1, &rx);
  link.send(0, pkt(sim, 100));
  link.send(0, pkt(sim, 50));
  sim.run();
  const LinkDirectionStats& s = link.stats(0);
  EXPECT_EQ(s.frames_sent, 2u);
  EXPECT_EQ(s.bytes_sent, 150);
  EXPECT_EQ(s.bytes_delivered, 150);
  EXPECT_EQ(s.busy_time, sim::Time::milliseconds(150));
}

TEST(DuplexLink, FrameObserversSeeOutcomes) {
  sim::Simulator sim;
  DuplexLink link(sim, test_config());
  Recorder rx(sim);
  link.set_sink(1, &rx);
  int observed = 0;
  link.add_frame_observer([&](int from, const Packet&, bool delivered) {
    ++observed;
    EXPECT_EQ(from, 0);
    EXPECT_TRUE(delivered);
  });
  link.send(0, pkt(sim, 10));
  sim.run();
  EXPECT_EQ(observed, 1);
}

TEST(DuplexLink, NoSinkMeansSilentDrop) {
  sim::Simulator sim;
  DuplexLink link(sim, test_config());
  link.send(0, pkt(sim, 10));  // no sink at endpoint 1
  sim.run();              // must not crash
  EXPECT_EQ(link.stats(0).frames_delivered, 1u);
}

TEST(DuplexLink, HalfDuplexSerializesDirections) {
  sim::Simulator sim;
  LinkConfig cfg = test_config();
  cfg.half_duplex = true;
  DuplexLink link(sim, cfg);
  Recorder rx0(sim), rx1(sim);
  link.set_sink(0, &rx0);
  link.set_sink(1, &rx1);
  link.send(0, pkt(sim, 100));  // [0, 100) on air
  link.send(1, pkt(sim, 100));  // must wait: [100, 200)
  sim.run();
  ASSERT_EQ(rx1.arrivals.size(), 1u);
  ASSERT_EQ(rx0.arrivals.size(), 1u);
  EXPECT_EQ(rx1.arrivals[0].at, sim::Time::milliseconds(110));
  EXPECT_EQ(rx0.arrivals[0].at, sim::Time::milliseconds(210));
}

TEST(DuplexLink, HalfDuplexAlternatesUnderBacklog) {
  sim::Simulator sim;
  LinkConfig cfg = test_config();
  cfg.half_duplex = true;
  cfg.queue_packets = 10;
  DuplexLink link(sim, cfg);
  std::vector<int> order;
  CallbackSink s0([&](PacketRef) { order.push_back(0); });
  CallbackSink s1([&](PacketRef) { order.push_back(1); });
  link.set_sink(0, &s0);
  link.set_sink(1, &s1);
  for (int i = 0; i < 3; ++i) {
    link.send(0, pkt(sim, 50));
    link.send(1, pkt(sim, 50));
  }
  sim.run();
  ASSERT_EQ(order.size(), 6u);
  // After the first frame, service alternates between directions.
  for (std::size_t i = 1; i + 1 < order.size(); ++i) {
    EXPECT_NE(order[i], order[i + 1]) << "position " << i;
  }
}

TEST(DuplexLink, TransmittingFlagTracksAirtime) {
  sim::Simulator sim;
  DuplexLink link(sim, test_config());
  Recorder rx(sim);
  link.set_sink(1, &rx);
  link.send(0, pkt(sim, 100));
  EXPECT_TRUE(link.transmitting(0));
  sim.at(sim::Time::milliseconds(50), [&] { EXPECT_TRUE(link.transmitting(0)); });
  sim.at(sim::Time::milliseconds(101), [&] { EXPECT_FALSE(link.transmitting(0)); });
  sim.run();
}

}  // namespace
}  // namespace wtcp::net
