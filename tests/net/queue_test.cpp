#include "src/net/queue.hpp"

#include <gtest/gtest.h>

namespace wtcp::net {
namespace {

Packet pkt(std::int64_t size) {
  Packet p;
  p.size_bytes = size;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10);
  q.enqueue(pkt(1));
  q.enqueue(pkt(2));
  q.enqueue(pkt(3));
  EXPECT_EQ(q.dequeue()->size_bytes, 1);
  EXPECT_EQ(q.dequeue()->size_bytes, 2);
  EXPECT_EQ(q.dequeue()->size_bytes, 3);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueue, DropsWhenPacketCapacityExceeded) {
  DropTailQueue q(2);
  EXPECT_TRUE(q.enqueue(pkt(1)));
  EXPECT_TRUE(q.enqueue(pkt(2)));
  EXPECT_FALSE(q.enqueue(pkt(3)));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(DropTailQueue, DropsWhenByteCapacityExceeded) {
  DropTailQueue q(100, 250);
  EXPECT_TRUE(q.enqueue(pkt(100)));
  EXPECT_TRUE(q.enqueue(pkt(100)));
  EXPECT_FALSE(q.enqueue(pkt(100)));  // would reach 300 > 250
  EXPECT_TRUE(q.enqueue(pkt(50)));
  EXPECT_EQ(q.bytes(), 250);
}

TEST(DropTailQueue, ByteAccountingAcrossDequeue) {
  DropTailQueue q(10);
  q.enqueue(pkt(100));
  q.enqueue(pkt(50));
  EXPECT_EQ(q.bytes(), 150);
  q.dequeue();
  EXPECT_EQ(q.bytes(), 50);
  q.dequeue();
  EXPECT_EQ(q.bytes(), 0);
}

TEST(DropTailQueue, EnqueueFrontJumpsQueue) {
  DropTailQueue q(10);
  q.enqueue(pkt(1));
  q.enqueue(pkt(2));
  EXPECT_TRUE(q.enqueue_front(pkt(99)));
  EXPECT_EQ(q.dequeue()->size_bytes, 99);
  EXPECT_EQ(q.dequeue()->size_bytes, 1);
}

TEST(DropTailQueue, EnqueueFrontRespectsCapacity) {
  DropTailQueue q(1);
  EXPECT_TRUE(q.enqueue(pkt(1)));
  EXPECT_FALSE(q.enqueue_front(pkt(2)));
  EXPECT_EQ(q.stats().dropped, 1u);
}

TEST(DropTailQueue, PeekDoesNotRemove) {
  DropTailQueue q(10);
  EXPECT_EQ(q.peek(), nullptr);
  q.enqueue(pkt(7));
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(q.peek()->size_bytes, 7);
  EXPECT_EQ(q.size(), 1u);
}

TEST(DropTailQueue, StatsTrackDepthsAndCounts) {
  DropTailQueue q(10);
  q.enqueue(pkt(100));
  q.enqueue(pkt(200));
  q.dequeue();
  q.enqueue(pkt(50));
  const QueueStats& s = q.stats();
  EXPECT_EQ(s.enqueued, 3u);
  EXPECT_EQ(s.dequeued, 1u);
  EXPECT_EQ(s.max_depth_packets, 2u);
  EXPECT_EQ(s.max_depth_bytes, 300);
}

TEST(DropTailQueue, ClearEmptiesButKeepsStats) {
  DropTailQueue q(10);
  q.enqueue(pkt(1));
  q.enqueue(pkt(2));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0);
  EXPECT_EQ(q.stats().enqueued, 2u);
}

}  // namespace
}  // namespace wtcp::net
