#include "src/net/queue.hpp"

#include <gtest/gtest.h>

namespace wtcp::net {
namespace {

class DropTailQueueTest : public ::testing::Test {
 protected:
  // Pool outlives every queue so refs drain back into it at teardown.
  PacketPool pool_;

  PacketRef pkt(std::int64_t size) {
    PacketRef p = pool_.acquire();
    p->size_bytes = size;
    return p;
  }
};

TEST_F(DropTailQueueTest, FifoOrder) {
  DropTailQueue q(10);
  q.enqueue(pkt(1));
  q.enqueue(pkt(2));
  q.enqueue(pkt(3));
  EXPECT_EQ(q.dequeue()->size_bytes, 1);
  EXPECT_EQ(q.dequeue()->size_bytes, 2);
  EXPECT_EQ(q.dequeue()->size_bytes, 3);
  EXPECT_FALSE(q.dequeue());
}

TEST_F(DropTailQueueTest, DropsWhenPacketCapacityExceeded) {
  DropTailQueue q(2);
  EXPECT_TRUE(q.enqueue(pkt(1)));
  EXPECT_TRUE(q.enqueue(pkt(2)));
  EXPECT_FALSE(q.enqueue(pkt(3)));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST_F(DropTailQueueTest, RejectedPacketStaysUsable) {
  DropTailQueue q(1);
  EXPECT_TRUE(q.enqueue(pkt(1)));
  PacketRef p = pkt(42);
  EXPECT_FALSE(q.enqueue(std::move(p)));
  // A failed enqueue must not consume the ref: the caller still owns it
  // (the link uses this to trace the drop).
  ASSERT_TRUE(p);
  EXPECT_EQ(p->size_bytes, 42);
}

TEST_F(DropTailQueueTest, DropsWhenByteCapacityExceeded) {
  DropTailQueue q(100, 250);
  EXPECT_TRUE(q.enqueue(pkt(100)));
  EXPECT_TRUE(q.enqueue(pkt(100)));
  EXPECT_FALSE(q.enqueue(pkt(100)));  // would reach 300 > 250
  EXPECT_TRUE(q.enqueue(pkt(50)));
  EXPECT_EQ(q.bytes(), 250);
}

TEST_F(DropTailQueueTest, ByteAccountingAcrossDequeue) {
  DropTailQueue q(10);
  q.enqueue(pkt(100));
  q.enqueue(pkt(50));
  EXPECT_EQ(q.bytes(), 150);
  q.dequeue();
  EXPECT_EQ(q.bytes(), 50);
  q.dequeue();
  EXPECT_EQ(q.bytes(), 0);
}

TEST_F(DropTailQueueTest, EnqueueFrontJumpsQueue) {
  DropTailQueue q(10);
  q.enqueue(pkt(1));
  q.enqueue(pkt(2));
  EXPECT_TRUE(q.enqueue_front(pkt(99)));
  EXPECT_EQ(q.dequeue()->size_bytes, 99);
  EXPECT_EQ(q.dequeue()->size_bytes, 1);
}

TEST_F(DropTailQueueTest, EnqueueFrontRespectsCapacity) {
  DropTailQueue q(1);
  EXPECT_TRUE(q.enqueue(pkt(1)));
  EXPECT_FALSE(q.enqueue_front(pkt(2)));
  EXPECT_EQ(q.stats().dropped, 1u);
}

TEST_F(DropTailQueueTest, PeekDoesNotRemove) {
  DropTailQueue q(10);
  EXPECT_EQ(q.peek(), nullptr);
  q.enqueue(pkt(7));
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(q.peek()->size_bytes, 7);
  EXPECT_EQ(q.size(), 1u);
}

TEST_F(DropTailQueueTest, StatsTrackDepthsAndCounts) {
  DropTailQueue q(10);
  q.enqueue(pkt(100));
  q.enqueue(pkt(200));
  q.dequeue();
  q.enqueue(pkt(50));
  const QueueStats& s = q.stats();
  EXPECT_EQ(s.enqueued, 3u);
  EXPECT_EQ(s.dequeued, 1u);
  EXPECT_EQ(s.max_depth_packets, 2u);
  EXPECT_EQ(s.max_depth_bytes, 300);
}

TEST_F(DropTailQueueTest, ClearEmptiesButKeepsStats) {
  DropTailQueue q(10);
  q.enqueue(pkt(1));
  q.enqueue(pkt(2));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0);
  EXPECT_EQ(q.stats().enqueued, 2u);
}

}  // namespace
}  // namespace wtcp::net
