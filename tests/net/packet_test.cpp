#include "src/net/packet.hpp"

#include <gtest/gtest.h>

#include "src/net/node.hpp"

namespace wtcp::net {
namespace {

TEST(Packet, MakeTcpDataSetsSizeAndHeader) {
  PacketPool pool;
  const PacketRef p = make_tcp_data(pool, 7, 536, 40, 0, 2, sim::Time::seconds(1));
  EXPECT_EQ(p->type, PacketType::kTcpData);
  EXPECT_EQ(p->size_bytes, 576);
  ASSERT_TRUE(p->tcp.has_value());
  EXPECT_EQ(p->tcp->seq, 7);
  EXPECT_EQ(p->tcp->payload, 536);
  EXPECT_FALSE(p->tcp->retransmit);
  EXPECT_EQ(p->src, 0);
  EXPECT_EQ(p->dst, 2);
  EXPECT_EQ(p->created_at, sim::Time::seconds(1));
}

TEST(Packet, MakeTcpAckIsHeaderOnly) {
  PacketPool pool;
  const PacketRef p = make_tcp_ack(pool, 12, 40, 2, 0, sim::Time::zero());
  EXPECT_EQ(p->type, PacketType::kTcpAck);
  EXPECT_EQ(p->size_bytes, 40);
  ASSERT_TRUE(p->tcp.has_value());
  EXPECT_EQ(p->tcp->ack, 12);
  EXPECT_EQ(p->tcp->payload, 0);
}

TEST(Packet, MakeControl) {
  PacketPool pool;
  const PacketRef p = make_control(pool, PacketType::kEbsn, 40, 1, 0, sim::Time::zero());
  EXPECT_EQ(p->type, PacketType::kEbsn);
  EXPECT_EQ(p->size_bytes, 40);
  EXPECT_FALSE(p->tcp.has_value());
  EXPECT_FALSE(p->frag.has_value());
}

TEST(Packet, TypeNames) {
  EXPECT_STREQ(to_string(PacketType::kTcpData), "DATA");
  EXPECT_STREQ(to_string(PacketType::kTcpAck), "ACK");
  EXPECT_STREQ(to_string(PacketType::kLinkFragment), "FRAG");
  EXPECT_STREQ(to_string(PacketType::kLinkAck), "LACK");
  EXPECT_STREQ(to_string(PacketType::kEbsn), "EBSN");
  EXPECT_STREQ(to_string(PacketType::kSourceQuench), "QUENCH");
}

TEST(Packet, DescribeMentionsKeyFields) {
  PacketPool pool;
  const PacketRef d = make_tcp_data(pool, 5, 100, 40, 0, 2, sim::Time::zero());
  EXPECT_NE(d->describe().find("DATA"), std::string::npos);
  EXPECT_NE(d->describe().find("seq=5"), std::string::npos);

  PacketRef r = pool.clone(*d);
  r->tcp->retransmit = true;
  EXPECT_NE(r->describe().find("rtx"), std::string::npos);

  Packet f;
  f.type = PacketType::kLinkFragment;
  f.size_bytes = 128;
  f.frag = FragmentHeader{.datagram_id = 9, .index = 1, .count = 3, .link_seq = 44};
  EXPECT_NE(f.describe().find("dgram=9"), std::string::npos);
  EXPECT_NE(f.describe().find("1/3"), std::string::npos);
}

TEST(Packet, DescribeToTruncatesSafely) {
  PacketPool pool;
  const PacketRef d = make_tcp_data(pool, 5, 100, 40, 0, 2, sim::Time::zero());
  char tiny[8];
  d->describe_to(tiny, sizeof(tiny));
  EXPECT_EQ(tiny[sizeof(tiny) - 1], '\0');
  EXPECT_EQ(std::string(tiny).substr(0, 4), "DATA");
}

TEST(NodeRegistry, AssignsDenseIds) {
  NodeRegistry reg;
  const NodeId a = reg.add("FH");
  const NodeId b = reg.add("BS");
  const NodeId c = reg.add("MH");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 2);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.at(b).name(), "BS");
  EXPECT_EQ(reg.at(c).id(), 2);
}

TEST(CallbackSink, ForwardsPackets) {
  PacketPool pool;
  int seen = 0;
  CallbackSink sink([&](PacketRef p) {
    ++seen;
    EXPECT_EQ(p->type, PacketType::kTcpAck);
  });
  sink.handle_packet(make_tcp_ack(pool, 1, 40, 0, 1, sim::Time::zero()));
  sink.handle_packet(make_tcp_ack(pool, 2, 40, 0, 1, sim::Time::zero()));
  EXPECT_EQ(seen, 2);
}

}  // namespace
}  // namespace wtcp::net
