#include "src/net/packet_pool.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "src/obs/probe.hpp"

namespace wtcp::net {
namespace {

TEST(PacketPool, GrowsByChunksOnExhaustion) {
  PacketPool pool(4);
  EXPECT_EQ(pool.allocs(), 0u);

  std::vector<PacketRef> refs;
  for (int i = 0; i < 10; ++i) refs.push_back(pool.acquire());

  // 10 live slots forced three 4-slot chunks.
  EXPECT_EQ(pool.allocs(), 12u);
  EXPECT_EQ(pool.live(), 10u);
  EXPECT_EQ(pool.high_water(), 10u);
  EXPECT_EQ(pool.recycled(), 0u);

  refs.clear();
  EXPECT_EQ(pool.live(), 0u);

  // The arena is warm now: further acquisitions never allocate.  10 of the
  // 12 slots have served before and count as recycled; the 2 spare slots
  // of the last chunk see first use.
  for (int i = 0; i < 12; ++i) refs.push_back(pool.acquire());
  EXPECT_EQ(pool.allocs(), 12u);
  EXPECT_EQ(pool.recycled(), 10u);
  refs.clear();
}

TEST(PacketPool, ReacquiredSlotIsFreshlyReset) {
  PacketPool pool(1);  // single-slot chunks: the same slot comes right back
  Packet* slot;
  {
    PacketRef p = pool.acquire();
    slot = p.get();
    p->type = PacketType::kLinkFragment;
    p->size_bytes = 576;
    p->src = 1;
    p->dst = 2;
    p->tcp = TcpHeader{.seq = 41};
    p->frag = FragmentHeader{.datagram_id = 9, .index = 3, .count = 5};
    p->encapsulated = pool.acquire();
    p->created_at = sim::Time::seconds(7);
    p->uid = 99;
  }
  ASSERT_EQ(pool.live(), 0u);

  PacketRef q = pool.acquire();
  ASSERT_EQ(q.get(), slot);  // freelist is LIFO: same storage
  EXPECT_EQ(q->type, PacketType::kTcpData);
  EXPECT_EQ(q->size_bytes, 0);
  EXPECT_EQ(q->src, kNoNode);
  EXPECT_EQ(q->dst, kNoNode);
  EXPECT_FALSE(q->tcp.has_value());
  EXPECT_FALSE(q->frag.has_value());
  EXPECT_FALSE(q->encapsulated);
  EXPECT_EQ(q->created_at, sim::Time::zero());
  // uid is not zeroed but reassigned: this is the third acquire, so the
  // recycled slot carries a fresh trace identity, never the old one.
  EXPECT_EQ(q->uid, 3u);
}

TEST(PacketPool, ShareKeepsSlotAliveUntilLastOwner) {
  PacketPool pool;
  PacketRef a = pool.acquire();
  a->uid = 7;
  PacketRef b = a.share();
  PacketRef c = b.share();
  EXPECT_EQ(pool.live(), 1u);  // one slot, three owners
  EXPECT_EQ(a.get(), c.get());

  a.reset();
  b.reset();
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(c->uid, 7u);  // surviving owner still reads the slot
  c.reset();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, EncapsulatedChainReleasesRecursively) {
  PacketPool pool;
  {
    PacketRef datagram = pool.acquire();
    datagram->size_bytes = 576;

    // Five fragments sharing the datagram, as the fragmenter builds them.
    std::vector<PacketRef> frags;
    for (int i = 0; i < 5; ++i) {
      PacketRef f = pool.acquire();
      f->type = PacketType::kLinkFragment;
      f->encapsulated = datagram.share();
      frags.push_back(std::move(f));
    }
    datagram.reset();
    EXPECT_EQ(pool.live(), 6u);  // datagram pinned by its fragments

    frags.erase(frags.begin(), frags.begin() + 4);
    EXPECT_EQ(pool.live(), 2u);  // last fragment still pins the datagram
  }
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, CloneSharesEncapsulatedInsteadOfCopying) {
  PacketPool pool;
  PacketRef datagram = pool.acquire();
  datagram->uid = 11;

  PacketRef frag = pool.acquire();
  frag->type = PacketType::kLinkFragment;
  frag->frag = FragmentHeader{.datagram_id = 1, .index = 0, .count = 1};
  frag->encapsulated = datagram.share();
  frag->uid = 12;

  PacketRef copy = pool.clone(*frag);
  EXPECT_EQ(pool.live(), 3u);  // datagram + frag + copy, no datagram copy
  EXPECT_NE(copy.get(), frag.get());
  EXPECT_EQ(copy->encapsulated.get(), datagram.get());
  EXPECT_EQ(copy->uid, 12u);
  EXPECT_EQ(copy->frag->datagram_id, 1u);
}

TEST(PacketPool, RecycleHammerKeepsArenaBounded) {
  // Sustained churn with mixed drop order and fragment-style sharing.  The
  // arena must plateau at the burst working set, and (under the ASan build
  // of scripts/check.sh) any read through a recycled slot or bad poisoning
  // of a live one trips the sanitizer here.
  PacketPool pool(8);
  std::uint64_t checksum = 0;
  for (int round = 0; round < 5000; ++round) {
    PacketRef datagram = pool.acquire();
    datagram->uid = static_cast<std::uint64_t>(round);
    std::vector<PacketRef> frags;
    for (int i = 0; i < 4; ++i) {
      PacketRef f = pool.acquire();
      f->encapsulated = datagram.share();
      frags.push_back(std::move(f));
    }
    datagram.reset();
    // Drop in alternating order so the freelist sees both LIFO and FIFO.
    if (round % 2 == 0) {
      for (auto& f : frags) {
        checksum += f->encapsulated->uid;
        f.reset();
      }
    } else {
      for (auto it = frags.rbegin(); it != frags.rend(); ++it) {
        checksum += (*it)->encapsulated->uid;
        it->reset();
      }
    }
    ASSERT_EQ(pool.live(), 0u);
  }
  EXPECT_EQ(pool.allocs(), 8u);  // one chunk forever: 5 live at peak
  EXPECT_EQ(checksum, 4u * (4999u * 5000u / 2));
}

TEST(PacketPool, BindProbesCatchesUpAndTracks) {
  PacketPool pool(4);
  PacketRef warm = pool.acquire();  // pre-bind growth
  warm.reset();

  obs::Registry bus;
  pool.bind_probes(bus.counter("pool.allocs"), bus.counter("pool.recycled"),
                   bus.gauge("pool.high_water"));
  EXPECT_EQ(bus.counter_value("pool.allocs"), 4u);
  EXPECT_EQ(bus.counter_value("pool.recycled"), 0u);
  EXPECT_DOUBLE_EQ(bus.gauge_value("pool.high_water"), 1.0);

  std::vector<PacketRef> refs;
  for (int i = 0; i < 6; ++i) refs.push_back(pool.acquire());
  EXPECT_EQ(bus.counter_value("pool.allocs"), 8u);       // one more chunk
  EXPECT_EQ(bus.counter_value("pool.recycled"), 1u);     // the warm slot
  EXPECT_DOUBLE_EQ(bus.gauge_value("pool.high_water"), 6.0);
  refs.clear();
}

}  // namespace
}  // namespace wtcp::net
