#include "src/mobility/handoff.hpp"

#include <gtest/gtest.h>

#include "src/topo/scenario.hpp"

namespace wtcp::mobility {
namespace {

HandoffConfig det_cfg() {
  HandoffConfig cfg;
  cfg.enabled = true;
  cfg.deterministic = true;
  cfg.mean_interval = sim::Time::seconds(10);
  cfg.latency = sim::Time::milliseconds(500);
  cfg.first_after = sim::Time::seconds(5);
  return cfg;
}

TEST(HandoffManager, DeterministicSchedule) {
  sim::Simulator sim;
  HandoffManager mgr(sim, det_cfg());
  std::vector<double> starts, ends;
  mgr.on_handoff_start = [&] { starts.push_back(sim.now().to_seconds()); };
  mgr.on_handoff_complete = [&] { ends.push_back(sim.now().to_seconds()); };
  sim.run(sim::Time::seconds(40));
  // First at 5 + 10 = 15 s, then every (10 + 0.5) s.
  ASSERT_GE(starts.size(), 3u);
  EXPECT_DOUBLE_EQ(starts[0], 15.0);
  EXPECT_DOUBLE_EQ(ends[0], 15.5);
  EXPECT_DOUBLE_EQ(starts[1], 25.5);
  EXPECT_EQ(mgr.stats().handoffs, starts.size());
}

TEST(HandoffManager, BlackoutModelCorruptsDuringHandoff) {
  sim::Simulator sim;
  HandoffManager mgr(sim, det_cfg());
  auto model = mgr.blackout_model();
  sim.run(sim::Time::seconds(16));  // one handoff at [15, 15.5)
  EXPECT_FALSE(model->corrupts(sim::Time::seconds(14),
                               sim::Time::from_seconds(14.5), 1000));
  EXPECT_TRUE(model->corrupts(sim::Time::from_seconds(15.2),
                              sim::Time::from_seconds(15.3), 1000));
  EXPECT_TRUE(model->corrupts(sim::Time::from_seconds(14.9),
                              sim::Time::from_seconds(15.1), 1000));
  EXPECT_FALSE(model->corrupts(sim::Time::from_seconds(15.5),
                               sim::Time::from_seconds(15.6), 1000));
}

TEST(HandoffManager, StochasticScheduleIsSeedDeterministic) {
  sim::Simulator a(7), b(7), c(8);
  HandoffConfig cfg = det_cfg();
  cfg.deterministic = false;
  HandoffManager ma(a, cfg), mb(b, cfg), mc(c, cfg);
  std::vector<double> ta, tb, tc;
  ma.on_handoff_start = [&] { ta.push_back(a.now().to_seconds()); };
  mb.on_handoff_start = [&] { tb.push_back(b.now().to_seconds()); };
  mc.on_handoff_start = [&] { tc.push_back(c.now().to_seconds()); };
  a.run(sim::Time::seconds(200));
  b.run(sim::Time::seconds(200));
  c.run(sim::Time::seconds(200));
  EXPECT_EQ(ta, tb);
  EXPECT_NE(ta, tc);
  EXPECT_GT(ta.size(), 2u);
}

// Regression: begin_handoff() used to charge the FULL configured latency
// the moment a handoff began, so a run ending mid-blackout overcounted
// blackout_time.  Accounting now accrues on completion and pro-rates an
// in-progress handoff at query time.
TEST(HandoffManager, BlackoutAccruesOnlyElapsedTimeMidHandoff) {
  sim::Simulator sim;
  HandoffManager mgr(sim, det_cfg());  // handoff at [15 s, 15.5 s)
  HandoffStats mid;
  bool mid_in_handoff = false;
  sim.at(sim::Time::from_seconds(15.2), [&] {
    mid = mgr.stats();
    mid_in_handoff = mgr.in_handoff();
  });
  sim.run(sim::Time::seconds(16));

  ASSERT_TRUE(mid_in_handoff);
  // 0.2 s of the 0.5 s blackout had elapsed; the old code reported 0.5 s.
  EXPECT_DOUBLE_EQ(mid.blackout_time.to_seconds(), 0.2);
  EXPECT_EQ(mid.handoffs, 1u);

  EXPECT_FALSE(mgr.in_handoff());
  EXPECT_DOUBLE_EQ(mgr.stats().blackout_time.to_seconds(), 0.5);
}

TEST(HandoffManager, BlackoutAccumulatesAcrossCompletedHandoffs) {
  sim::Simulator sim;
  HandoffManager mgr(sim, det_cfg());  // handoffs at 15 and 25.5 s
  sim.run(sim::Time::seconds(30));
  EXPECT_EQ(mgr.stats().handoffs, 2u);
  EXPECT_DOUBLE_EQ(mgr.stats().blackout_time.to_seconds(), 1.0);
}

TEST(HandoffManager, ProbeCountersTrackBeginAndComplete) {
  sim::Simulator sim;
  obs::Registry probes;
  sim.set_probes(&probes);
  HandoffManager mgr(sim, det_cfg());
  sim.run(sim::Time::from_seconds(15.2));  // mid-blackout of handoff #1
  EXPECT_EQ(probes.counter("handoff.begun")->value, 1u);
  EXPECT_EQ(probes.counter("handoff.completed")->value, 0u);
  sim.run(sim::Time::seconds(16));
  EXPECT_EQ(probes.counter("handoff.completed")->value, 1u);
  EXPECT_DOUBLE_EQ(probes.gauge("handoff.blackout_s")->value, 0.5);
}

TEST(HandoffManager, DisabledDoesNothing) {
  sim::Simulator sim;
  HandoffConfig cfg;
  cfg.enabled = false;
  HandoffManager mgr(sim, cfg);
  sim.run(sim::Time::seconds(100));
  EXPECT_EQ(mgr.stats().handoffs, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end handoff scenarios
// ---------------------------------------------------------------------------

topo::ScenarioConfig handoff_scenario() {
  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.channel_errors = false;  // isolate the handoff effect
  cfg.tcp.file_bytes = 60 * 1024;
  cfg.handoff = det_cfg();
  return cfg;
}

TEST(HandoffScenario, BlackoutsCauseTimeoutsForBasicTcp) {
  const stats::RunMetrics m = topo::run_scenario(handoff_scenario());
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.handoffs, 0u);
  EXPECT_GT(m.timeouts + m.fast_retransmits, 0u);
  EXPECT_LT(m.goodput, 1.0);
}

TEST(HandoffScenario, FastRetransmitOnResumeRecoversFaster) {
  topo::ScenarioConfig plain = handoff_scenario();
  topo::ScenarioConfig fr = handoff_scenario();
  fr.handoff.fast_retransmit_on_resume = true;
  const stats::RunMetrics mp = topo::run_scenario(plain);
  const stats::RunMetrics mf = topo::run_scenario(fr);
  EXPECT_TRUE(mf.completed);
  // The [4] scheme replaces timeout-recovery with fast retransmit.
  EXPECT_LT(mf.timeouts, mp.timeouts);
  EXPECT_LE(mf.duration, mp.duration);
}

TEST(HandoffScenario, EbsnKeepsTimerCalmThroughHandoffs) {
  topo::ScenarioConfig cfg = handoff_scenario();
  cfg.local_recovery = true;
  cfg.feedback = topo::FeedbackMode::kEbsn;
  const stats::RunMetrics m = topo::run_scenario(cfg);
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.handoffs, 0u);
  EXPECT_EQ(m.timeouts, 0u);
  EXPECT_DOUBLE_EQ(m.goodput, 1.0);
}

TEST(HandoffScenario, ComposesWithBurstErrors) {
  topo::ScenarioConfig cfg = handoff_scenario();
  cfg.channel_errors = true;  // fading AND handoffs
  cfg.channel.mean_bad_s = 2;
  cfg.local_recovery = true;
  cfg.feedback = topo::FeedbackMode::kEbsn;
  const stats::RunMetrics m = topo::run_scenario(cfg);
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.handoffs, 0u);
  EXPECT_GT(m.wireless_frames_corrupted, 0u);
}

}  // namespace
}  // namespace wtcp::mobility
