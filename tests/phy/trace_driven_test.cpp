#include "src/phy/trace_driven.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/topo/scenario.hpp"

namespace wtcp::phy {
namespace {

std::vector<FadeWindow> two_windows() {
  return {{sim::Time::seconds(10), sim::Time::seconds(14)},
          {sim::Time::seconds(24), sim::Time::seconds(28)}};
}

TEST(TraceDriven, CorruptsInsideFadesOnly) {
  TraceDrivenErrorModel m(two_windows(), sim::Rng(1), /*residual_ber=*/0.0);
  EXPECT_FALSE(m.corrupts(sim::Time::seconds(5), sim::Time::seconds(6), 1536));
  EXPECT_TRUE(m.corrupts(sim::Time::seconds(11), sim::Time::seconds(12), 1536));
  EXPECT_TRUE(m.corrupts(sim::Time::from_seconds(13.9),
                         sim::Time::from_seconds(14.1), 1536));
  EXPECT_FALSE(m.corrupts(sim::Time::seconds(15), sim::Time::seconds(16), 1536));
  EXPECT_TRUE(m.corrupts(sim::Time::seconds(25), sim::Time::seconds(26), 1536));
  EXPECT_FALSE(m.corrupts(sim::Time::seconds(30), sim::Time::seconds(31), 1536));
}

TEST(TraceDriven, InstantaneousQueries) {
  TraceDrivenErrorModel m(two_windows(), sim::Rng(1), 0.0);
  EXPECT_TRUE(m.corrupts(sim::Time::seconds(12), sim::Time::seconds(12), 8));
  EXPECT_FALSE(m.corrupts(sim::Time::seconds(14), sim::Time::seconds(14), 8));
}

TEST(TraceDriven, ResidualBerAppliesOutsideFades) {
  // Huge residual BER: everything outside fades dies too.
  TraceDrivenErrorModel m(two_windows(), sim::Rng(1), /*residual_ber=*/1.0);
  EXPECT_TRUE(m.corrupts(sim::Time::seconds(5), sim::Time::seconds(6), 1536));
}

TEST(TraceDriven, TotalFadeTime) {
  TraceDrivenErrorModel m(two_windows(), sim::Rng(1));
  EXPECT_EQ(m.total_fade_time(), sim::Time::seconds(8));
}

TEST(TraceDriven, RejectsMalformedWindows) {
  EXPECT_THROW(TraceDrivenErrorModel({{sim::Time::seconds(2), sim::Time::seconds(1)}},
                                     sim::Rng(1)),
               std::runtime_error);
  EXPECT_THROW(TraceDrivenErrorModel({{sim::Time::seconds(1), sim::Time::seconds(3)},
                                      {sim::Time::seconds(2), sim::Time::seconds(4)}},
                                     sim::Rng(1)),
               std::runtime_error);
}

TEST(TraceDriven, ParseHandlesCommentsAndBlanks) {
  std::istringstream is(
      "# a fade trace\n"
      "\n"
      "10 14   # first fade\n"
      "24 28\n");
  const auto windows = TraceDrivenErrorModel::parse(is);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].begin, sim::Time::seconds(10));
  EXPECT_EQ(windows[1].end, sim::Time::seconds(28));
}

TEST(TraceDriven, ParseRejectsHalfALine) {
  std::istringstream is("10\n");
  EXPECT_THROW(TraceDrivenErrorModel::parse(is), std::runtime_error);
}

TEST(TraceDriven, WriteParseRoundTrip) {
  std::stringstream ss;
  TraceDrivenErrorModel::write(ss, two_windows());
  const auto windows = TraceDrivenErrorModel::parse(ss);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].begin, sim::Time::seconds(10));
  EXPECT_EQ(windows[0].end, sim::Time::seconds(14));
}

TEST(TraceDriven, RecordGilbertElliottRealization) {
  GilbertElliottConfig cfg;
  cfg.mean_good_s = 5;
  cfg.mean_bad_s = 1;
  GilbertElliottModel ge(cfg, sim::Rng(3));
  const auto windows =
      TraceDrivenErrorModel::record(ge, sim::Time::seconds(600));
  ASSERT_GT(windows.size(), 20u);
  // Bad fraction roughly 1/6 of the horizon.
  sim::Time fade;
  for (const auto& w : windows) fade += w.end - w.begin;
  EXPECT_NEAR(fade.to_seconds() / 600.0, 1.0 / 6.0, 0.08);
  // Valid for replay (sorted, non-overlapping): construction must not throw.
  TraceDrivenErrorModel replay(windows, sim::Rng(1));
  SUCCEED();
}

TEST(TraceDriven, FromFileMissingThrows) {
  EXPECT_THROW(
      TraceDrivenErrorModel::from_file("/nonexistent/fade.trace", sim::Rng(1)),
      std::runtime_error);
}

TEST(TraceDriven, ScenarioReplaysTraceFile) {
  // Write a trace, run the paper's WAN scenario against it, and check the
  // fades actually bite.
  const std::string path = ::testing::TempDir() + "/fade_test.trace";
  {
    std::ofstream os(path);
    TraceDrivenErrorModel::write(os, {{sim::Time::seconds(10), sim::Time::seconds(14)},
                                      {sim::Time::seconds(24), sim::Time::seconds(28)},
                                      {sim::Time::seconds(38), sim::Time::seconds(42)}});
  }
  topo::ScenarioConfig cfg = topo::wan_scenario();
  cfg.tcp.file_bytes = 40 * 1024;
  cfg.fade_trace_file = path;
  const stats::RunMetrics m = topo::run_scenario(cfg);
  std::remove(path.c_str());
  EXPECT_TRUE(m.completed);
  EXPECT_GT(m.wireless_frames_corrupted, 0u);
  EXPECT_GT(m.timeouts + m.fast_retransmits, 0u);

  // Same trace, two schemes: identical fade schedule for both (the point
  // of trace-driven replay).
}

}  // namespace
}  // namespace wtcp::phy
